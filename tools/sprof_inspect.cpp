//===- tools/sprof_inspect.cpp - Run-report inspector CLI ------------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders sprof run reports (sprof.run_report/1 and /2) as tables, so a
/// report on disk answers the questions people actually ask of it without
/// jq gymnastics:
///
///   sprof-inspect summary <report.json>
///       Workload, speedup, classification counts, prefetch-outcome
///       attribution, and the top load sites by demand-stall cycles.
///
///   sprof-inspect diff <reference.json> <candidate.json> [--json=PATH]
///       Reconstructs both stride profiles from the reports, re-runs the
///       Figures 23-25 accuracy methodology (diffStrideProfiles) with the
///       reference report's classifier thresholds, and prints the per-site
///       agreement table, the classification-flip matrix, and the weighted
///       accuracy score. --json additionally writes the machine-readable
///       profile_diff section.
///
/// Exit status: 0 on success, 1 on usage/IO/parse errors.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Report.h"
#include "profile/ProfileDiff.h"
#include "support/Table.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

bool loadReport(const std::string &Path, JsonValue &Out) {
  std::ifstream IS(Path);
  if (!IS) {
    std::cerr << "sprof-inspect: cannot open " << Path << "\n";
    return false;
  }
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  std::string Error;
  if (!JsonValue::parse(Buf.str(), Out, &Error)) {
    std::cerr << "sprof-inspect: " << Path << ": parse error: " << Error
              << "\n";
    return false;
  }
  const JsonValue *Schema = Out.get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString().rfind("sprof.run_report/", 0) != 0) {
    std::cerr << "sprof-inspect: " << Path
              << ": not a sprof.run_report document\n";
    return false;
  }
  return true;
}

uint64_t uintAt(const JsonValue *Obj, const char *Key) {
  const JsonValue *V = Obj ? Obj->get(Key) : nullptr;
  return V ? V->asUInt() : 0;
}

double doubleAt(const JsonValue *Obj, const char *Key) {
  const JsonValue *V = Obj ? Obj->get(Key) : nullptr;
  return V ? V->asDouble() : 0.0;
}

std::string stringAt(const JsonValue *Obj, const char *Key,
                     const char *Default = "") {
  const JsonValue *V = Obj ? Obj->get(Key) : nullptr;
  return V && V->isString() ? V->asString() : std::string(Default);
}

// -- summary ---------------------------------------------------------------

void printOutcomeRow(Table &T, const std::string &Label,
                     const JsonValue *O) {
  uint64_t Issued = uintAt(O, "issued");
  auto Pct = [&](uint64_t N) {
    return Issued ? Table::fmtPercent(100.0 * static_cast<double>(N) /
                                      static_cast<double>(Issued))
                  : std::string("-");
  };
  uint64_t Useful = uintAt(O, "useful");
  T.row({Label, Table::fmtInt(Issued), Table::fmtInt(Useful), Pct(Useful),
         Table::fmtInt(uintAt(O, "late")), Table::fmtInt(uintAt(O, "early")),
         Table::fmtInt(uintAt(O, "redundant"))});
}

int runSummary(const std::string &Path) {
  JsonValue Report;
  if (!loadReport(Path, Report))
    return 1;

  std::cout << "report:   " << Path << "\n";
  std::cout << "schema:   " << stringAt(&Report, "schema") << "\n";
  std::cout << "workload: " << stringAt(&Report, "workload", "?") << "\n";

  const JsonValue *Timed = Report.get("timed_run");
  const JsonValue *Baseline = Report.get("baseline_run");
  if (const JsonValue *Speedup = Report.get("speedup"))
    std::cout << "speedup:  " << Table::fmt(Speedup->asDouble()) << "x\n";
  if (Timed) {
    const JsonValue *Stats = Timed->get("stats");
    std::cout << "cycles:   " << uintAt(Stats, "cycles")
              << " (baseline " << uintAt(Baseline, "cycles")
              << ", mem stall " << uintAt(Stats, "mem_stall_cycles")
              << ")\n";
  }
  std::cout << "\n";

  if (Timed) {
    const JsonValue *Counts = Timed->get("classification")
                                  ? Timed->get("classification")
                                        ->get("class_counts")
                                  : nullptr;
    if (Counts) {
      Table T("Stride classification (load sites)");
      T.row({"class", "sites"});
      for (const char *K : {"ssst", "pmst", "wsst", "none"})
        T.row({K, Table::fmtInt(uintAt(Counts, K))});
      T.print(std::cout);
      std::cout << "\n";
    }
  }

  const JsonValue *Attr = Report.get("attribution");
  if (Attr) {
    Table T("Prefetch outcomes");
    T.row({"scope", "issued", "useful", "useful%", "late", "early",
           "redundant"});
    printOutcomeRow(T, "total", Attr->get("outcomes"));
    if (const JsonValue *ByClass = Attr->get("by_class"))
      for (const char *K : {"ssst", "pmst", "wsst", "none"})
        printOutcomeRow(T, K, ByClass->get(K));
    T.print(std::cout);
    std::cout << "\n";

    const JsonValue *Sites = Attr->get("per_site");
    if (Sites && Sites->isArray() && Sites->size() != 0) {
      std::vector<const JsonValue *> Sorted;
      for (const JsonValue &S : Sites->items())
        Sorted.push_back(&S);
      std::stable_sort(Sorted.begin(), Sorted.end(),
                       [](const JsonValue *A, const JsonValue *B) {
                         return uintAt(A, "stall_cycles") >
                                uintAt(B, "stall_cycles");
                       });
      Table T2("Top load sites by demand-stall cycles");
      T2.row({"site", "class", "stall", "accesses", "l1_miss", "l1_mpki",
              "useful", "late", "early", "redundant"});
      size_t N = std::min<size_t>(Sorted.size(), 10);
      for (size_t I = 0; I != N; ++I) {
        const JsonValue *S = Sorted[I];
        const JsonValue *Id = S->get("site");
        T2.row({Id && Id->isString() ? Id->asString()
                                     : std::to_string(uintAt(S, "site")),
                stringAt(S, "class"),
                Table::fmtInt(uintAt(S, "stall_cycles")),
                Table::fmtInt(uintAt(S, "accesses")),
                Table::fmtInt(uintAt(S, "l1_misses")),
                Table::fmt(doubleAt(S, "l1_mpki")),
                Table::fmtInt(uintAt(S, "useful")),
                Table::fmtInt(uintAt(S, "late")),
                Table::fmtInt(uintAt(S, "early")),
                Table::fmtInt(uintAt(S, "redundant"))});
      }
      T2.print(std::cout);
      if (Sorted.size() > N)
        std::cout << "(" << Sorted.size() - N << " more sites)\n";
      std::cout << "\n";
    }
  } else {
    std::cout << "(no attribution section -- run with "
                 "Memory.EnableAttribution)\n\n";
  }

  if (const JsonValue *Diff = Report.get("profile_diff")) {
    std::cout << "profile diff: weighted accuracy "
              << Table::fmt(doubleAt(Diff, "weighted_accuracy") * 100.0, 1)
              << "% over " << uintAt(Diff, "sites_compared")
              << " sites (use `sprof-inspect diff` for the full table)\n";
  }
  return 0;
}

// -- diff ------------------------------------------------------------------

/// Rebuilds a StrideProfile from a report's profile_run.stride_profile
/// section. The serialized per-site fields (total/zero/zero-diff counts and
/// the top-stride list) are exactly the inputs classifyStrideSummary and
/// the top-4 overlap read, so the reconstruction is lossless for diffing.
bool profileFromReport(const JsonValue &Report, const std::string &Path,
                       StrideProfile &Out) {
  const JsonValue *PR = Report.get("profile_run");
  const JsonValue *SP = PR ? PR->get("stride_profile") : nullptr;
  const JsonValue *Sites = SP ? SP->get("sites") : nullptr;
  if (!Sites || !Sites->isArray()) {
    std::cerr << "sprof-inspect: " << Path
              << ": no profile_run.stride_profile section\n";
    return false;
  }
  Out = StrideProfile(static_cast<uint32_t>(uintAt(SP, "num_sites")));
  for (const JsonValue &SJ : Sites->items()) {
    uint32_t Id = static_cast<uint32_t>(uintAt(&SJ, "site"));
    if (Id >= Out.numSites())
      continue;
    StrideSiteSummary &Sum = Out.site(Id);
    Sum.SiteId = Id;
    Sum.TotalStrides = uintAt(&SJ, "total_strides");
    Sum.NumZeroStride = uintAt(&SJ, "zero_strides");
    Sum.NumZeroDiff = uintAt(&SJ, "zero_diffs");
    if (const JsonValue *Top = SJ.get("top_strides"))
      for (const JsonValue &TJ : Top->items()) {
        const JsonValue *V = TJ.get("stride");
        Sum.TopStrides.push_back(
            {V ? V->asInt() : 0, uintAt(&TJ, "count")});
      }
  }
  return true;
}

/// Classifier thresholds travel inside the report; reusing the reference
/// report's values keeps the re-classification faithful to the run.
ClassifierConfig classifierFromReport(const JsonValue &Report) {
  ClassifierConfig C;
  const JsonValue *Cfg = Report.get("config");
  const JsonValue *Cls = Cfg ? Cfg->get("classifier") : nullptr;
  if (!Cls)
    return C;
  C.FrequencyThreshold = uintAt(Cls, "frequency_threshold");
  C.TripCountThreshold = uintAt(Cls, "trip_count_threshold");
  C.SsstThreshold = doubleAt(Cls, "ssst_threshold");
  C.PmstThreshold = doubleAt(Cls, "pmst_threshold");
  C.PmstDiffThreshold = doubleAt(Cls, "pmst_diff_threshold");
  C.WsstThreshold = doubleAt(Cls, "wsst_threshold");
  C.WsstDiffThreshold = doubleAt(Cls, "wsst_diff_threshold");
  return C;
}

int runDiff(const std::string &PathA, const std::string &PathB,
            const std::string &JsonOut) {
  JsonValue RA, RB;
  if (!loadReport(PathA, RA) || !loadReport(PathB, RB))
    return 1;
  StrideProfile PA, PB;
  if (!profileFromReport(RA, PathA, PA) ||
      !profileFromReport(RB, PathB, PB))
    return 1;

  ProfileDiffResult Diff =
      diffStrideProfiles(PA, PB, classifierFromReport(RA));

  std::cout << "reference: " << PathA << " ("
            << stringAt(&RA, "workload", "?") << ")\n";
  std::cout << "candidate: " << PathB << " ("
            << stringAt(&RB, "workload", "?") << ")\n\n";

  Table Sum("Profile accuracy (reference vs candidate)");
  Sum.row({"metric", "value"});
  Sum.row({"sites compared", Table::fmtInt(Diff.SitesCompared)});
  Sum.row({"top-stride agreement",
           Table::fmtPercent(100.0 * Diff.TopStrideAgreement)});
  Sum.row({"class agreement",
           Table::fmtPercent(100.0 * Diff.ClassAgreement)});
  Sum.row({"weighted accuracy",
           Table::fmtPercent(100.0 * Diff.WeightedAccuracy)});
  Sum.print(std::cout);
  std::cout << "\n";

  static const char *ClassNames[NumStrideClasses] = {"none", "ssst", "pmst",
                                                     "wsst"};
  Table Flips("Classification flips (rows: reference, cols: candidate)");
  Flips.row({"ref\\cand", "none", "ssst", "pmst", "wsst"});
  for (size_t A = 0; A != NumStrideClasses; ++A)
    Flips.row({ClassNames[A], Table::fmtInt(Diff.Flips[A][0]),
               Table::fmtInt(Diff.Flips[A][1]),
               Table::fmtInt(Diff.Flips[A][2]),
               Table::fmtInt(Diff.Flips[A][3])});
  Flips.print(std::cout);
  std::cout << "\n";

  // Per-site table, heaviest reference sites first; disagreements are what
  // the reader is hunting, so they sort above same-weight agreements.
  std::vector<const SiteDiffEntry *> Order;
  for (const SiteDiffEntry &E : Diff.Sites)
    Order.push_back(&E);
  std::stable_sort(Order.begin(), Order.end(),
                   [](const SiteDiffEntry *A, const SiteDiffEntry *B) {
                     if (A->WeightA != B->WeightA)
                       return A->WeightA > B->WeightA;
                     return A->Score < B->Score;
                   });
  Table Sites("Per-site accuracy (top 20 by reference weight)");
  Sites.row({"site", "weight", "stride(ref)", "stride(cand)", "top4",
             "class(ref)", "class(cand)", "score"});
  size_t N = std::min<size_t>(Order.size(), 20);
  for (size_t I = 0; I != N; ++I) {
    const SiteDiffEntry *E = Order[I];
    Sites.row({Table::fmtInt(E->Site), Table::fmtInt(E->WeightA),
               std::to_string(E->TopStrideA), std::to_string(E->TopStrideB),
               Table::fmtPercent(100.0 * E->Top4Overlap),
               strideClassName(E->ClassA), strideClassName(E->ClassB),
               Table::fmt(E->Score)});
  }
  Sites.print(std::cout);
  if (Order.size() > N)
    std::cout << "(" << Order.size() - N << " more sites)\n";

  if (!JsonOut.empty()) {
    if (!writeJsonFile(JsonOut, profileDiffToJson(Diff))) {
      std::cerr << "sprof-inspect: could not write " << JsonOut << "\n";
      return 1;
    }
    std::cout << "\ndiff written to " << JsonOut << "\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage: sprof-inspect summary <report.json>\n"
            << "       sprof-inspect diff <reference.json> "
               "<candidate.json> [--json=PATH]\n";
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args;
  std::string JsonOut;
  for (int I = 1; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonOut = Argv[I] + 7;
    else if (Argv[I][0] == '-')
      return usage();
    else
      Args.push_back(Argv[I]);
  }
  if (Args.size() == 2 && Args[0] == "summary")
    return runSummary(Args[1]);
  if (Args.size() == 3 && Args[0] == "diff")
    return runDiff(Args[1], Args[2], JsonOut);
  return usage();
}
