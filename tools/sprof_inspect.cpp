//===- tools/sprof_inspect.cpp - Run-report inspector CLI ------------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders sprof telemetry artifacts (sprof.run_report/1..5 and
/// sprof.timeseries/1) as tables, so an artifact on disk answers the
/// questions people actually ask of it without jq gymnastics:
///
///   sprof-inspect summary <report.json>
///       Workload, speedup, classification counts, prefetch-outcome
///       attribution, and the top load sites by demand-stall cycles.
///
///   sprof-inspect diff <reference.json> <candidate.json> [--json=PATH]
///       Reconstructs both stride profiles from the reports, re-runs the
///       Figures 23-25 accuracy methodology (diffStrideProfiles) with the
///       reference report's classifier thresholds, and prints the per-site
///       agreement table, the classification-flip matrix, and the weighted
///       accuracy score. --json additionally writes the machine-readable
///       profile_diff section.
///
///   sprof-inspect timeseries <timeseries.json>
///       Renders a TelemetrySampler's sprof.timeseries/1 artifact as
///       per-metric sparkline tables: counters as per-interval rates,
///       gauges as raw values.
///
///   sprof-inspect hotspots <report.json> [--top=N]
///       The engine self-profiler's per-dispatch-op attribution from the
///       report's self_profile section, hottest first. Trace-tier runs
///       sample into "trace:<n>" frames (also present in the folded-stack
///       export); when the report carries a trace_tier section, a second
///       table breaks each installed trace down by exit kind (side, loop,
///       fuel) and flags the hottest side-exiting guard.
///
///   sprof-inspect trace <file.sprof.trace> [--top=N]
///       Decodes a sprof.trace/1 or /2 (binary or text) capture:
///       provenance header, per-kind event histogram, decode throughput,
///       shard-index summary (/2), address span, edge-section summary,
///       and the busiest sites. Unreadable, truncated, corrupt, or
///       wrong-version traces diagnose the precise failure and exit 1.
///
///   sprof-inspect import <log.txt> <out.sprof.trace>
///       Converts a cacheSight-style "addr,site,kind" text access log
///       ('-' reads stdin) into an indexed binary sprof.trace/2 file and
///       prints the import summary. Malformed lines diagnose with their
///       line number and exit 1.
///
///   sprof-inspect sweep <sweep_report.json> [--top=N]
///       The engine's causal sweep view (sprof.sweep_report/1): per-job
///       timeline with queue wait separated from run time, the
///       dependency-weighted critical path, per-worker utilization, and
///       the straggler top-N.
///
///   sprof-inspect blackbox <flightrec.json>
///       Reads a flight-recorder dump (sprof.flightrec/1): why it was
///       written, which jobs were in flight, and each worker lane's last
///       recorded events.
///
/// Exit status: 0 on success, 1 on usage/IO/parse errors. Unknown
/// subcommands, malformed JSON, wrong-schema inputs, and documents whose
/// schema version is NEWER than this reader supports all diagnose to
/// stderr and exit 1; they never crash or silently succeed.
///
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "obs/Report.h"
#include "obs/SweepReport.h"
#include "profile/ProfileDiff.h"
#include "stream/TraceFile.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

/// Loads \p Path, parses it, checks the "schema" member starts with
/// \p SchemaPrefix, and rejects versions newer than \p MaxVersion — a /7
/// document may carry sections whose invariants this reader predates, so
/// skipping them silently would let a broken producer pass. Every failure
/// mode (unreadable file, malformed JSON, wrong document kind, too-new
/// version) prints a one-line diagnostic and returns false.
bool loadDocument(const std::string &Path, const char *SchemaPrefix,
                  unsigned MaxVersion, JsonValue &Out) {
  std::ifstream IS(Path);
  if (!IS) {
    std::cerr << "sprof-inspect: cannot open " << Path << "\n";
    return false;
  }
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  if (!IS.good() && !IS.eof()) {
    std::cerr << "sprof-inspect: error reading " << Path << "\n";
    return false;
  }
  std::string Error;
  if (!JsonValue::parse(Buf.str(), Out, &Error)) {
    std::cerr << "sprof-inspect: " << Path << ": parse error: " << Error
              << "\n";
    return false;
  }
  if (!Out.isObject()) {
    std::cerr << "sprof-inspect: " << Path
              << ": top-level value is not an object\n";
    return false;
  }
  const JsonValue *Schema = Out.get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString().rfind(SchemaPrefix, 0) != 0) {
    std::cerr << "sprof-inspect: " << Path << ": not a " << SchemaPrefix
              << "* document (schema: "
              << (Schema && Schema->isString() ? Schema->asString()
                                               : std::string("<missing>"))
              << ")\n";
    return false;
  }
  const std::string &Full = Schema->asString();
  char *End = nullptr;
  unsigned long Version =
      std::strtoul(Full.c_str() + std::strlen(SchemaPrefix), &End, 10);
  if (!End || *End != '\0' || Version == 0) {
    std::cerr << "sprof-inspect: " << Path << ": malformed schema version '"
              << Full << "'\n";
    return false;
  }
  if (Version > MaxVersion) {
    std::cerr << "sprof-inspect: " << Path << ": schema " << Full
              << " is newer than this reader supports (max "
              << SchemaPrefix << MaxVersion
              << "); upgrade sprof-inspect\n";
    return false;
  }
  return true;
}

bool loadReport(const std::string &Path, JsonValue &Out) {
  return loadDocument(Path, "sprof.run_report/", 5, Out);
}

uint64_t uintAt(const JsonValue *Obj, const char *Key) {
  const JsonValue *V = Obj ? Obj->get(Key) : nullptr;
  return V ? V->asUInt() : 0;
}

double doubleAt(const JsonValue *Obj, const char *Key) {
  const JsonValue *V = Obj ? Obj->get(Key) : nullptr;
  return V ? V->asDouble() : 0.0;
}

std::string stringAt(const JsonValue *Obj, const char *Key,
                     const char *Default = "") {
  const JsonValue *V = Obj ? Obj->get(Key) : nullptr;
  return V && V->isString() ? V->asString() : std::string(Default);
}

// -- summary ---------------------------------------------------------------

void printOutcomeRow(Table &T, const std::string &Label,
                     const JsonValue *O) {
  uint64_t Issued = uintAt(O, "issued");
  auto Pct = [&](uint64_t N) {
    return Issued ? Table::fmtPercent(100.0 * static_cast<double>(N) /
                                      static_cast<double>(Issued))
                  : std::string("-");
  };
  uint64_t Useful = uintAt(O, "useful");
  T.row({Label, Table::fmtInt(Issued), Table::fmtInt(Useful), Pct(Useful),
         Table::fmtInt(uintAt(O, "late")), Table::fmtInt(uintAt(O, "early")),
         Table::fmtInt(uintAt(O, "redundant"))});
}

int runSummary(const std::string &Path) {
  JsonValue Report;
  if (!loadReport(Path, Report))
    return 1;

  std::cout << "report:   " << Path << "\n";
  std::cout << "schema:   " << stringAt(&Report, "schema") << "\n";
  std::cout << "workload: " << stringAt(&Report, "workload", "?") << "\n";

  const JsonValue *Timed = Report.get("timed_run");
  const JsonValue *Baseline = Report.get("baseline_run");
  if (const JsonValue *Speedup = Report.get("speedup"))
    std::cout << "speedup:  " << Table::fmt(Speedup->asDouble()) << "x\n";
  if (Timed) {
    const JsonValue *Stats = Timed->get("stats");
    std::cout << "cycles:   " << uintAt(Stats, "cycles")
              << " (baseline " << uintAt(Baseline, "cycles")
              << ", mem stall " << uintAt(Stats, "mem_stall_cycles")
              << ")\n";
  }
  std::cout << "\n";

  if (Timed) {
    const JsonValue *Counts = Timed->get("classification")
                                  ? Timed->get("classification")
                                        ->get("class_counts")
                                  : nullptr;
    if (Counts) {
      Table T("Stride classification (load sites)");
      T.row({"class", "sites"});
      for (const char *K : {"ssst", "pmst", "wsst", "none"})
        T.row({K, Table::fmtInt(uintAt(Counts, K))});
      T.print(std::cout);
      std::cout << "\n";
    }
  }

  const JsonValue *Attr = Report.get("attribution");
  if (Attr) {
    Table T("Prefetch outcomes");
    T.row({"scope", "issued", "useful", "useful%", "late", "early",
           "redundant"});
    printOutcomeRow(T, "total", Attr->get("outcomes"));
    if (const JsonValue *ByClass = Attr->get("by_class"))
      for (const char *K : {"ssst", "pmst", "wsst", "none"})
        printOutcomeRow(T, K, ByClass->get(K));
    T.print(std::cout);
    std::cout << "\n";

    const JsonValue *Sites = Attr->get("per_site");
    if (Sites && Sites->isArray() && Sites->size() != 0) {
      std::vector<const JsonValue *> Sorted;
      for (const JsonValue &S : Sites->items())
        Sorted.push_back(&S);
      std::stable_sort(Sorted.begin(), Sorted.end(),
                       [](const JsonValue *A, const JsonValue *B) {
                         return uintAt(A, "stall_cycles") >
                                uintAt(B, "stall_cycles");
                       });
      Table T2("Top load sites by demand-stall cycles");
      T2.row({"site", "class", "stall", "accesses", "l1_miss", "l1_mpki",
              "useful", "late", "early", "redundant"});
      size_t N = std::min<size_t>(Sorted.size(), 10);
      for (size_t I = 0; I != N; ++I) {
        const JsonValue *S = Sorted[I];
        const JsonValue *Id = S->get("site");
        T2.row({Id && Id->isString() ? Id->asString()
                                     : std::to_string(uintAt(S, "site")),
                stringAt(S, "class"),
                Table::fmtInt(uintAt(S, "stall_cycles")),
                Table::fmtInt(uintAt(S, "accesses")),
                Table::fmtInt(uintAt(S, "l1_misses")),
                Table::fmt(doubleAt(S, "l1_mpki")),
                Table::fmtInt(uintAt(S, "useful")),
                Table::fmtInt(uintAt(S, "late")),
                Table::fmtInt(uintAt(S, "early")),
                Table::fmtInt(uintAt(S, "redundant"))});
      }
      T2.print(std::cout);
      if (Sorted.size() > N)
        std::cout << "(" << Sorted.size() - N << " more sites)\n";
      std::cout << "\n";
    }
  } else {
    std::cout << "(no attribution section -- run with "
                 "Memory.EnableAttribution)\n\n";
  }

  if (const JsonValue *Diff = Report.get("profile_diff")) {
    std::cout << "profile diff: weighted accuracy "
              << Table::fmt(doubleAt(Diff, "weighted_accuracy") * 100.0, 1)
              << "% over " << uintAt(Diff, "sites_compared")
              << " sites (use `sprof-inspect diff` for the full table)\n";
  }
  return 0;
}

// -- diff ------------------------------------------------------------------

/// Rebuilds a StrideProfile from a report's profile_run.stride_profile
/// section. The serialized per-site fields (total/zero/zero-diff counts and
/// the top-stride list) are exactly the inputs classifyStrideSummary and
/// the top-4 overlap read, so the reconstruction is lossless for diffing.
bool profileFromReport(const JsonValue &Report, const std::string &Path,
                       StrideProfile &Out) {
  const JsonValue *PR = Report.get("profile_run");
  const JsonValue *SP = PR ? PR->get("stride_profile") : nullptr;
  const JsonValue *Sites = SP ? SP->get("sites") : nullptr;
  if (!Sites || !Sites->isArray()) {
    std::cerr << "sprof-inspect: " << Path
              << ": no profile_run.stride_profile section\n";
    return false;
  }
  Out = StrideProfile(static_cast<uint32_t>(uintAt(SP, "num_sites")));
  for (const JsonValue &SJ : Sites->items()) {
    uint32_t Id = static_cast<uint32_t>(uintAt(&SJ, "site"));
    if (Id >= Out.numSites())
      continue;
    StrideSiteSummary &Sum = Out.site(Id);
    Sum.SiteId = Id;
    Sum.TotalStrides = uintAt(&SJ, "total_strides");
    Sum.NumZeroStride = uintAt(&SJ, "zero_strides");
    Sum.NumZeroDiff = uintAt(&SJ, "zero_diffs");
    if (const JsonValue *Top = SJ.get("top_strides"))
      for (const JsonValue &TJ : Top->items()) {
        const JsonValue *V = TJ.get("stride");
        Sum.TopStrides.push_back(
            {V ? V->asInt() : 0, uintAt(&TJ, "count")});
      }
  }
  return true;
}

/// Classifier thresholds travel inside the report; reusing the reference
/// report's values keeps the re-classification faithful to the run.
ClassifierConfig classifierFromReport(const JsonValue &Report) {
  ClassifierConfig C;
  const JsonValue *Cfg = Report.get("config");
  const JsonValue *Cls = Cfg ? Cfg->get("classifier") : nullptr;
  if (!Cls)
    return C;
  C.FrequencyThreshold = uintAt(Cls, "frequency_threshold");
  C.TripCountThreshold = uintAt(Cls, "trip_count_threshold");
  C.SsstThreshold = doubleAt(Cls, "ssst_threshold");
  C.PmstThreshold = doubleAt(Cls, "pmst_threshold");
  C.PmstDiffThreshold = doubleAt(Cls, "pmst_diff_threshold");
  C.WsstThreshold = doubleAt(Cls, "wsst_threshold");
  C.WsstDiffThreshold = doubleAt(Cls, "wsst_diff_threshold");
  return C;
}

int runDiff(const std::string &PathA, const std::string &PathB,
            const std::string &JsonOut) {
  JsonValue RA, RB;
  if (!loadReport(PathA, RA) || !loadReport(PathB, RB))
    return 1;
  StrideProfile PA, PB;
  if (!profileFromReport(RA, PathA, PA) ||
      !profileFromReport(RB, PathB, PB))
    return 1;

  ProfileDiffResult Diff =
      diffStrideProfiles(PA, PB, classifierFromReport(RA));

  std::cout << "reference: " << PathA << " ("
            << stringAt(&RA, "workload", "?") << ")\n";
  std::cout << "candidate: " << PathB << " ("
            << stringAt(&RB, "workload", "?") << ")\n\n";

  Table Sum("Profile accuracy (reference vs candidate)");
  Sum.row({"metric", "value"});
  Sum.row({"sites compared", Table::fmtInt(Diff.SitesCompared)});
  Sum.row({"top-stride agreement",
           Table::fmtPercent(100.0 * Diff.TopStrideAgreement)});
  Sum.row({"class agreement",
           Table::fmtPercent(100.0 * Diff.ClassAgreement)});
  Sum.row({"weighted accuracy",
           Table::fmtPercent(100.0 * Diff.WeightedAccuracy)});
  Sum.print(std::cout);
  std::cout << "\n";

  static const char *ClassNames[NumStrideClasses] = {"none", "ssst", "pmst",
                                                     "wsst"};
  Table Flips("Classification flips (rows: reference, cols: candidate)");
  Flips.row({"ref\\cand", "none", "ssst", "pmst", "wsst"});
  for (size_t A = 0; A != NumStrideClasses; ++A)
    Flips.row({ClassNames[A], Table::fmtInt(Diff.Flips[A][0]),
               Table::fmtInt(Diff.Flips[A][1]),
               Table::fmtInt(Diff.Flips[A][2]),
               Table::fmtInt(Diff.Flips[A][3])});
  Flips.print(std::cout);
  std::cout << "\n";

  // Per-site table, heaviest reference sites first; disagreements are what
  // the reader is hunting, so they sort above same-weight agreements.
  std::vector<const SiteDiffEntry *> Order;
  for (const SiteDiffEntry &E : Diff.Sites)
    Order.push_back(&E);
  std::stable_sort(Order.begin(), Order.end(),
                   [](const SiteDiffEntry *A, const SiteDiffEntry *B) {
                     if (A->WeightA != B->WeightA)
                       return A->WeightA > B->WeightA;
                     return A->Score < B->Score;
                   });
  Table Sites("Per-site accuracy (top 20 by reference weight)");
  Sites.row({"site", "weight", "stride(ref)", "stride(cand)", "top4",
             "class(ref)", "class(cand)", "score"});
  size_t N = std::min<size_t>(Order.size(), 20);
  for (size_t I = 0; I != N; ++I) {
    const SiteDiffEntry *E = Order[I];
    Sites.row({Table::fmtInt(E->Site), Table::fmtInt(E->WeightA),
               std::to_string(E->TopStrideA), std::to_string(E->TopStrideB),
               Table::fmtPercent(100.0 * E->Top4Overlap),
               strideClassName(E->ClassA), strideClassName(E->ClassB),
               Table::fmt(E->Score)});
  }
  Sites.print(std::cout);
  if (Order.size() > N)
    std::cout << "(" << Order.size() - N << " more sites)\n";

  if (!JsonOut.empty()) {
    if (!writeJsonFile(JsonOut, profileDiffToJson(Diff))) {
      std::cerr << "sprof-inspect: could not write " << JsonOut << "\n";
      return 1;
    }
    std::cout << "\ndiff written to " << JsonOut << "\n";
  }
  return 0;
}

// -- timeseries ------------------------------------------------------------

/// Eight-level block sparkline over \p Values, downsampled (bucket max) to
/// at most \p Width cells. Flat series render as a flat line.
std::string sparkline(const std::vector<double> &Values, size_t Width = 40) {
  static const char *Blocks[8] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (Values.empty())
    return "";
  std::vector<double> Cells;
  if (Values.size() <= Width) {
    Cells = Values;
  } else {
    Cells.resize(Width);
    for (size_t C = 0; C != Width; ++C) {
      size_t Lo = C * Values.size() / Width;
      size_t Hi = (C + 1) * Values.size() / Width;
      double M = Values[Lo];
      for (size_t I = Lo + 1; I < Hi; ++I)
        M = std::max(M, Values[I]);
      Cells[C] = M;
    }
  }
  double Min = *std::min_element(Cells.begin(), Cells.end());
  double Max = *std::max_element(Cells.begin(), Cells.end());
  double Span = Max - Min;
  std::string Out;
  for (double V : Cells) {
    size_t Level =
        Span > 0 ? static_cast<size_t>((V - Min) / Span * 7.0 + 0.5) : 0;
    Out += Blocks[std::min<size_t>(Level, 7)];
  }
  return Out;
}

int runTimeseries(const std::string &Path) {
  JsonValue Doc;
  if (!loadDocument(Path, "sprof.timeseries/", 1, Doc))
    return 1;

  const JsonValue *Ts = Doc.get("timestamps_us");
  if (!Ts || !Ts->isArray()) {
    std::cerr << "sprof-inspect: " << Path << ": no timestamps_us array\n";
    return 1;
  }
  size_t N = Ts->size();
  std::cout << "timeseries: " << Path << "\n";
  std::cout << "samples:    " << N << " (interval "
            << uintAt(&Doc, "interval_us") << " us, "
            << uintAt(&Doc, "dropped") << " dropped)\n";
  if (N != 0)
    std::cout << "span:       " << Ts->at(0).asUInt() << " us .. "
              << Ts->at(N - 1).asUInt() << " us\n";
  std::cout << "\n";

  auto SeriesOf = [N](const JsonValue &Arr) {
    std::vector<double> V;
    V.reserve(N);
    for (const JsonValue &X : Arr.items())
      V.push_back(X.asDouble());
    return V;
  };

  // Counters are monotone totals; the per-interval delta is the readable
  // shape (a flat sparkline means "idle", a burst means "hot phase").
  const JsonValue *Counters = Doc.get("counters");
  if (Counters && Counters->isObject() && Counters->size() != 0) {
    Table T("Counters (sparkline of per-interval increments)");
    T.row({"counter", "total", "trend"});
    for (const auto &[Name, Arr] : Counters->members()) {
      if (!Arr.isArray())
        continue;
      std::vector<double> Values = SeriesOf(Arr);
      std::vector<double> Deltas;
      for (size_t I = 1; I < Values.size(); ++I)
        Deltas.push_back(std::max(0.0, Values[I] - Values[I - 1]));
      if (Deltas.empty())
        Deltas = Values;
      T.row({Name,
             Table::fmtInt(Values.empty()
                               ? 0
                               : static_cast<uint64_t>(Values.back())),
             sparkline(Deltas)});
    }
    T.print(std::cout);
    std::cout << "\n";
  }

  const JsonValue *Gauges = Doc.get("gauges");
  if (Gauges && Gauges->isObject() && Gauges->size() != 0) {
    Table T("Gauges (sparkline of values)");
    T.row({"gauge", "last", "trend"});
    for (const auto &[Name, Arr] : Gauges->members()) {
      if (!Arr.isArray())
        continue;
      std::vector<double> Values = SeriesOf(Arr);
      T.row({Name, Table::fmt(Values.empty() ? 0.0 : Values.back()),
             sparkline(Values)});
    }
    T.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

// -- hotspots --------------------------------------------------------------

int runHotspots(const std::string &Path, size_t TopN) {
  JsonValue Report;
  if (!loadReport(Path, Report))
    return 1;
  const JsonValue *SP = Report.get("self_profile");
  if (!SP || !SP->isObject()) {
    std::cerr << "sprof-inspect: " << Path
              << ": no self_profile section (run with "
                 "ObsConfig::SelfProfile and the Decoded engine)\n";
    return 1;
  }
  const JsonValue *Entries = SP->get("entries");
  uint64_t Total = uintAt(SP, "total_samples");
  std::cout << "report:        " << Path << "\n";
  std::cout << "sample window: " << uintAt(SP, "window") << " dispatches\n";
  std::cout << "total samples: " << Total << "\n\n";
  if (!Entries || !Entries->isArray() || Entries->size() == 0 ||
      Total == 0) {
    std::cout << "(no samples recorded)\n";
    return 0;
  }

  Table T("Engine hotspots (sampled dispatch ops, hottest first)");
  T.row({"workload", "phase", "op", "samples", "samples%", "est ms"});
  size_t N = std::min<size_t>(Entries->size(), TopN);
  for (size_t I = 0; I != N; ++I) {
    const JsonValue &E = Entries->at(I);
    uint64_t Samples = uintAt(&E, "samples");
    T.row({stringAt(&E, "workload", "?"), stringAt(&E, "phase", "?"),
           stringAt(&E, "op", "?"), Table::fmtInt(Samples),
           Table::fmtPercent(100.0 * static_cast<double>(Samples) /
                             static_cast<double>(Total)),
           Table::fmt(static_cast<double>(uintAt(&E, "ns")) / 1e6)});
  }
  T.print(std::cout);
  if (Entries->size() > N)
    std::cout << "(" << Entries->size() - N << " more entries)\n";

  // The trace-tier exit breakdown gives the "trace:<n>" frames above their
  // meaning: which installed traces those samples were, and how each one
  // leaves (committed loop exit, mispredicted side exit, fuel handback).
  const JsonValue *TT = nullptr;
  for (const char *Section : {"timed_run", "profile_run"}) {
    const JsonValue *Run = Report.get(Section);
    if (Run && Run->isObject() && (TT = Run->get("trace_tier")))
      break;
  }
  if (TT && TT->isObject()) {
    const JsonValue *Traces = TT->get("traces");
    std::cout << "\ntrace tier:    " << uintAt(TT, "traces_compiled")
              << " compiled, " << uintAt(TT, "traces_adopted")
              << " adopted, " << uintAt(TT, "invalidations")
              << " invalidated; side-exit rate "
              << Table::fmtPercent(doubleAt(TT, "side_exit_rate") * 100.0)
              << "\n\n";
    if (Traces && Traces->isArray() && Traces->size() != 0) {
      Table TraceT("Installed traces (exit mix per trace)");
      TraceT.row({"frame", "head", "ops", "entries", "iters/entry", "side",
                  "loop", "fuel", "hot guard"});
      size_t TN = std::min<size_t>(Traces->size(), TopN);
      for (size_t I = 0; I != TN; ++I) {
        const JsonValue &E = Traces->at(I);
        uint64_t Id = uintAt(&E, "id");
        uint64_t TEntries = uintAt(&E, "entries");
        uint64_t Iters = uintAt(&E, "iterations");
        // Per-trace frame name as sampled: traces hash into the
        // self-profiler's trace slots by id.
        std::string Frame =
            "trace:" + std::to_string(Id % NumTraceSelfProfSlots);
        if (E.get("invalidated") && E.get("invalidated")->asBool())
          Frame += " (dead)";
        const JsonValue *GE = E.get("guard_exits");
        size_t HotGuard = 0;
        uint64_t HotExits = 0;
        if (GE && GE->isArray())
          for (size_t G = 0; G != GE->size(); ++G)
            if (GE->at(G).asUInt() > HotExits) {
              HotExits = GE->at(G).asUInt();
              HotGuard = G;
            }
        TraceT.row(
            {Frame, Table::fmtInt(uintAt(&E, "head_pc")),
             Table::fmtInt(uintAt(&E, "num_ops")), Table::fmtInt(TEntries),
             Table::fmt(TEntries ? static_cast<double>(Iters) /
                                       static_cast<double>(TEntries)
                                 : 0.0),
             Table::fmtInt(uintAt(&E, "side_exits")),
             Table::fmtInt(uintAt(&E, "loop_exits")),
             Table::fmtInt(uintAt(&E, "fuel_exits")),
             HotExits ? "#" + std::to_string(HotGuard) + " x" +
                            std::to_string(HotExits)
                      : "-"});
      }
      TraceT.print(std::cout);
      if (Traces->size() > TN)
        std::cout << "(" << Traces->size() - TN << " more traces)\n";
    }
  }
  return 0;
}

// -- trace -----------------------------------------------------------------

int runTrace(const std::string &Path, size_t TopN) {
  std::unique_ptr<TraceReader> Reader = TraceReader::openFile(Path);

  struct SiteCount {
    uint64_t Loads = 0;
    uint64_t Prefetches = 0;
  };
  std::vector<SiteCount> Sites;
  if (Reader->ok())
    Sites.resize(Reader->numSites());
  uint64_t Loads = 0, Prefetches = 0;
  uint64_t MinAddr = UINT64_MAX, MaxAddr = 0;

  std::vector<AccessEvent> Buf(4096);
  const auto DecodeStart = std::chrono::steady_clock::now();
  while (size_t N = Reader->pull(Buf.data(), Buf.size())) {
    for (size_t I = 0; I != N; ++I) {
      const AccessEvent &E = Buf[I];
      if (E.SiteId >= Sites.size())
        Sites.resize(E.SiteId + 1);
      SiteCount &S = Sites[E.SiteId];
      if (E.Kind == AccessKind::Prefetch) {
        ++Prefetches;
        ++S.Prefetches;
      } else {
        ++Loads;
        ++S.Loads;
      }
      MinAddr = std::min(MinAddr, E.Address);
      MaxAddr = std::max(MaxAddr, E.Address);
    }
  }
  const double DecodeSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    DecodeStart)
          .count();
  if (!Reader->ok()) {
    // The one-line contract CI leans on: the exact failure class
    // (traceErrorName) plus the reader's position-specific message.
    std::cerr << "sprof-inspect: " << Path << ": "
              << traceErrorName(Reader->errorCode()) << ": "
              << Reader->error() << "\n";
    return 1;
  }

  const TraceProvenance &Prov = Reader->provenance();
  std::cout << "trace:    " << Path << "\n";
  std::cout << "schema:   "
            << (Reader->text() ? TraceTextSchemaV1
                               : Reader->version() >= 2 ? TraceSchemaV2
                                                        : TraceSchemaV1)
            << "\n";
  std::cout << "workload: " << (Prov.Workload.empty() ? "?" : Prov.Workload)
            << " / " << (Prov.DataSet.empty() ? "?" : Prov.DataSet) << " / "
            << (Prov.Method.empty() ? "?" : Prov.Method) << "\n";
  std::cout << "sites:    " << Reader->numSites() << "\n";
  const uint64_t Total = Loads + Prefetches;
  std::cout << "events:   " << Table::fmtInt(Reader->eventCount()) << "\n";
  std::cout << "kinds:    load " << Table::fmtInt(Loads) << " ("
            << Table::fmt(Total ? 100.0 * Loads / Total : 0.0, 1)
            << "%), prefetch " << Table::fmtInt(Prefetches) << " ("
            << Table::fmt(Total ? 100.0 * Prefetches / Total : 0.0, 1)
            << "%)\n";
  if (DecodeSeconds > 0.0)
    std::cout << "decode:   "
              << Table::fmt(static_cast<double>(Total) / DecodeSeconds / 1e6,
                            2)
              << " Mev/s (" << Table::fmt(DecodeSeconds, 4) << " s)\n";
  // The /2 shard index is parsed from the footer once the sequential
  // decode reaches it; /1 and text traces have none.
  const TraceShardIndex &Idx = Reader->index();
  if (Idx.Present) {
    const uint64_t Span = Idx.FooterStart - Idx.EventsStart;
    std::cout << "index:    " << Idx.numChunks() << " chunks, "
              << Table::fmtInt(Idx.Interval) << " events/chunk, event area "
              << Table::fmtInt(Span) << " bytes";
    if (Idx.numChunks() != 0)
      std::cout << " (~"
                << Table::fmtInt(Span / static_cast<uint64_t>(Idx.numChunks()))
                << " B/chunk)";
    std::cout << "\n";
  } else {
    std::cout << "index:    (no shard index)\n";
  }
  if (Total != 0)
    std::cout << "addrs:    [0x" << std::hex << MinAddr << ", 0x" << MaxAddr
              << std::dec << "]\n";
  const TraceEdgeSection &Edges = Reader->edgeSection();
  if (Edges.Present)
    std::cout << "edges:    " << Edges.Edges.size() << " edge counts over "
              << Edges.NumFunctions << " functions ("
              << Edges.Entries.size() << " entry counts)\n";
  else
    std::cout << "edges:    (no edge section)\n";

  std::vector<uint32_t> Order;
  for (uint32_t S = 0; S != Sites.size(); ++S)
    if (Sites[S].Loads + Sites[S].Prefetches != 0)
      Order.push_back(S);
  if (!Order.empty()) {
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t A, uint32_t B) {
                       return Sites[A].Loads + Sites[A].Prefetches >
                              Sites[B].Loads + Sites[B].Prefetches;
                     });
    std::cout << "\n";
    Table T("Busiest sites");
    T.row({"site", "loads", "prefetches"});
    size_t N = std::min<size_t>(Order.size(), TopN);
    for (size_t I = 0; I != N; ++I)
      T.row({Table::fmtInt(Order[I]), Table::fmtInt(Sites[Order[I]].Loads),
             Table::fmtInt(Sites[Order[I]].Prefetches)});
    T.print(std::cout);
    if (Order.size() > N)
      std::cout << "(" << Order.size() - N << " more active sites)\n";
  }
  return 0;
}

// -- import ----------------------------------------------------------------

int runImport(const std::string &LogPath, const std::string &OutPath) {
  std::ifstream File;
  if (LogPath != "-") {
    File.open(LogPath);
    if (!File) {
      std::cerr << "sprof-inspect: cannot open " << LogPath << "\n";
      return 1;
    }
  }
  std::istream &In = LogPath == "-" ? std::cin : File;

  std::string Err;
  const std::optional<TraceImportResult> R =
      importAccessLog(In, OutPath, &Err);
  if (!R) {
    std::cerr << "sprof-inspect: " << LogPath << ": " << Err << "\n";
    return 1;
  }
  std::cout << "imported: " << LogPath << " -> " << OutPath << "\n";
  std::cout << "schema:   " << TraceSchemaV2 << "\n";
  std::cout << "events:   " << Table::fmtInt(R->Events) << " ("
            << Table::fmtInt(R->Loads) << " loads, "
            << Table::fmtInt(R->Prefetches) << " prefetches)\n";
  std::cout << "sites:    " << R->NumSites << "\n";
  std::cout << "bytes:    " << Table::fmtInt(R->Bytes) << "\n";
  return 0;
}

// -- sweep -----------------------------------------------------------------

int runSweepReport(const std::string &Path, size_t TopN) {
  JsonValue Doc;
  if (!loadDocument(Path, "sprof.sweep_report/", 1, Doc))
    return 1;

  const JsonValue *Jobs = Doc.get("jobs");
  if (!Jobs || !Jobs->isArray()) {
    std::cerr << "sprof-inspect: " << Path << ": no jobs array\n";
    return 1;
  }
  uint64_t WallUs = uintAt(&Doc, "wall_us");
  std::cout << "sweep:   " << Path << "\n";
  std::cout << "threads: " << uintAt(&Doc, "threads") << "\n";
  std::cout << "jobs:    " << Jobs->size() << "\n";
  std::cout << "wall:    " << Table::fmt(WallUs / 1000.0) << " ms\n\n";

  // Per-worker timeline, longest-running jobs first: with one row per
  // job the reader scans the stragglers before the noise.
  std::vector<const JsonValue *> Order;
  for (const JsonValue &J : Jobs->items())
    Order.push_back(&J);
  std::stable_sort(Order.begin(), Order.end(),
                   [](const JsonValue *A, const JsonValue *B) {
                     return uintAt(A, "run_us") > uintAt(B, "run_us");
                   });
  Table T("Jobs (longest run first)");
  T.row({"id", "job", "category", "worker", "ready ms", "wait ms",
         "run ms", "ok"});
  size_t N = std::min<size_t>(Order.size(), TopN);
  for (size_t I = 0; I != N; ++I) {
    const JsonValue *J = Order[I];
    T.row({Table::fmtInt(uintAt(J, "id")), stringAt(J, "name", "?"),
           stringAt(J, "category", "?"),
           Table::fmtInt(uintAt(J, "worker")),
           Table::fmt(uintAt(J, "ready_us") / 1000.0),
           Table::fmt(uintAt(J, "queue_wait_us") / 1000.0),
           Table::fmt(uintAt(J, "run_us") / 1000.0),
           J->get("ok") && J->get("ok")->asBool() ? "yes" : "NO"});
  }
  T.print(std::cout);
  if (Order.size() > N)
    std::cout << "(" << Order.size() - N << " more jobs)\n";
  std::cout << "\n";

  if (const JsonValue *CP = Doc.get("critical_path")) {
    std::cout << "critical path: "
              << Table::fmt(uintAt(CP, "duration_us") / 1000.0) << " ms ("
              << Table::fmtPercent(doubleAt(CP, "fraction") * 100.0)
              << " of wall)\n";
    const JsonValue *Chain = CP->get("jobs");
    if (Chain && Chain->isArray() && Chain->size() != 0) {
      std::cout << "  ";
      for (size_t I = 0; I != Chain->size(); ++I) {
        uint64_t Id = Chain->at(I).asUInt();
        std::string Name =
            Id < Jobs->size() ? stringAt(&Jobs->at(Id), "name", "?") : "?";
        if (I != 0)
          std::cout << " -> ";
        std::cout << Name;
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }

  if (const JsonValue *Sched = Doc.get("scheduler")) {
    std::cout << "scheduler: queue high-water "
              << uintAt(Sched, "queue_depth_high_water")
              << ", wakeup retries " << uintAt(Sched, "wakeup_retries")
              << ", " << uintAt(Sched, "jobs_finished") << " finished / "
              << uintAt(Sched, "jobs_failed") << " failed / "
              << uintAt(Sched, "jobs_skipped") << " skipped\n\n";
    const JsonValue *Workers = Sched->get("workers");
    if (Workers && Workers->isArray() && Workers->size() != 0) {
      Table W("Worker utilization");
      W.row({"worker", "jobs", "busy ms", "utilization"});
      for (const JsonValue &WJ : Workers->items())
        W.row({Table::fmtInt(uintAt(&WJ, "worker")),
               Table::fmtInt(uintAt(&WJ, "jobs")),
               Table::fmt(uintAt(&WJ, "busy_us") / 1000.0),
               Table::fmtPercent(doubleAt(&WJ, "utilization") * 100.0)});
      W.print(std::cout);
      std::cout << "\n";
    }
    const JsonValue *Stragglers = Sched->get("stragglers");
    if (Stragglers && Stragglers->isArray() && Stragglers->size() != 0) {
      Table S("Stragglers");
      S.row({"id", "job", "run ms", "wait ms"});
      for (const JsonValue &SJ : Stragglers->items())
        S.row({Table::fmtInt(uintAt(&SJ, "id")), stringAt(&SJ, "name", "?"),
               Table::fmt(uintAt(&SJ, "run_us") / 1000.0),
               Table::fmt(uintAt(&SJ, "queue_wait_us") / 1000.0)});
      S.print(std::cout);
    }
  }
  return 0;
}

// -- blackbox --------------------------------------------------------------

int runBlackbox(const std::string &Path) {
  JsonValue Doc;
  if (!loadDocument(Path, "sprof.flightrec/", 1, Doc))
    return 1;

  std::cout << "flight recorder: " << Path << "\n";
  std::cout << "reason:          " << stringAt(&Doc, "reason", "?") << "\n";
  std::cout << "wall:            " << Table::fmt(uintAt(&Doc, "wall_us") /
                                                 1000.0)
            << " ms\n\n";

  const JsonValue *Workers = Doc.get("workers");
  if (!Workers || !Workers->isArray()) {
    std::cerr << "sprof-inspect: " << Path << ": no workers array\n";
    return 1;
  }
  // In-flight jobs first: on a crash dump they are the suspects.
  bool AnyInFlight = false;
  for (const JsonValue &W : Workers->items()) {
    if (W.get("in_flight") && W.get("in_flight")->asBool()) {
      AnyInFlight = true;
      std::cout << "worker " << uintAt(&W, "worker") << " IN FLIGHT: "
                << stringAt(&W, "current_job", "?") << "\n";
    }
  }
  std::cout << (AnyInFlight ? "\n" : "(no jobs were in flight)\n\n");

  for (const JsonValue &W : Workers->items()) {
    const JsonValue *Events = W.get("events");
    std::string Title =
        "Worker " + std::to_string(uintAt(&W, "worker")) + " events";
    if (!Events || !Events->isArray() || Events->size() == 0) {
      std::cout << Title << ": (none)\n";
      continue;
    }
    Table T(Title);
    T.row({"ts ms", "kind", "event", "detail"});
    for (const JsonValue &E : Events->items())
      T.row({Table::fmt(uintAt(&E, "ts_us") / 1000.0),
             stringAt(&E, "kind", "?"), stringAt(&E, "name", "?"),
             stringAt(&E, "detail")});
    T.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage: sprof-inspect summary <report.json>\n"
            << "       sprof-inspect diff <reference.json> "
               "<candidate.json> [--json=PATH]\n"
            << "       sprof-inspect timeseries <timeseries.json>\n"
            << "       sprof-inspect hotspots <report.json> [--top=N]\n"
            << "       sprof-inspect trace <file.sprof.trace> [--top=N]\n"
            << "       sprof-inspect import <log.txt> <out.sprof.trace>\n"
            << "       sprof-inspect sweep <sweep_report.json> [--top=N]\n"
            << "       sprof-inspect blackbox <flightrec.json>\n";
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args;
  std::string JsonOut;
  size_t TopN = 15;
  for (int I = 1; I != Argc; ++I) {
    if (std::strncmp(Argv[I], "--json=", 7) == 0) {
      JsonOut = Argv[I] + 7;
    } else if (std::strncmp(Argv[I], "--top=", 6) == 0) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[I] + 6, &End, 10);
      if (!End || *End != '\0' || V == 0) {
        std::cerr << "sprof-inspect: bad --top value '" << (Argv[I] + 6)
                  << "' (want a positive integer)\n";
        return 1;
      }
      TopN = V;
    } else if (Argv[I][0] == '-') {
      std::cerr << "sprof-inspect: unknown option '" << Argv[I] << "'\n";
      return usage();
    } else {
      Args.push_back(Argv[I]);
    }
  }
  if (Args.empty())
    return usage();

  const std::string &Cmd = Args[0];
  auto WantArgs = [&](size_t N, const char *Shape) {
    if (Args.size() == N + 1)
      return true;
    std::cerr << "sprof-inspect: '" << Cmd << "' takes " << Shape << " ("
              << Args.size() - 1 << " given)\n";
    return false;
  };
  if (Cmd == "summary")
    return WantArgs(1, "one report path") ? runSummary(Args[1]) : 1;
  if (Cmd == "diff")
    return WantArgs(2, "two report paths")
               ? runDiff(Args[1], Args[2], JsonOut)
               : 1;
  if (Cmd == "timeseries")
    return WantArgs(1, "one timeseries path") ? runTimeseries(Args[1]) : 1;
  if (Cmd == "hotspots")
    return WantArgs(1, "one report path") ? runHotspots(Args[1], TopN) : 1;
  if (Cmd == "trace")
    return WantArgs(1, "one trace path") ? runTrace(Args[1], TopN) : 1;
  if (Cmd == "import")
    return WantArgs(2, "a log path and an output trace path")
               ? runImport(Args[1], Args[2])
               : 1;
  if (Cmd == "sweep")
    return WantArgs(1, "one sweep-report path")
               ? runSweepReport(Args[1], TopN)
               : 1;
  if (Cmd == "blackbox")
    return WantArgs(1, "one flight-recorder dump path")
               ? runBlackbox(Args[1])
               : 1;
  std::cerr << "sprof-inspect: unknown subcommand '" << Cmd << "'\n";
  return usage();
}
