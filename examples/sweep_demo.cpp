//===- examples/sweep_demo.cpp - Sweep observability demo -----------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the sweep-scale observability surface end to end:
///
///   * a small job graph (a three-stage chain that forces a known critical
///     path, plus independent profile -> feedback pairs) runs on the
///     ExperimentEngine with causal tracing on — the Chrome trace carries
///     flow events along dependency edges, and the sweep report
///     ("sprof.sweep_report/1") carries queue-wait vs run time, the
///     critical path, and per-worker utilization;
///   * the flight recorder rides along and can be dumped on request
///     (--dump-flight), on a fatal signal (--crash raises SIGSEGV from a
///     job), or by the hang watchdog (--hang --watchdog=SEC exits with
///     FlightRecorder::WatchdogExitCode after dumping).
///
/// Usage: sweep_demo [--threads=N] [--report=PATH] [--trace=PATH]
///                   [--flight=PATH] [--watchdog=SEC] [--crash] [--hang]
///                   [--dump-flight]
///
/// Default artifacts (sweep_report.json, sweep_trace.json,
/// sweep_flight.json) land under build/ when the demo runs from a checkout
/// with a build tree next to the cwd. Exits nonzero when a sweep-report
/// invariant does not hold; --crash dies by SIGSEGV after the dump and
/// --hang (with a watchdog) exits 42.
///
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"
#include "obs/FlightRecorder.h"
#include "obs/Trace.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

using namespace sprof;

namespace {

std::string defaultOut(const char *Name) {
  std::ifstream Probe("build/CMakeCache.txt");
  return Probe ? std::string("build/") + Name : std::string(Name);
}

void busyFor(unsigned Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

struct Options {
  unsigned Threads = 2;
  std::string ReportPath = defaultOut("sweep_report.json");
  std::string TracePath = defaultOut("sweep_trace.json");
  std::string FlightPath = defaultOut("sweep_flight.json");
  uint64_t WatchdogSec = 0;
  bool Crash = false;
  bool Hang = false;
  bool DumpFlight = false;
};

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--threads=", 10) == 0)
      O.Threads = static_cast<unsigned>(std::strtoul(A + 10, nullptr, 10));
    else if (std::strncmp(A, "--report=", 9) == 0)
      O.ReportPath = A + 9;
    else if (std::strncmp(A, "--trace=", 8) == 0)
      O.TracePath = A + 8;
    else if (std::strncmp(A, "--flight=", 9) == 0)
      O.FlightPath = A + 9;
    else if (std::strncmp(A, "--watchdog=", 11) == 0)
      O.WatchdogSec = std::strtoull(A + 11, nullptr, 10);
    else if (std::strcmp(A, "--crash") == 0)
      O.Crash = true;
    else if (std::strcmp(A, "--hang") == 0)
      O.Hang = true;
    else if (std::strcmp(A, "--dump-flight") == 0)
      O.DumpFlight = true;
    else {
      std::fprintf(stderr, "sweep_demo: unknown argument '%s'\n", A);
      return false;
    }
  }
  if (O.Threads == 0)
    O.Threads = 1;
  return true;
}

bool check(bool Cond, const char *What) {
  if (!Cond)
    std::fprintf(stderr, "sweep_demo: FAILED: %s\n", What);
  return Cond;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return 1;

  EngineOptions Opts;
  Opts.Threads = O.Threads;
  Opts.WatchdogSec = O.WatchdogSec;
  Opts.Obs.Enabled = true;
  Opts.Obs.TraceDetail = 2;
  Opts.Obs.TraceOutputPath = O.TracePath;
  Opts.Obs.SweepReportOutputPath = O.ReportPath;
  Opts.Obs.FlightRecorder = true;
  Opts.Obs.FlightRecorderDumpPath = O.FlightPath;
  ExperimentEngine Engine(Opts);

  // A three-stage chain of the longest jobs in the graph: the critical
  // path must run through it regardless of thread count.
  JobId Prev = 0;
  for (int Stage = 0; Stage < 3; ++Stage) {
    std::string Name = "stage:" + std::to_string(Stage);
    std::vector<JobId> Deps;
    if (Stage > 0)
      Deps.push_back(Prev);
    Prev = Engine.addJob(Name, "stage-job",
                         [](ObsSession *JobObs) {
                           TraceSpan S(JobObs, "execute", "stage-job");
                           busyFor(20);
                         },
                         std::move(Deps));
  }

  // Independent profile -> feedback pairs that parallel workers can
  // overlap with the chain.
  for (int W = 0; W < 3; ++W) {
    std::string Tag = ":w" + std::to_string(W);
    JobId Run = Engine.addJob("profile" + Tag, "run-job",
                              [](ObsSession *JobObs) {
                                TraceSpan S(JobObs, "execute", "run-job");
                                busyFor(6);
                              });
    Engine.addJob("feedback" + Tag, "feedback-job",
                  [](ObsSession *JobObs) {
                    TraceSpan S(JobObs, "execute", "feedback-job");
                    busyFor(4);
                  },
                  {Run});
  }

  if (O.Crash)
    Engine.addJob("crash:boom", "demo-fault",
                  [](ObsSession *JobObs) {
                    TraceSpan S(JobObs, "execute", "demo-fault");
                    busyFor(5);
                    // Die mid-job: the flight recorder's signal hook dumps
                    // the black box, then the default action kills us.
                    std::raise(SIGSEGV);
                  });
  if (O.Hang)
    Engine.addJob("hang:wedge", "demo-fault", [](ObsSession *JobObs) {
      TraceSpan S(JobObs, "execute", "demo-fault");
      // Never finishes; only the watchdog gets us out.
      for (;;)
        busyFor(100);
    });

  Engine.run();

  if (!check(Engine.writeArtifacts(), "writing sweep artifacts"))
    return 1;
  if (O.DumpFlight && Engine.flightRecorder() &&
      !check(Engine.flightRecorder()->dumpFile(O.FlightPath.c_str(),
                                               "request"),
             "dumping the flight recorder"))
    return 1;

  // Validate the invariants the sweep report promises.
  JsonValue Report = Engine.sweepReport();
  const JsonValue *Jobs = Report.get("jobs");
  const JsonValue *Crit = Report.get("critical_path");
  const JsonValue *Sched = Report.get("scheduler");
  bool Ok = true;
  Ok &= check(Report.get("schema") &&
                  Report.get("schema")->asString() == SweepReportSchemaV1,
              "schema is sprof.sweep_report/1");
  Ok &= check(Jobs && Jobs->isArray() && Jobs->size() == 9,
              "jobs array covers the whole graph");
  Ok &= check(Crit && Crit->get("jobs") && Crit->get("jobs")->size() >= 3,
              "critical path spans the stage chain");
  if (Crit && Crit->get("duration_us") && Crit->get("wall_us"))
    Ok &= check(Crit->get("duration_us")->asUInt() <=
                    Crit->get("wall_us")->asUInt(),
                "critical path duration bounded by wall time");
  Ok &= check(Sched && Sched->get("workers") &&
                  Sched->get("workers")->size() == O.Threads,
              "scheduler section has one entry per worker");
  if (TraceCollector *TC = Engine.obs()->traceAtLevel(1))
    Ok &= check(TC->flowEdges().size() >= 5,
                "flow events recorded along dependency edges");
  if (!Ok)
    return 1;

  const JsonValue *Wall = Crit->get("wall_us");
  std::printf("sweep_demo: %zu jobs on %u threads, wall %.1f ms, "
              "critical path %.1f ms (%zu jobs)\n",
              Jobs->size(), O.Threads,
              Wall ? Wall->asUInt() / 1000.0 : 0.0,
              Crit->get("duration_us")->asUInt() / 1000.0,
              Crit->get("jobs")->size());
  std::printf("sweep_demo: report=%s trace=%s%s\n", O.ReportPath.c_str(),
              O.TracePath.c_str(),
              O.DumpFlight ? (" flight=" + O.FlightPath).c_str() : "");
  return 0;
}
