//===- examples/explore_methods.cpp - Compare profiling methods -------------===//
//
// Part of the StrideProf project (see quickstart.cpp for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line explorer: run one SPECINT-like workload through every
/// profiling method and print, per method, the profiling overhead, the
/// share of references processed, and the resulting prefetch speedup --
/// the per-benchmark slice of Figures 16/20/21.
///
/// Usage: explore_methods [workload-name]     (default: 181.mcf)
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  std::string Name = Argc > 1 ? Argv[1] : "181.mcf";
  auto W = makeWorkloadByName(Name);
  if (!W) {
    std::cerr << "unknown workload '" << Name << "'; available:\n";
    for (const auto &Known : makeSpecIntSuite())
      std::cerr << "  " << Known->info().Name << "\n";
    return 1;
  }

  BenchMeasurement BM = measureBenchmark(*W);
  Table T(Name + ": profiling methods compared (profile=train, run=ref)");
  T.row({"method", "overhead", "refs in strideProf", "refs in LFU",
         "speedup"});
  for (ProfilingMethod M : paperStrideMethods()) {
    const MethodMeasurement &MM = BM.Methods.at(M);
    double Overhead =
        ratio(static_cast<double>(MM.ProfiledCycles) -
                  static_cast<double>(BM.EdgeOnlyTrainCycles),
              static_cast<double>(BM.EdgeOnlyTrainCycles));
    T.row({profilingMethodName(M),
           Table::fmtPercent(100.0 * Overhead, 0),
           Table::fmtPercent(percent(
               static_cast<double>(MM.StrideProcessed),
               static_cast<double>(MM.TrainLoadRefs))),
           Table::fmtPercent(percent(
               static_cast<double>(MM.LfuCalls),
               static_cast<double>(MM.TrainLoadRefs))),
           Table::fmt(MM.Speedup) + "x"});
  }
  T.print(std::cout);
  std::cout << "(the paper recommends sample-edge-check: lowest overhead"
            << " at equal speedup)\n";
  return 0;
}
