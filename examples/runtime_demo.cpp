//===- examples/runtime_demo.cpp - Using the profiling runtime standalone ---===//
//
// Part of the StrideProf project (see quickstart.cpp for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling runtime is a normal library: this example feeds it the
/// paper's Figure-4 address sequences directly -- a *phased* stride
/// sequence and an *alternated* one with the identical stride-value
/// profile -- and shows how the stride-difference statistic tells them
/// apart (the key to the PMST class).
///
//===----------------------------------------------------------------------===//

#include "feedback/Classifier.h"
#include "profile/ProfileData.h"
#include "profile/StrideProfiler.h"

#include <iostream>
#include <vector>

using namespace sprof;

namespace {

void feed(StrideProfiler &P, uint32_t Site,
          const std::vector<int64_t> &Strides) {
  uint64_t Addr = 0x100000;
  P.profile(Site, Addr);
  for (int64_t S : Strides) {
    Addr += static_cast<uint64_t>(S);
    P.profile(Site, Addr);
  }
}

void report(const StrideProfile &SP, uint32_t Site, const char *What) {
  const StrideSiteSummary &S = SP.site(Site);
  std::cout << What << ":\n  total strides: " << S.TotalStrides
            << "\n  zero stride-diffs: " << S.NumZeroDiff
            << "\n  top strides: ";
  for (size_t I = 0; I != S.TopStrides.size(); ++I) {
    if (I)
      std::cout << ", ";
    std::cout << S.TopStrides[I].Value << " (x" << S.TopStrides[I].Count
              << ")";
  }
  ClassifierConfig Relaxed;
  // The toy sequences are short; relax the PMST share threshold so the
  // phase/alternation contrast is the only discriminator.
  Relaxed.PmstThreshold = 0.5;
  std::cout << "\n  class: "
            << strideClassName(classifyStrideSummary(S, Relaxed)) << "\n\n";
}

} // namespace

int main() {
  StrideProfilerConfig Config;
  Config.AddrCoarsenShift = 0; // exact, as in the paper's Figure 6
  Config.Lfu.CoarsenShift = 0;
  StrideProfiler P(2, Config);

  // Figure 4(a): phased -- runs of 2s then runs of 100s, repeated.
  std::vector<int64_t> Phased;
  for (int Rep = 0; Rep != 20; ++Rep)
    for (int I = 0; I != 10; ++I)
      Phased.push_back(Rep % 2 ? 100 : 2);
  feed(P, 0, Phased);

  // Figure 4(c): alternated -- same multiset of strides, interleaved.
  std::vector<int64_t> Alternated;
  for (int I = 0; I != 100; ++I) {
    Alternated.push_back(2);
    Alternated.push_back(100);
  }
  feed(P, 1, Alternated);

  StrideProfile SP = StrideProfile::fromProfiler(P);
  report(SP, 0, "phased sequence (Figure 4a)");
  report(SP, 1, "alternated sequence (Figure 4c)");

  std::cout << "Both sites have the same top stride values, but only the\n"
               "phased site has mostly-zero stride differences -- that is\n"
               "what makes it profitable to prefetch with a runtime-"
               "computed\nstride (PMST, Figure 3d).\n";
  return 0;
}
