//===- examples/telemetry_demo.cpp - Telemetry end to end -------------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer end to end: run the quickstart's pointer-chase
/// workload through the full pipeline with telemetry enabled, then write
///
///   * a machine-readable run report (schema "sprof.run_report/5") with the
///     profiles, classification verdicts, prefetch-outcome attribution, a
///     profile-accuracy diff against a sampled profiling run, the trace
///     tier's compile/entry/side-exit accounting (the demo runs under
///     Engine::Trace), and every registry metric,
///   * a second run report for the sampled run (so `sprof-inspect diff`
///     has a report pair to compare),
///   * a Chrome trace_event file (load it at chrome://tracing or
///     https://ui.perfetto.dev) with the nested phase spans plus "C"
///     counter samples from the background TelemetrySampler,
///   * the sampler's sprof.timeseries/1 artifact (render with
///     `sprof-inspect timeseries`),
///   * the engine self-profiler's folded-stack file (feed to
///     flamegraph.pl, or `sprof-inspect hotspots` on the run report), and
///   * a sprof.trace/1 capture of the profile run's access-event stream
///     (inspect with `sprof-inspect trace`), which the demo immediately
///     replays through the stream frontend and checks for bit-identical
///     stride and edge profiles.
///
/// Usage: telemetry_demo [report.json [trace.json [sampled_report.json
///                       [timeseries.json [profile.folded
///                       [capture.sprof.trace]]]]]]
/// (defaults: telemetry_report.json, telemetry_trace.json,
/// telemetry_sampled_report.json, telemetry_timeseries.json,
/// telemetry_profile.folded, telemetry_capture.sprof.trace — written
/// under build/ when the demo runs from a checkout with a build tree, so
/// default runs never strand artifacts in the repo root)
///
//===----------------------------------------------------------------------===//

#include "driver/TraceReplay.h"
#include "ir/IRBuilder.h"
#include "obs/Report.h"
#include "obs/Sampler.h"
#include "obs/SelfProfiler.h"
#include "support/Random.h"
#include "workloads/Builders.h"

#include <fstream>
#include <iostream>

using namespace sprof;

namespace {

/// The quickstart workload: one pointer-chasing loop over a 64-byte-stride
/// list with 5% allocation noise, re-entered three times.
class ChaseDemo final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"telemetry.chase", "IR", "Figure 3 pointer chase"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const uint64_t Count = DS == DataSet::Ref ? 60000 : 20000;
    Program Prog;
    Prog.M.Name = "telemetry";
    BumpAllocator Alloc;
    Rng R(42);

    ListSpec Spec;
    Spec.Count = Count;
    Spec.NodeBytes = 64;
    Spec.NoisePercent = 5;
    uint64_t Head = buildList(Prog.Memory, Alloc, R, Spec);

    IRBuilder B(Prog.M);
    B.startFunction("main", 0);
    Reg Acc = B.movImm(0);
    emitCountedLoop(B, Operand::imm(3), [&](IRBuilder &OB, Reg) {
      Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
      emitPointerLoop(OB, P, [&](IRBuilder &IB, Reg Node) {
        Reg D = IB.load(Node, 8);  // D = P->data
        IB.add(Operand::reg(Acc), Operand::reg(D), Acc);
        IB.load(Node, 0, Node);    // P = P->next
      });
    });
    B.halt();
    return Prog;
  }
};

} // namespace

/// Default artifact location: the common no-argument invocation is
/// `./build/examples/telemetry_demo` from the repo root, which used to
/// strand six artifacts (including the .sprof.trace capture) in the
/// checkout. When a build tree sits next to the cwd, default artifacts
/// land under it; explicit paths are always taken verbatim.
static std::string defaultOut(const char *Name) {
  std::ifstream Probe("build/CMakeCache.txt");
  return Probe ? std::string("build/") + Name : std::string(Name);
}

int main(int Argc, char **Argv) {
  const std::string ReportPath =
      Argc > 1 ? Argv[1] : defaultOut("telemetry_report.json");
  const std::string TracePath =
      Argc > 2 ? Argv[2] : defaultOut("telemetry_trace.json");
  const std::string SampledReportPath =
      Argc > 3 ? Argv[3] : defaultOut("telemetry_sampled_report.json");
  const std::string TimeSeriesPath =
      Argc > 4 ? Argv[4] : defaultOut("telemetry_timeseries.json");
  const std::string FoldedPath =
      Argc > 5 ? Argv[5] : defaultOut("telemetry_profile.folded");
  const std::string CapturePath =
      Argc > 6 ? Argv[6] : defaultOut("telemetry_capture.sprof.trace");

  ChaseDemo Demo;
  PipelineConfig Config;
  Config.Obs.Enabled = true;
  Config.Obs.TraceDetail = 2;
  Config.Obs.TraceOutputPath = TracePath;
  Config.Obs.ReportOutputPath = ReportPath;
  // Background time-series sampling: snapshot every counter/gauge every
  // 200us into a bounded ring, emitted both as Chrome-trace "C" events and
  // as the standalone sprof.timeseries/1 artifact.
  Config.Obs.SampleIntervalUs = 200;
  Config.Obs.TimeSeriesOutputPath = TimeSeriesPath;
  // Engine self-profiling: window-sample the dispatch loop and export the
  // folded-stack attribution. Running under the trace tier, hot-loop
  // samples land in "trace:<n>" frames and the report grows a trace_tier
  // section (rendered by `sprof-inspect hotspots`).
  Config.Obs.SelfProfile = true;
  Config.Obs.FoldedProfilePath = FoldedPath;
  Config.Interp.Exec = InterpreterConfig::Engine::Trace;
  Config.Memory.EnableAttribution = true;
  // Capture the profile run's access-event stream into a replayable
  // sprof.trace/1 file (reported in profile_run.trace).
  Config.TraceCapturePath = CapturePath;
  Pipeline P(Demo, Config);

  // The full pipeline under one telemetry session: profile on train,
  // baseline + prefetched timing on ref.
  ProfileRunResult Prof =
      P.runProfile(ProfilingMethod::EdgeCheck, DataSet::Train);
  RunStats Baseline = P.runBaseline(DataSet::Ref);
  TimedRunResult Timed =
      P.runPrefetched(DataSet::Ref, Prof.Edges, Prof.Strides);

  // A second, sampled profiling run of the same workload, and the
  // Figures 23-25 accuracy diff of its profile against the exhaustive one.
  // A separate capture-free pipeline on the same telemetry session keeps
  // the captured trace describing the exhaustive run.
  PipelineConfig SampledConfig = Config;
  SampledConfig.TraceCapturePath.clear();
  Pipeline PS(Demo, SampledConfig, P.obs());
  ProfileRunResult Sampled =
      PS.runProfile(ProfilingMethod::SampleEdgeCheck, DataSet::Train);
  ProfileDiffResult Diff =
      diffStrideProfiles(Prof.Strides, Sampled.Strides, Config.Classifier);

  // Aggregate accounting across all three runs (RunStats::operator+=).
  RunStats Suite = Prof.Stats;
  Suite += Baseline;
  Suite += Timed.Stats;
  std::cout << "ran 3 pipeline stages, "
            << Suite.Instructions << " instructions / "
            << Suite.Cycles << " cycles total\n";

  JsonValue Report = buildRunReport(Demo.info().Name, P.config(), &Prof,
                                    &Timed, &Baseline, P.obs(), {}, &Diff);
  if (!writeJsonFile(ReportPath, Report)) {
    std::cerr << "error: cannot write " << ReportPath << "\n";
    return 1;
  }
  // The sampled run's own report (no timed half) gives sprof-inspect a
  // report pair: `sprof-inspect diff <report> <sampled_report>`.
  JsonValue SampledReport = buildRunReport(Demo.info().Name, P.config(),
                                           &Sampled, nullptr, nullptr,
                                           nullptr);
  if (!writeJsonFile(SampledReportPath, SampledReport)) {
    std::cerr << "error: cannot write " << SampledReportPath << "\n";
    return 1;
  }
  if (!P.obs()->writeArtifacts()) {
    std::cerr << "error: cannot write " << TracePath << "\n";
    return 1;
  }

  const TraceCollector &Trace = P.obs()->trace();
  std::cout << "run report: " << ReportPath << "\n"
            << "chrome trace: " << TracePath << " (" << Trace.events().size()
            << " spans; open at chrome://tracing)\n";

  // The sampler must have observed the run (stop() always takes a final
  // snapshot, so even an instant run yields >= 1 sample), and the decoded
  // engine must have fed the self-profiler.
  const TelemetrySampler *Sampler = P.obs()->sampler();
  if (!Sampler || Sampler->samplesTaken() == 0) {
    std::cerr << "error: telemetry sampler took no samples\n";
    return 1;
  }
  std::cout << "timeseries: " << TimeSeriesPath << " ("
            << Sampler->samples().size() << " samples, "
            << Sampler->dropped() << " dropped)\n";
  const EngineSelfProfiler *SelfProf = P.obs()->selfProfiler();
  if (!SelfProf || SelfProf->totalSamples() == 0) {
    std::cerr << "error: engine self-profiler took no samples\n";
    return 1;
  }
  std::cout << "folded profile: " << FoldedPath << " ("
            << SelfProf->totalSamples() << " samples over "
            << SelfProf->entries().size() << " hot cells)\n";

  // The phases the pipeline must have traced; failure here means the
  // instrumentation points regressed.
  for (const char *Phase : {"run-profile", "instrument", "execute",
                            "strideprof-harvest", "run-baseline",
                            "timed-run", "classify", "prefetch-insert"}) {
    if (!Trace.hasSpan(Phase)) {
      std::cerr << "error: missing trace span '" << Phase << "'\n";
      return 1;
    }
  }
  // The attribution identity must hold exactly; a drifting sum means the
  // memsys stopped retiring every prefetch mark exactly once.
  const PrefetchOutcomeCounts &O = Timed.Attribution.Total;
  if (O.issued() != Timed.Stats.Mem.PrefetchesIssued) {
    std::cerr << "error: attribution sum " << O.issued()
              << " != prefetches issued "
              << Timed.Stats.Mem.PrefetchesIssued << "\n";
    return 1;
  }
  std::cout << "prefetches: " << O.issued() << " issued, " << O.Useful
            << " useful / " << O.Late << " late / " << O.Early
            << " early / " << O.Redundant << " redundant\n";
  std::cout << "sampled-profile accuracy: " << Diff.WeightedAccuracy * 100.0
            << "% over " << Diff.SitesCompared << " sites ("
            << SampledReportPath << ")\n";

  // The capture must have recorded every strideProf event the profiler
  // saw, and replaying it must reproduce the profiles bit for bit.
  if (!Prof.Capture.Enabled ||
      Prof.Capture.Events != Prof.StrideInvocations) {
    std::cerr << "error: trace capture recorded " << Prof.Capture.Events
              << " events, expected " << Prof.StrideInvocations << "\n";
    return 1;
  }
  TraceReplayOptions ReplayOpts;
  ReplayOpts.SimulateMemory = false; // keep the demo quick
  TraceReplayResult Replay = replayTraceFile(CapturePath, ReplayOpts);
  if (!Replay.Ok) {
    std::cerr << "error: trace replay failed: " << Replay.Error << "\n";
    return 1;
  }
  if (strideProfileToJson(Replay.Profile.Strides).str() !=
          strideProfileToJson(Prof.Strides).str() ||
      edgeProfileToJson(Replay.Profile.Edges).str() !=
          edgeProfileToJson(Prof.Edges).str()) {
    std::cerr << "error: replayed profiles differ from the live run\n";
    return 1;
  }
  std::cout << "trace capture: " << CapturePath << " ("
            << Prof.Capture.Events << " events, " << Prof.Capture.Bytes
            << " bytes; replay bit-identical)\n";

  double Speedup = static_cast<double>(Baseline.Cycles) /
                   static_cast<double>(Timed.Stats.Cycles);
  std::cout << "speedup: " << Speedup << "x\n";
  return Speedup > 1.0 ? 0 : 1;
}
