//===- examples/gc_sweep.cpp - Phased multi-stride prefetching --------------===//
//
// Part of the StrideProf project (see quickstart.cpp for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure-2 scenario on the 254.gap-like workload: a garbage
/// collector sweeping a heap of variable-size objects. The sweep load has
/// *four* dominant strides (one per object-size class) arranged in phases,
/// so it classifies as PMST and is prefetched with the runtime-stride
/// sequence of Figure 3d. This example prints the discovered multi-stride
/// profile, the classification, and the cache-level effect of the
/// prefetches.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <iostream>

using namespace sprof;

int main() {
  auto W = makeGapLike();
  Pipeline P(*W);

  ProfileRunResult Prof = P.runProfile(ProfilingMethod::EdgeCheck,
                                       DataSet::Train,
                                       /*WithMemorySystem=*/false);

  // Show the multi-stride sites the profiler discovered.
  std::cout << "multi-stride load sites (>= 2 dominant strides):\n";
  for (uint32_t S = 0; S != Prof.Strides.numSites(); ++S) {
    const StrideSiteSummary &Sum = Prof.Strides.site(S);
    if (Sum.TotalStrides < 1000 || Sum.TopStrides.size() < 2)
      continue;
    if (Sum.top4Freq() * 2 < Sum.TotalStrides)
      continue;
    std::cout << "  site " << S << ": total=" << Sum.TotalStrides
              << " zero-diff=" << Sum.NumZeroDiff << " top=[";
    for (size_t I = 0; I != Sum.TopStrides.size() && I != 4; ++I) {
      if (I)
        std::cout << ", ";
      std::cout << Sum.TopStrides[I].Value << ":"
                << Sum.TopStrides[I].Count;
    }
    std::cout << "] class="
              << strideClassName(classifyStrideSummary(Sum, {})) << "\n";
  }

  RunStats Base = P.runBaseline(DataSet::Ref);
  TimedRunResult Fast = P.runPrefetched(DataSet::Ref, Prof.Edges,
                                        Prof.Strides);
  std::cout << "\nPMST prefetch sequences inserted: "
            << Fast.Prefetches.PmstPrefetches << "\n";
  std::cout << "baseline:   " << Base.Cycles << " cycles ("
            << Base.Mem.StallCycles << " stall)\n";
  std::cout << "prefetched: " << Fast.Stats.Cycles << " cycles ("
            << Fast.Stats.Mem.StallCycles << " stall, "
            << Fast.Stats.Mem.PrefetchesIssued << " prefetches, "
            << Fast.Stats.Mem.LatePrefetchHits << " late)\n";
  std::cout << "speedup:    "
            << static_cast<double>(Base.Cycles) / Fast.Stats.Cycles
            << "x\n";
  return 0;
}
