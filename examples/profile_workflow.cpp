//===- examples/profile_workflow.cpp - Two-pass / cross-compile workflow ----===//
//
// Part of the StrideProf project (see quickstart.cpp for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The usability scenario of paper Section 3.2: in a cross-compilation
/// setting the instrumented binary runs on a different machine, so profiles
/// must round-trip through files. This example instruments 181.mcf-like
/// with the single-pass sample-edge-check method, writes the combined
/// edge+stride profile to disk, reads it back (as the feedback compilation
/// would), and verifies the rebuilt binary performs identically to one fed
/// the in-memory profiles.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "profile/ProfileData.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace sprof;

int main() {
  auto W = makeMcfLike();
  Pipeline P(*W);

  // Pass 1 (on the "target machine"): one integrated profiling run.
  ProfileRunResult Prof = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                       DataSet::Train,
                                       /*WithMemorySystem=*/false);

  // Ship the profiles as a file.
  const char *Path = "mcf.sprof.txt";
  {
    std::ofstream OS(Path);
    writeProfiles(Prof.Edges, Prof.Strides, OS);
  }
  std::cout << "wrote combined edge+stride profile to " << Path << "\n";

  // Pass 2 (on the "build machine"): read the profile back and compile
  // with feedback.
  Program Fresh = W->build(DataSet::Ref);
  EdgeProfile Edges;
  StrideProfile Strides;
  {
    std::ifstream IS(Path);
    if (!readProfiles(IS, Fresh.M.Functions.size(), Fresh.M.NumLoadSites,
                      Edges, Strides)) {
      std::cerr << "error: malformed profile file\n";
      return 1;
    }
  }

  TimedRunResult FromDisk = P.runPrefetched(DataSet::Ref, Edges, Strides);
  TimedRunResult FromMemory =
      P.runPrefetched(DataSet::Ref, Prof.Edges, Prof.Strides);

  std::cout << "prefetches inserted (disk profile):   "
            << FromDisk.Prefetches.SsstPrefetches << " SSST, "
            << FromDisk.Prefetches.PmstPrefetches << " PMST\n";
  std::cout << "cycles via disk profile:   " << FromDisk.Stats.Cycles
            << "\ncycles via memory profile: " << FromMemory.Stats.Cycles
            << "\n";
  if (FromDisk.Stats.Cycles != FromMemory.Stats.Cycles) {
    std::cerr << "error: profile round-trip changed the build\n";
    return 1;
  }
  std::cout << "profile file round-trip is lossless\n";
  return 0;
}
