//===- examples/profile_workflow.cpp - Two-pass / cross-compile workflow ----===//
//
// Part of the StrideProf project (see quickstart.cpp for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The usability scenario of paper Section 3.2: in a cross-compilation
/// setting the instrumented binary runs on a different machine, so profiles
/// must round-trip through files. This example instruments 181.mcf-like
/// with the single-pass sample-edge-check method, saves the combined
/// edge+stride profile as a versioned sprof.profile/1 file, loads it back
/// (as the feedback compilation would), and verifies the rebuilt binary
/// performs identically to one fed the in-memory profiles.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "profile/ProfileStore.h"

#include <iostream>

using namespace sprof;

int main() {
  auto W = makeMcfLike();
  Pipeline P(*W);

  // Pass 1 (on the "target machine"): one integrated profiling run.
  ProfileRunResult Prof = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                       DataSet::Train,
                                       /*WithMemorySystem=*/false);

  // Ship the profiles as a file, stamped with their provenance so the
  // feedback compilation can refuse profiles from the wrong program.
  const char *Path = "mcf.sprof.txt";
  ProfileStore Store({W->info().Name,
                      profilingMethodName(ProfilingMethod::SampleEdgeCheck),
                      dataSetName(DataSet::Train)},
                     Prof.Edges, Prof.Strides);
  if (!Store.saveFile(Path)) {
    std::cerr << "error: cannot write " << Path << "\n";
    return 1;
  }
  std::cout << "wrote combined edge+stride profile to " << Path << "\n";

  // Pass 2 (on the "build machine"): load the profile back and compile
  // with feedback.
  ProfileStore Loaded;
  std::string Error;
  if (!ProfileStore::loadFile(Path, Loaded, &Error)) {
    std::cerr << "error: " << Error << "\n";
    return 1;
  }
  std::cout << "loaded profile: workload " << Loaded.meta().Workload
            << ", method " << Loaded.meta().Method << ", dataset "
            << Loaded.meta().DataSet << "\n";

  TimedRunResult FromDisk =
      P.runPrefetched(DataSet::Ref, Loaded.edges(), Loaded.strides());
  TimedRunResult FromMemory =
      P.runPrefetched(DataSet::Ref, Prof.Edges, Prof.Strides);

  std::cout << "prefetches inserted (disk profile):   "
            << FromDisk.Prefetches.SsstPrefetches << " SSST, "
            << FromDisk.Prefetches.PmstPrefetches << " PMST\n";
  std::cout << "cycles via disk profile:   " << FromDisk.Stats.Cycles
            << "\ncycles via memory profile: " << FromMemory.Stats.Cycles
            << "\n";
  if (FromDisk.Stats.Cycles != FromMemory.Stats.Cycles) {
    std::cerr << "error: profile round-trip changed the build\n";
    return 1;
  }
  std::cout << "profile file round-trip is lossless\n";
  return 0;
}
