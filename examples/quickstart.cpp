//===- examples/quickstart.cpp - StrideProf in five minutes -----------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build the paper's Figure-3 pointer-chasing loop with the
/// IRBuilder, lay out a linked list the way a program-owned allocator
/// would, and push it through the whole pipeline: edge-check
/// instrumentation, a profiling run, Figure-5 classification, prefetch
/// insertion, and a before/after timing comparison.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRBuilder.h"
#include "support/Random.h"
#include "workloads/Builders.h"

#include <iostream>

using namespace sprof;

namespace {

/// A minimal workload: one pointer-chasing loop over a 64-byte-stride list
/// with 5% allocation noise, re-entered three times.
class ChaseDemo final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"quickstart.chase", "IR", "Figure 3 pointer chase"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const uint64_t Count = DS == DataSet::Ref ? 60000 : 20000;
    Program Prog;
    Prog.M.Name = "quickstart";
    BumpAllocator Alloc;
    Rng R(42);

    ListSpec Spec;
    Spec.Count = Count;
    Spec.NodeBytes = 64;
    Spec.NoisePercent = 5;
    uint64_t Head = buildList(Prog.Memory, Alloc, R, Spec);

    IRBuilder B(Prog.M);
    B.startFunction("main", 0);
    Reg Acc = B.movImm(0);
    emitCountedLoop(B, Operand::imm(3), [&](IRBuilder &OB, Reg) {
      Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
      emitPointerLoop(OB, P, [&](IRBuilder &IB, Reg Node) {
        Reg D = IB.load(Node, 8);  // D = P->data
        IB.add(Operand::reg(Acc), Operand::reg(D), Acc);
        IB.load(Node, 0, Node);    // P = P->next
      });
    });
    B.halt();
    return Prog;
  }
};

} // namespace

int main() {
  ChaseDemo Demo;
  Pipeline P(Demo);

  // 1. Instrument with the edge-check method and run on the train input.
  std::cout << "== profiling run (edge-check, train input) ==\n";
  ProfileRunResult Prof = P.runProfile(ProfilingMethod::EdgeCheck,
                                       DataSet::Train);
  std::cout << "strideProf invocations: " << Prof.StrideInvocations
            << ", processed: " << Prof.StrideProcessed << "\n\n";

  std::cout << "stride profile:\n";
  Prof.Strides.print(std::cout);

  // 2. Classify and plan prefetches (Figure 5).
  Program Fresh = Demo.build(DataSet::Ref);
  FeedbackResult FB = runFeedback(Fresh.M, Prof.Edges, Prof.Strides);
  std::cout << "\nprefetch decisions:\n";
  for (const PrefetchDecision &D : FB.Decisions)
    std::cout << "  site " << D.SiteId << ": "
              << strideClassName(D.Kind) << ", stride " << D.StrideValue
              << ", distance K=" << D.Distance << "\n";

  // 3. Measure: baseline vs prefetched on the reference input.
  RunStats Base = P.runBaseline(DataSet::Ref);
  TimedRunResult Fast = P.runPrefetched(DataSet::Ref, Prof.Edges,
                                        Prof.Strides);
  double Speedup = static_cast<double>(Base.Cycles) /
                   static_cast<double>(Fast.Stats.Cycles);
  std::cout << "\nbaseline cycles:   " << Base.Cycles
            << "\nprefetched cycles: " << Fast.Stats.Cycles
            << "\nspeedup:           " << Speedup << "x\n";
  return Speedup > 1.0 ? 0 : 1;
}
