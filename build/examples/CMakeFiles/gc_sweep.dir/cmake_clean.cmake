file(REMOVE_RECURSE
  "CMakeFiles/gc_sweep.dir/gc_sweep.cpp.o"
  "CMakeFiles/gc_sweep.dir/gc_sweep.cpp.o.d"
  "gc_sweep"
  "gc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
