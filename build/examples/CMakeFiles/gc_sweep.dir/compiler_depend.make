# Empty compiler generated dependencies file for gc_sweep.
# This may be replaced when dependencies are built.
