
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/explore_methods.cpp" "examples/CMakeFiles/explore_methods.dir/explore_methods.cpp.o" "gcc" "examples/CMakeFiles/explore_methods.dir/explore_methods.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/sprof_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sprof_obs_report.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/sprof_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/sprof_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/sprof_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sprof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sprof_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/sprof_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sprof_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sprof_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sprof_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
