# Empty dependencies file for explore_methods.
# This may be replaced when dependencies are built.
