file(REMOVE_RECURSE
  "CMakeFiles/explore_methods.dir/explore_methods.cpp.o"
  "CMakeFiles/explore_methods.dir/explore_methods.cpp.o.d"
  "explore_methods"
  "explore_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
