# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_workflow "/root/repo/build/examples/profile_workflow")
set_tests_properties(example_profile_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gc_sweep "/root/repo/build/examples/gc_sweep")
set_tests_properties(example_gc_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_runtime_demo "/root/repo/build/examples/runtime_demo")
set_tests_properties(example_runtime_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explore_methods "/root/repo/build/examples/explore_methods" "197.parser")
set_tests_properties(example_explore_methods PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_telemetry_demo "/root/repo/build/examples/telemetry_demo" "telemetry_report.json" "telemetry_trace.json")
set_tests_properties(example_telemetry_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(telemetry_schema "/root/repo/scripts/check_telemetry_schema.sh" "/root/repo/build/examples/telemetry_demo" "/root/repo/build/examples")
set_tests_properties(telemetry_schema PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
