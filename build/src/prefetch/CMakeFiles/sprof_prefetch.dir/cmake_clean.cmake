file(REMOVE_RECURSE
  "CMakeFiles/sprof_prefetch.dir/PrefetchInsertion.cpp.o"
  "CMakeFiles/sprof_prefetch.dir/PrefetchInsertion.cpp.o.d"
  "libsprof_prefetch.a"
  "libsprof_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
