# Empty dependencies file for sprof_prefetch.
# This may be replaced when dependencies are built.
