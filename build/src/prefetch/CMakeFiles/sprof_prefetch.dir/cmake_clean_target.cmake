file(REMOVE_RECURSE
  "libsprof_prefetch.a"
)
