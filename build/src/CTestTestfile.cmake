# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("obs")
subdirs("ir")
subdirs("analysis")
subdirs("profile")
subdirs("memsys")
subdirs("interp")
subdirs("instrument")
subdirs("feedback")
subdirs("prefetch")
subdirs("workloads")
subdirs("driver")
