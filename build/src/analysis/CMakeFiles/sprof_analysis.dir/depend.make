# Empty dependencies file for sprof_analysis.
# This may be replaced when dependencies are built.
