file(REMOVE_RECURSE
  "libsprof_analysis.a"
)
