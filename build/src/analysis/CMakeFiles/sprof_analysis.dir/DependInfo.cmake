
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CfgEdit.cpp" "src/analysis/CMakeFiles/sprof_analysis.dir/CfgEdit.cpp.o" "gcc" "src/analysis/CMakeFiles/sprof_analysis.dir/CfgEdit.cpp.o.d"
  "/root/repo/src/analysis/ControlEquivalence.cpp" "src/analysis/CMakeFiles/sprof_analysis.dir/ControlEquivalence.cpp.o" "gcc" "src/analysis/CMakeFiles/sprof_analysis.dir/ControlEquivalence.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/sprof_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/sprof_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/EquivalentLoads.cpp" "src/analysis/CMakeFiles/sprof_analysis.dir/EquivalentLoads.cpp.o" "gcc" "src/analysis/CMakeFiles/sprof_analysis.dir/EquivalentLoads.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/analysis/CMakeFiles/sprof_analysis.dir/LoopInfo.cpp.o" "gcc" "src/analysis/CMakeFiles/sprof_analysis.dir/LoopInfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sprof_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
