file(REMOVE_RECURSE
  "CMakeFiles/sprof_analysis.dir/CfgEdit.cpp.o"
  "CMakeFiles/sprof_analysis.dir/CfgEdit.cpp.o.d"
  "CMakeFiles/sprof_analysis.dir/ControlEquivalence.cpp.o"
  "CMakeFiles/sprof_analysis.dir/ControlEquivalence.cpp.o.d"
  "CMakeFiles/sprof_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/sprof_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/sprof_analysis.dir/EquivalentLoads.cpp.o"
  "CMakeFiles/sprof_analysis.dir/EquivalentLoads.cpp.o.d"
  "CMakeFiles/sprof_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/sprof_analysis.dir/LoopInfo.cpp.o.d"
  "libsprof_analysis.a"
  "libsprof_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
