file(REMOVE_RECURSE
  "libsprof_memsys.a"
)
