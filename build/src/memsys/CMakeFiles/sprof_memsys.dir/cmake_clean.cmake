file(REMOVE_RECURSE
  "CMakeFiles/sprof_memsys.dir/Cache.cpp.o"
  "CMakeFiles/sprof_memsys.dir/Cache.cpp.o.d"
  "libsprof_memsys.a"
  "libsprof_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
