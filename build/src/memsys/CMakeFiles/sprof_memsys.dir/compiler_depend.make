# Empty compiler generated dependencies file for sprof_memsys.
# This may be replaced when dependencies are built.
