# Empty dependencies file for sprof_workloads.
# This may be replaced when dependencies are built.
