
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Builders.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/Builders.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/Builders.cpp.o.d"
  "/root/repo/src/workloads/Suite.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/Suite.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/Suite.cpp.o.d"
  "/root/repo/src/workloads/WorkloadBzip2.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadBzip2.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadBzip2.cpp.o.d"
  "/root/repo/src/workloads/WorkloadCrafty.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadCrafty.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadCrafty.cpp.o.d"
  "/root/repo/src/workloads/WorkloadEon.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadEon.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadEon.cpp.o.d"
  "/root/repo/src/workloads/WorkloadGap.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadGap.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadGap.cpp.o.d"
  "/root/repo/src/workloads/WorkloadGcc.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadGcc.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadGcc.cpp.o.d"
  "/root/repo/src/workloads/WorkloadGzip.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadGzip.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadGzip.cpp.o.d"
  "/root/repo/src/workloads/WorkloadMcf.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadMcf.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadMcf.cpp.o.d"
  "/root/repo/src/workloads/WorkloadParser.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadParser.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadParser.cpp.o.d"
  "/root/repo/src/workloads/WorkloadPerlbmk.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadPerlbmk.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadPerlbmk.cpp.o.d"
  "/root/repo/src/workloads/WorkloadTwolf.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadTwolf.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadTwolf.cpp.o.d"
  "/root/repo/src/workloads/WorkloadVortex.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadVortex.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadVortex.cpp.o.d"
  "/root/repo/src/workloads/WorkloadVpr.cpp" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadVpr.cpp.o" "gcc" "src/workloads/CMakeFiles/sprof_workloads.dir/WorkloadVpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sprof_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sprof_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sprof_support.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/sprof_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sprof_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sprof_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
