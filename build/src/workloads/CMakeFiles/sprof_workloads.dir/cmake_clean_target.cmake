file(REMOVE_RECURSE
  "libsprof_workloads.a"
)
