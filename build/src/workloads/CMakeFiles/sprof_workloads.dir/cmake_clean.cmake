file(REMOVE_RECURSE
  "CMakeFiles/sprof_workloads.dir/Builders.cpp.o"
  "CMakeFiles/sprof_workloads.dir/Builders.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/Suite.cpp.o"
  "CMakeFiles/sprof_workloads.dir/Suite.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadBzip2.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadBzip2.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadCrafty.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadCrafty.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadEon.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadEon.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadGap.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadGap.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadGcc.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadGcc.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadGzip.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadGzip.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadMcf.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadMcf.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadParser.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadParser.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadPerlbmk.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadPerlbmk.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadTwolf.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadTwolf.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadVortex.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadVortex.cpp.o.d"
  "CMakeFiles/sprof_workloads.dir/WorkloadVpr.cpp.o"
  "CMakeFiles/sprof_workloads.dir/WorkloadVpr.cpp.o.d"
  "libsprof_workloads.a"
  "libsprof_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
