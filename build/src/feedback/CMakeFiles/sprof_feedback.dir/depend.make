# Empty dependencies file for sprof_feedback.
# This may be replaced when dependencies are built.
