# Empty compiler generated dependencies file for sprof_feedback.
# This may be replaced when dependencies are built.
