file(REMOVE_RECURSE
  "CMakeFiles/sprof_feedback.dir/Classifier.cpp.o"
  "CMakeFiles/sprof_feedback.dir/Classifier.cpp.o.d"
  "libsprof_feedback.a"
  "libsprof_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
