file(REMOVE_RECURSE
  "libsprof_feedback.a"
)
