file(REMOVE_RECURSE
  "libsprof_support.a"
)
