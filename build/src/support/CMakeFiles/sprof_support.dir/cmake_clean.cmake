file(REMOVE_RECURSE
  "CMakeFiles/sprof_support.dir/Stats.cpp.o"
  "CMakeFiles/sprof_support.dir/Stats.cpp.o.d"
  "CMakeFiles/sprof_support.dir/Table.cpp.o"
  "CMakeFiles/sprof_support.dir/Table.cpp.o.d"
  "libsprof_support.a"
  "libsprof_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
