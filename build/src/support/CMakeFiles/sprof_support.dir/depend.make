# Empty dependencies file for sprof_support.
# This may be replaced when dependencies are built.
