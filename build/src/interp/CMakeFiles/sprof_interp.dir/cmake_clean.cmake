file(REMOVE_RECURSE
  "CMakeFiles/sprof_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/sprof_interp.dir/Interpreter.cpp.o.d"
  "libsprof_interp.a"
  "libsprof_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
