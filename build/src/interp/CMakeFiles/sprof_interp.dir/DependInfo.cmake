
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/Interpreter.cpp" "src/interp/CMakeFiles/sprof_interp.dir/Interpreter.cpp.o" "gcc" "src/interp/CMakeFiles/sprof_interp.dir/Interpreter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sprof_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/sprof_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sprof_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sprof_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
