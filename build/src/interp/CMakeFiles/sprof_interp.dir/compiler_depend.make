# Empty compiler generated dependencies file for sprof_interp.
# This may be replaced when dependencies are built.
