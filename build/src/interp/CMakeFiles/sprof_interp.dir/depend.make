# Empty dependencies file for sprof_interp.
# This may be replaced when dependencies are built.
