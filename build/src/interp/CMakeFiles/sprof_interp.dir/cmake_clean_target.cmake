file(REMOVE_RECURSE
  "libsprof_interp.a"
)
