file(REMOVE_RECURSE
  "libsprof_instrument.a"
)
