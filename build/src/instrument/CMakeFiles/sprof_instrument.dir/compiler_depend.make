# Empty compiler generated dependencies file for sprof_instrument.
# This may be replaced when dependencies are built.
