file(REMOVE_RECURSE
  "CMakeFiles/sprof_instrument.dir/Instrumentation.cpp.o"
  "CMakeFiles/sprof_instrument.dir/Instrumentation.cpp.o.d"
  "libsprof_instrument.a"
  "libsprof_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
