file(REMOVE_RECURSE
  "libsprof_profile.a"
)
