# Empty compiler generated dependencies file for sprof_profile.
# This may be replaced when dependencies are built.
