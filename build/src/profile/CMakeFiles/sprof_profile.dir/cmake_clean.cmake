file(REMOVE_RECURSE
  "CMakeFiles/sprof_profile.dir/LfuValueProfiler.cpp.o"
  "CMakeFiles/sprof_profile.dir/LfuValueProfiler.cpp.o.d"
  "CMakeFiles/sprof_profile.dir/ProfileData.cpp.o"
  "CMakeFiles/sprof_profile.dir/ProfileData.cpp.o.d"
  "CMakeFiles/sprof_profile.dir/StrideProfiler.cpp.o"
  "CMakeFiles/sprof_profile.dir/StrideProfiler.cpp.o.d"
  "libsprof_profile.a"
  "libsprof_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
