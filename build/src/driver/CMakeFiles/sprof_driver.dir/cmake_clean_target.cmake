file(REMOVE_RECURSE
  "libsprof_driver.a"
)
