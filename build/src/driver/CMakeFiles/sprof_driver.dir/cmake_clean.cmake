file(REMOVE_RECURSE
  "CMakeFiles/sprof_driver.dir/Experiments.cpp.o"
  "CMakeFiles/sprof_driver.dir/Experiments.cpp.o.d"
  "CMakeFiles/sprof_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/sprof_driver.dir/Pipeline.cpp.o.d"
  "libsprof_driver.a"
  "libsprof_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
