# Empty dependencies file for sprof_driver.
# This may be replaced when dependencies are built.
