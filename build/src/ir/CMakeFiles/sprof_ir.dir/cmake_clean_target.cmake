file(REMOVE_RECURSE
  "libsprof_ir.a"
)
