# Empty compiler generated dependencies file for sprof_ir.
# This may be replaced when dependencies are built.
