file(REMOVE_RECURSE
  "CMakeFiles/sprof_ir.dir/Function.cpp.o"
  "CMakeFiles/sprof_ir.dir/Function.cpp.o.d"
  "CMakeFiles/sprof_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/sprof_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/sprof_ir.dir/Module.cpp.o"
  "CMakeFiles/sprof_ir.dir/Module.cpp.o.d"
  "CMakeFiles/sprof_ir.dir/Opcode.cpp.o"
  "CMakeFiles/sprof_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/sprof_ir.dir/Parser.cpp.o"
  "CMakeFiles/sprof_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/sprof_ir.dir/Verifier.cpp.o"
  "CMakeFiles/sprof_ir.dir/Verifier.cpp.o.d"
  "libsprof_ir.a"
  "libsprof_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
