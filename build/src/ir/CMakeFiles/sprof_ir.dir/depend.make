# Empty dependencies file for sprof_ir.
# This may be replaced when dependencies are built.
