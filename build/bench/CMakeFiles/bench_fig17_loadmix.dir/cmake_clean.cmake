file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_loadmix.dir/bench_fig17_loadmix.cpp.o"
  "CMakeFiles/bench_fig17_loadmix.dir/bench_fig17_loadmix.cpp.o.d"
  "bench_fig17_loadmix"
  "bench_fig17_loadmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_loadmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
