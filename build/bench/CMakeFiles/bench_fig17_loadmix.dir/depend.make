# Empty dependencies file for bench_fig17_loadmix.
# This may be replaced when dependencies are built.
