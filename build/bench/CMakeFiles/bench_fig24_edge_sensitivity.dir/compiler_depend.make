# Empty compiler generated dependencies file for bench_fig24_edge_sensitivity.
# This may be replaced when dependencies are built.
