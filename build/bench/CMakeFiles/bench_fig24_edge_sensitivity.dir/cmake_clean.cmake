file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_edge_sensitivity.dir/bench_fig24_edge_sensitivity.cpp.o"
  "CMakeFiles/bench_fig24_edge_sensitivity.dir/bench_fig24_edge_sensitivity.cpp.o.d"
  "bench_fig24_edge_sensitivity"
  "bench_fig24_edge_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_edge_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
