# Empty dependencies file for bench_fig25_stride_sensitivity.
# This may be replaced when dependencies are built.
