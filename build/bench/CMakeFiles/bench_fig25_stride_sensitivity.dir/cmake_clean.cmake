file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_stride_sensitivity.dir/bench_fig25_stride_sensitivity.cpp.o"
  "CMakeFiles/bench_fig25_stride_sensitivity.dir/bench_fig25_stride_sensitivity.cpp.o.d"
  "bench_fig25_stride_sensitivity"
  "bench_fig25_stride_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_stride_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
