# Empty compiler generated dependencies file for bench_fig20_overhead.
# This may be replaced when dependencies are built.
