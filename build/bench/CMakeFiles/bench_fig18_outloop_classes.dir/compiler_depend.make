# Empty compiler generated dependencies file for bench_fig18_outloop_classes.
# This may be replaced when dependencies are built.
