file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_outloop_classes.dir/bench_fig18_outloop_classes.cpp.o"
  "CMakeFiles/bench_fig18_outloop_classes.dir/bench_fig18_outloop_classes.cpp.o.d"
  "bench_fig18_outloop_classes"
  "bench_fig18_outloop_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_outloop_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
