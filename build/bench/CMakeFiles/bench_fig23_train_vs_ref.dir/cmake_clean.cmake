file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_train_vs_ref.dir/bench_fig23_train_vs_ref.cpp.o"
  "CMakeFiles/bench_fig23_train_vs_ref.dir/bench_fig23_train_vs_ref.cpp.o.d"
  "bench_fig23_train_vs_ref"
  "bench_fig23_train_vs_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_train_vs_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
