# Empty dependencies file for bench_fig23_train_vs_ref.
# This may be replaced when dependencies are built.
