file(REMOVE_RECURSE
  "CMakeFiles/bench_prefetch_quality.dir/bench_prefetch_quality.cpp.o"
  "CMakeFiles/bench_prefetch_quality.dir/bench_prefetch_quality.cpp.o.d"
  "bench_prefetch_quality"
  "bench_prefetch_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefetch_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
