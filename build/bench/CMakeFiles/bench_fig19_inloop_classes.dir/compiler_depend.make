# Empty compiler generated dependencies file for bench_fig19_inloop_classes.
# This may be replaced when dependencies are built.
