# Empty compiler generated dependencies file for bench_fig22_lfu_rate.
# This may be replaced when dependencies are built.
