# Empty compiler generated dependencies file for bench_fig21_strideprof_rate.
# This may be replaced when dependencies are built.
