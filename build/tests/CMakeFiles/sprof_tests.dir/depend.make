# Empty dependencies file for sprof_tests.
# This may be replaced when dependencies are built.
