file(REMOVE_RECURSE
  "CMakeFiles/sprof_tests.dir/test_analysis.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_analysis.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_edge_cases.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_feedback.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_feedback.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_instrument.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_instrument.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_interp.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_interp.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_ir.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_ir.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_memsys.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_memsys.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_parser.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_parser.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_pipeline.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_prefetch.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_prefetch.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_profile.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_profile.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_properties.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_semantics.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_semantics.cpp.o.d"
  "CMakeFiles/sprof_tests.dir/test_support.cpp.o"
  "CMakeFiles/sprof_tests.dir/test_support.cpp.o.d"
  "sprof_tests"
  "sprof_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprof_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
