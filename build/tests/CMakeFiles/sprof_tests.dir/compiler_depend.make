# Empty compiler generated dependencies file for sprof_tests.
# This may be replaced when dependencies are built.
