
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/sprof_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/sprof_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/sprof_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_feedback.cpp" "tests/CMakeFiles/sprof_tests.dir/test_feedback.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_feedback.cpp.o.d"
  "/root/repo/tests/test_instrument.cpp" "tests/CMakeFiles/sprof_tests.dir/test_instrument.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_instrument.cpp.o.d"
  "/root/repo/tests/test_interp.cpp" "tests/CMakeFiles/sprof_tests.dir/test_interp.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_interp.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/sprof_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_memsys.cpp" "tests/CMakeFiles/sprof_tests.dir/test_memsys.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_memsys.cpp.o.d"
  "/root/repo/tests/test_obs.cpp" "tests/CMakeFiles/sprof_tests.dir/test_obs.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_obs.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/sprof_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/sprof_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_prefetch.cpp" "tests/CMakeFiles/sprof_tests.dir/test_prefetch.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_prefetch.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/sprof_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sprof_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_semantics.cpp" "tests/CMakeFiles/sprof_tests.dir/test_semantics.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_semantics.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/sprof_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/sprof_tests.dir/test_support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/sprof_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sprof_obs_report.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/sprof_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/sprof_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/sprof_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sprof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sprof_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/sprof_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sprof_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sprof_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/sprof_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
