//===- bench/bench_fig23_train_vs_ref.cpp - Regenerate paper Figure 23 ------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 23: sensitivity of the speedup to the profiling input. "train"
/// uses profiles collected on the train input, "ref" profiles collected on
/// the reference input; both run on the reference input with
/// sample-edge-check profiling. The paper finds ref >= train with small
/// differences (e.g. parser 1.08 -> 1.09, gap 1.14 -> 1.20).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 23: train-profile vs ref-profile speedups "
          "(sample-edge-check, run=ref)");
  T.row({"benchmark", "train", "ref"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<double> Train, Ref;
  JsonValue Rows = JsonValue::array();
  for (const SensitivityMeasurement &R :
       measureSuiteSensitivity(Engine, workloadPointers(Suite))) {
    Train.push_back(R.Train);
    Ref.push_back(R.Ref);
    T.row({R.Name, Table::fmt(R.Train) + "x", Table::fmt(R.Ref) + "x"});
    Rows.push(sensitivityMeasurementToJson(R));
  }
  T.row({"average", Table::fmt(mean(Train)) + "x",
         Table::fmt(mean(Ref)) + "x"});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig23_train_vs_ref.json",
                          "figure-23-train-vs-ref", std::move(Rows));
}
