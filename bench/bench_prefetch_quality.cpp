//===- bench/bench_prefetch_quality.cpp - Prefetch coverage/accuracy --------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An evaluation extension the paper does not include but later prefetch
/// studies standardized: per-benchmark prefetch *quality* under the
/// edge-check-profile-guided transformation -- how many prefetches were
/// issued, how many were redundant (line already in L1), how many arrived
/// late (demand hit an in-flight fill), how many were used before eviction
/// (useful), and how many polluted the cache (evicted unused).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Prefetch quality (edge-check profile, ref input)");
  T.row({"benchmark", "issued", "redundant", "late", "useful", "unused",
         "accuracy"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<BenchMeasurement> Measurements =
      measureSuite(Engine, workloadPointers(Suite), {},
                   {ProfilingMethod::EdgeCheck});
  for (const BenchMeasurement &BM : Measurements) {
    const MemoryStats &S =
        BM.Methods.at(ProfilingMethod::EdgeCheck).RefMemory;
    if (S.PrefetchesIssued == 0) {
      T.row({BM.Name, "0", "-", "-", "-", "-", "-"});
      continue;
    }
    double NonRedundant = static_cast<double>(S.PrefetchesIssued -
                                              S.PrefetchesRedundant);
    T.row({BM.Name, Table::fmtInt(S.PrefetchesIssued),
           Table::fmtInt(S.PrefetchesRedundant),
           Table::fmtInt(S.LatePrefetchHits),
           Table::fmtInt(S.PrefetchesUseful),
           Table::fmtInt(S.PrefetchesUnused),
           Table::fmtPercent(
               percent(static_cast<double>(S.PrefetchesUseful),
                       NonRedundant))});
  }
  T.print(std::cout);
  std::cout << "(accuracy = useful / non-redundant issued; 'unused' lines"
            << " were evicted from L1 before any demand use)\n";
  return emitBenchReport(Argc, Argv, "bench_prefetch_quality.json",
                          "prefetch-quality", Measurements);
}
