//===- bench/bench_prefetch_quality.cpp - Prefetch coverage/accuracy --------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An evaluation extension the paper does not include but later prefetch
/// studies standardized: per-benchmark prefetch *quality* under the
/// edge-check-profile-guided transformation -- how many prefetches were
/// issued, how many were redundant (line already in L1), how many arrived
/// late (demand hit an in-flight fill), how many were used before eviction
/// (useful), and how many polluted the cache (evicted unused).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main() {
  Table T("Prefetch quality (edge-check profile, ref input)");
  T.row({"benchmark", "issued", "redundant", "late", "useful", "unused",
         "accuracy"});
  for (const auto &W : makeSpecIntSuite()) {
    Pipeline P(*W);
    ProfileRunResult Prof = P.runProfile(ProfilingMethod::EdgeCheck,
                                         DataSet::Train,
                                         /*WithMemorySystem=*/false);
    TimedRunResult R = P.runPrefetched(DataSet::Ref, Prof.Edges,
                                       Prof.Strides);
    const MemoryStats &S = R.Stats.Mem;
    if (S.PrefetchesIssued == 0) {
      T.row({W->info().Name, "0", "-", "-", "-", "-", "-"});
      continue;
    }
    double NonRedundant = static_cast<double>(S.PrefetchesIssued -
                                              S.PrefetchesRedundant);
    T.row({W->info().Name, Table::fmtInt(S.PrefetchesIssued),
           Table::fmtInt(S.PrefetchesRedundant),
           Table::fmtInt(S.LatePrefetchHits),
           Table::fmtInt(S.PrefetchesUseful),
           Table::fmtInt(S.PrefetchesUnused),
           Table::fmtPercent(
               percent(static_cast<double>(S.PrefetchesUseful),
                       NonRedundant))});
    std::cerr << "measured " << W->info().Name << "\n";
  }
  T.print(std::cout);
  std::cout << "(accuracy = useful / non-redundant issued; 'unused' lines"
            << " were evicted from L1 before any demand use)\n";
  return 0;
}
