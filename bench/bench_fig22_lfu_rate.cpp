//===- bench/bench_fig22_lfu_rate.cpp - Regenerate paper Figure 22 ----------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 22: percentage of load references that reach the LFU routine.
/// The gap between Figures 21 and 22 is the zero-stride share handled by
/// the strideProf shortcut (paper: ~32% of naive-all's references).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  std::vector<ProfilingMethod> Methods = paperStrideMethods();

  Table T("Figure 22: % of load references processed by the LFU routine "
          "(train input)");
  std::vector<std::string> Header = {"benchmark"};
  for (ProfilingMethod M : Methods)
    Header.push_back(profilingMethodName(M));
  T.row(Header);

  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<BenchMeasurement> Measurements =
      measureSuite(Engine, workloadPointers(Suite), {}, Methods);

  std::map<ProfilingMethod, std::vector<double>> Lfu, ZeroShare;
  for (const BenchMeasurement &BM : Measurements) {
    std::vector<std::string> Row = {BM.Name};
    for (ProfilingMethod M : Methods) {
      const MethodMeasurement &MM = BM.Methods.at(M);
      double Pct = percent(static_cast<double>(MM.LfuCalls),
                           static_cast<double>(MM.TrainLoadRefs));
      Lfu[M].push_back(Pct);
      ZeroShare[M].push_back(
          percent(static_cast<double>(MM.StrideProcessed - MM.LfuCalls),
                  static_cast<double>(MM.StrideProcessed)));
      Row.push_back(Table::fmtPercent(Pct));
    }
    T.row(Row);
  }

  std::vector<std::string> AvgRow = {"average"};
  std::vector<std::string> BypassRow = {"zero-stride bypass"};
  for (ProfilingMethod M : Methods) {
    AvgRow.push_back(Table::fmtPercent(mean(Lfu[M])));
    BypassRow.push_back(Table::fmtPercent(mean(ZeroShare[M])));
  }
  T.row(AvgRow);
  T.row(BypassRow);
  T.print(std::cout);
  std::cout << "(paper: for naive-all, 100% of references reach strideProf"
            << " but only ~68% reach LFU; ~32% are zero strides)\n";
  return emitBenchReport(Argc, Argv, "bench_fig22_lfu_rate.json",
                          "figure-22-lfu-rate", Measurements);
}
