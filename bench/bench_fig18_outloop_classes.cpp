//===- bench/bench_fig18_outloop_classes.cpp - Regenerate paper Figure 18 ---===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 18: distribution of out-loop loads by stride property, collected
/// with the naive-all method and reported as percentages of all dynamic
/// load references. The paper finds most out-loop references stride-free
/// or PMST/WSST (which out-loop loads cannot use), with only ~1.7%
/// prefetchable as SSST.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 18: out-loop load references by stride property "
          "(% of all load refs, naive-all profile)");
  T.row({"benchmark", "SSST", "PMST", "WSST", "no-stride"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<double> S, P, W, N;
  JsonValue Rows = JsonValue::array();
  for (const PopulationRow &R : classifySuitePopulation(
           Engine, workloadPointers(Suite), /*InLoopWanted=*/false)) {
    S.push_back(R.SsstPct);
    P.push_back(R.PmstPct);
    W.push_back(R.WsstPct);
    N.push_back(R.NonePct);
    T.row({R.Bench, Table::fmtPercent(R.SsstPct),
           Table::fmtPercent(R.PmstPct), Table::fmtPercent(R.WsstPct),
           Table::fmtPercent(R.NonePct)});
    Rows.push(populationRowToJson(R));
  }
  T.row({"average", Table::fmtPercent(mean(S)), Table::fmtPercent(mean(P)),
         Table::fmtPercent(mean(W)), Table::fmtPercent(mean(N))});
  T.row({"paper avg", "1.7%", "-", "-", "-"});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig18_outloop_classes.json",
                          "figure-18-outloop-classes", std::move(Rows));
}
