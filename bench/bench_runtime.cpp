//===- bench/bench_runtime.cpp - Profiling-runtime micro-benchmarks ---------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-suite for the profiling runtime itself: the LFU
/// value profiler under different value diversities, the strideProf fast
/// paths (zero-stride shortcut, sampling early-outs), and the coarsening
/// enhancement -- the host-machine counterparts of the simulated cost
/// model in StrideCostModel.
///
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "profile/LfuValueProfiler.h"
#include "profile/ProfileStore.h"
#include "profile/StrideProfiler.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

// Deterministic pseudo-random sequence for stride streams.
uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

void BM_LfuSingleValue(benchmark::State &State) {
  LfuValueProfiler L;
  for (auto _ : State)
    benchmark::DoNotOptimize(L.add(128));
}
BENCHMARK(BM_LfuSingleValue);

void BM_LfuFewValues(benchmark::State &State) {
  LfuValueProfiler L;
  uint64_t R = 0x1234;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.add(static_cast<int64_t>((nextRand(R) & 3) * 64)));
}
BENCHMARK(BM_LfuFewValues);

void BM_LfuManyValues(benchmark::State &State) {
  // Worst case: values rarely repeat, every add scans the whole temp
  // buffer and churns the LFU entry.
  LfuValueProfiler L;
  uint64_t R = 0x1234;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.add(static_cast<int64_t>(nextRand(R) & 0xFFFF)));
}
BENCHMARK(BM_LfuManyValues);

void BM_LfuCoarsened(benchmark::State &State) {
  // Same many-value stream but with the paper's 16-byte coarsening: the
  // effective value diversity (and thus cost) drops.
  LfuConfig C;
  C.CoarsenShift = 8;
  LfuValueProfiler L(C);
  uint64_t R = 0x1234;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.add(static_cast<int64_t>(nextRand(R) & 0xFFFF)));
}
BENCHMARK(BM_LfuCoarsened);

void BM_StrideProfConstantStride(benchmark::State &State) {
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  uint64_t Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.profile(0, Addr));
    Addr += 128;
  }
}
BENCHMARK(BM_StrideProfConstantStride);

void BM_StrideProfZeroStride(benchmark::State &State) {
  // The zero-stride shortcut: never reaches LFU.
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  for (auto _ : State)
    benchmark::DoNotOptimize(P.profile(0, 0x100000));
}
BENCHMARK(BM_StrideProfZeroStride);

void BM_StrideProfRandomStride(benchmark::State &State) {
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  uint64_t R = 0x9e3779b9;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.profile(0, nextRand(R) & 0xFFFFFF));
}
BENCHMARK(BM_StrideProfRandomStride);

void BM_StrideProfConstantStrideTelemetry(benchmark::State &State) {
  // Constant-stride stream with a live ObsSession attached: measures the
  // cost of the telemetry sinks (cached-pointer counter bumps + one
  // histogram record per call) against BM_StrideProfConstantStride.
  ObsConfig OC;
  OC.Enabled = true;
  ObsSession Session(OC);
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  P.attachObs(&Session);
  uint64_t Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.profile(0, Addr));
    Addr += 128;
  }
}
BENCHMARK(BM_StrideProfConstantStrideTelemetry);

// A synthetic but realistically shaped profile shard: NumSites stride
// tables populated through the real profiler, plus an edge profile with a
// handful of counters per function. \p Salt perturbs counts/strides so
// different shards do not collapse to identical tables.
ProfileStore makeShard(uint32_t NumSites, uint64_t Salt) {
  StrideProfilerConfig C;
  StrideProfiler P(NumSites, C);
  uint64_t R = 0x1234 + Salt;
  for (uint32_t Site = 0; Site != NumSites; ++Site) {
    uint64_t Addr = 0x100000;
    uint64_t Stride = 8 * (1 + ((Site + Salt) & 7));
    for (unsigned I = 0; I != 64; ++I) {
      P.profile(Site, Addr);
      Addr += (nextRand(R) & 15) ? Stride : (nextRand(R) & 0xFFF);
    }
  }
  EdgeProfile Edges(4);
  for (uint32_t F = 0; F != 4; ++F) {
    Edges.setEntryCount(F, 100 + Salt + F);
    for (uint32_t B = 0; B != 8; ++B)
      Edges.setFrequency(F, Edge{B, 0}, (B + 1) * 10 + Salt);
  }
  return ProfileStore({"bench.synthetic", "edge-check", "train"},
                      std::move(Edges), StrideProfile::fromProfiler(P));
}

void BM_ProfileStoreMerge(benchmark::State &State) {
  // Shard merge throughput: union 8 shards' stride tables and edge
  // counters, then one LFU-style truncation — the per-aggregation cost of
  // the sharded-profile workflow.
  const uint32_t NumSites = static_cast<uint32_t>(State.range(0));
  std::vector<ProfileStore> Shards;
  for (uint64_t S = 0; S != 8; ++S)
    Shards.push_back(makeShard(NumSites, S));
  std::vector<const ProfileStore *> Ptrs;
  for (const ProfileStore &S : Shards)
    Ptrs.push_back(&S);
  for (auto _ : State) {
    ProfileStore Merged;
    bool Ok = ProfileStore::mergeShards(Ptrs, 8, Merged);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Merged);
  }
}
BENCHMARK(BM_ProfileStoreMerge)->Arg(16)->Arg(256);

void BM_ProfileStoreSaveLoad(benchmark::State &State) {
  // Serialization round-trip: text write + parse of one mid-size store.
  ProfileStore Store = makeShard(256, 0);
  for (auto _ : State) {
    std::string Text = Store.toString();
    ProfileStore Loaded;
    bool Ok = ProfileStore::loadString(Text, Loaded);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Loaded);
  }
}
BENCHMARK(BM_ProfileStoreSaveLoad);

void BM_StrideProfSampled(benchmark::State &State) {
  // With sampling, most invocations exit at the chunk/fine checks.
  StrideProfilerConfig C;
  C.Sampling.Enabled = true;
  StrideProfiler P(1, C);
  uint64_t Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.profile(0, Addr));
    Addr += 128;
  }
}
BENCHMARK(BM_StrideProfSampled);

} // namespace

// Like BENCHMARK_MAIN(), plus the SPROF_BENCH_JSON hook: when the
// environment variable names a file, the run also emits google-benchmark's
// machine-readable JSON there (equivalent to passing --benchmark_out=...).
int main(int argc, char **argv) {
  std::vector<char *> Args(argv, argv + argc);
  std::string OutArg, FormatArg;
  if (const char *Path = std::getenv("SPROF_BENCH_JSON")) {
    OutArg = std::string("--benchmark_out=") + Path;
    FormatArg = "--benchmark_out_format=json";
    Args.push_back(OutArg.data());
    Args.push_back(FormatArg.data());
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
