//===- bench/bench_runtime.cpp - Profiling-runtime micro-benchmarks ---------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-suite for the profiling runtime itself: the LFU
/// value profiler under different value diversities, the strideProf fast
/// paths (zero-stride shortcut, sampling early-outs), and the coarsening
/// enhancement -- the host-machine counterparts of the simulated cost
/// model in StrideCostModel.
///
/// `bench_runtime --compare` switches to the wall-clock engine harness:
/// Reference vs Decoded vs Trace execution cores over real workloads,
/// median-of-N wall time and instructions/sec, written to
/// BENCH_runtime.json so the perf trajectory stays machine-readable across
/// PRs (docs/PERFORMANCE.md). The Trace series reports its speedup over
/// Decoded plus the tier's side-exit rate, and like the other engine pairs
/// is cross-checked for bit-identical simulated accounting.
/// `--with-telemetry` adds a third, fully-instrumented Decoded series per
/// workload (live ObsSession with the background TelemetrySampler and the
/// engine self-profiler) and gates the measured overhead: warn above
/// --telemetry-warn (default 2%), fail above --telemetry-fail (default 5%).
///
//===----------------------------------------------------------------------===//

#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "memsys/Cache.h"
#include "obs/Json.h"
#include "obs/Obs.h"
#include "obs/Sampler.h"
#include "obs/SelfProfiler.h"
#include "profile/LfuValueProfiler.h"
#include "profile/ProfileData.h"
#include "profile/ProfileStore.h"
#include "profile/StrideProfiler.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace sprof;

namespace {

// Deterministic pseudo-random sequence for stride streams.
uint64_t nextRand(uint64_t &State) {
  State ^= State << 13;
  State ^= State >> 7;
  State ^= State << 17;
  return State;
}

void BM_LfuSingleValue(benchmark::State &State) {
  LfuValueProfiler L;
  for (auto _ : State)
    benchmark::DoNotOptimize(L.add(128));
}
BENCHMARK(BM_LfuSingleValue);

void BM_LfuFewValues(benchmark::State &State) {
  LfuValueProfiler L;
  uint64_t R = 0x1234;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.add(static_cast<int64_t>((nextRand(R) & 3) * 64)));
}
BENCHMARK(BM_LfuFewValues);

void BM_LfuManyValues(benchmark::State &State) {
  // Worst case: values rarely repeat, every add scans the whole temp
  // buffer and churns the LFU entry.
  LfuValueProfiler L;
  uint64_t R = 0x1234;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.add(static_cast<int64_t>(nextRand(R) & 0xFFFF)));
}
BENCHMARK(BM_LfuManyValues);

void BM_LfuCoarsened(benchmark::State &State) {
  // Same many-value stream but with the paper's 16-byte coarsening: the
  // effective value diversity (and thus cost) drops.
  LfuConfig C;
  C.CoarsenShift = 8;
  LfuValueProfiler L(C);
  uint64_t R = 0x1234;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        L.add(static_cast<int64_t>(nextRand(R) & 0xFFFF)));
}
BENCHMARK(BM_LfuCoarsened);

void BM_StrideProfConstantStride(benchmark::State &State) {
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  uint64_t Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.profile(0, Addr));
    Addr += 128;
  }
}
BENCHMARK(BM_StrideProfConstantStride);

void BM_StrideProfZeroStride(benchmark::State &State) {
  // The zero-stride shortcut: never reaches LFU.
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  for (auto _ : State)
    benchmark::DoNotOptimize(P.profile(0, 0x100000));
}
BENCHMARK(BM_StrideProfZeroStride);

void BM_StrideProfRandomStride(benchmark::State &State) {
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  uint64_t R = 0x9e3779b9;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.profile(0, nextRand(R) & 0xFFFFFF));
}
BENCHMARK(BM_StrideProfRandomStride);

void BM_StrideProfConstantStrideTelemetry(benchmark::State &State) {
  // Constant-stride stream with a live ObsSession attached: measures the
  // cost of the telemetry sinks (cached-pointer counter bumps + one
  // histogram record per call) against BM_StrideProfConstantStride.
  ObsConfig OC;
  OC.Enabled = true;
  ObsSession Session(OC);
  StrideProfilerConfig C;
  StrideProfiler P(1, C);
  P.attachObs(&Session);
  uint64_t Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.profile(0, Addr));
    Addr += 128;
  }
}
BENCHMARK(BM_StrideProfConstantStrideTelemetry);

// A synthetic but realistically shaped profile shard: NumSites stride
// tables populated through the real profiler, plus an edge profile with a
// handful of counters per function. \p Salt perturbs counts/strides so
// different shards do not collapse to identical tables.
ProfileStore makeShard(uint32_t NumSites, uint64_t Salt) {
  StrideProfilerConfig C;
  StrideProfiler P(NumSites, C);
  uint64_t R = 0x1234 + Salt;
  for (uint32_t Site = 0; Site != NumSites; ++Site) {
    uint64_t Addr = 0x100000;
    uint64_t Stride = 8 * (1 + ((Site + Salt) & 7));
    for (unsigned I = 0; I != 64; ++I) {
      P.profile(Site, Addr);
      Addr += (nextRand(R) & 15) ? Stride : (nextRand(R) & 0xFFF);
    }
  }
  EdgeProfile Edges(4);
  for (uint32_t F = 0; F != 4; ++F) {
    Edges.setEntryCount(F, 100 + Salt + F);
    for (uint32_t B = 0; B != 8; ++B)
      Edges.setFrequency(F, Edge{B, 0}, (B + 1) * 10 + Salt);
  }
  return ProfileStore({"bench.synthetic", "edge-check", "train"},
                      std::move(Edges), StrideProfile::fromProfiler(P));
}

void BM_ProfileStoreMerge(benchmark::State &State) {
  // Shard merge throughput: union 8 shards' stride tables and edge
  // counters, then one LFU-style truncation — the per-aggregation cost of
  // the sharded-profile workflow.
  const uint32_t NumSites = static_cast<uint32_t>(State.range(0));
  std::vector<ProfileStore> Shards;
  for (uint64_t S = 0; S != 8; ++S)
    Shards.push_back(makeShard(NumSites, S));
  std::vector<const ProfileStore *> Ptrs;
  for (const ProfileStore &S : Shards)
    Ptrs.push_back(&S);
  for (auto _ : State) {
    ProfileStore Merged;
    bool Ok = ProfileStore::mergeShards(Ptrs, 8, Merged);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Merged);
  }
}
BENCHMARK(BM_ProfileStoreMerge)->Arg(16)->Arg(256);

void BM_ProfileStoreSaveLoad(benchmark::State &State) {
  // Serialization round-trip: text write + parse of one mid-size store.
  ProfileStore Store = makeShard(256, 0);
  for (auto _ : State) {
    std::string Text = Store.toString();
    ProfileStore Loaded;
    bool Ok = ProfileStore::loadString(Text, Loaded);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Loaded);
  }
}
BENCHMARK(BM_ProfileStoreSaveLoad);

void BM_StrideProfSampled(benchmark::State &State) {
  // With sampling, most invocations exit at the chunk/fine checks.
  StrideProfilerConfig C;
  C.Sampling.Enabled = true;
  StrideProfiler P(1, C);
  uint64_t Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.profile(0, Addr));
    Addr += 128;
  }
}
BENCHMARK(BM_StrideProfSampled);

/// One full Decoded-engine execution of \p Name on the train input;
/// workload (re)build excluded from the timing, matching the --compare
/// harness's convention. \p Session, when non-null, is attached for the
/// whole run.
void runDecodedOnce(benchmark::State &State, const Workload &W,
                    ObsSession *Session) {
  State.PauseTiming();
  Program Prog = W.build({DataSet::Train});
  InterpreterConfig IC;
  IC.Exec = InterpreterConfig::Engine::Decoded;
  Interpreter I(Prog.M, std::move(Prog.Memory), TimingModel(), IC);
  if (Session)
    I.attachObs(Session);
  State.ResumeTiming();
  RunStats S = I.run();
  benchmark::DoNotOptimize(S.Cycles);
}

void BM_DecodedEngineRun(benchmark::State &State) {
  // Whole-engine throughput baseline: decode + execute a real workload on
  // the Decoded engine, no telemetry attached.
  std::unique_ptr<Workload> W = makeWorkloadByName("164.gzip");
  for (auto _ : State)
    runDecodedOnce(State, *W, nullptr);
}
BENCHMARK(BM_DecodedEngineRun)->Unit(benchmark::kMillisecond);

void BM_DecodedEngineRunTelemetry(benchmark::State &State) {
  // Telemetry twin of BM_DecodedEngineRun (the engine-level counterpart of
  // BM_StrideProfConstantStrideTelemetry): a live ObsSession is attached,
  // so the delta against the plain run is the whole-run cost of the
  // engine's telemetry sinks.
  ObsConfig OC;
  OC.Enabled = true;
  ObsSession Session(OC);
  std::unique_ptr<Workload> W = makeWorkloadByName("164.gzip");
  for (auto _ : State)
    runDecodedOnce(State, *W, &Session);
}
BENCHMARK(BM_DecodedEngineRunTelemetry)->Unit(benchmark::kMillisecond);

// -- Engine compare harness (--compare) -----------------------------------

/// One engine's measurement over one workload.
struct EngineTiming {
  double MedianMs = 0.0;
  double InstructionsPerSec = 0.0;
  RunStats Stats; ///< first run's stats (identical across runs)
};

struct CompareOptions {
  std::vector<std::string> Workloads = {"181.mcf", "254.gap"};
  unsigned Runs = 5;
  DataSet DS = DataSet::Train;
  bool WithMemsys = false;
  /// Instrument the workload and attach a StrideProfiler, so the timed
  /// runs exercise the profiling runtime (the Decoded engine's batched
  /// strideProf path when no hierarchy is attached).
  bool WithProfiler = false;
  ProfilingMethod ProfMethod = ProfilingMethod::SampleEdgeCheck;
  std::string JsonPath = "BENCH_runtime.json";
  bool WriteJson = true;
  double MinSpeedup = 0.0;
  /// Gate on the Trace engine's wall speedup over Decoded (0 = report
  /// only). Loop-dominated workloads should clear 1.5x; branchy ones may
  /// not, which is why the gate is per-invocation opt-in.
  double MinTraceSpeedup = 0.0;
  /// Add the telemetry-overhead series: interleaved plain/instrumented
  /// Decoded runs with a live ObsSession (sampler + self-profiler), the
  /// measured overhead gated against the thresholds below.
  bool WithTelemetry = false;
  double TelemetryWarn = 0.02;
  double TelemetryFail = 0.05;
  /// Sampler interval and self-profiler window for the telemetry series.
  /// The defaults keep the instrumentation cost well under the warn
  /// threshold even on a single-core host.
  uint64_t TelemetryIntervalUs = 2000;
  uint32_t TelemetryWindow = 4096;
  /// Artifact paths for the first workload's telemetry series.
  std::string TimeSeriesPath = "BENCH_timeseries.json";
  std::string FoldedPath = "BENCH_profile.folded";
};

/// Profile observables harvested from one profiled run; the engines must
/// agree on every field (the profiled-mode differential check).
struct ProfiledObservables {
  uint64_t Invocations = 0;
  uint64_t Processed = 0;
  uint64_t LfuCalls = 0;
  std::string ProfileText;

  bool operator==(const ProfiledObservables &O) const {
    return Invocations == O.Invocations && Processed == O.Processed &&
           LfuCalls == O.LfuCalls && ProfileText == O.ProfileText;
  }
};

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  size_t N = V.size();
  return N % 2 ? V[N / 2] : 0.5 * (V[N / 2 - 1] + V[N / 2]);
}

/// One timed execution of \p W on \p Engine (workload build and, in
/// profiled mode, instrumentation excluded; decode, when the engine
/// pre-decodes, included -- it is part of the engine's per-run cost).
/// \p Prof, when non-null and profiling is on, receives the run's profile
/// observables for the cross-engine equality check. \p Tier, when
/// non-null, receives the run's trace-tier statistics (all-zero under
/// Reference/Decoded).
double timeOneRun(const Workload &W, DataSet DS,
                  InterpreterConfig::Engine Engine,
                  const CompareOptions &Opts, RunStats &StatsOut,
                  ProfiledObservables *Prof = nullptr,
                  ObsSession *Obs = nullptr,
                  TraceTierStats *Tier = nullptr) {
  Program Prog = W.build({DS});
  if (Opts.WithProfiler)
    instrumentModule(Prog.M, Opts.ProfMethod);
  InterpreterConfig IC;
  IC.Exec = Engine;
  Interpreter I(Prog.M, std::move(Prog.Memory), TimingModel(), IC);
  if (Obs)
    I.attachObs(Obs);
  MemoryHierarchy MH{MemoryConfig()};
  if (Opts.WithMemsys)
    I.attachMemory(&MH);
  std::optional<StrideProfiler> SP;
  if (Opts.WithProfiler) {
    StrideProfilerConfig PC;
    PC.Sampling.Enabled = methodUsesSampling(Opts.ProfMethod);
    SP.emplace(Prog.M.NumLoadSites, PC);
    I.attachProfiler(&*SP);
  }
  auto T0 = std::chrono::steady_clock::now();
  StatsOut = I.run();
  auto T1 = std::chrono::steady_clock::now();
  if (Tier)
    *Tier = I.traceTier();
  if (Prof && SP) {
    Prof->Invocations = SP->totalInvocations();
    Prof->Processed = SP->totalProcessed();
    Prof->LfuCalls = SP->totalLfuCalls();
    std::ostringstream OS;
    StrideProfile::fromProfiler(*SP).print(OS);
    Prof->ProfileText = OS.str();
  }
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

void finishTiming(EngineTiming &E, std::vector<double> &WallMs) {
  E.MedianMs = medianOf(WallMs);
  E.InstructionsPerSec =
      E.MedianMs > 0.0 ? static_cast<double>(E.Stats.Instructions) /
                             (E.MedianMs / 1000.0)
                       : 0.0;
}

/// Times all three engines over \p Runs rounds, alternating engines within
/// each round so slow environmental drift (thermal throttling, noisy
/// neighbours) biases no side. The trace tier warms up inside round 0
/// (selection thresholds, compile) and -- with the shared ProgramCache on
/// by default -- later rounds adopt the installed traces, so the median
/// reflects steady-state trace execution. The last round's tier stats are
/// kept: that run enters with a warm bank, so its exit mix is the
/// steady-state one.
void timeEngines(const Workload &W, const CompareOptions &Opts,
                 EngineTiming &Ref, EngineTiming &Dec, EngineTiming &Trc,
                 ProfiledObservables &RefProf, ProfiledObservables &DecProf,
                 ProfiledObservables &TrcProf, TraceTierStats &Tier) {
  std::vector<double> RefMs, DecMs, TrcMs;
  for (unsigned R = 0; R != Opts.Runs; ++R) {
    RunStats S;
    RefMs.push_back(timeOneRun(W, Opts.DS,
                               InterpreterConfig::Engine::Reference, Opts, S,
                               R == 0 ? &RefProf : nullptr));
    if (R == 0)
      Ref.Stats = S;
    DecMs.push_back(timeOneRun(W, Opts.DS,
                               InterpreterConfig::Engine::Decoded, Opts, S,
                               R == 0 ? &DecProf : nullptr));
    if (R == 0)
      Dec.Stats = S;
    TrcMs.push_back(timeOneRun(W, Opts.DS,
                               InterpreterConfig::Engine::Trace, Opts, S,
                               R == 0 ? &TrcProf : nullptr, nullptr, &Tier));
    if (R == 0)
      Trc.Stats = S;
  }
  finishTiming(Ref, RefMs);
  finishTiming(Dec, DecMs);
  finishTiming(Trc, TrcMs);
}

/// Telemetry-overhead measurement of one workload on the Decoded engine.
struct TelemetryTiming {
  double PlainMinMs = 0.0;   ///< interleaved uninstrumented control runs
  double MinMs = 0.0;        ///< runs with the live ObsSession attached
  double Overhead = 0.0;     ///< median of per-round with/plain ratios - 1
  uint64_t SamplesTaken = 0; ///< sampler snapshots over the series
  uint64_t SelfSamples = 0;  ///< self-profiler samples over the series
  std::string TopOp;         ///< hottest dispatch op by sample count
};

/// Times interleaved (plain, instrumented) Decoded pairs -- at least nine
/// rounds, more when --runs asks for more -- with one ObsSession (the
/// background sampler and the engine self-profiler both live) attached
/// across the instrumented runs. The overhead estimate is the median of
/// the per-round instrumented/plain ratios: pairing cancels drift that
/// spans a round, and the median discards rounds where a scheduler spike
/// hit one member. When \p WriteArtifacts is set the session's timeseries
/// and folded-profile artifacts are written to the configured paths.
TelemetryTiming timeTelemetry(const Workload &W, const CompareOptions &Opts,
                              bool WriteArtifacts) {
  ObsConfig OC;
  OC.Enabled = true;
  OC.SampleIntervalUs = Opts.TelemetryIntervalUs;
  OC.SelfProfile = true;
  OC.SelfProfileWindow = Opts.TelemetryWindow;
  if (WriteArtifacts) {
    OC.TimeSeriesOutputPath = Opts.TimeSeriesPath;
    OC.FoldedProfilePath = Opts.FoldedPath;
  }
  ObsSession Session(OC);

  if (EngineSelfProfiler *SP = Session.selfProfiler())
    SP->setContext(W.info().Name, "bench");

  // Each measured unit is a batch of runs, so a single scheduler spike is
  // amortized over ~10ms of work instead of dominating one ~2ms run.
  const unsigned Batch = 4;
  auto TimeBatch = [&](ObsSession *Obs) {
    double Total = 0.0;
    for (unsigned B = 0; B != Batch; ++B) {
      RunStats S;
      Total += timeOneRun(W, Opts.DS, InterpreterConfig::Engine::Decoded,
                          Opts, S, nullptr, Obs);
    }
    return Total;
  };

  TelemetryTiming T;
  std::vector<double> PlainMs, TelMs, Ratios;
  // The true overhead target is percent-scale while single-invocation
  // noise on a busy host is a few percent, so the gate needs many rounds
  // for the median to converge; 15 rounds of 2x4 runs is ~300ms per
  // workload.
  const unsigned Rounds = std::max(Opts.Runs, 15u);
  for (unsigned R = 0; R != Rounds; ++R) {
    PlainMs.push_back(TimeBatch(nullptr));
    TelMs.push_back(TimeBatch(&Session));
    if (PlainMs.back() > 0.0)
      Ratios.push_back(TelMs.back() / PlainMs.back());
  }
  Session.stopSampling();
  T.PlainMinMs = *std::min_element(PlainMs.begin(), PlainMs.end()) / Batch;
  T.MinMs = *std::min_element(TelMs.begin(), TelMs.end()) / Batch;
  T.Overhead = Ratios.empty() ? 0.0 : medianOf(Ratios) - 1.0;
  if (const TelemetrySampler *Sampler = Session.sampler())
    T.SamplesTaken = Sampler->samplesTaken();
  if (const EngineSelfProfiler *SP = Session.selfProfiler()) {
    T.SelfSamples = SP->totalSamples();
    std::vector<EngineSelfProfiler::Entry> Entries = SP->entries();
    if (!Entries.empty())
      T.TopOp = SP->slotName(Entries.front().Slot);
  }
  if (WriteArtifacts && !Session.writeArtifacts())
    std::cerr << "warning: could not write telemetry artifacts ("
              << Opts.TimeSeriesPath << ", " << Opts.FoldedPath << ")\n";
  return T;
}

/// One untimed attributed run: same workload, attribution enabled, so the
/// engines' prefetch-outcome and per-site miss attribution can be diffed.
AttributionData attributedRun(const Workload &W, DataSet DS,
                              InterpreterConfig::Engine Engine) {
  Program Prog = W.build({DS});
  InterpreterConfig IC;
  IC.Exec = Engine;
  Interpreter I(Prog.M, std::move(Prog.Memory), TimingModel(), IC);
  MemoryHierarchy MH{MemoryConfig()};
  MH.enableAttribution(Prog.M.NumLoadSites);
  I.attachMemory(&MH);
  I.run();
  MH.finalizeAttribution();
  return MH.attribution();
}

bool sameOutcomes(const PrefetchOutcomeCounts &A,
                  const PrefetchOutcomeCounts &B) {
  return A.Useful == B.Useful && A.Late == B.Late && A.Early == B.Early &&
         A.Redundant == B.Redundant;
}

bool sameAttribution(const AttributionData &A, const AttributionData &B) {
  if (!sameOutcomes(A.Total, B.Total) ||
      A.PerSite.size() != B.PerSite.size() ||
      A.SiteMiss.size() != B.SiteMiss.size())
    return false;
  for (size_t I = 0; I != A.PerSite.size(); ++I)
    if (!sameOutcomes(A.PerSite[I], B.PerSite[I]))
      return false;
  for (size_t I = 0; I != A.SiteMiss.size(); ++I) {
    const SiteMissStats &X = A.SiteMiss[I], &Y = B.SiteMiss[I];
    if (X.Accesses != Y.Accesses || X.L1Misses != Y.L1Misses ||
        X.FullMisses != Y.FullMisses || X.StallCycles != Y.StallCycles)
      return false;
  }
  return true;
}

/// Returns true when the engines' simulated accounting agrees -- the
/// harness doubles as a coarse differential check on real workloads.
bool sameAccounting(const RunStats &A, const RunStats &B) {
  return A.Completed == B.Completed && A.Instructions == B.Instructions &&
         A.Cycles == B.Cycles && A.BaseCycles == B.BaseCycles &&
         A.MemStallCycles == B.MemStallCycles &&
         A.LoadRefs == B.LoadRefs && A.ExitValue == B.ExitValue;
}

int runCompare(const CompareOptions &Opts) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "sprof.bench_runtime_compare/2");
  Root.set("dataset", Opts.DS == DataSet::Train ? "train" : "ref");
  Root.set("runs", Opts.Runs);
  Root.set("with_memsys", Opts.WithMemsys);
  Root.set("with_profiler", Opts.WithProfiler);
  if (Opts.WithProfiler)
    Root.set("profiler_method", profilingMethodName(Opts.ProfMethod));
  JsonValue Rows = JsonValue::array();

  std::cout << "engine compare: Reference vs Decoded vs Trace, median of "
            << Opts.Runs << " runs, "
            << (Opts.DS == DataSet::Train ? "train" : "ref") << " input"
            << (Opts.WithMemsys ? ", cache hierarchy on" : "");
  if (Opts.WithProfiler)
    std::cout << ", stride profiler on ("
              << profilingMethodName(Opts.ProfMethod) << ")";
  std::cout << "\n";
  std::printf("%-14s %14s %12s %10s %8s %9s %10s\n", "workload",
              "reference(ms)", "decoded(ms)", "trace(ms)", "dec", "trace",
              "side-exit");

  bool Ok = true;
  double LogSum = 0.0;
  double TraceLogSum = 0.0;
  unsigned Count = 0;
  double WorstOverhead = -1.0; // overhead is a ratio - 1, so >= -1 always
  bool FirstTelemetry = true;
  for (const std::string &Name : Opts.Workloads) {
    std::unique_ptr<Workload> W = makeWorkloadByName(Name);
    if (!W) {
      std::cerr << "error: unknown workload '" << Name << "'\n";
      return 2;
    }
    EngineTiming Ref, Dec, Trc;
    ProfiledObservables RefProf, DecProf, TrcProf;
    TraceTierStats Tier;
    timeEngines(*W, Opts, Ref, Dec, Trc, RefProf, DecProf, TrcProf, Tier);
    if (!sameAccounting(Ref.Stats, Dec.Stats) ||
        !sameAccounting(Ref.Stats, Trc.Stats)) {
      std::cerr << "error: engines disagree on " << Name
                << " (simulated accounting differs; run the differential "
                   "test suite)\n";
      Ok = false;
    }
    bool ProfileIdentical = true;
    if (Opts.WithProfiler) {
      ProfileIdentical = RefProf == DecProf && RefProf == TrcProf;
      if (!ProfileIdentical) {
        std::cerr << "error: engines disagree on " << Name
                  << " (profiles differ across Reference/Decoded/Trace; "
                     "run the differential test suite)\n";
        Ok = false;
      }
    }
    bool AttributionIdentical = true;
    if (Opts.WithMemsys) {
      // Untimed attributed runs: attribution must not diverge between the
      // engines either (it rides the same demandAccess/prefetch stream).
      AttributionData RefAttr =
          attributedRun(*W, Opts.DS, InterpreterConfig::Engine::Reference);
      AttributionIdentical =
          sameAttribution(RefAttr, attributedRun(
                                       *W, Opts.DS,
                                       InterpreterConfig::Engine::Decoded)) &&
          sameAttribution(RefAttr, attributedRun(
                                       *W, Opts.DS,
                                       InterpreterConfig::Engine::Trace));
      if (!AttributionIdentical) {
        std::cerr << "error: engines disagree on " << Name
                  << " (prefetch/miss attribution differs)\n";
        Ok = false;
      }
    }
    double Speedup = Dec.MedianMs > 0.0 ? Ref.MedianMs / Dec.MedianMs : 0.0;
    double TraceSpeedup =
        Trc.MedianMs > 0.0 ? Dec.MedianMs / Trc.MedianMs : 0.0;
    double SideExitRate =
        Tier.Entries ? static_cast<double>(Tier.SideExits) /
                           static_cast<double>(Tier.Entries)
                     : 0.0;
    LogSum += std::log(Speedup > 0.0 ? Speedup : 1.0);
    TraceLogSum += std::log(TraceSpeedup > 0.0 ? TraceSpeedup : 1.0);
    ++Count;
    std::printf("%-14s %14.2f %12.2f %10.2f %7.2fx %8.2fx %9.1f%%\n",
                Name.c_str(), Ref.MedianMs, Dec.MedianMs, Trc.MedianMs,
                Speedup, TraceSpeedup, SideExitRate * 100.0);
    if (Opts.MinSpeedup > 0.0 && Speedup < Opts.MinSpeedup) {
      std::cerr << "error: " << Name << " speedup " << Speedup
                << "x below the --min-speedup gate of " << Opts.MinSpeedup
                << "x\n";
      Ok = false;
    }
    if (Opts.MinTraceSpeedup > 0.0 && TraceSpeedup < Opts.MinTraceSpeedup) {
      std::cerr << "error: " << Name << " trace-vs-decoded speedup "
                << TraceSpeedup << "x below the --min-trace-speedup gate of "
                << Opts.MinTraceSpeedup << "x\n";
      Ok = false;
    }

    TelemetryTiming Tel;
    if (Opts.WithTelemetry) {
      Tel = timeTelemetry(*W, Opts, Opts.WriteJson && FirstTelemetry);
      FirstTelemetry = false;
      WorstOverhead = std::max(WorstOverhead, Tel.Overhead);
      std::printf("%-14s %14.2f %14.2f %+9.1f%% %16s\n",
                  "  +telemetry", Tel.PlainMinMs, Tel.MinMs,
                  Tel.Overhead * 100.0,
                  Tel.TopOp.empty() ? "-" : Tel.TopOp.c_str());
      if (Tel.Overhead > Opts.TelemetryFail) {
        std::cerr << "error: " << Name << " telemetry overhead "
                  << Tel.Overhead * 100.0 << "% above the --telemetry-fail "
                  << "gate of " << Opts.TelemetryFail * 100.0 << "%\n";
        Ok = false;
      } else if (Tel.Overhead > Opts.TelemetryWarn) {
        std::cerr << "warning: " << Name << " telemetry overhead "
                  << Tel.Overhead * 100.0 << "% above the --telemetry-warn "
                  << "threshold of " << Opts.TelemetryWarn * 100.0 << "%\n";
      }
    }

    JsonValue Row = JsonValue::object();
    Row.set("name", Name);
    JsonValue RefJ = JsonValue::object();
    RefJ.set("median_ms", Ref.MedianMs);
    RefJ.set("instructions_per_sec", Ref.InstructionsPerSec);
    JsonValue DecJ = JsonValue::object();
    DecJ.set("median_ms", Dec.MedianMs);
    DecJ.set("instructions_per_sec", Dec.InstructionsPerSec);
    JsonValue TrcJ = JsonValue::object();
    TrcJ.set("median_ms", Trc.MedianMs);
    TrcJ.set("instructions_per_sec", Trc.InstructionsPerSec);
    TrcJ.set("speedup_vs_decoded", TraceSpeedup);
    TrcJ.set("side_exit_rate", SideExitRate);
    TrcJ.set("traces_compiled", Tier.TracesCompiled);
    TrcJ.set("traces_adopted", Tier.TracesAdopted);
    TrcJ.set("entries", Tier.Entries);
    TrcJ.set("iterations", Tier.Iterations);
    TrcJ.set("side_exits", Tier.SideExits);
    TrcJ.set("on_trace_insts", Tier.OnTraceInsts);
    Row.set("reference", std::move(RefJ));
    Row.set("decoded", std::move(DecJ));
    Row.set("trace", std::move(TrcJ));
    Row.set("speedup", Speedup);
    Row.set("trace_speedup", TraceSpeedup);
    Row.set("instructions", Dec.Stats.Instructions);
    Row.set("simulated_cycles", Dec.Stats.Cycles);
    Row.set("accounting_identical", sameAccounting(Ref.Stats, Dec.Stats) &&
                                        sameAccounting(Ref.Stats, Trc.Stats));
    if (Opts.WithMemsys)
      Row.set("attribution_identical", AttributionIdentical);
    if (Opts.WithProfiler) {
      JsonValue ProfJ = JsonValue::object();
      ProfJ.set("invocations", DecProf.Invocations);
      ProfJ.set("processed", DecProf.Processed);
      ProfJ.set("lfu_calls", DecProf.LfuCalls);
      ProfJ.set("profile_identical", ProfileIdentical);
      Row.set("profiled", std::move(ProfJ));
    }
    if (Opts.WithTelemetry) {
      JsonValue TelJ = JsonValue::object();
      TelJ.set("plain_min_ms", Tel.PlainMinMs);
      TelJ.set("min_ms", Tel.MinMs);
      TelJ.set("overhead", Tel.Overhead);
      TelJ.set("samples_taken", Tel.SamplesTaken);
      TelJ.set("self_profile_samples", Tel.SelfSamples);
      TelJ.set("top_op", Tel.TopOp);
      Row.set("telemetry", std::move(TelJ));
    }
    Rows.push(std::move(Row));
  }
  double Geomean = Count ? std::exp(LogSum / Count) : 0.0;
  double TraceGeomean = Count ? std::exp(TraceLogSum / Count) : 0.0;
  std::printf("%-14s %14s %12s %10s %7.2fx %8.2fx\n", "geomean", "", "", "",
              Geomean, TraceGeomean);

  Root.set("workloads", std::move(Rows));
  Root.set("geomean_speedup", Geomean);
  Root.set("trace_geomean_speedup", TraceGeomean);
  if (Opts.WithTelemetry)
    Root.set("telemetry_overhead", WorstOverhead);
  if (Opts.WriteJson) {
    if (!writeJsonFile(Opts.JsonPath, Root)) {
      std::cerr << "error: could not write " << Opts.JsonPath << "\n";
      return 1;
    }
    std::cerr << "compare report written to " << Opts.JsonPath << "\n";
  }
  return Ok ? 0 : 1;
}

/// Parses the --compare family; returns nullopt when --compare is absent
/// (micro-benchmark mode).
std::optional<CompareOptions> parseCompareArgs(int Argc, char **Argv) {
  bool Compare = false;
  CompareOptions Opts;
  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    auto Value = [&](const std::string &Prefix) -> std::optional<std::string> {
      if (Arg.rfind(Prefix, 0) == 0)
        return Arg.substr(Prefix.size());
      return std::nullopt;
    };
    if (Arg == "--compare") {
      Compare = true;
    } else if (auto V = Value("--workloads=")) {
      Opts.Workloads.clear();
      std::stringstream SS(*V);
      std::string Item;
      while (std::getline(SS, Item, ','))
        if (!Item.empty())
          Opts.Workloads.push_back(Item);
    } else if (auto V = Value("--runs=")) {
      Opts.Runs = std::max(1, std::atoi(V->c_str()));
    } else if (auto V = Value("--dataset=")) {
      Opts.DS = (*V == "ref") ? DataSet::Ref : DataSet::Train;
    } else if (Arg == "--with-memsys") {
      Opts.WithMemsys = true;
    } else if (Arg == "--with-profiler") {
      Opts.WithProfiler = true;
    } else if (auto V = Value("--with-profiler=")) {
      Opts.WithProfiler = true;
      bool Known = false;
      for (ProfilingMethod M : allProfilingMethods())
        if (*V == profilingMethodName(M)) {
          Opts.ProfMethod = M;
          Known = true;
        }
      if (!Known) {
        std::cerr << "error: unknown profiling method '" << *V << "'\n";
        std::exit(2);
      }
    } else if (auto V = Value("--json=")) {
      Opts.JsonPath = *V;
    } else if (Arg == "--no-json") {
      Opts.WriteJson = false;
    } else if (auto V = Value("--min-speedup=")) {
      Opts.MinSpeedup = std::atof(V->c_str());
    } else if (auto V = Value("--min-trace-speedup=")) {
      Opts.MinTraceSpeedup = std::atof(V->c_str());
    } else if (Arg == "--with-telemetry") {
      Opts.WithTelemetry = true;
    } else if (auto V = Value("--telemetry-warn=")) {
      Opts.TelemetryWarn = std::atof(V->c_str());
    } else if (auto V = Value("--telemetry-fail=")) {
      Opts.TelemetryFail = std::atof(V->c_str());
    } else if (auto V = Value("--telemetry-interval-us=")) {
      Opts.TelemetryIntervalUs =
          static_cast<uint64_t>(std::max(0L, std::atol(V->c_str())));
    } else if (auto V = Value("--telemetry-window=")) {
      Opts.TelemetryWindow =
          static_cast<uint32_t>(std::max(1L, std::atol(V->c_str())));
    } else if (auto V = Value("--telemetry-timeseries=")) {
      Opts.TimeSeriesPath = *V;
    } else if (auto V = Value("--telemetry-folded=")) {
      Opts.FoldedPath = *V;
    }
  }
  if (!Compare)
    return std::nullopt;
  return Opts;
}

} // namespace

// Like BENCHMARK_MAIN(), plus the SPROF_BENCH_JSON hook: when the
// environment variable names a file, the run also emits google-benchmark's
// machine-readable JSON there (equivalent to passing --benchmark_out=...).
// `--compare` skips the micro-suite entirely and runs the engine harness.
int main(int argc, char **argv) {
  if (std::optional<CompareOptions> Opts = parseCompareArgs(argc, argv))
    return runCompare(*Opts);

  std::vector<char *> Args(argv, argv + argc);
  std::string OutArg, FormatArg;
  if (const char *Path = std::getenv("SPROF_BENCH_JSON")) {
    OutArg = std::string("--benchmark_out=") + Path;
    FormatArg = "--benchmark_out_format=json";
    Args.push_back(OutArg.data());
    Args.push_back(FormatArg.data());
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
