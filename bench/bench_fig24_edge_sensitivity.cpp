//===- bench/bench_fig24_edge_sensitivity.cpp - Regenerate paper Figure 24 --===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 24: isolating the edge profile's contribution. Binaries built
/// with the reference-input *edge* profile and the train-input *stride*
/// profile perform like full-ref binaries, showing the Figure-23 gap comes
/// from the edge profile, not the stride profile.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 24: train vs edge.ref-stride.train speedups "
          "(sample-edge-check, run=ref)");
  T.row({"benchmark", "train", "edge.ref-stride.train"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<double> Train, Mixed;
  JsonValue Rows = JsonValue::array();
  for (const SensitivityMeasurement &R :
       measureSuiteSensitivity(Engine, workloadPointers(Suite))) {
    Train.push_back(R.Train);
    Mixed.push_back(R.EdgeRefStrideTrain);
    T.row({R.Name, Table::fmt(R.Train) + "x",
           Table::fmt(R.EdgeRefStrideTrain) + "x"});
    Rows.push(sensitivityMeasurementToJson(R));
  }
  T.row({"average", Table::fmt(mean(Train)) + "x",
         Table::fmt(mean(Mixed)) + "x"});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig24_edge_sensitivity.json",
                          "figure-24-edge-sensitivity", std::move(Rows));
}
