//===- bench/bench_fig19_inloop_classes.cpp - Regenerate paper Figure 19 ----===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 19: distribution of in-loop loads by stride property (naive-all
/// profile, % of all dynamic load references). The paper finds nearly all
/// in-loop loads with stride patterns fall into the prefetchable SSST and
/// PMST classes.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 19: in-loop load references by stride property "
          "(% of all load refs, naive-all profile)");
  T.row({"benchmark", "SSST", "PMST", "WSST", "no-stride"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<double> S, P, W, N;
  JsonValue Rows = JsonValue::array();
  for (const PopulationRow &R : classifySuitePopulation(
           Engine, workloadPointers(Suite), /*InLoopWanted=*/true)) {
    S.push_back(R.SsstPct);
    P.push_back(R.PmstPct);
    W.push_back(R.WsstPct);
    N.push_back(R.NonePct);
    T.row({R.Bench, Table::fmtPercent(R.SsstPct),
           Table::fmtPercent(R.PmstPct), Table::fmtPercent(R.WsstPct),
           Table::fmtPercent(R.NonePct)});
    Rows.push(populationRowToJson(R));
  }
  T.row({"average", Table::fmtPercent(mean(S)), Table::fmtPercent(mean(P)),
         Table::fmtPercent(mean(W)), Table::fmtPercent(mean(N))});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig19_inloop_classes.json",
                          "figure-19-inloop-classes", std::move(Rows));
}
