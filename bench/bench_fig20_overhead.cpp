//===- bench/bench_fig20_overhead.cpp - Regenerate paper Figure 20 ----------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 20: profiling overhead of the six integrated methods relative to
/// edge-frequency profiling alone, on the train inputs. Paper averages:
/// edge-check +58%, naive-loop +272%, naive-all +436%; with sampling +17%,
/// +67%, +122%.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  std::vector<ProfilingMethod> Methods = paperStrideMethods();

  Table T("Figure 20: profiling overhead over edge profiling alone "
          "(train input)");
  std::vector<std::string> Header = {"benchmark"};
  for (ProfilingMethod M : Methods)
    Header.push_back(profilingMethodName(M));
  T.row(Header);

  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<BenchMeasurement> Measurements =
      measureSuite(Engine, workloadPointers(Suite), {}, Methods);

  std::map<ProfilingMethod, std::vector<double>> PerMethod;
  for (const BenchMeasurement &BM : Measurements) {
    std::vector<std::string> Row = {BM.Name};
    for (ProfilingMethod M : Methods) {
      double Overhead =
          ratio(static_cast<double>(BM.Methods.at(M).ProfiledCycles) -
                    static_cast<double>(BM.EdgeOnlyTrainCycles),
                static_cast<double>(BM.EdgeOnlyTrainCycles));
      PerMethod[M].push_back(Overhead);
      Row.push_back(Table::fmtPercent(100.0 * Overhead, 0));
    }
    T.row(Row);
  }

  std::vector<std::string> AvgRow = {"average"};
  std::vector<std::string> PaperRow = {"paper avg"};
  for (ProfilingMethod M : Methods) {
    AvgRow.push_back(Table::fmtPercent(100.0 * mean(PerMethod[M]), 0));
    auto Paper = paperFig20Overhead(M);
    PaperRow.push_back(Paper ? Table::fmtPercent(100.0 * *Paper, 0) : "-");
  }
  T.row(AvgRow);
  T.row(PaperRow);
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig20_overhead.json",
                          "figure-20-overhead", Measurements);
}
