//===- bench/bench_fig25_stride_sensitivity.cpp - Regenerate paper Figure 25 -===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 25: isolating the stride profile's contribution. Binaries built
/// with the train-input *edge* profile and the reference-input *stride*
/// profile perform like full-train binaries: the stride profile is stable
/// across input data sets (the paper's Section 4.3 conclusion).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 25: train vs edge.train-stride.ref speedups "
          "(sample-edge-check, run=ref)");
  T.row({"benchmark", "train", "edge.train-stride.ref"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<double> Train, Mixed;
  JsonValue Rows = JsonValue::array();
  for (const SensitivityMeasurement &R :
       measureSuiteSensitivity(Engine, workloadPointers(Suite))) {
    Train.push_back(R.Train);
    Mixed.push_back(R.EdgeTrainStrideRef);
    T.row({R.Name, Table::fmt(R.Train) + "x",
           Table::fmt(R.EdgeTrainStrideRef) + "x"});
    Rows.push(sensitivityMeasurementToJson(R));
  }
  T.row({"average", Table::fmt(mean(Train)) + "x",
         Table::fmt(mean(Mixed)) + "x"});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig25_stride_sensitivity.json",
                          "figure-25-stride-sensitivity", std::move(Rows));
}
