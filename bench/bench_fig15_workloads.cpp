//===- bench/bench_fig15_workloads.cpp - Regenerate paper Figure 15 ---------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 15: the benchmark table, extended with the synthetic suite's
/// dynamic characteristics (instructions and loads on both inputs) so the
/// substitution for real SPECINT2000 is auditable.
///
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main() {
  Table T("Figure 15: SPECINT2000-shaped synthetic benchmarks");
  T.row({"program", "lang", "description", "train Minstr", "ref Minstr",
         "ref Mloads"});
  RunStats SuiteTrain, SuiteRef;
  SuiteTrain.Completed = SuiteRef.Completed = true;
  for (const auto &W : makeSpecIntSuite()) {
    WorkloadInfo Info = W->info();
    Pipeline P(*W);
    RunStats Train = P.runBaseline(DataSet::Train);
    RunStats Ref = P.runBaseline(DataSet::Ref);
    SuiteTrain += Train;
    SuiteRef += Ref;
    T.row({Info.Name, Info.Lang, Info.Description,
           Table::fmt(Train.Instructions / 1e6, 1),
           Table::fmt(Ref.Instructions / 1e6, 1),
           Table::fmt(Ref.LoadRefs / 1e6, 1)});
  }
  T.row({"suite total", "-", "-",
         Table::fmt(SuiteTrain.Instructions / 1e6, 1),
         Table::fmt(SuiteRef.Instructions / 1e6, 1),
         Table::fmt(SuiteRef.LoadRefs / 1e6, 1)});
  T.print(std::cout);
  return 0;
}
