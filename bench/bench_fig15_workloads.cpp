//===- bench/bench_fig15_workloads.cpp - Regenerate paper Figure 15 ---------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 15: the benchmark table, extended with the synthetic suite's
/// dynamic characteristics (instructions and loads on both inputs) so the
/// substitution for real SPECINT2000 is auditable.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 15: SPECINT2000-shaped synthetic benchmarks");
  T.row({"program", "lang", "description", "train Minstr", "ref Minstr",
         "ref Mloads"});
  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  RunStats SuiteTrain, SuiteRef;
  SuiteTrain.Completed = SuiteRef.Completed = true;
  JsonValue Rows = JsonValue::array();
  for (const BaselineMeasurement &BM :
       measureSuiteBaselines(Engine, workloadPointers(Suite))) {
    SuiteTrain += BM.Train;
    SuiteRef += BM.Ref;
    T.row({BM.Info.Name, BM.Info.Lang, BM.Info.Description,
           Table::fmt(BM.Train.Instructions / 1e6, 1),
           Table::fmt(BM.Ref.Instructions / 1e6, 1),
           Table::fmt(BM.Ref.LoadRefs / 1e6, 1)});
    Rows.push(baselineMeasurementToJson(BM));
  }
  T.row({"suite total", "-", "-",
         Table::fmt(SuiteTrain.Instructions / 1e6, 1),
         Table::fmt(SuiteRef.Instructions / 1e6, 1),
         Table::fmt(SuiteRef.LoadRefs / 1e6, 1)});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig15_workloads.json",
                          "figure-15-workloads", std::move(Rows));
}
