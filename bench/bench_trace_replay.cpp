//===- bench/bench_trace_replay.cpp - Trace capture/replay throughput ------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream frontend's headline numbers: for each suite workload, capture
/// a live edge-check profile run into a sprof.trace file, then replay it
/// through the stream-driven profile phase and report
///
///   * capture size (events, bytes, bytes/event of the delta encoding),
///   * replay throughput (events/sec, wall clock, best of three), and
///   * fidelity -- the replayed stride profile must be bit-identical to
///     the live run's, or the bench exits 1.
///
/// The aggregate events/sec feeds the bench trajectory
/// (scripts/bench_trajectory.py, "replay_events_per_sec").
///
/// A second section measures parallel replay scaling: a large synthetic
/// trace (default 10M events, `--scale-events N` overrides) replayed with
/// one thread and with `--threads N` (default 8) workers through the /2
/// shard index + site-sharded profile path. The threaded profile must be
/// bit-identical to the serial one, and the serial/parallel wall-clock
/// ratio feeds the trajectory as "replay_parallel_speedup".
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "driver/TraceReplay.h"
#include "obs/Report.h"
#include "stream/SyntheticTrace.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace sprof;

namespace {

std::string tmpDir() {
  const char *T = std::getenv("TMPDIR");
  std::string Dir = T && *T ? T : "/tmp";
  if (Dir.back() != '/')
    Dir += '/';
  return Dir;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// `--scale-events=N` / `--scale-events N`: size of the synthetic scaling
/// trace. CI passes a reduced value; the default is the acceptance bar's
/// 10M-event shape.
uint64_t scaleEvents(int Argc, char **Argv, uint64_t Default) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--scale-events=", 15) == 0)
      return std::strtoull(A + 15, nullptr, 10);
    if (std::strcmp(A, "--scale-events") == 0 && I + 1 < Argc)
      return std::strtoull(Argv[I + 1], nullptr, 10);
  }
  return Default;
}

} // namespace

int main(int Argc, char **Argv) {
  const ProfilingMethod Method = ProfilingMethod::EdgeCheck;
  constexpr int Reps = 3;

  Table T("Trace capture + replay (edge-check, train input)");
  T.row({"benchmark", "events", "bytes", "B/event", "replay s", "Mev/s",
         "fidelity"});

  JsonValue Rows = JsonValue::array();
  uint64_t TotalEvents = 0;
  double TotalSeconds = 0.0;
  bool AllIdentical = true;

  for (const std::unique_ptr<Workload> &W : makeSpecIntSuite()) {
    const std::string Name = W->info().Name;
    const std::string Path =
        tmpDir() + "bench_trace_replay_" + Name + ".sprof.trace";

    PipelineConfig Config;
    Config.TraceCapturePath = Path;
    Pipeline P(*W, Config);
    const ProfileRunResult Live =
        P.runProfile(Method, DataSet::Train, /*WithMemorySystem=*/false);
    if (!Live.Capture.Enabled) {
      std::cerr << "error: " << Name << ": trace capture failed (" << Path
                << ")\n";
      return 1;
    }

    TraceReplayOptions Opts;
    Opts.EvaluateWorkload = false;
    Opts.SimulateMemory = false;
    double Best = 0.0;
    bool Identical = true;
    for (int R = 0; R != Reps; ++R) {
      const auto Start = std::chrono::steady_clock::now();
      const TraceReplayResult Replay = replayTraceFile(Path, Opts);
      const double Elapsed = secondsSince(Start);
      if (!Replay.Ok) {
        std::cerr << "error: " << Name << ": replay failed: " << Replay.Error
                  << "\n";
        return 1;
      }
      if (R == 0)
        Identical =
            strideProfileToJson(Replay.Profile.Strides).str() ==
                strideProfileToJson(Live.Strides).str() &&
            edgeProfileToJson(Replay.Profile.Edges).str() ==
                edgeProfileToJson(Live.Edges).str();
      if (Best == 0.0 || Elapsed < Best)
        Best = Elapsed;
    }
    std::remove(Path.c_str());
    AllIdentical = AllIdentical && Identical;

    const double EventsPerSec =
        Best > 0.0 ? static_cast<double>(Live.Capture.Events) / Best : 0.0;
    const double BytesPerEvent =
        Live.Capture.Events
            ? static_cast<double>(Live.Capture.Bytes) /
                  static_cast<double>(Live.Capture.Events)
            : 0.0;
    TotalEvents += Live.Capture.Events;
    TotalSeconds += Best;

    T.row({Name, std::to_string(Live.Capture.Events),
           std::to_string(Live.Capture.Bytes),
           Table::fmt(BytesPerEvent, 2), Table::fmt(Best, 4),
           Table::fmt(EventsPerSec / 1e6, 2),
           Identical ? "bit-identical" : "DIVERGED"});

    JsonValue Row = JsonValue::object();
    Row.set("name", Name)
        .set("method", profilingMethodName(Method))
        .set("events", Live.Capture.Events)
        .set("bytes", Live.Capture.Bytes)
        .set("bytes_per_event", BytesPerEvent)
        .set("replay_seconds", Best)
        .set("events_per_sec", EventsPerSec)
        .set("bit_identical", Identical);
    Rows.push(std::move(Row));
  }

  const double AggregateEventsPerSec =
      TotalSeconds > 0.0 ? static_cast<double>(TotalEvents) / TotalSeconds
                         : 0.0;
  T.row({"total", std::to_string(TotalEvents), "-", "-",
         Table::fmt(TotalSeconds, 4),
         Table::fmt(AggregateEventsPerSec / 1e6, 2),
         AllIdentical ? "bit-identical" : "DIVERGED"});
  T.print(std::cout);

  if (!AllIdentical) {
    std::cerr << "error: replayed profiles diverged from the live runs\n";
    return 1;
  }

  // Parallel replay scaling: one big synthetic trace (mixed load/prefetch
  // kinds, so the Load filter is exercised), replayed serially and with
  // the thread pool over the /2 shard index.
  const unsigned Threads = benchThreads(Argc, Argv, 8);
  const uint64_t ScaleLoads = scaleEvents(Argc, Argv, 10'000'000);
  const std::string ScalePath =
      tmpDir() + "bench_trace_replay_scale.sprof.trace";
  uint64_t ScaleTraceEvents = 0;
  uint64_t ScaleTraceBytes = 0;
  {
    SyntheticTraceConfig SC;
    SC.Events = ScaleLoads;
    SC.Seed = 1;
    auto Src = makeSyntheticTrace("stream-mixed", SC);
    if (!Src) {
      std::cerr << "error: cannot build the stream-mixed scaling trace\n";
      return 1;
    }
    std::string Err;
    auto W = TraceWriter::open(ScalePath, Src->numSites(), {}, /*Text=*/false,
                               &Err);
    if (!W) {
      std::cerr << "error: " << ScalePath << ": " << Err << "\n";
      return 1;
    }
    drainStream(*Src, *W, 4096);
    W->finish();
    if (!W->ok()) {
      std::cerr << "error: " << ScalePath << ": " << W->error() << "\n";
      return 1;
    }
    ScaleTraceEvents = W->eventsWritten();
    ScaleTraceBytes = W->bytesWritten();
  }

  TraceReplayOptions ScaleOpts;
  ScaleOpts.EvaluateWorkload = false;
  ScaleOpts.SimulateMemory = false;
  ScaleOpts.Method = Method;
  double SerialBest = 0.0, ParallelBest = 0.0;
  std::string SerialJson, ParallelJson;
  for (const unsigned N : {1u, Threads}) {
    ScaleOpts.Threads = N;
    double Best = 0.0;
    for (int R = 0; R != Reps; ++R) {
      const auto Start = std::chrono::steady_clock::now();
      const TraceReplayResult Replay = replayTraceFile(ScalePath, ScaleOpts);
      const double Elapsed = secondsSince(Start);
      if (!Replay.Ok) {
        std::cerr << "error: scaling replay (threads=" << N
                  << ") failed: " << Replay.Error << "\n";
        return 1;
      }
      if (R == 0) {
        std::string &Json = N == 1 ? SerialJson : ParallelJson;
        Json = strideProfileToJson(Replay.Profile.Strides).str();
      }
      if (Best == 0.0 || Elapsed < Best)
        Best = Elapsed;
    }
    (N == 1 ? SerialBest : ParallelBest) = Best;
    if (N == Threads)
      break; // Threads == 1: one measurement serves both roles
  }
  if (Threads == 1) {
    ParallelBest = SerialBest;
    ParallelJson = SerialJson;
  }
  std::remove(ScalePath.c_str());

  const bool ScaleIdentical = ParallelJson == SerialJson;
  const double Speedup =
      ParallelBest > 0.0 ? SerialBest / ParallelBest : 0.0;

  Table S("Parallel replay scaling (stream-mixed, " +
          std::to_string(ScaleTraceEvents) + " events)");
  S.row({"threads", "serial s", "parallel s", "speedup", "fidelity"});
  S.row({std::to_string(Threads), Table::fmt(SerialBest, 4),
         Table::fmt(ParallelBest, 4), Table::fmt(Speedup, 2),
         ScaleIdentical ? "bit-identical" : "DIVERGED"});
  S.print(std::cout);

  if (!ScaleIdentical) {
    std::cerr << "error: parallel replay diverged from serial on the "
                 "scaling trace\n";
    return 1;
  }

  JsonValue Doc = JsonValue::object();
  Doc.set("replay_events_per_sec", AggregateEventsPerSec)
      .set("total_events", TotalEvents)
      .set("total_replay_seconds", TotalSeconds)
      .set("replay_parallel_speedup", Speedup)
      .set("scale_events", ScaleTraceEvents)
      .set("scale_bytes", ScaleTraceBytes)
      .set("scale_threads", static_cast<uint64_t>(Threads))
      .set("scale_serial_seconds", SerialBest)
      .set("scale_parallel_seconds", ParallelBest)
      .set("scale_bit_identical", ScaleIdentical)
      .set("benchmarks", std::move(Rows));
  return emitBenchReport(Argc, Argv, "bench_trace_replay.json",
                         "trace-replay", std::move(Doc));
}
