//===- bench/bench_trace_replay.cpp - Trace capture/replay throughput ------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream frontend's headline numbers: for each suite workload, capture
/// a live edge-check profile run into a sprof.trace file, then replay it
/// through the stream-driven profile phase and report
///
///   * capture size (events, bytes, bytes/event of the delta encoding),
///   * replay throughput (events/sec, wall clock, best of three), and
///   * fidelity -- the replayed stride profile must be bit-identical to
///     the live run's, or the bench exits 1.
///
/// The aggregate events/sec feeds the bench trajectory
/// (scripts/bench_trajectory.py, "replay_events_per_sec").
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "driver/TraceReplay.h"
#include "obs/Report.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace sprof;

namespace {

std::string tmpDir() {
  const char *T = std::getenv("TMPDIR");
  std::string Dir = T && *T ? T : "/tmp";
  if (Dir.back() != '/')
    Dir += '/';
  return Dir;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int Argc, char **Argv) {
  const ProfilingMethod Method = ProfilingMethod::EdgeCheck;
  constexpr int Reps = 3;

  Table T("Trace capture + replay (edge-check, train input)");
  T.row({"benchmark", "events", "bytes", "B/event", "replay s", "Mev/s",
         "fidelity"});

  JsonValue Rows = JsonValue::array();
  uint64_t TotalEvents = 0;
  double TotalSeconds = 0.0;
  bool AllIdentical = true;

  for (const std::unique_ptr<Workload> &W : makeSpecIntSuite()) {
    const std::string Name = W->info().Name;
    const std::string Path =
        tmpDir() + "bench_trace_replay_" + Name + ".sprof.trace";

    PipelineConfig Config;
    Config.TraceCapturePath = Path;
    Pipeline P(*W, Config);
    const ProfileRunResult Live =
        P.runProfile(Method, DataSet::Train, /*WithMemorySystem=*/false);
    if (!Live.Capture.Enabled) {
      std::cerr << "error: " << Name << ": trace capture failed (" << Path
                << ")\n";
      return 1;
    }

    TraceReplayOptions Opts;
    Opts.EvaluateWorkload = false;
    Opts.SimulateMemory = false;
    double Best = 0.0;
    bool Identical = true;
    for (int R = 0; R != Reps; ++R) {
      const auto Start = std::chrono::steady_clock::now();
      const TraceReplayResult Replay = replayTraceFile(Path, Opts);
      const double Elapsed = secondsSince(Start);
      if (!Replay.Ok) {
        std::cerr << "error: " << Name << ": replay failed: " << Replay.Error
                  << "\n";
        return 1;
      }
      if (R == 0)
        Identical =
            strideProfileToJson(Replay.Profile.Strides).str() ==
                strideProfileToJson(Live.Strides).str() &&
            edgeProfileToJson(Replay.Profile.Edges).str() ==
                edgeProfileToJson(Live.Edges).str();
      if (Best == 0.0 || Elapsed < Best)
        Best = Elapsed;
    }
    std::remove(Path.c_str());
    AllIdentical = AllIdentical && Identical;

    const double EventsPerSec =
        Best > 0.0 ? static_cast<double>(Live.Capture.Events) / Best : 0.0;
    const double BytesPerEvent =
        Live.Capture.Events
            ? static_cast<double>(Live.Capture.Bytes) /
                  static_cast<double>(Live.Capture.Events)
            : 0.0;
    TotalEvents += Live.Capture.Events;
    TotalSeconds += Best;

    T.row({Name, std::to_string(Live.Capture.Events),
           std::to_string(Live.Capture.Bytes),
           Table::fmt(BytesPerEvent, 2), Table::fmt(Best, 4),
           Table::fmt(EventsPerSec / 1e6, 2),
           Identical ? "bit-identical" : "DIVERGED"});

    JsonValue Row = JsonValue::object();
    Row.set("name", Name)
        .set("method", profilingMethodName(Method))
        .set("events", Live.Capture.Events)
        .set("bytes", Live.Capture.Bytes)
        .set("bytes_per_event", BytesPerEvent)
        .set("replay_seconds", Best)
        .set("events_per_sec", EventsPerSec)
        .set("bit_identical", Identical);
    Rows.push(std::move(Row));
  }

  const double AggregateEventsPerSec =
      TotalSeconds > 0.0 ? static_cast<double>(TotalEvents) / TotalSeconds
                         : 0.0;
  T.row({"total", std::to_string(TotalEvents), "-", "-",
         Table::fmt(TotalSeconds, 4),
         Table::fmt(AggregateEventsPerSec / 1e6, 2),
         AllIdentical ? "bit-identical" : "DIVERGED"});
  T.print(std::cout);

  if (!AllIdentical) {
    std::cerr << "error: replayed profiles diverged from the live runs\n";
    return 1;
  }

  JsonValue Doc = JsonValue::object();
  Doc.set("replay_events_per_sec", AggregateEventsPerSec)
      .set("total_events", TotalEvents)
      .set("total_replay_seconds", TotalSeconds)
      .set("benchmarks", std::move(Rows));
  return emitBenchReport(Argc, Argv, "bench_trace_replay.json",
                         "trace-replay", std::move(Doc));
}
