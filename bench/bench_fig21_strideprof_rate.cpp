//===- bench/bench_fig21_strideprof_rate.cpp - Regenerate paper Figure 21 ---===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 21: percentage of dynamic load references processed by the
/// strideProf routine (past the sampling code), per method. Paper
/// averages: edge-check ~11%, naive-loop ~60%, naive-all 100%, sampled
/// <1% / 3% / 5%.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  std::vector<ProfilingMethod> Methods = paperStrideMethods();

  Table T("Figure 21: % of load references processed in strideProf "
          "(after sampling, train input)");
  std::vector<std::string> Header = {"benchmark"};
  for (ProfilingMethod M : Methods)
    Header.push_back(profilingMethodName(M));
  T.row(Header);

  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<BenchMeasurement> Measurements =
      measureSuite(Engine, workloadPointers(Suite), {}, Methods);

  std::map<ProfilingMethod, std::vector<double>> PerMethod;
  for (const BenchMeasurement &BM : Measurements) {
    std::vector<std::string> Row = {BM.Name};
    for (ProfilingMethod M : Methods) {
      const MethodMeasurement &MM = BM.Methods.at(M);
      double Pct = percent(static_cast<double>(MM.StrideProcessed),
                           static_cast<double>(MM.TrainLoadRefs));
      PerMethod[M].push_back(Pct);
      Row.push_back(Table::fmtPercent(Pct));
    }
    T.row(Row);
  }

  std::vector<std::string> AvgRow = {"average"};
  std::vector<std::string> PaperRow = {"paper avg"};
  for (ProfilingMethod M : Methods) {
    AvgRow.push_back(Table::fmtPercent(mean(PerMethod[M])));
    auto Paper = paperFig21Processed(M);
    PaperRow.push_back(Paper ? "~" + Table::fmtPercent(*Paper, 0) : "-");
  }
  T.row(AvgRow);
  T.row(PaperRow);
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig21_strideprof_rate.json",
                          "figure-21-strideprof-rate", Measurements);
}
