//===- bench/bench_fig17_loadmix.cpp - Regenerate paper Figure 17 -----------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 17: percentage of dynamic load references from in-loop vs
/// out-loop loads (loads in irreducible loops count as out-loop). The
/// paper reports ~60% in-loop / ~40% out-loop on average.
///
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  Table T("Figure 17: in-loop vs out-loop dynamic load references (ref)");
  T.row({"benchmark", "in-loop", "out-loop"});

  auto Suite = makeSpecIntSuite();
  std::vector<const Workload *> Workloads = workloadPointers(Suite);
  ExperimentEngine Engine({benchThreads(Argc, Argv)});

  // One self-contained job per benchmark: run the reference input
  // uninstrumented and split its dynamic loads by the loop nesting of
  // their sites.
  std::vector<double> InLoopShares(Workloads.size(), 0.0);
  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Workload *W = Workloads[WI];
    double *Share = &InLoopShares[WI];
    Engine.addJob("loadmix:" + W->info().Name, "run-job",
                  [W, Share](ObsSession *) {
                    Program Prog = W->build(DataSet::Ref);
                    Interpreter I(Prog.M, std::move(Prog.Memory));
                    RunStats S = I.run();

                    // Per-site in-loop classification.
                    std::vector<SiteLocation> Sites =
                        Prog.M.locateLoadSites();
                    uint64_t InLoop = 0, OutLoop = 0;
                    for (uint32_t FI = 0; FI != Prog.M.Functions.size();
                         ++FI) {
                      const Function &F = Prog.M.Functions[FI];
                      DomTree DT = DomTree::forward(F);
                      LoopInfo LI(F, DT);
                      for (uint32_t Site = 0;
                           Site != Prog.M.NumLoadSites; ++Site) {
                        if (Sites[Site].Func != FI)
                          continue;
                        if (LI.isInLoop(Sites[Site].Block))
                          InLoop += S.SiteCounts[Site];
                        else
                          OutLoop += S.SiteCounts[Site];
                      }
                    }
                    *Share = percent(
                        static_cast<double>(InLoop),
                        static_cast<double>(InLoop + OutLoop));
                  });
  }
  Engine.run();

  JsonValue Rows = JsonValue::array();
  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    double InPct = InLoopShares[WI];
    T.row({Workloads[WI]->info().Name, Table::fmtPercent(InPct),
           Table::fmtPercent(100.0 - InPct)});
    JsonValue R = JsonValue::object();
    R.set("name", Workloads[WI]->info().Name);
    R.set("in_loop_pct", InPct);
    R.set("out_loop_pct", 100.0 - InPct);
    Rows.push(std::move(R));
  }
  double Avg = mean(InLoopShares);
  T.row({"average", Table::fmtPercent(Avg),
         Table::fmtPercent(100.0 - Avg)});
  T.row({"paper avg", "~60%", "~40%"});
  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig17_loadmix.json",
                          "figure-17-loadmix", std::move(Rows));
}
