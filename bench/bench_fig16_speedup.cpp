//===- bench/bench_fig16_speedup.cpp - Regenerate paper Figure 16 -----------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 16: speedup of stride-profile-guided prefetching for each of the
/// six profiling methods across the SPECINT2000-like suite. Profiles are
/// collected with the train input; performance is measured on the
/// reference input (paper Section 4.1).
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace sprof;

int main(int Argc, char **Argv) {
  std::vector<ProfilingMethod> Methods = paperStrideMethods();

  Table T("Figure 16: speedup of stride prefetching "
          "(profile=train, run=ref)");
  std::vector<std::string> Header = {"benchmark"};
  for (ProfilingMethod M : Methods)
    Header.push_back(profilingMethodName(M));
  Header.push_back("paper(edge-check)");
  T.row(Header);

  auto Suite = makeSpecIntSuite();
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  std::vector<BenchMeasurement> Measurements =
      measureSuite(Engine, workloadPointers(Suite), {}, Methods);

  std::map<ProfilingMethod, std::vector<double>> PerMethod;
  for (const BenchMeasurement &BM : Measurements) {
    std::vector<std::string> Row = {BM.Name};
    for (ProfilingMethod M : Methods) {
      double S = BM.Methods.at(M).Speedup;
      PerMethod[M].push_back(S);
      Row.push_back(Table::fmt(S) + "x");
    }
    auto Paper = paperFig16Speedup(BM.Name);
    Row.push_back(Paper ? Table::fmt(*Paper) + "x" : "-");
    T.row(Row);
  }

  std::vector<std::string> AvgRow = {"average"};
  for (ProfilingMethod M : Methods)
    AvgRow.push_back(Table::fmt(mean(PerMethod[M])) + "x");
  AvgRow.push_back("1.07x");
  T.row(AvgRow);

  T.print(std::cout);
  return emitBenchReport(Argc, Argv, "bench_fig16_speedup.json",
                          "figure-16-speedup", Measurements);
}
