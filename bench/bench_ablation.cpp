//===- bench/bench_ablation.cpp - Design-choice ablations --------------------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices DESIGN.md calls out, on the three
/// headline benchmarks (mcf, gap, parser):
///
///   1. WSST prefetching on/off -- the paper turns it off for lack of
///      benefit; we measure what turning it on does.
///   2. is_same_value coarsening on/off (Figure 7 enhancement).
///   3. Prefetch max distance C sweep.
///   4. Trip-count threshold TT sweep.
///   5. Block-check vs edge-check: same prefetch decisions (the paper's
///      equivalence claim), measured end to end.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Random.h"
#include "support/Table.h"
#include "workloads/Builders.h"

#include <iostream>

using namespace sprof;

namespace {

/// A parameterized pointer chase over nodes holding pointers into a
/// *randomly allocated* payload region: the node chase is SSST, the
/// payload load has no stride of its own. Used by the dependent-prefetch
/// and allocation-order ablations.
class IndirectChase final : public Workload {
public:
  IndirectChase(unsigned NoisePercent, bool RandomPayload)
      : Noise(NoisePercent), RandomPayload(RandomPayload) {}

  WorkloadInfo info() const override {
    return {"ablation.chase", "IR", "parameterized indirect chase"};
  }

  Program build(DataSet DS) const override {
    const uint64_t Count = DS == DataSet::Ref ? 50000 : 16000;
    Program Prog;
    Prog.M.Name = "ablation.chase";
    BumpAllocator A;
    Rng R(0xAB1A710 + Noise);

    // Payload region, either allocated in traversal order (strided) or
    // shuffled (what a long-lived fragmented heap looks like).
    std::vector<uint64_t> Payloads(Count);
    for (uint64_t I = 0; I != Count; ++I)
      Payloads[I] = A.alloc(64, 8);
    if (RandomPayload)
      for (uint64_t I = Count; I > 1; --I)
        std::swap(Payloads[I - 1], Payloads[R.below(I)]);

    std::vector<uint64_t> Nodes;
    ListSpec Spec;
    Spec.Count = Count;
    Spec.NodeBytes = 64;
    Spec.NoisePercent = Noise;
    uint64_t Head = buildList(Prog.Memory, A, R, Spec, &Nodes);
    for (uint64_t I = 0; I != Count; ++I)
      Prog.Memory.write64(Nodes[I] + 8,
                          static_cast<int64_t>(Payloads[I]));

    IRBuilder B(Prog.M);
    B.startFunction("main", 0);
    Reg Acc = B.movImm(0);
    emitCountedLoop(B, Operand::imm(2), [&](IRBuilder &OB, Reg) {
      Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
      emitPointerLoop(OB, P, [&](IRBuilder &IB, Reg Node) {
        Reg Ptr = IB.load(Node, 8);  // SSST base load
        Reg Val = IB.load(Ptr, 0);   // dependent payload load
        IB.add(Operand::reg(Acc), Operand::reg(Val), Acc);
        IB.load(Node, 0, Node);
      });
    });
    B.halt();
    return Prog;
  }

private:
  unsigned Noise;
  bool RandomPayload;
};

double speedupWith(const Workload &W, const PipelineConfig &Config,
                   ProfilingMethod Method = ProfilingMethod::EdgeCheck) {
  Pipeline P(W, Config);
  return P.speedup(Method, DataSet::Train, DataSet::Ref);
}

std::vector<std::string> headliners() {
  return {"181.mcf", "254.gap", "197.parser"};
}

} // namespace

int main() {
  // --- 1. WSST prefetching ------------------------------------------------
  {
    Table T("Ablation 1: WSST prefetching (paper disables it)");
    T.row({"benchmark", "WSST off (default)", "WSST on"});
    for (const std::string &Name : headliners()) {
      auto W = makeWorkloadByName(Name);
      PipelineConfig On;
      On.Classifier.EnableWsstPrefetch = true;
      T.row({Name, Table::fmt(speedupWith(*W, {})) + "x",
             Table::fmt(speedupWith(*W, On)) + "x"});
    }
    T.print(std::cout);
  }

  // --- 2. is_same_value coarsening -----------------------------------------
  {
    Table T("Ablation 2: is_same_value coarsening (Figure 7)");
    T.row({"benchmark", "coarsen=4 (default)", "coarsen=0 (Figure 6)"});
    for (const std::string &Name : headliners()) {
      auto W = makeWorkloadByName(Name);
      PipelineConfig Exact;
      Exact.Profiler.AddrCoarsenShift = 0;
      Exact.Profiler.Lfu.CoarsenShift = 0;
      T.row({Name, Table::fmt(speedupWith(*W, {})) + "x",
             Table::fmt(speedupWith(*W, Exact)) + "x"});
    }
    T.print(std::cout);
  }

  // --- 3. Prefetch distance sweep ------------------------------------------
  {
    Table T("Ablation 3: max prefetch distance C");
    T.row({"benchmark", "C=1", "C=2", "C=4", "C=8 (default)", "C=16"});
    for (const std::string &Name : headliners()) {
      std::vector<std::string> Row = {Name};
      for (unsigned C : {1u, 2u, 4u, 8u, 16u}) {
        auto W = makeWorkloadByName(Name);
        PipelineConfig Cfg;
        Cfg.Classifier.MaxPrefetchDistance = C;
        Row.push_back(Table::fmt(speedupWith(*W, Cfg)) + "x");
      }
      T.row(Row);
    }
    T.print(std::cout);
  }

  // --- 4. Trip-count threshold sweep ---------------------------------------
  {
    Table T("Ablation 4: trip-count threshold TT");
    T.row({"benchmark", "TT=32", "TT=128 (default)", "TT=512"});
    for (const std::string &Name : headliners()) {
      std::vector<std::string> Row = {Name};
      for (uint64_t TT : {32ull, 128ull, 512ull}) {
        auto W = makeWorkloadByName(Name);
        PipelineConfig Cfg;
        Cfg.Instrument.TripCountThreshold = TT;
        Cfg.Classifier.TripCountThreshold = TT;
        Row.push_back(Table::fmt(speedupWith(*W, Cfg)) + "x");
      }
      T.row(Row);
    }
    T.print(std::cout);
  }

  // --- 5. Block-check vs edge-check ----------------------------------------
  {
    Table T("Ablation 5: block-check vs edge-check (same profile claim)");
    T.row({"benchmark", "edge-check", "block-check"});
    for (const std::string &Name : headliners()) {
      auto W = makeWorkloadByName(Name);
      T.row({Name,
             Table::fmt(speedupWith(*W, {}, ProfilingMethod::EdgeCheck)) +
                 "x",
             Table::fmt(speedupWith(*W, {}, ProfilingMethod::BlockCheck)) +
                 "x"});
    }
    T.print(std::cout);
  }

  // --- 6. Dependent-load prefetching (Section 6 future work) ---------------
  {
    Table T("Ablation 6: dependent-load prefetching "
            "(indirect chase, randomly allocated payload)");
    T.row({"configuration", "speedup"});
    IndirectChase W(/*NoisePercent=*/4, /*RandomPayload=*/true);
    T.row({"stride prefetch only (paper system)",
           Table::fmt(speedupWith(W, {})) + "x"});
    PipelineConfig Dep;
    Dep.Classifier.EnableDependentPrefetch = true;
    T.row({"+ dependent prefetch (load.s chase)",
           Table::fmt(speedupWith(W, Dep)) + "x"});
    T.print(std::cout);
  }

  // --- 7. Allocation order (Section 6 future work) --------------------------
  {
    Table T("Ablation 7: allocation-order sensitivity "
            "(indirect chase, strided payload, noise sweep)");
    T.row({"allocation noise", "top1 stride share", "speedup"});
    for (unsigned Noise : {0u, 5u, 15u, 30u, 50u}) {
      IndirectChase W(Noise, /*RandomPayload=*/false);
      Pipeline P(W, {});
      ProfileRunResult PR = P.runProfile(ProfilingMethod::EdgeCheck,
                                         DataSet::Train, false);
      // Dominant-stride share of the noisiest hot site (the node chase;
      // the payload site stays at ~100% since only the node allocation is
      // perturbed).
      double Share = 1.0;
      for (uint32_t S = 0; S != PR.Strides.numSites(); ++S) {
        const StrideSiteSummary &Sum = PR.Strides.site(S);
        if (Sum.TotalStrides > 1000)
          Share = std::min(Share, double(Sum.top1Freq()) /
                                      double(Sum.TotalStrides));
      }
      T.row({std::to_string(Noise) + "%",
             Table::fmtPercent(100.0 * Share),
             Table::fmt(speedupWith(W, {})) + "x"});
    }
    T.print(std::cout);
  }

  // --- 8. Use-distance filter (Section 6 future work) -----------------------
  {
    Table T("Ablation 8: use-distance filter on the headliners "
            "(should not veto hot-loop prefetches)");
    T.row({"benchmark", "filter off", "filter on (gap<=64)"});
    for (const std::string &Name : headliners()) {
      auto W = makeWorkloadByName(Name);
      PipelineConfig On;
      On.Classifier.EnableUseDistanceFilter = true;
      T.row({Name, Table::fmt(speedupWith(*W, {})) + "x",
             Table::fmt(speedupWith(*W, On)) + "x"});
    }
    T.print(std::cout);
  }
  return 0;
}
