//===- bench/bench_ablation.cpp - Design-choice ablations --------------------===//
//
// Part of the StrideProf project (see bench_fig16_speedup.cpp for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations for the design choices DESIGN.md calls out, on the three
/// headline benchmarks (mcf, gap, parser):
///
///   1. WSST prefetching on/off -- the paper turns it off for lack of
///      benefit; we measure what turning it on does.
///   2. is_same_value coarsening on/off (Figure 7 enhancement).
///   3. Prefetch max distance C sweep.
///   4. Trip-count threshold TT sweep.
///   5. Block-check vs edge-check: same prefetch decisions (the paper's
///      equivalence claim), measured end to end.
///
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"
#include "support/Random.h"
#include "support/Table.h"
#include "workloads/Builders.h"

#include <iostream>

using namespace sprof;

namespace {

/// A parameterized pointer chase over nodes holding pointers into a
/// *randomly allocated* payload region: the node chase is SSST, the
/// payload load has no stride of its own. Used by the dependent-prefetch
/// and allocation-order ablations.
class IndirectChase final : public Workload {
public:
  IndirectChase(unsigned NoisePercent, bool RandomPayload)
      : Noise(NoisePercent), RandomPayload(RandomPayload) {}

  WorkloadInfo info() const override {
    return {"ablation.chase", "IR", "parameterized indirect chase"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const uint64_t Count = DS == DataSet::Ref ? 50000 : 16000;
    Program Prog;
    Prog.M.Name = "ablation.chase";
    BumpAllocator A;
    Rng R(0xAB1A710 + Noise);

    // Payload region, either allocated in traversal order (strided) or
    // shuffled (what a long-lived fragmented heap looks like).
    std::vector<uint64_t> Payloads(Count);
    for (uint64_t I = 0; I != Count; ++I)
      Payloads[I] = A.alloc(64, 8);
    if (RandomPayload)
      for (uint64_t I = Count; I > 1; --I)
        std::swap(Payloads[I - 1], Payloads[R.below(I)]);

    std::vector<uint64_t> Nodes;
    ListSpec Spec;
    Spec.Count = Count;
    Spec.NodeBytes = 64;
    Spec.NoisePercent = Noise;
    uint64_t Head = buildList(Prog.Memory, A, R, Spec, &Nodes);
    for (uint64_t I = 0; I != Count; ++I)
      Prog.Memory.write64(Nodes[I] + 8,
                          static_cast<int64_t>(Payloads[I]));

    IRBuilder B(Prog.M);
    B.startFunction("main", 0);
    Reg Acc = B.movImm(0);
    emitCountedLoop(B, Operand::imm(2), [&](IRBuilder &OB, Reg) {
      Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
      emitPointerLoop(OB, P, [&](IRBuilder &IB, Reg Node) {
        Reg Ptr = IB.load(Node, 8);  // SSST base load
        Reg Val = IB.load(Ptr, 0);   // dependent payload load
        IB.add(Operand::reg(Acc), Operand::reg(Val), Acc);
        IB.load(Node, 0, Node);
      });
    });
    B.halt();
    return Prog;
  }

private:
  unsigned Noise;
  bool RandomPayload;
};

std::vector<std::string> headliners() {
  return {"181.mcf", "254.gap", "197.parser"};
}

/// Queues a train-input profile run on \p Engine and returns a handle to
/// the profile it will produce. Feedback-side ablations (classifier and
/// prefetch knobs) share one profile instead of re-profiling per
/// configuration.
struct ProfileHandle {
  std::shared_ptr<ProfileRunResult> Profile;
  JobId Job;
};

ProfileHandle queueProfile(ExperimentEngine &Engine, const std::string &Tag,
                           const Workload &W, const PipelineConfig &Config,
                           ProfilingMethod Method) {
  auto PR = std::make_shared<ProfileRunResult>();
  JobId Job = Engine.addJob(
      "profile:" + Tag, "run-job",
      [&W, Config, Method, PR](ObsSession *JobObs) {
        Pipeline P(W, Config, JobObs);
        *PR = P.runProfile(Method, DataSet::Train,
                           /*WithMemorySystem=*/false);
      });
  return {PR, Job};
}

/// Queues the timed half (baseline + prefetched run on ref) against an
/// already-queued profile; *Out receives the speedup after Engine.run().
void queueSpeedup(ExperimentEngine &Engine, const std::string &Tag,
                  const Workload &W, const PipelineConfig &Config,
                  const ProfileHandle &Profile, double *Out) {
  std::shared_ptr<ProfileRunResult> PR = Profile.Profile;
  Engine.addJob(
      "feedback:" + Tag, "feedback-job",
      [&W, Config, PR, Out](ObsSession *JobObs) {
        Pipeline P(W, Config, JobObs);
        *Out = P.speedup(DataSet::Ref, PR->Edges, PR->Strides);
      },
      {Profile.Job});
}

/// queueProfile + queueSpeedup with the same configuration.
ProfileHandle queueChain(ExperimentEngine &Engine, const std::string &Tag,
                         const Workload &W, const PipelineConfig &Config,
                         double *Out,
                         ProfilingMethod Method = ProfilingMethod::EdgeCheck) {
  ProfileHandle H = queueProfile(Engine, Tag, W, Config, Method);
  queueSpeedup(Engine, Tag, W, Config, H, Out);
  return H;
}

} // namespace

int main(int Argc, char **Argv) {
  // Every ablation below queues its runs on one engine graph; feedback-side
  // ablations (classifier/prefetch knobs) share the default train profile
  // of their benchmark instead of re-profiling per configuration, and all
  // independent runs overlap across --threads workers.
  ExperimentEngine Engine({benchThreads(Argc, Argv)});
  const std::vector<std::string> Names = headliners();
  const size_t NH = Names.size();

  std::vector<std::unique_ptr<Workload>> Owned;
  std::vector<const Workload *> HW;
  for (const std::string &Name : Names) {
    Owned.push_back(makeWorkloadByName(Name));
    HW.push_back(Owned.back().get());
  }

  // Default chain per headliner; its speedup is the shared "default"
  // column of ablations 1, 3 (C=8), 5 (edge-check), and 8.
  std::vector<double> DefaultSpeedup(NH, 1.0);
  std::vector<ProfileHandle> DefaultProfile(NH);
  for (size_t I = 0; I != NH; ++I)
    DefaultProfile[I] = queueChain(Engine, Names[I] + "/default", *HW[I],
                                   {}, &DefaultSpeedup[I]);

  // 1. WSST prefetching (classifier-side: shares the default profile).
  std::vector<double> WsstOn(NH, 1.0);
  for (size_t I = 0; I != NH; ++I) {
    PipelineConfig On;
    On.Classifier.EnableWsstPrefetch = true;
    queueSpeedup(Engine, Names[I] + "/wsst-on", *HW[I], On,
                 DefaultProfile[I], &WsstOn[I]);
  }

  // 2. is_same_value coarsening (profiler-side: needs its own profile).
  std::vector<double> Coarsen0(NH, 1.0);
  for (size_t I = 0; I != NH; ++I) {
    PipelineConfig Exact;
    Exact.Profiler.AddrCoarsenShift = 0;
    Exact.Profiler.Lfu.CoarsenShift = 0;
    queueChain(Engine, Names[I] + "/coarsen0", *HW[I], Exact,
               &Coarsen0[I]);
  }

  // 3. Prefetch distance sweep (prefetch-side: shares the default
  // profile; C=8 is the default chain itself).
  const unsigned Distances[] = {1u, 2u, 4u, 8u, 16u};
  std::vector<std::vector<double>> Dist(NH,
                                        std::vector<double>(5, 1.0));
  for (size_t I = 0; I != NH; ++I)
    for (size_t CI = 0; CI != 5; ++CI) {
      if (Distances[CI] == 8)
        continue;
      PipelineConfig Cfg;
      Cfg.Classifier.MaxPrefetchDistance = Distances[CI];
      queueSpeedup(Engine,
                   Names[I] + "/dist" + std::to_string(Distances[CI]),
                   *HW[I], Cfg, DefaultProfile[I], &Dist[I][CI]);
    }

  // 4. Trip-count threshold sweep (instrumentation-side: full chains;
  // TT=128 is the default chain).
  const uint64_t Trips[] = {32ull, 128ull, 512ull};
  std::vector<std::vector<double>> Tt(NH, std::vector<double>(3, 1.0));
  for (size_t I = 0; I != NH; ++I)
    for (size_t TI = 0; TI != 3; ++TI) {
      if (Trips[TI] == 128)
        continue;
      PipelineConfig Cfg;
      Cfg.Instrument.TripCountThreshold = Trips[TI];
      Cfg.Classifier.TripCountThreshold = Trips[TI];
      queueChain(Engine, Names[I] + "/tt" + std::to_string(Trips[TI]),
                 *HW[I], Cfg, &Tt[I][TI]);
    }

  // 5. Block-check vs edge-check (different instrumentation: full chain).
  std::vector<double> BlockCheck(NH, 1.0);
  for (size_t I = 0; I != NH; ++I)
    queueChain(Engine, Names[I] + "/block-check", *HW[I], {},
               &BlockCheck[I], ProfilingMethod::BlockCheck);

  // 6. Dependent-load prefetching (classifier-side: shared profile).
  IndirectChase ChaseRandom(/*NoisePercent=*/4, /*RandomPayload=*/true);
  double DepOff = 1.0, DepOn = 1.0;
  ProfileHandle ChaseProfile =
      queueChain(Engine, "chase/default", ChaseRandom, {}, &DepOff);
  {
    PipelineConfig Dep;
    Dep.Classifier.EnableDependentPrefetch = true;
    queueSpeedup(Engine, "chase/dependent", ChaseRandom, Dep,
                 ChaseProfile, &DepOn);
  }

  // 7. Allocation-order sensitivity: chain per noise level; the profile
  // also feeds the top1-share analysis after the run.
  const unsigned Noises[] = {0u, 5u, 15u, 30u, 50u};
  std::vector<std::unique_ptr<IndirectChase>> NoiseW;
  std::vector<double> NoiseSpeedup(5, 1.0);
  std::vector<ProfileHandle> NoiseProfile(5);
  for (size_t NI = 0; NI != 5; ++NI) {
    NoiseW.push_back(std::make_unique<IndirectChase>(
        Noises[NI], /*RandomPayload=*/false));
    NoiseProfile[NI] =
        queueChain(Engine, "chase/noise" + std::to_string(Noises[NI]),
                   *NoiseW[NI], {}, &NoiseSpeedup[NI]);
  }

  // 8. Use-distance filter (classifier-side: shared profile).
  std::vector<double> UseDistOn(NH, 1.0);
  for (size_t I = 0; I != NH; ++I) {
    PipelineConfig On;
    On.Classifier.EnableUseDistanceFilter = true;
    queueSpeedup(Engine, Names[I] + "/use-distance", *HW[I], On,
                 DefaultProfile[I], &UseDistOn[I]);
  }

  Engine.run();

  {
    Table T("Ablation 1: WSST prefetching (paper disables it)");
    T.row({"benchmark", "WSST off (default)", "WSST on"});
    for (size_t I = 0; I != NH; ++I)
      T.row({Names[I], Table::fmt(DefaultSpeedup[I]) + "x",
             Table::fmt(WsstOn[I]) + "x"});
    T.print(std::cout);
  }

  {
    Table T("Ablation 2: is_same_value coarsening (Figure 7)");
    T.row({"benchmark", "coarsen=4 (default)", "coarsen=0 (Figure 6)"});
    for (size_t I = 0; I != NH; ++I)
      T.row({Names[I], Table::fmt(DefaultSpeedup[I]) + "x",
             Table::fmt(Coarsen0[I]) + "x"});
    T.print(std::cout);
  }

  {
    Table T("Ablation 3: max prefetch distance C");
    T.row({"benchmark", "C=1", "C=2", "C=4", "C=8 (default)", "C=16"});
    for (size_t I = 0; I != NH; ++I) {
      std::vector<std::string> Row = {Names[I]};
      for (size_t CI = 0; CI != 5; ++CI)
        Row.push_back(Table::fmt(Distances[CI] == 8 ? DefaultSpeedup[I]
                                                    : Dist[I][CI]) +
                      "x");
      T.row(Row);
    }
    T.print(std::cout);
  }

  {
    Table T("Ablation 4: trip-count threshold TT");
    T.row({"benchmark", "TT=32", "TT=128 (default)", "TT=512"});
    for (size_t I = 0; I != NH; ++I) {
      std::vector<std::string> Row = {Names[I]};
      for (size_t TI = 0; TI != 3; ++TI)
        Row.push_back(Table::fmt(Trips[TI] == 128 ? DefaultSpeedup[I]
                                                  : Tt[I][TI]) +
                      "x");
      T.row(Row);
    }
    T.print(std::cout);
  }

  {
    Table T("Ablation 5: block-check vs edge-check (same profile claim)");
    T.row({"benchmark", "edge-check", "block-check"});
    for (size_t I = 0; I != NH; ++I)
      T.row({Names[I], Table::fmt(DefaultSpeedup[I]) + "x",
             Table::fmt(BlockCheck[I]) + "x"});
    T.print(std::cout);
  }

  {
    Table T("Ablation 6: dependent-load prefetching "
            "(indirect chase, randomly allocated payload)");
    T.row({"configuration", "speedup"});
    T.row({"stride prefetch only (paper system)",
           Table::fmt(DepOff) + "x"});
    T.row({"+ dependent prefetch (load.s chase)",
           Table::fmt(DepOn) + "x"});
    T.print(std::cout);
  }

  {
    Table T("Ablation 7: allocation-order sensitivity "
            "(indirect chase, strided payload, noise sweep)");
    T.row({"allocation noise", "top1 stride share", "speedup"});
    for (size_t NI = 0; NI != 5; ++NI) {
      const ProfileRunResult &PR = *NoiseProfile[NI].Profile;
      // Dominant-stride share of the noisiest hot site (the node chase;
      // the payload site stays at ~100% since only the node allocation is
      // perturbed).
      double Share = 1.0;
      for (uint32_t S = 0; S != PR.Strides.numSites(); ++S) {
        const StrideSiteSummary &Sum = PR.Strides.site(S);
        if (Sum.TotalStrides > 1000)
          Share = std::min(Share, double(Sum.top1Freq()) /
                                      double(Sum.TotalStrides));
      }
      T.row({std::to_string(Noises[NI]) + "%",
             Table::fmtPercent(100.0 * Share),
             Table::fmt(NoiseSpeedup[NI]) + "x"});
    }
    T.print(std::cout);
  }

  {
    Table T("Ablation 8: use-distance filter on the headliners "
            "(should not veto hot-loop prefetches)");
    T.row({"benchmark", "filter off", "filter on (gap<=64)"});
    for (size_t I = 0; I != NH; ++I)
      T.row({Names[I], Table::fmt(DefaultSpeedup[I]) + "x",
             Table::fmt(UseDistOn[I]) + "x"});
    T.print(std::cout);
  }

  auto PerBench = [&](const std::vector<double> &V) {
    JsonValue A = JsonValue::array();
    for (size_t I = 0; I != NH; ++I) {
      JsonValue R = JsonValue::object();
      R.set("name", Names[I]);
      R.set("speedup", V[I]);
      A.push(std::move(R));
    }
    return A;
  };
  JsonValue Groups = JsonValue::object();
  Groups.set("default", PerBench(DefaultSpeedup));
  Groups.set("wsst_on", PerBench(WsstOn));
  Groups.set("coarsen0", PerBench(Coarsen0));
  JsonValue DistJ = JsonValue::array();
  for (size_t I = 0; I != NH; ++I)
    for (size_t CI = 0; CI != 5; ++CI) {
      JsonValue R = JsonValue::object();
      R.set("name", Names[I]);
      R.set("distance", static_cast<uint64_t>(Distances[CI]));
      R.set("speedup",
            Distances[CI] == 8 ? DefaultSpeedup[I] : Dist[I][CI]);
      DistJ.push(std::move(R));
    }
  Groups.set("prefetch_distance", std::move(DistJ));
  JsonValue TtJ = JsonValue::array();
  for (size_t I = 0; I != NH; ++I)
    for (size_t TI = 0; TI != 3; ++TI) {
      JsonValue R = JsonValue::object();
      R.set("name", Names[I]);
      R.set("trip_count_threshold", Trips[TI]);
      R.set("speedup", Trips[TI] == 128 ? DefaultSpeedup[I] : Tt[I][TI]);
      TtJ.push(std::move(R));
    }
  Groups.set("trip_count_threshold", std::move(TtJ));
  Groups.set("block_check", PerBench(BlockCheck));
  JsonValue DepJ = JsonValue::object();
  DepJ.set("off", DepOff);
  DepJ.set("on", DepOn);
  Groups.set("dependent_prefetch", std::move(DepJ));
  JsonValue NoiseJ = JsonValue::array();
  for (size_t NI = 0; NI != 5; ++NI) {
    JsonValue R = JsonValue::object();
    R.set("noise_pct", static_cast<uint64_t>(Noises[NI]));
    R.set("speedup", NoiseSpeedup[NI]);
    NoiseJ.push(std::move(R));
  }
  Groups.set("allocation_noise", std::move(NoiseJ));
  Groups.set("use_distance_on", PerBench(UseDistOn));
  return emitBenchReport(Argc, Argv, "bench_ablation.json", "ablation",
                         std::move(Groups));
}
