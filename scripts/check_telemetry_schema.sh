#!/usr/bin/env bash
# Validates the machine-readable telemetry artifacts: runs the
# telemetry_demo example and checks the run report against the
# "sprof.run_report/5" schema (each version a strict superset of the
# previous: the /1../4 sections must all still be present and shaped as
# before), the attribution exact-sum invariant, the profile_diff,
# self_profile, profile_run.trace, and trace_tier sections, the "sprof.timeseries/1"
# sampler artifact, the folded-stack self-profile file, the binary
# "sprof.trace/1" or /2 capture's framing (for /2 also the seekable tail
# and the shard index's invariants), and the Chrome trace
# for the pipeline's phase spans plus the sampler's counter ("C") events.
# When given the sprof-inspect binary it also smoke-tests its summary,
# diff, timeseries, hotspots, and trace modes against the fresh artifacts
# — including that unknown subcommands, malformed JSON, truncated traces,
# and trace version mismatches exit nonzero — and when given a
# bench-trajectory point it validates the "sprof.bench_point/5" schema
# (accepting legacy /1../4 points). When given the sweep_demo example it
# also validates the "sprof.sweep_report/1" document (per-job queue-wait
# vs run split, dependency edges referencing earlier ids, the critical
# path's sum-of-durations <= wall invariant, and the scheduler section
# with per-worker utilization), the Chrome trace's flow-event pairing
# (every "s" has an "f" with the same id on the "job-dep" category), the
# "sprof.flightrec/1" dump format, the sprof-inspect sweep/blackbox
# renderers, and that a newer-versioned sweep report is rejected with a
# nonzero exit. Wired into ctest as `telemetry_schema`.
#
# Usage: check_telemetry_schema.sh /path/to/telemetry_demo [workdir]
#            [/path/to/sprof-inspect] [/path/to/bench_point.json]
#            [/path/to/sweep_demo]
set -euo pipefail

DEMO="${1:?usage: check_telemetry_schema.sh /path/to/telemetry_demo [workdir] [sprof-inspect] [bench_point.json] [sweep_demo]}"
WORKDIR="${2:-$(mktemp -d)}"
INSPECT="${3:-}"
BENCH_POINT="${4:-}"
SWEEP_DEMO="${5:-}"
# "-" skips an optional slot (ctest can't pass empty arguments portably).
[ "$INSPECT" = "-" ] && INSPECT=""
[ "$BENCH_POINT" = "-" ] && BENCH_POINT=""
[ "$SWEEP_DEMO" = "-" ] && SWEEP_DEMO=""
REPORT="$WORKDIR/telemetry_report.json"
TRACE="$WORKDIR/telemetry_trace.json"
SAMPLED="$WORKDIR/telemetry_sampled_report.json"
TIMESERIES="$WORKDIR/telemetry_timeseries.json"
FOLDED="$WORKDIR/telemetry_profile.folded"
CAPTURE="$WORKDIR/telemetry_capture.sprof.trace"

"$DEMO" "$REPORT" "$TRACE" "$SAMPLED" "$TIMESERIES" "$FOLDED" \
    "$CAPTURE" > /dev/null

python3 - "$REPORT" "$TRACE" "$SAMPLED" "$TIMESERIES" "$FOLDED" \
    "$CAPTURE" <<'EOF'
import json
import re
import sys

report_path, trace_path, sampled_path = sys.argv[1], sys.argv[2], sys.argv[3]
timeseries_path, folded_path, capture_path = (sys.argv[4], sys.argv[5],
                                              sys.argv[6])
failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


with open(report_path) as f:
    report = json.load(f)

RUN_REPORT_SCHEMAS = ("sprof.run_report/1", "sprof.run_report/2",
                      "sprof.run_report/3", "sprof.run_report/4",
                      "sprof.run_report/5")
check(report.get("schema") in RUN_REPORT_SCHEMAS,
      f"unexpected schema: {report.get('schema')!r}")
for key in ("workload", "config", "profile_run", "baseline_run",
            "timed_run", "speedup", "metrics"):
    check(key in report, f"report is missing {key!r}")

profile = report.get("profile_run", {})
check("method" in profile, "profile_run.method missing")
sites = profile.get("stride_profile", {}).get("sites", [])
check(len(sites) > 0, "stride_profile.sites is empty")
for site in sites:
    check(len(site.get("top_strides", [])) <= 4,
          "a site reports more than 4 top strides")
    for key in ("total_strides", "zero_strides", "zero_diffs"):
        check(key in site, f"stride site missing {key!r}")

classification = report.get("timed_run", {}).get("classification", {})
check("thresholds" in classification, "classification.thresholds missing")
check("class_counts" in classification, "classification.class_counts missing")

metrics = report.get("metrics", {})
for section in ("counters", "gauges", "histograms"):
    check(section in metrics, f"metrics.{section} missing")
check("strideprof.invocations" in metrics.get("counters", {}),
      "counter strideprof.invocations missing")

sampling = (report.get("config", {}).get("profiler", {}).get("sampling"))
check(isinstance(sampling, dict) and "enabled" in sampling,
      "config.profiler.sampling missing")

# -- run_report/2 additions ------------------------------------------------

if report.get("schema") in RUN_REPORT_SCHEMAS[1:]:
    attribution = report.get("attribution")
    check(isinstance(attribution, dict), "/2 report missing attribution")
    if isinstance(attribution, dict):
        check(attribution.get("finalized") is True,
              "attribution not finalized")
        outcomes = attribution.get("outcomes", {})
        for key in ("useful", "late", "early", "redundant", "issued"):
            check(key in outcomes, f"attribution.outcomes missing {key!r}")
        total = sum(outcomes.get(k, 0)
                    for k in ("useful", "late", "early", "redundant"))
        check(total == outcomes.get("issued"),
              f"attribution sum {total} != issued {outcomes.get('issued')}")
        issued = report["timed_run"]["stats"]["memory"]["prefetches_issued"]
        check(outcomes.get("issued") == issued,
              f"attribution issued {outcomes.get('issued')} != "
              f"memsys prefetches_issued {issued}")
        per_site = attribution.get("per_site", [])
        check(isinstance(per_site, list) and per_site,
              "attribution.per_site empty")
        site_sum = sum(s.get(k, 0) for s in per_site
                       for k in ("useful", "late", "early", "redundant"))
        check(site_sum == outcomes.get("issued"),
              f"per-site sum {site_sum} != issued {outcomes.get('issued')}")
        for key in ("by_class", "demand_misses"):
            check(key in attribution, f"attribution missing {key!r}")
        for s in per_site:
            for key in ("site", "class", "accesses", "l1_misses",
                        "full_misses", "stall_cycles"):
                check(key in s, f"attribution site missing {key!r}")

    diff = report.get("profile_diff")
    check(isinstance(diff, dict), "/2 report missing profile_diff")
    if isinstance(diff, dict):
        for key in ("sites_compared", "top_stride_agreement",
                    "class_agreement", "weighted_accuracy", "class_flips",
                    "sites"):
            check(key in diff, f"profile_diff missing {key!r}")
        acc = diff.get("weighted_accuracy", -1)
        check(0.0 <= acc <= 1.0,
              f"weighted_accuracy {acc} outside [0, 1]")
        flips = diff.get("class_flips", {})
        classes = ("none", "ssst", "pmst", "wsst")
        check(all(c in flips and all(d in flips[c] for d in classes)
                  for c in classes),
              "class_flips is not a 4x4 class matrix")
        flip_total = sum(flips[a][b] for a in classes for b in classes
                         if a in flips and b in flips.get(a, {}))
        check(flip_total == diff.get("sites_compared"),
              f"flip total {flip_total} != sites_compared "
              f"{diff.get('sites_compared')}")

# -- run_report/3 additions ------------------------------------------------

if report.get("schema") in RUN_REPORT_SCHEMAS[2:]:
    self_profile = report.get("self_profile")
    check(isinstance(self_profile, dict), "/3 report missing self_profile")
    if isinstance(self_profile, dict):
        for key in ("window", "total_samples", "entries"):
            check(key in self_profile, f"self_profile missing {key!r}")
        entries = self_profile.get("entries", [])
        check(isinstance(entries, list) and entries,
              "self_profile.entries empty")
        entry_sum = 0
        for e in entries:
            for key in ("workload", "phase", "op", "samples", "ns"):
                check(key in e, f"self_profile entry missing {key!r}")
            entry_sum += e.get("samples", 0)
        check(entry_sum == self_profile.get("total_samples"),
              f"self_profile entry sum {entry_sum} != total_samples "
              f"{self_profile.get('total_samples')}")
        samples_sorted = [e.get("samples", 0) for e in entries]
        check(samples_sorted == sorted(samples_sorted, reverse=True),
              "self_profile.entries not sorted by samples descending")
    obs_config = report.get("config", {}).get("obs", {})
    for key in ("sample_interval_us", "sample_ring_capacity",
                "self_profile", "self_profile_window"):
        check(key in obs_config, f"config.obs missing {key!r}")

# -- run_report/4 additions ------------------------------------------------

if report.get("schema") in RUN_REPORT_SCHEMAS[3:]:
    capture = report.get("profile_run", {}).get("trace")
    check(isinstance(capture, dict), "/4 report missing profile_run.trace")
    if isinstance(capture, dict):
        for key in ("path", "schema", "events", "bytes"):
            check(key in capture, f"profile_run.trace missing {key!r}")
        check(capture.get("schema") in ("sprof.trace/1", "sprof.trace/2",
                                        "sprof.trace.text/1"),
              f"unexpected trace schema: {capture.get('schema')!r}")
        check(capture.get("events", 0) ==
              report.get("profile_run", {}).get("stride_invocations"),
              "trace events != profile_run.stride_invocations")

# -- run_report/5 additions ------------------------------------------------

if report.get("schema") == "sprof.run_report/5":
    # The demo runs under Engine::Trace, so both run sections must carry
    # the tier's host-side accounting. The simulated stats stay engine-
    # independent; trace_tier lives beside them, never inside.
    for section in ("profile_run", "timed_run"):
        tier = report.get(section, {}).get("trace_tier")
        check(isinstance(tier, dict), f"/5 report missing {section}.trace_tier")
        if not isinstance(tier, dict):
            continue
        for key in ("traces_compiled", "traces_adopted", "compile_aborts",
                    "invalidations", "entries", "iterations", "side_exits",
                    "loop_exits", "fuel_exits", "on_trace_insts",
                    "on_trace_refs", "traces"):
            check(key in tier, f"{section}.trace_tier missing {key!r}")
        traces = tier.get("traces", [])
        check(isinstance(traces, list) and traces,
              f"{section}.trace_tier.traces empty")
        sums = {k: 0 for k in ("entries", "iterations", "side_exits",
                               "loop_exits", "fuel_exits")}
        for t in traces if isinstance(traces, list) else []:
            for key in ("id", "head_pc", "num_ops", "num_guards", "entries",
                        "iterations", "side_exits", "loop_exits",
                        "fuel_exits", "guard_exits", "invalidated"):
                check(key in t, f"trace_tier trace missing {key!r}")
            for k in sums:
                sums[k] += t.get(k, 0)
            guard_exits = t.get("guard_exits", [])
            check(isinstance(guard_exits, list) and
                  len(guard_exits) == t.get("num_guards"),
                  "guard_exits length != num_guards")
            check(sum(guard_exits) == t.get("side_exits", 0) +
                  t.get("loop_exits", 0),
                  "guard_exits sum != side_exits + loop_exits")
        for k, total in sums.items():
            check(total == tier.get(k),
                  f"{section}.trace_tier.{k} {tier.get(k)} != per-trace "
                  f"sum {total}")
        # Every entry leaves exactly one way.
        check(tier.get("side_exits", 0) + tier.get("loop_exits", 0) +
              tier.get("fuel_exits", 0) == tier.get("entries"),
              f"{section} exit kinds do not sum to entries")
        rate = tier.get("side_exit_rate")
        check(isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0,
              f"{section}.trace_tier.side_exit_rate missing or out of range")
    # Trace-tier samples surface as "trace:<n>" frames in the self-profile.
    entries = (report.get("self_profile") or {}).get("entries", [])
    check(any(e.get("op", "").startswith("trace:") for e in entries),
          "no trace:<n> frames in self_profile despite Engine::Trace")

# -- sprof.trace/1 + /2 binary framing -------------------------------------

with open(capture_path, "rb") as f:
    raw = f.read()
check(raw[:8] == b"SPROFTRC",
      f"trace capture magic is {raw[:8]!r}, want b'SPROFTRC'")
version = int.from_bytes(raw[8:12], "little")
check(version in (1, 2), f"trace capture version {version}, want 1 or 2")
check(raw[-8:] == b"SPROFEND",
      f"trace capture end magic is {raw[-8:]!r}, want b'SPROFEND'")

if version >= 2:
    # /2 seekable tail: the 8 bytes before the end magic are the absolute
    # offset of the footer, which must land on the end-of-events marker.
    footer_start = int.from_bytes(raw[-16:-8], "little")
    check(12 < footer_start < len(raw) - 16,
          f"/2 footer offset {footer_start} out of range for a "
          f"{len(raw)}-byte file")
    check(footer_start < len(raw) and raw[footer_start] == 0x00,
          "/2 footer offset does not land on the end-of-events marker")

    def varint(buf, pos):
        v = shift = 0
        while True:
            b = buf[pos]
            pos += 1
            v |= (b & 0x7F) << shift
            if not b & 0x80:
                return v, pos
            shift += 7

    # Walk the footer sections to the shard index and check its invariants:
    # chunk boundaries every `interval` events, byte offsets strictly
    # increasing inside the event area, cumulative load counts monotone,
    # chunk 0 starting from zeroed carried decoder state, and the event
    # count ending exactly at the seekable tail.
    pos = footer_start + 1
    index = None
    while True:
        tag = raw[pos]
        pos += 1
        if tag == 0x00:
            break
        if tag == 0x01:  # edge-profile section
            _, pos = varint(raw, pos)
            n, pos = varint(raw, pos)
            for _ in range(2 * n):
                _, pos = varint(raw, pos)
            n, pos = varint(raw, pos)
            for _ in range(4 * n):
                _, pos = varint(raw, pos)
        elif tag == 0x02:  # shard index
            interval, pos = varint(raw, pos)
            nchunks, pos = varint(raw, pos)
            chunks = []
            for _ in range(nchunks):
                entry = []
                for _ in range(6):  # off, cum_ev, cum_ld, site, addr, ref
                    v, pos = varint(raw, pos)
                    entry.append(v)
                chunks.append(entry)
            total_loads, pos = varint(raw, pos)
            index = (interval, chunks, total_loads)
        else:
            check(False, f"/2 footer has unknown section tag {tag}")
            break
    check(index is not None, "/2 trace footer carries no shard index")
    if index is not None:
        interval, chunks, total_loads = index
        check(interval > 0, "/2 index interval is zero")
        check(len(chunks) >= 1, "/2 index has no chunks")
        check(chunks[0][1:] == [0, 0, 0, 0, 0],
              "/2 index chunk 0 does not start from zeroed decoder state")
        for i, (off, cum_ev, cum_ld, _s, _a, _r) in enumerate(chunks):
            check(off < footer_start,
                  f"/2 index chunk {i} offset {off} is past the footer")
            if i:
                check(off > chunks[i - 1][0],
                      f"/2 index chunk {i} byte offset is not increasing")
                check(cum_ev == i * interval,
                      f"/2 index chunk {i} starts at event {cum_ev}, "
                      f"want {i * interval}")
                check(cum_ld >= chunks[i - 1][2],
                      f"/2 index chunk {i} cumulative load count decreases")
        check(total_loads >= chunks[-1][2],
              "/2 index total loads below the last chunk's cumulative count")
    footer_events, pos = varint(raw, pos)
    check(pos == len(raw) - 16,
          "/2 footer event count does not end at the seekable tail")
    if isinstance(report.get("profile_run", {}).get("trace"), dict):
        reported_events = report["profile_run"]["trace"].get("events")
        check(footer_events == reported_events,
              f"/2 footer says {footer_events} events but the report "
              f"says {reported_events}")
if report.get("schema") in RUN_REPORT_SCHEMAS[3:] and \
        isinstance(report.get("profile_run", {}).get("trace"), dict):
    reported = report["profile_run"]["trace"].get("bytes")
    check(reported == len(raw),
          f"trace capture is {len(raw)} bytes on disk but the report "
          f"says {reported}")

with open(sampled_path) as f:
    sampled = json.load(f)
check(sampled.get("schema") in RUN_REPORT_SCHEMAS,
      f"sampled report has unexpected schema: {sampled.get('schema')!r}")
check("profile_run" in sampled, "sampled report missing profile_run")

# -- sprof.timeseries/1 ----------------------------------------------------

with open(timeseries_path) as f:
    ts = json.load(f)
check(ts.get("schema") == "sprof.timeseries/1",
      f"timeseries has unexpected schema: {ts.get('schema')!r}")
for key in ("interval_us", "ring_capacity", "samples_taken", "dropped",
            "timestamps_us", "counters", "gauges"):
    check(key in ts, f"timeseries missing {key!r}")
stamps = ts.get("timestamps_us", [])
check(isinstance(stamps, list) and stamps, "timeseries has no samples")
check(stamps == sorted(stamps), "timestamps_us not monotone")
check(ts.get("samples_taken", 0) >= len(stamps),
      "samples_taken < ring length")
check(ts.get("samples_taken", 0) - ts.get("dropped", 0) == len(stamps),
      "samples_taken - dropped != ring length")
n_samples = len(stamps)
for kind in ("counters", "gauges"):
    series_map = ts.get(kind, {})
    check(isinstance(series_map, dict), f"timeseries.{kind} not an object")
    for name, series in series_map.items():
        check(isinstance(series, list) and len(series) == n_samples,
              f"timeseries {kind}[{name!r}] length != timestamps length")
check("interp.instructions" in ts.get("counters", {}),
      "timeseries counter interp.instructions missing")
# The final snapshot is taken after producers quiesce: it must agree with
# the run report's end-of-run counter totals exactly.
report_counters = report.get("metrics", {}).get("counters", {})
for name, series in ts.get("counters", {}).items():
    if name in report_counters and series:
        check(series[-1] == report_counters[name],
              f"timeseries final {name} = {series[-1]} != registry total "
              f"{report_counters[name]}")

# -- folded self-profile ---------------------------------------------------

folded_re = re.compile(r"^[^;]+;[^;]+;\S+ [0-9]+$")
with open(folded_path) as f:
    folded_lines = [line.rstrip("\n") for line in f if line.strip()]
check(len(folded_lines) > 0, "folded profile is empty")
for line in folded_lines:
    check(folded_re.match(line) is not None,
          f"malformed folded line: {line!r}")
folded_total = sum(int(line.rsplit(" ", 1)[1]) for line in folded_lines)
if report.get("schema") in RUN_REPORT_SCHEMAS[2:] and \
        isinstance(report.get("self_profile"), dict):
    check(folded_total == report["self_profile"].get("total_samples"),
          f"folded sample total {folded_total} != self_profile "
          f"total_samples {report['self_profile'].get('total_samples')}")

with open(trace_path) as f:
    trace = json.load(f)

events = trace.get("traceEvents", [])
check(len(events) > 0, "trace has no events")
spans = [e for e in events if e.get("ph") == "X"]
counter_events = [e for e in events if e.get("ph") == "C"]
names = {event.get("name") for event in spans}
for phase in ("run-profile", "instrument", "execute", "strideprof-harvest",
              "run-baseline", "timed-run", "classify", "prefetch-insert"):
    check(phase in names, f"trace is missing phase span {phase!r}")
for event in events:
    check(event.get("ph") in ("X", "C"),
          f"unexpected event phase: {event}")
    check(isinstance(event.get("ts"), int),
          f"event without integer ts: {event}")
for event in spans:
    check(isinstance(event.get("dur"), int),
          f"span without integer dur: {event}")
# The sampler's ring folds into the trace as one counter event per metric
# per snapshot.
check(len(counter_events) > 0, "trace has no counter (\"C\") events")
for event in counter_events:
    check(isinstance(event.get("args"), dict) and "value" in event["args"],
          f"counter event without args.value: {event}")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"telemetry schema OK ({len(sites)} stride sites, "
      f"{len(spans)} trace spans, {len(counter_events)} counter events, "
      f"{n_samples} timeseries samples, {len(folded_lines)} folded lines)")
EOF

# -- sprof-inspect smoke test ----------------------------------------------

if [ -n "$INSPECT" ]; then
    "$INSPECT" summary "$REPORT" > "$WORKDIR/inspect_summary.txt"
    grep -q "Prefetch outcomes" "$WORKDIR/inspect_summary.txt" || {
        echo "FAIL: sprof-inspect summary lacks prefetch outcomes" >&2
        exit 1
    }
    "$INSPECT" diff "$REPORT" "$SAMPLED" \
        --json="$WORKDIR/inspect_diff.json" > "$WORKDIR/inspect_diff.txt"
    grep -q "weighted accuracy" "$WORKDIR/inspect_diff.txt" || {
        echo "FAIL: sprof-inspect diff lacks weighted accuracy" >&2
        exit 1
    }
    python3 - "$WORKDIR/inspect_diff.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    diff = json.load(f)
acc = diff.get("weighted_accuracy", -1)
if not 0.0 <= acc <= 1.0:
    print(f"FAIL: inspect diff weighted_accuracy {acc} outside [0, 1]",
          file=sys.stderr)
    sys.exit(1)
print(f"sprof-inspect OK (weighted accuracy {acc:.4f})")
EOF

    "$INSPECT" timeseries "$TIMESERIES" > "$WORKDIR/inspect_timeseries.txt"
    grep -q "interp.instructions" "$WORKDIR/inspect_timeseries.txt" || {
        echo "FAIL: sprof-inspect timeseries lacks interp.instructions" >&2
        exit 1
    }
    "$INSPECT" hotspots "$REPORT" --top=5 > "$WORKDIR/inspect_hotspots.txt"
    grep -q "Engine hotspots" "$WORKDIR/inspect_hotspots.txt" || {
        echo "FAIL: sprof-inspect hotspots lacks the hotspot table" >&2
        exit 1
    }

    # Error-path contract: unknown subcommands, malformed JSON, and
    # wrong-schema inputs must all exit nonzero with a diagnostic.
    if "$INSPECT" no-such-subcommand 2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect accepted an unknown subcommand" >&2
        exit 1
    fi
    grep -q "unknown subcommand" "$WORKDIR/inspect_err.txt" || {
        echo "FAIL: unknown-subcommand diagnostic missing" >&2
        exit 1
    }
    echo '{"broken' > "$WORKDIR/malformed.json"
    if "$INSPECT" summary "$WORKDIR/malformed.json" \
            2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect summary accepted malformed JSON" >&2
        exit 1
    fi
    grep -q "parse error" "$WORKDIR/inspect_err.txt" || {
        echo "FAIL: malformed-JSON diagnostic missing" >&2
        exit 1
    }
    if "$INSPECT" timeseries "$REPORT" 2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect timeseries accepted a run report" >&2
        exit 1
    fi
    if "$INSPECT" summary "$WORKDIR/definitely-missing.json" 2>/dev/null; then
        echo "FAIL: sprof-inspect summary accepted a missing file" >&2
        exit 1
    fi

    # Trace mode: the fresh capture summarizes cleanly...
    "$INSPECT" trace "$CAPTURE" > "$WORKDIR/inspect_trace.txt"
    grep -q "events:" "$WORKDIR/inspect_trace.txt" || {
        echo "FAIL: sprof-inspect trace lacks the event summary" >&2
        exit 1
    }
    # ...while unreadable, truncated, and wrong-version traces each exit
    # nonzero naming the precise failure class.
    if "$INSPECT" trace "$WORKDIR/definitely-missing.sprof.trace" \
            2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect trace accepted a missing file" >&2
        exit 1
    fi
    grep -q "io-error: " "$WORKDIR/inspect_err.txt" || {
        echo "FAIL: missing-trace diagnostic lacks the io-error class" >&2
        exit 1
    }
    head -c 100 "$CAPTURE" > "$WORKDIR/truncated.sprof.trace"
    if "$INSPECT" trace "$WORKDIR/truncated.sprof.trace" \
            2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect trace accepted a truncated trace" >&2
        exit 1
    fi
    grep -q "truncated: " "$WORKDIR/inspect_err.txt" || {
        echo "FAIL: truncated-trace diagnostic missing" >&2
        exit 1
    }
    cp "$CAPTURE" "$WORKDIR/future.sprof.trace"
    printf '\x63' | dd of="$WORKDIR/future.sprof.trace" bs=1 seek=8 \
        count=1 conv=notrunc status=none
    if "$INSPECT" trace "$WORKDIR/future.sprof.trace" \
            2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect trace accepted a future trace version" >&2
        exit 1
    fi
    grep -q "version-mismatch: " "$WORKDIR/inspect_err.txt" || {
        echo "FAIL: version-mismatch diagnostic missing" >&2
        exit 1
    }
    echo '{"not": "a trace"}' > "$WORKDIR/not-a-trace.sprof.trace"
    if "$INSPECT" trace "$WORKDIR/not-a-trace.sprof.trace" \
            2> "$WORKDIR/inspect_err.txt"; then
        echo "FAIL: sprof-inspect trace accepted a non-trace file" >&2
        exit 1
    fi
    grep -q "bad-magic: " "$WORKDIR/inspect_err.txt" || {
        echo "FAIL: bad-magic diagnostic missing" >&2
        exit 1
    }
    echo "sprof-inspect error paths OK"
fi

# -- bench-trajectory point ------------------------------------------------

if [ -n "$BENCH_POINT" ]; then
    python3 - "$BENCH_POINT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    point = json.load(f)
failures = []
schema = point.get("schema")
if schema not in ("sprof.bench_point/1", "sprof.bench_point/2",
                  "sprof.bench_point/3", "sprof.bench_point/4",
                  "sprof.bench_point/5"):
    failures.append(f"unexpected schema: {schema!r}")
for key in ("date", "geomean_speedup", "profiling_overhead",
            "prefetch_useful_ratio", "accuracy_score"):
    if key not in point:
        failures.append(f"bench point missing {key!r}")
if schema in ("sprof.bench_point/2", "sprof.bench_point/3",
              "sprof.bench_point/4", "sprof.bench_point/5"):
    # v2 adds the wall-clock compare geomeans for the memsys-attached and
    # profiler-attached configurations.
    for key in ("engine_wall_speedup", "memsys_wall_speedup",
                "profiled_wall_speedup"):
        if key not in point:
            failures.append(f"bench point missing {key!r}")
if schema in ("sprof.bench_point/3", "sprof.bench_point/4",
              "sprof.bench_point/5"):
    # v3 adds the worst-case telemetry overhead from the instrumented
    # wall-clock compare (a ratio - 1, so anything >= -1 is legal).
    overhead = point.get("telemetry_overhead")
    if not isinstance(overhead, (int, float)) or overhead < -1:
        failures.append("bench point telemetry_overhead missing or invalid")
if schema in ("sprof.bench_point/4", "sprof.bench_point/5"):
    # v4 adds the trace tier's wall-clock geomean over the decoded engine.
    value = point.get("trace_wall_speedup")
    if not isinstance(value, (int, float)) or value < 0:
        failures.append("bench point trace_wall_speedup missing or invalid")
if schema == "sprof.bench_point/5":
    # v5 adds the parallel-replay scaling ratio (serial over threaded
    # wall time; warn-only in the gate, but it must be present and sane).
    value = point.get("replay_parallel_speedup")
    if not isinstance(value, (int, float)) or value < 0:
        failures.append(
            "bench point replay_parallel_speedup missing or invalid")
for key in ("geomean_speedup", "prefetch_useful_ratio", "accuracy_score"):
    value = point.get(key)
    if not isinstance(value, (int, float)) or value < 0:
        failures.append(f"bench point {key} not a non-negative number")
if "replay_events_per_sec" in point:
    # Optional /3 extension: trace-replay decode+profile throughput.
    value = point.get("replay_events_per_sec")
    if not isinstance(value, (int, float)) or value <= 0:
        failures.append("bench point replay_events_per_sec not positive")
if "git_sha" in point:
    # Optional provenance stamp: a full commit sha plus a dirty flag.
    sha = point.get("git_sha")
    if not (isinstance(sha, str) and len(sha) == 40 and
            all(c in "0123456789abcdef" for c in sha)):
        failures.append(f"bench point git_sha malformed: {sha!r}")
    if not isinstance(point.get("git_dirty"), bool):
        failures.append("bench point git_sha without a boolean git_dirty")
if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print("bench point schema OK")
EOF
fi

# -- sprof.sweep_report/1 + sprof.flightrec/1 ------------------------------

if [ -n "$SWEEP_DEMO" ]; then
    SWEEP_REPORT="$WORKDIR/sweep_report.json"
    SWEEP_TRACE="$WORKDIR/sweep_trace.json"
    SWEEP_FLIGHT="$WORKDIR/sweep_flight.json"
    "$SWEEP_DEMO" --threads=2 --report="$SWEEP_REPORT" \
        --trace="$SWEEP_TRACE" --flight="$SWEEP_FLIGHT" --dump-flight \
        > /dev/null

    python3 - "$SWEEP_REPORT" "$SWEEP_TRACE" "$SWEEP_FLIGHT" <<'EOF'
import json
import sys

report_path, trace_path, flight_path = sys.argv[1], sys.argv[2], sys.argv[3]
failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


with open(report_path) as f:
    report = json.load(f)

check(report.get("schema") == "sprof.sweep_report/1",
      f"unexpected sweep schema: {report.get('schema')!r}")
for key in ("threads", "wall_us", "jobs", "critical_path", "scheduler"):
    check(key in report, f"sweep report missing {key!r}")
wall = report.get("wall_us", 0)
jobs = report.get("jobs", [])
check(isinstance(jobs, list) and jobs, "sweep report jobs array empty")
for i, job in enumerate(jobs):
    for key in ("id", "name", "category", "deps", "worker", "ready_us",
                "start_us", "finish_us", "queue_wait_us", "run_us", "ok"):
        check(key in job, f"job {i} missing {key!r}")
    check(job.get("id") == i, f"job {i} id {job.get('id')} != index")
    # Records are topological: every dependency is an earlier job.
    check(all(d < job.get("id", 0) for d in job.get("deps", [])),
          f"job {i} has a dep >= its own id")
    check(job.get("finish_us") ==
          job.get("start_us", 0) + job.get("run_us", 0),
          f"job {i} finish_us != start_us + run_us")
    check(job.get("start_us", 0) >= job.get("ready_us", 0),
          f"job {i} started before it was ready")
    check(job.get("queue_wait_us") ==
          job.get("start_us", 0) - job.get("ready_us", 0),
          f"job {i} queue_wait_us != start_us - ready_us")

# Critical path: a dependency-connected chain whose summed run time is the
# reported duration and never exceeds the wall clock.
crit = report.get("critical_path", {})
for key in ("jobs", "duration_us", "wall_us", "fraction"):
    check(key in crit, f"critical_path missing {key!r}")
chain = crit.get("jobs", [])
check(isinstance(chain, list) and chain, "critical_path.jobs empty")
chain_sum = sum(jobs[j].get("run_us", 0) for j in chain
                if isinstance(j, int) and j < len(jobs))
check(chain_sum == crit.get("duration_us"),
      f"critical path duration {crit.get('duration_us')} != chain run sum "
      f"{chain_sum}")
check(crit.get("duration_us", 0) <= wall,
      f"critical path {crit.get('duration_us')} exceeds wall {wall}")
for a, b in zip(chain, chain[1:]):
    check(b < len(jobs) and a in jobs[b].get("deps", []),
          f"critical path edge {a}->{b} is not a dependency edge")

sched = report.get("scheduler", {})
for key in ("queue_depth_high_water", "wakeup_retries", "jobs_enqueued",
            "jobs_started", "jobs_finished", "jobs_failed", "jobs_skipped",
            "workers", "stragglers"):
    check(key in sched, f"scheduler missing {key!r}")
check(sched.get("jobs_enqueued") == len(jobs),
      f"jobs_enqueued {sched.get('jobs_enqueued')} != jobs length")
workers = sched.get("workers", [])
check(len(workers) == report.get("threads"),
      "scheduler.workers length != threads")
busy_sum = 0
for w in workers:
    for key in ("worker", "jobs", "busy_us", "utilization"):
        check(key in w, f"scheduler worker missing {key!r}")
    check(0.0 <= w.get("utilization", -1) <= 1.0 + 1e-9,
          f"worker {w.get('worker')} utilization out of [0, 1]")
    busy_sum += w.get("jobs", 0)
check(busy_sum == len(jobs), "per-worker job counts do not sum to jobs")
stragglers = sched.get("stragglers", [])
runs = [s.get("run_us", 0) for s in stragglers]
check(runs == sorted(runs, reverse=True),
      "stragglers not sorted by run_us descending")

# Flow events: the sweep trace carries one "s"/"f" pair per dependency
# edge between jobs that ran, joined by id on the "job-dep" category.
with open(trace_path) as f:
    trace = json.load(f)
events = trace.get("traceEvents", [])
starts = {e.get("id"): e for e in events
          if e.get("ph") == "s" and e.get("cat") == "job-dep"}
finishes = {e.get("id"): e for e in events
            if e.get("ph") == "f" and e.get("cat") == "job-dep"}
check(len(starts) > 0, "sweep trace has no flow-start events")
check(set(starts) == set(finishes),
      "flow starts and finishes do not pair up by id")
for fid, s in starts.items():
    e = finishes.get(fid)
    if e is None:
        continue
    check(e.get("bp") == "e", f"flow finish {fid} lacks bp='e'")
    check(s.get("ts", 0) <= e.get("ts", 0),
          f"flow {fid} goes backward in time")
    check(s.get("name") == e.get("name"),
          f"flow {fid} start/finish names differ")
ran_edges = sum(len(j.get("deps", [])) for j in jobs if j.get("ok"))
check(len(starts) == ran_edges,
      f"{len(starts)} flow pairs != {ran_edges} dependency edges")

# Flight-recorder dump: every worker lane present, events well-formed and
# monotone per lane.
with open(flight_path) as f:
    flight = json.load(f)
check(flight.get("schema") == "sprof.flightrec/1",
      f"unexpected flightrec schema: {flight.get('schema')!r}")
check(flight.get("reason") == "request",
      f"flightrec reason {flight.get('reason')!r}, want 'request'")
lanes = flight.get("workers", [])
check(len(lanes) == report.get("threads"),
      "flightrec workers length != threads")
kinds = {"job-start", "job-finish", "job-fail", "phase", "mark"}
total_events = 0
for lane in lanes:
    for key in ("worker", "in_flight", "current_job", "events"):
        check(key in lane, f"flightrec lane missing {key!r}")
    check(lane.get("in_flight") is False,
          f"lane {lane.get('worker')} still in flight after the drain")
    stamps = []
    for e in lane.get("events", []):
        for key in ("ts_us", "kind", "name", "ok"):
            check(key in e, f"flightrec event missing {key!r}")
        check(e.get("kind") in kinds,
              f"unknown flightrec event kind {e.get('kind')!r}")
        stamps.append(e.get("ts_us", 0))
        total_events += 1
    check(stamps == sorted(stamps),
          f"lane {lane.get('worker')} events not monotone in time")
check(total_events > 0, "flightrec dump recorded no events")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"sweep schema OK ({len(jobs)} jobs, {len(chain)} on the critical "
      f"path, {len(starts)} flow pairs, {total_events} flightrec events)")
EOF

    if [ -n "$INSPECT" ]; then
        "$INSPECT" sweep "$SWEEP_REPORT" > "$WORKDIR/inspect_sweep.txt"
        grep -q "critical path" "$WORKDIR/inspect_sweep.txt" || {
            echo "FAIL: sprof-inspect sweep lacks the critical path" >&2
            exit 1
        }
        grep -q "Worker utilization" "$WORKDIR/inspect_sweep.txt" || {
            echo "FAIL: sprof-inspect sweep lacks worker utilization" >&2
            exit 1
        }
        "$INSPECT" blackbox "$SWEEP_FLIGHT" > "$WORKDIR/inspect_blackbox.txt"
        grep -q "reason:" "$WORKDIR/inspect_blackbox.txt" || {
            echo "FAIL: sprof-inspect blackbox lacks the dump reason" >&2
            exit 1
        }
        # Forward-compat contract: a sweep report stamped with a newer
        # schema version must be rejected, not half-rendered.
        sed 's/sprof.sweep_report\/1/sprof.sweep_report\/99/' \
            "$SWEEP_REPORT" > "$WORKDIR/sweep_future.json"
        if "$INSPECT" sweep "$WORKDIR/sweep_future.json" \
                2> "$WORKDIR/inspect_err.txt"; then
            echo "FAIL: sprof-inspect sweep accepted a /99 report" >&2
            exit 1
        fi
        grep -q "newer than this reader" "$WORKDIR/inspect_err.txt" || {
            echo "FAIL: newer-schema diagnostic missing" >&2
            exit 1
        }
        echo "sprof-inspect sweep/blackbox OK"
    fi
fi
