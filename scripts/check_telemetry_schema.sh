#!/usr/bin/env bash
# Validates the machine-readable telemetry artifacts: runs the
# telemetry_demo example and checks the run report against the
# "sprof.run_report/1" schema plus the Chrome trace for the pipeline's
# phase spans. Wired into ctest as `telemetry_schema`.
#
# Usage: check_telemetry_schema.sh /path/to/telemetry_demo [workdir]
set -euo pipefail

DEMO="${1:?usage: check_telemetry_schema.sh /path/to/telemetry_demo [workdir]}"
WORKDIR="${2:-$(mktemp -d)}"
REPORT="$WORKDIR/telemetry_report.json"
TRACE="$WORKDIR/telemetry_trace.json"

"$DEMO" "$REPORT" "$TRACE" > /dev/null

python3 - "$REPORT" "$TRACE" <<'EOF'
import json
import sys

report_path, trace_path = sys.argv[1], sys.argv[2]
failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


with open(report_path) as f:
    report = json.load(f)

check(report.get("schema") == "sprof.run_report/1",
      f"unexpected schema: {report.get('schema')!r}")
for key in ("workload", "config", "profile_run", "baseline_run",
            "timed_run", "speedup", "metrics"):
    check(key in report, f"report is missing {key!r}")

profile = report.get("profile_run", {})
check("method" in profile, "profile_run.method missing")
sites = profile.get("stride_profile", {}).get("sites", [])
check(len(sites) > 0, "stride_profile.sites is empty")
for site in sites:
    check(len(site.get("top_strides", [])) <= 4,
          "a site reports more than 4 top strides")
    for key in ("total_strides", "zero_strides", "zero_diffs"):
        check(key in site, f"stride site missing {key!r}")

classification = report.get("timed_run", {}).get("classification", {})
check("thresholds" in classification, "classification.thresholds missing")
check("class_counts" in classification, "classification.class_counts missing")

metrics = report.get("metrics", {})
for section in ("counters", "gauges", "histograms"):
    check(section in metrics, f"metrics.{section} missing")
check("strideprof.invocations" in metrics.get("counters", {}),
      "counter strideprof.invocations missing")

sampling = (report.get("config", {}).get("profiler", {}).get("sampling"))
check(isinstance(sampling, dict) and "enabled" in sampling,
      "config.profiler.sampling missing")

with open(trace_path) as f:
    trace = json.load(f)

events = trace.get("traceEvents", [])
check(len(events) > 0, "trace has no events")
names = {event.get("name") for event in events}
for phase in ("run-profile", "instrument", "execute", "strideprof-harvest",
              "run-baseline", "timed-run", "classify", "prefetch-insert"):
    check(phase in names, f"trace is missing phase span {phase!r}")
for event in events:
    check(event.get("ph") == "X", f"non-complete event: {event}")
    check(isinstance(event.get("ts"), int) and isinstance(event.get("dur"), int),
          f"event without integer ts/dur: {event}")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"telemetry schema OK ({len(sites)} stride sites, "
      f"{len(events)} trace spans)")
EOF
