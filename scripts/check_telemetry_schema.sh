#!/usr/bin/env bash
# Validates the machine-readable telemetry artifacts: runs the
# telemetry_demo example and checks the run report against the
# "sprof.run_report/2" schema (a strict superset of /1: the /1 sections
# must all still be present and shaped as before), the attribution
# exact-sum invariant, the profile_diff section, and the Chrome trace for
# the pipeline's phase spans. When given the sprof-inspect binary it also
# smoke-tests its summary and diff modes against the fresh reports, and
# when given a bench-trajectory point it validates the
# "sprof.bench_point/2" schema (accepting legacy /1 points, which predate
# the wall-clock compare geomeans). Wired into ctest as `telemetry_schema`.
#
# Usage: check_telemetry_schema.sh /path/to/telemetry_demo [workdir]
#            [/path/to/sprof-inspect] [/path/to/bench_point.json]
set -euo pipefail

DEMO="${1:?usage: check_telemetry_schema.sh /path/to/telemetry_demo [workdir] [sprof-inspect] [bench_point.json]}"
WORKDIR="${2:-$(mktemp -d)}"
INSPECT="${3:-}"
BENCH_POINT="${4:-}"
REPORT="$WORKDIR/telemetry_report.json"
TRACE="$WORKDIR/telemetry_trace.json"
SAMPLED="$WORKDIR/telemetry_sampled_report.json"

"$DEMO" "$REPORT" "$TRACE" "$SAMPLED" > /dev/null

python3 - "$REPORT" "$TRACE" "$SAMPLED" <<'EOF'
import json
import sys

report_path, trace_path, sampled_path = sys.argv[1], sys.argv[2], sys.argv[3]
failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


with open(report_path) as f:
    report = json.load(f)

check(report.get("schema") in ("sprof.run_report/1", "sprof.run_report/2"),
      f"unexpected schema: {report.get('schema')!r}")
for key in ("workload", "config", "profile_run", "baseline_run",
            "timed_run", "speedup", "metrics"):
    check(key in report, f"report is missing {key!r}")

profile = report.get("profile_run", {})
check("method" in profile, "profile_run.method missing")
sites = profile.get("stride_profile", {}).get("sites", [])
check(len(sites) > 0, "stride_profile.sites is empty")
for site in sites:
    check(len(site.get("top_strides", [])) <= 4,
          "a site reports more than 4 top strides")
    for key in ("total_strides", "zero_strides", "zero_diffs"):
        check(key in site, f"stride site missing {key!r}")

classification = report.get("timed_run", {}).get("classification", {})
check("thresholds" in classification, "classification.thresholds missing")
check("class_counts" in classification, "classification.class_counts missing")

metrics = report.get("metrics", {})
for section in ("counters", "gauges", "histograms"):
    check(section in metrics, f"metrics.{section} missing")
check("strideprof.invocations" in metrics.get("counters", {}),
      "counter strideprof.invocations missing")

sampling = (report.get("config", {}).get("profiler", {}).get("sampling"))
check(isinstance(sampling, dict) and "enabled" in sampling,
      "config.profiler.sampling missing")

# -- run_report/2 additions ------------------------------------------------

if report.get("schema") == "sprof.run_report/2":
    attribution = report.get("attribution")
    check(isinstance(attribution, dict), "/2 report missing attribution")
    if isinstance(attribution, dict):
        check(attribution.get("finalized") is True,
              "attribution not finalized")
        outcomes = attribution.get("outcomes", {})
        for key in ("useful", "late", "early", "redundant", "issued"):
            check(key in outcomes, f"attribution.outcomes missing {key!r}")
        total = sum(outcomes.get(k, 0)
                    for k in ("useful", "late", "early", "redundant"))
        check(total == outcomes.get("issued"),
              f"attribution sum {total} != issued {outcomes.get('issued')}")
        issued = report["timed_run"]["stats"]["memory"]["prefetches_issued"]
        check(outcomes.get("issued") == issued,
              f"attribution issued {outcomes.get('issued')} != "
              f"memsys prefetches_issued {issued}")
        per_site = attribution.get("per_site", [])
        check(isinstance(per_site, list) and per_site,
              "attribution.per_site empty")
        site_sum = sum(s.get(k, 0) for s in per_site
                       for k in ("useful", "late", "early", "redundant"))
        check(site_sum == outcomes.get("issued"),
              f"per-site sum {site_sum} != issued {outcomes.get('issued')}")
        for key in ("by_class", "demand_misses"):
            check(key in attribution, f"attribution missing {key!r}")
        for s in per_site:
            for key in ("site", "class", "accesses", "l1_misses",
                        "full_misses", "stall_cycles"):
                check(key in s, f"attribution site missing {key!r}")

    diff = report.get("profile_diff")
    check(isinstance(diff, dict), "/2 report missing profile_diff")
    if isinstance(diff, dict):
        for key in ("sites_compared", "top_stride_agreement",
                    "class_agreement", "weighted_accuracy", "class_flips",
                    "sites"):
            check(key in diff, f"profile_diff missing {key!r}")
        acc = diff.get("weighted_accuracy", -1)
        check(0.0 <= acc <= 1.0,
              f"weighted_accuracy {acc} outside [0, 1]")
        flips = diff.get("class_flips", {})
        classes = ("none", "ssst", "pmst", "wsst")
        check(all(c in flips and all(d in flips[c] for d in classes)
                  for c in classes),
              "class_flips is not a 4x4 class matrix")
        flip_total = sum(flips[a][b] for a in classes for b in classes
                         if a in flips and b in flips.get(a, {}))
        check(flip_total == diff.get("sites_compared"),
              f"flip total {flip_total} != sites_compared "
              f"{diff.get('sites_compared')}")

with open(sampled_path) as f:
    sampled = json.load(f)
check(sampled.get("schema") in ("sprof.run_report/1", "sprof.run_report/2"),
      f"sampled report has unexpected schema: {sampled.get('schema')!r}")
check("profile_run" in sampled, "sampled report missing profile_run")

with open(trace_path) as f:
    trace = json.load(f)

events = trace.get("traceEvents", [])
check(len(events) > 0, "trace has no events")
names = {event.get("name") for event in events}
for phase in ("run-profile", "instrument", "execute", "strideprof-harvest",
              "run-baseline", "timed-run", "classify", "prefetch-insert"):
    check(phase in names, f"trace is missing phase span {phase!r}")
for event in events:
    check(event.get("ph") == "X", f"non-complete event: {event}")
    check(isinstance(event.get("ts"), int) and isinstance(event.get("dur"), int),
          f"event without integer ts/dur: {event}")

if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print(f"telemetry schema OK ({len(sites)} stride sites, "
      f"{len(events)} trace spans)")
EOF

# -- sprof-inspect smoke test ----------------------------------------------

if [ -n "$INSPECT" ]; then
    "$INSPECT" summary "$REPORT" > "$WORKDIR/inspect_summary.txt"
    grep -q "Prefetch outcomes" "$WORKDIR/inspect_summary.txt" || {
        echo "FAIL: sprof-inspect summary lacks prefetch outcomes" >&2
        exit 1
    }
    "$INSPECT" diff "$REPORT" "$SAMPLED" \
        --json="$WORKDIR/inspect_diff.json" > "$WORKDIR/inspect_diff.txt"
    grep -q "weighted accuracy" "$WORKDIR/inspect_diff.txt" || {
        echo "FAIL: sprof-inspect diff lacks weighted accuracy" >&2
        exit 1
    }
    python3 - "$WORKDIR/inspect_diff.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    diff = json.load(f)
acc = diff.get("weighted_accuracy", -1)
if not 0.0 <= acc <= 1.0:
    print(f"FAIL: inspect diff weighted_accuracy {acc} outside [0, 1]",
          file=sys.stderr)
    sys.exit(1)
print(f"sprof-inspect OK (weighted accuracy {acc:.4f})")
EOF
fi

# -- bench-trajectory point ------------------------------------------------

if [ -n "$BENCH_POINT" ]; then
    python3 - "$BENCH_POINT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    point = json.load(f)
failures = []
schema = point.get("schema")
if schema not in ("sprof.bench_point/1", "sprof.bench_point/2"):
    failures.append(f"unexpected schema: {schema!r}")
for key in ("date", "geomean_speedup", "profiling_overhead",
            "prefetch_useful_ratio", "accuracy_score"):
    if key not in point:
        failures.append(f"bench point missing {key!r}")
if schema == "sprof.bench_point/2":
    # v2 adds the wall-clock compare geomeans for the memsys-attached and
    # profiler-attached configurations.
    for key in ("engine_wall_speedup", "memsys_wall_speedup",
                "profiled_wall_speedup"):
        if key not in point:
            failures.append(f"bench point missing {key!r}")
for key in ("geomean_speedup", "prefetch_useful_ratio", "accuracy_score"):
    value = point.get(key)
    if not isinstance(value, (int, float)) or value < 0:
        failures.append(f"bench point {key} not a non-negative number")
if failures:
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print("bench point schema OK")
EOF
fi
