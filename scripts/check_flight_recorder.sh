#!/usr/bin/env bash
# Validates the flight recorder's two post-mortem paths end to end using
# the sweep_demo example:
#
#   * crash: sweep_demo --crash raises SIGSEGV from inside a job; the
#     signal hook must dump a "sprof.flightrec/1" document naming the
#     in-flight job before the default action kills the process, and the
#     process must still die by SIGSEGV (the handler re-raises, so wait
#     status is preserved);
#   * hang: sweep_demo --hang --watchdog=1 wedges a job forever; the
#     watchdog must dump and exit with FlightRecorder::WatchdogExitCode
#     (42) instead of letting the sweep hang.
#
# Both dumps are cross-checked with `sprof-inspect blackbox` when the
# inspector binary is given. Wired into ctest as `flight_recorder`.
#
# Usage: check_flight_recorder.sh /path/to/sweep_demo [workdir]
#            [/path/to/sprof-inspect]
set -uo pipefail

DEMO="${1:?usage: check_flight_recorder.sh /path/to/sweep_demo [workdir] [sprof-inspect]}"
WORKDIR="${2:-$(mktemp -d)}"
INSPECT="${3:-}"

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

# A dump must parse, carry the expected schema and reason, and name the
# job that was in flight when the recorder fired.
check_dump() {
    local dump="$1" reason="$2" job="$3"
    python3 - "$dump" "$reason" "$job" <<'EOF' || exit 1
import json
import sys

dump_path, want_reason, want_job = sys.argv[1], sys.argv[2], sys.argv[3]
with open(dump_path) as f:
    flight = json.load(f)
if flight.get("schema") != "sprof.flightrec/1":
    sys.exit(f"FAIL: dump schema {flight.get('schema')!r}")
if flight.get("reason") != want_reason:
    sys.exit(f"FAIL: dump reason {flight.get('reason')!r}, "
             f"want {want_reason!r}")
lanes = flight.get("workers", [])
in_flight = [lane.get("current_job") for lane in lanes
             if lane.get("in_flight")]
if want_job not in in_flight:
    sys.exit(f"FAIL: in-flight jobs {in_flight} do not name {want_job!r}")
events = sum(len(lane.get("events", [])) for lane in lanes)
if events == 0:
    sys.exit("FAIL: dump recorded no events")
print(f"dump OK ({want_reason}: {want_job} in flight, {events} events)")
EOF
}

# -- crash path ------------------------------------------------------------

CRASH_DUMP="$WORKDIR/crash_flight.json"
rm -f "$CRASH_DUMP"
"$DEMO" --threads=2 --crash \
    --report="$WORKDIR/crash_report.json" \
    --trace="$WORKDIR/crash_trace.json" \
    --flight="$CRASH_DUMP" > /dev/null 2>&1
STATUS=$?
# 128 + SIGSEGV(11): the handler re-raised with the default action.
[ "$STATUS" -eq 139 ] || fail "crash run exited $STATUS, want 139 (SIGSEGV)"
[ -s "$CRASH_DUMP" ] || fail "crash run left no flight-recorder dump"
check_dump "$CRASH_DUMP" "signal:SIGSEGV" "crash:boom"

# -- hang path -------------------------------------------------------------

HANG_DUMP="$WORKDIR/hang_flight.json"
rm -f "$HANG_DUMP"
"$DEMO" --threads=2 --hang --watchdog=1 \
    --report="$WORKDIR/hang_report.json" \
    --trace="$WORKDIR/hang_trace.json" \
    --flight="$HANG_DUMP" > /dev/null 2>&1
STATUS=$?
[ "$STATUS" -eq 42 ] || fail "hang run exited $STATUS, want 42 (watchdog)"
[ -s "$HANG_DUMP" ] || fail "hang run left no flight-recorder dump"
check_dump "$HANG_DUMP" "watchdog" "hang:wedge"

# -- inspector cross-check -------------------------------------------------

if [ -n "$INSPECT" ]; then
    "$INSPECT" blackbox "$CRASH_DUMP" > "$WORKDIR/inspect_crash.txt" ||
        fail "sprof-inspect blackbox rejected the crash dump"
    grep -q "IN FLIGHT: crash:boom" "$WORKDIR/inspect_crash.txt" ||
        fail "blackbox view does not show crash:boom in flight"
    "$INSPECT" blackbox "$HANG_DUMP" > "$WORKDIR/inspect_hang.txt" ||
        fail "sprof-inspect blackbox rejected the hang dump"
    grep -q "IN FLIGHT: hang:wedge" "$WORKDIR/inspect_hang.txt" ||
        fail "blackbox view does not show hang:wedge in flight"
fi

echo "flight recorder OK (crash dies 139 with a dump, hang exits 42)"
