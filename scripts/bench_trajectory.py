#!/usr/bin/env python3
"""Regression-gated bench trajectory.

Runs the headline benches (figure-16 speedups, figure-20 profiling
overhead, the engine wall-clock compare harness — once plain and once with
full telemetry attached — and the telemetry demo's profile-accuracy diff),
condenses them into one trajectory point

    {"schema": "sprof.bench_point/5", "date": ..., "geomean_speedup": ...,
     "profiling_overhead": ..., "prefetch_useful_ratio": ...,
     "accuracy_score": ..., "engine_wall_speedup": ...,
     "memsys_wall_speedup": ..., "profiled_wall_speedup": ...,
     "trace_wall_speedup": ..., "telemetry_overhead": ...,
     "replay_events_per_sec": ..., "replay_parallel_speedup": ...,
     "components": ..., "git_sha": ..., "git_dirty": ...}

(the git provenance fields are optional — absent outside a git checkout —
so existing sprof.bench_point readers keep working)

written to bench/trajectory/BENCH_<date>.json, and fails (exit 1) when
the geomean prefetch speedup, the useful-prefetch ratio, or the replay
decode throughput drops more than --tolerance (default 5%) below the most
recent committed point (replay throughput gates hard at 3x the tolerance:
it is a single-process decode loop, so a large sustained drop is a real
decoder regression, but its run-to-run spread on shared hosts reaches
~15%, too wide for the 5% band the deterministic metrics use). The
wall-clock compare fields (engine/memsys/profiled/trace
geomeans) are reported against the baseline but only warn: they measure
host wall time across engine pairs and swing with machine load, so a hard
gate on them would be flaky — trace_wall_speedup in particular is
warn-only while the trace tier's first trajectory points accumulate, and
replay_parallel_speedup (serial over threaded replay wall time) is
warn-only because it scales with the host's core count.
Used by the trajectory-gate CI job; run locally with

    scripts/bench_trajectory.py --build-dir build

Exit status: 0 ok, 1 regression or bench failure, 2 usage error.
"""

import argparse
import datetime
import glob
import json
import math
import os
import subprocess
import sys
import tempfile


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, **kwargs)
    if proc.returncode != 0:
        print(f"error: {cmd[0]} exited {proc.returncode}", file=sys.stderr)
        sys.exit(1)


def load(path):
    with open(path) as f:
        return json.load(f)


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def git_revision():
    """The checkout's (sha, dirty) pair, or (None, None) outside git.

    Optional provenance: readers of sprof.bench_point/5 must not require
    these fields, so a tarball build still produces a valid point.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], capture_output=True,
            text=True, check=True).stdout.strip() != ""
        return sha, dirty
    except (OSError, subprocess.CalledProcessError):
        return None, None


def collect_point(build_dir, threads, workdir):
    """Runs the benches into workdir and condenses one trajectory point."""
    fig16 = os.path.join(workdir, "fig16.json")
    fig20 = os.path.join(workdir, "fig20.json")
    runtime = os.path.join(workdir, "runtime.json")
    runtime_memsys = os.path.join(workdir, "runtime_memsys.json")
    runtime_profiled = os.path.join(workdir, "runtime_profiled.json")
    runtime_telemetry = os.path.join(workdir, "runtime_telemetry.json")
    trace_replay = os.path.join(workdir, "trace_replay.json")
    report = os.path.join(workdir, "telemetry_report.json")
    trace = os.path.join(workdir, "telemetry_trace.json")
    sampled = os.path.join(workdir, "telemetry_sampled_report.json")
    timeseries = os.path.join(workdir, "telemetry_timeseries.json")
    folded = os.path.join(workdir, "telemetry_profile.folded")

    bench = os.path.join(build_dir, "bench")
    examples = os.path.join(build_dir, "examples")
    run([os.path.join(bench, "bench_fig16_speedup"),
         f"--threads={threads}", f"--json={fig16}"], stdout=subprocess.DEVNULL)
    run([os.path.join(bench, "bench_fig20_overhead"),
         f"--threads={threads}", f"--json={fig20}"], stdout=subprocess.DEVNULL)
    run([os.path.join(bench, "bench_runtime"), "--compare",
         f"--json={runtime}"], stdout=subprocess.DEVNULL)
    run([os.path.join(bench, "bench_runtime"), "--compare", "--with-memsys",
         f"--json={runtime_memsys}"], stdout=subprocess.DEVNULL)
    run([os.path.join(bench, "bench_runtime"), "--compare", "--with-profiler",
         f"--json={runtime_profiled}"], stdout=subprocess.DEVNULL)
    # The instrumented-overhead gate: one workload is enough to measure the
    # in-loop cost. The fail threshold is looser than the default 5% because
    # shared CI runners add scheduler noise on top of the instrumentation.
    run([os.path.join(bench, "bench_runtime"), "--compare", "--with-telemetry",
         "--workloads=164.gzip", "--telemetry-fail=0.10",
         f"--telemetry-timeseries={os.path.join(workdir, 'ts.json')}",
         f"--telemetry-folded={os.path.join(workdir, 'prof.folded')}",
         f"--json={runtime_telemetry}"], stdout=subprocess.DEVNULL)
    # Trace capture -> replay throughput, plus the parallel scaling row;
    # the bench itself exits 1 when a replayed profile diverges from its
    # live run (serial fidelity) or the threaded replay diverges from the
    # serial one (parallel fidelity), so both are gated too.
    run([os.path.join(bench, "bench_trace_replay"),
         f"--threads={threads}", f"--json={trace_replay}"],
        stdout=subprocess.DEVNULL)
    run([os.path.join(examples, "telemetry_demo"), report, trace, sampled,
         timeseries, folded], stdout=subprocess.DEVNULL)

    # Geomean figure-16 speedup and aggregate prefetch usefulness of the
    # flagship method (edge-check) across the suite.
    method = "edge-check"
    speedups, useful, issued, redundant = [], 0, 0, 0
    for bm in load(fig16)["benchmarks"]:
        mm = bm["methods"][method]
        speedups.append(mm["speedup"])
        mem = mm["ref_memory"]
        useful += mem["prefetches_useful"]
        issued += mem["prefetches_issued"]
        redundant += mem["prefetches_redundant"]
    non_redundant = issued - redundant
    useful_ratio = useful / non_redundant if non_redundant else 0.0

    # Average figure-20 overhead of the paper's recommended low-overhead
    # method (sample-edge-check) over edge profiling alone.
    overhead_method = "sample-edge-check"
    overheads = []
    for bm in load(fig20)["benchmarks"]:
        base = bm["edge_only_train_cycles"]
        profiled = bm["methods"][overhead_method]["profiled_cycles"]
        if base:
            overheads.append((profiled - base) / base)
    overhead = sum(overheads) / len(overheads) if overheads else 0.0

    runtime_doc = load(runtime)
    memsys_doc = load(runtime_memsys)
    profiled_doc = load(runtime_profiled)
    telemetry_doc = load(runtime_telemetry)
    replay_doc = load(trace_replay)["rows"]
    accuracy = load(report)["profile_diff"]["weighted_accuracy"]

    git_sha, git_dirty = git_revision()
    point = {
        "schema": "sprof.bench_point/5",
        "date": datetime.date.today().isoformat(),
        "geomean_speedup": geomean(speedups),
        "profiling_overhead": overhead,
        "prefetch_useful_ratio": useful_ratio,
        "accuracy_score": accuracy,
        "engine_wall_speedup": runtime_doc.get("geomean_speedup", 0.0),
        "memsys_wall_speedup": memsys_doc.get("geomean_speedup", 0.0),
        "profiled_wall_speedup": profiled_doc.get("geomean_speedup", 0.0),
        "trace_wall_speedup": runtime_doc.get("trace_geomean_speedup", 0.0),
        "telemetry_overhead": telemetry_doc.get("telemetry_overhead", 0.0),
        "replay_events_per_sec": replay_doc.get("replay_events_per_sec", 0.0),
        "replay_parallel_speedup": replay_doc.get("replay_parallel_speedup",
                                                  0.0),
        "components": {
            "speedup_method": method,
            "overhead_method": overhead_method,
            "profiler_method": profiled_doc.get("profiler_method", ""),
            "per_bench_speedups": dict(
                zip([bm["name"] for bm in load(fig16)["benchmarks"]],
                    speedups)),
            "prefetches": {"useful": useful, "issued": issued,
                           "redundant": redundant},
        },
    }
    if git_sha is not None:
        point["git_sha"] = git_sha
        point["git_dirty"] = git_dirty
    return point


def latest_point(trajectory_dir):
    points = sorted(glob.glob(os.path.join(trajectory_dir, "BENCH_*.json")))
    if not points:
        return None, None
    path = points[-1]
    return load(path), path


def gate(point, baseline, baseline_path, tolerance):
    """Fails when a gated metric drops more than `tolerance` vs baseline.

    Simulated-cycle metrics and the replay decode throughput gate hard
    (replay at 3x the tolerance: single-process, but its host-noise
    spread is wider than the deterministic metrics' 5% band);
    wall-clock compare geomeans (engine/memsys/profiled/trace) are
    load-sensitive, so they warn only, and replay_parallel_speedup is
    warn-only too: it compares serial vs threaded replay wall time, so it
    tracks the host's core count, not just the code. A baseline that
    predates a metric (old <= 0) skips it, which is what keeps
    newly-added keys warn-free until their first committed point.
    """
    ok = True
    hard = ("geomean_speedup", "prefetch_useful_ratio",
            "replay_events_per_sec")
    soft = ("engine_wall_speedup", "memsys_wall_speedup",
            "profiled_wall_speedup", "trace_wall_speedup",
            "replay_parallel_speedup")
    for key in hard + soft:
        old, new = baseline.get(key, 0.0), point.get(key, 0.0)
        if old <= 0:
            continue
        tol = 3 * tolerance if key == "replay_events_per_sec" else tolerance
        drop = (old - new) / old
        status = "ok"
        if drop > tol:
            if key in hard:
                status = f"REGRESSION (>{tol:.0%} drop)"
                ok = False
            else:
                status = f"warn (>{tol:.0%} drop; wall-clock, ungated)"
        print(f"  {key}: {old:.4f} -> {new:.4f} "
              f"({-drop:+.2%}) {status}")
    print(f"  (baseline: {baseline_path})")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory with the bench binaries")
    parser.add_argument("--trajectory-dir", default="bench/trajectory",
                        help="directory of committed BENCH_*.json points")
    parser.add_argument("--threads", type=int,
                        default=max(1, (os.cpu_count() or 2) // 2),
                        help="bench engine worker threads")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max fractional drop before the gate fails")
    parser.add_argument("--no-write", action="store_true",
                        help="gate only; do not write a new BENCH point")
    args = parser.parse_args()

    if not os.path.isdir(args.build_dir):
        print(f"error: build dir {args.build_dir!r} not found",
              file=sys.stderr)
        return 2

    # Snapshot the committed baseline before writing: a same-day rerun
    # overwrites BENCH_<date>.json and must still gate against it.
    baseline, baseline_path = latest_point(args.trajectory_dir)

    with tempfile.TemporaryDirectory(prefix="sprof-bench-") as workdir:
        point = collect_point(args.build_dir, args.threads, workdir)

    print("trajectory point:")
    for key in ("geomean_speedup", "profiling_overhead",
                "prefetch_useful_ratio", "accuracy_score",
                "engine_wall_speedup", "memsys_wall_speedup",
                "profiled_wall_speedup", "telemetry_overhead",
                "replay_events_per_sec", "replay_parallel_speedup"):
        print(f"  {key}: {point[key]:.4f}")

    if not args.no_write:
        os.makedirs(args.trajectory_dir, exist_ok=True)
        out_path = os.path.join(args.trajectory_dir,
                                f"BENCH_{point['date']}.json")
        with open(out_path, "w") as f:
            json.dump(point, f, indent=2)
            f.write("\n")
        print(f"wrote {out_path}")

    if baseline is None:
        print("no committed baseline point; gate skipped")
        return 0
    print("gate vs last committed point:")
    return 0 if gate(point, baseline, baseline_path, args.tolerance) else 1


if __name__ == "__main__":
    sys.exit(main())
