//===- workloads/WorkloadMcf.cpp - 181.mcf-like workload --------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 181.mcf stand-in: combinatorial optimization over a network whose
/// arc structs are allocated sequentially and then traversed through
/// embedded pointers (the paper's flagship strong-single-stride case,
/// 1.59x). Each pass walks the arc chain (SSST loads with a 128-byte
/// dominant stride over a >L3 working set), does two dependent random node
/// lookups per arc (the unprefetchable share), and scans every third arc by
/// address arithmetic (a second SSST stream). A per-arc helper call
/// provides out-loop loads landing on already-prefetched lines.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

struct McfParams {
  uint64_t NumArcs;
  unsigned Passes;
  uint64_t IrregularIters;
  uint64_t Seed;
};

class McfLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"181.mcf", "C", "Combinatorial Optimization"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    McfParams P = DS == DataSet::Ref
                      ? McfParams{80000, 3, 180000, 0x5EED0181}
                      : McfParams{24000, 2, 30000, 0x7EA10181};
    P.Seed = Req.seed(P.Seed);

    Program Prog;
    Prog.M.Name = "181.mcf";
    BumpAllocator A;
    Rng R(P.Seed);

    // Arc structs, 128 bytes, allocated (and chained) in traversal order
    // with 2% allocation noise. Fields: +0 next, +8 cost, +16 tail index,
    // +64 flow (second cache line).
    std::vector<uint64_t> Arcs;
    ListSpec Spec;
    Spec.Count = P.NumArcs;
    Spec.NodeBytes = 128;
    Spec.NoisePercent = 2;
    Spec.NoiseMaxSkip = 1024;
    uint64_t Head = buildList(Prog.Memory, A, R, Spec, &Arcs);
    for (uint64_t Addr : Arcs) {
      Prog.Memory.write64(Addr + 8, static_cast<int64_t>(R.below(512)));
      Prog.Memory.write64(Addr + 64, static_cast<int64_t>(R.below(64)));
    }

    // Node potential table: 2^20 entries (8MB), randomly indexed.
    const unsigned NodeLog2 = 20;
    uint64_t NodeBase = buildArray(A, 1ull << NodeLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Probe = makeLoadHelper(B, "node_probe");

    // Out-of-loop loads: a helper reading two more arc fields.
    uint32_t Helper = B.startFunction("refresh_arc", 1);
    {
      Reg Arc = 0;
      Reg V1 = B.load(Arc, 24);
      Reg V2 = B.load(Arc, 32);
      Reg S = B.add(Operand::reg(V1), Operand::reg(V2));
      B.ret(Operand::reg(S));
    }

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;

    Reg Acc = B.movImm(0);
    Reg Rng1 = B.movImm(static_cast<int64_t>(P.Seed | 1));

    emitCountedLoop(
        B, Operand::imm(P.Passes),
        [&](IRBuilder &OB, Reg) {
          // Price-update pass: pointer chase over the arc chain.
          Reg Ptr = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
          emitPointerLoop(
              OB, Ptr,
              [&](IRBuilder &IB, Reg Arc) {
                Reg Cost = IB.load(Arc, 8);
                Reg Flow = IB.load(Arc, 64);
                IB.add(Operand::reg(Acc), Operand::reg(Cost), Acc);
                IB.add(Operand::reg(Acc), Operand::reg(Flow), Acc);

                // Two dependent random node lookups (unprefetchable).
                for (int K = 0; K != 2; ++K) {
                  Reg T = IB.shl(Operand::reg(Rng1), Operand::imm(13));
                  IB.bxor(Operand::reg(Rng1), Operand::reg(T), Rng1);
                  Reg T2 = IB.shr(Operand::reg(Rng1), Operand::imm(7));
                  IB.bxor(Operand::reg(Rng1), Operand::reg(T2), Rng1);
                  Reg Idx = IB.band(Operand::reg(Rng1),
                                    Operand::imm((1ll << NodeLog2) - 1));
                  Reg Off = IB.shl(Operand::reg(Idx), Operand::imm(3));
                  Reg NAddr = IB.add(
                      Operand::reg(Off),
                      Operand::imm(static_cast<int64_t>(NodeBase)));
                  Reg Pot = IB.load(NAddr, 0);
                  IB.add(Operand::reg(Acc), Operand::reg(Pot), Acc);
                }

                Reg H = IB.call(Helper, {Operand::reg(Arc)}, IB.newReg());
                IB.add(Operand::reg(Acc), Operand::reg(H), Acc);

                // Advance the chase last so all arc loads share the
                // pre-update pointer value (one equivalent-load set).
                IB.load(Arc, 0, Arc);
              },
              "arcs");

          // Basis scan: every third arc by address arithmetic.
          Reg Q = OB.mov(Operand::imm(static_cast<int64_t>(Arcs[0])));
          emitCountedLoop(
              OB, Operand::imm(static_cast<int64_t>(P.NumArcs / 3)),
              [&](IRBuilder &IB, Reg) {
                Reg V = IB.load(Q, 8);
                IB.add(Operand::reg(Acc), Operand::reg(V), Acc);
                IB.add(Operand::reg(Q), Operand::imm(384), Q);
              },
              "basis");
        },
        "passes");

    emitIrregularLoop(B, P.IrregularIters, NodeBase, NodeLog2,
                      P.Seed ^ 0x1234, Acc, "misc", Probe);

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeMcfLike() {
  return std::make_unique<McfLike>();
}
