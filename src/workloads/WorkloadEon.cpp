//===- workloads/WorkloadEon.cpp - 252.eon-like workload --------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 252.eon stand-in: C++ probabilistic ray tracing. Heavy arithmetic
/// over an array of 64-byte objects walked sequentially (an SSST stream
/// whose working set sits inside L3, so prefetching only shaves L2/L3 hit
/// latency) plus scene-graph lookups. Gain ~1.01x.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class EonLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"252.eon", "C++", "Computer Visualization"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t NumTris = 8192; // 64B each: 512KB, inside L3
    const unsigned Passes = 2;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0252 : 0x7EA10252);

    Program Prog;
    Prog.M.Name = "252.eon";
    BumpAllocator A;
    Rng R(Seed);

    uint64_t Tris = buildArray(A, NumTris, 64);
    for (uint64_t I = 0; I != NumTris; ++I)
      Prog.Memory.write64(Tris + I * 64,
                          static_cast<int64_t>(1 + R.below(255)));

    const unsigned SceneLog2 = 20; // 8MB scene index
    uint64_t Scene = buildArray(A, 1ull << SceneLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Shade = makeLoadHelper(B, "shade_lookup");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(1);

    emitCountedLoop(
        B, Operand::imm(Passes),
        [&](IRBuilder &OB, Reg) {
          // Render pass: sequential walk with real math per triangle.
          Reg Q = OB.mov(Operand::imm(static_cast<int64_t>(Tris)));
          emitCountedLoop(
              OB, Operand::imm(static_cast<int64_t>(NumTris)),
              [&](IRBuilder &IB, Reg) {
                Reg X = IB.load(Q, 0);
                Reg Y = IB.load(Q, 8);
                Reg M1 = IB.mul(Operand::reg(X), Operand::reg(Y));
                Reg M2 = IB.mul(Operand::reg(M1), Operand::reg(X));
                Reg S1 = IB.shr(Operand::reg(M2), Operand::imm(7));
                IB.add(Operand::reg(Acc), Operand::reg(S1), Acc);
                IB.add(Operand::reg(Q), Operand::imm(64), Q);
              },
              "render");

          // Scene-graph sampling (stride-free, partly out-loop).
          emitIrregularLoop(OB, Ref ? 120000 : 40000, Scene, SceneLog2,
                            Seed ^ 0xE00, Acc, "sample", Shade);
        },
        "frames");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeEonLike() {
  return std::make_unique<EonLike>();
}
