//===- workloads/WorkloadTwolf.cpp - 300.twolf-like workload ----------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 300.twolf stand-in: standard-cell place and route. The netlist is
/// mostly allocated in traversal order (7% churn), so the cell chase shows
/// a ~93% dominant 48-byte stride (SSST) over a slightly-beyond-L3
/// footprint; the annealing cost function is random-access. Gain ~1.02x.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class TwolfLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"300.twolf", "C", "Place and route simulator"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t NumCells = Ref ? 52000 : 18000; // 48B cells
    const unsigned Passes = Ref ? 2 : 2;
    const uint64_t CostIters = Ref ? 300000 : 100000;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0300 : 0x7EA10300);

    Program Prog;
    Prog.M.Name = "300.twolf";
    BumpAllocator A;
    Rng R(Seed);

    std::vector<uint64_t> Cells;
    ListSpec Spec;
    Spec.Count = NumCells;
    Spec.NodeBytes = 48;
    Spec.NoisePercent = 7;
    Spec.NoiseMaxSkip = 2048;
    uint64_t Head = buildList(Prog.Memory, A, R, Spec, &Cells);
    for (uint64_t Addr : Cells)
      Prog.Memory.write64(Addr + 8, static_cast<int64_t>(R.below(200)));

    const unsigned NetLog2 = 20; // 8MB net cost table
    uint64_t Nets = buildArray(A, 1ull << NetLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Cost = makeLoadHelper(B, "net_cost");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    emitCountedLoop(
        B, Operand::imm(Passes),
        [&](IRBuilder &OB, Reg) {
          // Netlist sweep: 88%-stable stride chase.
          Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
          emitPointerLoop(
              OB, P,
              [&](IRBuilder &IB, Reg Cell) {
                Reg W = IB.load(Cell, 8);
                IB.add(Operand::reg(Acc), Operand::reg(W), Acc);
                IB.load(Cell, 0, Cell);
              },
              "cells");

          // Annealing cost evaluation: stride-free.
          emitIrregularLoop(OB, CostIters, Nets, NetLog2, Seed ^ 0x201F,
                            Acc, "anneal", Cost);
        },
        "stages");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeTwolfLike() {
  return std::make_unique<TwolfLike>();
}
