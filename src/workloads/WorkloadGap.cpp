//===- workloads/WorkloadGap.cpp - 254.gap-like workload --------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 254.gap stand-in: a group-theory interpreter whose garbage collector
/// sweeps the heap with handle arithmetic (paper Figure 2). The sweep
/// pointer advances by the size of each object; sizes come from four
/// classes laid out in phases, so the load at `*s` shows four dominant
/// strides (paper: 29/28/21/5%) with mostly-zero stride differences -- a
/// phased multi-stride (PMST) load. Every swept object points at a second
/// heap whose objects use two size classes, so `(*s & ~3)->ptr` shows two
/// dominant strides (paper: 48/47%). Interpreter dispatch over a workspace
/// table provides the stride-free remainder.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

struct GapParams {
  uint64_t NumObjects;
  unsigned Passes;
  uint64_t DispatchIters;
  /// Length of the pending-bag walk per pass. Chosen so the train input
  /// leaves its loads just below the FT=2000 frequency filter while the
  /// reference input clears it -- the source of the paper's Figure 23/24
  /// "ref edge profile beats train edge profile" gap (gap: 1.14 -> 1.20).
  uint64_t PendingBags;
  uint64_t Seed;
};

class GapLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"254.gap", "C", "Group theory, interpreter"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    GapParams P = DS == DataSet::Ref
                      ? GapParams{22000, 2, 250000, 6000, 0x5EED0254}
                      : GapParams{9000, 2, 80000, 975, 0x7EA10254};
    P.Seed = Req.seed(P.Seed);

    Program Prog;
    Prog.M.Name = "254.gap";
    BumpAllocator A;
    Rng R(P.Seed);

    // Second heap first: the objects the handles point to, in two size
    // classes laid out in phases (48%/47% strides, ~5% odd sizes).
    std::vector<uint64_t> Pointees(P.NumObjects);
    {
      uint64_t Phase = 0;
      uint64_t Size = 64;
      for (uint64_t I = 0; I != P.NumObjects; ++I) {
        if (Phase == 0) {
          Phase = 600 + R.below(800);
          Size = R.chancePercent(50) ? 64 : 80;
        }
        --Phase;
        uint64_t Bytes = R.chancePercent(5)
                             ? 8 * (2 + R.below(30))
                             : Size;
        Pointees[I] = A.alloc(Bytes, 8);
        Prog.Memory.write64(Pointees[I] + 8,
                            static_cast<int64_t>(R.below(1024)));
      }
    }

    // Swept heap: header objects in four size classes (phases sized to
    // yield roughly 29/28/21/5% dominant strides; the rest random).
    uint64_t HeapBase = 0, HeapEnd = 0;
    {
      // Put the swept heap in a fresh region.
      A.skip(1 << 20);
      HeapBase = A.next();
      const uint64_t Sizes[4] = {32, 48, 64, 96};
      const unsigned Weights[4] = {29, 28, 21, 5}; // percent of objects
      uint64_t Phase = 0;
      uint64_t Size = Sizes[0];
      for (uint64_t I = 0; I != P.NumObjects; ++I) {
        if (Phase == 0) {
          Phase = 500 + R.below(700);
          unsigned Pick = static_cast<unsigned>(R.below(100));
          if (Pick < Weights[0])
            Size = Sizes[0];
          else if (Pick < Weights[0] + Weights[1])
            Size = Sizes[1];
          else if (Pick < Weights[0] + Weights[1] + Weights[2])
            Size = Sizes[2];
          else if (Pick < 83)
            Size = Sizes[3];
          else
            Size = 8 * (2 + R.below(24)); // the no-dominant-stride tail
        }
        --Phase;
        uint64_t Obj = A.alloc(Size, 8);
        // +0: tagged pointer to the pointee; +8: this object's size.
        Prog.Memory.write64(Obj, static_cast<int64_t>(Pointees[I] | 2));
        Prog.Memory.write64(Obj + 8, static_cast<int64_t>(Size));
      }
      HeapEnd = A.next();
    }

    // Pending bag list: sequentially allocated 192-byte bags walked once
    // per pass (the FT-boundary loop; see GapParams::PendingBags).
    std::vector<uint64_t> Bags;
    ListSpec BagSpec;
    BagSpec.Count = P.PendingBags;
    BagSpec.NodeBytes = 192;
    BagSpec.NoisePercent = 3;
    BagSpec.NoiseMaxSkip = 1024;
    uint64_t BagHead = buildList(Prog.Memory, A, R, BagSpec, &Bags);
    for (uint64_t Addr : Bags)
      Prog.Memory.write64(Addr + 8, static_cast<int64_t>(R.below(64)));

    // Interpreter workspace: 2^20 entries (8MB).
    const unsigned WorkLog2 = 20;
    uint64_t WorkBase = buildArray(A, 1ull << WorkLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Probe = makeLoadHelper(B, "bag_probe");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    emitCountedLoop(
        B, Operand::imm(P.Passes),
        [&](IRBuilder &OB, Reg) {
          // The Figure-2 sweep: while (s < heapEnd) { h=*s; v=(h&~3)->ptr;
          // s += s->size; }.
          Function &F = OB.function();
          uint32_t Header = F.newBlock("sweep.head");
          uint32_t Body = F.newBlock("sweep.body");
          uint32_t Exit = F.newBlock("sweep.exit");

          Reg S = OB.mov(Operand::imm(static_cast<int64_t>(HeapBase)));
          OB.jmp(Header);

          OB.setBlock(Header);
          Reg C = OB.cmp(Opcode::CmpLt, Operand::reg(S),
                         Operand::imm(static_cast<int64_t>(HeapEnd)));
          OB.br(Operand::reg(C), Body, Exit);

          OB.setBlock(Body);
          Reg H = OB.load(S, 0); // S1 of Figure 2: four dominant strides
          Reg H2 = OB.band(Operand::reg(H), Operand::imm(~3ll));
          Reg V = OB.load(H2, 8); // S2: two dominant strides
          Reg Sz = OB.load(S, 8);
          OB.add(Operand::reg(Acc), Operand::reg(V), Acc);
          OB.add(Operand::reg(S), Operand::reg(Sz), S); // S3: s += size
          OB.jmp(Header);

          OB.setBlock(Exit);

          // Pending-bag walk (FT-boundary loop).
          Reg Bag = OB.mov(Operand::imm(static_cast<int64_t>(BagHead)));
          emitPointerLoop(
              OB, Bag,
              [&](IRBuilder &IB, Reg Node) {
                Reg W2 = IB.load(Node, 8);
                IB.add(Operand::reg(Acc), Operand::reg(W2), Acc);
                IB.load(Node, 0, Node);
              },
              "bags");
        },
        "gc");

    // Interpreter dispatch: stride-free hash work, half out-loop.
    emitIrregularLoop(B, P.DispatchIters, WorkBase, WorkLog2,
                      P.Seed ^ 0x6A9, Acc, "dispatch", Probe);

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeGapLike() {
  return std::make_unique<GapLike>();
}
