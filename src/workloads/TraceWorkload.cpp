//===- workloads/TraceWorkload.cpp - Trace-backed workload family ---------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "workloads/TraceWorkload.h"

#include "stream/TraceFile.h"

namespace sprof {

std::vector<std::string> traceWorkloadNames() { return syntheticTraceNames(); }

static bool isTracePathName(const std::string &Name) {
  return Name.size() > 6 && Name.compare(0, 6, "trace:") == 0;
}

bool isTraceWorkloadName(const std::string &Name) {
  if (isTracePathName(Name))
    return true;
  for (const std::string &N : syntheticTraceNames())
    if (N == Name)
      return true;
  return false;
}

std::unique_ptr<AccessSource>
makeAccessSourceByName(const std::string &Name,
                       const SyntheticTraceConfig &Config) {
  if (isTracePathName(Name))
    return TraceReader::openFile(Name.substr(6));
  return makeSyntheticTrace(Name, Config);
}

} // namespace sprof
