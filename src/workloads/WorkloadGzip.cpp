//===- workloads/WorkloadGzip.cpp - 164.gzip-like workload ------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 164.gzip stand-in: compression over a bounded window. Sequential
/// 8-byte scans move less than a cache line per reference, so under the
/// runtime's is_same_value coarsening they profile as ~50% zero strides and
/// never reach the SSST/PMST thresholds; hash-chain probing is stride-free.
/// The working set (window + hash heads) fits comfortably in L2/L3, so the
/// paper's ~1.00x result comes out of both effects.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class GzipLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"164.gzip", "C", "Compression/Decompression"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t WindowWords = 8192; // 64KB window (L2-resident)
    const unsigned Passes = Ref ? 5 : 2;
    const uint64_t HashIters = Ref ? 60000 : 20000;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0164 : 0x7EA10164);

    Program Prog;
    Prog.M.Name = "164.gzip";
    BumpAllocator A;
    Rng R(Seed);

    uint64_t Window = buildArray(A, WindowWords, 8);
    for (uint64_t I = 0; I < WindowWords; I += 7)
      Prog.Memory.write64(Window + I * 8, static_cast<int64_t>(R.below(255)));

    const unsigned HashLog2 = 13; // 64KB of hash heads
    uint64_t HashHeads = buildArray(A, 1ull << HashLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Crc = makeLoadHelper(B, "crc_byte");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    emitCountedLoop(
        B, Operand::imm(Passes),
        [&](IRBuilder &OB, Reg) {
          // Deflate scan: sequential window reads + hash insertion.
          Reg Q = OB.mov(Operand::imm(static_cast<int64_t>(Window)));
          Reg H = OB.mov(Operand::imm(5381));
          emitCountedLoop(
              OB, Operand::imm(static_cast<int64_t>(WindowWords)),
              [&](IRBuilder &IB, Reg) {
                Reg V = IB.load(Q, 0);
                Reg T = IB.shl(Operand::reg(H), Operand::imm(5));
                IB.bxor(Operand::reg(T), Operand::reg(V), H);
                Reg Idx = IB.band(Operand::reg(H),
                                  Operand::imm((1ll << HashLog2) - 1));
                Reg Off = IB.shl(Operand::reg(Idx), Operand::imm(3));
                Reg HAddr = IB.add(
                    Operand::reg(Off),
                    Operand::imm(static_cast<int64_t>(HashHeads)));
                Reg Prev = IB.load(HAddr, 0);
                IB.store(HAddr, 0, Operand::reg(Q));
                IB.add(Operand::reg(Acc), Operand::reg(Prev), Acc);
                IB.add(Operand::reg(Q), Operand::imm(8), Q);
              },
              "deflate");

          // Checksum over the window through the out-loop helper.
          emitIrregularLoop(OB, HashIters, Window, 13, Seed ^ 0xC4C,
                            Acc, "huff", Crc);
        },
        "passes");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeGzipLike() {
  return std::make_unique<GzipLike>();
}
