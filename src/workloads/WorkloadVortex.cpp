//===- workloads/WorkloadVortex.cpp - 255.vortex-like workload --------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 255.vortex stand-in: an object-oriented database. Records are
/// allocated sequentially in 256-byte chunks and visited through a chain
/// that is 93% in allocation order, so the record load carries a 93%
/// dominant stride (SSST over a >L3 region); B-tree-style random probes
/// provide the unprefetchable bulk. Gain ~1.03x.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class VortexLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"255.vortex", "C", "Object-oriented database"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t NumRecords = Ref ? 14000 : 5000; // 256B records
    const unsigned Passes = Ref ? 2 : 2;
    const uint64_t TreeIters = Ref ? 110000 : 35000;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0255 : 0x7EA10255);

    Program Prog;
    Prog.M.Name = "255.vortex";
    BumpAllocator A;
    Rng R(Seed);

    // Records in allocation order; the visit chain links record I to
    // record I+1 93% of the time, otherwise skips forward over a few
    // deleted records (forward-only so the chain terminates).
    std::vector<uint64_t> Recs(NumRecords);
    for (uint64_t I = 0; I != NumRecords; ++I)
      Recs[I] = A.alloc(256, 8);
    for (uint64_t I = 0; I != NumRecords; ++I) {
      uint64_t NextIdx =
          R.chancePercent(93) ? I + 1 : I + 2 + R.below(8);
      uint64_t Next = NextIdx < NumRecords ? Recs[NextIdx] : 0;
      Prog.Memory.write64(Recs[I] + 0, static_cast<int64_t>(Next));
      Prog.Memory.write64(Recs[I] + 8, static_cast<int64_t>(R.below(999)));
    }

    const unsigned TreeLog2 = 20; // 8MB of B-tree nodes
    uint64_t Tree = buildArray(A, 1ull << TreeLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Probe = makeLoadHelper(B, "btree_probe");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    emitCountedLoop(
        B, Operand::imm(Passes),
        [&](IRBuilder &OB, Reg) {
          // Sequential-ish record visit (85% stride 256).
          Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Recs[0])));
          emitPointerLoop(
              OB, P,
              [&](IRBuilder &IB, Reg Rec) {
                Reg Key = IB.load(Rec, 8);
                IB.add(Operand::reg(Acc), Operand::reg(Key), Acc);
                IB.load(Rec, 0, Rec);
              },
              "visit");

          // Index probes: stride-free.
          emitIrregularLoop(OB, TreeIters, Tree, TreeLog2, Seed ^ 0xB7EE,
                            Acc, "btree", Probe);
        },
        "txns");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeVortexLike() {
  return std::make_unique<VortexLike>();
}
