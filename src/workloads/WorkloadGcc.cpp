//===- workloads/WorkloadGcc.cpp - 176.gcc-like workload --------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 176.gcc stand-in: a compiler doing many short passes. Its loops have
/// low trip counts (well under the paper's TT=128), so the trip-count
/// filter removes every candidate load; the RTL chain is allocated with
/// heavy churn (50% noise), so even the pointer chase has no dominant
/// stride. Expected gain ~1.00x; what matters here is the *overhead* side:
/// gcc's load population is what naive methods pay for profiling.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class GccLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"176.gcc", "C", "C programming language compiler"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t NumInsns = Ref ? 30000 : 10000;
    const uint64_t Functions = Ref ? 900 : 300; // compiled functions
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0176 : 0x7EA10176);

    Program Prog;
    Prog.M.Name = "176.gcc";
    BumpAllocator A;
    Rng R(Seed);

    // RTL instruction chain with heavy allocation churn: no stride.
    std::vector<uint64_t> Insns;
    ListSpec Spec;
    Spec.Count = NumInsns;
    Spec.NodeBytes = 64;
    Spec.NoisePercent = 50;
    Spec.NoiseMaxSkip = 8192;
    uint64_t Head = buildList(Prog.Memory, A, R, Spec, &Insns);
    for (uint64_t Addr : Insns)
      Prog.Memory.write64(Addr + 8, static_cast<int64_t>(R.below(64)));

    // Symbol table: 2MB.
    const unsigned SymLog2 = 18;
    uint64_t Symtab = buildArray(A, 1ull << SymLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t LookupFn = makeLoadHelper(B, "symbol_lookup");

    // A "pass" helper: a short, low-trip-count loop over a scratch array
    // (TT filter removes these loads from prefetch consideration).
    const uint64_t Scratch = buildArray(A, 64, 8);
    uint32_t PassFn = B.startFunction("fold_const", 1);
    {
      Reg N = 0;
      Reg Sum = B.movImm(0);
      Reg Q = B.movImm(static_cast<int64_t>(Scratch));
      emitCountedLoop(
          B, Operand::reg(N),
          [&](IRBuilder &IB, Reg) {
            Reg V = IB.load(Q, 0);
            IB.add(Operand::reg(Sum), Operand::reg(V), Sum);
            IB.add(Operand::reg(Q), Operand::imm(8), Q);
          },
          "fold");
      B.ret(Operand::reg(Sum));
    }

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);
    Reg P = B.mov(Operand::imm(static_cast<int64_t>(Head)));

    // Compile each function: chase the next slice of the RTL chain, run a
    // short pass loop, and probe the symbol table.
    emitCountedLoop(
        B, Operand::imm(static_cast<int64_t>(Functions)),
        [&](IRBuilder &OB, Reg) {
          // Walk ~33 insns per compiled function (low trip count), wrapping
          // to the head of the chain when it runs out.
          emitCountedLoop(
              OB, Operand::imm(33),
              [&](IRBuilder &IB, Reg) {
                Reg Live = IB.cmp(Opcode::CmpNe, Operand::reg(P),
                                  Operand::imm(0));
                IB.select(Operand::reg(Live), Operand::reg(P),
                          Operand::imm(static_cast<int64_t>(Head)), P);
                Reg Code = IB.load(P, 8);
                IB.add(Operand::reg(Acc), Operand::reg(Code), Acc);
                IB.load(P, 0, P);
              },
              "rtl");
          Reg S = OB.call(PassFn, {Operand::imm(17)}, OB.newReg());
          OB.add(Operand::reg(Acc), Operand::reg(S), Acc);
        },
        "compile");

    emitIrregularLoop(B, Ref ? 90000 : 30000, Symtab, SymLog2, Seed ^ 0x6CC,
                      Acc, "symtab", LookupFn);

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeGccLike() {
  return std::make_unique<GccLike>();
}
