//===- workloads/WorkloadBzip2.cpp - 256.bzip2-like workload ----------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 256.bzip2 stand-in: block-sorting compression. The sort walks a
/// large block with a stride that is constant within each sorting phase but
/// changes between phases -- a phased multi-stride (PMST) pattern that the
/// runtime-stride prefetch of Figure 3d can follow. Suffix comparisons at
/// random offsets supply the stride-free bulk. Gain ~1.03x.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class Bzip2Like final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"256.bzip2", "C", "Compression"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t BlockWords = 1ull << 19; // 4MB block
    const unsigned Phases = Ref ? 6 : 3;
    const uint64_t CmpIters = Ref ? 240000 : 80000;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0256 : 0x7EA10256);

    Program Prog;
    Prog.M.Name = "256.bzip2";
    BumpAllocator A;
    Rng R(Seed);

    uint64_t Block = buildArray(A, BlockWords, 8);
    for (uint64_t I = 0; I < BlockWords; I += 11)
      Prog.Memory.write64(Block + I * 8, static_cast<int64_t>(R.below(255)));

    IRBuilder B(Prog.M);
    uint32_t Cmp = makeLoadHelper(B, "suffix_cmp");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    // One bucket loop per phase; the stride doubles each phase
    // (16, 32, 64, ...), each phase touching ~11000 elements. Using the
    // same IR loop for every phase makes the single load site see a phased
    // multi-stride sequence.
    const uint64_t PerPhase = 7000;
    Reg Q = B.movImm(static_cast<int64_t>(Block));
    Reg Stride = B.movImm(16);
    emitCountedLoop(
        B, Operand::imm(Phases),
        [&](IRBuilder &OB, Reg) {
          OB.mov(Operand::imm(static_cast<int64_t>(Block)), Q);
          emitCountedLoop(
              OB, Operand::imm(static_cast<int64_t>(PerPhase)),
              [&](IRBuilder &IB, Reg) {
                Reg V = IB.load(Q, 0);
                IB.add(Operand::reg(Acc), Operand::reg(V), Acc);
                IB.add(Operand::reg(Q), Operand::reg(Stride), Q);
              },
              "radix");
          //6% of iterations would overflow the block at the largest
          // stride; the doubling is capped to keep addresses in range.
          Reg Db = OB.shl(Operand::reg(Stride), Operand::imm(1));
          Reg Cap = OB.cmp(Opcode::CmpLe, Operand::reg(Db),
                           Operand::imm(256));
          OB.select(Operand::reg(Cap), Operand::reg(Db),
                    Operand::imm(16), Stride);

          // Suffix comparisons at random offsets.
          emitIrregularLoop(OB, CmpIters / Phases, Block, 19, Seed ^ 0xB21,
                            Acc, "suffix", Cmp);
        },
        "sort");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeBzip2Like() {
  return std::make_unique<Bzip2Like>();
}
