//===- workloads/Workload.h - Synthetic SPECINT2000-shaped programs -*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 12 synthetic workloads standing in for SPECINT2000 (Figure 15). Each
/// workload builds an IR module plus an initial memory image whose dynamic
/// load population reproduces the per-program memory behaviour the paper
/// reports: mcf's strongly-strided pointer walks over sequentially
/// allocated arcs, parser's 94%-stable list/string strides, gap's 4- and
/// 2-dominant-stride garbage-collection loads, and the mostly stride-free
/// behaviour of gzip/gcc/crafty/perlbmk. Train and Ref data sets differ in
/// size and random seed, which is what the Figure 23-25 sensitivity
/// experiments exercise.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_WORKLOADS_WORKLOAD_H
#define SPROF_WORKLOADS_WORKLOAD_H

#include "interp/SimMemory.h"
#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace sprof {

/// Which input data set to build (paper Section 4.3).
enum class DataSet { Train, Ref };

const char *dataSetName(DataSet DS);

/// Identifies one program build: the input data set plus a seed offset the
/// workload mixes into its base RNG seed. Offset 0 (the default, and what
/// the implicit DataSet conversion produces) reproduces the canonical
/// build bit for bit; non-zero offsets generate statistically independent
/// replicas of the same workload shape, which sweep jobs use to own their
/// RNG stream without sharing mutable state.
struct BuildRequest {
  BuildRequest(DataSet DS, uint64_t SeedOffset = 0)
      : DS(DS), SeedOffset(SeedOffset) {}

  DataSet DS;
  uint64_t SeedOffset = 0;

  /// The RNG seed a workload should use for this request. Offset 0 returns
  /// \p BaseSeed unchanged; otherwise the offset is SplitMix64-mixed so
  /// that consecutive offsets give uncorrelated streams.
  uint64_t seed(uint64_t BaseSeed) const {
    if (SeedOffset == 0)
      return BaseSeed;
    uint64_t Z = SeedOffset + 0x9e3779b97f4a7c15ULL;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return BaseSeed ^ (Z ^ (Z >> 31));
  }
};

/// Figure-15 style metadata.
struct WorkloadInfo {
  std::string Name;
  std::string Lang;
  std::string Description;
};

/// A ready-to-run program: IR plus its initial memory image. Copy the
/// module before transforming it and the memory before running it.
struct Program {
  Module M;
  SimMemory Memory;
};

/// One synthetic benchmark.
class Workload {
public:
  virtual ~Workload() = default;
  virtual WorkloadInfo info() const = 0;
  /// Builds a fresh Program for \p Req. Builds are deterministic functions
  /// of the request, so concurrent callers may build the same workload
  /// from different threads as long as each owns its returned Program.
  virtual Program build(const BuildRequest &Req) const = 0;
};

/// Factories, one per SPECINT2000 program.
std::unique_ptr<Workload> makeGzipLike();
std::unique_ptr<Workload> makeVprLike();
std::unique_ptr<Workload> makeGccLike();
std::unique_ptr<Workload> makeMcfLike();
std::unique_ptr<Workload> makeCraftyLike();
std::unique_ptr<Workload> makeParserLike();
std::unique_ptr<Workload> makeEonLike();
std::unique_ptr<Workload> makePerlbmkLike();
std::unique_ptr<Workload> makeGapLike();
std::unique_ptr<Workload> makeVortexLike();
std::unique_ptr<Workload> makeBzip2Like();
std::unique_ptr<Workload> makeTwolfLike();

/// The whole suite in Figure-15 order.
std::vector<std::unique_ptr<Workload>> makeSpecIntSuite();

/// Lookup by Figure-15 name ("181.mcf", ...); returns nullptr when unknown.
std::unique_ptr<Workload> makeWorkloadByName(const std::string &Name);

} // namespace sprof

#endif // SPROF_WORKLOADS_WORKLOAD_H
