//===- workloads/TraceWorkload.h - Trace-backed workload family -*- C++ -*-===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-backed workload family: workload-registry names that resolve
/// to an AccessSource instead of an IR program. These drive the
/// stream-side half of the pipeline (profile -> classify -> simulated
/// prefetch evaluation, driver/TraceReplay.h); they have no IR module, so
/// the build()-based Workload interface does not apply.
///
/// Two name families resolve:
///
///   * the synthetic generators ("stream-seq", "stream-multi", ...,
///     stream/SyntheticTrace.h), sized/seeded by the config;
///   * "trace:<path>", a captured or externally produced sprof.trace
///     file, opened with TraceReader (read errors surface through the
///     returned source's error state, never as a null return for an
///     existing family name).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_WORKLOADS_TRACEWORKLOAD_H
#define SPROF_WORKLOADS_TRACEWORKLOAD_H

#include "stream/SyntheticTrace.h"

#include <memory>
#include <string>
#include <vector>

namespace sprof {

/// The registry names of the trace-backed family (the synthetic
/// generators; "trace:<path>" names are open-ended and not enumerable).
std::vector<std::string> traceWorkloadNames();

/// True for any name makeAccessSourceByName can resolve ("stream-*" or
/// "trace:<path>").
bool isTraceWorkloadName(const std::string &Name);

/// Resolves a trace-backed workload name to its access source. Returns
/// nullptr only for names outside the family; a "trace:" name whose file
/// is unreadable still returns the TraceReader so callers can report its
/// error code.
std::unique_ptr<AccessSource>
makeAccessSourceByName(const std::string &Name,
                       const SyntheticTraceConfig &Config = {});

} // namespace sprof

#endif // SPROF_WORKLOADS_TRACEWORKLOAD_H
