//===- workloads/Builders.h - Shared workload-building helpers --*- C++ -*-===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the workload generators: IR loop emitters and memory
/// layout builders (linked lists and arrays with a controllable fraction of
/// out-of-order allocation, which is the knob that dials a load's dominant
/// stride percentage).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_WORKLOADS_BUILDERS_H
#define SPROF_WORKLOADS_BUILDERS_H

#include "interp/SimMemory.h"
#include "ir/IRBuilder.h"
#include "support/Random.h"

#include <functional>
#include <vector>

namespace sprof {

/// Emits `for (i = 0; i != Count; ++i) Body(i)`. The body callback receives
/// the builder positioned in the loop-body block and the induction register;
/// it must not emit terminators. On return, the builder is positioned in
/// the loop-exit block. The loop header holds only the bound check, so its
/// outgoing-edge frequencies give the trip count (Figure 10).
void emitCountedLoop(IRBuilder &B, Operand Count,
                     const std::function<void(IRBuilder &, Reg)> &Body,
                     const std::string &Tag = "loop");

/// Emits `while (PtrReg != 0) Body(PtrReg)`. The body callback receives the
/// builder positioned in the loop-body block and \p PtrReg; it must advance
/// the chase by writing the next pointer into \p PtrReg and must not emit
/// terminators. On return, the builder is in the exit block.
void emitPointerLoop(IRBuilder &B, Reg PtrReg,
                     const std::function<void(IRBuilder &, Reg)> &Body,
                     const std::string &Tag = "chase");

/// Linked-list layout specification.
struct ListSpec {
  uint64_t Count = 1000;
  uint64_t NodeBytes = 32;
  /// Percentage of nodes preceded by a random allocation gap. 0 gives a
  /// perfectly constant stride; ~6 reproduces parser's 94% stability.
  unsigned NoisePercent = 0;
  uint64_t NoiseMaxSkip = 4096;
  /// Offset of the embedded next pointer within a node.
  uint64_t NextOffset = 0;
};

/// Allocates and chains a list in allocation order; returns the head
/// address (last node's next is null). Optionally returns all node
/// addresses in chain order.
uint64_t buildList(SimMemory &Mem, BumpAllocator &A, Rng &R,
                   const ListSpec &Spec,
                   std::vector<uint64_t> *AddrsOut = nullptr);

/// Allocates a contiguous array of Count * ElemBytes, zero-initialized
/// lazily (SimMemory reads unmapped memory as zero). Returns the base.
uint64_t buildArray(BumpAllocator &A, uint64_t Count, uint64_t ElemBytes,
                    uint64_t Align = 64);

/// Emits a counted loop doing \p Iters iterations of xorshift updates plus
/// one dependent random 8-byte load from a 2^\p TableEntriesLog2 entry
/// table at \p TableBase, accumulating into \p AccReg. This is the
/// "irregular, stride-free work" component every SPECINT-like workload
/// carries; its random loads are unprefetchable by design and set each
/// benchmark's ceiling on stride-prefetching gains.
void emitIrregularLoop(IRBuilder &B, uint64_t Iters, uint64_t TableBase,
                       unsigned TableEntriesLog2, uint64_t Seed, Reg AccReg,
                       const std::string &Tag = "irr",
                       uint32_t LoadHelper = NoId);

/// Creates `name(addr) { return mem[addr]; }`. Loads issued through this
/// helper are *out-loop* loads in the paper's sense (the helper body has no
/// loop), which is how the workloads reproduce the Figure-17 in-loop /
/// out-loop reference mix. Leaves the builder positioned in the new
/// function; callers typically create helpers before their main function.
uint32_t makeLoadHelper(IRBuilder &B, const std::string &Name);

} // namespace sprof

#endif // SPROF_WORKLOADS_BUILDERS_H
