//===- workloads/Builders.cpp - Shared workload-building helpers -----------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include <cassert>

using namespace sprof;

void sprof::emitCountedLoop(IRBuilder &B, Operand Count,
                            const std::function<void(IRBuilder &, Reg)> &Body,
                            const std::string &Tag) {
  Function &F = B.function();
  uint32_t Header = F.newBlock(Tag + ".head");
  uint32_t BodyBB = F.newBlock(Tag + ".body");
  uint32_t Exit = F.newBlock(Tag + ".exit");

  Reg I = B.movImm(0);
  B.jmp(Header);

  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(I), Count);
  B.br(Operand::reg(C), BodyBB, Exit);

  B.setBlock(BodyBB);
  Body(B, I);
  B.add(Operand::reg(I), Operand::imm(1), I);
  B.jmp(Header);

  B.setBlock(Exit);
}

void sprof::emitPointerLoop(IRBuilder &B, Reg PtrReg,
                            const std::function<void(IRBuilder &, Reg)> &Body,
                            const std::string &Tag) {
  Function &F = B.function();
  uint32_t Header = F.newBlock(Tag + ".head");
  uint32_t BodyBB = F.newBlock(Tag + ".body");
  uint32_t Exit = F.newBlock(Tag + ".exit");

  B.jmp(Header);

  B.setBlock(Header);
  Reg C = B.cmp(Opcode::CmpNe, Operand::reg(PtrReg), Operand::imm(0));
  B.br(Operand::reg(C), BodyBB, Exit);

  B.setBlock(BodyBB);
  Body(B, PtrReg);
  B.jmp(Header);

  B.setBlock(Exit);
}

uint64_t sprof::buildList(SimMemory &Mem, BumpAllocator &A, Rng &R,
                          const ListSpec &Spec,
                          std::vector<uint64_t> *AddrsOut) {
  assert(Spec.Count > 0 && "empty list");
  assert(Spec.NodeBytes >= Spec.NextOffset + 8 &&
         "next pointer must fit in the node");
  std::vector<uint64_t> Addrs;
  Addrs.reserve(Spec.Count);
  for (uint64_t I = 0; I != Spec.Count; ++I) {
    if (Spec.NoisePercent &&
        R.chancePercent(Spec.NoisePercent))
      A.skip(8 + R.below(Spec.NoiseMaxSkip));
    Addrs.push_back(A.alloc(Spec.NodeBytes, 8));
  }
  for (uint64_t I = 0; I != Spec.Count; ++I) {
    uint64_t Next = I + 1 != Spec.Count ? Addrs[I + 1] : 0;
    Mem.write64(Addrs[I] + Spec.NextOffset, static_cast<int64_t>(Next));
  }
  uint64_t Head = Addrs[0];
  if (AddrsOut)
    *AddrsOut = std::move(Addrs);
  return Head;
}

uint64_t sprof::buildArray(BumpAllocator &A, uint64_t Count,
                           uint64_t ElemBytes, uint64_t Align) {
  return A.alloc(Count * ElemBytes, Align);
}

void sprof::emitIrregularLoop(IRBuilder &B, uint64_t Iters,
                              uint64_t TableBase, unsigned TableEntriesLog2,
                              uint64_t Seed, Reg AccReg,
                              const std::string &Tag, uint32_t LoadHelper) {
  assert(TableEntriesLog2 < 40 && "table too large");
  const int64_t Mask = (1ll << TableEntriesLog2) - 1;
  Reg State = B.movImm(static_cast<int64_t>(Seed | 1));
  // The table base doubles as a "global" reloaded every iteration, the way
  // C programs reload a bound or configuration word in hot loops. Its
  // address never changes, so it contributes the paper's ~32% zero-stride
  // share (Figure 22) that the strideProf shortcut handles without LFU --
  // and, being loop-invariant, it is exactly what the check methods refuse
  // to profile in the first place (Section 3.2).
  Reg Base = B.movImm(static_cast<int64_t>(TableBase));
  emitCountedLoop(
      B, Operand::imm(static_cast<int64_t>(Iters)),
      [&](IRBuilder &IB, Reg) {
        Reg Bound = IB.load(Base, 0);
        IB.bxor(Operand::reg(AccReg), Operand::reg(Bound), AccReg);
        // xorshift64 step (arithmetic shifts are fine; we mask below).
        Reg T1 = IB.shl(Operand::reg(State), Operand::imm(13));
        IB.bxor(Operand::reg(State), Operand::reg(T1), State);
        Reg T2 = IB.shr(Operand::reg(State), Operand::imm(7));
        IB.bxor(Operand::reg(State), Operand::reg(T2), State);
        Reg T3 = IB.shl(Operand::reg(State), Operand::imm(17));
        IB.bxor(Operand::reg(State), Operand::reg(T3), State);
        Reg Idx = IB.band(Operand::reg(State), Operand::imm(Mask));
        Reg Off = IB.shl(Operand::reg(Idx), Operand::imm(3));
        Reg Addr = IB.add(Operand::reg(Off),
                          Operand::imm(static_cast<int64_t>(TableBase)));
        Reg V = IB.load(Addr, 0);
        IB.add(Operand::reg(AccReg), Operand::reg(V), AccReg);
        if (LoadHelper != NoId) {
          // A second, out-loop random load through the helper; flip some
          // index bits so the two loads touch different lines.
          Reg Idx2 = IB.bxor(Operand::reg(Idx), Operand::imm(Mask >> 1));
          Reg Off2 = IB.shl(Operand::reg(Idx2), Operand::imm(3));
          Reg Addr2 = IB.add(Operand::reg(Off2),
                             Operand::imm(static_cast<int64_t>(TableBase)));
          Reg V2 = IB.call(LoadHelper, {Operand::reg(Addr2)}, IB.newReg());
          IB.add(Operand::reg(AccReg), Operand::reg(V2), AccReg);
        }
      },
      Tag);
}

uint32_t sprof::makeLoadHelper(IRBuilder &B, const std::string &Name) {
  uint32_t Fn = B.startFunction(Name, 1);
  Reg Addr = 0;
  Reg V = B.load(Addr, 0);
  Reg W = B.load(Addr, 8); // same line: no extra miss, one more out-loop ref
  Reg S = B.add(Operand::reg(V), Operand::reg(W));
  B.ret(Operand::reg(S));
  return Fn;
}
