//===- workloads/WorkloadPerlbmk.cpp - 253.perlbmk-like workload ------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 253.perlbmk stand-in: a bytecode interpreter. The op-node chain is
/// allocated with 45% churn, leaving its dominant stride below every
/// classification threshold; hash-based symbol lookups are stride-free.
/// Expected gain ~1.00-1.01x.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class PerlbmkLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"253.perlbmk", "C", "PERL programming language"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t NumOps = Ref ? 30000 : 10000;
    const unsigned Passes = Ref ? 3 : 2;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0253 : 0x7EA10253);

    Program Prog;
    Prog.M.Name = "253.perlbmk";
    BumpAllocator A;
    Rng R(Seed);

    // Op tree with heavy allocation churn: dominant stride ~55% with rare
    // zero diffs -- misses SSST and PMST, and WSST prefetching is off.
    std::vector<uint64_t> Ops;
    ListSpec Spec;
    Spec.Count = NumOps;
    Spec.NodeBytes = 48;
    Spec.NoisePercent = 45;
    Spec.NoiseMaxSkip = 4096;
    uint64_t Head = buildList(Prog.Memory, A, R, Spec, &Ops);
    for (uint64_t Addr : Ops)
      Prog.Memory.write64(Addr + 8, static_cast<int64_t>(R.below(16)));

    const unsigned SymLog2 = 18; // 2MB symbol table
    uint64_t Symtab = buildArray(A, 1ull << SymLog2, 8);

    IRBuilder B(Prog.M);
    uint32_t Fetch = makeLoadHelper(B, "hv_fetch");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    emitCountedLoop(
        B, Operand::imm(Passes),
        [&](IRBuilder &OB, Reg) {
          // Dispatch loop: chase the op chain, branch on opcode.
          Reg P = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
          emitPointerLoop(
              OB, P,
              [&](IRBuilder &IB, Reg Op) {
                Reg Code = IB.load(Op, 8);
                // A two-way "dispatch" so the edge profile has biased
                // branches inside the loop.
                Function &F = IB.function();
                uint32_t TakenBB = F.newBlock("op.binop");
                uint32_t OtherBB = F.newBlock("op.other");
                uint32_t JoinBB = F.newBlock("op.join");
                Reg IsBin = IB.cmp(Opcode::CmpLt, Operand::reg(Code),
                                   Operand::imm(12));
                IB.br(Operand::reg(IsBin), TakenBB, OtherBB);
                IB.setBlock(TakenBB);
                IB.add(Operand::reg(Acc), Operand::reg(Code), Acc);
                IB.jmp(JoinBB);
                IB.setBlock(OtherBB);
                IB.bxor(Operand::reg(Acc), Operand::reg(Code), Acc);
                IB.jmp(JoinBB);
                IB.setBlock(JoinBB);
                IB.load(Op, 0, Op);
              },
              "dispatch");

          emitIrregularLoop(OB, Ref ? 50000 : 16000, Symtab, SymLog2,
                            Seed ^ 0x9E71, Acc, "symbols", Fetch);
        },
        "runs");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makePerlbmkLike() {
  return std::make_unique<PerlbmkLike>();
}
