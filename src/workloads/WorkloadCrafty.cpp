//===- workloads/WorkloadCrafty.cpp - 186.crafty-like workload --------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 186.crafty stand-in: chess search. Bitboard arithmetic over small
/// lookup tables that live in L1/L2 -- there is nothing for stride
/// prefetching to win (paper: ~1.00x), but the dense in-loop load stream is
/// exactly what makes the naive profiling methods expensive in Figure 20.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class CraftyLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"186.crafty", "C", "Game Playing: Chess"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t Nodes = Ref ? 260000 : 90000; // searched positions
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0186 : 0x7EA10186);

    Program Prog;
    Prog.M.Name = "186.crafty";
    BumpAllocator A;
    Rng R(Seed);

    // Attack tables: 64 entries each (512B), L1-resident.
    uint64_t Rook = buildArray(A, 64, 8);
    uint64_t Bishop = buildArray(A, 64, 8);
    for (uint64_t I = 0; I != 64; ++I) {
      Prog.Memory.write64(Rook + I * 8, static_cast<int64_t>(R.next()));
      Prog.Memory.write64(Bishop + I * 8, static_cast<int64_t>(R.next()));
    }
    // Transposition table: 1MB (L3-resident).
    const unsigned TtLog2 = 17;
    uint64_t Tt = buildArray(A, 1ull << TtLog2, 8);

    IRBuilder B(Prog.M);

    // Evaluate(): straight-line bitboard math with out-loop table loads.
    uint32_t Eval = B.startFunction("evaluate", 1);
    {
      Reg Sq = 0;
      Reg Masked = B.band(Operand::reg(Sq), Operand::imm(63));
      Reg Off = B.shl(Operand::reg(Masked), Operand::imm(3));
      Reg RAddr = B.add(Operand::reg(Off),
                        Operand::imm(static_cast<int64_t>(Rook)));
      Reg V1 = B.load(RAddr, 0);
      Reg BAddr = B.add(Operand::reg(Off),
                        Operand::imm(static_cast<int64_t>(Bishop)));
      Reg V2 = B.load(BAddr, 0);
      Reg X = B.bxor(Operand::reg(V1), Operand::reg(V2));
      B.ret(Operand::reg(X));
    }

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);
    Reg St = B.movImm(static_cast<int64_t>(Seed | 1));

    emitCountedLoop(
        B, Operand::imm(static_cast<int64_t>(Nodes)),
        [&](IRBuilder &IB, Reg) {
          // Position hashing and move generation (in-loop table loads).
          Reg T = IB.shl(Operand::reg(St), Operand::imm(13));
          IB.bxor(Operand::reg(St), Operand::reg(T), St);
          Reg T2 = IB.shr(Operand::reg(St), Operand::imm(7));
          IB.bxor(Operand::reg(St), Operand::reg(T2), St);
          Reg Sq = IB.band(Operand::reg(St), Operand::imm(63));
          Reg Off = IB.shl(Operand::reg(Sq), Operand::imm(3));
          Reg RA = IB.add(Operand::reg(Off),
                          Operand::imm(static_cast<int64_t>(Rook)));
          Reg Att = IB.load(RA, 0);
          IB.add(Operand::reg(Acc), Operand::reg(Att), Acc);

          // Transposition probe (stride-free, mostly L3 hits).
          Reg TIdx = IB.band(Operand::reg(St),
                             Operand::imm((1ll << TtLog2) - 1));
          Reg TOff = IB.shl(Operand::reg(TIdx), Operand::imm(3));
          Reg TA = IB.add(Operand::reg(TOff),
                          Operand::imm(static_cast<int64_t>(Tt)));
          Reg Hit = IB.load(TA, 0);
          IB.add(Operand::reg(Acc), Operand::reg(Hit), Acc);

          Reg E = IB.call(Eval, {Operand::reg(St)}, IB.newReg());
          IB.add(Operand::reg(Acc), Operand::reg(E), Acc);
        },
        "search");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeCraftyLike() {
  return std::make_unique<CraftyLike>();
}
