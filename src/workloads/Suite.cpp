//===- workloads/Suite.cpp - The Figure-15 workload suite -------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

using namespace sprof;

const char *sprof::dataSetName(DataSet DS) {
  return DS == DataSet::Train ? "train" : "ref";
}

std::vector<std::unique_ptr<Workload>> sprof::makeSpecIntSuite() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(makeGzipLike());
  Suite.push_back(makeVprLike());
  Suite.push_back(makeGccLike());
  Suite.push_back(makeMcfLike());
  Suite.push_back(makeCraftyLike());
  Suite.push_back(makeParserLike());
  Suite.push_back(makeEonLike());
  Suite.push_back(makePerlbmkLike());
  Suite.push_back(makeGapLike());
  Suite.push_back(makeVortexLike());
  Suite.push_back(makeBzip2Like());
  Suite.push_back(makeTwolfLike());
  return Suite;
}

std::unique_ptr<Workload> sprof::makeWorkloadByName(const std::string &Name) {
  for (auto &W : makeSpecIntSuite())
    if (W->info().Name == Name)
      return std::move(W);
  return nullptr;
}
