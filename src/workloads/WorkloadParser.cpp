//===- workloads/WorkloadParser.cpp - 197.parser-like workload --------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 197.parser stand-in: word processing over linked string lists whose
/// nodes and string payloads come from the program's own pool allocator in
/// reference order (paper Figure 1). Both the `next` chase and the string
/// dereference keep the same stride ~94% of the time (6% allocation
/// noise). A dictionary-hash loop supplies the dominant stride-free work,
/// and a per-word helper reads string fields out of loop (the out-loop SSST
/// loads that naive-all additionally prefetches, lifting parser from 1.08x
/// to 1.10x in the paper).
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

struct ParserParams {
  uint64_t NumWords;
  unsigned Passes;
  uint64_t DictIters;
  /// Length of the per-pass suffix-rule walk. Train sits just below the
  /// FT=2000 frequency filter, ref well above it, recreating the paper's
  /// small ref-edge-profile advantage (parser 1.08 -> 1.09, Figure 23/24).
  uint64_t SuffixRules;
  uint64_t Seed;
};

class ParserLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"197.parser", "C", "Word Processing"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    ParserParams P = DS == DataSet::Ref
                         ? ParserParams{10000, 2, 72000, 4000, 0x5EED0197}
                         : ParserParams{4000, 2, 25000, 975, 0x7EA10197};
    P.Seed = Req.seed(P.Seed);

    Program Prog;
    Prog.M.Name = "197.parser";
    BumpAllocator A;
    Rng R(P.Seed);

    // Pool allocation in reference order: node (32B: next@0, str@8,
    // len@16) immediately followed by its string payload (320B). 6% of
    // words take an allocation detour, breaking the stride.
    std::vector<uint64_t> Nodes(P.NumWords), Strings(P.NumWords);
    for (uint64_t I = 0; I != P.NumWords; ++I) {
      if (R.chancePercent(6))
        A.skip(8 + R.below(2048));
      Nodes[I] = A.alloc(32, 8);
      Strings[I] = A.alloc(320, 8);
    }
    for (uint64_t I = 0; I != P.NumWords; ++I) {
      uint64_t Next = I + 1 != P.NumWords ? Nodes[I + 1] : 0;
      Prog.Memory.write64(Nodes[I] + 0, static_cast<int64_t>(Next));
      Prog.Memory.write64(Nodes[I] + 8, static_cast<int64_t>(Strings[I]));
      Prog.Memory.write64(Nodes[I] + 16,
                          static_cast<int64_t>(4 + R.below(28)));
      Prog.Memory.write64(Strings[I], static_cast<int64_t>(R.below(256)));
      Prog.Memory.write64(Strings[I] + 8,
                          static_cast<int64_t>(R.below(256)));
    }
    uint64_t Head = Nodes[0];

    // Suffix-rule list (FT-boundary loop; see ParserParams::SuffixRules).
    std::vector<uint64_t> Rules;
    ListSpec RuleSpec;
    RuleSpec.Count = P.SuffixRules;
    RuleSpec.NodeBytes = 96;
    RuleSpec.NoisePercent = 3;
    RuleSpec.NoiseMaxSkip = 512;
    uint64_t RuleHead = buildList(Prog.Memory, A, R, RuleSpec, &Rules);
    for (uint64_t Addr : Rules)
      Prog.Memory.write64(Addr + 8, static_cast<int64_t>(R.below(32)));

    // Dictionary hash table: 2^20 entries (8MB, well beyond L3).
    const unsigned DictLog2 = 20;
    uint64_t DictBase = buildArray(A, 1ull << DictLog2, 8);

    IRBuilder B(Prog.M);

    // Out-of-loop loads over the string payload (stride follows the pool).
    uint32_t Hash = B.startFunction("hash_string", 1);
    {
      Reg Str = 0;
      Reg C0 = B.load(Str, 16);
      Reg C1 = B.load(Str, 24);
      Reg H = B.bxor(Operand::reg(C0), Operand::reg(C1));
      B.ret(Operand::reg(H));
    }

    uint32_t Probe = makeLoadHelper(B, "dict_probe");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);

    emitCountedLoop(
        B, Operand::imm(P.Passes),
        [&](IRBuilder &OB, Reg) {
          // Figure 1: chase the string list; touch node and string.
          Reg Ptr = OB.mov(Operand::imm(static_cast<int64_t>(Head)));
          emitPointerLoop(
              OB, Ptr,
              [&](IRBuilder &IB, Reg Node) {
                Reg Str = IB.load(Node, 8);   // S2 base
                Reg Len = IB.load(Node, 16);
                Reg Ch = IB.load(Str, 0);     // string content
                IB.add(Operand::reg(Acc), Operand::reg(Len), Acc);
                IB.add(Operand::reg(Acc), Operand::reg(Ch), Acc);
                Reg H = IB.call(Hash, {Operand::reg(Str)}, IB.newReg());
                IB.add(Operand::reg(Acc), Operand::reg(H), Acc);
                IB.load(Node, 0, Node);       // S1: sn = node->next
              },
              "words");

          // Suffix-rule walk (FT-boundary loop).
          Reg Rule = OB.mov(Operand::imm(static_cast<int64_t>(RuleHead)));
          emitPointerLoop(
              OB, Rule,
              [&](IRBuilder &IB, Reg Node) {
                Reg W2 = IB.load(Node, 8);
                IB.add(Operand::reg(Acc), Operand::reg(W2), Acc);
                IB.load(Node, 0, Node);
              },
              "rules");

          // Dictionary lookups: stride-free hash probing, half of the
          // references issued through an out-loop helper.
          emitIrregularLoop(OB, P.DictIters, DictBase, DictLog2,
                            P.Seed ^ 0xD1C7, Acc, "dict", Probe);
        },
        "passes");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeParserLike() {
  return std::make_unique<ParserLike>();
}
