//===- workloads/WorkloadVpr.cpp - 175.vpr-like workload --------------------===//
//
// Part of the StrideProf project (see Workload.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 175.vpr stand-in: FPGA placement. Random swap evaluation dominates
/// (stride-free loads over the cell grid); a per-pass bounding-box update
/// walks the whole grid with a constant 32-byte stride (one modest SSST
/// stream over a >L3 footprint), giving the small single-digit gain the
/// paper reports.
///
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"
#include "workloads/Workload.h"

using namespace sprof;

namespace {

class VprLike final : public Workload {
public:
  WorkloadInfo info() const override {
    return {"175.vpr", "C", "FPGA circuit placement and routing"};
  }

  Program build(const BuildRequest &Req) const override {
    const DataSet DS = Req.DS;
    const bool Ref = DS == DataSet::Ref;
    const uint64_t NumCells = Ref ? 98304 : 49152; // 32B cells: 3MB / 1.5MB
    const unsigned Passes = Ref ? 2 : 2;
    const uint64_t SwapIters = Ref ? 190000 : 60000;
    const uint64_t Seed = Req.seed(Ref ? 0x5EED0175 : 0x7EA10175);

    Program Prog;
    Prog.M.Name = "175.vpr";
    BumpAllocator A;
    Rng R(Seed);

    uint64_t Cells = buildArray(A, NumCells, 32);
    for (uint64_t I = 0; I < NumCells; I += 3)
      Prog.Memory.write64(Cells + I * 32, static_cast<int64_t>(R.below(97)));

    IRBuilder B(Prog.M);
    uint32_t CostFn = makeLoadHelper(B, "swap_cost");

    uint32_t Main = B.startFunction("main", 0);
    Prog.M.EntryFunction = Main;
    Reg Acc = B.movImm(0);
    Reg St = B.movImm(static_cast<int64_t>(Seed | 1));

    // Grid cells live at Cells + idx*32; idx randomized by xorshift.
    const int64_t IdxMask = static_cast<int64_t>(NumCells - 1);

    emitCountedLoop(
        B, Operand::imm(Passes),
        [&](IRBuilder &OB, Reg) {
          // Simulated-annealing swaps: two random cells per trial, one
          // probed through the out-loop cost helper.
          emitCountedLoop(
              OB, Operand::imm(static_cast<int64_t>(SwapIters)),
              [&](IRBuilder &IB, Reg) {
                Reg T = IB.shl(Operand::reg(St), Operand::imm(13));
                IB.bxor(Operand::reg(St), Operand::reg(T), St);
                Reg T2 = IB.shr(Operand::reg(St), Operand::imm(7));
                IB.bxor(Operand::reg(St), Operand::reg(T2), St);
                Reg IdxA = IB.band(Operand::reg(St), Operand::imm(IdxMask));
                Reg OffA = IB.shl(Operand::reg(IdxA), Operand::imm(5));
                Reg AddrA = IB.add(
                    Operand::reg(OffA),
                    Operand::imm(static_cast<int64_t>(Cells)));
                Reg VA = IB.load(AddrA, 0);
                Reg VB = IB.load(AddrA, 8);
                IB.add(Operand::reg(Acc), Operand::reg(VA), Acc);
                Reg IdxB = IB.bxor(Operand::reg(IdxA),
                                   Operand::imm(IdxMask >> 1));
                Reg OffB = IB.shl(Operand::reg(IdxB), Operand::imm(5));
                Reg AddrB = IB.add(
                    Operand::reg(OffB),
                    Operand::imm(static_cast<int64_t>(Cells)));
                Reg C = IB.call(CostFn, {Operand::reg(AddrB)}, IB.newReg());
                IB.add(Operand::reg(Acc), Operand::reg(C), Acc);
                IB.add(Operand::reg(Acc), Operand::reg(VB), Acc);
              },
              "swap");

          // Bounding-box refresh: constant-stride sweep over the grid.
          Reg Q = OB.mov(Operand::imm(static_cast<int64_t>(Cells)));
          emitCountedLoop(
              OB, Operand::imm(static_cast<int64_t>(NumCells / 8)),
              [&](IRBuilder &IB, Reg) {
                Reg V = IB.load(Q, 0);
                IB.add(Operand::reg(Acc), Operand::reg(V), Acc);
                IB.add(Operand::reg(Q), Operand::imm(256), Q);
              },
              "bbox");
        },
        "anneal");

    B.ret(Operand::reg(Acc));
    return Prog;
  }
};

} // namespace

std::unique_ptr<Workload> sprof::makeVprLike() {
  return std::make_unique<VprLike>();
}
