//===- analysis/ControlEquivalence.h - Control-equivalent blocks -*- C++ -*-===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two blocks are control equivalent when one dominates the other and the
/// dominated one post-dominates the dominator: they always execute together.
/// The paper uses this when forming sets of equivalent loads that can share
/// one stride-profiled representative (Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_ANALYSIS_CONTROLEQUIVALENCE_H
#define SPROF_ANALYSIS_CONTROLEQUIVALENCE_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// Partitions the blocks of a function into control-equivalence classes.
class ControlEquivalence {
public:
  /// \p DT / \p PDT are the forward / backward dominator trees of \p F.
  ControlEquivalence(const Function &F, const DomTree &DT,
                     const DomTree &PDT);

  /// Class id of \p Block; blocks with equal ids always execute together.
  uint32_t classOf(uint32_t Block) const { return ClassId[Block]; }

  /// True when \p A and \p B are control equivalent.
  bool equivalent(uint32_t A, uint32_t B) const {
    return ClassId[A] == ClassId[B];
  }

  uint32_t numClasses() const { return NumClasses; }

private:
  std::vector<uint32_t> ClassId;
  uint32_t NumClasses = 0;
};

} // namespace sprof

#endif // SPROF_ANALYSIS_CONTROLEQUIVALENCE_H
