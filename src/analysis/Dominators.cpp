//===- analysis/Dominators.cpp - Dominator and post-dominator trees --------===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace sprof;

namespace {

constexpr uint32_t Invalid = ~0u;

/// Computes a reverse post-order of the graph reachable from \p Root.
std::vector<uint32_t>
reversePostOrder(uint32_t NumNodes,
                 const std::vector<std::vector<uint32_t>> &Succs,
                 uint32_t Root) {
  std::vector<uint32_t> PostOrder;
  std::vector<uint8_t> State(NumNodes, 0); // 0=new, 1=open, 2=done
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(Root, 0);
  State[Root] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextChild] = Stack.back();
    if (NextChild < Succs[Node].size()) {
      uint32_t Child = Succs[Node][NextChild++];
      if (State[Child] == 0) {
        State[Child] = 1;
        Stack.emplace_back(Child, 0);
      }
      continue;
    }
    State[Node] = 2;
    PostOrder.push_back(Node);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

} // namespace

DomTree DomTree::compute(uint32_t NumNodes,
                         const std::vector<std::vector<uint32_t>> &Succs,
                         const std::vector<std::vector<uint32_t>> &Preds,
                         uint32_t Root) {
  std::vector<uint32_t> Rpo = reversePostOrder(NumNodes, Succs, Root);
  std::vector<uint32_t> RpoIndex(NumNodes, Invalid);
  for (uint32_t I = 0, E = static_cast<uint32_t>(Rpo.size()); I != E; ++I)
    RpoIndex[Rpo[I]] = I;

  std::vector<uint32_t> Idom(NumNodes, Invalid);
  Idom[Root] = Root;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Node : Rpo) {
      if (Node == Root)
        continue;
      uint32_t NewIdom = Invalid;
      for (uint32_t P : Preds[Node]) {
        if (Idom[P] == Invalid)
          continue; // predecessor not processed / unreachable
        NewIdom = (NewIdom == Invalid) ? P : Intersect(NewIdom, P);
      }
      if (NewIdom != Invalid && Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }

  DomTree T;
  T.Idom = std::move(Idom);
  T.Depth.assign(NumNodes, Invalid);
  T.Depth[Root] = 0;
  // Depths in RPO: a node's idom always precedes it in RPO.
  bool DepthChanged = true;
  while (DepthChanged) {
    DepthChanged = false;
    for (uint32_t Node : Rpo) {
      if (Node == Root || T.Idom[Node] == Invalid)
        continue;
      uint32_t ParentDepth = T.Depth[T.Idom[Node]];
      if (ParentDepth == Invalid)
        continue;
      if (T.Depth[Node] != ParentDepth + 1) {
        T.Depth[Node] = ParentDepth + 1;
        DepthChanged = true;
      }
    }
  }
  return T;
}

DomTree DomTree::forward(const Function &F) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());
  std::vector<std::vector<uint32_t>> Succs(N), Preds(N);
  for (uint32_t B = 0; B != N; ++B)
    for (uint32_t S : F.Blocks[B].successors()) {
      Succs[B].push_back(S);
      Preds[S].push_back(B);
    }
  return compute(N, Succs, Preds, F.entryBlock());
}

DomTree DomTree::backward(const Function &F) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());
  uint32_t VirtualExit = N;
  // Reverse graph: successors of B in the reverse graph are B's CFG
  // predecessors; the virtual exit's successors are all Ret/Halt blocks.
  std::vector<std::vector<uint32_t>> Succs(N + 1), Preds(N + 1);
  for (uint32_t B = 0; B != N; ++B) {
    for (uint32_t S : F.Blocks[B].successors()) {
      Succs[S].push_back(B);
      Preds[B].push_back(S);
    }
    const BasicBlock &BB = F.Blocks[B];
    if (BB.hasTerminator() && (BB.terminator().Op == Opcode::Ret ||
                               BB.terminator().Op == Opcode::Halt)) {
      Succs[VirtualExit].push_back(B);
      Preds[B].push_back(VirtualExit);
    }
  }
  DomTree T = compute(N + 1, Succs, Preds, VirtualExit);
  // Strip the virtual exit: blocks whose idom is the virtual exit become
  // roots of the post-dominator forest.
  for (uint32_t B = 0; B != N; ++B)
    if (T.Idom[B] == VirtualExit)
      T.Idom[B] = B;
  T.Idom.resize(N);
  T.Depth.resize(N);
  return T;
}

bool DomTree::dominates(uint32_t A, uint32_t B) const {
  assert(A < Idom.size() && B < Idom.size() && "block index out of range");
  if (!isReachable(A) || !isReachable(B))
    return false;
  while (Depth[B] > Depth[A])
    B = Idom[B];
  return A == B;
}

bool DomTree::isReachable(uint32_t Block) const {
  assert(Block < Idom.size() && "block index out of range");
  return Idom[Block] != Invalid;
}
