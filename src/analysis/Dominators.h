//===- analysis/Dominators.h - Dominator and post-dominator trees -*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator trees via the Cooper-Harvey-Kennedy iterative algorithm. The
/// same engine runs on the reversed CFG (with a virtual exit joining all
/// Ret/Halt blocks) to produce post-dominators, which control-equivalence
/// needs when forming equivalent-load sets (paper Section 2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_ANALYSIS_DOMINATORS_H
#define SPROF_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// A dominator (or post-dominator) tree over the blocks of one function.
///
/// Unreachable blocks have no immediate dominator and dominate nothing.
/// For the post-dominator variant a virtual exit is used internally; blocks
/// that cannot reach any exit are treated as unreachable.
class DomTree {
public:
  /// Builds the dominator tree of \p F rooted at the entry block.
  static DomTree forward(const Function &F);

  /// Builds the post-dominator tree of \p F rooted at a virtual exit.
  static DomTree backward(const Function &F);

  /// Immediate dominator of \p Block, or ~0u for roots/unreachable blocks.
  uint32_t idom(uint32_t Block) const { return Idom[Block]; }

  /// True when \p A dominates \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

  /// True when \p Block is reachable from the root.
  bool isReachable(uint32_t Block) const;

  uint32_t numBlocks() const { return static_cast<uint32_t>(Idom.size()); }

private:
  DomTree() = default;

  static DomTree compute(uint32_t NumBlocks,
                         const std::vector<std::vector<uint32_t>> &Succs,
                         const std::vector<std::vector<uint32_t>> &Preds,
                         uint32_t Root);

  /// Idom[B] = immediate dominator block index; Root maps to itself; ~0u for
  /// unreachable blocks. A virtual node (post-dom root) is stripped before
  /// storing, so indices always refer to real blocks.
  std::vector<uint32_t> Idom;
  /// Depth of each block in the tree (root = 0), ~0u if unreachable.
  std::vector<uint32_t> Depth;
};

} // namespace sprof

#endif // SPROF_ANALYSIS_DOMINATORS_H
