//===- analysis/LoopInfo.h - Natural loops and loop nesting ----*- C++ -*-===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection (back edges whose target dominates their source),
/// the loop nesting forest, loop-entering/exiting edge queries used by the
/// edge-check instrumentation of Figure 14, irreducible-region marking
/// (loads in irreducible loops are treated as out-loop loads per Section 2),
/// and loop-invariant address detection (Section 3.2's first improvement to
/// the naive methods).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_ANALYSIS_LOOPINFO_H
#define SPROF_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// One natural loop.
struct Loop {
  /// Loop header block.
  uint32_t Header = 0;

  /// All blocks in the loop, sorted ascending (includes the header).
  std::vector<uint32_t> Blocks;

  /// Sources of back edges into the header.
  std::vector<uint32_t> Latches;

  /// Index of the innermost strictly-containing loop, or ~0u.
  uint32_t Parent = ~0u;

  /// Nesting depth, outermost = 1.
  uint32_t Depth = 1;

  bool contains(uint32_t Block) const;
};

/// Loop forest of a single function.
class LoopInfo {
public:
  /// Builds loop info for \p F; \p DT must be the forward dominator tree.
  LoopInfo(const Function &F, const DomTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Innermost loop containing \p Block, or ~0u.
  uint32_t innermostLoop(uint32_t Block) const {
    return BlockToLoop[Block];
  }

  /// True when \p Block participates in an irreducible cycle (a cycle whose
  /// entry does not dominate all of its members). The paper treats loads in
  /// irreducible loops as out-loop loads.
  bool isIrreducible(uint32_t Block) const { return Irreducible[Block]; }

  /// True when \p Block is inside a (reducible, natural) loop. This is the
  /// paper's "in-loop" predicate for loads.
  bool isInLoop(uint32_t Block) const {
    return BlockToLoop[Block] != ~0u && !Irreducible[Block];
  }

  /// Edges entering the header of \p LoopIdx from outside the loop
  /// ("pre-head" edges of Figure 13).
  std::vector<Edge> enteringEdges(uint32_t LoopIdx) const;

  /// All outgoing edges of the loop header (their frequency sum is the
  /// header frequency reconstruction of Figure 12/13).
  std::vector<Edge> headerOutEdges(uint32_t LoopIdx) const;

  /// True when register \p R has no definition inside loop \p LoopIdx, i.e.
  /// an address held in \p R is loop-invariant.
  bool isLoopInvariantReg(uint32_t LoopIdx, Reg R) const;

private:
  void findNaturalLoops(const DomTree &DT);
  void buildNesting();
  void markIrreducible(const DomTree &DT);
  void collectLoopDefs();

  const Function &F;
  std::vector<Loop> Loops;
  std::vector<uint32_t> BlockToLoop; // innermost loop per block, ~0u if none
  std::vector<uint8_t> Irreducible;  // per block
  /// Per loop: sorted list of registers defined somewhere in the loop.
  std::vector<std::vector<Reg>> LoopDefs;
};

} // namespace sprof

#endif // SPROF_ANALYSIS_LOOPINFO_H
