//===- analysis/ControlEquivalence.cpp - Control-equivalent blocks ---------===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlEquivalence.h"

using namespace sprof;

ControlEquivalence::ControlEquivalence(const Function &F, const DomTree &DT,
                                       const DomTree &PDT) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());
  ClassId.assign(N, ~0u);

  // Union-find over blocks; control equivalence is transitive because it is
  // "A and B always execute together", so merging pairwise-equivalent
  // blocks is sound.
  std::vector<uint32_t> UnionParent(N);
  for (uint32_t B = 0; B != N; ++B)
    UnionParent[B] = B;
  auto Find = [&](uint32_t X) {
    while (UnionParent[X] != X) {
      UnionParent[X] = UnionParent[UnionParent[X]];
      X = UnionParent[X];
    }
    return X;
  };
  auto Union = [&](uint32_t A, uint32_t B) {
    UnionParent[Find(A)] = Find(B);
  };

  // It suffices to test each block against its immediate dominator: if
  // A idom-dominates B and B post-dominates A they are equivalent, and
  // longer equivalences compose through the chain of immediate dominators.
  for (uint32_t B = 0; B != N; ++B) {
    if (!DT.isReachable(B))
      continue;
    uint32_t A = DT.idom(B);
    if (A == B || A == ~0u)
      continue;
    if (PDT.isReachable(A) && PDT.isReachable(B) && PDT.dominates(B, A))
      Union(A, B);
  }

  // Number the classes densely.
  std::vector<uint32_t> RootToClass(N, ~0u);
  for (uint32_t B = 0; B != N; ++B) {
    uint32_t Root = Find(B);
    if (RootToClass[Root] == ~0u)
      RootToClass[Root] = NumClasses++;
    ClassId[B] = RootToClass[Root];
  }
}
