//===- analysis/EquivalentLoads.cpp - Equivalent-load partitioning ----------===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "analysis/EquivalentLoads.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace sprof;

std::vector<LoadMember>
EquivalentLoadSet::coverLoads(uint64_t LineBytes) const {
  std::vector<LoadMember> Result;
  std::set<int64_t> LinesCovered;
  for (const LoadMember &M : Members) {
    // Members are sorted by offset; floor-divide so negative offsets bucket
    // correctly.
    int64_t LB = static_cast<int64_t>(LineBytes);
    int64_t Line = M.Offset >= 0 ? M.Offset / LB : -((-M.Offset + LB - 1) / LB);
    if (LinesCovered.insert(Line).second)
      Result.push_back(M);
  }
  return Result;
}

std::vector<EquivalentLoadSet>
sprof::partitionEquivalentLoads(const Function &F, const LoopInfo &LI,
                                const ControlEquivalence &CE) {
  // Two grouping rules, both sound w.r.t. "the loads see the same address
  // register value and differ only by compile-time constant offsets":
  //
  //  (1) Same block, same address register, and no redefinition of that
  //      register between the two loads (tracked with a per-block def
  //      version counter). This covers the paper's motivating case
  //      (Figure 1: string_list->next and string_list->string).
  //
  //  (2) Different control-equivalent blocks of the same loop, same address
  //      register, and the register is loop-invariant (no definition inside
  //      the loop). This covers constant-base accesses spread over a loop
  //      body.
  //
  // Loads that match neither rule form singleton sets; under-merging only
  // costs a little extra profiling, never correctness.
  struct Key {
    // Discriminates rule-1 groups (per block/version) from rule-2 groups.
    uint32_t Rule;
    uint32_t Scope;   // rule 1: block index; rule 2: loop index
    uint32_t Version; // rule 1: def version; rule 2: equivalence class
    Reg AddrReg;
    bool operator<(const Key &K) const {
      return std::tie(Rule, Scope, Version, AddrReg) <
             std::tie(K.Rule, K.Scope, K.Version, K.AddrReg);
    }
  };
  std::map<Key, EquivalentLoadSet> Groups;

  for (uint32_t B = 0, N = static_cast<uint32_t>(F.Blocks.size()); B != N;
       ++B) {
    const BasicBlock &BB = F.Blocks[B];
    uint32_t LoopIdx = LI.isInLoop(B) ? LI.innermostLoop(B) : ~0u;

    // Def versions of registers within this block.
    std::map<Reg, uint32_t> DefVersion;

    for (uint32_t II = 0, IE = static_cast<uint32_t>(BB.Insts.size());
         II != IE; ++II) {
      const Instruction &I = BB.Insts[II];
      if (I.Op == Opcode::Load) {
        LoadMember M;
        M.SiteId = I.SiteId;
        M.Block = B;
        M.InstIndex = II;
        M.AddrReg = I.A.getReg();
        M.Offset = I.Imm;

        Key K;
        if (LoopIdx != ~0u && LI.isLoopInvariantReg(LoopIdx, M.AddrReg)) {
          // Rule 2: loop-invariant base, group across control-equivalent
          // blocks of the loop.
          K = Key{2, LoopIdx, CE.classOf(B), M.AddrReg};
        } else {
          // Rule 1: within-block grouping keyed on the def version.
          uint32_t V = 0;
          if (auto It = DefVersion.find(M.AddrReg); It != DefVersion.end())
            V = It->second;
          K = Key{1, B, V, M.AddrReg};
        }
        EquivalentLoadSet &Set = Groups[K];
        Set.LoopIdx = LoopIdx;
        Set.Members.push_back(M);
      }
      if (hasDest(I.Op) && I.Dst != NoReg)
        ++DefVersion[I.Dst];
    }
  }

  std::vector<EquivalentLoadSet> Result;
  Result.reserve(Groups.size());
  for (auto &[K, Set] : Groups) {
    (void)K;
    std::sort(Set.Members.begin(), Set.Members.end(),
              [](const LoadMember &A, const LoadMember &B) {
                if (A.Offset != B.Offset)
                  return A.Offset < B.Offset;
                return A.SiteId < B.SiteId;
              });
    Result.push_back(std::move(Set));
  }
  return Result;
}
