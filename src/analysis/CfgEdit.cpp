//===- analysis/CfgEdit.cpp - CFG editing utilities -------------------------===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgEdit.h"

#include <cassert>

using namespace sprof;

uint32_t sprof::splitEdge(Function &F, const Edge &E) {
  assert(E.From < F.Blocks.size() && "edge source out of range");
  uint32_t Dest = F.Blocks[E.From].successor(E.Slot);

  uint32_t NewBlock = F.newBlock(F.Blocks[E.From].Name + ".split" +
                                 std::to_string(E.Slot));
  Instruction J;
  J.Op = Opcode::Jmp;
  J.Target0 = Dest;
  F.Blocks[NewBlock].Insts.push_back(J);

  F.Blocks[E.From].setSuccessor(E.Slot, NewBlock);
  return NewBlock;
}

EdgePlacement sprof::classifyEdgePlacement(const Function &F, const Edge &E) {
  if (F.Blocks[E.From].numSuccessors() == 1)
    return EdgePlacement::SourceEnd;

  uint32_t Dest = F.Blocks[E.From].successor(E.Slot);
  // The destination must have exactly one incoming edge (counting slots,
  // not just distinct predecessor blocks) and must not be the function
  // entry (which has an implicit incoming edge from the caller).
  if (Dest == F.entryBlock())
    return EdgePlacement::NeedsSplit;
  unsigned IncomingSlots = 0;
  for (uint32_t B = 0, N = static_cast<uint32_t>(F.Blocks.size()); B != N;
       ++B)
    for (unsigned S = 0, SE = F.Blocks[B].numSuccessors(); S != SE; ++S)
      if (F.Blocks[B].successor(S) == Dest)
        ++IncomingSlots;
  return IncomingSlots == 1 ? EdgePlacement::DestTop
                            : EdgePlacement::NeedsSplit;
}
