//===- analysis/CfgEdit.h - CFG editing utilities ---------------*- C++ -*-===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG surgery needed by the instrumentation passes: splitting an edge so a
/// counter increment can live on it (edge profiling), and creating a unique
/// loop preheader (the block-check method of Figure 11 instruments the
/// "loop pre-head block").
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_ANALYSIS_CFGEDIT_H
#define SPROF_ANALYSIS_CFGEDIT_H

#include "ir/Function.h"

#include <cstdint>

namespace sprof {

/// Splits CFG edge \p E of \p F by inserting a fresh empty block (ending in
/// a Jmp to the old destination) between source and destination.
///
/// \returns the index of the new block. Invalidates previously computed
/// analyses (dominators, loops) for \p F.
uint32_t splitEdge(Function &F, const Edge &E);

/// Returns true when instrumentation can be placed "on" edge \p E without
/// splitting: the source has a single successor (insert before its
/// terminator) or the destination has a single predecessor and a single
/// entry slot (insert at its top).
enum class EdgePlacement { SourceEnd, DestTop, NeedsSplit };
EdgePlacement classifyEdgePlacement(const Function &F, const Edge &E);

} // namespace sprof

#endif // SPROF_ANALYSIS_CFGEDIT_H
