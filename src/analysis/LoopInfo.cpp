//===- analysis/LoopInfo.cpp - Natural loops and loop nesting --------------===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace sprof;

bool Loop::contains(uint32_t Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

LoopInfo::LoopInfo(const Function &F, const DomTree &DT) : F(F) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());
  BlockToLoop.assign(N, ~0u);
  Irreducible.assign(N, 0);
  findNaturalLoops(DT);
  buildNesting();
  markIrreducible(DT);
  collectLoopDefs();
}

void LoopInfo::findNaturalLoops(const DomTree &DT) {
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());

  // Collect back edges grouped by header.
  std::vector<std::vector<uint32_t>> LatchesOf(N);
  for (uint32_t B = 0; B != N; ++B) {
    if (!DT.isReachable(B))
      continue;
    for (uint32_t S : F.Blocks[B].successors())
      if (DT.dominates(S, B))
        LatchesOf[S].push_back(B);
  }

  // For each header, the natural loop body is every block that reaches a
  // latch without passing through the header.
  for (uint32_t H = 0; H != N; ++H) {
    if (LatchesOf[H].empty())
      continue;
    std::set<uint32_t> Body;
    Body.insert(H);
    std::vector<uint32_t> Work;
    for (uint32_t L : LatchesOf[H])
      if (Body.insert(L).second)
        Work.push_back(L);
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (uint32_t P : F.predecessors(B))
        if (DT.isReachable(P) && Body.insert(P).second)
          Work.push_back(P);
    }
    Loop L;
    L.Header = H;
    L.Blocks.assign(Body.begin(), Body.end());
    L.Latches = LatchesOf[H];
    Loops.push_back(std::move(L));
  }
}

void LoopInfo::buildNesting() {
  // Order loops by body size so parents (larger) can be found by scanning
  // smaller-to-larger; ties cannot nest in natural loops with distinct
  // headers sharing identical block sets, so any order works for them.
  std::vector<uint32_t> Order(Loops.size());
  for (uint32_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return Loops[A].Blocks.size() < Loops[B].Blocks.size();
  });

  // Parent of L = smallest loop strictly containing L's header other than L.
  for (uint32_t OI = 0; OI != Order.size(); ++OI) {
    uint32_t LI = Order[OI];
    for (uint32_t OJ = OI + 1; OJ != Order.size(); ++OJ) {
      uint32_t PJ = Order[OJ];
      if (Loops[PJ].Blocks.size() > Loops[LI].Blocks.size() &&
          Loops[PJ].contains(Loops[LI].Header)) {
        Loops[LI].Parent = PJ;
        break;
      }
    }
  }

  // Depths.
  for (Loop &L : Loops) {
    uint32_t D = 1;
    for (uint32_t P = L.Parent; P != ~0u; P = Loops[P].Parent)
      ++D;
    L.Depth = D;
  }

  // Innermost loop per block: smallest containing loop.
  for (uint32_t OI = static_cast<uint32_t>(Order.size()); OI-- > 0;) {
    uint32_t LI = Order[OI];
    for (uint32_t B : Loops[LI].Blocks)
      BlockToLoop[B] = LI; // smaller loops assign later and win
  }
}

void LoopInfo::markIrreducible(const DomTree &DT) {
  // A CFG is irreducible iff some DFS retreating edge targets a block that
  // does not dominate the edge source. Mark every block of the strongly
  // connected component containing such an edge as irreducible.
  uint32_t N = static_cast<uint32_t>(F.Blocks.size());

  // Iterative DFS recording "open" (on-stack) status to find retreating
  // edges.
  std::vector<uint8_t> State(N, 0); // 0=new, 1=open, 2=done
  std::vector<std::pair<uint32_t, size_t>> Stack;
  std::vector<std::pair<uint32_t, uint32_t>> BadEdges;
  auto Dfs = [&](uint32_t Root) {
    if (State[Root] != 0)
      return;
    Stack.emplace_back(Root, 0);
    State[Root] = 1;
    while (!Stack.empty()) {
      auto &[Node, Next] = Stack.back();
      auto Succs = F.Blocks[Node].successors();
      if (Next < Succs.size()) {
        uint32_t S = Succs[Next++];
        if (State[S] == 0) {
          State[S] = 1;
          Stack.emplace_back(S, 0);
        } else if (State[S] == 1 && !DT.dominates(S, Node)) {
          BadEdges.emplace_back(Node, S);
        }
        continue;
      }
      State[Node] = 2;
      Stack.pop_back();
    }
  };
  Dfs(F.entryBlock());
  if (BadEdges.empty())
    return;

  // Tarjan SCC to find the cycles containing the offending edges.
  std::vector<uint32_t> SccId(N, ~0u);
  {
    std::vector<uint32_t> Index(N, ~0u), Low(N, 0);
    std::vector<uint8_t> OnStack(N, 0);
    std::vector<uint32_t> SccStack;
    uint32_t NextIndex = 0, NextScc = 0;
    // Iterative Tarjan.
    struct Frame {
      uint32_t Node;
      size_t Next;
    };
    std::vector<Frame> Frames;
    for (uint32_t Root = 0; Root != N; ++Root) {
      if (Index[Root] != ~0u)
        continue;
      Frames.push_back({Root, 0});
      Index[Root] = Low[Root] = NextIndex++;
      SccStack.push_back(Root);
      OnStack[Root] = 1;
      while (!Frames.empty()) {
        Frame &Fr = Frames.back();
        auto Succs = F.Blocks[Fr.Node].successors();
        if (Fr.Next < Succs.size()) {
          uint32_t S = Succs[Fr.Next++];
          if (Index[S] == ~0u) {
            Frames.push_back({S, 0});
            Index[S] = Low[S] = NextIndex++;
            SccStack.push_back(S);
            OnStack[S] = 1;
          } else if (OnStack[S]) {
            Low[Fr.Node] = std::min(Low[Fr.Node], Index[S]);
          }
          continue;
        }
        if (Low[Fr.Node] == Index[Fr.Node]) {
          uint32_t Member;
          do {
            Member = SccStack.back();
            SccStack.pop_back();
            OnStack[Member] = 0;
            SccId[Member] = NextScc;
          } while (Member != Fr.Node);
          ++NextScc;
        }
        uint32_t Done = Fr.Node;
        Frames.pop_back();
        if (!Frames.empty())
          Low[Frames.back().Node] =
              std::min(Low[Frames.back().Node], Low[Done]);
      }
    }
  }

  std::set<uint32_t> BadSccs;
  for (auto [U, V] : BadEdges) {
    if (SccId[U] == SccId[V])
      BadSccs.insert(SccId[U]);
  }
  for (uint32_t B = 0; B != N; ++B)
    if (BadSccs.count(SccId[B]))
      Irreducible[B] = 1;
}

void LoopInfo::collectLoopDefs() {
  LoopDefs.resize(Loops.size());
  for (uint32_t LI = 0; LI != Loops.size(); ++LI) {
    std::set<Reg> Defs;
    for (uint32_t B : Loops[LI].Blocks)
      for (const Instruction &I : F.Blocks[B].Insts)
        if (hasDest(I.Op) && I.Dst != NoReg)
          Defs.insert(I.Dst);
    LoopDefs[LI].assign(Defs.begin(), Defs.end());
  }
}

std::vector<Edge> LoopInfo::enteringEdges(uint32_t LoopIdx) const {
  assert(LoopIdx < Loops.size() && "loop index out of range");
  const Loop &L = Loops[LoopIdx];
  std::vector<Edge> Result;
  for (uint32_t B = 0, N = static_cast<uint32_t>(F.Blocks.size()); B != N;
       ++B) {
    if (L.contains(B))
      continue;
    for (unsigned S = 0, E = F.Blocks[B].numSuccessors(); S != E; ++S)
      if (F.Blocks[B].successor(S) == L.Header)
        Result.push_back(Edge{B, S});
  }
  return Result;
}

std::vector<Edge> LoopInfo::headerOutEdges(uint32_t LoopIdx) const {
  assert(LoopIdx < Loops.size() && "loop index out of range");
  const Loop &L = Loops[LoopIdx];
  std::vector<Edge> Result;
  for (unsigned S = 0, E = F.Blocks[L.Header].numSuccessors(); S != E; ++S)
    Result.push_back(Edge{L.Header, S});
  return Result;
}

bool LoopInfo::isLoopInvariantReg(uint32_t LoopIdx, Reg R) const {
  assert(LoopIdx < Loops.size() && "loop index out of range");
  return !std::binary_search(LoopDefs[LoopIdx].begin(),
                             LoopDefs[LoopIdx].end(), R);
}
