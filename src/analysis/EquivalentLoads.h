//===- analysis/EquivalentLoads.h - Equivalent-load partitioning -*- C++ -*-===//
//
// Part of the StrideProf project (see Dominators.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions a function's loads into equivalence sets per paper Section
/// 2.1: loads in the same loop, in control-equivalent blocks, whose
/// addresses differ only by compile-time constants. The instrumentation
/// passes profile one representative per set; the feedback pass expands a
/// classified representative back to the "cover loads" spanning the cache
/// lines the set touches (Figure 5).
///
/// Address equality is syntactic: two loads match when they use the same
/// address register and that register has at most one defining block inside
/// the loop. This under-approximates true equivalence (safe: loads that
/// fail the test are simply profiled individually).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_ANALYSIS_EQUIVALENTLOADS_H
#define SPROF_ANALYSIS_EQUIVALENTLOADS_H

#include "analysis/ControlEquivalence.h"
#include "analysis/LoopInfo.h"
#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// One member of an equivalence set.
struct LoadMember {
  uint32_t SiteId = NoId;
  uint32_t Block = NoId;
  uint32_t InstIndex = NoId;
  Reg AddrReg = NoReg;
  int64_t Offset = 0;
};

/// A set of equivalent loads. Members are sorted by offset; the
/// representative is the member with the smallest offset.
struct EquivalentLoadSet {
  /// ~0u when the set is outside any loop.
  uint32_t LoopIdx = ~0u;
  std::vector<LoadMember> Members;

  const LoadMember &representative() const { return Members.front(); }

  /// Selects the subset of members whose prefetches cover every cache line
  /// the set touches: one member per distinct Offset / LineBytes bucket
  /// (paper Section 2.2, "cover loads").
  std::vector<LoadMember> coverLoads(uint64_t LineBytes) const;
};

/// Computes the equivalence sets of one function. Every load in the
/// function appears in exactly one set (singleton sets are common).
std::vector<EquivalentLoadSet>
partitionEquivalentLoads(const Function &F, const LoopInfo &LI,
                         const ControlEquivalence &CE);

} // namespace sprof

#endif // SPROF_ANALYSIS_EQUIVALENTLOADS_H
