//===- driver/JobGraph.cpp - Dependency-aware job scheduler ----------------===//
//
// Part of the StrideProf project (see JobGraph.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/JobGraph.h"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace sprof;

JobId JobGraph::add(std::string Name, std::string Category, WorkFn Work,
                    std::vector<JobId> Deps) {
  assert(!Executed && "graph already ran");
  JobId Id = Nodes.size();
  for (JobId Dep : Deps) {
    assert(Dep < Id && "dependency does not exist yet");
    Nodes[Dep].Dependents.push_back(Id);
  }
  Node N;
  N.Name = std::move(Name);
  N.Category = std::move(Category);
  N.Work = std::move(Work);
  N.Deps = std::move(Deps);
  Nodes.push_back(std::move(N));
  return Id;
}

namespace {

/// Shared scheduler state; workers coordinate through one mutex.
struct RunState {
  std::mutex Mu;
  std::condition_variable Ready;
  std::deque<JobId> Queue; ///< jobs whose dependencies all finished
  std::vector<unsigned> Indegree;
  std::vector<JobId> FailedDep; ///< first failed dependency, or NoDep
  size_t Remaining = 0;         ///< jobs not yet finished or skipped
  uint64_t QueueHighWater = 0;  ///< most jobs ever runnable at once
  uint64_t DequeueRetries = 0;  ///< worker wakeups that found no job

  static constexpr JobId NoDep = static_cast<JobId>(-1);
};

uint64_t steadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

std::vector<JobOutcome> JobGraph::run(unsigned Threads) {
  assert(!Executed && "graph already ran");
  Executed = true;
  if (Threads == 0)
    Threads = 1;

  std::vector<JobOutcome> Outcomes(Nodes.size());
  RunState S;
  S.Indegree.resize(Nodes.size());
  S.FailedDep.assign(Nodes.size(), RunState::NoDep);
  S.Remaining = Nodes.size();

  const uint64_t EpochUs = steadyNowUs();

  for (JobId Id = 0; Id != Nodes.size(); ++Id) {
    S.Indegree[Id] = static_cast<unsigned>(Nodes[Id].Deps.size());
    if (S.Indegree[Id] == 0)
      S.Queue.push_back(Id); // ready at run() entry: ReadyUs stays 0
  }
  S.QueueHighWater = S.Queue.size();

  // Called with S.Mu held after a job finished (or was skipped): release
  // the job's dependents, propagating the failure when it failed.
  auto finish = [&](JobId Id, bool Failed) {
    --S.Remaining;
    for (JobId Dep : Nodes[Id].Dependents) {
      if (Failed && S.FailedDep[Dep] == RunState::NoDep)
        S.FailedDep[Dep] = Id;
      if (--S.Indegree[Dep] == 0) {
        Outcomes[Dep].ReadyUs = steadyNowUs() - EpochUs;
        S.Queue.push_back(Dep);
        S.QueueHighWater = std::max<uint64_t>(S.QueueHighWater,
                                              S.Queue.size());
      }
    }
  };

  auto execute = [&](JobId Id, uint32_t Worker) {
    JobOutcome &O = Outcomes[Id];
    O.Worker = Worker;
    O.StartUs = steadyNowUs() - EpochUs;
    O.Ran = true;
    try {
      Nodes[Id].Work(Worker);
      O.Ok = true;
    } catch (const std::exception &E) {
      O.Ok = false;
      O.Error = E.what();
      O.Exception = std::current_exception();
    } catch (...) {
      O.Ok = false;
      O.Error = "unknown exception";
      O.Exception = std::current_exception();
    }
    O.DurationUs = steadyNowUs() - EpochUs - O.StartUs;
  };

  auto skip = [&](JobId Id) {
    JobOutcome &O = Outcomes[Id];
    O.Ran = false;
    O.Ok = false;
    O.StartUs = steadyNowUs() - EpochUs;
    O.Error = "skipped: dependency '" + Nodes[S.FailedDep[Id]].Name +
              "' failed";
  };

  if (Threads == 1 || Nodes.size() <= 1) {
    // Inline execution in deterministic topological order.
    while (!S.Queue.empty()) {
      JobId Id = S.Queue.front();
      S.Queue.pop_front();
      if (S.FailedDep[Id] != RunState::NoDep)
        skip(Id);
      else
        execute(Id, /*Worker=*/0);
      finish(Id, /*Failed=*/!Outcomes[Id].Ok);
    }
    assert(S.Remaining == 0 && "cycle in job graph");
    Sched.QueueDepthHighWater = S.QueueHighWater;
    Sched.DequeueRetries = 0;
    return Outcomes;
  }

  auto worker = [&](uint32_t Worker) {
    std::unique_lock<std::mutex> Lock(S.Mu);
    while (true) {
      if (S.Queue.empty()) {
        if (S.Remaining == 0)
          return; // all done
        S.Ready.wait(Lock);
        // Woke with nothing to take: a spurious wakeup, or another
        // worker drained the queue first. Counted as a dequeue retry.
        if (S.Queue.empty() && S.Remaining != 0)
          ++S.DequeueRetries;
        continue;
      }
      JobId Id = S.Queue.front();
      S.Queue.pop_front();
      if (S.FailedDep[Id] != RunState::NoDep) {
        skip(Id);
        finish(Id, /*Failed=*/true);
        S.Ready.notify_all();
        continue;
      }
      Lock.unlock();
      execute(Id, Worker);
      Lock.lock();
      finish(Id, /*Failed=*/!Outcomes[Id].Ok);
      S.Ready.notify_all();
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (uint32_t WI = 0; WI != Threads; ++WI)
    Pool.emplace_back(worker, WI);
  for (std::thread &T : Pool)
    T.join();
  assert(S.Remaining == 0 && "cycle in job graph");
  Sched.QueueDepthHighWater = S.QueueHighWater;
  Sched.DequeueRetries = S.DequeueRetries;
  return Outcomes;
}
