//===- driver/Engine.cpp - Parallel experiment engine ----------------------===//
//
// Part of the StrideProf project (see Engine.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"

#include "obs/SelfProfiler.h"

#include <string>
#include <utility>

using namespace sprof;

const SweepCell *SweepResult::find(const Workload *W, ProfilingMethod Method,
                                   DataSet ProfileDS,
                                   uint64_t SeedOffset) const {
  for (const SweepCell &Cell : Cells)
    if (Cell.W == W && Cell.Method == Method &&
        Cell.ProfileDS == ProfileDS && Cell.SeedOffset == SeedOffset)
      return &Cell;
  return nullptr;
}

ExperimentEngine::ExperimentEngine(EngineOptions Opts)
    : Opts(std::move(Opts)) {
  if (this->Opts.Threads == 0)
    this->Opts.Threads = 1;
  if (this->Opts.Obs.Enabled)
    Session = std::make_unique<ObsSession>(this->Opts.Obs);
  if (Session && this->Opts.Obs.CollectMetrics && this->Opts.ShardedMetrics)
    Shards = std::make_unique<ShardedMetricsRegistry>(this->Opts.Threads);
}

ExperimentEngine::~ExperimentEngine() = default;

JobId ExperimentEngine::addJob(std::string Name, std::string Category,
                               JobFn Fn, std::vector<JobId> Deps) {
  // One slot per job, indexed by JobId. Capture the index, not an element
  // pointer: later addJob calls may reallocate the vector, and by the time
  // jobs run no further push_back can happen, so JobObs[Index] is stable.
  JobObs.push_back(nullptr);
  const size_t Index = JobObs.size() - 1;
  ObsSession *S = Session.get();
  return Graph.add(
      std::move(Name), std::move(Category),
      [this, S, Index, Fn = std::move(Fn)](uint32_t Worker) {
        ObsSession *Scope = nullptr;
        if (S) {
          JobObs[Index] = std::make_unique<ObsSession>(S->jobConfig());
          Scope = JobObs[Index].get();
        }
        if (!Scope || !Shards) {
          Fn(Scope);
          return;
        }
        // Sharded aggregation: fold this job's counters/histograms into
        // the executing worker's private shard while still on the worker
        // thread -- single shard owner, so no lock is ever contended. The
        // fold must also run when the job throws, mirroring the direct
        // path (which merges failed jobs' partial metrics too).
        MetricsRegistry &Shard = Shards->shard(Worker);
        try {
          Fn(Scope);
        } catch (...) {
          Shard.merge(Scope->registry());
          throw;
        }
        Shard.merge(Scope->registry());
      },
      std::move(Deps));
}

void ExperimentEngine::run() {
  const uint64_t SessionStartUs = Session ? Session->trace().nowUs() : 0;
  Outcomes = Graph.run(Opts.Threads);

  // Fold per-job telemetry in JobId order so the session registry, the
  // trace, and the "jobs" array never depend on completion order.
  if (Session) {
    if (Shards) {
      // Counters and histograms already aggregated lock-free into the
      // worker shards; fold those in shard order (commutative, so the
      // totals are bit-identical to the per-job merge below). Gauges are
      // last-write-wins and get replayed deterministically in the JobId
      // loop.
      Shards->mergeInto(Session->registry());
      Shards->clear();
    }
    for (JobId Id = 0; Id != Outcomes.size(); ++Id) {
      const JobOutcome &O = Outcomes[Id];
      const uint64_t StartUs = SessionStartUs + O.StartUs;
      JobRecord R;
      R.Name = Graph.name(Id);
      R.Category = Graph.category(Id);
      R.StartUs = StartUs;
      R.DurationUs = O.DurationUs;
      R.Worker = O.Worker;
      R.Ok = O.Ok;
      if (!O.Ok)
        R.Error = O.Error;
      if (ObsSession *Scope = JobObs[Id].get()) {
        if (Shards)
          Session->registry().setGaugesFrom(Scope->registry());
        else
          Session->registry().merge(Scope->registry());
        if (EngineSelfProfiler *SessionSP = Session->selfProfiler())
          if (const EngineSelfProfiler *JobSP = Scope->selfProfiler())
            SessionSP->merge(*JobSP);
        R.Metrics = Scope->registry();
        if (O.Ran) {
          Session->trace().appendCompletedSpan(R.Name, R.Category, StartUs,
                                               O.DurationUs, O.Worker,
                                               /*Depth=*/0);
          Session->trace().appendForeign(Scope->trace(), StartUs, O.Worker,
                                         /*DepthBase=*/1);
        }
      }
      Session->recordJob(std::move(R));
    }
  }

  // Reset for the next wave before any rethrow, so a caught failure leaves
  // the engine usable.
  Graph = JobGraph();
  JobObs.clear();

  for (const JobOutcome &O : Outcomes)
    if (O.Exception)
      std::rethrow_exception(O.Exception);
}

SweepResult ExperimentEngine::runSweep(const SweepSpec &Spec) {
  SweepResult Result;
  const size_t CellsPerWorkload = Spec.SeedOffsets.size() *
                                  Spec.Methods.size() *
                                  Spec.ProfileInputs.size();
  Result.Cells.resize(Spec.Workloads.size() * CellsPerWorkload);
  if (Spec.Baseline)
    Result.BaselineCycles.assign(Spec.Workloads.size(), 0);

  size_t Idx = 0;
  for (size_t WI = 0; WI != Spec.Workloads.size(); ++WI) {
    const Workload *W = Spec.Workloads[WI];
    const std::string WName = W->info().Name;

    if (Spec.Baseline) {
      uint64_t *BaseOut = &Result.BaselineCycles[WI];
      addJob("baseline:" + WName, "baseline-job",
             [W, &Spec, BaseOut](ObsSession *JobObs) {
               Pipeline P(*W, Spec.Config, JobObs);
               *BaseOut = P.runBaseline(Spec.FeedbackInput).Cycles;
             });
    }

    for (uint64_t Seed : Spec.SeedOffsets) {
      for (ProfilingMethod Method : Spec.Methods) {
        for (DataSet DS : Spec.ProfileInputs) {
          SweepCell *Cell = &Result.Cells[Idx++];
          Cell->W = W;
          Cell->Method = Method;
          Cell->ProfileDS = DS;
          Cell->SeedOffset = Seed;

          std::string Tag = WName + "/" +
                            profilingMethodName(Method) + "/" +
                            dataSetName(DS);
          if (Seed != 0)
            Tag += "/seed" + std::to_string(Seed);

          JobId RunId = addJob(
              "profile:" + Tag, "run-job",
              [Cell, &Spec](ObsSession *JobObs) {
                PipelineConfig C = Spec.Config;
                C.WorkloadSeedOffset = Cell->SeedOffset;
                Pipeline P(*Cell->W, C, JobObs);
                Cell->Profile = P.runProfile(Cell->Method, Cell->ProfileDS,
                                             Spec.WithMemorySystem);
              });

          if (Spec.Feedback)
            addJob(
                "feedback:" + Tag, "feedback-job",
                [Cell, &Spec](ObsSession *JobObs) {
                  PipelineConfig C = Spec.Config;
                  C.WorkloadSeedOffset = Cell->SeedOffset;
                  Pipeline P(*Cell->W, C, JobObs);
                  Cell->Timed = P.runPrefetched(Spec.FeedbackInput,
                                                Cell->Profile.Edges,
                                                Cell->Profile.Strides);
                  Cell->HasFeedback = true;
                },
                {RunId});
        }
      }
    }
  }

  run();

  if (Spec.Baseline && Spec.Feedback) {
    Idx = 0;
    for (size_t WI = 0; WI != Spec.Workloads.size(); ++WI)
      for (size_t CI = 0; CI != CellsPerWorkload; ++CI, ++Idx) {
        SweepCell &Cell = Result.Cells[Idx];
        if (Cell.HasFeedback && Cell.Timed.Stats.Cycles != 0)
          Cell.Speedup =
              static_cast<double>(Result.BaselineCycles[WI]) /
              static_cast<double>(Cell.Timed.Stats.Cycles);
      }
  }
  return Result;
}

bool ExperimentEngine::writeArtifacts() const {
  return Session ? Session->writeArtifacts() : true;
}
