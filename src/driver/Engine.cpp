//===- driver/Engine.cpp - Parallel experiment engine ----------------------===//
//
// Part of the StrideProf project (see Engine.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "driver/Engine.h"

#include "obs/FlightRecorder.h"
#include "obs/SelfProfiler.h"

#include <string>
#include <utility>

using namespace sprof;

const SweepCell *SweepResult::find(const Workload *W, ProfilingMethod Method,
                                   DataSet ProfileDS,
                                   uint64_t SeedOffset) const {
  for (const SweepCell &Cell : Cells)
    if (Cell.W == W && Cell.Method == Method &&
        Cell.ProfileDS == ProfileDS && Cell.SeedOffset == SeedOffset)
      return &Cell;
  return nullptr;
}

ExperimentEngine::ExperimentEngine(EngineOptions Opts)
    : Opts(std::move(Opts)) {
  if (this->Opts.Threads == 0)
    this->Opts.Threads = 1;
  if (this->Opts.Obs.Enabled)
    Session = std::make_unique<ObsSession>(this->Opts.Obs);
  if (Session && this->Opts.Obs.CollectMetrics && this->Opts.ShardedMetrics)
    Shards = std::make_unique<ShardedMetricsRegistry>(this->Opts.Threads);
  if (this->Opts.Obs.FlightRecorder) {
    Recorder = std::make_unique<FlightRecorder>(
        this->Opts.Threads, this->Opts.Obs.FlightRecorderRingSize);
    if (this->Opts.Obs.FlightRecorderSignals)
      Recorder->installSignalDump(this->Opts.Obs.FlightRecorderDumpPath);
  }
}

ExperimentEngine::~ExperimentEngine() = default;

JobId ExperimentEngine::addJob(std::string Name, std::string Category,
                               JobFn Fn, std::vector<JobId> Deps) {
  // One slot per job, indexed by JobId. Capture the index, not an element
  // pointer: later addJob calls may reallocate the vector, and by the time
  // jobs run no further push_back can happen, so JobObs[Index] is stable.
  JobObs.push_back(nullptr);
  const size_t Index = JobObs.size() - 1;
  ObsSession *S = Session.get();
  // The flight-recorder wrapper needs the job's name after Name moves
  // into the graph node; two small string copies per addJob, not per run.
  std::string FRName = Recorder ? Name : std::string();
  std::string FRDetail = Recorder ? Category : std::string();
  return Graph.add(
      std::move(Name), std::move(Category),
      [this, S, Index, FRName = std::move(FRName),
       FRDetail = std::move(FRDetail),
       Fn = std::move(Fn)](uint32_t Worker) {
        FlightRecorder *FR = Recorder.get();
        if (FR) {
          // Bind the worker thread to its lane so pipeline phase spans
          // inside the job land in the black box as breadcrumbs.
          FR->bindThread(Worker);
          FR->jobStart(Worker, FRName.c_str(), FRDetail.c_str());
        }
        ObsSession *Scope = nullptr;
        if (S) {
          JobObs[Index] = std::make_unique<ObsSession>(S->jobConfig());
          Scope = JobObs[Index].get();
        }
        // Sharded aggregation: fold this job's counters/histograms into
        // the executing worker's private shard while still on the worker
        // thread -- single shard owner, so no lock is ever contended. The
        // fold must also run when the job throws, mirroring the direct
        // path (which merges failed jobs' partial metrics too).
        MetricsRegistry *Shard =
            Scope && Shards ? &Shards->shard(Worker) : nullptr;
        try {
          Fn(Scope);
        } catch (...) {
          if (Shard)
            Shard->merge(Scope->registry());
          if (FR) {
            FR->jobFinish(Worker, FRName.c_str(), /*Ok=*/false);
            FlightRecorder::unbindThread();
          }
          throw;
        }
        if (Shard)
          Shard->merge(Scope->registry());
        if (FR) {
          FR->jobFinish(Worker, FRName.c_str(), /*Ok=*/true);
          FlightRecorder::unbindThread();
        }
      },
      std::move(Deps));
}

void ExperimentEngine::run() {
  const uint64_t SessionStartUs = Session ? Session->trace().nowUs() : 0;
  if (Recorder && Opts.WatchdogSec != 0)
    Recorder->startWatchdog(Opts.WatchdogSec,
                            Opts.Obs.FlightRecorderDumpPath);
  Outcomes = Graph.run(Opts.Threads);
  if (Recorder)
    Recorder->stopWatchdog();

  // Accumulate scheduler accounting across drains: high-water marks max,
  // counts sum, so one engine's sweep report covers every wave it ran.
  const JobSchedStats &GS = Graph.schedStats();
  if (GS.QueueDepthHighWater > SchedStats.QueueDepthHighWater)
    SchedStats.QueueDepthHighWater = GS.QueueDepthHighWater;
  SchedStats.WakeupRetries += GS.DequeueRetries;
  uint64_t Started = 0, Failed = 0, Skipped = 0;
  for (const JobOutcome &O : Outcomes) {
    if (!O.Ran)
      ++Skipped;
    else if (!O.Ok)
      ++Failed;
    if (O.Ran)
      ++Started;
  }
  SchedStats.JobsSkipped += Skipped;

  // Fold per-job telemetry in JobId order so the session registry, the
  // trace, and the "jobs" array never depend on completion order.
  if (Session) {
    if (Shards) {
      // Counters and histograms already aggregated lock-free into the
      // worker shards; fold those in shard order (commutative, so the
      // totals are bit-identical to the per-job merge below). Gauges are
      // last-write-wins and get replayed deterministically in the JobId
      // loop.
      Shards->mergeInto(Session->registry());
      Shards->clear();
    }
    // Job records get session-wide ids: this drain's JobId 0 lands at
    // jobs().size(), so dependency edges stay valid across drains.
    const size_t Base = Session->jobs().size();
    for (JobId Id = 0; Id != Outcomes.size(); ++Id) {
      const JobOutcome &O = Outcomes[Id];
      const uint64_t StartUs = SessionStartUs + O.StartUs;
      JobRecord R;
      R.Id = Base + Id;
      R.Name = Graph.name(Id);
      R.Category = Graph.category(Id);
      for (JobId Dep : Graph.deps(Id))
        R.Deps.push_back(Base + Dep);
      R.ReadyUs = SessionStartUs + O.ReadyUs;
      R.StartUs = StartUs;
      R.DurationUs = O.DurationUs;
      R.Worker = O.Worker;
      R.Ok = O.Ok;
      if (!O.Ok)
        R.Error = O.Error;
      if (ObsSession *Scope = JobObs[Id].get()) {
        if (Shards)
          Session->registry().setGaugesFrom(Scope->registry());
        else
          Session->registry().merge(Scope->registry());
        if (EngineSelfProfiler *SessionSP = Session->selfProfiler())
          if (const EngineSelfProfiler *JobSP = Scope->selfProfiler())
            SessionSP->merge(*JobSP);
        R.Metrics = Scope->registry();
        if (O.Ran) {
          Session->trace().appendCompletedSpan(R.Name, R.Category, StartUs,
                                               O.DurationUs, O.Worker,
                                               /*Depth=*/0);
          Session->trace().appendForeign(Scope->trace(), StartUs, O.Worker,
                                         /*DepthBase=*/1);
        }
      }
      // Causal arrows along the dependency edges: producer finish ->
      // consumer start, each on its worker's lane. Only edges whose both
      // ends actually ran make sense on the timeline.
      if (Session->config().CollectTrace && O.Ran) {
        for (JobId Dep : Graph.deps(Id)) {
          const JobOutcome &D = Outcomes[Dep];
          if (!D.Ran)
            continue;
          Session->trace().appendFlowEdge(
              Graph.name(Dep), SessionStartUs + D.StartUs + D.DurationUs,
              D.Worker, StartUs, O.Worker);
        }
      }
      Session->recordJob(std::move(R));
    }

    // Scheduler telemetry, recorded once per drain after the fold so the
    // values are identical whether the drain ran serial or threaded —
    // except the timing histograms and retry counter, which are
    // inherently wall-clock/schedule dependent (tests comparing
    // serial-vs-N-thread snapshots filter the engine.* namespace).
    if (Session->config().CollectMetrics) {
      MetricsRegistry &Reg = Session->registry();
      Reg.counter("engine.jobs.enqueued").inc(Outcomes.size());
      Reg.counter("engine.jobs.started").inc(Started);
      Reg.counter("engine.jobs.finished").inc(Started);
      Reg.counter("engine.jobs.failed").inc(Failed);
      Reg.counter("engine.jobs.skipped").inc(Skipped);
      Reg.counter("engine.sched.wakeup_retries").inc(GS.DequeueRetries);
      Reg.gauge("engine.sched.queue_depth_high_water")
          .set(static_cast<double>(SchedStats.QueueDepthHighWater));
      Histogram &QueueWait = Reg.histogram("engine.job.queue_wait_us");
      Histogram &RunTime = Reg.histogram("engine.job.run_us");
      for (const JobOutcome &O : Outcomes) {
        if (!O.Ran)
          continue;
        QueueWait.record(O.StartUs > O.ReadyUs ? O.StartUs - O.ReadyUs
                                               : 0);
        RunTime.record(O.DurationUs);
      }
    }
  }

  // Reset for the next wave before any rethrow, so a caught failure leaves
  // the engine usable.
  Graph = JobGraph();
  JobObs.clear();

  for (const JobOutcome &O : Outcomes)
    if (O.Exception)
      std::rethrow_exception(O.Exception);
}

SweepResult ExperimentEngine::runSweep(const SweepSpec &Spec) {
  SweepResult Result;
  const size_t CellsPerWorkload = Spec.SeedOffsets.size() *
                                  Spec.Methods.size() *
                                  Spec.ProfileInputs.size();
  Result.Cells.resize(Spec.Workloads.size() * CellsPerWorkload);
  if (Spec.Baseline)
    Result.BaselineCycles.assign(Spec.Workloads.size(), 0);

  size_t Idx = 0;
  for (size_t WI = 0; WI != Spec.Workloads.size(); ++WI) {
    const Workload *W = Spec.Workloads[WI];
    const std::string WName = W->info().Name;

    if (Spec.Baseline) {
      uint64_t *BaseOut = &Result.BaselineCycles[WI];
      addJob("baseline:" + WName, "baseline-job",
             [W, &Spec, BaseOut](ObsSession *JobObs) {
               Pipeline P(*W, Spec.Config, JobObs);
               *BaseOut = P.runBaseline(Spec.FeedbackInput).Cycles;
             });
    }

    for (uint64_t Seed : Spec.SeedOffsets) {
      for (ProfilingMethod Method : Spec.Methods) {
        for (DataSet DS : Spec.ProfileInputs) {
          SweepCell *Cell = &Result.Cells[Idx++];
          Cell->W = W;
          Cell->Method = Method;
          Cell->ProfileDS = DS;
          Cell->SeedOffset = Seed;

          std::string Tag = WName + "/" +
                            profilingMethodName(Method) + "/" +
                            dataSetName(DS);
          if (Seed != 0)
            Tag += "/seed" + std::to_string(Seed);

          JobId RunId = addJob(
              "profile:" + Tag, "run-job",
              [Cell, &Spec](ObsSession *JobObs) {
                PipelineConfig C = Spec.Config;
                C.WorkloadSeedOffset = Cell->SeedOffset;
                Pipeline P(*Cell->W, C, JobObs);
                Cell->Profile = P.runProfile(Cell->Method, Cell->ProfileDS,
                                             Spec.WithMemorySystem);
              });

          if (Spec.Feedback)
            addJob(
                "feedback:" + Tag, "feedback-job",
                [Cell, &Spec](ObsSession *JobObs) {
                  PipelineConfig C = Spec.Config;
                  C.WorkloadSeedOffset = Cell->SeedOffset;
                  Pipeline P(*Cell->W, C, JobObs);
                  Cell->Timed = P.runPrefetched(Spec.FeedbackInput,
                                                Cell->Profile.Edges,
                                                Cell->Profile.Strides);
                  Cell->HasFeedback = true;
                },
                {RunId});
        }
      }
    }
  }

  run();

  if (Spec.Baseline && Spec.Feedback) {
    Idx = 0;
    for (size_t WI = 0; WI != Spec.Workloads.size(); ++WI)
      for (size_t CI = 0; CI != CellsPerWorkload; ++CI, ++Idx) {
        SweepCell &Cell = Result.Cells[Idx];
        if (Cell.HasFeedback && Cell.Timed.Stats.Cycles != 0)
          Cell.Speedup =
              static_cast<double>(Result.BaselineCycles[WI]) /
              static_cast<double>(Cell.Timed.Stats.Cycles);
      }
  }
  return Result;
}

JsonValue ExperimentEngine::sweepReport(size_t StragglerTopN) const {
  return buildSweepReport(Session ? Session->jobs()
                                  : std::vector<JobRecord>{},
                          Opts.Threads, SchedStats, /*WallUs=*/0,
                          StragglerTopN);
}

bool ExperimentEngine::writeArtifacts() const {
  bool Ok = Session ? Session->writeArtifacts() : true;
  if (Session && !Opts.Obs.SweepReportOutputPath.empty())
    Ok &= writeJsonFile(Opts.Obs.SweepReportOutputPath, sweepReport());
  return Ok;
}
