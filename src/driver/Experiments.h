//===- driver/Experiments.h - Shared experiment helpers ---------*- C++ -*-===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the bench binaries that regenerate the paper's tables
/// and figures: cached per-benchmark measurement bundles and the paper's
/// published reference numbers for side-by-side output.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_DRIVER_EXPERIMENTS_H
#define SPROF_DRIVER_EXPERIMENTS_H

#include "driver/Engine.h"
#include "driver/Pipeline.h"
#include "obs/Json.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sprof {

/// Everything Figure 16 needs for one benchmark and one profiling method.
struct MethodMeasurement {
  double Speedup = 1.0;
  uint64_t ProfiledCycles = 0;   ///< instrumented train-run cycles
  uint64_t StrideInvocations = 0;
  uint64_t StrideProcessed = 0;
  uint64_t LfuCalls = 0;
  uint64_t TrainLoadRefs = 0;    ///< total dynamic loads in the train run
  uint64_t PrefetchedRefCycles = 0; ///< prefetched ref-run cycles
  PrefetchInsertionStats Prefetches;
  /// Cache/prefetch accounting of the prefetched reference run
  /// (coverage/accuracy tables).
  MemoryStats RefMemory;
};

/// Per-benchmark measurement bundle reused across figures.
struct BenchMeasurement {
  std::string Name;
  uint64_t BaselineRefCycles = 0;
  uint64_t EdgeOnlyTrainCycles = 0;
  std::map<ProfilingMethod, MethodMeasurement> Methods;
};

/// Runs the Figure 16/20/21/22 measurement set for one workload: an
/// edge-only train run, a baseline ref run, and per stride method one
/// instrumented train run plus one prefetched ref run.
///
/// \p Methods defaults to the paper's six stride methods.
BenchMeasurement measureBenchmark(
    const Workload &W, const PipelineConfig &Config = {},
    const std::vector<ProfilingMethod> &Methods = paperStrideMethods());

/// One row of Figures 18/19: shares of *all* dynamic load references that
/// come from loads of each stride class, restricted to out-loop (Figure
/// 18) or in-loop (Figure 19) loads. Classified from a naive-all profile
/// with no frequency/trip filtering, like the paper's population figures.
struct PopulationRow {
  std::string Bench;
  double SsstPct = 0, PmstPct = 0, WsstPct = 0, NonePct = 0;
};

PopulationRow classifyLoadPopulation(const Workload &W, bool InLoopWanted,
                                     const PipelineConfig &Config = {});

/// Figure 23-25 sensitivity bundle: speedups of four binaries built from
/// the cross product of edge/stride profiles collected on the train and
/// reference inputs, all measured on the reference input with
/// sample-edge-check profiling (paper Section 4.3).
struct SensitivityMeasurement {
  std::string Name;
  double Train = 1.0;              ///< edge.train + stride.train
  double Ref = 1.0;                ///< edge.ref + stride.ref
  double EdgeRefStrideTrain = 1.0; ///< edge.ref + stride.train
  double EdgeTrainStrideRef = 1.0; ///< edge.train + stride.ref
};

SensitivityMeasurement measureSensitivity(const Workload &W,
                                          const PipelineConfig &Config = {});

// -- Engine-based suite drivers -------------------------------------------
//
// Each expands the whole suite into one job graph on \p Engine, so
// independent runs overlap across the engine's worker threads. Results are
// identical to looping the single-workload helpers above, for any thread
// count (every job rebuilds its own Program and owns its seed).

/// Borrow raw pointers from an owning suite (makeSpecIntSuite) for the
/// duration of an engine call.
std::vector<const Workload *>
workloadPointers(const std::vector<std::unique_ptr<Workload>> &Suite);

std::vector<BenchMeasurement> measureSuite(
    ExperimentEngine &Engine, const std::vector<const Workload *> &Workloads,
    const PipelineConfig &Config = {},
    const std::vector<ProfilingMethod> &Methods = paperStrideMethods());

std::vector<PopulationRow>
classifySuitePopulation(ExperimentEngine &Engine,
                        const std::vector<const Workload *> &Workloads,
                        bool InLoopWanted, const PipelineConfig &Config = {});

std::vector<SensitivityMeasurement>
measureSuiteSensitivity(ExperimentEngine &Engine,
                        const std::vector<const Workload *> &Workloads,
                        const PipelineConfig &Config = {});

/// One Figure-15 row: uninstrumented run accounting on both inputs.
struct BaselineMeasurement {
  WorkloadInfo Info;
  RunStats Train;
  RunStats Ref;
};

std::vector<BaselineMeasurement>
measureSuiteBaselines(ExperimentEngine &Engine,
                      const std::vector<const Workload *> &Workloads,
                      const PipelineConfig &Config = {});

/// Machine-readable bench output. The bundles serialize under the stable
/// schema "sprof.bench_report/1"; every figure bench can emit its raw
/// measurements so downstream tooling (plots, regression gates) need not
/// scrape the tables.
JsonValue methodMeasurementToJson(const MethodMeasurement &M);
JsonValue benchMeasurementToJson(const BenchMeasurement &BM);
JsonValue baselineMeasurementToJson(const BaselineMeasurement &BM);
JsonValue populationRowToJson(const PopulationRow &R);
JsonValue sensitivityMeasurementToJson(const SensitivityMeasurement &M);

/// Writes {"schema", "figure", "benchmarks": [...]} to \p Path.
/// \returns false (and prints to stderr) when the file cannot be written.
bool writeBenchReport(const std::string &Path, const std::string &Figure,
                      const std::vector<BenchMeasurement> &Measurements);

/// Generic variant of writeBenchReport for figures whose rows are not
/// BenchMeasurements: writes {"schema", "figure", "rows": \p Rows} under
/// the same "sprof.bench_report/1" schema. \returns false (and prints the
/// path and failure to stderr) when the file cannot be written; callers
/// exit nonzero on failure so CI catches silently-missing artifacts.
bool writeBenchRows(const std::string &Path, const std::string &Figure,
                    JsonValue Rows);

/// Shared bench CLI convention: `--json=PATH` overrides \p DefaultPath and
/// `--no-json` disables the report (returns nullopt). Unknown arguments
/// are ignored.
std::optional<std::string> benchReportPath(int Argc, char **Argv,
                                           const std::string &DefaultPath);

/// The shared tail of every bench main: resolve the report path from the
/// CLI (benchReportPath), serialize, and map the outcome onto the process
/// exit code -- 0 when the report was written or disabled (`--no-json`),
/// 1 when it could not be written. One overload per row flavour; both
/// funnel into writeBenchReport/writeBenchRows so every bench keeps the
/// same schema and failure behaviour without hand-rolling the idiom.
int emitBenchReport(int Argc, char **Argv, const std::string &DefaultPath,
                    const std::string &Figure,
                    const std::vector<BenchMeasurement> &Measurements);
int emitBenchReport(int Argc, char **Argv, const std::string &DefaultPath,
                    const std::string &Figure, JsonValue Rows);

/// Shared bench CLI convention: `--threads=N` or `--threads N` selects the
/// engine's worker count (results are thread-count-invariant; this only
/// changes wall-clock time). Invalid or missing values fall back to
/// \p Default.
unsigned benchThreads(int Argc, char **Argv, unsigned Default = 1);

/// Paper-published Figure 16 speedups (edge-check) where the text gives
/// them explicitly; nullopt elsewhere.
std::optional<double> paperFig16Speedup(const std::string &Bench);

/// Paper-published Figure 20 average overheads per method.
std::optional<double> paperFig20Overhead(ProfilingMethod Method);

/// Paper-published Figure 21 average strideProf-processed percentages.
std::optional<double> paperFig21Processed(ProfilingMethod Method);

} // namespace sprof

#endif // SPROF_DRIVER_EXPERIMENTS_H
