//===- driver/ParallelReplay.cpp - Trace-sharded parallel replay ----------===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/ParallelReplay.h"

#include "driver/JobGraph.h"
#include "obs/Obs.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace sprof {

namespace {

/// One bucketed load: everything profileAt() needs, including the load's
/// global position (LoadIndex drives the chunk-sampling phase).
struct IndexedLoad {
  uint64_t Address;
  uint64_t GlobalRef;
  uint64_t LoadIndex;
  uint32_t SiteId;
};

/// What one profile shard produced; folded in job-id order.
struct ShardRun {
  uint64_t Cycles = 0;
  uint64_t Invocations = 0;
  uint64_t Processed = 0;
  uint64_t LfuCalls = 0;
  StrideProfile Strides;
};

} // namespace

ShardedProfileResult profileEventsSharded(AccessSource &Src,
                                          const StrideProfilerConfig &PC,
                                          unsigned Threads, unsigned Shards,
                                          ObsSession *Obs) {
  ShardedProfileResult R;
  const uint32_t NumSites = Src.numSites();
  if (Threads == 0)
    Threads = 1;
  if (Shards == 0)
    Shards = Threads;
  if (NumSites != 0 && Shards > NumSites)
    Shards = NumSites;
  if (Shards == 0)
    Shards = 1;
  R.ShardsUsed = Shards;

  // Serial bucketing pass: site-partition the loads, preserving per-site
  // program order and each load's 0-based global position. A few ns per
  // event -- negligible next to the parallelized decode and profile work.
  std::vector<std::vector<IndexedLoad>> Buckets(Shards);
  {
    std::vector<AccessEvent> Buf(4096);
    uint64_t LoadIndex = 0;
    while (size_t N = Src.pull(Buf.data(), Buf.size())) {
      for (size_t I = 0; I != N; ++I) {
        const AccessEvent &E = Buf[I];
        // strideProf only ever sees demand loads (see
        // StrideProfiler::consume, whose filter this mirrors).
        if (E.Kind != AccessKind::Load)
          continue;
        Buckets[E.SiteId % Shards].push_back(
            {E.Address, E.GlobalRefIndex, LoadIndex, E.SiteId});
        ++LoadIndex;
      }
    }
  }

  // One job per shard: a private full-size profiler (sites index directly)
  // fed its sites' loads in order, against a private obs scope.
  const uint64_t SessionStartUs = Obs ? Obs->trace().nowUs() : 0;
  std::vector<ShardRun> Runs(Shards);
  std::vector<std::unique_ptr<ObsSession>> ShardObs(Shards);
  JobGraph G;
  for (unsigned S = 0; S != Shards; ++S) {
    G.add("profile-shard-" + std::to_string(S), "replay-profile-job",
          [&, S](uint32_t) {
            ObsSession *Scope = nullptr;
            if (Obs) {
              ShardObs[S] = std::make_unique<ObsSession>(Obs->jobConfig());
              Scope = ShardObs[S].get();
            }
            StrideProfiler P(NumSites, PC);
            P.attachObs(Scope);
            ShardRun &Out = Runs[S];
            for (const IndexedLoad &L : Buckets[S])
              Out.Cycles +=
                  P.profileAt(L.SiteId, L.Address, L.GlobalRef, L.LoadIndex);
            Out.Invocations = P.totalInvocations();
            Out.Processed = P.totalProcessed();
            Out.LfuCalls = P.totalLfuCalls();
            Out.Strides = StrideProfile::fromProfiler(P);
          });
  }
  const std::vector<JobOutcome> Outcomes = G.run(Threads);

  // Job-id-ordered fold (the ShardedMetricsRegistry discipline): profile
  // scalars sum, per-site stride tables union into an empty profile --
  // shards own disjoint site sets, so the fold is a verbatim ordered copy
  // of each shard's tables and no re-sort or truncation is needed.
  R.Strides = StrideProfile(NumSites);
  const size_t JobBase = Obs ? Obs->jobs().size() : 0;
  for (unsigned S = 0; S != Shards; ++S) {
    const JobOutcome &O = Outcomes[S];
    if (!O.Ok) {
      R.Ok = false;
      R.Error = "profile shard " + std::to_string(S) + " failed: " + O.Error;
      return R;
    }
    R.RuntimeCycles += Runs[S].Cycles;
    R.Invocations += Runs[S].Invocations;
    R.Processed += Runs[S].Processed;
    R.LfuCalls += Runs[S].LfuCalls;
    mergeStrideProfile(R.Strides, Runs[S].Strides);
    if (ObsSession *Scope = ShardObs[S].get()) {
      Obs->registry().merge(Scope->registry());
      JobRecord Rec;
      Rec.Id = JobBase + S;
      Rec.Name = G.name(S);
      Rec.Category = G.category(S);
      Rec.ReadyUs = SessionStartUs + O.ReadyUs;
      Rec.StartUs = SessionStartUs + O.StartUs;
      Rec.DurationUs = O.DurationUs;
      Rec.Worker = O.Worker;
      Rec.Ok = true;
      Rec.Metrics = Scope->registry();
      Obs->trace().appendCompletedSpan(Rec.Name, Rec.Category, Rec.StartUs,
                                       O.DurationUs, O.Worker, /*Depth=*/0);
      Obs->recordJob(std::move(Rec));
    }
  }
  if (Obs) {
    if (Counter *C = Obs->counter("replay.parallel_runs"))
      C->inc();
    if (Counter *C = Obs->counter("replay.profile_shards"))
      C->inc(Shards);
  }
  R.Ok = true;
  return R;
}

bool decodeTraceParallel(const std::string &Path, const TraceReader &R,
                         unsigned Threads, std::vector<AccessEvent> &Events,
                         std::string &Error, TraceError &Code) {
  const TraceShardIndex &Idx = R.index();
  assert(Idx.Present && "decodeTraceParallel needs an indexed reader");
  Events.clear();
  Events.resize(Idx.TotalEvents);
  const size_t NumChunks = Idx.numChunks();
  if (NumChunks == 0)
    return true;
  if (Threads == 0)
    Threads = 1;

  // Contiguous chunk ranges, a few per worker so the pool load-balances
  // when ranges decode at different speeds.
  const size_t NumJobs = std::min<size_t>(
      NumChunks, std::max<size_t>(1, static_cast<size_t>(Threads) * 4));
  const size_t PerJob = (NumChunks + NumJobs - 1) / NumJobs;

  struct JobFailure {
    bool Failed = false;
    std::string Msg;
    TraceError Code = TraceError::None;
  };
  std::vector<JobFailure> Failures((NumChunks + PerJob - 1) / PerJob);

  JobGraph G;
  size_t J = 0;
  for (size_t First = 0; First < NumChunks; First += PerJob, ++J) {
    const size_t N = std::min(PerJob, NumChunks - First);
    G.add("decode-chunks-" + std::to_string(First) + "-" +
              std::to_string(First + N),
          "replay-decode-job", [&, First, N, J](uint32_t) {
            JobFailure &F = Failures[J];
            auto SR = TraceReader::openShard(Path, Idx, First, N);
            const uint64_t Base = Idx.Chunks[First].CumEvents;
            const uint64_t Want =
                (First + N < NumChunks ? Idx.Chunks[First + N].CumEvents
                                       : Idx.TotalEvents) -
                Base;
            AccessEvent *Out = Events.data() + Base;
            uint64_t Got = 0;
            while (Got < Want) {
              const size_t K = SR->pull(Out + Got, Want - Got);
              if (K == 0)
                break;
              Got += K;
            }
            // One pull past the end drives the reader's byte-boundary
            // cross-check (it fires on the pull after the last event).
            AccessEvent Tail;
            if (SR->ok() && SR->pull(&Tail, 1) != 0) {
              F = {true,
                   Path + ": shard over chunks [" + std::to_string(First) +
                       ", " + std::to_string(First + N) +
                       ") decoded more events than the index promised",
                   TraceError::Corrupt};
              return;
            }
            if (!SR->ok()) {
              F = {true, SR->error(), SR->errorCode()};
              return;
            }
            if (Got != Want || !SR->atEnd()) {
              F = {true,
                   Path + ": shard over chunks [" + std::to_string(First) +
                       ", " + std::to_string(First + N) + ") decoded " +
                       std::to_string(Got) + " events, index promised " +
                       std::to_string(Want),
                   TraceError::Corrupt};
              return;
            }
            // Cross-check the index's load counts against the decode:
            // carried-state corruption that still lands on the right byte
            // boundary shows up here.
            uint64_t Loads = 0;
            for (uint64_t I = 0; I != Want; ++I)
              if (Out[I].Kind == AccessKind::Load)
                ++Loads;
            const uint64_t WantLoads =
                (First + N < NumChunks ? Idx.Chunks[First + N].CumLoads
                                       : Idx.TotalLoads) -
                Idx.Chunks[First].CumLoads;
            if (Loads != WantLoads)
              F = {true,
                   Path + ": shard over chunks [" + std::to_string(First) +
                       ", " + std::to_string(First + N) + ") decoded " +
                       std::to_string(Loads) + " loads, index promised " +
                       std::to_string(WantLoads),
                   TraceError::Corrupt};
          });
  }
  const std::vector<JobOutcome> Outcomes = G.run(Threads);

  for (size_t I = 0; I != Failures.size(); ++I) {
    if (Failures[I].Failed) {
      Error = Failures[I].Msg;
      Code = Failures[I].Code;
      return false;
    }
    if (!Outcomes[I].Ok) {
      Error = "decode job " + std::to_string(I) + " failed: " +
              Outcomes[I].Error;
      Code = TraceError::Io;
      return false;
    }
  }
  return true;
}

TraceReplayResult replayTraceFileParallel(const std::string &Path,
                                          const TraceReplayOptions &Opts) {
  auto Reader = TraceReader::openFileIndexed(Path);
  if (!Reader->ok()) {
    TraceReplayResult R;
    R.Source = Path;
    R.Error = Reader->error();
    R.ErrorCode = Reader->errorCode();
    return R;
  }

  std::vector<AccessEvent> Events;
  if (Reader->index().Present) {
    std::string DecErr;
    TraceError DecCode = TraceError::None;
    if (!decodeTraceParallel(Path, *Reader, Opts.Threads, Events, DecErr,
                             DecCode)) {
      TraceReplayResult R;
      R.Source = Path;
      R.Error = DecErr;
      R.ErrorCode = DecCode;
      return R;
    }
  } else {
    // /1 and text traces carry no index: serial decode on the already-open
    // reader (positioned right after the header). The profile phase still
    // shards across Opts.Threads.
    std::vector<AccessEvent> Buf(4096);
    while (size_t N = Reader->pull(Buf.data(), Buf.size()))
      Events.insert(Events.end(), Buf.begin(), Buf.begin() + N);
    if (!Reader->ok()) {
      TraceReplayResult R;
      R.Source = Path;
      R.Error = Reader->error();
      R.ErrorCode = Reader->errorCode();
      return R;
    }
  }

  TraceReplayOptions O = Opts;
  if (!O.Method && !Reader->provenance().Method.empty()) {
    ProfilingMethod M;
    if (profilingMethodFromName(Reader->provenance().Method, M))
      O.Method = M;
  }

  const uint64_t Total = Events.size();
  VectorSource Src(std::move(Events), Reader->numSites(), Path);
  TraceReplayResult R = replayStream(Src, O, Path, &Reader->edgeSection(),
                                     &Reader->provenance());
  R.Events = Total;
  return R;
}

} // namespace sprof
