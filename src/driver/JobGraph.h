//===- driver/JobGraph.h - Dependency-aware job scheduler -------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small DAG scheduler: jobs are closures with explicit dependencies,
/// executed by a fixed-size thread pool. The experiment engine builds one
/// graph per sweep — independent profile runs fan out across workers,
/// feedback runs wait on the profile they consume.
///
/// Scheduling affects only wall-clock time, never results: every job must
/// be self-contained (jobs here share no mutable state; each engine job
/// rebuilds its own Program and owns its RNG seed), so an N-thread run is
/// bit-identical to the serial one. With Threads == 1 the graph executes
/// inline on the calling thread in deterministic topological (insertion)
/// order; with more threads, ready jobs are handed to workers in the same
/// order, and only completion order varies.
///
/// A job that throws fails alone: the exception is captured per job
/// (std::exception_ptr), its transitive dependents are skipped, and every
/// other job still runs. The caller inspects the outcome vector.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_DRIVER_JOBGRAPH_H
#define SPROF_DRIVER_JOBGRAPH_H

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

namespace sprof {

/// Index of a job within its graph; add() hands them out densely from 0.
using JobId = size_t;

/// What happened to one job. Timestamps are microseconds on a steady
/// clock anchored at JobGraph::run() entry, so callers can shift them
/// onto any other clock.
struct JobOutcome {
  bool Ran = false; ///< false when skipped (failed dependency)
  bool Ok = false;
  std::string Error;            ///< failure or skip reason when !Ok
  std::exception_ptr Exception; ///< set when the job itself threw
  /// When the job became runnable (all dependencies finished) and entered
  /// the ready queue; 0 for root jobs, which are ready at run() entry.
  /// StartUs - ReadyUs is the time the job spent waiting for a worker, so
  /// queue wait and run time are separable in sweep traces.
  uint64_t ReadyUs = 0;
  uint64_t StartUs = 0;
  uint64_t DurationUs = 0;
  uint32_t Worker = 0; ///< worker lane that ran the job
};

/// Scheduler-side accounting of one JobGraph::run(). Pure observability:
/// none of these values feed back into scheduling decisions.
struct JobSchedStats {
  /// Most jobs simultaneously sitting in the ready queue (runnable but
  /// not yet picked up by a worker). A high-water mark near the job count
  /// means the pool was the bottleneck; near the thread count means
  /// dependencies were.
  uint64_t QueueDepthHighWater = 0;
  /// Times a worker woke from the ready condition and found no job to
  /// take (the retry path of the dequeue loop: spurious wakeups plus
  /// notify_all races lost to a faster worker). Always 0 serial.
  uint64_t DequeueRetries = 0;
};

/// A DAG of jobs. Build with add() (dependencies must already be in the
/// graph, so insertion order is a topological order by construction), then
/// execute with run(). The graph is single-use: run() may be called once.
class JobGraph {
public:
  /// The work closure; \p Worker is the executing worker's index
  /// (0..Threads-1), stable for the duration of the job.
  using WorkFn = std::function<void(uint32_t Worker)>;

  /// Adds a job depending on \p Deps (each must be a previously returned
  /// id). Returns the new job's id.
  JobId add(std::string Name, std::string Category, WorkFn Work,
            std::vector<JobId> Deps = {});

  size_t size() const { return Nodes.size(); }
  const std::string &name(JobId Id) const { return Nodes[Id].Name; }
  const std::string &category(JobId Id) const { return Nodes[Id].Category; }
  const std::vector<JobId> &deps(JobId Id) const { return Nodes[Id].Deps; }

  /// Executes every job on \p Threads workers (clamped to at least 1) and
  /// returns one outcome per job, indexed by JobId. Does not throw on job
  /// failure; see JobOutcome.
  std::vector<JobOutcome> run(unsigned Threads);

  /// Scheduler accounting of the most recent run().
  const JobSchedStats &schedStats() const { return Sched; }

private:
  struct Node {
    std::string Name;
    std::string Category;
    WorkFn Work;
    std::vector<JobId> Deps;
    std::vector<JobId> Dependents; ///< reverse edges, built in add()
  };

  std::vector<Node> Nodes;
  JobSchedStats Sched;
  bool Executed = false;
};

} // namespace sprof

#endif // SPROF_DRIVER_JOBGRAPH_H
