//===- driver/TraceReplay.h - Trace-replay frontend -------------*- C++ -*-===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace-replay frontend: feeds a captured (or externally generated)
/// access trace through the full profile -> classify -> prefetch-evaluation
/// pipeline without re-executing the program that produced it.
///
/// Replay fidelity (docs/TRACE.md): a trace captured by a live profile run
/// records the complete pre-sampling strideProf invocation stream plus the
/// harvested edge profile, so replaying it under the same profiler
/// configuration reproduces the stride profile, classifier decisions, and
/// -- when the capturing workload can be rebuilt (workload builds are
/// deterministic) -- the prefetched run's cycle accounting and attribution
/// counters bit for bit.
///
/// Traces with no known workload (external captures, synthetic streams)
/// still get the stream-only path: stride profiling, per-site
/// classification, and a cache-model evaluation that replays the stream
/// twice -- demand-only, then with prefetches synthesized for classified
/// sites -- through MemoryHierarchy's stream entry point.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_DRIVER_TRACEREPLAY_H
#define SPROF_DRIVER_TRACEREPLAY_H

#include "driver/Pipeline.h"
#include "stream/TraceFile.h"

#include <optional>
#include <string>

namespace sprof {

/// Converts a harvested edge profile into the opaque tuples a trace file
/// stores (and back). Lossless both ways.
TraceEdgeSection edgeSectionFromProfile(const EdgeProfile &EP);
EdgeProfile edgeProfileFromSection(const TraceEdgeSection &S);

/// Everything configurable about a replay.
struct TraceReplayOptions {
  /// Profiler / classifier / memsys / timing configuration; the same
  /// knobs a live Pipeline takes. Capture fields are ignored.
  PipelineConfig Config;
  /// Profiling method for the replayed profile phase. Unset means "the
  /// method the trace records", falling back to edge-check for traces
  /// with no recorded method.
  std::optional<ProfilingMethod> Method;
  /// Rebuild the capturing workload (when the trace names one we know)
  /// and run the full prefetch evaluation: classify, insert prefetches,
  /// timed run vs baseline, attribution.
  bool EvaluateWorkload = true;
  /// Drive the cache model from the stream itself (works for any trace):
  /// a demand-only pass and a pass with synthesized prefetches for
  /// classified sites.
  bool SimulateMemory = true;
  /// Prefetch distance (in strides) of the synthesized stream prefetches.
  unsigned StreamPrefetchDistance = 4;
  /// Worker threads for the replay. 1 (the default) is the fully serial
  /// path; more fans the decode out over the trace's shard index (/2
  /// traces) and the profile phase over site-sharded profilers
  /// (driver/ParallelReplay.h), with results bit-identical to serial.
  /// The memory-simulation passes always run serially (cache state is
  /// order-dependent).
  unsigned Threads = 1;
  /// Site-shard count of the parallel profile phase; 0 means one shard
  /// per thread. The merged profile is identical for any value.
  unsigned ProfileShards = 0;
};

/// Everything a replay produces.
struct TraceReplayResult {
  /// False when the trace could not be read; Error/ErrorCode say why.
  bool Ok = false;
  std::string Error;
  TraceError ErrorCode = TraceError::None;

  /// Trace identity.
  std::string Source;
  TraceProvenance Prov;
  uint32_t NumSites = 0;
  uint64_t Events = 0;

  /// Replayed profile phase (Strides always; Edges from the trace's edge
  /// section when present).
  ProfilingMethod Method = ProfilingMethod::EdgeCheck;
  ProfileRunResult Profile;

  /// Stream-only classification: per-site stride class with no
  /// frequency/trip filtering (classifyStrideSummary). Indexed by SiteId.
  std::vector<StrideClass> SiteClass;

  /// Full workload evaluation (EvaluateWorkload and the workload was
  /// rebuilt): bit-identical to the live pipeline fed the same profiles.
  bool HasWorkload = false;
  RunStats Baseline;
  TimedRunResult Timed;
  double Speedup = 0.0;

  /// Stream-driven cache simulation (SimulateMemory).
  bool HasMemSim = false;
  StreamReplayStats MemBaseline;
  StreamReplayStats MemPrefetched;
  MemoryStats MemBaselineStats;
  MemoryStats MemPrefetchedStats;
};

/// Replays \p Src (any access source) under \p Opts. \p SourceName labels
/// the result; \p Edges, when non-null, plays the role of the trace's
/// edge section, and \p Prov of its provenance header (which is what
/// names the workload to rebuild). The source must support reset() for
/// the passes beyond the first (profile, then the optional memory
/// passes).
TraceReplayResult replayStream(AccessSource &Src,
                               const TraceReplayOptions &Opts = {},
                               const std::string &SourceName = "<stream>",
                               const TraceEdgeSection *Edges = nullptr,
                               const TraceProvenance *Prov = nullptr);

/// Opens \p Path as a sprof.trace file and replays it. Read errors
/// (unreadable, truncated, version mismatch, corrupt) come back in the
/// result with Ok == false.
TraceReplayResult replayTraceFile(const std::string &Path,
                                  const TraceReplayOptions &Opts = {});

} // namespace sprof

#endif // SPROF_DRIVER_TRACEREPLAY_H
