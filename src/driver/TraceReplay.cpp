//===- driver/TraceReplay.cpp - Trace-replay frontend ---------------------===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/TraceReplay.h"

#include "driver/ParallelReplay.h"
#include "workloads/Workload.h"

#include <cassert>

namespace sprof {

TraceEdgeSection edgeSectionFromProfile(const EdgeProfile &EP) {
  TraceEdgeSection S;
  S.Present = true;
  S.NumFunctions = static_cast<uint32_t>(EP.numFunctions());
  for (uint32_t F = 0; F != S.NumFunctions; ++F) {
    // Zero counts are recorded too: a replayed EdgeProfile must compare
    // equal to the harvested one entry for entry, not just value for
    // value, so the classifier sees the identical structure.
    S.Entries.push_back({F, EP.entryCount(F)});
    for (const auto &[E, Count] : EP.functionEdges(F))
      S.Edges.push_back({F, E.From, static_cast<uint32_t>(E.Slot), Count});
  }
  return S;
}

EdgeProfile edgeProfileFromSection(const TraceEdgeSection &S) {
  EdgeProfile EP(S.NumFunctions);
  for (const TraceEntryRecord &R : S.Entries)
    EP.setEntryCount(R.Func, R.Count);
  for (const TraceEdgeRecord &R : S.Edges)
    EP.setFrequency(R.Func, Edge{R.From, R.Slot}, R.Count);
  return EP;
}

namespace {

/// The prefetched stream pass: every Load event at a site with a
/// synthesized stride additionally issues a prefetch StrideValue *
/// Distance bytes ahead, mimicking the in-loop prefetch the compiler
/// would have inserted (Figure 3).
StreamReplayStats replayWithSyntheticPrefetch(
    MemoryHierarchy &MH, AccessSource &Src, const StreamReplayConfig &Config,
    const std::vector<int64_t> &SiteStride, unsigned Distance) {
  StreamReplayStats S;
  std::vector<AccessEvent> Buf(Config.BatchSize ? Config.BatchSize : 1);
  uint64_t Now = 0;
  while (size_t N = Src.pull(Buf.data(), Buf.size())) {
    for (size_t I = 0; I < N; ++I) {
      const AccessEvent &E = Buf[I];
      Now += Config.IssueCost;
      if (E.Kind == AccessKind::Prefetch) {
        MH.prefetch(E.Address, Now, E.SiteId);
        ++S.Prefetches;
      } else {
        const uint64_t Latency = MH.demandAccess(E.Address, Now, E.SiteId);
        const uint64_t Stall =
            Latency > Config.HiddenLatency ? Latency - Config.HiddenLatency
                                           : 0;
        Now += Stall;
        S.StallCycles += Stall;
        ++S.Loads;
        const int64_t Stride =
            E.SiteId < SiteStride.size() ? SiteStride[E.SiteId] : 0;
        if (Stride != 0) {
          Now += Config.IssueCost;
          MH.prefetch(E.Address +
                          static_cast<uint64_t>(Stride) * Distance,
                      Now, E.SiteId);
          ++S.Prefetches;
        }
      }
      ++S.Events;
    }
  }
  S.Cycles = Now;
  return S;
}

} // namespace

TraceReplayResult replayStream(AccessSource &Src,
                               const TraceReplayOptions &Opts,
                               const std::string &SourceName,
                               const TraceEdgeSection *Edges,
                               const TraceProvenance *Prov) {
  TraceReplayResult R;
  R.Source = SourceName;
  if (Prov)
    R.Prov = *Prov;
  R.NumSites = Src.numSites();
  R.Method = Opts.Method.value_or(ProfilingMethod::EdgeCheck);
  R.Ok = true;

  // Workload resolution: a trace that names a workload we can rebuild
  // gets the full live-pipeline evaluation (builds are deterministic, so
  // this reproduces the capturing run's modules bit for bit).
  std::unique_ptr<Workload> W;
  if (Opts.EvaluateWorkload && !R.Prov.Workload.empty())
    W = makeWorkloadByName(R.Prov.Workload);

  // Pass 1 -- stream-driven profile phase.
  if (W) {
    Pipeline PL(*W, Opts.Config);
    R.Profile = PL.profileFromStream(Src, R.Method, Opts.Threads);
  } else if (Opts.Threads > 1) {
    // Site-sharded parallel profile (driver/ParallelReplay.h);
    // bit-identical to the serial branch below.
    StrideProfilerConfig PC = Opts.Config.Profiler;
    PC.Sampling.Enabled = methodUsesSampling(R.Method);
    ShardedProfileResult SP =
        profileEventsSharded(Src, PC, Opts.Threads, Opts.ProfileShards);
    R.Profile.Method = R.Method;
    R.Profile.Stats.RuntimeCycles = SP.RuntimeCycles;
    R.Profile.Stats.Cycles = SP.RuntimeCycles;
    R.Profile.Stats.Completed = SP.Ok;
    R.Profile.Strides = std::move(SP.Strides);
    R.Profile.StrideInvocations = SP.Invocations;
    R.Profile.StrideProcessed = SP.Processed;
    R.Profile.LfuCalls = SP.LfuCalls;
    if (!SP.Ok) {
      R.Ok = false;
      R.Error = SP.Error;
      return R;
    }
  } else {
    StrideProfilerConfig PC = Opts.Config.Profiler;
    PC.Sampling.Enabled = methodUsesSampling(R.Method);
    StrideProfiler P(Src.numSites(), PC);
    R.Profile.Method = R.Method;
    R.Profile.Stats.RuntimeCycles =
        P.consume(Src, Opts.Config.Interp.StrideBatchWindow);
    R.Profile.Stats.Cycles = R.Profile.Stats.RuntimeCycles;
    R.Profile.Stats.Completed = true;
    R.Profile.Strides = StrideProfile::fromProfiler(P);
    R.Profile.StrideInvocations = P.totalInvocations();
    R.Profile.StrideProcessed = P.totalProcessed();
    R.Profile.LfuCalls = P.totalLfuCalls();
  }
  if (Edges && Edges->Present)
    R.Profile.Edges = edgeProfileFromSection(*Edges);
  // Loads the profiler saw; file replay overwrites with the decoded
  // event count (which also includes prefetch-kind events).
  R.Events = R.Profile.StrideInvocations;

  // Stream-only classification: every site, no frequency/trip filtering.
  R.SiteClass.resize(R.Profile.Strides.numSites(), StrideClass::None);
  for (uint32_t S = 0; S != R.Profile.Strides.numSites(); ++S)
    R.SiteClass[S] =
        classifyStrideSummary(R.Profile.Strides.site(S),
                              Opts.Config.Classifier);

  // Pass 2 -- full prefetch evaluation against the rebuilt workload,
  // exactly what the live pipeline does with a freshly collected profile.
  if (W) {
    Pipeline PL(*W, Opts.Config);
    const DataSet DS =
        R.Prov.DataSet == "ref" ? DataSet::Ref : DataSet::Train;
    R.Baseline = PL.runBaseline(DS);
    R.Timed = PL.runPrefetched(DS, R.Profile.Edges, R.Profile.Strides);
    if (R.Timed.Stats.Cycles != 0)
      R.Speedup = static_cast<double>(R.Baseline.Cycles) /
                  static_cast<double>(R.Timed.Stats.Cycles);
    R.HasWorkload = true;
  }

  // Passes 3/4 -- cache model driven straight from the stream: demand
  // replay, then demand + synthesized prefetches for classified sites.
  if (Opts.SimulateMemory && Src.reset()) {
    StreamReplayConfig SC;
    SC.HiddenLatency = Opts.Config.Timing.FlatLoadLatency;
    SC.BatchSize = Opts.Config.Interp.StrideBatchWindow;
    MemoryHierarchy Base(Opts.Config.Memory);
    R.MemBaseline = replayAccessStream(Base, Src, SC);
    R.MemBaselineStats = Base.stats();
    if (Src.reset()) {
      std::vector<int64_t> SiteStride(R.SiteClass.size(), 0);
      for (uint32_t S = 0; S != R.SiteClass.size(); ++S) {
        const StrideClass C = R.SiteClass[S];
        const bool Prefetchable =
            C == StrideClass::SSST || C == StrideClass::PMST ||
            (C == StrideClass::WSST &&
             Opts.Config.Classifier.EnableWsstPrefetch);
        if (Prefetchable)
          SiteStride[S] = R.Profile.Strides.site(S).top1Stride();
      }
      MemoryHierarchy Pf(Opts.Config.Memory);
      if (Opts.Config.Memory.EnableAttribution)
        Pf.enableAttribution(Src.numSites());
      R.MemPrefetched = replayWithSyntheticPrefetch(
          Pf, Src, SC, SiteStride, Opts.StreamPrefetchDistance);
      Pf.finalizeAttribution();
      R.MemPrefetchedStats = Pf.stats();
      R.HasMemSim = true;
    }
  }
  return R;
}

TraceReplayResult replayTraceFile(const std::string &Path,
                                  const TraceReplayOptions &Opts) {
  if (Opts.Threads > 1)
    return replayTraceFileParallel(Path, Opts);

  auto Reader = TraceReader::openFile(Path);

  // Buffer the whole event stream up front: replay needs several passes,
  // and the decode error surface (truncation, corruption) is cleanest
  // reported before any profiling state exists.
  std::vector<AccessEvent> Events;
  std::vector<AccessEvent> Buf(4096);
  while (size_t N = Reader->pull(Buf.data(), Buf.size()))
    Events.insert(Events.end(), Buf.begin(), Buf.begin() + N);

  if (!Reader->ok()) {
    TraceReplayResult R;
    R.Source = Path;
    R.Error = Reader->error();
    R.ErrorCode = Reader->errorCode();
    return R;
  }

  TraceReplayOptions O = Opts;
  if (!O.Method && !Reader->provenance().Method.empty()) {
    ProfilingMethod M;
    if (profilingMethodFromName(Reader->provenance().Method, M))
      O.Method = M;
  }

  const uint64_t Total = Events.size();
  VectorSource Src(std::move(Events), Reader->numSites(), Path);
  TraceReplayResult R = replayStream(Src, O, Path, &Reader->edgeSection(),
                                     &Reader->provenance());
  R.Events = Total;
  return R;
}

} // namespace sprof
