//===- driver/Experiments.cpp - Shared experiment helpers ------------------===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "obs/Report.h"
#include "support/Stats.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace sprof;

/// classifyLoadPopulation body, parameterized over the telemetry scope so
/// engine jobs can run it against their job session.
static PopulationRow classifyPopulationImpl(const Workload &W,
                                            bool InLoopWanted,
                                            const PipelineConfig &Config,
                                            ObsSession *Obs) {
  Pipeline P(W, Config, Obs);
  // Naive-all profiles every load; run on the reference input so the
  // population weights match the performance runs.
  ProfileRunResult PR = P.runProfile(ProfilingMethod::NaiveAll, DataSet::Ref,
                                     /*WithMemorySystem=*/false);

  // In-loop classification per site on the original module.
  Program Prog = W.build({DataSet::Ref, Config.WorkloadSeedOffset});
  std::vector<SiteLocation> Sites = Prog.M.locateLoadSites();
  std::vector<bool> SiteInLoop(Prog.M.NumLoadSites, false);
  for (uint32_t FI = 0; FI != Prog.M.Functions.size(); ++FI) {
    const Function &F = Prog.M.Functions[FI];
    DomTree DT = DomTree::forward(F);
    LoopInfo LI(F, DT);
    for (uint32_t Site = 0; Site != Prog.M.NumLoadSites; ++Site)
      if (Sites[Site].Func == FI)
        SiteInLoop[Site] = LI.isInLoop(Sites[Site].Block);
  }

  PopulationRow Row;
  Row.Bench = W.info().Name;
  uint64_t Total = 0;
  uint64_t ByClass[4] = {0, 0, 0, 0}; // None, SSST, PMST, WSST
  for (uint32_t Site = 0; Site != Prog.M.NumLoadSites; ++Site) {
    uint64_t Refs = PR.Stats.SiteCounts[Site];
    Total += Refs;
    if (SiteInLoop[Site] != InLoopWanted)
      continue;
    StrideClass C =
        classifyStrideSummary(PR.Strides.site(Site), Config.Classifier);
    ByClass[static_cast<unsigned>(C)] += Refs;
  }
  Row.NonePct = percent(static_cast<double>(ByClass[0]),
                        static_cast<double>(Total));
  Row.SsstPct = percent(static_cast<double>(ByClass[1]),
                        static_cast<double>(Total));
  Row.PmstPct = percent(static_cast<double>(ByClass[2]),
                        static_cast<double>(Total));
  Row.WsstPct = percent(static_cast<double>(ByClass[3]),
                        static_cast<double>(Total));
  return Row;
}

PopulationRow sprof::classifyLoadPopulation(const Workload &W,
                                            bool InLoopWanted,
                                            const PipelineConfig &Config) {
  return classifyPopulationImpl(W, InLoopWanted, Config, /*Obs=*/nullptr);
}

std::vector<const Workload *> sprof::workloadPointers(
    const std::vector<std::unique_ptr<Workload>> &Suite) {
  std::vector<const Workload *> Ptrs;
  Ptrs.reserve(Suite.size());
  for (const auto &W : Suite)
    Ptrs.push_back(W.get());
  return Ptrs;
}

std::vector<BenchMeasurement>
sprof::measureSuite(ExperimentEngine &Engine,
                    const std::vector<const Workload *> &Workloads,
                    const PipelineConfig &Config,
                    const std::vector<ProfilingMethod> &Methods) {
  std::vector<BenchMeasurement> Results(Workloads.size());
  // Profiles flow from each RunJob to its FeedbackJob through these
  // preallocated slots; nothing is shared between (workload, method)
  // pairs.
  std::vector<ProfileRunResult> Profiles(Workloads.size() * Methods.size());

  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Workload *W = Workloads[WI];
    BenchMeasurement &BM = Results[WI];
    BM.Name = W->info().Name;
    // Populate the method map up front: jobs then write through stable
    // references without mutating the map concurrently.
    for (ProfilingMethod M : Methods)
      BM.Methods.emplace(M, MethodMeasurement{});

    Engine.addJob("baseline:" + BM.Name + "/ref", "baseline-job",
                  [W, &Config, &BM](ObsSession *JobObs) {
                    Pipeline P(*W, Config, JobObs);
                    BM.BaselineRefCycles =
                        P.runBaseline(DataSet::Ref).Cycles;
                  });
    Engine.addJob("profile:" + BM.Name + "/edge-only/train", "run-job",
                  [W, &Config, &BM](ObsSession *JobObs) {
                    Pipeline P(*W, Config, JobObs);
                    BM.EdgeOnlyTrainCycles =
                        P.runProfile(ProfilingMethod::EdgeOnly,
                                     DataSet::Train)
                            .Stats.Cycles;
                  });

    for (size_t MI = 0; MI != Methods.size(); ++MI) {
      ProfilingMethod M = Methods[MI];
      MethodMeasurement *MM = &BM.Methods.at(M);
      ProfileRunResult *PR = &Profiles[WI * Methods.size() + MI];
      std::string Tag =
          BM.Name + "/" + profilingMethodName(M) + "/train";

      JobId Run = Engine.addJob(
          "profile:" + Tag, "run-job",
          [W, &Config, M, MM, PR](ObsSession *JobObs) {
            Pipeline P(*W, Config, JobObs);
            *PR = P.runProfile(M, DataSet::Train);
            MM->ProfiledCycles = PR->Stats.Cycles;
            MM->StrideInvocations = PR->StrideInvocations;
            MM->StrideProcessed = PR->StrideProcessed;
            MM->LfuCalls = PR->LfuCalls;
            MM->TrainLoadRefs = PR->Stats.LoadRefs;
          });
      Engine.addJob(
          "feedback:" + Tag, "feedback-job",
          [W, &Config, MM, PR](ObsSession *JobObs) {
            Pipeline P(*W, Config, JobObs);
            TimedRunResult TR =
                P.runPrefetched(DataSet::Ref, PR->Edges, PR->Strides);
            MM->Prefetches = TR.Prefetches;
            MM->PrefetchedRefCycles = TR.Stats.Cycles;
            MM->RefMemory = TR.Stats.Mem;
          },
          {Run});
    }
  }

  Engine.run();

  for (BenchMeasurement &BM : Results)
    for (auto &[M, MM] : BM.Methods)
      if (MM.PrefetchedRefCycles != 0)
        MM.Speedup = static_cast<double>(BM.BaselineRefCycles) /
                     static_cast<double>(MM.PrefetchedRefCycles);
  return Results;
}

BenchMeasurement
sprof::measureBenchmark(const Workload &W, const PipelineConfig &Config,
                        const std::vector<ProfilingMethod> &Methods) {
  ExperimentEngine Engine;
  return std::move(measureSuite(Engine, {&W}, Config, Methods).front());
}

std::vector<PopulationRow> sprof::classifySuitePopulation(
    ExperimentEngine &Engine, const std::vector<const Workload *> &Workloads,
    bool InLoopWanted, const PipelineConfig &Config) {
  std::vector<PopulationRow> Results(Workloads.size());
  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Workload *W = Workloads[WI];
    PopulationRow *Row = &Results[WI];
    Engine.addJob("classify:" + W->info().Name, "run-job",
                  [W, InLoopWanted, &Config, Row](ObsSession *JobObs) {
                    *Row = classifyPopulationImpl(*W, InLoopWanted, Config,
                                                  JobObs);
                  });
  }
  Engine.run();
  return Results;
}

std::vector<SensitivityMeasurement> sprof::measureSuiteSensitivity(
    ExperimentEngine &Engine, const std::vector<const Workload *> &Workloads,
    const PipelineConfig &Config) {
  std::vector<SensitivityMeasurement> Results(Workloads.size());
  struct Slot {
    ProfileRunResult Train, Ref;
    uint64_t BaseCycles = 0;
    uint64_t Cycles[4] = {0, 0, 0, 0}; ///< train, ref, er-st, et-sr
  };
  std::vector<Slot> Slots(Workloads.size());

  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Workload *W = Workloads[WI];
    const std::string Name = W->info().Name;
    Results[WI].Name = Name;
    Slot *S = &Slots[WI];

    Engine.addJob("baseline:" + Name + "/ref", "baseline-job",
                  [W, &Config, S](ObsSession *JobObs) {
                    Pipeline P(*W, Config, JobObs);
                    S->BaseCycles = P.runBaseline(DataSet::Ref).Cycles;
                  });
    JobId TrainJob = Engine.addJob(
        "profile:" + Name + "/sample-edge-check/train", "run-job",
        [W, &Config, S](ObsSession *JobObs) {
          Pipeline P(*W, Config, JobObs);
          S->Train = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                  DataSet::Train,
                                  /*WithMemorySystem=*/false);
        });
    JobId RefJob = Engine.addJob(
        "profile:" + Name + "/sample-edge-check/ref", "run-job",
        [W, &Config, S](ObsSession *JobObs) {
          Pipeline P(*W, Config, JobObs);
          S->Ref = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                DataSet::Ref,
                                /*WithMemorySystem=*/false);
        });

    // The four Figure 23-25 binaries: every edge × stride profile pairing,
    // each timed on the reference input.
    struct Combo {
      const char *Tag;
      bool EdgeFromTrain, StrideFromTrain;
      std::vector<JobId> Deps;
    };
    const Combo Combos[4] = {
        {"train", true, true, {TrainJob}},
        {"ref", false, false, {RefJob}},
        {"edge-ref.stride-train", false, true, {TrainJob, RefJob}},
        {"edge-train.stride-ref", true, false, {TrainJob, RefJob}},
    };
    for (unsigned CI = 0; CI != 4; ++CI) {
      const Combo &C = Combos[CI];
      Engine.addJob(
          "feedback:" + Name + "/" + C.Tag, "feedback-job",
          [W, &Config, S, C, CI](ObsSession *JobObs) {
            Pipeline P(*W, Config, JobObs);
            const EdgeProfile &EP =
                C.EdgeFromTrain ? S->Train.Edges : S->Ref.Edges;
            const StrideProfile &SP =
                C.StrideFromTrain ? S->Train.Strides : S->Ref.Strides;
            S->Cycles[CI] =
                P.runPrefetched(DataSet::Ref, EP, SP).Stats.Cycles;
          },
          C.Deps);
    }
  }

  Engine.run();

  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Slot &S = Slots[WI];
    auto Ratio = [&](uint64_t Cycles) {
      return Cycles ? static_cast<double>(S.BaseCycles) /
                          static_cast<double>(Cycles)
                    : 1.0;
    };
    Results[WI].Train = Ratio(S.Cycles[0]);
    Results[WI].Ref = Ratio(S.Cycles[1]);
    Results[WI].EdgeRefStrideTrain = Ratio(S.Cycles[2]);
    Results[WI].EdgeTrainStrideRef = Ratio(S.Cycles[3]);
  }
  return Results;
}

SensitivityMeasurement
sprof::measureSensitivity(const Workload &W, const PipelineConfig &Config) {
  ExperimentEngine Engine;
  return std::move(measureSuiteSensitivity(Engine, {&W}, Config).front());
}

std::vector<BaselineMeasurement> sprof::measureSuiteBaselines(
    ExperimentEngine &Engine, const std::vector<const Workload *> &Workloads,
    const PipelineConfig &Config) {
  std::vector<BaselineMeasurement> Results(Workloads.size());
  for (size_t WI = 0; WI != Workloads.size(); ++WI) {
    const Workload *W = Workloads[WI];
    BaselineMeasurement *BM = &Results[WI];
    BM->Info = W->info();
    Engine.addJob("baseline:" + BM->Info.Name + "/train", "baseline-job",
                  [W, &Config, BM](ObsSession *JobObs) {
                    Pipeline P(*W, Config, JobObs);
                    BM->Train = P.runBaseline(DataSet::Train);
                  });
    Engine.addJob("baseline:" + BM->Info.Name + "/ref", "baseline-job",
                  [W, &Config, BM](ObsSession *JobObs) {
                    Pipeline P(*W, Config, JobObs);
                    BM->Ref = P.runBaseline(DataSet::Ref);
                  });
  }
  Engine.run();
  return Results;
}

JsonValue sprof::methodMeasurementToJson(const MethodMeasurement &M) {
  JsonValue J = JsonValue::object();
  J.set("speedup", M.Speedup);
  J.set("profiled_cycles", M.ProfiledCycles);
  J.set("stride_invocations", M.StrideInvocations);
  J.set("stride_processed", M.StrideProcessed);
  J.set("lfu_calls", M.LfuCalls);
  J.set("train_load_refs", M.TrainLoadRefs);
  J.set("prefetched_ref_cycles", M.PrefetchedRefCycles);
  JsonValue P = JsonValue::object();
  P.set("ssst", M.Prefetches.SsstPrefetches)
      .set("pmst", M.Prefetches.PmstPrefetches)
      .set("wsst", M.Prefetches.WsstPrefetches)
      .set("out_loop", M.Prefetches.OutLoopPrefetches)
      .set("dependent", M.Prefetches.DependentPrefetches)
      .set("instructions_added", M.Prefetches.InstructionsAdded);
  J.set("prefetches", std::move(P));
  // Cache/prefetch accounting of the prefetched ref run, so regression
  // gates can track prefetch usefulness without re-running the bench.
  J.set("ref_memory", memoryStatsToJson(M.RefMemory));
  return J;
}

JsonValue sprof::benchMeasurementToJson(const BenchMeasurement &BM) {
  JsonValue J = JsonValue::object();
  J.set("name", BM.Name);
  J.set("baseline_ref_cycles", BM.BaselineRefCycles);
  J.set("edge_only_train_cycles", BM.EdgeOnlyTrainCycles);
  JsonValue Methods = JsonValue::object();
  for (const auto &[M, MM] : BM.Methods)
    Methods.set(profilingMethodName(M), methodMeasurementToJson(MM));
  J.set("methods", std::move(Methods));
  return J;
}

JsonValue sprof::baselineMeasurementToJson(const BaselineMeasurement &BM) {
  JsonValue J = JsonValue::object();
  J.set("name", BM.Info.Name);
  J.set("lang", BM.Info.Lang);
  J.set("train", runStatsToJson(BM.Train));
  J.set("ref", runStatsToJson(BM.Ref));
  return J;
}

JsonValue sprof::populationRowToJson(const PopulationRow &R) {
  JsonValue J = JsonValue::object();
  J.set("name", R.Bench);
  J.set("ssst_pct", R.SsstPct);
  J.set("pmst_pct", R.PmstPct);
  J.set("wsst_pct", R.WsstPct);
  J.set("none_pct", R.NonePct);
  return J;
}

JsonValue sprof::sensitivityMeasurementToJson(
    const SensitivityMeasurement &M) {
  JsonValue J = JsonValue::object();
  J.set("name", M.Name);
  J.set("train", M.Train);
  J.set("ref", M.Ref);
  J.set("edge_ref_stride_train", M.EdgeRefStrideTrain);
  J.set("edge_train_stride_ref", M.EdgeTrainStrideRef);
  return J;
}

bool sprof::writeBenchRows(const std::string &Path,
                           const std::string &Figure, JsonValue Rows) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "sprof.bench_report/1");
  Root.set("figure", Figure);
  Root.set("rows", std::move(Rows));
  if (!writeJsonFile(Path, Root)) {
    std::cerr << "error: could not write bench report to " << Path << "\n";
    return false;
  }
  std::cerr << "bench report written to " << Path << "\n";
  return true;
}

bool sprof::writeBenchReport(
    const std::string &Path, const std::string &Figure,
    const std::vector<BenchMeasurement> &Measurements) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "sprof.bench_report/1");
  Root.set("figure", Figure);
  JsonValue Benchmarks = JsonValue::array();
  for (const BenchMeasurement &BM : Measurements)
    Benchmarks.push(benchMeasurementToJson(BM));
  Root.set("benchmarks", std::move(Benchmarks));
  if (!writeJsonFile(Path, Root)) {
    std::cerr << "error: could not write bench report to " << Path << "\n";
    return false;
  }
  std::cerr << "bench report written to " << Path << "\n";
  return true;
}

int sprof::emitBenchReport(int Argc, char **Argv,
                           const std::string &DefaultPath,
                           const std::string &Figure,
                           const std::vector<BenchMeasurement> &Measurements) {
  if (auto Path = benchReportPath(Argc, Argv, DefaultPath))
    if (!writeBenchReport(*Path, Figure, Measurements))
      return 1;
  return 0;
}

int sprof::emitBenchReport(int Argc, char **Argv,
                           const std::string &DefaultPath,
                           const std::string &Figure, JsonValue Rows) {
  if (auto Path = benchReportPath(Argc, Argv, DefaultPath))
    if (!writeBenchRows(*Path, Figure, std::move(Rows)))
      return 1;
  return 0;
}

std::optional<std::string> sprof::benchReportPath(
    int Argc, char **Argv, const std::string &DefaultPath) {
  std::optional<std::string> Path = DefaultPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--no-json") == 0)
      Path = std::nullopt;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      Path = std::string(Argv[I] + 7);
  }
  return Path;
}

unsigned sprof::benchThreads(int Argc, char **Argv, unsigned Default) {
  unsigned Threads = Default;
  auto Parse = [&](const char *Value) {
    char *End = nullptr;
    unsigned long N = std::strtoul(Value, &End, 10);
    if (End != Value && *End == '\0' && N >= 1 && N <= 1024)
      Threads = static_cast<unsigned>(N);
  };
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      Parse(Argv[I] + 10);
    else if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc)
      Parse(Argv[++I]);
  }
  return Threads;
}

std::optional<double> sprof::paperFig16Speedup(const std::string &Bench) {
  if (Bench == "181.mcf")
    return 1.59;
  if (Bench == "254.gap")
    return 1.14;
  if (Bench == "197.parser")
    return 1.08;
  return std::nullopt;
}

std::optional<double> sprof::paperFig20Overhead(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::EdgeCheck:
    return 0.58;
  case ProfilingMethod::NaiveLoop:
    return 2.72;
  case ProfilingMethod::NaiveAll:
    return 4.36;
  case ProfilingMethod::SampleEdgeCheck:
    return 0.17;
  case ProfilingMethod::SampleNaiveLoop:
    return 0.67;
  case ProfilingMethod::SampleNaiveAll:
    return 1.22;
  default:
    return std::nullopt;
  }
}

std::optional<double> sprof::paperFig21Processed(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::EdgeCheck:
    return 11.0;
  case ProfilingMethod::NaiveLoop:
    return 60.0;
  case ProfilingMethod::NaiveAll:
    return 100.0;
  case ProfilingMethod::SampleEdgeCheck:
    return 1.0;
  case ProfilingMethod::SampleNaiveLoop:
    return 3.0;
  case ProfilingMethod::SampleNaiveAll:
    return 5.0;
  default:
    return std::nullopt;
  }
}
