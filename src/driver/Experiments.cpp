//===- driver/Experiments.cpp - Shared experiment helpers ------------------===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/Experiments.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "support/Stats.h"

#include <cstring>
#include <iostream>

using namespace sprof;

PopulationRow sprof::classifyLoadPopulation(const Workload &W,
                                            bool InLoopWanted,
                                            const PipelineConfig &Config) {
  Pipeline P(W, Config);
  // Naive-all profiles every load; run on the reference input so the
  // population weights match the performance runs.
  ProfileRunResult PR = P.runProfile(ProfilingMethod::NaiveAll, DataSet::Ref,
                                     /*WithMemorySystem=*/false);

  // In-loop classification per site on the original module.
  Program Prog = W.build(DataSet::Ref);
  std::vector<SiteLocation> Sites = Prog.M.locateLoadSites();
  std::vector<bool> SiteInLoop(Prog.M.NumLoadSites, false);
  for (uint32_t FI = 0; FI != Prog.M.Functions.size(); ++FI) {
    const Function &F = Prog.M.Functions[FI];
    DomTree DT = DomTree::forward(F);
    LoopInfo LI(F, DT);
    for (uint32_t Site = 0; Site != Prog.M.NumLoadSites; ++Site)
      if (Sites[Site].Func == FI)
        SiteInLoop[Site] = LI.isInLoop(Sites[Site].Block);
  }

  PopulationRow Row;
  Row.Bench = W.info().Name;
  uint64_t Total = 0;
  uint64_t ByClass[4] = {0, 0, 0, 0}; // None, SSST, PMST, WSST
  for (uint32_t Site = 0; Site != Prog.M.NumLoadSites; ++Site) {
    uint64_t Refs = PR.Stats.SiteCounts[Site];
    Total += Refs;
    if (SiteInLoop[Site] != InLoopWanted)
      continue;
    StrideClass C =
        classifyStrideSummary(PR.Strides.site(Site), Config.Classifier);
    ByClass[static_cast<unsigned>(C)] += Refs;
  }
  Row.NonePct = percent(static_cast<double>(ByClass[0]),
                        static_cast<double>(Total));
  Row.SsstPct = percent(static_cast<double>(ByClass[1]),
                        static_cast<double>(Total));
  Row.PmstPct = percent(static_cast<double>(ByClass[2]),
                        static_cast<double>(Total));
  Row.WsstPct = percent(static_cast<double>(ByClass[3]),
                        static_cast<double>(Total));
  return Row;
}

BenchMeasurement
sprof::measureBenchmark(const Workload &W, const PipelineConfig &Config,
                        const std::vector<ProfilingMethod> &Methods) {
  Pipeline P(W, Config);
  BenchMeasurement Result;
  Result.Name = W.info().Name;

  Result.BaselineRefCycles = P.runBaseline(DataSet::Ref).Cycles;
  Result.EdgeOnlyTrainCycles =
      P.runProfile(ProfilingMethod::EdgeOnly, DataSet::Train).Stats.Cycles;

  for (ProfilingMethod M : Methods) {
    MethodMeasurement MM;
    ProfileRunResult PR = P.runProfile(M, DataSet::Train);
    MM.ProfiledCycles = PR.Stats.Cycles;
    MM.StrideInvocations = PR.StrideInvocations;
    MM.StrideProcessed = PR.StrideProcessed;
    MM.LfuCalls = PR.LfuCalls;
    MM.TrainLoadRefs = PR.Stats.LoadRefs;

    TimedRunResult TR = P.runPrefetched(DataSet::Ref, PR.Edges, PR.Strides);
    MM.Prefetches = TR.Prefetches;
    MM.Speedup = static_cast<double>(Result.BaselineRefCycles) /
                 static_cast<double>(TR.Stats.Cycles);
    Result.Methods.emplace(M, MM);
  }
  return Result;
}

SensitivityMeasurement
sprof::measureSensitivity(const Workload &W, const PipelineConfig &Config) {
  Pipeline P(W, Config);
  SensitivityMeasurement R;
  R.Name = W.info().Name;

  ProfileRunResult Train = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                        DataSet::Train,
                                        /*WithMemorySystem=*/false);
  ProfileRunResult Ref = P.runProfile(ProfilingMethod::SampleEdgeCheck,
                                      DataSet::Ref,
                                      /*WithMemorySystem=*/false);
  uint64_t Base = P.runBaseline(DataSet::Ref).Cycles;
  auto Speedup = [&](const EdgeProfile &EP, const StrideProfile &SP) {
    TimedRunResult T = P.runPrefetched(DataSet::Ref, EP, SP);
    return static_cast<double>(Base) / static_cast<double>(T.Stats.Cycles);
  };
  R.Train = Speedup(Train.Edges, Train.Strides);
  R.Ref = Speedup(Ref.Edges, Ref.Strides);
  R.EdgeRefStrideTrain = Speedup(Ref.Edges, Train.Strides);
  R.EdgeTrainStrideRef = Speedup(Train.Edges, Ref.Strides);
  return R;
}

JsonValue sprof::methodMeasurementToJson(const MethodMeasurement &M) {
  JsonValue J = JsonValue::object();
  J.set("speedup", M.Speedup);
  J.set("profiled_cycles", M.ProfiledCycles);
  J.set("stride_invocations", M.StrideInvocations);
  J.set("stride_processed", M.StrideProcessed);
  J.set("lfu_calls", M.LfuCalls);
  J.set("train_load_refs", M.TrainLoadRefs);
  JsonValue P = JsonValue::object();
  P.set("ssst", M.Prefetches.SsstPrefetches)
      .set("pmst", M.Prefetches.PmstPrefetches)
      .set("wsst", M.Prefetches.WsstPrefetches)
      .set("out_loop", M.Prefetches.OutLoopPrefetches)
      .set("dependent", M.Prefetches.DependentPrefetches)
      .set("instructions_added", M.Prefetches.InstructionsAdded);
  J.set("prefetches", std::move(P));
  return J;
}

JsonValue sprof::benchMeasurementToJson(const BenchMeasurement &BM) {
  JsonValue J = JsonValue::object();
  J.set("name", BM.Name);
  J.set("baseline_ref_cycles", BM.BaselineRefCycles);
  J.set("edge_only_train_cycles", BM.EdgeOnlyTrainCycles);
  JsonValue Methods = JsonValue::object();
  for (const auto &[M, MM] : BM.Methods)
    Methods.set(profilingMethodName(M), methodMeasurementToJson(MM));
  J.set("methods", std::move(Methods));
  return J;
}

bool sprof::writeBenchReport(
    const std::string &Path, const std::string &Figure,
    const std::vector<BenchMeasurement> &Measurements) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "sprof.bench_report/1");
  Root.set("figure", Figure);
  JsonValue Benchmarks = JsonValue::array();
  for (const BenchMeasurement &BM : Measurements)
    Benchmarks.push(benchMeasurementToJson(BM));
  Root.set("benchmarks", std::move(Benchmarks));
  if (!writeJsonFile(Path, Root)) {
    std::cerr << "warning: could not write bench report to " << Path
              << "\n";
    return false;
  }
  std::cerr << "bench report written to " << Path << "\n";
  return true;
}

std::optional<std::string> sprof::benchReportPath(
    int Argc, char **Argv, const std::string &DefaultPath) {
  std::optional<std::string> Path = DefaultPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--no-json") == 0)
      Path = std::nullopt;
    else if (std::strncmp(Argv[I], "--json=", 7) == 0)
      Path = std::string(Argv[I] + 7);
  }
  return Path;
}

std::optional<double> sprof::paperFig16Speedup(const std::string &Bench) {
  if (Bench == "181.mcf")
    return 1.59;
  if (Bench == "254.gap")
    return 1.14;
  if (Bench == "197.parser")
    return 1.08;
  return std::nullopt;
}

std::optional<double> sprof::paperFig20Overhead(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::EdgeCheck:
    return 0.58;
  case ProfilingMethod::NaiveLoop:
    return 2.72;
  case ProfilingMethod::NaiveAll:
    return 4.36;
  case ProfilingMethod::SampleEdgeCheck:
    return 0.17;
  case ProfilingMethod::SampleNaiveLoop:
    return 0.67;
  case ProfilingMethod::SampleNaiveAll:
    return 1.22;
  default:
    return std::nullopt;
  }
}

std::optional<double> sprof::paperFig21Processed(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::EdgeCheck:
    return 11.0;
  case ProfilingMethod::NaiveLoop:
    return 60.0;
  case ProfilingMethod::NaiveAll:
    return 100.0;
  case ProfilingMethod::SampleEdgeCheck:
    return 1.0;
  case ProfilingMethod::SampleNaiveLoop:
    return 3.0;
  case ProfilingMethod::SampleNaiveAll:
    return 5.0;
  default:
    return std::nullopt;
  }
}
