//===- driver/Engine.h - Parallel experiment engine -------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ExperimentEngine runs experiment jobs — pipeline runs over a
/// workload × method × input × seed grid — on a JobGraph thread pool with
/// per-job isolation:
///
///   * every job constructs its own Pipeline (and therefore rebuilds its
///     own Program) and owns its RNG seed via PipelineConfig's
///     WorkloadSeedOffset, so jobs share no mutable state and an N-thread
///     sweep is bit-identical to the serial one;
///   * every job runs against a private ObsSession (when session telemetry
///     is on); after the graph drains, job scopes fold into the session
///     registry/trace in deterministic JobId order, one span per job lands
///     on the worker's trace lane, and the run report gains a "jobs"
///     array.
///
/// Two levels of API: addJob()/run() schedules arbitrary closures with
/// dependencies (the suite helpers in Experiments.h use this), and
/// runSweep() expands a declarative SweepSpec into independent RunJobs
/// (instrument → interpret → profile) plus dependent FeedbackJobs
/// (classify → prefetch → timed run).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_DRIVER_ENGINE_H
#define SPROF_DRIVER_ENGINE_H

#include "driver/JobGraph.h"
#include "driver/Pipeline.h"
#include "obs/Sharded.h"
#include "obs/SweepReport.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sprof {

class FlightRecorder;

/// Engine-level knobs.
struct EngineOptions {
  /// Worker threads. 1 executes jobs inline in deterministic topological
  /// order; results never depend on this value.
  unsigned Threads = 1;
  /// Session-level telemetry; jobs get derived scopes (ObsSession's
  /// jobConfig).
  ObsConfig Obs;
  /// Aggregate job metrics through per-worker shards: each worker folds
  /// its finished job scopes into its own shard lock-free, and the shards
  /// fold into the session registry after the graph drains. Totals are
  /// bit-identical to the direct per-job merge (counter addition and
  /// histogram merging are commutative; gauges are replayed in JobId
  /// order), so this is purely a contention knob.
  bool ShardedMetrics = true;
  /// When nonzero (and the flight recorder is armed via
  /// ObsConfig::FlightRecorder), a watchdog thread dumps the recorder and
  /// exits the process (FlightRecorder::WatchdogExitCode) when no job
  /// finishes for this many seconds while jobs are in flight — a hung
  /// sweep fails loudly with a post-mortem instead of wedging CI.
  uint64_t WatchdogSec = 0;
};

/// A declarative sweep: the cross product of workloads × seed offsets ×
/// profiling methods × profile inputs, each cell one independent RunJob,
/// optionally followed by a dependent FeedbackJob on the feedback input.
struct SweepSpec {
  std::vector<const Workload *> Workloads;
  std::vector<ProfilingMethod> Methods = {ProfilingMethod::EdgeCheck};
  std::vector<DataSet> ProfileInputs = {DataSet::Train};
  /// Workload seed offsets (see BuildRequest); one grid slice per entry.
  /// Offset 0 is the canonical build.
  std::vector<uint64_t> SeedOffsets = {0};
  PipelineConfig Config;
  /// Simulate the cache hierarchy during profile runs (profiles do not
  /// depend on it; overhead measurements keep it on).
  bool WithMemorySystem = true;
  /// Add one FeedbackJob per cell: classify the cell's profiles, insert
  /// prefetches, and time the result on FeedbackInput.
  bool Feedback = false;
  DataSet FeedbackInput = DataSet::Ref;
  /// Add one baseline timed run per workload on FeedbackInput (denominator
  /// for per-cell speedups).
  bool Baseline = false;
};

/// One grid cell of a finished sweep.
struct SweepCell {
  const Workload *W = nullptr;
  ProfilingMethod Method = ProfilingMethod::EdgeOnly;
  DataSet ProfileDS = DataSet::Train;
  uint64_t SeedOffset = 0;
  ProfileRunResult Profile;
  /// Set by the cell's FeedbackJob (SweepSpec::Feedback).
  bool HasFeedback = false;
  TimedRunResult Timed;
  /// Baseline cycles / prefetched cycles; 0 unless both Baseline and
  /// Feedback were requested.
  double Speedup = 0.0;
};

/// All cells in deterministic order: workload-major, then seed offset,
/// then method, then profile input.
struct SweepResult {
  std::vector<SweepCell> Cells;
  /// Per-workload baseline cycles (parallel to SweepSpec::Workloads);
  /// empty unless SweepSpec::Baseline.
  std::vector<uint64_t> BaselineCycles;

  /// The first cell matching the coordinates, or nullptr.
  const SweepCell *find(const Workload *W, ProfilingMethod Method,
                        DataSet ProfileDS = DataSet::Train,
                        uint64_t SeedOffset = 0) const;
};

/// Schedules experiment jobs over a fixed-size thread pool. Reusable: each
/// run() executes the jobs added since the previous run().
class ExperimentEngine {
public:
  explicit ExperimentEngine(EngineOptions Opts = {});
  ~ExperimentEngine();

  unsigned threads() const { return Opts.Threads; }

  /// The session, or nullptr when Opts.Obs.Enabled is false.
  ObsSession *obs() const { return Session.get(); }

  /// The job body. \p JobObs is the job's private telemetry scope
  /// (nullptr when telemetry is off); pass it to Pipeline's
  /// external-session constructor.
  using JobFn = std::function<void(ObsSession *JobObs)>;

  /// Schedules \p Fn after \p Deps. Categories name job kinds in traces
  /// and reports ("run-job", "feedback-job", ...).
  JobId addJob(std::string Name, std::string Category, JobFn Fn,
               std::vector<JobId> Deps = {});

  /// Executes all pending jobs, folds job telemetry into the session, and
  /// resets the graph for the next wave. If any job threw, rethrows the
  /// first failure (in JobId order) after the fold; jobs downstream of a
  /// failure are skipped, all others still run.
  void run();

  /// Outcomes of the most recent run(), indexed by the JobIds it drained.
  const std::vector<JobOutcome> &lastOutcomes() const { return Outcomes; }

  /// Expands \p Spec into jobs, runs them, and assembles the grid.
  SweepResult runSweep(const SweepSpec &Spec);

  /// Scheduler accounting accumulated over every drain of this engine
  /// (high-water marks maxed, counts summed).
  const SweepSchedulerStats &schedStats() const { return SchedStats; }

  /// Builds the "sprof.sweep_report/1" document over every job this
  /// engine's session recorded. Requires an active session (Obs.Enabled).
  JsonValue sweepReport(size_t StragglerTopN = 5) const;

  /// The flight recorder, or nullptr unless ObsConfig::FlightRecorder
  /// armed it. Independent of Obs.Enabled: the black box records nothing
  /// that feeds back into results, so it can fly on untelemetered sweeps.
  FlightRecorder *flightRecorder() const { return Recorder.get(); }

  /// Writes session artifacts (Chrome trace, sweep report) per the
  /// session config.
  bool writeArtifacts() const;

private:
  EngineOptions Opts;
  std::unique_ptr<ObsSession> Session;
  std::unique_ptr<FlightRecorder> Recorder;
  SweepSchedulerStats SchedStats;
  /// Per-worker metric shards (EngineOptions::ShardedMetrics); cleared
  /// after every drain so the engine stays reusable.
  std::unique_ptr<ShardedMetricsRegistry> Shards;
  JobGraph Graph;
  /// One slot per pending job; the job's wrapper fills it at job start.
  /// Preallocated in addJob so worker threads never resize the vector.
  std::vector<std::unique_ptr<ObsSession>> JobObs;
  std::vector<JobOutcome> Outcomes;
};

} // namespace sprof

#endif // SPROF_DRIVER_ENGINE_H
