//===- driver/Pipeline.h - Instrument / profile / feedback / run -*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end compiler pipeline the paper's experiments run:
///
///   1. instrument a fresh copy of the program for a profiling method;
///   2. execute it on a data set, producing the edge profile, the stride
///      profile, and the instrumented run's cycle accounting (profiling
///      overhead, Figure 20-22);
///   3. feed the profiles back through the Figure-5 classifier;
///   4. insert prefetches into another fresh copy and time it against the
///      unmodified baseline (speedup, Figure 16).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_DRIVER_PIPELINE_H
#define SPROF_DRIVER_PIPELINE_H

#include "feedback/Classifier.h"
#include "instrument/Instrumentation.h"
#include "interp/Interpreter.h"
#include "memsys/Cache.h"
#include "obs/Obs.h"
#include "prefetch/PrefetchInsertion.h"
#include "profile/ProfileData.h"
#include "profile/StrideProfiler.h"
#include "workloads/Workload.h"

#include <memory>

namespace sprof {

/// Everything configurable about one experiment family.
struct PipelineConfig {
  InstrumentConfig Instrument;
  StrideProfilerConfig Profiler; ///< Sampling.Enabled set per method
  ClassifierConfig Classifier;
  MemoryConfig Memory;
  TimingModel Timing;
  /// Execution-core selection (Reference vs the pre-decoded Decoded
  /// engine). Both produce bit-identical profiles and cycle accounting;
  /// Decoded (the default) is the fast core, Reference the differential
  /// baseline (docs/PERFORMANCE.md).
  InterpreterConfig Interp;
  /// Mixed into every workload build this pipeline performs (see
  /// BuildRequest). 0 reproduces the canonical builds; engine jobs that
  /// run seed replicas each get their own offset.
  uint64_t WorkloadSeedOffset = 0;
  /// Telemetry. Disabled by default; when Obs.Enabled the Pipeline owns an
  /// ObsSession, traces every phase, and threads metric sinks through all
  /// components. Profiles and cycle accounting are identical either way.
  ObsConfig Obs;
  /// When non-empty, runProfile additionally records the profiled
  /// access-event stream (plus the harvested edge profile) into this
  /// sprof.trace/2 file for later replay (driver/TraceReplay.h). Capture
  /// tees off the engines' existing stride-event ring, so profiles and
  /// cycle accounting are bit-identical with or without it.
  std::string TraceCapturePath;
  /// Write the human-readable sprof.trace.text/1 twin instead.
  bool TraceCaptureText = false;
};

/// Accounting of a profile run's trace capture (PipelineConfig::
/// TraceCapturePath); Enabled stays false when capture was off or the
/// trace file could not be written.
struct TraceCaptureInfo {
  bool Enabled = false;
  std::string Path;
  std::string Schema; ///< sprof.trace/2 or sprof.trace.text/1
  uint64_t Events = 0;
  uint64_t Bytes = 0;
};

/// Results of one instrumented (profile-generation) run.
struct ProfileRunResult {
  ProfilingMethod Method = ProfilingMethod::EdgeOnly;
  EdgeProfile Edges;
  StrideProfile Strides;
  InstrumentationResult Instr;
  RunStats Stats;

  /// strideProf call statistics for Figures 21/22.
  uint64_t StrideInvocations = 0;
  uint64_t StrideProcessed = 0;
  uint64_t LfuCalls = 0;

  TraceCaptureInfo Capture;

  /// Trace-tier selection/execution statistics (Enabled == true only when
  /// the run executed under InterpreterConfig::Engine::Trace). Lives
  /// outside RunStats: the tier is host-side machinery, and the simulated
  /// accounting must stay bit-identical across engines.
  TraceTierStats TraceTier;
};

/// Results of one timed (performance) run.
struct TimedRunResult {
  RunStats Stats;
  PrefetchInsertionStats Prefetches;
  FeedbackResult Feedback;
  /// Prefetch-outcome and per-site demand-miss attribution; populated
  /// (Enabled == true) only when Config.Memory.EnableAttribution is set.
  /// Lives outside RunStats so the pre-existing accounting stays
  /// bit-identical whether attribution runs or not.
  AttributionData Attribution;
  /// Trace-tier statistics of the timed run (see ProfileRunResult).
  TraceTierStats TraceTier;
};

/// Drives one workload through the paper's pipeline. The workload's
/// Program is rebuilt for every run so runs never share mutable state.
class Pipeline {
public:
  Pipeline(const Workload &W, PipelineConfig Config = {})
      : W(W), Config(std::move(Config)) {
    if (this->Config.Obs.Enabled) {
      Owned = std::make_unique<ObsSession>(this->Config.Obs);
      Session = Owned.get();
    }
  }

  /// Runs against an externally owned telemetry session (nullptr disables
  /// telemetry). Config.Obs is not consulted; the experiment engine uses
  /// this so every job's pipeline phases land in the job's metric scope.
  Pipeline(const Workload &W, PipelineConfig Config, ObsSession *External)
      : W(W), Config(std::move(Config)), Session(External) {}

  /// Steps 1-2: instrument for \p Method and run on \p DS.
  /// \p WithMemorySystem selects whether the cache hierarchy is simulated;
  /// profiles do not depend on it, so profile-only callers can turn it off
  /// for speed, while overhead measurements (Figure 20) keep it on.
  ProfileRunResult runProfile(ProfilingMethod Method, DataSet DS,
                              bool WithMemorySystem = true) const;

  /// Stream-driven profile phase: drives the stride-profiling runtime from
  /// \p Src instead of a live interpreter run -- this is how captured and
  /// external traces are profiled. The returned Strides (and runtime-cycle
  /// accounting) are bit-identical to a live run that produced the same
  /// event stream under the same method; Edges are empty (edge counters
  /// live in the program, not the access stream -- captured traces carry
  /// them in the trace's edge section, see driver/TraceReplay.h).
  /// \p Threads > 1 shards the profile across site-partitioned workers
  /// (driver/ParallelReplay.h) with bit-identical results; per-shard job
  /// telemetry lands in this pipeline's session like engine jobs.
  ProfileRunResult profileFromStream(AccessSource &Src, ProfilingMethod Method,
                                     unsigned Threads = 1) const;

  /// Baseline timed run (no instrumentation, no prefetching).
  RunStats runBaseline(DataSet DS) const;

  /// Steps 3-4: classify (\p Edges, \p Strides), insert prefetches, run.
  TimedRunResult runPrefetched(DataSet DS, const EdgeProfile &Edges,
                               const StrideProfile &Strides) const;

  /// Speedup of prefetching guided by an already-collected profile:
  /// baseline cycles / prefetched cycles, both measured on \p RunDS.
  /// Callers sweeping feedback-side parameters (prefetch distance,
  /// classifier thresholds, run input) should collect the profile once
  /// and reuse it here instead of re-profiling per configuration.
  double speedup(DataSet RunDS, const EdgeProfile &Edges,
                 const StrideProfile &Strides) const;

  /// Convenience: profile with \p Method on \p ProfileDS (no cache
  /// simulation), then measure speedup on \p RunDS. Each call performs a
  /// fresh instrumented run; use the profile-taking overload to amortize.
  double speedup(ProfilingMethod Method, DataSet ProfileDS,
                 DataSet RunDS) const;

  const PipelineConfig &config() const { return Config; }
  const Workload &workload() const { return W; }

  /// The telemetry session, or nullptr when telemetry is off. Callers use
  /// it to write trace/report artifacts after the runs.
  ObsSession *obs() const { return Session; }

private:
  const Workload &W;
  PipelineConfig Config;
  std::unique_ptr<ObsSession> Owned;
  ObsSession *Session = nullptr;
};

} // namespace sprof

#endif // SPROF_DRIVER_PIPELINE_H
