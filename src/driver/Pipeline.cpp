//===- driver/Pipeline.cpp - Instrument / profile / feedback / run ---------===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "driver/ParallelReplay.h"
#include "driver/TraceReplay.h"
#include "ir/Verifier.h"
#include "obs/SelfProfiler.h"
#include "obs/Trace.h"
#include "stream/TraceFile.h"

#include <cassert>

using namespace sprof;

/// Labels the engine self-profiler's accumulation bucket for the phase
/// about to execute, so folded-stack lines read "workload;phase;op".
static void labelSelfProfile(ObsSession *Obs, const Workload &W,
                             const char *Phase) {
  if (Obs)
    if (EngineSelfProfiler *SP = Obs->selfProfiler())
      SP->setContext(W.info().Name, Phase);
}

ProfileRunResult Pipeline::runProfile(ProfilingMethod Method, DataSet DS,
                                      bool WithMemorySystem) const {
  ObsSession *Obs = Session;
  TraceSpan Span(Obs, "run-profile", "pipeline", /*Level=*/1);

  Program Prog = [&] {
    TraceSpan BS(Obs, "build-workload", "pipeline", /*Level=*/1);
    return W.build({DS, Config.WorkloadSeedOffset});
  }();
  assert(isWellFormed(Prog.M) && "workload built a malformed module");

  ProfileRunResult Result;
  Result.Method = Method;
  Result.Instr = instrumentModule(Prog.M, Method, Config.Instrument, Obs);
  assert(isWellFormed(Prog.M) && "instrumentation broke the module");

  StrideProfilerConfig PC = Config.Profiler;
  PC.Sampling.Enabled = methodUsesSampling(Method);
  StrideProfiler Profiler(Prog.M.NumLoadSites, PC);
  Profiler.attachObs(Obs);

  Interpreter I(Prog.M, std::move(Prog.Memory), Config.Timing, Config.Interp);
  MemoryHierarchy MH(Config.Memory);
  if (WithMemorySystem)
    I.attachMemory(&MH);
  I.attachProfiler(&Profiler);
  I.attachObs(Obs);

  // Optional trace capture: tee the ProfStride event stream into a
  // sprof.trace file while the profiler consumes it live.
  std::unique_ptr<TraceWriter> Capture;
  if (!Config.TraceCapturePath.empty()) {
    TraceProvenance Prov{W.info().Name, dataSetName(DS),
                         profilingMethodName(Method)};
    std::string CapErr;
    Capture = TraceWriter::open(Config.TraceCapturePath, Prog.M.NumLoadSites,
                                std::move(Prov), Config.TraceCaptureText,
                                &CapErr);
    if (Capture)
      I.attachEventSink(Capture.get());
    else if (Obs)
      Obs->counter("pipeline.trace_capture_failures")->inc();
  }

  labelSelfProfile(Obs, W, "profile");
  {
    TraceSpan ES(Obs, "execute", "interp", /*Level=*/1);
    Result.Stats = I.run();
  }
  assert(Result.Stats.Completed && "profile run did not complete");

  // Harvest the edge profile from the counters.
  Result.Edges = EdgeProfile(Prog.M.Functions.size());
  const std::vector<uint64_t> &Counters = I.counters();
  for (uint32_t FI = 0, FE = static_cast<uint32_t>(Prog.M.Functions.size());
       FI != FE; ++FI) {
    for (const auto &[E, CtrId] : Result.Instr.EdgeCounters[FI])
      Result.Edges.setFrequency(FI, E, Counters[CtrId]);
    if (Result.Instr.EntryCounters[FI] != NoId)
      Result.Edges.setEntryCount(FI,
                                 Counters[Result.Instr.EntryCounters[FI]]);
  }

  {
    TraceSpan HS(Obs, "strideprof-harvest", "profile", /*Level=*/1);
    Result.Strides = StrideProfile::fromProfiler(Profiler);
  }
  Result.StrideInvocations = Profiler.totalInvocations();
  Result.StrideProcessed = Profiler.totalProcessed();
  Result.LfuCalls = Profiler.totalLfuCalls();

  if (Capture) {
    // The edge section makes the trace self-contained: replay rebuilds
    // the classifier's full input without re-executing the program.
    Capture->setEdgeSection(edgeSectionFromProfile(Result.Edges));
    Capture->finish();
    Result.Capture.Enabled = Capture->ok();
    Result.Capture.Path = Config.TraceCapturePath;
    Result.Capture.Schema = Capture->schema();
    Result.Capture.Events = Capture->eventsWritten();
    Result.Capture.Bytes = Capture->bytesWritten();
    if (Obs) {
      Obs->counter("pipeline.trace_captured_events")
          ->inc(Result.Capture.Events);
      Obs->counter("pipeline.trace_captured_bytes")
          ->inc(Result.Capture.Bytes);
    }
  }

  Result.TraceTier = I.traceTier();

  if (Obs) {
    Obs->counter("pipeline.profile_runs")->inc();
    Obs->counter("pipeline.profile_cycles")->inc(Result.Stats.Cycles);
    Obs->counter("strideprof.invocations")->inc(Result.StrideInvocations);
    Obs->counter("strideprof.processed")->inc(Result.StrideProcessed);
    Obs->counter("strideprof.lfu_calls")->inc(Result.LfuCalls);
  }
  return Result;
}

ProfileRunResult Pipeline::profileFromStream(AccessSource &Src,
                                             ProfilingMethod Method,
                                             unsigned Threads) const {
  ObsSession *Obs = Session;
  TraceSpan Span(Obs, "profile-from-stream", "pipeline", /*Level=*/1);

  ProfileRunResult Result;
  Result.Method = Method;

  StrideProfilerConfig PC = Config.Profiler;
  PC.Sampling.Enabled = methodUsesSampling(Method);

  if (Threads > 1) {
    // Site-sharded parallel profile (driver/ParallelReplay.h): merged
    // results bit-identical to the serial branch below; per-shard metric
    // scopes fold into this session in job-id order.
    TraceSpan ES(Obs, "consume-stream-sharded", "profile", /*Level=*/1);
    ShardedProfileResult SP = profileEventsSharded(Src, PC, Threads,
                                                   /*Shards=*/0, Obs);
    Result.Stats.RuntimeCycles = SP.RuntimeCycles;
    Result.Stats.Cycles = SP.RuntimeCycles;
    Result.Stats.Completed = SP.Ok;
    Result.Strides = std::move(SP.Strides);
    Result.StrideInvocations = SP.Invocations;
    Result.StrideProcessed = SP.Processed;
    Result.LfuCalls = SP.LfuCalls;
  } else {
    StrideProfiler Profiler(Src.numSites(), PC);
    Profiler.attachObs(Obs);

    {
      TraceSpan ES(Obs, "consume-stream", "profile", /*Level=*/1);
      Result.Stats.RuntimeCycles =
          Profiler.consume(Src, Config.Interp.StrideBatchWindow);
    }
    Result.Stats.Cycles = Result.Stats.RuntimeCycles;
    Result.Stats.Completed = true;

    {
      TraceSpan HS(Obs, "strideprof-harvest", "profile", /*Level=*/1);
      Result.Strides = StrideProfile::fromProfiler(Profiler);
    }
    Result.StrideInvocations = Profiler.totalInvocations();
    Result.StrideProcessed = Profiler.totalProcessed();
    Result.LfuCalls = Profiler.totalLfuCalls();
  }

  if (Obs) {
    Obs->counter("pipeline.stream_profile_runs")->inc();
    Obs->counter("strideprof.invocations")->inc(Result.StrideInvocations);
    Obs->counter("strideprof.processed")->inc(Result.StrideProcessed);
    Obs->counter("strideprof.lfu_calls")->inc(Result.LfuCalls);
  }
  return Result;
}

RunStats Pipeline::runBaseline(DataSet DS) const {
  ObsSession *Obs = Session;
  TraceSpan Span(Obs, "run-baseline", "pipeline", /*Level=*/1);

  Program Prog = [&] {
    TraceSpan BS(Obs, "build-workload", "pipeline", /*Level=*/1);
    return W.build({DS, Config.WorkloadSeedOffset});
  }();
  assert(isWellFormed(Prog.M) && "workload built a malformed module");
  Interpreter I(Prog.M, std::move(Prog.Memory), Config.Timing, Config.Interp);
  MemoryHierarchy MH(Config.Memory);
  I.attachMemory(&MH);
  I.attachObs(Obs);
  labelSelfProfile(Obs, W, "baseline");
  RunStats Stats;
  {
    TraceSpan ES(Obs, "execute", "interp", /*Level=*/1);
    Stats = I.run();
  }
  assert(Stats.Completed && "baseline run did not complete");

  if (Obs) {
    Obs->counter("pipeline.baseline_runs")->inc();
    Obs->counter("pipeline.baseline_cycles")->inc(Stats.Cycles);
  }
  return Stats;
}

TimedRunResult Pipeline::runPrefetched(DataSet DS, const EdgeProfile &Edges,
                                       const StrideProfile &Strides) const {
  ObsSession *Obs = Session;
  TraceSpan Span(Obs, "timed-run", "pipeline", /*Level=*/1);

  Program Prog = [&] {
    TraceSpan BS(Obs, "build-workload", "pipeline", /*Level=*/1);
    return W.build({DS, Config.WorkloadSeedOffset});
  }();
  TimedRunResult Result;
  Result.Feedback =
      runFeedback(Prog.M, Edges, Strides, Config.Classifier, Obs);
  Result.Prefetches = insertPrefetches(Prog.M, Result.Feedback, Obs);
  assert(isWellFormed(Prog.M) && "prefetch insertion broke the module");

  Interpreter I(Prog.M, std::move(Prog.Memory), Config.Timing, Config.Interp);
  MemoryHierarchy MH(Config.Memory);
  if (Config.Memory.EnableAttribution)
    MH.enableAttribution(Prog.M.NumLoadSites);
  I.attachMemory(&MH);
  I.attachObs(Obs);
  labelSelfProfile(Obs, W, "timed");
  {
    TraceSpan ES(Obs, "execute", "interp", /*Level=*/1);
    Result.Stats = I.run();
  }
  assert(Result.Stats.Completed && "prefetched run did not complete");
  MH.finalizeAttribution();
  Result.Attribution = MH.attribution();
  Result.TraceTier = I.traceTier();

  if (Obs) {
    Obs->counter("pipeline.timed_runs")->inc();
    Obs->counter("pipeline.timed_cycles")->inc(Result.Stats.Cycles);
  }
  if (Obs && Result.Attribution.Enabled) {
    const PrefetchOutcomeCounts &T = Result.Attribution.Total;
    Obs->counter("prefetch.outcome.useful")->inc(T.Useful);
    Obs->counter("prefetch.outcome.late")->inc(T.Late);
    Obs->counter("prefetch.outcome.early")->inc(T.Early);
    Obs->counter("prefetch.outcome.redundant")->inc(T.Redundant);
    uint64_t Accesses = 0, L1Misses = 0, FullMisses = 0, Stall = 0;
    for (const SiteMissStats &SM : Result.Attribution.SiteMiss) {
      Accesses += SM.Accesses;
      L1Misses += SM.L1Misses;
      FullMisses += SM.FullMisses;
      Stall += SM.StallCycles;
    }
    Obs->counter("memsys.site_miss.accesses")->inc(Accesses);
    Obs->counter("memsys.site_miss.l1_misses")->inc(L1Misses);
    Obs->counter("memsys.site_miss.full_misses")->inc(FullMisses);
    Obs->counter("memsys.site_miss.stall_cycles")->inc(Stall);
  }
  return Result;
}

double Pipeline::speedup(DataSet RunDS, const EdgeProfile &Edges,
                         const StrideProfile &Strides) const {
  RunStats Base = runBaseline(RunDS);
  TimedRunResult Pf = runPrefetched(RunDS, Edges, Strides);
  return static_cast<double>(Base.Cycles) /
         static_cast<double>(Pf.Stats.Cycles);
}

double Pipeline::speedup(ProfilingMethod Method, DataSet ProfileDS,
                         DataSet RunDS) const {
  ProfileRunResult P = runProfile(Method, ProfileDS,
                                  /*WithMemorySystem=*/false);
  return speedup(RunDS, P.Edges, P.Strides);
}
