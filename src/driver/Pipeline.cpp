//===- driver/Pipeline.cpp - Instrument / profile / feedback / run ---------===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "ir/Verifier.h"

#include <cassert>

using namespace sprof;

ProfileRunResult Pipeline::runProfile(ProfilingMethod Method, DataSet DS,
                                      bool WithMemorySystem) const {
  Program Prog = W.build(DS);
  assert(isWellFormed(Prog.M) && "workload built a malformed module");

  ProfileRunResult Result;
  Result.Method = Method;
  Result.Instr = instrumentModule(Prog.M, Method, Config.Instrument);
  assert(isWellFormed(Prog.M) && "instrumentation broke the module");

  StrideProfilerConfig PC = Config.Profiler;
  PC.Sampling.Enabled = methodUsesSampling(Method);
  StrideProfiler Profiler(Prog.M.NumLoadSites, PC);

  Interpreter I(Prog.M, std::move(Prog.Memory), Config.Timing);
  MemoryHierarchy MH(Config.Memory);
  if (WithMemorySystem)
    I.attachMemory(&MH);
  I.attachProfiler(&Profiler);
  Result.Stats = I.run();
  assert(Result.Stats.Completed && "profile run did not complete");

  // Harvest the edge profile from the counters.
  Result.Edges = EdgeProfile(Prog.M.Functions.size());
  const std::vector<uint64_t> &Counters = I.counters();
  for (uint32_t FI = 0, FE = static_cast<uint32_t>(Prog.M.Functions.size());
       FI != FE; ++FI) {
    for (const auto &[E, CtrId] : Result.Instr.EdgeCounters[FI])
      Result.Edges.setFrequency(FI, E, Counters[CtrId]);
    if (Result.Instr.EntryCounters[FI] != NoId)
      Result.Edges.setEntryCount(FI,
                                 Counters[Result.Instr.EntryCounters[FI]]);
  }

  Result.Strides = StrideProfile::fromProfiler(Profiler);
  Result.StrideInvocations = Profiler.totalInvocations();
  Result.StrideProcessed = Profiler.totalProcessed();
  Result.LfuCalls = Profiler.totalLfuCalls();
  return Result;
}

RunStats Pipeline::runBaseline(DataSet DS) const {
  Program Prog = W.build(DS);
  assert(isWellFormed(Prog.M) && "workload built a malformed module");
  Interpreter I(Prog.M, std::move(Prog.Memory), Config.Timing);
  MemoryHierarchy MH(Config.Memory);
  I.attachMemory(&MH);
  RunStats Stats = I.run();
  assert(Stats.Completed && "baseline run did not complete");
  return Stats;
}

TimedRunResult Pipeline::runPrefetched(DataSet DS, const EdgeProfile &Edges,
                                       const StrideProfile &Strides) const {
  Program Prog = W.build(DS);
  TimedRunResult Result;
  Result.Feedback = runFeedback(Prog.M, Edges, Strides, Config.Classifier);
  Result.Prefetches = insertPrefetches(Prog.M, Result.Feedback);
  assert(isWellFormed(Prog.M) && "prefetch insertion broke the module");

  Interpreter I(Prog.M, std::move(Prog.Memory), Config.Timing);
  MemoryHierarchy MH(Config.Memory);
  I.attachMemory(&MH);
  Result.Stats = I.run();
  assert(Result.Stats.Completed && "prefetched run did not complete");
  return Result;
}

double Pipeline::speedup(ProfilingMethod Method, DataSet ProfileDS,
                         DataSet RunDS) const {
  ProfileRunResult P = runProfile(Method, ProfileDS,
                                  /*WithMemorySystem=*/false);
  RunStats Base = runBaseline(RunDS);
  TimedRunResult Pf = runPrefetched(RunDS, P.Edges, P.Strides);
  return static_cast<double>(Base.Cycles) /
         static_cast<double>(Pf.Stats.Cycles);
}
