//===- driver/ParallelReplay.h - Trace-sharded parallel replay --*- C++ -*-===//
//
// Part of the StrideProf project (see Pipeline.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel trace replay: decode and profile a captured access trace on N
/// cores while staying bit-identical to the serial path. Two independent
/// fan-outs, both scheduled as JobGraph jobs:
///
///   * Decode sharding (time partition). The sprof.trace/2 shard index
///     records, every IndexInterval events, the chunk's byte offset and the
///     carried delta-decoder state, so contiguous chunk ranges decode
///     independently. decodeTraceParallel() fans the ranges out and writes
///     each job's events into its precomputed slot of one flat buffer --
///     the finished buffer is byte-for-byte the serial decode.
///
///   * Profile sharding (site partition). The global chunk-sampling phase
///     of Figure 9 is a pure function of the load's position in the run
///     (StrideProfiler::profileAt), and every other piece of profiler
///     state is strictly per-site. profileEventsSharded() therefore
///     buckets the loads by SiteId modulo the shard count -- preserving
///     per-site program order and each load's global position -- and runs
///     one full-size StrideProfiler per shard. Per-site results are
///     bit-identical to the serial profiler's, so folding the disjoint
///     shards in job-id order (the ShardedMetricsRegistry discipline)
///     through ProfileData's order-preserving merge reproduces the serial
///     profile verbatim: same values, same bytes. The determinism contract
///     is spelled out in docs/TRACE.md.
///
/// Telemetry: each profile shard runs against a child ObsSession
/// (ObsSession::jobConfig) whose registry is merged into the parent in
/// job-id order and recorded as a JobRecord, so sweep reports show shard
/// stragglers and queue wait exactly like engine jobs.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_DRIVER_PARALLELREPLAY_H
#define SPROF_DRIVER_PARALLELREPLAY_H

#include "driver/TraceReplay.h"

#include <string>
#include <vector>

namespace sprof {

class ObsSession;

/// Outcome of a sharded profile phase; the scalar fields mirror what the
/// serial StrideProfiler accumulators would hold after the same stream.
struct ShardedProfileResult {
  bool Ok = false;
  std::string Error;
  uint64_t RuntimeCycles = 0; ///< summed simulated strideProf cost
  uint64_t Invocations = 0;
  uint64_t Processed = 0;
  uint64_t LfuCalls = 0;
  StrideProfile Strides;
  unsigned ShardsUsed = 0;
};

/// Profiles \p Src's load events under \p PC with \p Threads workers over
/// \p Shards site-partitions (0 = one shard per thread; clamped to the
/// site count). The merged profile and the scalar accumulators are
/// bit-identical to a serial StrideProfiler::consume() over the same
/// stream -- for any shard count, any thread count, all eight profiling
/// methods. \p Obs, when non-null, receives per-shard JobRecords and the
/// job-id-ordered metric fold.
ShardedProfileResult profileEventsSharded(AccessSource &Src,
                                          const StrideProfilerConfig &PC,
                                          unsigned Threads,
                                          unsigned Shards = 0,
                                          ObsSession *Obs = nullptr);

/// Decodes the indexed trace \p Path (whose reader \p R came from
/// TraceReader::openFileIndexed with index().Present) into \p Events with
/// \p Threads workers, one JobGraph job per contiguous chunk range. On
/// failure returns false and reports the first failing shard's error
/// through \p Error / \p Code. The buffer is identical to a serial decode.
bool decodeTraceParallel(const std::string &Path, const TraceReader &R,
                         unsigned Threads, std::vector<AccessEvent> &Events,
                         std::string &Error, TraceError &Code);

/// replayTraceFile's parallel engine: opens \p Path through the seekable
/// tail, decodes /2 traces with decodeTraceParallel (/1 and text traces
/// fall back to serial decode -- they carry no index), then feeds
/// replayStream, whose profile phase shards across Opts.Threads. The
/// memory-simulation passes remain serial (cache state is order-dependent)
/// and the whole result is bit-identical to Opts.Threads == 1.
/// Callers normally go through replayTraceFile(), which dispatches here
/// when Opts.Threads > 1.
TraceReplayResult replayTraceFileParallel(const std::string &Path,
                                          const TraceReplayOptions &Opts);

} // namespace sprof

#endif // SPROF_DRIVER_PARALLELREPLAY_H
