//===- profile/ProfileDiff.cpp - Stride-profile accuracy diffing -----------===//
//
// Part of the StrideProf project (see ProfileDiff.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileDiff.h"

#include <algorithm>

using namespace sprof;

namespace {

const StrideSiteSummary &siteOrEmpty(const StrideProfile &P, uint32_t Site) {
  static const StrideSiteSummary Empty;
  return Site < P.numSites() ? P.site(Site) : Empty;
}

/// Share of A's top-4 stride mass whose values B also ranks among its own
/// top 4. Sites where neither side saw a non-zero stride agree vacuously.
double top4Overlap(const StrideSiteSummary &A, const StrideSiteSummary &B) {
  uint64_t MassA = 0, Shared = 0;
  size_t NA = std::min<size_t>(A.TopStrides.size(), 4);
  size_t NB = std::min<size_t>(B.TopStrides.size(), 4);
  for (size_t I = 0; I != NA; ++I) {
    MassA += A.TopStrides[I].Count;
    for (size_t J = 0; J != NB; ++J)
      if (B.TopStrides[J].Value == A.TopStrides[I].Value) {
        Shared += A.TopStrides[I].Count;
        break;
      }
  }
  if (MassA == 0)
    return NB == 0 ? 1.0 : 0.0;
  return static_cast<double>(Shared) / static_cast<double>(MassA);
}

} // namespace

ProfileDiffResult sprof::diffStrideProfiles(const StrideProfile &A,
                                            const StrideProfile &B,
                                            const ClassifierConfig &Config) {
  ProfileDiffResult R;
  R.NumSites = std::max(A.numSites(), B.numSites());

  uint64_t TotalWeight = 0;
  double WeightedScore = 0.0;
  for (uint32_t Site = 0; Site != R.NumSites; ++Site) {
    const StrideSiteSummary &SA = siteOrEmpty(A, Site);
    const StrideSiteSummary &SB = siteOrEmpty(B, Site);
    if (SA.TotalStrides == 0 && SB.TotalStrides == 0)
      continue;

    SiteDiffEntry E;
    E.Site = Site;
    E.WeightA = SA.TotalStrides;
    E.WeightB = SB.TotalStrides;
    E.TopStrideA = SA.top1Stride();
    E.TopStrideB = SB.top1Stride();
    E.TopStrideMatch = !SA.TopStrides.empty() == !SB.TopStrides.empty() &&
                       E.TopStrideA == E.TopStrideB;
    E.Top4Overlap = top4Overlap(SA, SB);
    E.ClassA = classifyStrideSummary(SA, Config);
    E.ClassB = classifyStrideSummary(SB, Config);
    E.Score = 0.5 * (E.ClassA == E.ClassB ? 1.0 : 0.0) + 0.5 * E.Top4Overlap;

    ++R.SitesCompared;
    if (E.TopStrideMatch)
      ++R.TopStrideMatches;
    if (E.ClassA == E.ClassB)
      ++R.ClassMatches;
    ++R.Flips[static_cast<size_t>(E.ClassA)][static_cast<size_t>(E.ClassB)];
    TotalWeight += E.WeightA;
    WeightedScore += static_cast<double>(E.WeightA) * E.Score;
    R.Sites.push_back(E);
  }

  if (R.SitesCompared != 0) {
    R.TopStrideAgreement = static_cast<double>(R.TopStrideMatches) /
                           static_cast<double>(R.SitesCompared);
    R.ClassAgreement = static_cast<double>(R.ClassMatches) /
                       static_cast<double>(R.SitesCompared);
  }
  // Sites the reference never exercised carry no weight; a diff with only
  // such sites scores by unweighted class agreement instead of 0/0.
  R.WeightedAccuracy = TotalWeight != 0
                           ? WeightedScore / static_cast<double>(TotalWeight)
                           : R.ClassAgreement;
  return R;
}
