//===- profile/StrideProfiler.cpp - The strideProf runtime routine ---------===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "profile/StrideProfiler.h"

#include "obs/Obs.h"

#include <algorithm>
#include <cassert>

using namespace sprof;

StrideProfiler::StrideProfiler(uint32_t NumSites,
                               const StrideProfilerConfig &Config)
    : Config(Config) {
  Hot.assign(NumSites, HotSite());
  Sites.reserve(NumSites);
  for (uint32_t I = 0; I != NumSites; ++I) {
    StrideSiteData D;
    D.Lfu = LfuValueProfiler(Config.Lfu);
    Sites.push_back(std::move(D));
  }
  attachObs(nullptr);
}

void StrideProfiler::attachObs(ObsSession *Session) {
  Histogram *LfuWork = nullptr;
  Counter *LfuMerges = nullptr;
  if (Session) {
    Obs.ChunkSkipped = Session->counter("strideprof.chunk_skipped");
    Obs.FineSkipped = Session->counter("strideprof.fine_skipped");
    Obs.ZeroStrideFast = Session->counter("strideprof.zero_stride_fast");
    Obs.Reanchored = Session->counter("strideprof.reanchored");
    Obs.InvocationCost = Session->histogram("strideprof.invocation_cost");
    LfuWork = Session->histogram("lfu.add_work");
    LfuMerges = Session->counter("lfu.merges");
  } else {
    Obs = ObsSinks();
  }
  // Null-object sinks: a session can also hand back null metrics (metric
  // collection disabled); always fall back to the dummies so the hot
  // paths never test a sink pointer.
  if (!Obs.ChunkSkipped)
    Obs.ChunkSkipped = &dummyCounter();
  if (!Obs.FineSkipped)
    Obs.FineSkipped = &dummyCounter();
  if (!Obs.ZeroStrideFast)
    Obs.ZeroStrideFast = &dummyCounter();
  if (!Obs.Reanchored)
    Obs.Reanchored = &dummyCounter();
  if (!Obs.InvocationCost)
    Obs.InvocationCost = &dummyHistogram();
  for (StrideSiteData &D : Sites)
    D.Lfu.attachObs(LfuWork, LfuMerges);
}

const StrideSiteData &StrideProfiler::site(uint32_t SiteId) const {
  assert(SiteId < Sites.size() && "site id out of range");
  const HotSite &H = Hot[SiteId];
  StrideSiteData &D = Sites[SiteId];
  D.PrevAddress = H.PrevAddress;
  D.HasPrevAddress = H.HasPrevAddress != 0;
  D.PrevStride = H.PrevStride;
  D.HasPrevStride = H.HasPrevStride != 0;
  D.NumberToSkip = H.NumberToSkip;
  D.LastChunkEpoch = H.LastChunkEpoch;
  D.PrevGlobalRef = H.PrevGlobalRef;
  D.RefGapSum = H.RefGapSum;
  D.RefGapCount = H.RefGapCount;
  D.Invocations = H.Invocations;
  return D;
}

uint64_t StrideProfiler::profile(uint32_t SiteId, uint64_t Address,
                                 uint64_t GlobalRefIndex) {
  uint64_t Cost = profileImpl(SiteId, Address, GlobalRefIndex);
  Obs.InvocationCost->record(Cost);
  return Cost;
}

namespace {

/// Use-distance statistic (Section 6): gap in global memory references
/// between successive visits to a site. Tracked before sampling so the
/// average is unbiased.
template <typename HotT>
inline void updateRefGap(HotT &H, uint64_t GlobalRefIndex) {
  if (GlobalRefIndex != 0) {
    if (H.PrevGlobalRef != 0 && GlobalRefIndex > H.PrevGlobalRef) {
      H.RefGapSum += GlobalRefIndex - H.PrevGlobalRef;
      ++H.RefGapCount;
    }
    H.PrevGlobalRef = GlobalRefIndex;
  }
}

} // namespace

uint64_t StrideProfiler::processedTail(uint32_t SiteId, HotSite &H,
                                       uint64_t Address, uint64_t Epoch) {
  StrideSiteData &D = Sites[SiteId];
  const StrideCostModel &C = Config.Costs;

  ++TotalProcessed;
  ++D.Processed;

  // Re-anchor at chunk boundaries: a "stride" spanning a skipped chunk is
  // not a stride (see StrideSiteData::LastChunkEpoch).
  if (Config.Sampling.Enabled && H.LastChunkEpoch != Epoch) {
    H.LastChunkEpoch = Epoch;
    H.HasPrevAddress = 0;
    H.HasPrevStride = 0;
    Obs.Reanchored->inc();
  }

  // First observation of this site: just remember the address.
  if (!H.HasPrevAddress) {
    H.PrevAddress = Address;
    H.HasPrevAddress = 1;
    return C.ZeroStrideCost;
  }

  // Zero-stride shortcut (Figure 7): addresses equal under the coarsening
  // shift bypass the heavy LFU path entirely.
  if (sameAddress(Address, H.PrevAddress)) {
    ++D.NumZeroStride;
    Obs.ZeroStrideFast->inc();
    return C.ZeroStrideCost;
  }

  int64_t Stride = static_cast<int64_t>(Address) -
                   static_cast<int64_t>(H.PrevAddress);
  uint64_t Cost = C.CoreCost;

  // Stride-difference bookkeeping: a high share of zero differences marks
  // a *phased* stride sequence (Figure 4), which PMST classification needs.
  if (H.HasPrevStride) {
    if (Stride - H.PrevStride == 0)
      ++D.NumZeroDiff;
    else
      H.PrevStride = Stride;
  } else {
    H.PrevStride = Stride;
    H.HasPrevStride = 1;
  }

  H.PrevAddress = Address;
  ++D.NumNonZeroStride;

  ++TotalLfuCalls;
  ++D.LfuCalls;
  unsigned Work = D.Lfu.add(Stride);
  Cost += C.LfuBaseCost + static_cast<uint64_t>(C.LfuPerWorkCost) * Work;
  return Cost;
}

uint64_t StrideProfiler::profileImpl(uint32_t SiteId, uint64_t Address,
                                     uint64_t GlobalRefIndex) {
  assert(SiteId < Hot.size() && "site id out of range");
  HotSite &H = Hot[SiteId];
  const StrideCostModel &C = Config.Costs;

  ++TotalInvocations;
  ++H.Invocations;
  uint64_t Cost = C.CallOverhead;

  updateRefGap(H, GlobalRefIndex);

  if (Config.Sampling.Enabled) {
    // Chunk sampling (Figure 9): global skip/profile phases.
    Cost += C.ChunkCheckCost;
    if (NumberSkipped < Config.Sampling.ChunkSkip) {
      ++NumberSkipped;
      Obs.ChunkSkipped->inc();
      return Cost;
    }
    if (NumberProfiled == Config.Sampling.ChunkProfile) {
      // Phase flip: reset both counters; this reference is skipped too,
      // exactly as in Figure 9. The next profiled chunk is a new epoch.
      NumberProfiled = 0;
      NumberSkipped = 0;
      ++ChunkEpoch;
      Obs.ChunkSkipped->inc();
      return Cost;
    }
    ++NumberProfiled;

    // Fine sampling: 1 of every FineInterval references per site.
    Cost += C.FineCheckCost;
    if (H.NumberToSkip > 0) {
      --H.NumberToSkip;
      Obs.FineSkipped->inc();
      return Cost;
    }
    H.NumberToSkip = Config.Sampling.FineInterval - 1;
  }

  return Cost + processedTail(SiteId, H, Address, ChunkEpoch);
}

uint64_t StrideProfiler::profileAt(uint32_t SiteId, uint64_t Address,
                                   uint64_t GlobalRefIndex,
                                   uint64_t LoadIndex) {
  assert(SiteId < Hot.size() && "site id out of range");
  HotSite &H = Hot[SiteId];
  const StrideCostModel &C = Config.Costs;

  ++TotalInvocations;
  ++H.Invocations;
  uint64_t Cost = C.CallOverhead;

  updateRefGap(H, GlobalRefIndex);

  if (Config.Sampling.Enabled) {
    // The chunk phase as a pure function of the position (see the header
    // comment): one cycle is ChunkSkip skips, ChunkProfile profiled
    // references, and the flip reference -- which Figure 9 also skips.
    Cost += C.ChunkCheckCost;
    const uint64_t Cycle =
        Config.Sampling.ChunkSkip + Config.Sampling.ChunkProfile + 1;
    const uint64_t Phase = LoadIndex % Cycle;
    if (Phase < Config.Sampling.ChunkSkip || Phase == Cycle - 1) {
      Obs.ChunkSkipped->inc();
      Obs.InvocationCost->record(Cost);
      return Cost;
    }
    Cost += C.FineCheckCost;
    if (H.NumberToSkip > 0) {
      --H.NumberToSkip;
      Obs.FineSkipped->inc();
      Obs.InvocationCost->record(Cost);
      return Cost;
    }
    H.NumberToSkip = Config.Sampling.FineInterval - 1;
    Cost += processedTail(SiteId, H, Address, LoadIndex / Cycle + 1);
    Obs.InvocationCost->record(Cost);
    return Cost;
  }

  Cost += processedTail(SiteId, H, Address, ChunkEpoch);
  Obs.InvocationCost->record(Cost);
  return Cost;
}

uint64_t StrideProfiler::profileBatch(const StrideEvent *Events, size_t N) {
  const StrideCostModel &C = Config.Costs;
  uint64_t Total = 0;
  // Resolve the sinks once per drain (they are members, but pinning them
  // in locals keeps the loops free of repeated this-> loads).
  Counter *ChunkSkipped = Obs.ChunkSkipped;
  Counter *FineSkipped = Obs.FineSkipped;
  Histogram *InvocationCost = Obs.InvocationCost;

  if (!Config.Sampling.Enabled) {
    // No sampling: every event runs the full core.
    for (size_t I = 0; I != N; ++I) {
      const StrideEvent &E = Events[I];
      assert(E.SiteId < Hot.size() && "site id out of range");
      HotSite &H = Hot[E.SiteId];
      ++H.Invocations;
      updateRefGap(H, E.GlobalRefIndex);
      uint64_t Cost =
          C.CallOverhead + processedTail(E.SiteId, H, E.Address, ChunkEpoch);
      InvocationCost->record(Cost);
      Total += Cost;
    }
    TotalInvocations += N;
    return Total;
  }

  // Sampling: the global chunk phase is constant across a run of events,
  // so walk the block in phase-length segments and hoist the phase
  // decision (and its fixed cost) out of the per-event loop. State after
  // the walk is exactly what N successive profile() calls would leave.
  const uint64_t SkipCost = C.CallOverhead + C.ChunkCheckCost;
  const uint64_t CheckCost = SkipCost + C.FineCheckCost;
  size_t I = 0;
  while (I != N) {
    if (NumberSkipped < Config.Sampling.ChunkSkip) {
      // Skip phase: each event only touches its site's invocation count
      // and use-distance state; cost and telemetry are block-bulk.
      size_t K = static_cast<size_t>(
          std::min<uint64_t>(N - I, Config.Sampling.ChunkSkip - NumberSkipped));
      for (size_t End = I + K; I != End; ++I) {
        const StrideEvent &E = Events[I];
        assert(E.SiteId < Hot.size() && "site id out of range");
        HotSite &H = Hot[E.SiteId];
        ++H.Invocations;
        updateRefGap(H, E.GlobalRefIndex);
      }
      NumberSkipped += K;
      TotalInvocations += K;
      ChunkSkipped->inc(K);
      InvocationCost->record(SkipCost, K);
      Total += SkipCost * K;
      continue;
    }
    if (NumberProfiled == Config.Sampling.ChunkProfile) {
      // Phase flip: one event absorbed as a skip, exactly as profile().
      const StrideEvent &E = Events[I];
      assert(E.SiteId < Hot.size() && "site id out of range");
      HotSite &H = Hot[E.SiteId];
      ++H.Invocations;
      updateRefGap(H, E.GlobalRefIndex);
      NumberProfiled = 0;
      NumberSkipped = 0;
      ++ChunkEpoch;
      ++TotalInvocations;
      ChunkSkipped->inc();
      InvocationCost->record(SkipCost);
      Total += SkipCost;
      ++I;
      continue;
    }
    // Profile phase: up to the chunk's remaining budget, fine sampling and
    // the shared core per event.
    size_t K = static_cast<size_t>(std::min<uint64_t>(
        N - I, Config.Sampling.ChunkProfile - NumberProfiled));
    for (size_t End = I + K; I != End; ++I) {
      const StrideEvent &E = Events[I];
      assert(E.SiteId < Hot.size() && "site id out of range");
      HotSite &H = Hot[E.SiteId];
      ++H.Invocations;
      updateRefGap(H, E.GlobalRefIndex);
      uint64_t Cost = CheckCost;
      if (H.NumberToSkip > 0) {
        --H.NumberToSkip;
        FineSkipped->inc();
      } else {
        H.NumberToSkip = Config.Sampling.FineInterval - 1;
        Cost += processedTail(E.SiteId, H, E.Address, ChunkEpoch);
      }
      InvocationCost->record(Cost);
      Total += Cost;
    }
    NumberProfiled += K;
    TotalInvocations += K;
  }
  return Total;
}

uint64_t StrideProfiler::consume(AccessSource &Src, size_t BatchSize) {
  if (BatchSize == 0)
    BatchSize = 1;
  std::vector<StrideEvent> Buf(BatchSize);
  uint64_t Total = 0;
  while (size_t N = Src.pull(Buf.data(), Buf.size())) {
    // Compact out non-load events (prefetches in mixed external traces);
    // strideProf only ever sees demand loads.
    size_t M = 0;
    for (size_t I = 0; I < N; ++I)
      if (Buf[I].Kind == AccessKind::Load) {
        if (M != I)
          Buf[M] = Buf[I];
        ++M;
      }
    Total += profileBatch(Buf.data(), M);
  }
  return Total;
}
