//===- profile/StrideProfiler.cpp - The strideProf runtime routine ---------===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "profile/StrideProfiler.h"

#include "obs/Obs.h"

#include <cassert>

using namespace sprof;

StrideProfiler::StrideProfiler(uint32_t NumSites,
                               const StrideProfilerConfig &Config)
    : Config(Config) {
  Sites.reserve(NumSites);
  for (uint32_t I = 0; I != NumSites; ++I) {
    StrideSiteData D;
    D.Lfu = LfuValueProfiler(Config.Lfu);
    Sites.push_back(std::move(D));
  }
}

void StrideProfiler::attachObs(ObsSession *Session) {
  Obs = ObsSinks();
  Histogram *LfuWork = nullptr;
  Counter *LfuMerges = nullptr;
  if (Session) {
    Obs.ChunkSkipped = Session->counter("strideprof.chunk_skipped");
    Obs.FineSkipped = Session->counter("strideprof.fine_skipped");
    Obs.ZeroStrideFast = Session->counter("strideprof.zero_stride_fast");
    Obs.Reanchored = Session->counter("strideprof.reanchored");
    Obs.InvocationCost = Session->histogram("strideprof.invocation_cost");
    LfuWork = Session->histogram("lfu.add_work");
    LfuMerges = Session->counter("lfu.merges");
  }
  for (StrideSiteData &D : Sites)
    D.Lfu.attachObs(LfuWork, LfuMerges);
}

uint64_t StrideProfiler::profile(uint32_t SiteId, uint64_t Address,
                                 uint64_t GlobalRefIndex) {
  uint64_t Cost = profileImpl(SiteId, Address, GlobalRefIndex);
  if (Obs.InvocationCost)
    Obs.InvocationCost->record(Cost);
  return Cost;
}

uint64_t StrideProfiler::profileImpl(uint32_t SiteId, uint64_t Address,
                                     uint64_t GlobalRefIndex) {
  assert(SiteId < Sites.size() && "site id out of range");
  StrideSiteData &D = Sites[SiteId];
  const StrideCostModel &C = Config.Costs;

  ++TotalInvocations;
  ++D.Invocations;
  uint64_t Cost = C.CallOverhead;

  // Use-distance statistic (Section 6): gap in global memory references
  // between successive visits to this site. Tracked before sampling so the
  // average is unbiased.
  if (GlobalRefIndex != 0) {
    if (D.PrevGlobalRef != 0 && GlobalRefIndex > D.PrevGlobalRef) {
      D.RefGapSum += GlobalRefIndex - D.PrevGlobalRef;
      ++D.RefGapCount;
    }
    D.PrevGlobalRef = GlobalRefIndex;
  }

  if (Config.Sampling.Enabled) {
    // Chunk sampling (Figure 9): global skip/profile phases.
    Cost += C.ChunkCheckCost;
    if (NumberSkipped < Config.Sampling.ChunkSkip) {
      ++NumberSkipped;
      if (Obs.ChunkSkipped)
        Obs.ChunkSkipped->inc();
      return Cost;
    }
    if (NumberProfiled == Config.Sampling.ChunkProfile) {
      // Phase flip: reset both counters; this reference is skipped too,
      // exactly as in Figure 9. The next profiled chunk is a new epoch.
      NumberProfiled = 0;
      NumberSkipped = 0;
      ++ChunkEpoch;
      if (Obs.ChunkSkipped)
        Obs.ChunkSkipped->inc();
      return Cost;
    }
    ++NumberProfiled;

    // Fine sampling: 1 of every FineInterval references per site.
    Cost += C.FineCheckCost;
    if (D.NumberToSkip > 0) {
      --D.NumberToSkip;
      if (Obs.FineSkipped)
        Obs.FineSkipped->inc();
      return Cost;
    }
    D.NumberToSkip = Config.Sampling.FineInterval - 1;
  }

  ++TotalProcessed;
  ++D.Processed;

  // Re-anchor at chunk boundaries: a "stride" spanning a skipped chunk is
  // not a stride (see StrideSiteData::LastChunkEpoch).
  if (Config.Sampling.Enabled && D.LastChunkEpoch != ChunkEpoch) {
    D.LastChunkEpoch = ChunkEpoch;
    D.HasPrevAddress = false;
    D.HasPrevStride = false;
    if (Obs.Reanchored)
      Obs.Reanchored->inc();
  }

  // First observation of this site: just remember the address.
  if (!D.HasPrevAddress) {
    D.PrevAddress = Address;
    D.HasPrevAddress = true;
    Cost += C.ZeroStrideCost;
    return Cost;
  }

  // Zero-stride shortcut (Figure 7): addresses equal under the coarsening
  // shift bypass the heavy LFU path entirely.
  if (sameAddress(Address, D.PrevAddress)) {
    ++D.NumZeroStride;
    Cost += C.ZeroStrideCost;
    if (Obs.ZeroStrideFast)
      Obs.ZeroStrideFast->inc();
    return Cost;
  }

  int64_t Stride = static_cast<int64_t>(Address) -
                   static_cast<int64_t>(D.PrevAddress);
  Cost += C.CoreCost;

  // Stride-difference bookkeeping: a high share of zero differences marks
  // a *phased* stride sequence (Figure 4), which PMST classification needs.
  if (D.HasPrevStride) {
    if (Stride - D.PrevStride == 0)
      ++D.NumZeroDiff;
    else
      D.PrevStride = Stride;
  } else {
    D.PrevStride = Stride;
    D.HasPrevStride = true;
  }

  D.PrevAddress = Address;
  ++D.NumNonZeroStride;

  ++TotalLfuCalls;
  ++D.LfuCalls;
  unsigned Work = D.Lfu.add(Stride);
  Cost += C.LfuBaseCost + static_cast<uint64_t>(C.LfuPerWorkCost) * Work;
  return Cost;
}
