//===- profile/ProfileDiff.h - Stride-profile accuracy diffing --*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two stride profiles of the same program -- e.g. exhaustive vs
/// sample-edge-check, or train vs ref input -- and quantifies how well the
/// second reproduces the first, in the terms the paper's Figures 23-25 use
/// to argue that sampled/train profiles stay accurate: does the sampled
/// profile find the same dominant strides, and does the Figure-5 classifier
/// reach the same SSST/PMST/WSST verdicts it would have reached on the
/// reference profile? Site comparisons are weighted by the reference
/// profile's dynamic stride counts, so a flip on a hot site costs more than
/// a flip on a site that barely ran.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_PROFILE_PROFILEDIFF_H
#define SPROF_PROFILE_PROFILEDIFF_H

#include "feedback/Classifier.h"
#include "profile/ProfileData.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// Number of StrideClass values (None/SSST/PMST/WSST); dimension of the
/// classification-flip matrix.
constexpr size_t NumStrideClasses = 4;

/// Per-site comparison of one load site across the two profiles. Profile A
/// is the reference (exhaustive / train), profile B the candidate
/// (sampled / ref).
struct SiteDiffEntry {
  uint32_t Site = 0;
  /// A's dynamic stride count -- the weight of this site in the aggregate.
  uint64_t WeightA = 0;
  uint64_t WeightB = 0;
  int64_t TopStrideA = 0;
  int64_t TopStrideB = 0;
  bool TopStrideMatch = false;
  /// Share of A's top-4 stride mass whose stride values B also ranks in
  /// its own top 4 (1.0 when both sites saw no non-zero strides at all).
  double Top4Overlap = 0.0;
  StrideClass ClassA = StrideClass::None;
  StrideClass ClassB = StrideClass::None;
  /// Blended per-site accuracy: classification agreement and stride
  /// agreement in equal parts (see ProfileDiffResult::WeightedAccuracy).
  double Score = 0.0;
};

/// Aggregate diff of two stride profiles.
struct ProfileDiffResult {
  /// max(A.numSites, B.numSites); sites absent from one profile compare
  /// against an all-zero summary.
  uint32_t NumSites = 0;
  /// Sites active (TotalStrides > 0) in at least one of the two profiles,
  /// ascending by site id.
  std::vector<SiteDiffEntry> Sites;
  /// Classification-flip table: Flips[classA][classB] counts active sites
  /// A classifies as classA and B as classB (diagonal = agreement).
  /// Indexed by StrideClass cast to size_t.
  uint64_t Flips[NumStrideClasses][NumStrideClasses] = {};
  uint64_t SitesCompared = 0;    ///< active sites
  uint64_t TopStrideMatches = 0; ///< active sites with equal top-1 stride
  uint64_t ClassMatches = 0;     ///< active sites with equal class
  /// Unweighted share of active sites whose dominant stride agrees.
  double TopStrideAgreement = 0.0;
  /// Unweighted share of active sites whose classification agrees.
  double ClassAgreement = 0.0;
  /// The headline accuracy score in [0, 1]: the WeightA-weighted mean of
  /// per-site scores, where each site scores 0.5 for B reproducing A's
  /// Figure-5 classification plus 0.5 times the top-4 stride-mass overlap.
  /// 1.0 means B would drive the classifier and prefetcher exactly as A
  /// does on every dynamically important site.
  double WeightedAccuracy = 0.0;
};

/// Diffs candidate profile \p B against reference profile \p A. Both sides
/// are classified per-site with \p Config via classifyStrideSummary (no
/// frequency/trip-count filtering -- this compares what the profiles say,
/// not what one particular module's loop structure admits).
ProfileDiffResult diffStrideProfiles(const StrideProfile &A,
                                     const StrideProfile &B,
                                     const ClassifierConfig &Config = {});

} // namespace sprof

#endif // SPROF_PROFILE_PROFILEDIFF_H
