//===- profile/ProfileStore.h - Persistent, mergeable profiles -*- C++ -*-===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk form of a profiling run: one versioned text artifact
/// ("sprof.profile/1") bundling the edge profile, the stride profile, and
/// provenance metadata (workload, profiling method, data set). This is
/// what makes the paper's two-pass workflow (Section 3.2) real instead of
/// in-memory only: a train run can save its profiles, a later compile can
/// load them and feed them to the Figure-5 classifier, and profiles
/// collected in shards (one per data slice or seed replica) can be merged
/// deterministically into one aggregate, the way production FDO pipelines
/// combine raw profile shards.
///
/// Serialization is byte-deterministic: the same store always produces the
/// same text, so stores can be compared for bit-identity (the engine's
/// parallel-equals-serial guarantee is tested this way).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_PROFILE_PROFILESTORE_H
#define SPROF_PROFILE_PROFILESTORE_H

#include "profile/ProfileData.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace sprof {

/// Schema line at the top of every profile file.
inline constexpr const char *ProfileFileSchemaV1 = "sprof.profile/1";

/// Provenance stamped into the file header. Free-form single-line strings;
/// merge() requires Workload (and the profile shapes) to match so shards
/// from different programs cannot combine silently.
struct ProfileMeta {
  std::string Workload; ///< Figure-15 name ("181.mcf")
  std::string Method;   ///< profilingMethodName() string
  std::string DataSet;  ///< dataSetName() string
};

/// One saved (or saveable) profiling run: metadata + both profiles.
class ProfileStore {
public:
  ProfileStore() = default;
  ProfileStore(ProfileMeta Meta, EdgeProfile Edges, StrideProfile Strides)
      : Meta(std::move(Meta)), Edges(std::move(Edges)),
        Strides(std::move(Strides)) {}

  const ProfileMeta &meta() const { return Meta; }
  ProfileMeta &meta() { return Meta; }
  const EdgeProfile &edges() const { return Edges; }
  const StrideProfile &strides() const { return Strides; }

  size_t numFunctions() const { return Edges.numFunctions(); }
  uint32_t numSites() const { return Strides.numSites(); }

  /// Writes the sprof.profile/1 text form. Deterministic byte for byte.
  void save(std::ostream &OS) const;
  bool saveFile(const std::string &Path) const;
  std::string toString() const;

  /// Parses a file previously written by save. On failure returns false,
  /// leaves \p Out unspecified, and describes the problem in \p Error
  /// (when non-null): unknown schema version, malformed header, or a
  /// malformed/out-of-range profile line.
  static bool load(std::istream &IS, ProfileStore &Out,
                   std::string *Error = nullptr);
  static bool loadFile(const std::string &Path, ProfileStore &Out,
                       std::string *Error = nullptr);
  static bool loadString(const std::string &Text, ProfileStore &Out,
                         std::string *Error = nullptr);

  /// Accumulates \p Shard into this store: entry/edge counters sum, stride
  /// scalar counters sum, and per-site top-stride tables union by stride
  /// value (counts of equal strides sum). The union is deliberately NOT
  /// truncated here; call truncateTopStrides once after the last shard so
  /// the result is independent of shard order. Fails (returning false,
  /// explaining in \p Error) when the workload name or either profile
  /// shape differs.
  bool merge(const ProfileStore &Shard, std::string *Error = nullptr);

  /// LFU-style re-merge of every site's top-stride table: sort by count
  /// descending (stride value ascending on ties) and keep the first
  /// \p TopN entries — the same ordering LfuValueProfiler::topValues()
  /// produces, so merged stores look like single-run stores downstream.
  void truncateTopStrides(unsigned TopN);

  /// Merges \p Shards into one store: union everything, then truncate each
  /// site to \p TopN once. Any permutation of \p Shards produces
  /// byte-identical output. Requires at least one shard.
  static bool mergeShards(const std::vector<const ProfileStore *> &Shards,
                          unsigned TopN, ProfileStore &Out,
                          std::string *Error = nullptr);

private:
  ProfileMeta Meta;
  EdgeProfile Edges;
  StrideProfile Strides;
};

} // namespace sprof

#endif // SPROF_PROFILE_PROFILESTORE_H
