//===- profile/LfuValueProfiler.h - Calder-style LFU value profiler -*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Least-Frequently-Used value profiler of Calder, Feller and Eustace
/// ("Value Profiling", MICRO-30, 1997), which the paper adopts for stride
/// collection (Section 3.1). Two buffers track recurrent values: a small
/// *temp* buffer absorbs the raw stream with LFU replacement, and a *final*
/// buffer receives the highest-frequency survivors at periodic merges.
///
/// The paper's enhancement (Figure 7) of treating nearly-equal strides as
/// equal is supported through a configurable coarsening shift: values are
/// compared by `(a >> Shift) == (b >> Shift)`.
///
/// Every operation reports an abstract *work* count (buffer entries
/// touched) so the simulation can charge realistic profiling-overhead
/// cycles (Figures 20/22).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_PROFILE_LFUVALUEPROFILER_H
#define SPROF_PROFILE_LFUVALUEPROFILER_H

#include <cstdint>
#include <vector>

namespace sprof {

class Counter;
class Histogram;

/// Configuration for the LFU value profiler.
struct LfuConfig {
  /// Entries in the temp buffer (LFU replacement).
  unsigned TempSize = 16;
  /// Entries kept in the final buffer at merges.
  unsigned FinalSize = 8;
  /// Temp buffer is merged into the final buffer after this many updates.
  unsigned MergeInterval = 1024;
  /// Coarsening shift for value equality (0 = exact; the paper's
  /// `is_same_value` uses 4, i.e. values within the same 16-byte bucket
  /// compare equal).
  unsigned CoarsenShift = 0;
};

/// A profiled value and its frequency.
struct ValueCount {
  int64_t Value = 0;
  uint64_t Count = 0;
};

/// LFU-replacement top-value profiler.
class LfuValueProfiler {
public:
  LfuValueProfiler() : LfuValueProfiler(LfuConfig()) {}
  explicit LfuValueProfiler(const LfuConfig &Config);

  /// Records one occurrence of \p Value.
  /// \returns the number of buffer entries examined (work units), merge
  /// work included when a merge triggers.
  unsigned add(int64_t Value);

  /// Snapshot of the current top values: final merged with temp, combined
  /// by (coarsened) equality, sorted by descending count. At most
  /// FinalSize entries.
  std::vector<ValueCount> topValues() const;

  /// Total number of values ever added.
  uint64_t totalAdded() const { return TotalAdded; }

  /// Number of merges performed (exposed for tests/benches).
  uint64_t numMerges() const { return NumMerges; }

  /// Telemetry sinks (owned by an ObsSession's registry): per-add work
  /// histogram and merge counter. Null pointers (the default) redirect to
  /// statically-allocated dummy sinks, so the hot path writes
  /// unconditionally and carries no per-add branch at all.
  void attachObs(Histogram *WorkHistogram, Counter *MergeCounter);

  const LfuConfig &config() const { return Config; }

private:
  bool sameValue(int64_t A, int64_t B) const {
    return (A >> Config.CoarsenShift) == (B >> Config.CoarsenShift);
  }

  unsigned addImpl(int64_t Value);
  unsigned merge();

  LfuConfig Config;
  std::vector<ValueCount> Temp;
  std::vector<ValueCount> Final;
  /// Reused merge buffer for topValues(); grown once to its steady-state
  /// capacity instead of reallocating on every snapshot.
  mutable std::vector<ValueCount> TopScratch;
  unsigned UpdatesSinceMerge = 0;
  uint64_t TotalAdded = 0;
  uint64_t NumMerges = 0;
  /// Never null: real registry metrics when attached, dummy sinks when not.
  Histogram *ObsWork;
  Counter *ObsMerges;
};

} // namespace sprof

#endif // SPROF_PROFILE_LFUVALUEPROFILER_H
