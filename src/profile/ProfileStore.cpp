//===- profile/ProfileStore.cpp - Persistent, mergeable profiles -----------===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileStore.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace sprof;

static void setError(std::string *Error, std::string Message) {
  if (Error)
    *Error = std::move(Message);
}

void ProfileStore::save(std::ostream &OS) const {
  OS << ProfileFileSchemaV1 << '\n';
  if (!Meta.Workload.empty())
    OS << "workload " << Meta.Workload << '\n';
  if (!Meta.Method.empty())
    OS << "method " << Meta.Method << '\n';
  if (!Meta.DataSet.empty())
    OS << "dataset " << Meta.DataSet << '\n';
  OS << "shape " << numFunctions() << ' ' << numSites() << '\n';
  writeProfiles(Edges, Strides, OS);
}

bool ProfileStore::saveFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  save(OS);
  return static_cast<bool>(OS);
}

std::string ProfileStore::toString() const {
  std::ostringstream OS;
  save(OS);
  return OS.str();
}

bool ProfileStore::load(std::istream &IS, ProfileStore &Out,
                        std::string *Error) {
  std::string Line;
  if (!std::getline(IS, Line) || Line != ProfileFileSchemaV1) {
    setError(Error, "not a " + std::string(ProfileFileSchemaV1) +
                        " file (got \"" + Line + "\")");
    return false;
  }

  // Header: meta lines, terminated by the mandatory shape line.
  ProfileMeta Meta;
  size_t NumFunctions = 0;
  uint32_t NumSites = 0;
  bool SawShape = false;
  while (!SawShape) {
    if (!std::getline(IS, Line)) {
      setError(Error, "missing shape line");
      return false;
    }
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    std::string *MetaField = Key == "workload" ? &Meta.Workload
                             : Key == "method" ? &Meta.Method
                             : Key == "dataset" ? &Meta.DataSet
                                                : nullptr;
    if (MetaField) {
      *MetaField =
          Line.size() > Key.size() + 1 ? Line.substr(Key.size() + 1) : "";
    } else if (Key == "shape") {
      if (!(LS >> NumFunctions >> NumSites)) {
        setError(Error, "malformed shape line: \"" + Line + "\"");
        return false;
      }
      SawShape = true;
    } else {
      setError(Error, "unknown header line: \"" + Line + "\"");
      return false;
    }
  }

  EdgeProfile EP;
  StrideProfile SP;
  if (!readProfiles(IS, NumFunctions, NumSites, EP, SP)) {
    setError(Error, "malformed profile body");
    return false;
  }
  Out = ProfileStore(std::move(Meta), std::move(EP), std::move(SP));
  return true;
}

bool ProfileStore::loadFile(const std::string &Path, ProfileStore &Out,
                            std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    setError(Error, "cannot open " + Path);
    return false;
  }
  return load(IS, Out, Error);
}

bool ProfileStore::loadString(const std::string &Text, ProfileStore &Out,
                              std::string *Error) {
  std::istringstream IS(Text);
  return load(IS, Out, Error);
}

bool ProfileStore::merge(const ProfileStore &Shard, std::string *Error) {
  if (Meta.Workload != Shard.Meta.Workload) {
    setError(Error, "workload mismatch: \"" + Meta.Workload + "\" vs \"" +
                        Shard.Meta.Workload + "\"");
    return false;
  }
  if (numFunctions() != Shard.numFunctions() ||
      numSites() != Shard.numSites()) {
    setError(Error, "shape mismatch: " + std::to_string(numFunctions()) +
                        "f/" + std::to_string(numSites()) + "s vs " +
                        std::to_string(Shard.numFunctions()) + "f/" +
                        std::to_string(Shard.numSites()) + "s");
    return false;
  }

  // Provenance that is not shared by every shard degrades to the empty
  // string, in any merge order.
  if (Meta.Method != Shard.Meta.Method)
    Meta.Method.clear();
  if (Meta.DataSet != Shard.Meta.DataSet)
    Meta.DataSet.clear();

  for (uint32_t F = 0, E = static_cast<uint32_t>(numFunctions()); F != E;
       ++F) {
    Edges.setEntryCount(F, Edges.entryCount(F) + Shard.Edges.entryCount(F));
    for (const auto &[Ed, Count] : Shard.Edges.functionEdges(F))
      Edges.setFrequency(F, Ed, Edges.frequency(F, Ed) + Count);
  }

  // The stride-side merge discipline (union-by-value, order-preserving)
  // lives in ProfileData so ParallelReplay's shard fold shares it.
  sprof::mergeStrideProfile(Strides, Shard.Strides);
  return true;
}

void ProfileStore::truncateTopStrides(unsigned TopN) {
  sprof::truncateTopStrides(Strides, TopN);
}

bool ProfileStore::mergeShards(
    const std::vector<const ProfileStore *> &Shards, unsigned TopN,
    ProfileStore &Out, std::string *Error) {
  if (Shards.empty()) {
    setError(Error, "no shards to merge");
    return false;
  }
  Out = *Shards.front();
  for (size_t I = 1; I != Shards.size(); ++I)
    if (!Out.merge(*Shards[I], Error))
      return false;
  Out.truncateTopStrides(TopN);
  return true;
}
