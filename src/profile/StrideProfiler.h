//===- profile/StrideProfiler.h - The strideProf runtime routine -*- C++ -*-===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stride-profiling runtime of paper Section 3.1. One StrideProfiler
/// instance plays the role of the profiling runtime linked into an
/// instrumented binary: it owns one StrideSiteData ("prof_data") per load
/// site and implements the strideProf routine in its three successive
/// refinements:
///
///   * Figure 6: base routine -- stride from previous address, zero-stride
///     shortcut that bypasses the (expensive) LFU call, zero-stride-
///     difference counting to recognize *phased* stride sequences.
///   * Figure 7: `is_same_value` coarsening so that addresses (and, inside
///     LFU, strides) that differ only in their low 4 bits compare equal.
///   * Figure 9: chunk sampling (skip N1 references globally, then profile
///     N2) followed by per-site fine sampling (1 of every F references).
///
/// Every invocation reports its simulated cycle cost so the interpreter can
/// charge Figure-20-style profiling overhead; the cost model constants are
/// configurable (StrideCostModel).
///
/// Two entry points share one semantic core: profile() handles a single
/// reference (the executable specification, used by the reference engine
/// and by engines with a memory system attached, where the returned cost
/// feeds the current cycle of the *next* access), and profileBatch()
/// drains a block of queued events over packed per-site hot state with the
/// chunk-sampling phase decisions hoisted out of the per-event loop --
/// bit-identical to calling profile() once per event, in order.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_PROFILE_STRIDEPROFILER_H
#define SPROF_PROFILE_STRIDEPROFILER_H

#include "profile/LfuValueProfiler.h"
#include "stream/AccessStream.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sprof {

class ObsSession;

/// Sampling configuration (Figure 9). Disabled by default, matching the
/// non-"sample-" profiling methods.
struct SamplingConfig {
  bool Enabled = false;
  /// Fine sampling: profile 1 of every FineInterval references per site.
  uint32_t FineInterval = 4;
  /// Chunk sampling: after ChunkSkip references are skipped (globally,
  /// across all sites), profile the next ChunkProfile references. The
  /// paper uses 8M/2M on full SPEC runs; defaults here keep the same 4:1
  /// duty cycle but are scaled to the synthetic workloads' much smaller
  /// reference counts.
  uint64_t ChunkSkip = 600;
  uint64_t ChunkProfile = 150;
};

/// Simulated cycle costs of the runtime routine's phases. The values model
/// a call into an out-of-line runtime routine on an in-order machine.
struct StrideCostModel {
  uint32_t CallOverhead = 30;   ///< call/return, spills, argument setup
  uint32_t ChunkCheckCost = 4;  ///< chunk-sampling counter checks
  uint32_t FineCheckCost = 4;   ///< per-site fine-sampling check
  uint32_t ZeroStrideCost = 12; ///< same-address shortcut path
  uint32_t CoreCost = 24;       ///< stride/diff computation + bookkeeping
  uint32_t LfuBaseCost = 15;    ///< LFU call overhead
  uint32_t LfuPerWorkCost = 6;  ///< per buffer entry examined in LFU
};

/// Full configuration of the stride-profiling runtime.
struct StrideProfilerConfig {
  LfuConfig Lfu = {/*TempSize=*/16, /*FinalSize=*/8, /*MergeInterval=*/1024,
                   /*CoarsenShift=*/4};
  SamplingConfig Sampling;
  /// Coarsening shift for the zero-stride address check of Figure 7
  /// (0 disables the enhancement and reproduces Figure 6 exactly).
  unsigned AddrCoarsenShift = 4;
  StrideCostModel Costs;
};

/// One queued strideProf invocation, as recorded by an engine's batched
/// stride-event ring (see InterpreterConfig::StrideBatchWindow). This is
/// the stream layer's AccessEvent verbatim: the ring entries double as
/// capture/replay events, so TraceCaptureSinks tee off the ring and
/// trace replay feeds profileBatch without any conversion.
using StrideEvent = AccessEvent;

/// Per-load-site profiling state ("prof_data" in the paper's figures).
///
/// This is the *reporting* view: the profiler keeps the per-event fields
/// (previous address/stride, sampling countdown, chunk epoch, use-distance
/// accumulators, invocation count) in a packed internal hot lane and syncs
/// them into this struct on demand in site(). The cold statistics and the
/// LFU buffers live here directly.
struct StrideSiteData {
  uint64_t PrevAddress = 0;
  bool HasPrevAddress = false;
  int64_t PrevStride = 0;
  bool HasPrevStride = false;

  uint64_t NumZeroStride = 0;
  uint64_t NumNonZeroStride = 0;
  uint64_t NumZeroDiff = 0;

  /// Fine-sampling countdown ("number_to_skip" in Figure 9).
  uint32_t NumberToSkip = 0;

  /// Chunk epoch of the last processed reference. On the first reference
  /// of a new profiled chunk the site re-anchors (records the address
  /// without forming a stride): the previous address is from the previous
  /// chunk, so the difference is not a stride. At the paper's 8M/2M chunk
  /// sizes this boundary noise is negligible; at the scaled-down sizes the
  /// synthetic workloads use it would otherwise bias the top-stride share.
  uint64_t LastChunkEpoch = 0;

  /// Use-distance profiling (the paper's first future-work item,
  /// Section 6): the number of other memory references between successive
  /// references of this site. Large distances mean a prefetched line may
  /// be evicted before use, so the feedback pass can veto the prefetch.
  uint64_t PrevGlobalRef = 0;
  uint64_t RefGapSum = 0;
  uint64_t RefGapCount = 0;

  LfuValueProfiler Lfu;

  /// Per-site statistics for Figures 21/22.
  uint64_t Invocations = 0; ///< calls into strideProf
  uint64_t Processed = 0;   ///< invocations surviving both sampling stages
  uint64_t LfuCalls = 0;    ///< invocations reaching the LFU routine

  /// Total strides observed (zero + non-zero); "total_freq" in Figure 5.
  uint64_t totalStrides() const { return NumZeroStride + NumNonZeroStride; }
};

/// The profiling runtime: one instance per instrumented program run.
class StrideProfiler {
public:
  StrideProfiler(uint32_t NumSites, const StrideProfilerConfig &Config);

  /// The strideProf entry point (Figures 6/7/9). \p Address is the load's
  /// effective data address. \p GlobalRefIndex, when non-zero, is the
  /// program's running count of dynamic memory references; it feeds the
  /// use-distance statistic (Section 6 future work).
  /// \returns the simulated cycle cost of this invocation.
  uint64_t profile(uint32_t SiteId, uint64_t Address,
                   uint64_t GlobalRefIndex = 0);

  /// Batched strideProf: processes \p Events[0..N) in order, leaving every
  /// observable (site data, totals, sampling counters, chunk epochs,
  /// telemetry sinks) exactly as N successive profile() calls would --
  /// including chunk-epoch re-anchoring when a chunk-phase flip lands
  /// inside (or straddles) the block. \returns the summed simulated cost.
  ///
  /// The win over per-event profile(): the global chunk-sampling phase is
  /// decided once per run of events in the same phase instead of per
  /// event, skip-phase events collapse to a per-site touch plus one bulk
  /// telemetry update, and obs sinks are resolved once per drain.
  uint64_t profileBatch(const StrideEvent *Events, size_t N);

  /// Positionally-addressed strideProf: processes the reference knowing it
  /// is the \p LoadIndex'th dynamic load (0-based, counted across *all*
  /// sites) of the run, instead of relying on the profiler's own running
  /// counters. The global chunk-sampling phase of Figure 9 is a pure
  /// function of that position -- with Cycle = ChunkSkip + ChunkProfile + 1
  /// the reference is skipped iff LoadIndex % Cycle < ChunkSkip or hits the
  /// flip slot Cycle - 1, and profiled references belong to chunk epoch
  /// LoadIndex / Cycle + 1 -- so feeding each site its references in
  /// program order, with their original load indexes, leaves that site's
  /// observable state (and the summed costs and telemetry) bit-identical
  /// to a serial profile() sweep over the interleaved whole. That is the
  /// contract ParallelReplay's site-sharded workers build on; see
  /// docs/TRACE.md "Determinism contract".
  /// \returns the simulated cycle cost of this invocation.
  uint64_t profileAt(uint32_t SiteId, uint64_t Address,
                     uint64_t GlobalRefIndex, uint64_t LoadIndex);

  /// Drives the runtime from an abstract access stream: pulls batches out
  /// of \p Src and profileBatch()es them until the stream ends. Events of
  /// kind other than Load are dropped (a strideProf invocation is a demand
  /// load by definition); the live engine paths never emit them, so this
  /// filter costs nothing there, and trace replay of mixed streams gets
  /// the same view a live profiled run would have had.
  /// \returns the summed simulated cost, exactly what the equivalent live
  /// run would have charged to RunStats::RuntimeCycles.
  uint64_t consume(AccessSource &Src, size_t BatchSize = 256);

  /// Reporting view of one site's state (hot lane synced on demand).
  const StrideSiteData &site(uint32_t SiteId) const;
  uint32_t numSites() const { return static_cast<uint32_t>(Sites.size()); }
  const StrideProfilerConfig &config() const { return Config; }

  /// Aggregate statistics across all sites.
  uint64_t totalInvocations() const { return TotalInvocations; }
  uint64_t totalProcessed() const { return TotalProcessed; }
  uint64_t totalLfuCalls() const { return TotalLfuCalls; }

  /// Resolves telemetry sinks from \p Session (nullptr detaches). The
  /// sinks are never null: with no session attached -- the default --
  /// they point at statically-allocated dummy metrics, so the hot paths
  /// write unconditionally and carry no per-event branch.
  void attachObs(ObsSession *Session);

private:
  /// Cached metric handles; dummy sinks when telemetry is off, never null.
  struct ObsSinks {
    Counter *ChunkSkipped;   ///< chunk-sampling early-outs
    Counter *FineSkipped;    ///< fine-sampling early-outs
    Counter *ZeroStrideFast; ///< zero-stride shortcut hits
    Counter *Reanchored;     ///< chunk-boundary re-anchors
    Histogram *InvocationCost; ///< simulated cycles per call
  };

  /// Packed per-site hot state: everything the per-event paths touch,
  /// one cache line per site, separate from the cold statistics and LFU
  /// buffers in StrideSiteData.
  struct HotSite {
    uint64_t PrevAddress = 0;
    int64_t PrevStride = 0;
    uint64_t LastChunkEpoch = 0;
    uint64_t PrevGlobalRef = 0;
    uint64_t RefGapSum = 0;
    uint64_t RefGapCount = 0;
    uint64_t Invocations = 0;
    uint32_t NumberToSkip = 0;
    uint8_t HasPrevAddress = 0;
    uint8_t HasPrevStride = 0;
  };

  uint64_t profileImpl(uint32_t SiteId, uint64_t Address,
                       uint64_t GlobalRefIndex);

  /// The post-sampling core shared verbatim by profile(), profileBatch(),
  /// and profileAt(): epoch re-anchor (against \p Epoch -- the member
  /// ChunkEpoch for the counter-driven paths, the position-derived epoch
  /// for profileAt), first-address path, zero-stride shortcut, stride/diff
  /// bookkeeping, LFU call. \returns the cost of this tail (caller adds
  /// call/check overheads).
  uint64_t processedTail(uint32_t SiteId, HotSite &H, uint64_t Address,
                         uint64_t Epoch);

  bool sameAddress(uint64_t A, uint64_t B) const {
    return (A >> Config.AddrCoarsenShift) == (B >> Config.AddrCoarsenShift);
  }

  StrideProfilerConfig Config;
  std::vector<HotSite> Hot;
  /// Cold per-site state and the site() reporting view; hot fields are
  /// mirrored in lazily (see site()).
  mutable std::vector<StrideSiteData> Sites;

  // Global chunk-sampling state (static variables in Figure 9).
  uint64_t NumberSkipped = 0;
  uint64_t NumberProfiled = 0;
  uint64_t ChunkEpoch = 1; ///< bumped at each skip->profile transition

  uint64_t TotalInvocations = 0;
  uint64_t TotalProcessed = 0;
  uint64_t TotalLfuCalls = 0;

  ObsSinks Obs;
};

} // namespace sprof

#endif // SPROF_PROFILE_STRIDEPROFILER_H
