//===- profile/ProfileData.h - Profile stores and summaries ----*- C++ -*-===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile artifacts a profiling run feeds back to the compiler:
/// per-edge frequencies (the classic edge profile of [4]) and per-load-site
/// stride summaries. Both support a line-oriented text serialization so the
/// two-pass / cross-compilation workflow the paper discusses in Section 3.2
/// can be exercised end to end.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_PROFILE_PROFILEDATA_H
#define SPROF_PROFILE_PROFILEDATA_H

#include "ir/Function.h"
#include "ir/Module.h"
#include "profile/LfuValueProfiler.h"
#include "profile/StrideProfiler.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sprof {

/// Edge frequencies of a whole module: per function, a map from CFG edge to
/// execution count.
class EdgeProfile {
public:
  EdgeProfile() = default;
  explicit EdgeProfile(size_t NumFunctions)
      : PerFunction(NumFunctions), EntryCounts(NumFunctions, 0) {}

  void setFrequency(uint32_t Func, const Edge &E, uint64_t Count);
  uint64_t frequency(uint32_t Func, const Edge &E) const;

  /// Number of times function \p Func was entered (from a dedicated entry
  /// counter; edges alone cannot give the frequency of a single-block
  /// function).
  void setEntryCount(uint32_t Func, uint64_t Count);
  uint64_t entryCount(uint32_t Func) const;

  /// Frequency of a block: the sum of its outgoing edge frequencies when it
  /// has successors (mirroring the reconstruction in Figures 12/13);
  /// otherwise the sum of its incoming edge frequencies plus, for the
  /// entry block, the function entry count.
  uint64_t blockFrequency(const Function &F, uint32_t Func,
                          uint32_t Block) const;

  size_t numFunctions() const { return PerFunction.size(); }
  const std::map<Edge, uint64_t> &functionEdges(uint32_t Func) const {
    return PerFunction[Func];
  }

  void print(const Module &M, std::ostream &OS) const;

private:
  std::vector<std::map<Edge, uint64_t>> PerFunction;
  std::vector<uint64_t> EntryCounts;
};

/// Per-load-site stride profile summary, extracted from a StrideProfiler
/// after an instrumented run. This is the "prof_data" view Figure 5 reads.
struct StrideSiteSummary {
  uint32_t SiteId = NoId;
  uint64_t TotalStrides = 0;  ///< zero + non-zero strides observed
  uint64_t NumZeroStride = 0; ///< same-address occurrences
  uint64_t NumZeroDiff = 0;   ///< zero stride-differences (phase evidence)
  /// Use-distance statistic (Section 6 future work): total and count of
  /// inter-reference gaps, in dynamic memory references.
  uint64_t RefGapSum = 0;
  uint64_t RefGapCount = 0;
  /// Top non-zero strides, highest frequency first (freq[1..N]).
  std::vector<ValueCount> TopStrides;

  /// freq[1] of Figure 5.
  uint64_t top1Freq() const {
    return TopStrides.empty() ? 0 : TopStrides[0].Count;
  }
  /// freq[1]+...+freq[4] of Figure 5.
  uint64_t top4Freq() const;
  /// Dominant stride value (only meaningful when TopStrides is non-empty).
  int64_t top1Stride() const {
    return TopStrides.empty() ? 0 : TopStrides[0].Value;
  }
  /// Average references between successive visits (0 when unknown).
  double avgRefGap() const {
    return RefGapCount == 0
               ? 0.0
               : static_cast<double>(RefGapSum) /
                     static_cast<double>(RefGapCount);
  }
};

/// Stride profiles of a whole module, indexed by load site id. Sites that
/// were never profiled have default (all-zero) summaries.
class StrideProfile {
public:
  StrideProfile() = default;
  explicit StrideProfile(uint32_t NumSites);

  /// Builds the summary view of a finished profiling run. When the run used
  /// fine sampling with interval F, collected stride values are divided by
  /// F to recover the original strides (paper Section 3.1: S2 = S1 / F).
  static StrideProfile fromProfiler(const StrideProfiler &P);

  const StrideSiteSummary &site(uint32_t SiteId) const {
    return Sites[SiteId];
  }
  StrideSiteSummary &site(uint32_t SiteId) { return Sites[SiteId]; }
  uint32_t numSites() const { return static_cast<uint32_t>(Sites.size()); }

  void print(std::ostream &OS) const;

private:
  std::vector<StrideSiteSummary> Sites;
};

/// Accumulates \p Src into \p Dst, site by site (the profiles must have the
/// same site count): scalar statistics add, per-site top-stride tables merge
/// by union-by-value with counts summed. The operation is commutative and
/// associative on the *value level* (the multiset of (stride, count) pairs
/// per site is merge-order independent); on the representation level the
/// TopStrides vector keeps Dst's insertion order with Src's unseen values
/// appended, so merging into a default-initialized profile copies each
/// site's table in Src order verbatim. ParallelReplay relies on that: its
/// shards profile *disjoint* site sets, so folding them -- in any order --
/// into an empty profile reproduces the serial profiler's tables
/// byte-for-byte, no truncation or re-sort needed. Overlapping shards
/// (ProfileStore::mergeShards) canonicalize afterwards with
/// truncateTopStrides.
void mergeStrideProfile(StrideProfile &Dst, const StrideProfile &Src);

/// Canonicalizes every site's top-stride table: sorts by count descending
/// (ties: value ascending) and keeps at most \p TopN entries. Applying this
/// once after a fold makes any merge order produce identical bytes even for
/// overlapping shards.
void truncateTopStrides(StrideProfile &SP, unsigned TopN);

/// Serializes both profiles into a single text stream and parses them back.
/// The format is line oriented:
///   entry <func> <count>
///   edge <func> <from> <slot> <count>
///   site <id> total <n> zero <n> zerodiff <n> gap <sum> <count>
///        top <v>:<c> <v>:<c> ...        (one line per site)
void writeProfiles(const EdgeProfile &EP, const StrideProfile &SP,
                   std::ostream &OS);

/// Parses profiles previously written by writeProfiles. \p NumFunctions and
/// \p NumSites size the resulting stores. Returns false on malformed input.
bool readProfiles(std::istream &IS, size_t NumFunctions, uint32_t NumSites,
                  EdgeProfile &EP, StrideProfile &SP);

} // namespace sprof

#endif // SPROF_PROFILE_PROFILEDATA_H
