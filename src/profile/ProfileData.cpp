//===- profile/ProfileData.cpp - Profile stores and summaries --------------===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileData.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

using namespace sprof;

void EdgeProfile::setFrequency(uint32_t Func, const Edge &E,
                               uint64_t Count) {
  assert(Func < PerFunction.size() && "function index out of range");
  PerFunction[Func][E] = Count;
}

uint64_t EdgeProfile::frequency(uint32_t Func, const Edge &E) const {
  assert(Func < PerFunction.size() && "function index out of range");
  auto It = PerFunction[Func].find(E);
  return It == PerFunction[Func].end() ? 0 : It->second;
}

void EdgeProfile::setEntryCount(uint32_t Func, uint64_t Count) {
  assert(Func < EntryCounts.size() && "function index out of range");
  EntryCounts[Func] = Count;
}

uint64_t EdgeProfile::entryCount(uint32_t Func) const {
  assert(Func < EntryCounts.size() && "function index out of range");
  return EntryCounts[Func];
}

uint64_t EdgeProfile::blockFrequency(const Function &F, uint32_t Func,
                                     uint32_t Block) const {
  const BasicBlock &BB = F.Blocks[Block];
  if (BB.numSuccessors() > 0) {
    uint64_t Sum = 0;
    for (unsigned S = 0, E = BB.numSuccessors(); S != E; ++S)
      Sum += frequency(Func, Edge{Block, S});
    return Sum;
  }
  // Exit block: sum incoming edges (plus the entry count when the entry
  // block itself is an exit, i.e. a single-block function).
  uint64_t Sum = Block == F.entryBlock() ? entryCount(Func) : 0;
  for (uint32_t P = 0, N = static_cast<uint32_t>(F.Blocks.size()); P != N;
       ++P)
    for (unsigned S = 0, E = F.Blocks[P].numSuccessors(); S != E; ++S)
      if (F.Blocks[P].successor(S) == Block)
        Sum += frequency(Func, Edge{P, S});
  return Sum;
}

void EdgeProfile::print(const Module &M, std::ostream &OS) const {
  for (uint32_t FI = 0, FE = static_cast<uint32_t>(PerFunction.size());
       FI != FE; ++FI) {
    for (const auto &[E, Count] : PerFunction[FI]) {
      const Function &F = M.Functions[FI];
      OS << F.Name << ": " << F.Blocks[E.From].Name << " ->"
         << " slot" << E.Slot << " (" << F.Blocks[F.edgeDest(E)].Name
         << "): " << Count << '\n';
    }
  }
}

uint64_t StrideSiteSummary::top4Freq() const {
  uint64_t Sum = 0;
  for (size_t I = 0, E = std::min<size_t>(4, TopStrides.size()); I != E; ++I)
    Sum += TopStrides[I].Count;
  return Sum;
}

StrideProfile::StrideProfile(uint32_t NumSites) {
  Sites.resize(NumSites);
  for (uint32_t I = 0; I != NumSites; ++I)
    Sites[I].SiteId = I;
}

StrideProfile StrideProfile::fromProfiler(const StrideProfiler &P) {
  StrideProfile Result(P.numSites());
  const bool Sampled = P.config().Sampling.Enabled;
  const int64_t FineF =
      Sampled ? static_cast<int64_t>(P.config().Sampling.FineInterval) : 1;
  for (uint32_t S = 0, E = P.numSites(); S != E; ++S) {
    const StrideSiteData &D = P.site(S);
    StrideSiteSummary &Out = Result.Sites[S];
    Out.SiteId = S;
    Out.TotalStrides = D.totalStrides();
    Out.NumZeroStride = D.NumZeroStride;
    Out.NumZeroDiff = D.NumZeroDiff;
    Out.RefGapSum = D.RefGapSum;
    Out.RefGapCount = D.RefGapCount;
    Out.TopStrides = D.Lfu.topValues();
    // Fine sampling multiplies every observed stride by F; recover the
    // original stride values (S2 = S1 / F, Section 3.1).
    if (FineF != 1)
      for (ValueCount &VC : Out.TopStrides)
        VC.Value /= FineF;
  }
  return Result;
}

void StrideProfile::print(std::ostream &OS) const {
  for (const StrideSiteSummary &S : Sites) {
    if (S.TotalStrides == 0)
      continue;
    OS << "site " << S.SiteId << ": total=" << S.TotalStrides
       << " zero=" << S.NumZeroStride << " zerodiff=" << S.NumZeroDiff
       << " top=[";
    for (size_t I = 0; I != S.TopStrides.size(); ++I) {
      if (I)
        OS << ", ";
      OS << S.TopStrides[I].Value << ":" << S.TopStrides[I].Count;
    }
    OS << "]\n";
  }
}

void sprof::mergeStrideProfile(StrideProfile &Dst, const StrideProfile &Src) {
  assert(Dst.numSites() == Src.numSites() &&
         "merging stride profiles of different shapes");
  for (uint32_t S = 0, E = Dst.numSites(); S != E; ++S) {
    StrideSiteSummary &D = Dst.site(S);
    const StrideSiteSummary &V = Src.site(S);
    D.SiteId = S;
    D.TotalStrides += V.TotalStrides;
    D.NumZeroStride += V.NumZeroStride;
    D.NumZeroDiff += V.NumZeroDiff;
    D.RefGapSum += V.RefGapSum;
    D.RefGapCount += V.RefGapCount;
    // Union by stride value; equal strides sum their counts. Commutative
    // and associative on the value level; order-preserving on Dst (see the
    // header comment -- ParallelReplay's disjoint-site fold depends on the
    // union into an empty table being a verbatim ordered copy).
    for (const ValueCount &VC : V.TopStrides) {
      auto It = std::find_if(
          D.TopStrides.begin(), D.TopStrides.end(),
          [&](const ValueCount &DV) { return DV.Value == VC.Value; });
      if (It != D.TopStrides.end())
        It->Count += VC.Count;
      else
        D.TopStrides.push_back(VC);
    }
  }
}

void sprof::truncateTopStrides(StrideProfile &SP, unsigned TopN) {
  for (uint32_t S = 0, E = SP.numSites(); S != E; ++S) {
    std::vector<ValueCount> &Top = SP.site(S).TopStrides;
    std::sort(Top.begin(), Top.end(),
              [](const ValueCount &A, const ValueCount &B) {
                if (A.Count != B.Count)
                  return A.Count > B.Count;
                return A.Value < B.Value;
              });
    if (Top.size() > TopN)
      Top.resize(TopN);
  }
}

void sprof::writeProfiles(const EdgeProfile &EP, const StrideProfile &SP,
                          std::ostream &OS) {
  for (uint32_t FI = 0, FE = static_cast<uint32_t>(EP.numFunctions());
       FI != FE; ++FI) {
    if (EP.entryCount(FI) != 0)
      OS << "entry " << FI << ' ' << EP.entryCount(FI) << '\n';
    for (const auto &[E, Count] : EP.functionEdges(FI))
      OS << "edge " << FI << ' ' << E.From << ' ' << E.Slot << ' ' << Count
         << '\n';
  }
  for (uint32_t S = 0, E = SP.numSites(); S != E; ++S) {
    const StrideSiteSummary &Sum = SP.site(S);
    if (Sum.TotalStrides == 0 && Sum.TopStrides.empty())
      continue;
    OS << "site " << S << " total " << Sum.TotalStrides << " zero "
       << Sum.NumZeroStride << " zerodiff " << Sum.NumZeroDiff << " gap "
       << Sum.RefGapSum << ' ' << Sum.RefGapCount << " top";
    for (const ValueCount &VC : Sum.TopStrides)
      OS << ' ' << VC.Value << ':' << VC.Count;
    OS << '\n';
  }
}

bool sprof::readProfiles(std::istream &IS, size_t NumFunctions,
                         uint32_t NumSites, EdgeProfile &EP,
                         StrideProfile &SP) {
  EP = EdgeProfile(NumFunctions);
  SP = StrideProfile(NumSites);
  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Kind;
    LS >> Kind;
    if (Kind == "entry") {
      uint32_t Func;
      uint64_t Count;
      if (!(LS >> Func >> Count) || Func >= NumFunctions)
        return false;
      EP.setEntryCount(Func, Count);
    } else if (Kind == "edge") {
      uint32_t Func, From;
      unsigned Slot;
      uint64_t Count;
      if (!(LS >> Func >> From >> Slot >> Count) || Func >= NumFunctions)
        return false;
      EP.setFrequency(Func, Edge{From, Slot}, Count);
    } else if (Kind == "site") {
      uint32_t Id;
      std::string Tag;
      StrideSiteSummary Sum;
      if (!(LS >> Id) || Id >= NumSites)
        return false;
      Sum.SiteId = Id;
      if (!(LS >> Tag) || Tag != "total" || !(LS >> Sum.TotalStrides))
        return false;
      if (!(LS >> Tag) || Tag != "zero" || !(LS >> Sum.NumZeroStride))
        return false;
      if (!(LS >> Tag) || Tag != "zerodiff" || !(LS >> Sum.NumZeroDiff))
        return false;
      if (!(LS >> Tag) || Tag != "gap" || !(LS >> Sum.RefGapSum) ||
          !(LS >> Sum.RefGapCount))
        return false;
      if (!(LS >> Tag) || Tag != "top")
        return false;
      std::string Pair;
      while (LS >> Pair) {
        size_t Colon = Pair.find(':');
        if (Colon == std::string::npos)
          return false;
        ValueCount VC;
        char *End = nullptr;
        std::string ValueText = Pair.substr(0, Colon);
        std::string CountText = Pair.substr(Colon + 1);
        VC.Value = std::strtoll(ValueText.c_str(), &End, 10);
        if (End == ValueText.c_str() || *End != '\0')
          return false;
        VC.Count = std::strtoull(CountText.c_str(), &End, 10);
        if (End == CountText.c_str() || *End != '\0')
          return false;
        Sum.TopStrides.push_back(VC);
      }
      SP.site(Id) = Sum;
    } else {
      return false;
    }
  }
  return true;
}
