//===- profile/LfuValueProfiler.cpp - Calder-style LFU value profiler ------===//
//
// Part of the StrideProf project (see LfuValueProfiler.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "profile/LfuValueProfiler.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace sprof;

LfuValueProfiler::LfuValueProfiler(const LfuConfig &Config)
    : Config(Config), ObsWork(&dummyHistogram()), ObsMerges(&dummyCounter()) {
  assert(Config.TempSize > 0 && "temp buffer must have at least one entry");
  assert(Config.FinalSize > 0 && "final buffer must have at least one entry");
  Temp.reserve(Config.TempSize);
  Final.reserve(Config.FinalSize + Config.TempSize);
  TopScratch.reserve(Config.FinalSize + Config.TempSize);
}

void LfuValueProfiler::attachObs(Histogram *WorkHistogram,
                                 Counter *MergeCounter) {
  ObsWork = WorkHistogram ? WorkHistogram : &dummyHistogram();
  ObsMerges = MergeCounter ? MergeCounter : &dummyCounter();
}

unsigned LfuValueProfiler::add(int64_t Value) {
  unsigned Work = addImpl(Value);
  ObsWork->record(Work);
  return Work;
}

unsigned LfuValueProfiler::addImpl(int64_t Value) {
  ++TotalAdded;
  unsigned Work = 0;

  // Linear scan of the temp buffer for a (coarsened) match.
  for (ValueCount &E : Temp) {
    ++Work;
    if (sameValue(E.Value, Value)) {
      ++E.Count;
      if (++UpdatesSinceMerge >= Config.MergeInterval)
        Work += merge();
      return Work;
    }
  }

  if (Temp.size() < Config.TempSize) {
    Temp.push_back(ValueCount{Value, 1});
  } else {
    // Replace the least frequently used entry.
    auto LfuIt = std::min_element(Temp.begin(), Temp.end(),
                                  [](const ValueCount &A,
                                     const ValueCount &B) {
                                    return A.Count < B.Count;
                                  });
    Work += static_cast<unsigned>(Temp.size());
    *LfuIt = ValueCount{Value, 1};
  }
  if (++UpdatesSinceMerge >= Config.MergeInterval)
    Work += merge();
  return Work;
}

unsigned LfuValueProfiler::merge() {
  ++NumMerges;
  ObsMerges->inc();
  UpdatesSinceMerge = 0;

  // Combine: fold temp entries into the final buffer, coalescing values
  // that compare equal under the coarsening shift.
  unsigned Work = 0;
  for (const ValueCount &T : Temp) {
    bool Found = false;
    for (ValueCount &F : Final) {
      ++Work;
      if (sameValue(F.Value, T.Value)) {
        F.Count += T.Count;
        Found = true;
        break;
      }
    }
    if (!Found)
      Final.push_back(T);
  }
  Temp.clear();

  // Keep the highest-frequency entries.
  std::sort(Final.begin(), Final.end(),
            [](const ValueCount &A, const ValueCount &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Value < B.Value;
            });
  if (Final.size() > Config.FinalSize)
    Final.resize(Config.FinalSize);
  Work += static_cast<unsigned>(Final.size());
  return Work;
}

std::vector<ValueCount> LfuValueProfiler::topValues() const {
  // Build the snapshot in the reused scratch buffer (capacity reserved at
  // construction, retained across calls); ordering is unchanged.
  TopScratch.clear();
  TopScratch.insert(TopScratch.end(), Final.begin(), Final.end());
  for (const ValueCount &T : Temp) {
    bool Found = false;
    for (ValueCount &F : TopScratch)
      if (sameValue(F.Value, T.Value)) {
        F.Count += T.Count;
        Found = true;
        break;
      }
    if (!Found)
      TopScratch.push_back(T);
  }
  std::sort(TopScratch.begin(), TopScratch.end(),
            [](const ValueCount &A, const ValueCount &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Value < B.Value;
            });
  if (TopScratch.size() > Config.FinalSize)
    TopScratch.resize(Config.FinalSize);
  return TopScratch;
}
