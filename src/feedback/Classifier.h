//===- feedback/Classifier.h - Figure-5 load classification -----*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-feedback pass of paper Section 2.2 / Figure 5: filter loads
/// by execution frequency (FT) and loop trip count (TT), classify the
/// survivors by their stride profiles into
///
///   * SSST -- strong single stride: top1/total > 70%;
///   * PMST -- phased multi-stride: top4/total > 60% and zero stride
///             differences > 40% of strides;
///   * WSST -- weak single stride: top1/total > 25% and zero differences
///             > 10% (the paper's Figure 5 pseudo-code reuses
///             PMST_diff_threshold here; the prose of Section 2.2 defines a
///             separate 10% WSST threshold, which we follow and expose as a
///             config knob),
///
/// then expand each classified representative to the cover loads of its
/// equivalent set and compute prefetch distances:
/// K = min(trip_count / TT, C) for in-loop loads (power-of-two rounded for
/// PMST so the multiply becomes a shift), fixed K for out-loop SSST loads.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_FEEDBACK_CLASSIFIER_H
#define SPROF_FEEDBACK_CLASSIFIER_H

#include "ir/Module.h"
#include "profile/ProfileData.h"

#include <cstdint>
#include <vector>

namespace sprof {

class ObsSession;

/// Stride-pattern classes of Section 2.2.
enum class StrideClass : uint8_t { None, SSST, PMST, WSST };

const char *strideClassName(StrideClass C);

/// Thresholds and prefetch parameters. Defaults are the paper's example
/// values.
struct ClassifierConfig {
  uint64_t FrequencyThreshold = 2000; ///< FT of Figure 5
  uint64_t TripCountThreshold = 128;  ///< TT of Figure 5
  double SsstThreshold = 0.70;
  double PmstThreshold = 0.60;
  double PmstDiffThreshold = 0.40;
  double WsstThreshold = 0.25;
  double WsstDiffThreshold = 0.10;
  unsigned MaxPrefetchDistance = 8;    ///< C (in-loop)
  unsigned OutLoopPrefetchDistance = 4;
  /// The paper's evaluation disables WSST prefetching ("does not show
  /// noticeable performance contribution"); the ablation bench re-enables
  /// it.
  bool EnableWsstPrefetch = false;
  /// Prefetching out-loop SSST loads is what distinguishes naive-all's
  /// feedback from the in-loop-only methods.
  bool EnableOutLoopPrefetch = true;
  /// Section-6 future work: veto prefetching of loads whose successive
  /// references are separated by many other memory references (the
  /// prefetched line would be evicted before use). Off by default,
  /// matching the published system.
  bool EnableUseDistanceFilter = false;
  double MaxAvgRefGap = 64.0;
  /// Section-6 future work: prefetch loads *without* stride patterns whose
  /// addresses are produced by an SSST load in the same block, by chasing
  /// one pointer ahead with a speculative load (Figure 3d generalized to
  /// indirection). Off by default, matching the published system.
  bool EnableDependentPrefetch = false;
  uint64_t CacheLineBytes = 64;
};

/// One planned prefetch.
struct PrefetchDecision {
  uint32_t SiteId = NoId;     ///< load receiving a prefetch
  StrideClass Kind = StrideClass::None;
  bool InLoop = true;
  int64_t StrideValue = 0;    ///< dominant stride (SSST / WSST)
  unsigned Distance = 1;      ///< K (power of two for PMST)
};

/// A planned dependent (indirect) prefetch: the base load BaseSiteId has a
/// strong single stride S, and DepSiteId loads through the pointer value
/// BaseSiteId produces. The inserted code speculatively loads the base K
/// strides ahead and prefetches through the result.
struct DependentPrefetchDecision {
  uint32_t BaseSiteId = NoId;
  uint32_t DepSiteId = NoId;
  int64_t BaseStride = 0;
  unsigned Distance = 1;
  int64_t DepOffset = 0;
};

/// The feedback pass's full output.
struct FeedbackResult {
  std::vector<PrefetchDecision> Decisions;

  /// Dependent-prefetch plans (EnableDependentPrefetch only).
  std::vector<DependentPrefetchDecision> DependentDecisions;

  /// Per load site: classification of its stride profile, StrideClass::None
  /// for filtered / unprofiled sites. Indexed by SiteId.
  std::vector<StrideClass> SiteClass;

  /// Per load site: trip count of the innermost enclosing loop (0 for
  /// out-loop sites), reconstructed from the edge profile per Figure 10.
  std::vector<double> SiteTripCount;

  /// Per load site: true when the site is inside a (reducible) loop.
  std::vector<bool> SiteInLoop;
};

/// Classifies one stride summary with no frequency/trip filtering. Used
/// both by the Figure-5 pipeline below and by the Figure-18/19 population
/// benches, which bucket *every* load by stride property.
StrideClass classifyStrideSummary(const StrideSiteSummary &S,
                                  const ClassifierConfig &Config);

/// Runs the full Figure-5 feedback pass over \p M. \p M must be the
/// original (un-instrumented, un-prefetched) module the profiles were
/// collected for. \p Obs (optional) receives a "classify" trace span plus
/// classification and filter counters.
FeedbackResult runFeedback(const Module &M, const EdgeProfile &EP,
                           const StrideProfile &SP,
                           const ClassifierConfig &Config = {},
                           ObsSession *Obs = nullptr);

/// Trip count of a loop from edge frequencies (Figure 10): header frequency
/// divided by the total frequency entering the loop from outside.
double loopTripCount(const Function &F, uint32_t FuncIdx,
                     const std::vector<Edge> &EnteringEdges,
                     const std::vector<Edge> &HeaderOutEdges,
                     const EdgeProfile &EP);

} // namespace sprof

#endif // SPROF_FEEDBACK_CLASSIFIER_H
