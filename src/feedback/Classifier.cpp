//===- feedback/Classifier.cpp - Figure-5 load classification --------------===//
//
// Part of the StrideProf project (see Classifier.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "feedback/Classifier.h"

#include "obs/Obs.h"
#include "obs/Trace.h"

#include "analysis/ControlEquivalence.h"
#include "analysis/Dominators.h"
#include "analysis/EquivalentLoads.h"
#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace sprof;

const char *sprof::strideClassName(StrideClass C) {
  switch (C) {
  case StrideClass::None:
    return "none";
  case StrideClass::SSST:
    return "SSST";
  case StrideClass::PMST:
    return "PMST";
  case StrideClass::WSST:
    return "WSST";
  }
  assert(false && "unknown stride class");
  return "<invalid>";
}

StrideClass sprof::classifyStrideSummary(const StrideSiteSummary &S,
                                         const ClassifierConfig &Config) {
  if (S.TotalStrides == 0)
    return StrideClass::None;
  double Total = static_cast<double>(S.TotalStrides);
  double Top1 = static_cast<double>(S.top1Freq());
  double Top4 = static_cast<double>(S.top4Freq());
  double ZeroDiff = static_cast<double>(S.NumZeroDiff);

  if (Top1 / Total > Config.SsstThreshold)
    return StrideClass::SSST;
  if (Top4 / Total > Config.PmstThreshold &&
      ZeroDiff / Total > Config.PmstDiffThreshold)
    return StrideClass::PMST;
  if (Top1 / Total > Config.WsstThreshold &&
      ZeroDiff / Total > Config.WsstDiffThreshold)
    return StrideClass::WSST;
  return StrideClass::None;
}

double sprof::loopTripCount(const Function &F, uint32_t FuncIdx,
                            const std::vector<Edge> &EnteringEdges,
                            const std::vector<Edge> &HeaderOutEdges,
                            const EdgeProfile &EP) {
  (void)F;
  uint64_t HeaderFreq = 0;
  for (const Edge &E : HeaderOutEdges)
    HeaderFreq += EP.frequency(FuncIdx, E);
  uint64_t EnterFreq = 0;
  for (const Edge &E : EnteringEdges)
    EnterFreq += EP.frequency(FuncIdx, E);
  if (EnterFreq == 0)
    return 0.0;
  return static_cast<double>(HeaderFreq) / static_cast<double>(EnterFreq);
}

namespace {

/// Rounds \p K down to a power of two (at least 1).
unsigned roundDownPow2(unsigned K) {
  unsigned P = 1;
  while (P * 2 <= K)
    P *= 2;
  return P;
}

} // namespace

FeedbackResult sprof::runFeedback(const Module &M, const EdgeProfile &EP,
                                  const StrideProfile &SP,
                                  const ClassifierConfig &Config,
                                  ObsSession *Obs) {
  TraceSpan Span(Obs, "classify", "feedback", /*Level=*/1);
  uint64_t FreqFiltered = 0, TripFiltered = 0, GapFiltered = 0;
  FeedbackResult Result;
  Result.SiteClass.assign(M.NumLoadSites, StrideClass::None);
  Result.SiteTripCount.assign(M.NumLoadSites, 0.0);
  Result.SiteInLoop.assign(M.NumLoadSites, false);

  std::set<uint32_t> Planned; // avoid duplicate decisions per site

  // Every member of an in-loop SSST set that received prefetches, with the
  // set's stride and distance; dependent-prefetch planning keys off these
  // (the pointer-producing load is often a set member without its own
  // cover decision).
  std::map<uint32_t, std::pair<int64_t, unsigned>> SsstMembers;

  for (uint32_t FI = 0, FE = static_cast<uint32_t>(M.Functions.size());
       FI != FE; ++FI) {
    const Function &F = M.Functions[FI];
    DomTree DT = DomTree::forward(F);
    DomTree PDT = DomTree::backward(F);
    LoopInfo LI(F, DT);
    ControlEquivalence CE(F, DT, PDT);
    std::vector<EquivalentLoadSet> Sets = partitionEquivalentLoads(F, LI, CE);

    // Trip count per loop (Figure 10).
    std::vector<double> TripCount(LI.loops().size(), 0.0);
    for (uint32_t L = 0, LE = static_cast<uint32_t>(LI.loops().size());
         L != LE; ++L)
      TripCount[L] = loopTripCount(F, FI, LI.enteringEdges(L),
                                   LI.headerOutEdges(L), EP);

    for (const EquivalentLoadSet &Set : Sets) {
      for (const LoadMember &Mem : Set.Members) {
        bool InLoop = LI.isInLoop(Mem.Block);
        uint32_t LoopIdx = InLoop ? LI.innermostLoop(Mem.Block) : ~0u;
        double Trip = InLoop ? TripCount[LoopIdx] : 0.0;
        Result.SiteInLoop[Mem.SiteId] = InLoop;
        Result.SiteTripCount[Mem.SiteId] = Trip;
      }
    }

    for (const EquivalentLoadSet &Set : Sets) {
      // A set may hold several profiled members (naive methods profile all
      // loads); use the best-populated summary as the set's profile.
      const StrideSiteSummary *Best = nullptr;
      for (const LoadMember &Mem : Set.Members) {
        const StrideSiteSummary &S = SP.site(Mem.SiteId);
        if (S.TotalStrides == 0)
          continue;
        if (!Best || S.TotalStrides > Best->TotalStrides)
          Best = &S;
      }
      if (!Best)
        continue;

      bool InLoop = Set.LoopIdx != ~0u;
      double Trip = InLoop ? TripCount[Set.LoopIdx] : 0.0;

      StrideClass Class = classifyStrideSummary(*Best, Config);
      for (const LoadMember &Mem : Set.Members)
        Result.SiteClass[Mem.SiteId] = Class;
      if (Class == StrideClass::None)
        continue;

      // Figure 5 filters: load frequency and loop trip count.
      const LoadMember &Rep = Set.representative();
      uint64_t LoadFreq = EP.blockFrequency(F, FI, Rep.Block);
      if (LoadFreq <= Config.FrequencyThreshold) {
        ++FreqFiltered;
        continue;
      }
      if (InLoop &&
          Trip <= static_cast<double>(Config.TripCountThreshold)) {
        ++TripFiltered;
        continue;
      }

      // Out-loop loads: only SSST is prefetched, with a fixed distance
      // (Section 2.3).
      if (!InLoop) {
        if (!Config.EnableOutLoopPrefetch || Class != StrideClass::SSST)
          continue;
      }
      if (Class == StrideClass::WSST && !Config.EnableWsstPrefetch)
        continue;

      // Use-distance veto (Section 6 future work): prefetched data for a
      // load revisited only after many other references is likely evicted
      // before use.
      if (Config.EnableUseDistanceFilter && Best->RefGapCount > 0 &&
          Best->avgRefGap() > Config.MaxAvgRefGap) {
        ++GapFiltered;
        continue;
      }

      // Prefetch distance K = min(trip_count / TT, C), at least 1.
      unsigned K;
      if (InLoop) {
        double Raw = Trip / static_cast<double>(Config.TripCountThreshold);
        K = static_cast<unsigned>(std::max(1.0, Raw));
        K = std::min(K, Config.MaxPrefetchDistance);
      } else {
        K = Config.OutLoopPrefetchDistance;
      }
      if (Class == StrideClass::PMST)
        K = roundDownPow2(K);

      if (Class == StrideClass::SSST && InLoop)
        for (const LoadMember &Mem : Set.Members)
          SsstMembers[Mem.SiteId] = {Best->top1Stride(), K};

      // Expand to the cover loads of the set (Section 2.2).
      for (const LoadMember &Cover :
           Set.coverLoads(Config.CacheLineBytes)) {
        if (!Planned.insert(Cover.SiteId).second)
          continue;
        PrefetchDecision D;
        D.SiteId = Cover.SiteId;
        D.Kind = Class;
        D.InLoop = InLoop;
        D.StrideValue = Best->top1Stride();
        D.Distance = K;
        Result.Decisions.push_back(D);
      }
    }
  }

  if (Config.EnableDependentPrefetch) {
    // For every in-loop SSST load in a prefetched set, look for loads in
    // the same block that consume its result register before it is
    // redefined and that have no usable stride of their own: prefetch them
    // through a speculative pointer chase (Section 6, second item).
    std::vector<SiteLocation> Sites = M.locateLoadSites();
    std::set<uint32_t> DepPlanned;
    for (const auto &[BaseSite, Plan] : SsstMembers) {
      const SiteLocation &Loc = Sites[BaseSite];
      const BasicBlock &BB = M.Functions[Loc.Func].Blocks[Loc.Block];
      const Instruction &Base = BB.Insts[Loc.Inst];
      Reg Produced = Base.Dst;
      if (Produced == NoReg)
        continue;
      for (uint32_t II = Loc.Inst + 1;
           II != static_cast<uint32_t>(BB.Insts.size()); ++II) {
        const Instruction &I = BB.Insts[II];
        if (I.Op == Opcode::Load && I.A.getReg() == Produced &&
            Result.SiteClass[I.SiteId] == StrideClass::None &&
            !Planned.count(I.SiteId) && DepPlanned.insert(I.SiteId).second) {
          DependentPrefetchDecision DD;
          DD.BaseSiteId = BaseSite;
          DD.DepSiteId = I.SiteId;
          DD.BaseStride = Plan.first;
          DD.Distance = Plan.second;
          DD.DepOffset = I.Imm;
          Result.DependentDecisions.push_back(DD);
        }
        if (hasDest(I.Op) && I.Dst == Produced)
          break; // the pointer register is redefined
      }
    }
  }

  if (Obs) {
    uint64_t NumClass[4] = {0, 0, 0, 0};
    for (StrideClass C : Result.SiteClass)
      ++NumClass[static_cast<unsigned>(C)];
    Obs->counter("classify.sites")->inc(Result.SiteClass.size());
    Obs->counter("classify.none")
        ->inc(NumClass[static_cast<unsigned>(StrideClass::None)]);
    Obs->counter("classify.ssst")
        ->inc(NumClass[static_cast<unsigned>(StrideClass::SSST)]);
    Obs->counter("classify.pmst")
        ->inc(NumClass[static_cast<unsigned>(StrideClass::PMST)]);
    Obs->counter("classify.wsst")
        ->inc(NumClass[static_cast<unsigned>(StrideClass::WSST)]);
    Obs->counter("classify.freq_filtered")->inc(FreqFiltered);
    Obs->counter("classify.trip_filtered")->inc(TripFiltered);
    Obs->counter("classify.gap_filtered")->inc(GapFiltered);
    Obs->counter("classify.decisions")->inc(Result.Decisions.size());
    Obs->counter("classify.dependent_decisions")
        ->inc(Result.DependentDecisions.size());
  }
  return Result;
}
