//===- stream/SyntheticTrace.cpp - Generated access-trace sources ---------===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "stream/SyntheticTrace.h"

#include "support/Random.h"

#include <algorithm>

namespace sprof {
namespace {

/// How one site advances its address between visits.
enum class SitePattern : uint8_t {
  Stride,  ///< constant stride
  Phased,  ///< stride alternates between two values every PhaseLen visits
  Chase,   ///< pseudo-random walk (pointer chasing)
};

struct SiteSpec {
  SitePattern Pattern = SitePattern::Stride;
  uint64_t Base = 0;
  int64_t Stride = 0;
  int64_t AltStride = 0;   ///< Phased only
  uint32_t PhaseLen = 64;  ///< Phased only
  /// Every Nth visit additionally emits a Prefetch-kind event one stride
  /// ahead (0 disables); exercises kind filtering in consumers.
  uint32_t PrefetchEvery = 0;
};

/// A generator source: round-robin-ish interleaving of per-site streams,
/// with the interleaving order drawn from the seeded Rng so sites overlap
/// the way real loop nests do.
class SyntheticSource final : public AccessSource {
public:
  SyntheticSource(std::string Name, std::vector<SiteSpec> Specs,
                  SyntheticTraceConfig Config)
      : Name(std::move(Name)), Specs(std::move(Specs)), Config(Config),
        Rand(Config.Seed) {
    State.resize(this->Specs.size());
    restart();
  }

  size_t pull(AccessEvent *Buf, size_t Max) override {
    size_t N = 0;
    while (N < Max && Emitted < Config.Events) {
      const uint32_t Site =
          static_cast<uint32_t>(Rand.below(Specs.size()));
      const SiteSpec &S = Specs[Site];
      SiteState &St = State[Site];
      Buf[N++] = AccessEvent{St.Addr, ++GlobalRef, Site, AccessKind::Load};
      ++Emitted;
      if (S.PrefetchEvery != 0 && ++St.SincePrefetch >= S.PrefetchEvery &&
          N < Max) {
        St.SincePrefetch = 0;
        Buf[N++] = AccessEvent{St.Addr + static_cast<uint64_t>(S.Stride),
                               GlobalRef, Site, AccessKind::Prefetch};
      }
      advance(S, St);
    }
    return N;
  }

  uint32_t numSites() const override {
    return static_cast<uint32_t>(Specs.size());
  }

  bool reset() override {
    Rand = Rng(Config.Seed);
    restart();
    return true;
  }

  std::string describe() const override { return Name; }

private:
  struct SiteState {
    uint64_t Addr = 0;
    uint64_t Visits = 0;
    uint64_t ChaseState = 0;
    uint32_t SincePrefetch = 0;
  };

  void restart() {
    Emitted = 0;
    GlobalRef = 0;
    for (size_t I = 0; I < Specs.size(); ++I) {
      State[I] = SiteState();
      State[I].Addr = Specs[I].Base;
      State[I].ChaseState = Config.Seed * 0x9e3779b97f4a7c15ULL + I;
    }
  }

  void advance(const SiteSpec &S, SiteState &St) {
    ++St.Visits;
    switch (S.Pattern) {
    case SitePattern::Stride:
      St.Addr += static_cast<uint64_t>(S.Stride);
      break;
    case SitePattern::Phased: {
      const bool AltPhase = (St.Visits / S.PhaseLen) & 1;
      St.Addr += static_cast<uint64_t>(AltPhase ? S.AltStride : S.Stride);
      break;
    }
    case SitePattern::Chase: {
      // SplitMix64 step: uncorrelated jumps inside a 16 MiB arena.
      uint64_t Z = (St.ChaseState += 0x9e3779b97f4a7c15ULL);
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      St.Addr = S.Base + ((Z ^ (Z >> 31)) & 0xffffffULL & ~7ULL);
      break;
    }
    }
  }

  std::string Name;
  std::vector<SiteSpec> Specs;
  SyntheticTraceConfig Config;
  Rng Rand;
  std::vector<SiteState> State;
  uint64_t Emitted = 0;
  uint64_t GlobalRef = 0;
};

std::vector<SiteSpec> specsFor(const std::string &Name) {
  std::vector<SiteSpec> Specs;
  auto StrideSite = [](uint64_t Base, int64_t Stride) {
    SiteSpec S;
    S.Pattern = SitePattern::Stride;
    S.Base = Base;
    S.Stride = Stride;
    return S;
  };
  if (Name == "stream-seq") {
    // Cache-line-sized strides: the profiling runtime observes addresses
    // at 16-byte granularity (LfuConfig::CoarsenShift), so a sub-16-byte
    // stride profiles as alternating zero/non-zero strides (WSST); 64
    // bytes gives the clean single-stride SSST evidence this generator
    // promises. Bases are 16 MiB apart so the streams never overlap.
    for (int I = 0; I < 4; ++I)
      Specs.push_back(StrideSite(0x1000000ull * (I + 1), 64));
  } else if (Name == "stream-multi") {
    // Interleaved multi-stride streams: one loop touching K arrays with
    // distinct element sizes (Blom et al.'s motivating shape).
    const int64_t Strides[] = {8, 16, 24, 48, 64, 4, 32, 128};
    for (int I = 0; I < 8; ++I)
      Specs.push_back(StrideSite(0x100000ull * (I + 1), Strides[I]));
  } else if (Name == "stream-phased") {
    for (int I = 0; I < 4; ++I) {
      SiteSpec S;
      S.Pattern = SitePattern::Phased;
      S.Base = 0x200000ull * (I + 1);
      S.Stride = 8 * (I + 1);
      S.AltStride = -8 * (I + 1);
      S.PhaseLen = 64;
      Specs.push_back(S);
    }
  } else if (Name == "stream-chase") {
    for (int I = 0; I < 4; ++I) {
      SiteSpec S;
      S.Pattern = SitePattern::Chase;
      S.Base = 0x4000000ull * (I + 1);
      Specs.push_back(S);
    }
  } else if (Name == "stream-mixed") {
    Specs.push_back(StrideSite(0x10000, 8));
    Specs.push_back(StrideSite(0x80000, 64));
    {
      SiteSpec S;
      S.Pattern = SitePattern::Phased;
      S.Base = 0x200000;
      S.Stride = 16;
      S.AltStride = -16;
      S.PhaseLen = 32;
      Specs.push_back(S);
    }
    {
      SiteSpec S;
      S.Pattern = SitePattern::Chase;
      S.Base = 0x4000000;
      Specs.push_back(S);
    }
    {
      SiteSpec S = StrideSite(0x8000000, 8);
      S.PrefetchEvery = 16;
      Specs.push_back(S);
    }
  }
  return Specs;
}

} // namespace

std::vector<std::string> syntheticTraceNames() {
  return {"stream-seq", "stream-multi", "stream-phased", "stream-chase",
          "stream-mixed"};
}

std::unique_ptr<AccessSource>
makeSyntheticTrace(const std::string &Name,
                   const SyntheticTraceConfig &Config) {
  std::vector<SiteSpec> Specs = specsFor(Name);
  if (Specs.empty())
    return nullptr;
  return std::make_unique<SyntheticSource>(Name, std::move(Specs), Config);
}

} // namespace sprof
