//===- stream/TraceFile.h - sprof.trace/2 capture + replay -----*- C++ -*-===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned trace container `sprof.trace/2`: a compact, dependency-free
/// binary encoding of an access-event stream (docs/TRACE.md is the format
/// spec), plus a line-oriented text twin `sprof.trace.text/1` for
/// hand-written and externally generated traces.
///
///   * TraceWriter is an AccessSink with a streaming encoder: events are
///     delta-encoded against the previous event (zigzag varints for the
///     site, address, and global-ref deltas), so regular strides cost a
///     few bytes per event and nothing is buffered beyond one batch.
///   * TraceReader is an AccessSource that decodes the same stream, with
///     strict error reporting: a missing end marker or footer is
///     diagnosed as truncation, a bad magic as a foreign file, and an
///     unknown version as a version mismatch -- each with a distinct
///     TraceError code so tools can exit nonzero with a precise message.
///
/// Version 2 adds the *shard index*: every IndexInterval events the writer
/// records the chunk's byte offset together with the carried delta-decoder
/// state (previous site/address/global-ref), so any chunk can be decoded
/// independently of the ones before it. The index lives in a trailer
/// section and is reachable without scanning the event stream through a
/// fixed 16-byte seekable tail, which is what lets ParallelReplay fan one
/// trace out across cores (driver/ParallelReplay.h). Version-1 files stay
/// fully readable; they simply have no index.
///
/// A trace optionally carries an edge-profile section (opaque counter
/// tuples, written after the event stream) so that replaying a captured
/// profile run can reconstruct the classifier's full input without
/// re-executing the program. The stream layer does not interpret the
/// tuples; the driver converts them to/from EdgeProfile.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_STREAM_TRACEFILE_H
#define SPROF_STREAM_TRACEFILE_H

#include "stream/AccessStream.h"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sprof {

/// Schema identifiers of the trace container (mirrored in run reports and
/// validated by scripts/check_telemetry_schema.sh).
inline const char *const TraceSchemaV1 = "sprof.trace/1";
inline const char *const TraceSchemaV2 = "sprof.trace/2";
inline const char *const TraceTextSchemaV1 = "sprof.trace.text/1";

/// Newest container version TraceWriter emits and TraceReader accepts;
/// readers keep accepting every version down to 1.
inline constexpr uint32_t TraceFormatVersion = 2;

/// Default shard-index granularity (events per chunk). At the encoder's
/// ~6 B/event a chunk is ~200 KB of file, small enough that a thread pool
/// load-balances well even on traces of a few million events.
inline constexpr uint64_t DefaultTraceIndexInterval = 32768;

/// Where a trace came from: the workload, data set, and profiling method
/// of the capturing run. All fields may be empty (external traces).
struct TraceProvenance {
  std::string Workload;
  std::string DataSet;
  std::string Method;
};

/// Opaque edge-profile records (see file comment). Func/From/Slot mirror
/// EdgeProfile's keying; the stream layer only stores the tuples.
struct TraceEntryRecord {
  uint32_t Func = 0;
  uint64_t Count = 0;
};
struct TraceEdgeRecord {
  uint32_t Func = 0;
  uint32_t From = 0;
  uint32_t Slot = 0;
  uint64_t Count = 0;
};
struct TraceEdgeSection {
  bool Present = false;
  uint32_t NumFunctions = 0;
  std::vector<TraceEntryRecord> Entries;
  std::vector<TraceEdgeRecord> Edges;
};

/// One shard-index entry: where a chunk of events starts and the decoder
/// state carried into it, so the chunk decodes with no earlier context.
struct TraceShardEntry {
  uint64_t ByteOffset = 0; ///< absolute file offset of the chunk's first event
  uint64_t CumEvents = 0;  ///< events encoded before this chunk
  uint64_t CumLoads = 0;   ///< load-kind events encoded before this chunk
  /// Carried delta-decoder registers: the values after the previous
  /// chunk's last event (all zero for chunk 0).
  uint64_t PrevAddr = 0;
  uint64_t PrevRef = 0;
  uint32_t PrevSite = 0;
};

/// The /2 shard index: chunk table plus the framing offsets a seeking
/// reader needs. Present == false on /1 and text traces.
struct TraceShardIndex {
  bool Present = false;
  uint64_t Interval = 0;    ///< nominal events per chunk (> 0 when Present)
  uint64_t TotalEvents = 0; ///< footer event count
  uint64_t TotalLoads = 0;  ///< load-kind events in the whole trace
  uint32_t NumSites = 0;
  uint64_t EventsStart = 0; ///< file offset of the first event record
  uint64_t FooterStart = 0; ///< file offset of the end-of-events marker
  std::vector<TraceShardEntry> Chunks;

  size_t numChunks() const { return Chunks.size(); }
  /// Events in chunk \p I (the last chunk holds the remainder).
  uint64_t chunkEvents(size_t I) const {
    return (I + 1 < Chunks.size() ? Chunks[I + 1].CumEvents : TotalEvents) -
           Chunks[I].CumEvents;
  }
  /// Load-kind events in chunk \p I.
  uint64_t chunkLoads(size_t I) const {
    return (I + 1 < Chunks.size() ? Chunks[I + 1].CumLoads : TotalLoads) -
           Chunks[I].CumLoads;
  }
  /// First byte past chunk \p I's event records.
  uint64_t chunkEndOffset(size_t I) const {
    return I + 1 < Chunks.size() ? Chunks[I + 1].ByteOffset : FooterStart;
  }
};

/// Why a trace failed to load; None means the trace is healthy so far.
enum class TraceError : uint8_t {
  None = 0,
  Io,              ///< unreadable file / stream failure
  BadMagic,        ///< not an sprof trace at all
  VersionMismatch, ///< sprof trace, but an unsupported container version
  Truncated,       ///< ends before the end marker / footer
  Corrupt,         ///< structurally invalid (bad tag, count mismatch, ...)
};

/// Human-readable name of a TraceError ("truncated", "version-mismatch").
const char *traceErrorName(TraceError E);

/// Streaming trace encoder. Feed it batches (it is an AccessSink -- attach
/// it to an engine's event-sink slot or drainStream() into it), then call
/// finish() to write the end marker, optional edge section, and footer.
///
/// \p IndexInterval selects the shard-index granularity; 0 disables the
/// index and writes a version-1 container (byte-identical to what earlier
/// revisions produced), which is how /1 compatibility fixtures are made.
/// Text traces never carry an index.
class TraceWriter final : public AccessSink {
public:
  /// Writes to a borrowed stream (tests use string streams).
  TraceWriter(std::ostream &OS, uint32_t NumSites, TraceProvenance Prov = {},
              bool Text = false,
              uint64_t IndexInterval = DefaultTraceIndexInterval);

  /// Opens \p Path for writing. Returns nullptr (and sets \p Error) when
  /// the file cannot be created.
  static std::unique_ptr<TraceWriter>
  open(const std::string &Path, uint32_t NumSites, TraceProvenance Prov = {},
       bool Text = false, std::string *Error = nullptr,
       uint64_t IndexInterval = DefaultTraceIndexInterval);

  ~TraceWriter() override;

  void onBatch(const AccessEvent *Events, size_t N) override;

  /// Attaches the edge-profile section written by finish(). Must be called
  /// before finish(); the driver fills it from the capturing run's edge
  /// counters.
  void setEdgeSection(TraceEdgeSection S) { EdgeSec = std::move(S); }

  /// Writes end marker + sections + footer, then flushes and (for
  /// file-backed writers) closes, so deferred short writes -- ENOSPC
  /// surfacing at flush/close time -- are still caught. Idempotent; called
  /// by the destructor as a safety net, but callers should finish()
  /// explicitly and check ok().
  void finish() override;

  bool ok() const { return !Failed; }
  const std::string &error() const { return Err; }
  /// Container version being written (2, or 1 when the index is disabled).
  uint32_t version() const { return Version; }
  /// Schema string of the container being written (for run reports).
  const char *schema() const;
  uint64_t eventsWritten() const { return NumEvents; }
  uint64_t bytesWritten() const { return NumBytes; }

private:
  void putByte(uint8_t B);
  void putBytes(const void *Data, size_t N);
  void putVarint(uint64_t V);
  void putZigzag(int64_t V);
  void writeHeader(uint32_t NumSites, const TraceProvenance &Prov);
  void flushBuf();

  std::unique_ptr<std::ostream> OwnedOS;
  std::ostream *OS;
  /// The owned stream as a file, when open() created it; finish() closes
  /// it explicitly so close-time write failures are reported, not lost.
  std::ofstream *OwnedFile = nullptr;
  bool Text;
  uint32_t Version;
  bool Finished = false;
  bool Failed = false;
  std::string Err;
  std::vector<uint8_t> Buf;
  TraceEdgeSection EdgeSec;
  uint64_t NumEvents = 0;
  uint64_t NumBytes = 0;
  // Shard-index accumulation (binary /2 only).
  uint64_t IndexInterval;
  uint64_t UntilChunk = 0; ///< events until the next chunk boundary
  uint64_t NumLoads = 0;
  std::vector<TraceShardEntry> Index;
  // Delta-encoder state (previous event; all start at 0).
  uint64_t PrevAddr = 0;
  uint64_t PrevRef = 0;
  uint32_t PrevSite = 0;
};

/// Streaming trace decoder. Construction parses the header; pull() decodes
/// events; once pull() returns 0, check ok() -- a clean end of stream has
/// parsed the end marker, edge section, and footer, anything else is
/// reported through errorCode()/error().
class TraceReader final : public AccessSource {
public:
  /// Reads from a borrowed stream; \p Name labels diagnostics.
  TraceReader(std::istream &IS, std::string Name = "<stream>");

  /// Opens \p Path; never returns nullptr -- open failures are reported
  /// through the reader's own error state so callers have one error path.
  static std::unique_ptr<TraceReader> openFile(const std::string &Path);

  /// Opens \p Path and, for /2 files, loads the shard index and footer by
  /// seeking to the fixed tail -- no event is decoded, so this is O(index)
  /// even on multi-gigabyte traces. On success index().Present is true,
  /// eventCount() and edgeSection() are valid, and the reader is
  /// exhausted (pull() returns 0); decode the events through openShard().
  /// /1 and text files come back with index().Present == false and the
  /// reader positioned for normal sequential pull() -- the caller decides
  /// whether to fall back to serial decode. A /2 file with a missing or
  /// damaged tail/index fails with Truncated/Corrupt, never silently.
  static std::unique_ptr<TraceReader> openFileIndexed(const std::string &Path);

  /// A decoder over chunks [\p FirstChunk, \p FirstChunk + \p NumChunks)
  /// of an indexed trace: seeks to the chunk's byte offset, seeds the
  /// delta decoder with the index's carried state, and decodes exactly
  /// the chunks' events. After the last event the reader cross-checks
  /// that decoding consumed precisely the bytes the index promised
  /// (Corrupt otherwise), so a damaged chunk cannot leak into a merge.
  /// reset() is unsupported on shard readers.
  static std::unique_ptr<TraceReader> openShard(const std::string &Path,
                                                const TraceShardIndex &Index,
                                                size_t FirstChunk,
                                                size_t NumChunks = 1);

  ~TraceReader() override;

  size_t pull(AccessEvent *Buf, size_t Max) override;
  uint32_t numSites() const override { return Sites; }
  /// Rewinds and re-parses the header. Works for file-backed and seekable
  /// borrowed streams; unsupported (returns false) for shard readers.
  bool reset() override;
  std::string describe() const override;

  bool ok() const { return ErrCode == TraceError::None; }
  TraceError errorCode() const { return ErrCode; }
  const std::string &error() const { return Err; }

  /// Header fields (valid when the constructor left ok() true).
  uint32_t version() const { return Version; }
  bool text() const { return IsText; }
  const TraceProvenance &provenance() const { return Prov; }

  /// Footer fields; valid only once the stream is exhausted cleanly
  /// (pull() returned 0 and ok() still holds) or after openFileIndexed().
  bool atEnd() const { return SawFooter; }
  uint64_t eventCount() const { return FooterEvents; }
  const TraceEdgeSection &edgeSection() const { return EdgeSec; }
  /// The shard index (Present only for /2 binary traces, populated once
  /// the footer has been parsed -- immediately for openFileIndexed()).
  const TraceShardIndex &index() const { return Index; }

private:
  struct ShardTag {};
  explicit TraceReader(ShardTag); ///< openShard's no-header constructor

  void fail(TraceError Code, const std::string &Message);
  bool fillBuf();
  int getByte(); ///< -1 at end of input
  bool getVarint(uint64_t &V);
  bool getZigzag(int64_t &V);
  /// Absolute file offset of the next byte getByte() would return.
  uint64_t tellAbs() const { return SeekBase + BufBase + InPos; }
  bool seekTo(uint64_t AbsOffset);
  bool parseHeader();
  bool parseBinaryHeader();
  bool parseTextHeader(const std::string &FirstLine);
  bool parseFooter();      ///< binary: sections + count + tail + end magic
  bool parseIndexSection();
  bool validateIndex();
  bool loadIndexFromTail();
  bool parseTextLine(const std::string &Line, AccessEvent &E, bool &IsEvent);
  bool readLine(std::string &Line);
  size_t pullBinary(AccessEvent *Buf, size_t Max);
  size_t pullText(AccessEvent *Buf, size_t Max);

  std::unique_ptr<std::istream> OwnedIS;
  std::istream *IS;
  std::string Name;
  std::string Path; ///< non-empty when file-backed (enables reset())

  TraceError ErrCode = TraceError::None;
  std::string Err;

  bool IsText = false;
  uint32_t Version = 0;
  uint32_t Sites = 0;
  TraceProvenance Prov;

  bool SawEndMarker = false;
  bool SawFooter = false;
  bool IndexedOpen = false; ///< footer reached by seeking, not decoding
  uint64_t DecodedEvents = 0;
  uint64_t FooterEvents = 0;
  TraceEdgeSection EdgeSec;
  TraceShardIndex Index;
  uint64_t EventsStart = 0; ///< offset of the first event record
  uint64_t FooterStart = 0; ///< offset of the end-of-events marker

  // Shard-decode mode (openShard): decode exactly ShardMaxEvents events
  // and then verify the byte position against the index.
  bool ShardMode = false;
  uint64_t ShardMaxEvents = 0;
  uint64_t ShardEndOffset = 0;

  // Delta-decoder state (mirrors the writer).
  uint64_t PrevAddr = 0;
  uint64_t PrevRef = 0;
  uint32_t PrevSite = 0;

  // Buffered binary input; SeekBase + BufBase + InPos is the absolute
  // offset of the next unconsumed byte (see tellAbs()).
  std::vector<uint8_t> InBuf;
  size_t InPos = 0;
  size_t InLen = 0;
  uint64_t SeekBase = 0;
  uint64_t BufBase = 0;

  // Text mode: one pushed-back line (the header parser reads one line too
  // many to find where provenance ends).
  std::string PendingLine;
  bool HasPending = false;
};

/// What importAccessLog() produced.
struct TraceImportResult {
  uint64_t Events = 0;
  uint64_t Loads = 0;
  uint64_t Prefetches = 0;
  uint32_t NumSites = 0;
  uint64_t Bytes = 0;
};

/// Imports a cacheSight-style text access log into a binary sprof.trace/2
/// file at \p OutPath. One event per line, "addr,site,kind" with optional
/// whitespace: addr is decimal or 0x-prefixed hex, site is a decimal load
/// site id, kind is L/load or P/prefetch (case-insensitive). Blank lines
/// and '#' comments are skipped. The log carries no global-ref counter, so
/// GlobalRefIndex is synthesized as the running 1-based event count, and
/// the site count is the highest site id seen plus one. Returns nullopt
/// and sets \p Error (naming the offending line) on malformed input or a
/// write failure.
std::optional<TraceImportResult> importAccessLog(std::istream &In,
                                                 const std::string &OutPath,
                                                 std::string *Error = nullptr);

} // namespace sprof

#endif // SPROF_STREAM_TRACEFILE_H
