//===- stream/TraceFile.h - sprof.trace/1 capture + replay -----*- C++ -*-===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned trace container `sprof.trace/1`: a compact, dependency-free
/// binary encoding of an access-event stream (docs/TRACE.md is the format
/// spec), plus a line-oriented text twin `sprof.trace.text/1` for
/// hand-written and externally generated traces.
///
///   * TraceWriter is an AccessSink with a streaming encoder: events are
///     delta-encoded against the previous event (zigzag varints for the
///     site, address, and global-ref deltas), so regular strides cost a
///     few bytes per event and nothing is buffered beyond one batch.
///   * TraceReader is an AccessSource that decodes the same stream, with
///     strict error reporting: a missing end marker or footer is
///     diagnosed as truncation, a bad magic as a foreign file, and an
///     unknown version as a version mismatch -- each with a distinct
///     TraceError code so tools can exit nonzero with a precise message.
///
/// A trace optionally carries an edge-profile section (opaque counter
/// tuples, written after the event stream) so that replaying a captured
/// profile run can reconstruct the classifier's full input without
/// re-executing the program. The stream layer does not interpret the
/// tuples; the driver converts them to/from EdgeProfile.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_STREAM_TRACEFILE_H
#define SPROF_STREAM_TRACEFILE_H

#include "stream/AccessStream.h"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace sprof {

/// Schema identifiers of the trace container (mirrored in run reports and
/// validated by scripts/check_telemetry_schema.sh).
inline const char *const TraceSchemaV1 = "sprof.trace/1";
inline const char *const TraceTextSchemaV1 = "sprof.trace.text/1";

/// Container version written by TraceWriter and required by TraceReader.
inline constexpr uint32_t TraceFormatVersion = 1;

/// Where a trace came from: the workload, data set, and profiling method
/// of the capturing run. All fields may be empty (external traces).
struct TraceProvenance {
  std::string Workload;
  std::string DataSet;
  std::string Method;
};

/// Opaque edge-profile records (see file comment). Func/From/Slot mirror
/// EdgeProfile's keying; the stream layer only stores the tuples.
struct TraceEntryRecord {
  uint32_t Func = 0;
  uint64_t Count = 0;
};
struct TraceEdgeRecord {
  uint32_t Func = 0;
  uint32_t From = 0;
  uint32_t Slot = 0;
  uint64_t Count = 0;
};
struct TraceEdgeSection {
  bool Present = false;
  uint32_t NumFunctions = 0;
  std::vector<TraceEntryRecord> Entries;
  std::vector<TraceEdgeRecord> Edges;
};

/// Why a trace failed to load; None means the trace is healthy so far.
enum class TraceError : uint8_t {
  None = 0,
  Io,              ///< unreadable file / stream failure
  BadMagic,        ///< not an sprof trace at all
  VersionMismatch, ///< sprof trace, but an unsupported container version
  Truncated,       ///< ends before the end marker / footer
  Corrupt,         ///< structurally invalid (bad tag, count mismatch, ...)
};

/// Human-readable name of a TraceError ("truncated", "version-mismatch").
const char *traceErrorName(TraceError E);

/// Streaming trace encoder. Feed it batches (it is an AccessSink -- attach
/// it to an engine's event-sink slot or drainStream() into it), then call
/// finish() to write the end marker, optional edge section, and footer.
class TraceWriter final : public AccessSink {
public:
  /// Writes to a borrowed stream (tests use string streams).
  TraceWriter(std::ostream &OS, uint32_t NumSites, TraceProvenance Prov = {},
              bool Text = false);

  /// Opens \p Path for writing. Returns nullptr (and sets \p Error) when
  /// the file cannot be created.
  static std::unique_ptr<TraceWriter> open(const std::string &Path,
                                           uint32_t NumSites,
                                           TraceProvenance Prov = {},
                                           bool Text = false,
                                           std::string *Error = nullptr);

  ~TraceWriter() override;

  void onBatch(const AccessEvent *Events, size_t N) override;

  /// Attaches the edge-profile section written by finish(). Must be called
  /// before finish(); the driver fills it from the capturing run's edge
  /// counters.
  void setEdgeSection(TraceEdgeSection S) { EdgeSec = std::move(S); }

  /// Writes end marker + sections + footer. Idempotent; called by the
  /// destructor as a safety net, but callers should finish() explicitly
  /// and check ok().
  void finish() override;

  bool ok() const { return !Failed; }
  const std::string &error() const { return Err; }
  uint64_t eventsWritten() const { return NumEvents; }
  uint64_t bytesWritten() const { return NumBytes; }

private:
  void putByte(uint8_t B);
  void putBytes(const void *Data, size_t N);
  void putVarint(uint64_t V);
  void putZigzag(int64_t V);
  void writeHeader(uint32_t NumSites, const TraceProvenance &Prov);
  void flushBuf();

  std::unique_ptr<std::ostream> OwnedOS;
  std::ostream *OS;
  bool Text;
  bool Finished = false;
  bool Failed = false;
  std::string Err;
  std::vector<uint8_t> Buf;
  TraceEdgeSection EdgeSec;
  uint64_t NumEvents = 0;
  uint64_t NumBytes = 0;
  // Delta-encoder state (previous event; all start at 0).
  uint64_t PrevAddr = 0;
  uint64_t PrevRef = 0;
  uint32_t PrevSite = 0;
};

/// Streaming trace decoder. Construction parses the header; pull() decodes
/// events; once pull() returns 0, check ok() -- a clean end of stream has
/// parsed the end marker, edge section, and footer, anything else is
/// reported through errorCode()/error().
class TraceReader final : public AccessSource {
public:
  /// Reads from a borrowed stream; \p Name labels diagnostics.
  TraceReader(std::istream &IS, std::string Name = "<stream>");

  /// Opens \p Path; never returns nullptr -- open failures are reported
  /// through the reader's own error state so callers have one error path.
  static std::unique_ptr<TraceReader> openFile(const std::string &Path);

  ~TraceReader() override;

  size_t pull(AccessEvent *Buf, size_t Max) override;
  uint32_t numSites() const override { return Sites; }
  /// Rewinds and re-parses the header. Works for file-backed and seekable
  /// borrowed streams.
  bool reset() override;
  std::string describe() const override;

  bool ok() const { return ErrCode == TraceError::None; }
  TraceError errorCode() const { return ErrCode; }
  const std::string &error() const { return Err; }

  /// Header fields (valid when the constructor left ok() true).
  uint32_t version() const { return Version; }
  bool text() const { return IsText; }
  const TraceProvenance &provenance() const { return Prov; }

  /// Footer fields; valid only once the stream is exhausted cleanly
  /// (pull() returned 0 and ok() still holds).
  bool atEnd() const { return SawFooter; }
  uint64_t eventCount() const { return FooterEvents; }
  const TraceEdgeSection &edgeSection() const { return EdgeSec; }

private:
  void fail(TraceError Code, const std::string &Message);
  bool fillBuf();
  int getByte(); ///< -1 at end of input
  bool getVarint(uint64_t &V);
  bool getZigzag(int64_t &V);
  bool parseHeader();
  bool parseBinaryHeader();
  bool parseTextHeader(const std::string &FirstLine);
  bool parseFooter();      ///< binary: edge section + count + end magic
  bool parseTextLine(const std::string &Line, AccessEvent &E, bool &IsEvent);
  bool readLine(std::string &Line);
  size_t pullBinary(AccessEvent *Buf, size_t Max);
  size_t pullText(AccessEvent *Buf, size_t Max);

  std::unique_ptr<std::istream> OwnedIS;
  std::istream *IS;
  std::string Name;
  std::string Path; ///< non-empty when file-backed (enables reset())

  TraceError ErrCode = TraceError::None;
  std::string Err;

  bool IsText = false;
  uint32_t Version = 0;
  uint32_t Sites = 0;
  TraceProvenance Prov;

  bool SawEndMarker = false;
  bool SawFooter = false;
  uint64_t DecodedEvents = 0;
  uint64_t FooterEvents = 0;
  TraceEdgeSection EdgeSec;

  // Delta-decoder state (mirrors the writer).
  uint64_t PrevAddr = 0;
  uint64_t PrevRef = 0;
  uint32_t PrevSite = 0;

  // Buffered binary input.
  std::vector<uint8_t> InBuf;
  size_t InPos = 0;
  size_t InLen = 0;

  // Text mode: one pushed-back line (the header parser reads one line too
  // many to find where provenance ends).
  std::string PendingLine;
  bool HasPending = false;
};

} // namespace sprof

#endif // SPROF_STREAM_TRACEFILE_H
