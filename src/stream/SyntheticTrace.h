//===- stream/SyntheticTrace.h - Generated access-trace sources -*- C++ -*-===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic access-trace generators: the trace-backed
/// workload family. Each generator is an AccessSource computing its events
/// on the fly (no trace file needed, though any of them can be captured
/// into one via TraceWriter), covering the pattern classes the classifier
/// and the related work care about:
///
///   * stream-seq:    one dominant-stride stream per site (SSST);
///   * stream-multi:  interleaved multi-stride streams, Blom-et-al style;
///   * stream-phased: stride flips between phases (PMST evidence);
///   * stream-chase:  pseudo-random pointer chasing (no regular stride);
///   * stream-mixed:  all of the above interleaved, plus prefetch-kind
///                    events, to exercise kind filtering.
///
/// All generators are seeded Rng streams, so every run of the same name +
/// config yields the identical event sequence on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_STREAM_SYNTHETICTRACE_H
#define SPROF_STREAM_SYNTHETICTRACE_H

#include "stream/AccessStream.h"

#include <memory>
#include <string>
#include <vector>

namespace sprof {

/// Size/seed knobs shared by all synthetic trace generators.
struct SyntheticTraceConfig {
  uint64_t Events = 200000;
  uint64_t Seed = 1;
};

/// Names accepted by makeSyntheticTrace, in a stable order.
std::vector<std::string> syntheticTraceNames();

/// Builds the named generator, or nullptr for an unknown name.
std::unique_ptr<AccessSource>
makeSyntheticTrace(const std::string &Name,
                   const SyntheticTraceConfig &Config = {});

} // namespace sprof

#endif // SPROF_STREAM_SYNTHETICTRACE_H
