//===- stream/TraceFile.cpp - sprof.trace/2 capture + replay --------------===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
//
// Binary layout (sprof.trace/2; all multi-byte integers are LEB128 varints
// except the two fixed little-endian u32 header words and the fixed u64 of
// the seekable tail):
//
//   "SPROFTRC"  u32 version  u32 numSites
//   3 x (varint length + bytes): workload, dataset, method
//   events: tag byte (0x01 load, 0x02 prefetch), then zigzag varints of
//           the site, address, and global-ref deltas vs the previous event
//   0x00 end-of-events marker                      <-- "footer start"
//   sections: tag 0x01 = edge profile (varint numFunctions, entry records,
//             edge records),
//             tag 0x02 = shard index (varint interval, varint numChunks,
//             per chunk: byteOffset, cumEvents, cumLoads, prevSite,
//             prevAddr, prevRef varints; then varint totalLoads),
//             tag 0x00 = end of sections
//   varint event count (must match the decoded count)
//   u64 LE footer-start offset  "SPROFEND"         <-- 16-byte seekable tail
//
// The trailing marker + count is what makes truncation detectable: a
// partial file ends mid-varint or before the footer, never silently. The
// fixed-size tail is what makes the index reachable without decoding: seek
// to EOF-16, verify the end magic, follow the offset to the end-of-events
// marker, and parse the sections from there. Version-1 files are the same
// layout without the index section and without the u64 tail word.
//
//===----------------------------------------------------------------------===//

#include "stream/TraceFile.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sprof {

static const char TraceMagic[8] = {'S', 'P', 'R', 'O', 'F', 'T', 'R', 'C'};
static const char TraceEndMagic[8] = {'S', 'P', 'R', 'O', 'F', 'E', 'N', 'D'};
static const char *TraceTextPrefix = "sprof.trace.text/";

static constexpr uint8_t TagEnd = 0x00;
static constexpr uint8_t TagLoad = 0x01;
static constexpr uint8_t TagPrefetch = 0x02;
static constexpr uint8_t SectionEnd = 0x00;
static constexpr uint8_t SectionEdges = 0x01;
static constexpr uint8_t SectionIndex = 0x02;

/// Bytes of the /2 seekable tail: u64 LE footer-start + "SPROFEND".
static constexpr uint64_t TraceTailBytes = 16;

const char *traceErrorName(TraceError E) {
  switch (E) {
  case TraceError::None:
    return "none";
  case TraceError::Io:
    return "io-error";
  case TraceError::BadMagic:
    return "bad-magic";
  case TraceError::VersionMismatch:
    return "version-mismatch";
  case TraceError::Truncated:
    return "truncated";
  case TraceError::Corrupt:
    return "corrupt";
  }
  return "unknown";
}

static uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

static int64_t zigzagDecode(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

TraceWriter::TraceWriter(std::ostream &OS, uint32_t NumSites,
                         TraceProvenance Prov, bool Text,
                         uint64_t IndexInterval)
    : OS(&OS), Text(Text),
      Version(Text || IndexInterval == 0 ? 1 : TraceFormatVersion),
      IndexInterval(Text ? 0 : IndexInterval) {
  writeHeader(NumSites, Prov);
}

std::unique_ptr<TraceWriter> TraceWriter::open(const std::string &Path,
                                               uint32_t NumSites,
                                               TraceProvenance Prov, bool Text,
                                               std::string *Error,
                                               uint64_t IndexInterval) {
  auto File = std::make_unique<std::ofstream>(
      Path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!*File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return nullptr;
  }
  // Borrow-constructor against the stream we are about to own; the moved
  // pointer keeps the stream alive for the writer's lifetime.
  std::ostream &Ref = *File;
  auto W = std::make_unique<TraceWriter>(Ref, NumSites, std::move(Prov), Text,
                                         IndexInterval);
  W->OwnedFile = File.get();
  W->OwnedOS = std::move(File);
  return W;
}

TraceWriter::~TraceWriter() { finish(); }

const char *TraceWriter::schema() const {
  if (Text)
    return TraceTextSchemaV1;
  return Version >= 2 ? TraceSchemaV2 : TraceSchemaV1;
}

void TraceWriter::putByte(uint8_t B) { Buf.push_back(B); }

void TraceWriter::putBytes(const void *Data, size_t N) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Buf.insert(Buf.end(), P, P + N);
}

void TraceWriter::putVarint(uint64_t V) {
  while (V >= 0x80) {
    putByte(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  putByte(static_cast<uint8_t>(V));
}

void TraceWriter::putZigzag(int64_t V) { putVarint(zigzagEncode(V)); }

void TraceWriter::flushBuf() {
  if (Buf.empty() || Failed)
    return;
  OS->write(reinterpret_cast<const char *>(Buf.data()),
            static_cast<std::streamsize>(Buf.size()));
  if (!*OS) {
    Failed = true;
    Err = "write failure after " + std::to_string(NumBytes) +
          " bytes (disk full or sink closed?)";
    Buf.clear();
    return;
  }
  NumBytes += Buf.size();
  Buf.clear();
}

void TraceWriter::writeHeader(uint32_t NumSites, const TraceProvenance &Prov) {
  if (Text) {
    std::string H = std::string(TraceTextSchemaV1) + "\n" +
                    "sites " + std::to_string(NumSites) + "\n";
    if (!Prov.Workload.empty())
      H += "workload " + Prov.Workload + "\n";
    if (!Prov.DataSet.empty())
      H += "dataset " + Prov.DataSet + "\n";
    if (!Prov.Method.empty())
      H += "method " + Prov.Method + "\n";
    putBytes(H.data(), H.size());
  } else {
    putBytes(TraceMagic, sizeof(TraceMagic));
    const uint32_t Words[2] = {Version, NumSites};
    for (uint32_t W : Words)
      for (int I = 0; I < 4; ++I)
        putByte(static_cast<uint8_t>(W >> (8 * I)));
    for (const std::string *S :
         {&Prov.Workload, &Prov.DataSet, &Prov.Method}) {
      putVarint(S->size());
      putBytes(S->data(), S->size());
    }
  }
  flushBuf();
}

void TraceWriter::onBatch(const AccessEvent *Events, size_t N) {
  if (Finished || Failed)
    return;
  if (Text) {
    char Line[96];
    for (size_t I = 0; I < N; ++I) {
      const AccessEvent &E = Events[I];
      const int Len = std::snprintf(
          Line, sizeof(Line), "%c %u %llu %llu\n",
          E.Kind == AccessKind::Prefetch ? 'P' : 'L', E.SiteId,
          static_cast<unsigned long long>(E.Address),
          static_cast<unsigned long long>(E.GlobalRefIndex));
      putBytes(Line, static_cast<size_t>(Len));
    }
  } else {
    for (size_t I = 0; I < N; ++I) {
      const AccessEvent &E = Events[I];
      if (IndexInterval != 0) {
        if (UntilChunk == 0) {
          // Chunk boundary: remember where this event starts and the
          // decoder state carried into it. NumBytes counts flushed bytes,
          // so the pending buffer is part of the offset.
          Index.push_back({NumBytes + Buf.size(), NumEvents + I, NumLoads,
                           PrevAddr, PrevRef, PrevSite});
          UntilChunk = IndexInterval;
        }
        --UntilChunk;
        if (E.Kind != AccessKind::Prefetch)
          ++NumLoads;
      }
      putByte(E.Kind == AccessKind::Prefetch ? TagPrefetch : TagLoad);
      putZigzag(static_cast<int64_t>(E.SiteId) -
                static_cast<int64_t>(PrevSite));
      putZigzag(static_cast<int64_t>(E.Address - PrevAddr));
      putZigzag(static_cast<int64_t>(E.GlobalRefIndex - PrevRef));
      PrevSite = E.SiteId;
      PrevAddr = E.Address;
      PrevRef = E.GlobalRefIndex;
    }
  }
  NumEvents += N;
  flushBuf();
}

void TraceWriter::finish() {
  if (Finished)
    return;
  Finished = true;
  if (Failed)
    return;
  if (Text) {
    std::string T = "end " + std::to_string(NumEvents) + "\n";
    if (EdgeSec.Present) {
      T += "edges " + std::to_string(EdgeSec.NumFunctions) + "\n";
      for (const TraceEntryRecord &R : EdgeSec.Entries)
        T += "entry " + std::to_string(R.Func) + " " +
             std::to_string(R.Count) + "\n";
      for (const TraceEdgeRecord &R : EdgeSec.Edges)
        T += "edge " + std::to_string(R.Func) + " " +
             std::to_string(R.From) + " " + std::to_string(R.Slot) + " " +
             std::to_string(R.Count) + "\n";
      T += "endedges\n";
    }
    T += "endtrace\n";
    putBytes(T.data(), T.size());
  } else {
    const uint64_t FooterStart = NumBytes + Buf.size();
    putByte(TagEnd);
    if (EdgeSec.Present) {
      putByte(SectionEdges);
      putVarint(EdgeSec.NumFunctions);
      putVarint(EdgeSec.Entries.size());
      for (const TraceEntryRecord &R : EdgeSec.Entries) {
        putVarint(R.Func);
        putVarint(R.Count);
      }
      putVarint(EdgeSec.Edges.size());
      for (const TraceEdgeRecord &R : EdgeSec.Edges) {
        putVarint(R.Func);
        putVarint(R.From);
        putVarint(R.Slot);
        putVarint(R.Count);
      }
    }
    if (Version >= 2) {
      putByte(SectionIndex);
      putVarint(IndexInterval);
      putVarint(Index.size());
      for (const TraceShardEntry &E : Index) {
        putVarint(E.ByteOffset);
        putVarint(E.CumEvents);
        putVarint(E.CumLoads);
        putVarint(E.PrevSite);
        putVarint(E.PrevAddr);
        putVarint(E.PrevRef);
      }
      putVarint(NumLoads);
    }
    putByte(SectionEnd);
    putVarint(NumEvents);
    if (Version >= 2)
      for (int I = 0; I < 8; ++I)
        putByte(static_cast<uint8_t>(FooterStart >> (8 * I)));
    putBytes(TraceEndMagic, sizeof(TraceEndMagic));
  }
  flushBuf();
  OS->flush();
  if (!*OS && !Failed) {
    Failed = true;
    Err = "write failure flushing the footer after " +
          std::to_string(NumBytes) + " bytes";
  }
  // Deferred write errors (ENOSPC on buffered data) can surface only at
  // close; close the owned file here so they land in ok(), not in a
  // destructor that cannot report them.
  if (OwnedFile) {
    OwnedFile->close();
    if (OwnedFile->fail() && !Failed) {
      Failed = true;
      Err = "close failure after " + std::to_string(NumBytes) + " bytes";
    }
    OwnedFile = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// TraceReader
//===----------------------------------------------------------------------===//

TraceReader::TraceReader(std::istream &IS, std::string Name)
    : IS(&IS), Name(std::move(Name)) {
  InBuf.resize(64 * 1024);
  parseHeader();
  EventsStart = tellAbs();
}

TraceReader::TraceReader(ShardTag) : IS(nullptr), Name("<shard>") {
  InBuf.resize(64 * 1024);
}

std::unique_ptr<TraceReader> TraceReader::openFile(const std::string &Path) {
  auto File =
      std::make_unique<std::ifstream>(Path, std::ios::in | std::ios::binary);
  const bool Open = static_cast<bool>(*File);
  std::istream &Ref = *File;
  // The borrowed-stream constructor parses the header; seed the failure
  // first so an unreadable file reports Io instead of BadMagic.
  auto R = std::unique_ptr<TraceReader>(new TraceReader(Ref, Path));
  R->OwnedIS = std::move(File);
  R->Path = Path;
  if (!Open) {
    // Overrides whatever the header parse diagnosed on the dead stream.
    R->ErrCode = TraceError::Io;
    R->Err = Path + ": cannot open for reading";
  }
  return R;
}

std::unique_ptr<TraceReader>
TraceReader::openFileIndexed(const std::string &Path) {
  auto R = openFile(Path);
  // /1 and text traces carry no seekable tail; hand them back positioned
  // for sequential decode, index().Present == false.
  if (!R->ok() || R->text() || R->version() < 2)
    return R;
  R->loadIndexFromTail();
  return R;
}

std::unique_ptr<TraceReader> TraceReader::openShard(const std::string &Path,
                                                    const TraceShardIndex &Idx,
                                                    size_t FirstChunk,
                                                    size_t NumChunks) {
  auto R = std::unique_ptr<TraceReader>(new TraceReader(ShardTag{}));
  R->Name = Path + "[chunks " + std::to_string(FirstChunk) + ".." +
            std::to_string(FirstChunk + NumChunks) + ")";
  if (!Idx.Present || NumChunks == 0 || FirstChunk >= Idx.Chunks.size() ||
      NumChunks > Idx.Chunks.size() - FirstChunk) {
    R->fail(TraceError::Corrupt, "shard range outside the index");
    return R;
  }
  auto File =
      std::make_unique<std::ifstream>(Path, std::ios::in | std::ios::binary);
  if (!*File) {
    R->fail(TraceError::Io, "cannot open for reading");
    return R;
  }
  R->OwnedIS = std::move(File);
  R->IS = R->OwnedIS.get();
  const TraceShardEntry &E = Idx.Chunks[FirstChunk];
  const size_t LastChunk = FirstChunk + NumChunks - 1;
  R->Version = TraceFormatVersion;
  R->Sites = Idx.NumSites;
  R->PrevSite = E.PrevSite;
  R->PrevAddr = E.PrevAddr;
  R->PrevRef = E.PrevRef;
  R->ShardMode = true;
  R->ShardMaxEvents = (Idx.chunkEndOffset(LastChunk) == Idx.FooterStart
                           ? Idx.TotalEvents
                           : Idx.Chunks[LastChunk + 1].CumEvents) -
                      E.CumEvents;
  R->ShardEndOffset = Idx.chunkEndOffset(LastChunk);
  if (!R->seekTo(E.ByteOffset))
    R->fail(TraceError::Io, "cannot seek to chunk byte offset " +
                                std::to_string(E.ByteOffset));
  return R;
}

TraceReader::~TraceReader() = default;

std::string TraceReader::describe() const {
  std::string D = Name;
  if (!Prov.Workload.empty()) {
    D += " (" + Prov.Workload;
    if (!Prov.DataSet.empty())
      D += "/" + Prov.DataSet;
    if (!Prov.Method.empty())
      D += "/" + Prov.Method;
    D += ")";
  }
  return D;
}

void TraceReader::fail(TraceError Code, const std::string &Message) {
  // First error wins; later failures are usually cascades of it.
  if (ErrCode != TraceError::None)
    return;
  ErrCode = Code;
  Err = Name + ": " + Message;
}

bool TraceReader::fillBuf() {
  if (InPos < InLen)
    return true;
  BufBase += InLen;
  IS->read(reinterpret_cast<char *>(InBuf.data()),
           static_cast<std::streamsize>(InBuf.size()));
  InLen = static_cast<size_t>(IS->gcount());
  InPos = 0;
  return InLen != 0;
}

int TraceReader::getByte() {
  if (!fillBuf())
    return -1;
  return InBuf[InPos++];
}

bool TraceReader::seekTo(uint64_t AbsOffset) {
  IS->clear();
  IS->seekg(static_cast<std::streamoff>(AbsOffset));
  if (!*IS)
    return false;
  SeekBase = AbsOffset;
  BufBase = 0;
  InPos = InLen = 0;
  return true;
}

bool TraceReader::getVarint(uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    const int B = getByte();
    if (B < 0) {
      fail(TraceError::Truncated, "file ends mid-varint");
      return false;
    }
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return true;
  }
  fail(TraceError::Corrupt, "varint longer than 64 bits");
  return false;
}

bool TraceReader::getZigzag(int64_t &V) {
  uint64_t U;
  if (!getVarint(U))
    return false;
  V = zigzagDecode(U);
  return true;
}

bool TraceReader::readLine(std::string &Line) {
  if (HasPending) {
    Line = std::move(PendingLine);
    HasPending = false;
    return true;
  }
  Line.clear();
  int B = getByte();
  if (B < 0)
    return false;
  while (B >= 0 && B != '\n') {
    Line.push_back(static_cast<char>(B));
    B = getByte();
  }
  return true;
}

bool TraceReader::parseHeader() {
  // Sniff: 8 magic bytes decide binary vs text vs foreign.
  char Head[8];
  size_t Got = 0;
  while (Got < sizeof(Head)) {
    const int B = getByte();
    if (B < 0)
      break;
    Head[Got++] = static_cast<char>(B);
  }
  if (Got < sizeof(Head)) {
    if (Got == 0 && !*IS && IS->bad()) {
      fail(TraceError::Io, "read failure");
      return false;
    }
    fail(TraceError::BadMagic,
         "not an sprof trace (shorter than the 8-byte magic)");
    return false;
  }
  if (std::memcmp(Head, TraceMagic, sizeof(TraceMagic)) == 0)
    return parseBinaryHeader();
  // Text form: the magic-sized prefix is the start of the schema line.
  std::string First(Head, sizeof(Head));
  {
    int B;
    while ((B = getByte()) >= 0 && B != '\n')
      First.push_back(static_cast<char>(B));
    if (B < 0) {
      fail(TraceError::BadMagic, "not an sprof trace (bad magic)");
      return false;
    }
  }
  if (First.rfind(TraceTextPrefix, 0) == 0)
    return parseTextHeader(First);
  fail(TraceError::BadMagic, "not an sprof trace (bad magic)");
  return false;
}

bool TraceReader::parseBinaryHeader() {
  IsText = false;
  uint32_t Words[2];
  for (uint32_t &W : Words) {
    W = 0;
    for (int I = 0; I < 4; ++I) {
      const int B = getByte();
      if (B < 0) {
        fail(TraceError::Truncated, "file ends inside the header");
        return false;
      }
      W |= static_cast<uint32_t>(B) << (8 * I);
    }
  }
  Version = Words[0];
  Sites = Words[1];
  if (Version == 0 || Version > TraceFormatVersion) {
    fail(TraceError::VersionMismatch,
         "sprof.trace version " + std::to_string(Version) +
             " is not supported (newest supported is " +
             std::to_string(TraceFormatVersion) + ")");
    return false;
  }
  for (std::string *S : {&Prov.Workload, &Prov.DataSet, &Prov.Method}) {
    uint64_t Len;
    if (!getVarint(Len))
      return false;
    if (Len > (1u << 20)) {
      fail(TraceError::Corrupt, "unreasonable header string length");
      return false;
    }
    S->clear();
    for (uint64_t I = 0; I < Len; ++I) {
      const int B = getByte();
      if (B < 0) {
        fail(TraceError::Truncated, "file ends inside the header");
        return false;
      }
      S->push_back(static_cast<char>(B));
    }
  }
  return true;
}

bool TraceReader::parseTextHeader(const std::string &FirstLine) {
  IsText = true;
  const std::string Suffix = FirstLine.substr(std::strlen(TraceTextPrefix));
  Version = static_cast<uint32_t>(std::strtoul(Suffix.c_str(), nullptr, 10));
  if (Suffix != "1") {
    fail(TraceError::VersionMismatch,
         "sprof.trace.text version '" + Suffix + "' is not supported " +
             "(expected 1)");
    return false;
  }
  std::string Line;
  if (!readLine(Line) || Line.rfind("sites ", 0) != 0) {
    fail(TraceError::Corrupt, "text trace missing 'sites <n>' line");
    return false;
  }
  Sites = static_cast<uint32_t>(std::strtoul(Line.c_str() + 6, nullptr, 10));
  // Optional provenance lines; the first non-provenance line is pushed
  // back for the event decoder.
  while (readLine(Line)) {
    if (Line.rfind("workload ", 0) == 0)
      Prov.Workload = Line.substr(9);
    else if (Line.rfind("dataset ", 0) == 0)
      Prov.DataSet = Line.substr(8);
    else if (Line.rfind("method ", 0) == 0)
      Prov.Method = Line.substr(7);
    else {
      PendingLine = std::move(Line);
      HasPending = true;
      break;
    }
  }
  return true;
}

size_t TraceReader::pull(AccessEvent *Buf, size_t Max) {
  if (!ok() || SawFooter || Max == 0)
    return 0;
  return IsText ? pullText(Buf, Max) : pullBinary(Buf, Max);
}

size_t TraceReader::pullBinary(AccessEvent *Buf, size_t Max) {
  size_t N = 0;
  while (N < Max) {
    if (ShardMode && DecodedEvents == ShardMaxEvents) {
      // Shard exhausted: the decode must land exactly on the boundary the
      // index promised, otherwise some chunk's bytes are inconsistent
      // with its carried state and the shard cannot be trusted.
      const uint64_t Pos = tellAbs();
      if (Pos != ShardEndOffset) {
        fail(TraceError::Corrupt,
             "shard decode ends at byte " + std::to_string(Pos) +
                 " but the index places the boundary at byte " +
                 std::to_string(ShardEndOffset));
        return 0;
      }
      FooterEvents = DecodedEvents;
      SawFooter = true;
      break;
    }
    const int Tag = getByte();
    if (Tag < 0) {
      fail(TraceError::Truncated,
           "file ends before the end-of-events marker (decoded " +
               std::to_string(DecodedEvents) + " events)");
      return 0;
    }
    if (Tag == TagEnd) {
      if (ShardMode) {
        fail(TraceError::Corrupt,
             "end-of-events marker inside a shard after " +
                 std::to_string(DecodedEvents) + " of " +
                 std::to_string(ShardMaxEvents) + " events");
        return 0;
      }
      SawEndMarker = true;
      FooterStart = tellAbs() - 1;
      parseFooter();
      break;
    }
    if (Tag != TagLoad && Tag != TagPrefetch) {
      fail(TraceError::Corrupt,
           "invalid event tag " + std::to_string(Tag) + " after event " +
               std::to_string(DecodedEvents));
      return 0;
    }
    int64_t DSite, DAddr, DRef;
    if (!getZigzag(DSite) || !getZigzag(DAddr) || !getZigzag(DRef))
      return 0;
    PrevSite = static_cast<uint32_t>(static_cast<int64_t>(PrevSite) + DSite);
    PrevAddr += static_cast<uint64_t>(DAddr);
    PrevRef += static_cast<uint64_t>(DRef);
    Buf[N].Address = PrevAddr;
    Buf[N].GlobalRefIndex = PrevRef;
    Buf[N].SiteId = PrevSite;
    Buf[N].Kind = Tag == TagPrefetch ? AccessKind::Prefetch
                                     : AccessKind::Load;
    ++N;
    ++DecodedEvents;
  }
  return ok() ? N : 0;
}

bool TraceReader::parseIndexSection() {
  if (Version < 2) {
    fail(TraceError::Corrupt, "shard-index section in a version-1 trace");
    return false;
  }
  if (Index.Present) {
    fail(TraceError::Corrupt, "duplicate shard-index section");
    return false;
  }
  uint64_t Interval, NumChunks;
  if (!getVarint(Interval) || !getVarint(NumChunks))
    return false;
  if (Interval == 0) {
    fail(TraceError::Corrupt, "shard index with a zero chunk interval");
    return false;
  }
  if (NumChunks > (1u << 28)) {
    fail(TraceError::Corrupt, "unreasonable shard-index chunk count");
    return false;
  }
  Index.Present = true;
  Index.Interval = Interval;
  Index.Chunks.resize(NumChunks);
  for (TraceShardEntry &E : Index.Chunks) {
    uint64_t Site;
    if (!getVarint(E.ByteOffset) || !getVarint(E.CumEvents) ||
        !getVarint(E.CumLoads) || !getVarint(Site) ||
        !getVarint(E.PrevAddr) || !getVarint(E.PrevRef))
      return false;
    E.PrevSite = static_cast<uint32_t>(Site);
  }
  if (!getVarint(Index.TotalLoads))
    return false;
  Index.NumSites = Sites;
  return true;
}

bool TraceReader::validateIndex() {
  if (!Index.Present)
    return true;
  Index.TotalEvents = FooterEvents;
  Index.EventsStart = EventsStart;
  Index.FooterStart = FooterStart;
  const uint64_t WantChunks =
      (FooterEvents + Index.Interval - 1) / Index.Interval;
  if (Index.Chunks.size() != WantChunks) {
    fail(TraceError::Corrupt,
         "shard index has " + std::to_string(Index.Chunks.size()) +
             " chunks; " + std::to_string(FooterEvents) + " events at " +
             std::to_string(Index.Interval) + "/chunk require " +
             std::to_string(WantChunks));
    return false;
  }
  if (Index.TotalLoads > FooterEvents) {
    fail(TraceError::Corrupt, "shard index counts more loads than events");
    return false;
  }
  for (size_t I = 0; I != Index.Chunks.size(); ++I) {
    const TraceShardEntry &E = Index.Chunks[I];
    if (E.CumEvents != I * Index.Interval) {
      fail(TraceError::Corrupt,
           "chunk " + std::to_string(I) + " claims cumulative event count " +
               std::to_string(E.CumEvents) + ", expected " +
               std::to_string(I * Index.Interval));
      return false;
    }
    if (E.CumLoads > E.CumEvents ||
        (I != 0 && E.CumLoads < Index.Chunks[I - 1].CumLoads)) {
      fail(TraceError::Corrupt,
           "chunk " + std::to_string(I) + " has an inconsistent load count");
      return false;
    }
    const uint64_t MinOffset =
        I == 0 ? EventsStart : Index.Chunks[I - 1].ByteOffset + 1;
    if (E.ByteOffset < MinOffset || E.ByteOffset >= FooterStart ||
        (I == 0 && E.ByteOffset != EventsStart)) {
      fail(TraceError::Corrupt,
           "chunk " + std::to_string(I) + " byte offset " +
               std::to_string(E.ByteOffset) + " is outside the event area");
      return false;
    }
    if (I == 0 && (E.PrevSite != 0 || E.PrevAddr != 0 || E.PrevRef != 0)) {
      fail(TraceError::Corrupt, "chunk 0 carries non-zero decoder state");
      return false;
    }
  }
  if (Index.TotalLoads <
      (Index.Chunks.empty() ? 0 : Index.Chunks.back().CumLoads)) {
    fail(TraceError::Corrupt, "shard index total loads below chunk counts");
    return false;
  }
  return true;
}

bool TraceReader::parseFooter() {
  // Sections until SectionEnd, then the event count, the /2 seekable
  // tail, and the end magic.
  for (;;) {
    const int Tag = getByte();
    if (Tag < 0) {
      fail(TraceError::Truncated, "file ends inside the trailer sections");
      return false;
    }
    if (Tag == SectionEnd)
      break;
    if (Tag == SectionEdges) {
      uint64_t NumFuncs, NumEntries;
      if (!getVarint(NumFuncs) || !getVarint(NumEntries))
        return false;
      EdgeSec.Present = true;
      EdgeSec.NumFunctions = static_cast<uint32_t>(NumFuncs);
      EdgeSec.Entries.resize(NumEntries);
      for (TraceEntryRecord &R : EdgeSec.Entries) {
        uint64_t F;
        if (!getVarint(F) || !getVarint(R.Count))
          return false;
        R.Func = static_cast<uint32_t>(F);
      }
      uint64_t NumEdges;
      if (!getVarint(NumEdges))
        return false;
      EdgeSec.Edges.resize(NumEdges);
      for (TraceEdgeRecord &R : EdgeSec.Edges) {
        uint64_t F, From, Slot;
        if (!getVarint(F) || !getVarint(From) || !getVarint(Slot) ||
            !getVarint(R.Count))
          return false;
        R.Func = static_cast<uint32_t>(F);
        R.From = static_cast<uint32_t>(From);
        R.Slot = static_cast<uint32_t>(Slot);
      }
      continue;
    }
    if (Tag == SectionIndex) {
      if (!parseIndexSection())
        return false;
      continue;
    }
    fail(TraceError::Corrupt,
         "unknown trailer section tag " + std::to_string(Tag));
    return false;
  }
  if (!getVarint(FooterEvents))
    return false;
  if (!IndexedOpen && FooterEvents != DecodedEvents) {
    fail(TraceError::Corrupt,
         "footer event count " + std::to_string(FooterEvents) +
             " does not match the " + std::to_string(DecodedEvents) +
             " decoded events");
    return false;
  }
  if (Version >= 2) {
    // The seekable tail's offset word; it must agree with where the
    // end-of-events marker actually was.
    uint64_t W = 0;
    for (int I = 0; I < 8; ++I) {
      const int B = getByte();
      if (B < 0) {
        fail(TraceError::Truncated, "file ends inside the seekable tail");
        return false;
      }
      W |= static_cast<uint64_t>(B) << (8 * I);
    }
    if (W != FooterStart) {
      fail(TraceError::Corrupt,
           "seekable-tail offset " + std::to_string(W) +
               " does not match the end-of-events marker at byte " +
               std::to_string(FooterStart));
      return false;
    }
  }
  char End[8];
  for (char &C : End) {
    const int B = getByte();
    if (B < 0) {
      fail(TraceError::Truncated, "file ends before the end magic");
      return false;
    }
    C = static_cast<char>(B);
  }
  if (std::memcmp(End, TraceEndMagic, sizeof(TraceEndMagic)) != 0) {
    fail(TraceError::Corrupt, "bad end magic");
    return false;
  }
  if (Version >= 2 && !Index.Present) {
    fail(TraceError::Corrupt, "version-2 trace without a shard index");
    return false;
  }
  if (!validateIndex())
    return false;
  SawFooter = true;
  return true;
}

bool TraceReader::loadIndexFromTail() {
  // File size; the stream may already be mid-buffer, so re-anchor cleanly.
  IS->clear();
  IS->seekg(0, std::ios::end);
  if (!*IS) {
    fail(TraceError::Io, "cannot seek to the end of the file");
    return false;
  }
  const uint64_t Size = static_cast<uint64_t>(IS->tellg());
  // Smallest possible /2 footer: end marker, index section (tag +
  // interval + count + totalLoads), section end, count varint, tail.
  if (Size < EventsStart + 6 + TraceTailBytes) {
    fail(TraceError::Truncated, "file too short for a version-2 footer");
    return false;
  }
  if (!seekTo(Size - TraceTailBytes)) {
    fail(TraceError::Io, "cannot seek to the trace tail");
    return false;
  }
  uint8_t Tail[TraceTailBytes];
  for (uint8_t &B : Tail) {
    const int V = getByte();
    if (V < 0) {
      fail(TraceError::Truncated, "file ends inside the seekable tail");
      return false;
    }
    B = static_cast<uint8_t>(V);
  }
  if (std::memcmp(Tail + 8, TraceEndMagic, sizeof(TraceEndMagic)) != 0) {
    fail(TraceError::Truncated,
         "missing the seekable tail (truncated or unfinished capture)");
    return false;
  }
  uint64_t Off = 0;
  for (int I = 0; I < 8; ++I)
    Off |= static_cast<uint64_t>(Tail[I]) << (8 * I);
  if (Off < EventsStart || Off > Size - TraceTailBytes - 3) {
    fail(TraceError::Corrupt,
         "seekable-tail offset " + std::to_string(Off) +
             " is outside the file");
    return false;
  }
  if (!seekTo(Off)) {
    fail(TraceError::Io, "cannot seek to the trace footer");
    return false;
  }
  const int Tag = getByte();
  if (Tag != TagEnd) {
    fail(TraceError::Corrupt,
         "seekable tail does not point at the end-of-events marker");
    return false;
  }
  FooterStart = Off;
  SawEndMarker = true;
  IndexedOpen = true;
  return parseFooter();
}

bool TraceReader::parseTextLine(const std::string &Line, AccessEvent &E,
                                bool &IsEvent) {
  IsEvent = false;
  if (Line.empty() || Line[0] == '#')
    return true; // blank/comment lines are tolerated in the text form
  if (Line.size() > 2 && (Line[0] == 'L' || Line[0] == 'P') &&
      Line[1] == ' ') {
    unsigned long long Site, Addr, Ref;
    if (std::sscanf(Line.c_str() + 2, "%llu %llu %llu", &Site, &Addr, &Ref) !=
        3) {
      fail(TraceError::Corrupt, "malformed event line: '" + Line + "'");
      return false;
    }
    E.SiteId = static_cast<uint32_t>(Site);
    E.Address = Addr;
    E.GlobalRefIndex = Ref;
    E.Kind = Line[0] == 'P' ? AccessKind::Prefetch : AccessKind::Load;
    IsEvent = true;
    return true;
  }
  if (Line.rfind("end ", 0) == 0) {
    FooterEvents = std::strtoull(Line.c_str() + 4, nullptr, 10);
    if (FooterEvents != DecodedEvents) {
      fail(TraceError::Corrupt,
           "end-line event count " + std::to_string(FooterEvents) +
               " does not match the " + std::to_string(DecodedEvents) +
               " decoded events");
      return false;
    }
    SawEndMarker = true;
    // Optional edges block, then the required endtrace line.
    std::string L;
    if (!readLine(L)) {
      fail(TraceError::Truncated, "file ends before 'endtrace'");
      return false;
    }
    if (L.rfind("edges ", 0) == 0) {
      EdgeSec.Present = true;
      EdgeSec.NumFunctions =
          static_cast<uint32_t>(std::strtoul(L.c_str() + 6, nullptr, 10));
      for (;;) {
        if (!readLine(L)) {
          fail(TraceError::Truncated, "file ends inside the edges block");
          return false;
        }
        if (L == "endedges")
          break;
        unsigned long long A, B, C, D;
        if (std::sscanf(L.c_str(), "entry %llu %llu", &A, &B) == 2) {
          EdgeSec.Entries.push_back(
              {static_cast<uint32_t>(A), static_cast<uint64_t>(B)});
        } else if (std::sscanf(L.c_str(), "edge %llu %llu %llu %llu", &A, &B,
                               &C, &D) == 4) {
          EdgeSec.Edges.push_back({static_cast<uint32_t>(A),
                                   static_cast<uint32_t>(B),
                                   static_cast<uint32_t>(C),
                                   static_cast<uint64_t>(D)});
        } else {
          fail(TraceError::Corrupt, "malformed edges line: '" + L + "'");
          return false;
        }
      }
      if (!readLine(L)) {
        fail(TraceError::Truncated, "file ends before 'endtrace'");
        return false;
      }
    }
    if (L != "endtrace") {
      fail(TraceError::Corrupt, "expected 'endtrace', got '" + L + "'");
      return false;
    }
    SawFooter = true;
    return true;
  }
  fail(TraceError::Corrupt, "unrecognized line: '" + Line + "'");
  return false;
}

size_t TraceReader::pullText(AccessEvent *Buf, size_t Max) {
  size_t N = 0;
  std::string Line;
  while (N < Max && !SawFooter) {
    if (!readLine(Line)) {
      fail(TraceError::Truncated,
           "file ends before the 'end' marker (decoded " +
               std::to_string(DecodedEvents) + " events)");
      return 0;
    }
    bool IsEvent = false;
    if (!parseTextLine(Line, Buf[N], IsEvent))
      return 0;
    if (IsEvent) {
      ++N;
      ++DecodedEvents;
    }
  }
  return ok() ? N : 0;
}

bool TraceReader::reset() {
  if (ShardMode)
    return false;
  if (!Path.empty()) {
    auto File =
        std::make_unique<std::ifstream>(Path, std::ios::in | std::ios::binary);
    if (!*File)
      return false;
    OwnedIS = std::move(File);
    IS = OwnedIS.get();
  } else {
    IS->clear();
    IS->seekg(0);
    if (!*IS)
      return false;
  }
  ErrCode = TraceError::None;
  Err.clear();
  Prov = TraceProvenance();
  SawEndMarker = SawFooter = false;
  IndexedOpen = false;
  DecodedEvents = FooterEvents = 0;
  EdgeSec = TraceEdgeSection();
  Index = TraceShardIndex();
  EventsStart = FooterStart = 0;
  PrevAddr = PrevRef = 0;
  PrevSite = 0;
  InPos = InLen = 0;
  SeekBase = BufBase = 0;
  HasPending = false;
  PendingLine.clear();
  const bool Ok = parseHeader();
  EventsStart = tellAbs();
  return Ok;
}

//===----------------------------------------------------------------------===//
// importAccessLog
//===----------------------------------------------------------------------===//

std::optional<TraceImportResult>
importAccessLog(std::istream &In, const std::string &OutPath,
                std::string *Error) {
  auto Fail = [&](const std::string &M) -> std::optional<TraceImportResult> {
    if (Error)
      *Error = M;
    return std::nullopt;
  };

  // Pass 1: parse everything into memory. The trace header needs the site
  // count up front, and an importer stub has no business streaming
  // multi-gigabyte logs anyway.
  std::vector<AccessEvent> Events;
  uint32_t MaxSite = 0;
  TraceImportResult R;
  std::string Line;
  for (uint64_t LineNo = 1; std::getline(In, Line); ++LineNo) {
    // Trim whitespace and skip blanks/comments.
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos || Line[B] == '#')
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    const std::string L = Line.substr(B, E - B + 1);

    // addr,site,kind -- split on the two commas.
    const size_t C1 = L.find(',');
    const size_t C2 = C1 == std::string::npos ? std::string::npos
                                              : L.find(',', C1 + 1);
    if (C2 == std::string::npos)
      return Fail("line " + std::to_string(LineNo) +
                  ": expected 'addr,site,kind', got '" + L + "'");
    auto Field = [&](size_t From, size_t To) {
      size_t S = L.find_first_not_of(" \t", From);
      size_t T = L.find_last_not_of(" \t", To - 1);
      return (S == std::string::npos || S > T) ? std::string()
                                               : L.substr(S, T - S + 1);
    };
    const std::string AddrS = Field(0, C1);
    const std::string SiteS = Field(C1 + 1, C2);
    std::string KindS = Field(C2 + 1, L.size());
    for (char &C : KindS)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));

    char *EndP = nullptr;
    const unsigned long long Addr = std::strtoull(AddrS.c_str(), &EndP, 0);
    if (AddrS.empty() || *EndP != '\0')
      return Fail("line " + std::to_string(LineNo) + ": bad address '" +
                  AddrS + "'");
    const unsigned long long Site = std::strtoull(SiteS.c_str(), &EndP, 10);
    if (SiteS.empty() || *EndP != '\0' || Site > 0xffffffffull)
      return Fail("line " + std::to_string(LineNo) + ": bad site id '" +
                  SiteS + "'");
    AccessKind Kind;
    if (KindS == "l" || KindS == "load")
      Kind = AccessKind::Load;
    else if (KindS == "p" || KindS == "prefetch")
      Kind = AccessKind::Prefetch;
    else
      return Fail("line " + std::to_string(LineNo) + ": bad kind '" + KindS +
                  "' (want L/load or P/prefetch)");

    AccessEvent Ev;
    Ev.Address = Addr;
    Ev.SiteId = static_cast<uint32_t>(Site);
    // The log has no global reference counter; synthesize the running
    // 1-based event count so use-distance statistics stay meaningful.
    Ev.GlobalRefIndex = Events.size() + 1;
    Ev.Kind = Kind;
    Events.push_back(Ev);
    MaxSite = std::max(MaxSite, Ev.SiteId);
    if (Kind == AccessKind::Load)
      ++R.Loads;
    else
      ++R.Prefetches;
  }
  if (In.bad())
    return Fail("read failure in the input log");

  R.Events = Events.size();
  R.NumSites = Events.empty() ? 0 : MaxSite + 1;

  std::string OpenErr;
  auto W = TraceWriter::open(OutPath, R.NumSites, TraceProvenance{}, false,
                             &OpenErr);
  if (!W)
    return Fail(OpenErr);
  if (!Events.empty())
    W->onBatch(Events.data(), Events.size());
  W->finish();
  if (!W->ok())
    return Fail(OutPath + ": " + W->error());
  R.Bytes = W->bytesWritten();
  return R;
}

} // namespace sprof
