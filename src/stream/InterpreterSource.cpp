//===- stream/InterpreterSource.cpp - Engines as an AccessSource ----------===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "stream/InterpreterSource.h"

#include <algorithm>
#include <cstring>

namespace sprof {

void InterpreterSource::runOnce() {
  if (Ran)
    return;
  CollectSink Sink;
  I.attachEventSink(&Sink);
  Stats = I.run(MaxInstructions);
  I.attachEventSink(nullptr);
  Events = Sink.take();
  Ran = true;
}

size_t InterpreterSource::pull(AccessEvent *Buf, size_t Max) {
  runOnce();
  const size_t N = std::min(Max, Events.size() - Pos);
  if (N != 0)
    std::memcpy(Buf, Events.data() + Pos, N * sizeof(AccessEvent));
  Pos += N;
  return N;
}

} // namespace sprof
