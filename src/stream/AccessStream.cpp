//===- stream/AccessStream.cpp - Abstract access-event streams ------------===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "stream/AccessStream.h"

#include <algorithm>
#include <cstring>

namespace sprof {

AccessSource::~AccessSource() = default;
AccessSink::~AccessSink() = default;

uint64_t drainStream(AccessSource &Src, AccessSink &Sink, size_t BatchSize) {
  if (BatchSize == 0)
    BatchSize = 1;
  std::vector<AccessEvent> Buf(BatchSize);
  uint64_t Total = 0;
  while (size_t N = Src.pull(Buf.data(), Buf.size())) {
    Sink.onBatch(Buf.data(), N);
    Total += N;
  }
  Sink.finish();
  return Total;
}

size_t VectorSource::pull(AccessEvent *Buf, size_t Max) {
  const size_t N = std::min(Max, Events.size() - Pos);
  if (N != 0)
    std::memcpy(Buf, Events.data() + Pos, N * sizeof(AccessEvent));
  Pos += N;
  return N;
}

} // namespace sprof
