//===- stream/InterpreterSource.h - Engines as an AccessSource -*- C++ -*-===//
//
// Part of the StrideProf project (see AccessStream.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wraps an Interpreter (either engine) as an AccessSource: the wrapped
/// run's ProfStride trap stream -- the same batched stride-event ring the
/// engines already maintain -- is collected into an internal buffer and
/// served through pull(), bit-identical to what the profiler would have
/// seen attached live, by construction: the ring entries *are* the
/// AccessEvents.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_STREAM_INTERPRETERSOURCE_H
#define SPROF_STREAM_INTERPRETERSOURCE_H

#include "interp/Interpreter.h"
#include "stream/AccessStream.h"

namespace sprof {

/// Runs the wrapped interpreter lazily on the first pull() and serves the
/// captured event stream; reset() replays the buffer without re-running.
/// The caller configures the interpreter (instrumented module, memory,
/// telemetry) but must leave the event-sink slot free -- this source
/// occupies it for the duration of the run.
class InterpreterSource final : public AccessSource {
public:
  InterpreterSource(Interpreter &I, uint32_t NumSites,
                    uint64_t MaxInstructions = 4ull << 30)
      : I(I), Sites(NumSites), MaxInstructions(MaxInstructions) {}

  size_t pull(AccessEvent *Buf, size_t Max) override;
  uint32_t numSites() const override { return Sites; }
  bool reset() override {
    Pos = 0;
    return Ran;
  }
  std::string describe() const override { return "interpreter"; }

  /// Accounting of the wrapped run; valid once the run happened (after
  /// the first pull()).
  bool ran() const { return Ran; }
  const RunStats &stats() const { return Stats; }

private:
  void runOnce();

  Interpreter &I;
  uint32_t Sites;
  uint64_t MaxInstructions;
  bool Ran = false;
  RunStats Stats;
  std::vector<AccessEvent> Events;
  size_t Pos = 0;
};

} // namespace sprof

#endif // SPROF_STREAM_INTERPRETERSOURCE_H
