//===- stream/AccessStream.h - Abstract access-event streams ----*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access-event stream layer. Every consumer of memory-access events --
/// the stride-profiling runtime, the cache model, prefetch attribution --
/// is driven from an AccessSource, a pull interface producing batched
/// AccessEvent records, instead of reaching into the interpreter directly.
/// The interpreters are one source among several: captured trace files
/// (TraceFile.h), synthetic generators (SyntheticTrace.h), and external
/// traces feed the exact same profile -> classify -> prefetch-evaluation
/// pipeline, so programs we did not write become first-class workloads.
///
/// This library sits at the bottom of the dependency graph (it links only
/// sprof_support), so profile, memsys, and interp can all speak its types.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_STREAM_ACCESSSTREAM_H
#define SPROF_STREAM_ACCESSSTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sprof {

/// What kind of memory reference an event records.
enum class AccessKind : uint8_t {
  Load = 0,     ///< demand load (a strideProf invocation when profiled)
  Prefetch = 1, ///< software prefetch (ignored by the profiling runtime)
};

/// One memory-access event. A superset of the stride-event ring entry the
/// engines queue at ProfStride traps: the first three fields match that
/// layout exactly (StrideProfiler.h aliases StrideEvent to this type), so
/// an engine's ring buffer feeds an AccessSink without conversion.
struct AccessEvent {
  uint64_t Address = 0;
  /// The program's running count of dynamic memory references at this
  /// event (1-based); 0 when unknown. Feeds the use-distance statistic.
  uint64_t GlobalRefIndex = 0;
  uint32_t SiteId = 0;
  AccessKind Kind = AccessKind::Load;
};

/// Pull side: a finite stream of access events.
class AccessSource {
public:
  virtual ~AccessSource();

  /// Fills \p Buf with up to \p Max events in stream order; returns the
  /// number produced. 0 means end of stream (and stays 0 until reset()).
  virtual size_t pull(AccessEvent *Buf, size_t Max) = 0;

  /// Number of distinct load sites the stream draws SiteIds from; every
  /// event satisfies SiteId < numSites().
  virtual uint32_t numSites() const = 0;

  /// Rewinds to the beginning so the stream can be pulled again (replay
  /// needs several passes: profile, baseline, prefetched). Returns false
  /// when this source cannot rewind (one-shot streams).
  virtual bool reset() { return false; }

  /// Human-readable provenance ("181.mcf/train/edge-check", a file path,
  /// a generator name); empty when unknown.
  virtual std::string describe() const { return {}; }
};

/// Push side: a consumer of batched access events.
class AccessSink {
public:
  virtual ~AccessSink();

  virtual void onBatch(const AccessEvent *Events, size_t N) = 0;

  /// End of stream: flush buffered state. Idempotent; producers call it
  /// once the run that fed the sink completes.
  virtual void finish() {}
};

/// Drains \p Src into \p Sink in batches of at most \p BatchSize events
/// and finishes the sink. Returns the number of events moved.
uint64_t drainStream(AccessSource &Src, AccessSink &Sink,
                     size_t BatchSize = 256);

/// An in-memory source over an event vector (tests, buffered replay).
class VectorSource final : public AccessSource {
public:
  VectorSource(std::vector<AccessEvent> Events, uint32_t NumSites,
               std::string Name = {})
      : Events(std::move(Events)), Sites(NumSites), Name(std::move(Name)) {}

  size_t pull(AccessEvent *Buf, size_t Max) override;
  uint32_t numSites() const override { return Sites; }
  bool reset() override {
    Pos = 0;
    return true;
  }
  std::string describe() const override { return Name; }

private:
  std::vector<AccessEvent> Events;
  uint32_t Sites;
  std::string Name;
  size_t Pos = 0;
};

/// A sink that collects every event into a vector (tests, the
/// InterpreterSource internal buffer).
class CollectSink final : public AccessSink {
public:
  void onBatch(const AccessEvent *Events, size_t N) override {
    Buffer.insert(Buffer.end(), Events, Events + N);
  }

  std::vector<AccessEvent> take() { return std::move(Buffer); }
  const std::vector<AccessEvent> &events() const { return Buffer; }

private:
  std::vector<AccessEvent> Buffer;
};

/// Fan-out sink: forwards every batch (and finish) to each attached sink.
/// Attached sinks are borrowed, not owned.
class TeeSink final : public AccessSink {
public:
  void add(AccessSink *S) {
    if (S)
      Sinks.push_back(S);
  }

  void onBatch(const AccessEvent *Events, size_t N) override {
    for (AccessSink *S : Sinks)
      S->onBatch(Events, N);
  }

  void finish() override {
    for (AccessSink *S : Sinks)
      S->finish();
  }

private:
  std::vector<AccessSink *> Sinks;
};

} // namespace sprof

#endif // SPROF_STREAM_ACCESSSTREAM_H
