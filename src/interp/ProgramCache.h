//===- interp/ProgramCache.h - Shared decoded/trace program cache -*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of decoded programs keyed by module *content*:
/// Pipeline::speedup repetitions, the baseline/prefetched pairs inside one
/// evaluation, and parallel ExperimentEngine jobs all execute structurally
/// identical modules (the driver clones a module per configuration), so
/// re-decoding each one is pure waste. The key is a 128-bit FNV hash over
/// everything decode reads -- opcodes, operands, targets, site ids,
/// attribution flags, entry function, id spaces -- and deliberately
/// excludes Module::Name and function/block names, which decode ignores.
///
/// Each entry also owns the TraceBank for that program, so trace-tier
/// engines running the same workload share compiled superblocks across
/// repetitions and across engine-pool threads (TraceProgram is immutable;
/// the bank is mutex-guarded; per-run counters stay in each selector).
///
/// DecodedProgram is immutable after construction, so handing one
/// shared_ptr to any number of concurrent interpreters is safe; the cache
/// itself is mutex-guarded and LRU-bounded.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_PROGRAMCACHE_H
#define SPROF_INTERP_PROGRAMCACHE_H

#include "interp/DecodedProgram.h"
#include "interp/TraceSelector.h"

#include <memory>
#include <mutex>

namespace sprof {

class ProgramCache {
public:
  /// One cached program: the immutable decoded form plus the shared trace
  /// bank scoped to it.
  struct Entry {
    std::shared_ptr<const DecodedProgram> Program;
    std::shared_ptr<TraceBank> Bank;
  };

  /// Host-side cache counters (reports/tests; monotonically increasing).
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  /// The process-wide instance every Interpreter uses by default.
  static ProgramCache &global();

  explicit ProgramCache(size_t MaxEntries = 64) : MaxEntries(MaxEntries) {}

  /// Returns the cached entry for a module with \p M's content, decoding
  /// and inserting on first sight. Thread-safe.
  Entry get(const Module &M);

  /// Content fingerprint of everything the decoder reads from \p M.
  static std::pair<uint64_t, uint64_t> hashModule(const Module &M);

  CacheStats stats() const;

  /// Drops every entry (tests; outstanding shared_ptrs stay valid).
  void clear();

private:
  struct Node {
    uint64_t H1 = 0;
    uint64_t H2 = 0;
    uint64_t LastUse = 0;
    Entry E;
  };

  mutable std::mutex Mu;
  std::vector<Node> Nodes;
  uint64_t UseClock = 0;
  size_t MaxEntries;
  CacheStats Counts;
};

} // namespace sprof

#endif // SPROF_INTERP_PROGRAMCACHE_H
