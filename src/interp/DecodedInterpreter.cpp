//===- interp/DecodedInterpreter.cpp - Fast pre-decoded engine -------------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
//
// Dispatch strategy: on GCC/Clang every handler ends by fetching and
// jumping to the next handler directly (computed goto), which gives the
// host branch predictor one indirect-branch site per handler instead of a
// single shared site; elsewhere the same handler bodies compile into a
// switch inside a loop. The two variants share their source through the
// SPROF_OP/SPROF_NEXT/SPROF_JUMP macros below, so the semantics cannot
// drift apart.
//
// Three engine-wide invariants keep the per-instruction overhead down
// without giving up bit-identical accounting:
//
//  * The current cycle count is never materialized in the loop. The
//    reference engine maintains Now ≡ BaseCycles + InstrumentationCycles +
//    MemStallCycles + RuntimeCycles as an invariant, so this engine keeps
//    only the four component accumulators (in registers) and derives Now
//    on the rare paths that need it (cache-hierarchy calls, run exit).
//
//  * Operands are frame-slot indices (see DecodedProgram.h): register and
//    immediate reads are the same unconditional indexed load.
//
//  * Hot adjacent ALU pairs are fused into superinstructions at decode
//    time; a fused handler executes both halves with one dispatch while
//    counting and charging them as two instructions.
//
//===----------------------------------------------------------------------===//

#include "interp/DecodedInterpreter.h"

#include "interp/TraceInterpreter.h"
#include "interp/TraceSelector.h"
#include "obs/SelfProfiler.h"

#include <algorithm>
#include <cassert>

using namespace sprof;

#if defined(__GNUC__) || defined(__clang__)
#define SPROF_COMPUTED_GOTO 1
#else
#define SPROF_COMPUTED_GOTO 0
#endif

// The label table below must list one handler per dispatch opcode, base
// opcodes first, fused superinstructions after, each set in enum order.
static_assert(NumOpcodes == 29,
              "opcode set changed: update the Decoded engine's handlers");
static_assert(static_cast<unsigned>(FusedOp::MovMov) == NumOpcodes &&
                  NumDispatchOps == 52,
              "fused-op set changed: update the Decoded engine's handlers");

/// Once-per-window slow path of the sampled dispatch prologue: records the
/// sample and returns the re-armed NextStop. Kept out of line and cold so
/// the hot loop carries no trace of the sampling machinery beyond the
/// fuel compare it already pays (see the sp_stop block in runImpl).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline, cold))
#endif
static uint64_t
selfProfStop(EngineSelfProfiler *SP, uint8_t DOp, uint64_t NInsts,
             uint64_t Window, uint64_t MaxInstructions) {
  SP->sample(DOp);
  uint64_t Next = NInsts + Window;
  return Next > MaxInstructions ? MaxInstructions : Next;
}

RunStats DecodedInterpreter::run(uint64_t MaxInstructions, ExecTally &Tally) {
  if (SelfProf) {
    // With the trace tier live, the slot table grows per-trace slots after
    // the dispatch ops so on-trace samples attribute to their trace.
    if (Selector)
      SelfProf->configureSlots(NumDispatchOps + NumTraceSelfProfSlots,
                               traceTierSlotNames());
    else
      SelfProf->configureSlots(NumDispatchOps, dispatchOpNames());
    SelfProf->beginWindow();
  }
  if (Mem)
    return Selector ? runImpl<true, true>(MaxInstructions, Tally)
                    : runImpl<true, false>(MaxInstructions, Tally);
  return Selector ? runImpl<false, true>(MaxInstructions, Tally)
                  : runImpl<false, false>(MaxInstructions, Tally);
}

template <bool HasMem, bool HasTrace>
RunStats DecodedInterpreter::runImpl(uint64_t MaxInstructions,
                                     ExecTally &Tally) {
  RunStats Stats;
  Stats.SiteCounts.assign(NumLoadSites, 0);

  const DInst *Code = DP.code().data();
  const uint32_t *ArgPool = DP.argPool().data();
  const int64_t *ConstPool = DP.constPool().data();
  const DFunction *Funcs = DP.functions().data();

  // Reset the pools (capacity is retained across runs). A frame's register
  // window is NumSlots wide: NumRegs zeroed registers followed by the
  // function's materialized constants (see DecodedProgram.h).
  const DFunction &Entry = Funcs[DP.entryFunction()];
  Frames.clear();
  if (RegStack.size() < Entry.NumSlots)
    RegStack.resize(std::max<size_t>(Entry.NumSlots, 64));
  std::fill(RegStack.begin(), RegStack.begin() + Entry.NumRegs, 0);
  std::copy(ConstPool + Entry.ConstBase,
            ConstPool + Entry.ConstBase + (Entry.NumSlots - Entry.NumRegs),
            RegStack.begin() + Entry.NumRegs);
  Frames.push_back(DFrame{0, NoReg, 0, Entry.NumSlots});

  int64_t *Regs = RegStack.data();
  uint32_t RegLimit = Entry.NumSlots;
  const DInst *I = Code + Entry.EntryPC;

  // Hot-loop state lives in locals so the compiler can keep it in
  // registers across the (inlined) fast paths; everything is written back
  // to Stats at run_done.
  const TimingModel TM = Timing;
  uint64_t NInsts = 0;
  uint64_t LoadRefs = 0;
  uint64_t BaseCyc = 0;
  uint64_t InstrCyc = 0;
  uint64_t MemStall = 0;
  uint64_t RuntimeCyc = 0;
  uint64_t *SiteCounts = Stats.SiteCounts.data();

  // Batched profiling (no-memsys runs only): ProfStride traps append to a
  // fixed ring drained in blocks through StrideProfiler::profileBatch.
  // Deferring the simulated cost is safe here because nothing between two
  // drains reads SPROF_NOW() when HasMem is false; with a memory system
  // attached the trap cost must reach Now before the next access is timed,
  // so that specialization stays on the per-event profile() call.
  // With a memory system the trap cost is charged per event, so the ring
  // serves only event-sink capture there; without one it is the batching
  // buffer for profiler and sink alike (the entries are AccessEvents, so
  // the sink tees straight off the ring).
  StrideEvent *Ring = nullptr;
  uint32_t RingN = 0;
  uint32_t RingCap = 0;
  const bool WantRing = HasMem ? Sink != nullptr : (Profiler || Sink);
  if (WantRing) {
    RingCap = StrideBatchWindow;
    if (StrideRing.size() < RingCap)
      StrideRing.resize(RingCap);
    Ring = StrideRing.data();
  }

  // Self-profiler sampling rides the dispatch prologue's existing fuel
  // check: NextStop is the nearer of the fuel limit and the next sample
  // point, so the hot path stays one compare-and-branch whether or not
  // sampling is on. Which instructions get sampled (every SPWindow
  // committed instructions, give or take fused-pair overshoot) is a
  // deterministic function of the instruction stream. Sampled and
  // unsampled runs share this one instantiation — every dispatch tail
  // branches to a single cold stop block (sp_stop) that sorts out fuel
  // exhaustion vs. sample-and-rearm at run time, so attaching the
  // profiler cannot change the hot loop's code layout. (An earlier
  // WithSelfProf template split duplicated the dispatch loop and cost a
  // constant ~6% on the sampled copy from layout alone.) Host-side only:
  // simulated accounting never moves.
  uint64_t NextStop = MaxInstructions;
  uint64_t SPWindow = 1;
  if (SelfProf) {
    SPWindow = SelfProf->window();
    if (NInsts + SPWindow < NextStop)
      NextStop = NInsts + SPWindow;
  }

  // Trace tier (HasTrace instantiations): the cross-iteration path
  // signature -- one direction bit per conditional branch since the last
  // taken back-edge, first branch in the most significant recorded bit.
  // PathLen saturates the recording at 64 bits but keeps counting, so the
  // selector can tell an over-long path from a truncated signature. Real
  // calls and returns reset the signature (a path spanning frames is not
  // a loop path); inlined calls are straight-line code and record through.
  uint64_t PathSig = 0;
  uint32_t PathLen = 0;

// Reads a pre-decoded operand: one unconditional load, whether the operand
// was a register or a decode-time immediate (constant slot).
#define SPROF_VAL(O) (Regs[O])

// The reference engine's running Now, reconstructed from its components
// (only branches, memory-system calls, and run exit ever need it).
#define SPROF_NOW() (BaseCyc + InstrCyc + MemStall + RuntimeCyc)

// Mirrors the reference engine's Charge closure. The attribution branch is
// never-taken (and predicted so) in uninstrumented runs.
#define SPROF_CHARGE(Cost)                                                   \
  do {                                                                       \
    uint64_t C_ = (Cost);                                                    \
    if (__builtin_expect(I->IsInstrumentation, 0))                           \
      InstrCyc += C_;                                                        \
    else                                                                     \
      BaseCyc += C_;                                                         \
  } while (0)

// One instruction's full semantics (effects + its own cycle charge),
// shared between the single-op and the fused handlers. P is a const DInst*
// pointing at the instruction being executed.
#define SPROF_STEP_Mov(P)                                                    \
  do {                                                                       \
    Regs[(P)->Dst] = Regs[(P)->A];                                           \
    SPROF_CHARGE(TM.DefaultCost);                                            \
  } while (0)
// Add and Load are the producers the decode-time pointer analysis flags
// (DInst::PrefetchDst): when the result is an address the program will
// dereference later, start pulling its line into the host cache now. Rare
// and perfectly predicted when not taken; no simulated effect when taken.
#define SPROF_STEP_PREFETCH_HINT(P)                                          \
  do {                                                                       \
    if (__builtin_expect((P)->PrefetchDst, 0)) {                             \
      uint64_t Hint_ = static_cast<uint64_t>(Regs[(P)->Dst]);                \
      Memory.prefetchHost(Hint_);                                            \
      if constexpr (HasMem)                                                  \
        Mem->prefetchLanes(Hint_);                                           \
    }                                                                        \
  } while (0)

#define SPROF_STEP_Add(P)                                                    \
  do {                                                                       \
    Regs[(P)->Dst] = Regs[(P)->A] + Regs[(P)->B];                            \
    SPROF_STEP_PREFETCH_HINT(P);                                             \
    SPROF_CHARGE(TM.DefaultCost);                                            \
  } while (0)
#define SPROF_STEP_Shl(P)                                                    \
  do {                                                                       \
    Regs[(P)->Dst] = static_cast<int64_t>(                                   \
        static_cast<uint64_t>(Regs[(P)->A]) << (Regs[(P)->B] & 63));         \
    SPROF_CHARGE(TM.DefaultCost);                                            \
  } while (0)
#define SPROF_STEP_Shr(P)                                                    \
  do {                                                                       \
    Regs[(P)->Dst] = Regs[(P)->A] >> (Regs[(P)->B] & 63);                    \
    SPROF_CHARGE(TM.DefaultCost);                                            \
  } while (0)
#define SPROF_STEP_And(P)                                                    \
  do {                                                                       \
    Regs[(P)->Dst] = Regs[(P)->A] & Regs[(P)->B];                            \
    SPROF_CHARGE(TM.DefaultCost);                                            \
  } while (0)
#define SPROF_STEP_Xor(P)                                                    \
  do {                                                                       \
    Regs[(P)->Dst] = Regs[(P)->A] ^ Regs[(P)->B];                            \
    SPROF_CHARGE(TM.DefaultCost);                                            \
  } while (0)
// The full Load semantics: value read, base-cost charge, cache-hierarchy
// latency (the pipeline hides an L1-hit's worth; the rest stalls), and the
// per-site reference counts the profiles are built from.
#define SPROF_STEP_Load(P)                                                   \
  do {                                                                       \
    uint64_t Addr_ = static_cast<uint64_t>(Regs[(P)->A] + (P)->Imm);         \
    if constexpr (HasMem)                                                    \
      Mem->prefetchLanes(Addr_);                                             \
    Regs[(P)->Dst] = Memory.read64(Addr_);                                   \
    SPROF_STEP_PREFETCH_HINT(P);                                             \
    SPROF_CHARGE(TM.LoadBaseCost);                                           \
    if constexpr (HasMem) {                                                  \
      uint64_t Latency_ = Mem->demandAccess(Addr_, SPROF_NOW(), (P)->SiteId); \
      uint64_t Hidden_ = TM.FlatLoadLatency;                                 \
      uint64_t Stall_ = Latency_ > Hidden_ ? Latency_ - Hidden_ : 0;         \
      MemStall += Stall_;                                                    \
    }                                                                        \
    if (!(P)->IsInstrumentation) {                                           \
      ++LoadRefs;                                                            \
      if ((P)->SiteId != NoId)                                               \
        ++SiteCounts[(P)->SiteId];                                           \
    }                                                                        \
  } while (0)

// A fused pair executes both halves on one dispatch but stays two
// instructions for counting, truncation, and cycle purposes. Fusion only
// happens when both halves share an attribution bucket and neither is
// predicated, so the second half needs no predicate or bucket logic; the
// truncation check between the halves replicates the reference loop's
// fetch-boundary check exactly.
#define SPROF_FUSED2(NAME, OP1, OP2)                                         \
  SPROF_FOP(NAME) {                                                          \
    SPROF_STEP_##OP1(I);                                                     \
    if (__builtin_expect(NInsts >= MaxInstructions, 0))                      \
      goto run_done;                                                         \
    ++NInsts;                                                                \
    SPROF_STEP_##OP2((I + 1));                                               \
    ++I;                                                                     \
    SPROF_NEXT();                                                            \
  }

// Records one conditional branch's direction bit into the path signature
// and diverts to the trace tier's cold hook when the branch is a taken
// back-edge (target at or before the branch). Expands to nothing in
// HasTrace=false instantiations -- a plain (not constexpr) `if` so the
// trace_backedge label stays referenced in both and the dead branch folds.
#define SPROF_TRACE_COND_BRANCH(BRPC, TAKEN, TARGET)                         \
  do {                                                                       \
    if (HasTrace) {                                                          \
      const uint32_t TraceTgt_ = (TARGET);                                   \
      const uint32_t TraceBr_ = (BRPC);                                      \
      if (PathLen < 64)                                                      \
        PathSig = (PathSig << 1) | ((TAKEN) ? 1u : 0u);                      \
      ++PathLen;                                                             \
      I = Code + TraceTgt_;                                                  \
      if (__builtin_expect(TraceTgt_ <= TraceBr_, 0))                        \
        goto trace_backedge;                                                 \
      SPROF_JUMP();                                                          \
    }                                                                        \
  } while (0)

// Compare fused with the conditional branch consuming it (loop back-edges
// and guards). The branch half reads its own condition slot, so the pair
// fuses even when the branch tests something other than the compare's Dst.
#define SPROF_FUSED_CMPBR(NAME, REL)                                         \
  SPROF_FOP(NAME) {                                                          \
    Regs[I->Dst] = Regs[I->A] REL Regs[I->B];                                \
    SPROF_CHARGE(TM.DefaultCost);                                            \
    if (__builtin_expect(NInsts >= MaxInstructions, 0))                      \
      goto run_done;                                                         \
    ++NInsts;                                                                \
    const DInst *J_ = I + 1;                                                 \
    SPROF_CHARGE(TM.DefaultCost);                                            \
    ++Tally.Branches;                                                        \
    {                                                                        \
      const bool Taken_ = Regs[J_->A] != 0;                                  \
      SPROF_TRACE_COND_BRANCH(static_cast<uint32_t>(J_ - Code), Taken_,      \
                              Taken_ ? J_->target0() : J_->target1());       \
      I = Code + (Taken_ ? J_->target0() : J_->target1());                   \
    }                                                                        \
    SPROF_JUMP();                                                            \
  }

#if SPROF_COMPUTED_GOTO

  static const void *Labels[NumDispatchOps] = {
      &&H_Mov,      &&H_Add,      &&H_Sub,      &&H_Mul,
      &&H_Shl,      &&H_Shr,      &&H_And,      &&H_Or,
      &&H_Xor,      &&H_CmpEq,    &&H_CmpNe,    &&H_CmpLt,
      &&H_CmpLe,    &&H_CmpGt,    &&H_CmpGe,    &&H_Select,
      &&H_Load,     &&H_Store,    &&H_Prefetch, &&H_SpecLoad,
      &&H_Jmp,      &&H_Br,       &&H_Call,     &&H_Ret,
      &&H_Halt,     &&H_ProfCounterInc,         &&H_ProfCounterRead,
      &&H_ProfCounterAddTo,       &&H_ProfStride,
      &&H_F_MovMov, &&H_F_AddAdd, &&H_F_AddShl, &&H_F_AddXor,
      &&H_F_ShlAdd, &&H_F_ShlXor, &&H_F_ShrXor, &&H_F_AndShl,
      &&H_F_XorShl, &&H_F_XorShr, &&H_F_XorAnd, &&H_F_AddLoad,
      &&H_F_AndLoad,&&H_F_LoadAdd,&&H_F_LoadAnd,&&H_F_LoadXor,
      &&H_F_LoadShl,&&H_F_LoadLoad,             &&H_F_CmpNeBr,
      &&H_F_CmpLtBr,&&H_F_CallInlined,          &&H_F_RetInlined,
      &&H_Predicated};

// Fetch/decode prologue, replicated at every dispatch site. Predicate
// handling lives behind the Predicated dispatch slot (assigned at decode
// time), so the hot path is fuel check + count + one indirect jump.
#define SPROF_DISPATCH()                                                     \
  do {                                                                       \
    if (__builtin_expect(NInsts >= NextStop, 0))                             \
      goto sp_stop;                                                          \
    ++NInsts;                                                                \
    goto *Labels[I->DOp];                                                    \
  } while (0)

#define SPROF_OP(name) H_##name:
#define SPROF_FOP(name) H_F_##name:
#define SPROF_NEXT()                                                         \
  do {                                                                       \
    ++I;                                                                     \
    SPROF_DISPATCH();                                                        \
  } while (0)
#define SPROF_JUMP() SPROF_DISPATCH()

  SPROF_DISPATCH();

H_Predicated:
  // Qualifying predicate: a false predicate squashes the instruction but
  // still consumes an issue slot; a true predicate tail-jumps to the base
  // opcode's handler (the dispatch prologue already counted this
  // instruction, so no re-dispatch).
  if (Regs[I->Pred] == 0) {
    SPROF_CHARGE(TM.PredicatedOffCost);
    ++Tally.PredSquashed;
    SPROF_NEXT();
  }
  goto *Labels[static_cast<uint8_t>(I->Op)];

  {

#else // switch fallback

#define SPROF_OP(name) case static_cast<uint8_t>(Opcode::name):
#define SPROF_FOP(name) case static_cast<uint8_t>(FusedOp::name):
#define SPROF_NEXT()                                                         \
  do {                                                                       \
    ++I;                                                                     \
    goto next_inst;                                                          \
  } while (0)
#define SPROF_JUMP() goto next_inst

next_inst:
  for (;;) {
    if (__builtin_expect(NInsts >= NextStop, 0)) {
      if (NInsts >= MaxInstructions || !SelfProf)
        goto run_done;
      NextStop =
          selfProfStop(SelfProf, I->DOp, NInsts, SPWindow, MaxInstructions);
    }
    ++NInsts;
    uint8_t DOp = I->DOp;
    if (DOp == static_cast<uint8_t>(FusedOp::Predicated)) {
      if (Regs[I->Pred] == 0) {
        SPROF_CHARGE(TM.PredicatedOffCost);
        ++Tally.PredSquashed;
        ++I;
        continue;
      }
      DOp = static_cast<uint8_t>(I->Op); // predicate true: run the base op
    }
    switch (DOp) {

#endif

    SPROF_OP(Mov) {
      SPROF_STEP_Mov(I);
      SPROF_NEXT();
    }
    SPROF_OP(Add) {
      SPROF_STEP_Add(I);
      SPROF_NEXT();
    }
    SPROF_OP(Sub) {
      Regs[I->Dst] = SPROF_VAL(I->A) - SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(Mul) {
      Regs[I->Dst] = SPROF_VAL(I->A) * SPROF_VAL(I->B);
      SPROF_CHARGE(TM.MulCost);
      SPROF_NEXT();
    }
    SPROF_OP(Shl) {
      SPROF_STEP_Shl(I);
      SPROF_NEXT();
    }
    SPROF_OP(Shr) {
      SPROF_STEP_Shr(I);
      SPROF_NEXT();
    }
    SPROF_OP(And) {
      SPROF_STEP_And(I);
      SPROF_NEXT();
    }
    SPROF_OP(Or) {
      Regs[I->Dst] = SPROF_VAL(I->A) | SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(Xor) {
      SPROF_STEP_Xor(I);
      SPROF_NEXT();
    }
    SPROF_OP(CmpEq) {
      Regs[I->Dst] = SPROF_VAL(I->A) == SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(CmpNe) {
      Regs[I->Dst] = SPROF_VAL(I->A) != SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(CmpLt) {
      Regs[I->Dst] = SPROF_VAL(I->A) < SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(CmpLe) {
      Regs[I->Dst] = SPROF_VAL(I->A) <= SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(CmpGt) {
      Regs[I->Dst] = SPROF_VAL(I->A) > SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(CmpGe) {
      Regs[I->Dst] = SPROF_VAL(I->A) >= SPROF_VAL(I->B);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }
    SPROF_OP(Select) {
      Regs[I->Dst] = SPROF_VAL(I->A) != 0 ? SPROF_VAL(I->B) : SPROF_VAL(I->C);
      SPROF_CHARGE(TM.DefaultCost);
      SPROF_NEXT();
    }

    SPROF_OP(Load) {
      SPROF_STEP_Load(I);
      SPROF_NEXT();
    }
    SPROF_OP(Store) {
      uint64_t Addr = static_cast<uint64_t>(SPROF_VAL(I->A) + I->Imm);
      Memory.write64(Addr, SPROF_VAL(I->B));
      SPROF_CHARGE(TM.StoreCost);
      ++Tally.Stores;
      SPROF_NEXT();
    }
    SPROF_OP(Prefetch) {
      uint64_t Addr = static_cast<uint64_t>(SPROF_VAL(I->A) + I->Imm);
      if constexpr (HasMem)
        Mem->prefetch(Addr, SPROF_NOW(), I->SiteId);
      else
        (void)Addr;
      SPROF_CHARGE(TM.PrefetchCost);
      ++Tally.Prefetches;
      SPROF_NEXT();
    }
    SPROF_OP(SpecLoad) {
      // Speculative, non-blocking load (Itanium ld.s): returns the value
      // for address computation but never stalls the pipeline; it touches
      // the cache like a prefetch.
      uint64_t Addr = static_cast<uint64_t>(SPROF_VAL(I->A) + I->Imm);
      if constexpr (HasMem)
        Mem->prefetchLanes(Addr);
      Regs[I->Dst] = Memory.read64(Addr);
      if constexpr (HasMem)
        Mem->prefetch(Addr, SPROF_NOW(), I->SiteId);
      SPROF_CHARGE(TM.LoadBaseCost);
      ++Tally.SpecLoads;
      SPROF_NEXT();
    }

    SPROF_OP(Jmp) {
      SPROF_CHARGE(TM.DefaultCost);
      ++Tally.Branches;
      if (HasTrace) {
        // Unconditional: records no direction bit, but a backward Jmp is a
        // back-edge (loops closed by Jmp after an if/else diamond).
        const uint32_t JmpPC_ = static_cast<uint32_t>(I - Code);
        const uint32_t Tgt_ = I->target0();
        I = Code + Tgt_;
        if (__builtin_expect(Tgt_ <= JmpPC_, 0))
          goto trace_backedge;
        SPROF_JUMP();
      }
      I = Code + I->target0();
      SPROF_JUMP();
    }
    SPROF_OP(Br) {
      SPROF_CHARGE(TM.DefaultCost);
      ++Tally.Branches;
      {
        const bool Taken_ = SPROF_VAL(I->A) != 0;
        SPROF_TRACE_COND_BRANCH(static_cast<uint32_t>(I - Code), Taken_,
                                Taken_ ? I->target0() : I->target1());
        I = Code + (Taken_ ? I->target0() : I->target1());
      }
      SPROF_JUMP();
    }

    SPROF_OP(Call) {
      SPROF_CHARGE(TM.CallCost);
      const DFunction &CF = Funcs[I->callee()];
      // Arguments read the caller's registers; capture them before the
      // pool can reallocate under Regs.
      int64_t ArgVals[MaxCallArgs];
      const uint32_t *Args = ArgPool + I->argsBase();
      for (unsigned A = 0; A != I->NumArgs; ++A)
        ArgVals[A] = Regs[Args[A]];
      uint32_t NewBase = RegLimit;
      if (RegStack.size() < static_cast<size_t>(NewBase) + CF.NumSlots)
        RegStack.resize(
            std::max<size_t>(static_cast<size_t>(NewBase) + CF.NumSlots,
                             RegStack.size() * 2));
      int64_t *NewRegs = RegStack.data() + NewBase;
      std::fill(NewRegs, NewRegs + CF.NumRegs, 0);
      std::copy(ConstPool + CF.ConstBase,
                ConstPool + CF.ConstBase + (CF.NumSlots - CF.NumRegs),
                NewRegs + CF.NumRegs);
      for (unsigned A = 0; A != I->NumArgs; ++A)
        NewRegs[A] = ArgVals[A];
      Frames.push_back(DFrame{static_cast<uint32_t>(I - Code) + 1, I->Dst,
                              NewBase, NewBase + CF.NumSlots});
      Regs = NewRegs;
      RegLimit = NewBase + CF.NumSlots;
      I = Code + CF.EntryPC;
      ++Tally.Calls;
      if (Frames.size() > Tally.MaxDepth)
        Tally.MaxDepth = Frames.size();
      if (HasTrace) {
        PathSig = 0;
        PathLen = 0;
      }
      SPROF_JUMP();
    }
    SPROF_OP(Ret) {
      SPROF_CHARGE(TM.RetCost);
      if (HasTrace) {
        PathSig = 0;
        PathLen = 0;
      }
      int64_t RV = SPROF_VAL(I->A); // an empty operand decodes as slot 0
      DFrame Top = Frames.back();
      Frames.pop_back();
      if (Frames.empty()) {
        Stats.ExitValue = RV;
        Stats.Completed = true;
        goto run_done;
      }
      const DFrame &Caller = Frames.back();
      Regs = RegStack.data() + Caller.RegBase;
      RegLimit = Caller.RegLimit;
      if (Top.ReturnDst != NoReg)
        Regs[Top.ReturnDst] = RV;
      I = Code + Top.ReturnPC;
      SPROF_JUMP();
    }
    SPROF_OP(Halt) {
      SPROF_CHARGE(TM.DefaultCost);
      Stats.Completed = true;
      Frames.clear();
      goto run_done;
    }

    SPROF_OP(ProfCounterInc) {
      ++Counters[I->Imm];
      InstrCyc += TM.CounterIncCost;
      ++Tally.CounterOps;
      SPROF_NEXT();
    }
    SPROF_OP(ProfCounterRead) {
      Regs[I->Dst] = static_cast<int64_t>(Counters[I->Imm]);
      InstrCyc += TM.CounterReadCost;
      ++Tally.CounterOps;
      SPROF_NEXT();
    }
    SPROF_OP(ProfCounterAddTo) {
      Regs[I->Dst] =
          SPROF_VAL(I->A) + static_cast<int64_t>(Counters[I->Imm]);
      InstrCyc += TM.CounterAddToCost;
      ++Tally.CounterOps;
      SPROF_NEXT();
    }
    SPROF_OP(ProfStride) {
      uint64_t Addr = static_cast<uint64_t>(SPROF_VAL(I->A) + I->Imm);
      if constexpr (HasMem) {
        uint64_t Cost = 0;
        if (Profiler)
          Cost = Profiler->profile(I->SiteId, Addr, LoadRefs + 1);
        RuntimeCyc += Cost;
        if (Ring) {
          Ring[RingN] = StrideEvent{Addr, LoadRefs + 1, I->SiteId};
          if (++RingN == RingCap) {
            Sink->onBatch(Ring, RingN);
            RingN = 0;
          }
        }
      } else {
        if (Ring) {
          Ring[RingN] = StrideEvent{Addr, LoadRefs + 1, I->SiteId};
          if (++RingN == RingCap) {
            if (Profiler)
              RuntimeCyc += Profiler->profileBatch(Ring, RingN);
            if (Sink)
              Sink->onBatch(Ring, RingN);
            RingN = 0;
          }
        }
      }
      ++Tally.StrideTraps;
      SPROF_NEXT();
    }

    SPROF_FUSED2(MovMov, Mov, Mov)
    SPROF_FUSED2(AddAdd, Add, Add)
    SPROF_FUSED2(AddShl, Add, Shl)
    SPROF_FUSED2(AddXor, Add, Xor)
    SPROF_FUSED2(ShlAdd, Shl, Add)
    SPROF_FUSED2(ShlXor, Shl, Xor)
    SPROF_FUSED2(ShrXor, Shr, Xor)
    SPROF_FUSED2(AndShl, And, Shl)
    SPROF_FUSED2(XorShl, Xor, Shl)
    SPROF_FUSED2(XorShr, Xor, Shr)
    SPROF_FUSED2(XorAnd, Xor, And)
    SPROF_FUSED2(AddLoad, Add, Load)
    SPROF_FUSED2(AndLoad, And, Load)
    SPROF_FUSED2(LoadAdd, Load, Add)
    SPROF_FUSED2(LoadAnd, Load, And)
    SPROF_FUSED2(LoadXor, Load, Xor)
    SPROF_FUSED2(LoadShl, Load, Shl)
    SPROF_FUSED2(LoadLoad, Load, Load)
    SPROF_FUSED_CMPBR(CmpNeBr, !=)
    SPROF_FUSED_CMPBR(CmpLtBr, <)

    // Decode-time inlined call: the callee's body follows this instruction
    // in the code stream with its registers living in a window of the
    // current frame (A = window base, C = callee register count). No frame
    // is pushed, but counting, charging, and the call-depth tally mirror
    // the real Call exactly.
    SPROF_FOP(CallInlined) {
      SPROF_CHARGE(TM.CallCost);
      int64_t *W = Regs + I->A;
      for (uint32_t R_ = 0; R_ != I->C; ++R_)
        W[R_] = 0;
      const uint32_t *Args = ArgPool + I->argsBase();
      for (unsigned A_ = 0; A_ != I->NumArgs; ++A_)
        W[A_] = Regs[Args[A_]];
      ++Tally.Calls;
      if (Frames.size() + 1 > Tally.MaxDepth)
        Tally.MaxDepth = Frames.size() + 1;
      SPROF_NEXT();
    }
    SPROF_FOP(RetInlined) {
      SPROF_CHARGE(TM.RetCost);
      if (I->Dst != NoReg)
        Regs[I->Dst] = Regs[I->A];
      SPROF_NEXT();
    }

  // Cold trace-tier hook (HasTrace instantiations only): every taken
  // back-edge lands here with I already on the loop head and the path
  // signature closed by the branch's own bit. The selector either keeps
  // profiling (nullptr) or hands back an installed trace, which executes
  // whole iterations through TraceInterpreter and returns the decoded PC
  // to resume at; the engine's register-resident accounting round-trips
  // through TraceExecState so the handoff is exact in both directions.
  trace_backedge : {
    if (HasTrace) {
      TraceRuntime *RT_ = nullptr;
      const TraceProgram *TP_ = Selector->onBackEdge(
          static_cast<uint32_t>(I - Code), PathSig, PathLen, RT_);
      PathSig = 0;
      PathLen = 0;
      if (TP_) {
        TraceExecContext Ctx_;
        Ctx_.Memory = &Memory;
        Ctx_.Mem = Mem;
        Ctx_.Profiler = Profiler;
        Ctx_.Sink = Sink;
        Ctx_.SelfProf = SelfProf;
        Ctx_.Counters = Counters.data();
        Ctx_.ArgPool = ArgPool;
        Ctx_.TM = TM;
        TraceExecState S_;
        S_.Regs = Regs;
        S_.SiteCounts = SiteCounts;
        S_.Ring = Ring;
        S_.RingN = RingN;
        S_.RingCap = RingCap;
        S_.NInsts = NInsts;
        S_.LoadRefs = LoadRefs;
        S_.BaseCyc = BaseCyc;
        S_.InstrCyc = InstrCyc;
        S_.MemStall = MemStall;
        S_.RuntimeCyc = RuntimeCyc;
        S_.NextStop = NextStop;
        S_.MaxInstructions = MaxInstructions;
        S_.SPWindow = SPWindow;
        S_.FrameDepth = static_cast<uint32_t>(Frames.size());
        const uint32_t Resume_ =
            TraceInterpreter::run<HasMem>(*TP_, *RT_, Ctx_, S_, Tally);
        RingN = S_.RingN;
        NInsts = S_.NInsts;
        LoadRefs = S_.LoadRefs;
        BaseCyc = S_.BaseCyc;
        InstrCyc = S_.InstrCyc;
        MemStall = S_.MemStall;
        RuntimeCyc = S_.RuntimeCyc;
        NextStop = S_.NextStop;
        I = Code + Resume_;
      }
    }
    SPROF_JUMP();
  }

#if SPROF_COMPUTED_GOTO

  // The shared slow half of the dispatch prologue: every replicated
  // dispatch tail branches here when NInsts reaches NextStop. One cold
  // block (and one selfProfStop call site) for the whole loop, so the
  // ~50 hot tails stay a compare-and-branch each and carry no call.
sp_stop:
  if (NInsts >= MaxInstructions || !SelfProf)
    goto run_done;
  NextStop = selfProfStop(SelfProf, I->DOp, NInsts, SPWindow, MaxInstructions);
  ++NInsts;
  goto *Labels[I->DOp];
  }
#else
    } // switch: every case jumps, so control never falls through
  }   // for
#endif

run_done:
  // Flush the partial block so every queued trap is accounted (and
  // captured) exactly as the per-event path would have, on every exit
  // (halt, entry return, or MaxInstructions truncation).
  if (RingN != 0) {
    if constexpr (!HasMem) {
      if (Profiler)
        RuntimeCyc += Profiler->profileBatch(Ring, RingN);
    }
    if (Sink)
      Sink->onBatch(Ring, RingN);
    RingN = 0;
  }
  Stats.Cycles = SPROF_NOW();
  Stats.Instructions = NInsts;
  Stats.LoadRefs = LoadRefs;
  Stats.BaseCycles = BaseCyc;
  Stats.InstrumentationCycles = InstrCyc;
  Stats.MemStallCycles = MemStall;
  Stats.RuntimeCycles = RuntimeCyc;
  if constexpr (HasMem)
    Stats.Mem = Mem->stats();
  return Stats;

#undef SPROF_VAL
#undef SPROF_NOW
#undef SPROF_CHARGE
#undef SPROF_STEP_PREFETCH_HINT
#undef SPROF_STEP_Mov
#undef SPROF_STEP_Add
#undef SPROF_STEP_Shl
#undef SPROF_STEP_Shr
#undef SPROF_STEP_And
#undef SPROF_STEP_Xor
#undef SPROF_STEP_Load
#undef SPROF_FUSED2
#undef SPROF_FUSED_CMPBR
#undef SPROF_OP
#undef SPROF_FOP
#undef SPROF_NEXT
#undef SPROF_JUMP
#if SPROF_COMPUTED_GOTO
#undef SPROF_DISPATCH
#endif
}
