//===- interp/Interpreter.cpp - IR interpreter with cycle timing -----------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/DecodedInterpreter.h"
#include "interp/DecodedProgram.h"
#include "interp/ProgramCache.h"
#include "interp/TraceSelector.h"
#include "obs/Obs.h"

#include <cassert>

using namespace sprof;

namespace {

/// One call frame of the Reference engine.
struct Frame {
  uint32_t Func;
  uint32_t Block;
  uint32_t InstIndex;
  Reg ReturnDst; ///< caller register receiving the return value
  std::vector<int64_t> Regs;
};

} // namespace

Interpreter::Interpreter(const Module &M, SimMemory Memory,
                         const TimingModel &Timing, InterpreterConfig Config)
    : M(M), Memory(std::move(Memory)), Timing(Timing), Config(Config) {
  Counters.assign(M.NumCounters, 0);
}

Interpreter::~Interpreter() = default;

void Interpreter::attachObs(ObsSession *Session) {
  Sinks = ObsSinks();
  // The session's self-profiler (if configured) rides along with the
  // metric sinks, so enabling ObsConfig::SelfProfile is all a driver
  // needs to do. Only the Decoded engine samples; Reference ignores it.
  SelfProf = Session ? Session->selfProfiler() : nullptr;
  if (!Session)
    return;
  Sinks.Runs = Session->counter("interp.runs");
  Sinks.Instructions = Session->counter("interp.instructions");
  Sinks.Loads = Session->counter("interp.loads");
  Sinks.Stores = Session->counter("interp.stores");
  Sinks.Prefetches = Session->counter("interp.prefetches");
  Sinks.SpecLoads = Session->counter("interp.spec_loads");
  Sinks.Calls = Session->counter("interp.calls");
  Sinks.Branches = Session->counter("interp.branches");
  Sinks.PredSquashed = Session->counter("interp.predicated_off");
  Sinks.CounterOps = Session->counter("interp.counter_ops");
  Sinks.StrideTraps = Session->counter("interp.stride_traps");
  Sinks.Cycles = Session->counter("interp.cycles");
  Sinks.MemStallCycles = Session->counter("interp.mem_stall_cycles");
  Sinks.InstrumentationCycles =
      Session->counter("interp.instrumentation_cycles");
  Sinks.RuntimeCycles = Session->counter("interp.runtime_cycles");
  Sinks.TraceEntries = Session->counter("interp.trace_entries");
  Sinks.TraceIterations = Session->counter("interp.trace_iterations");
  Sinks.TraceSideExits = Session->counter("interp.trace_side_exits");
  Sinks.TraceFuelExits = Session->counter("interp.trace_fuel_exits");
  Sinks.TracesCompiled = Session->counter("interp.traces_compiled");
  Sinks.TraceInsts = Session->counter("interp.trace_insts");
  Sinks.MaxStackDepth = Session->gauge("interp.max_stack_depth");
  Sinks.RunCycles = Session->histogram("interp.run_cycles",
                                       Histogram::exponentialBounds(1024, 24));
}

void Interpreter::flushObs(const RunStats &Stats, const ExecTally &Tally) {
  if (Sinks.Runs)
    Sinks.Runs->inc();
  if (Sinks.Instructions)
    Sinks.Instructions->inc(Stats.Instructions);
  if (Sinks.Loads)
    Sinks.Loads->inc(Stats.LoadRefs);
  if (Sinks.Stores)
    Sinks.Stores->inc(Tally.Stores);
  if (Sinks.Prefetches)
    Sinks.Prefetches->inc(Tally.Prefetches);
  if (Sinks.SpecLoads)
    Sinks.SpecLoads->inc(Tally.SpecLoads);
  if (Sinks.Calls)
    Sinks.Calls->inc(Tally.Calls);
  if (Sinks.Branches)
    Sinks.Branches->inc(Tally.Branches);
  if (Sinks.PredSquashed)
    Sinks.PredSquashed->inc(Tally.PredSquashed);
  if (Sinks.CounterOps)
    Sinks.CounterOps->inc(Tally.CounterOps);
  if (Sinks.StrideTraps)
    Sinks.StrideTraps->inc(Tally.StrideTraps);
  if (Sinks.Cycles)
    Sinks.Cycles->inc(Stats.Cycles);
  if (Sinks.MemStallCycles)
    Sinks.MemStallCycles->inc(Stats.MemStallCycles);
  if (Sinks.InstrumentationCycles)
    Sinks.InstrumentationCycles->inc(Stats.InstrumentationCycles);
  if (Sinks.RuntimeCycles)
    Sinks.RuntimeCycles->inc(Stats.RuntimeCycles);
  if (Sinks.MaxStackDepth)
    Sinks.MaxStackDepth->set(static_cast<double>(Tally.MaxDepth));
  if (Sinks.RunCycles)
    Sinks.RunCycles->record(Stats.Cycles);
  if (Selector && Sinks.TraceEntries) {
    // Selector stats are cumulative across runs; emit per-run deltas.
    const TraceTierStats TS = Selector->stats();
    if (Sinks.TraceEntries)
      Sinks.TraceEntries->inc(TS.Entries - TraceFlushed.Entries);
    if (Sinks.TraceIterations)
      Sinks.TraceIterations->inc(TS.Iterations - TraceFlushed.Iterations);
    if (Sinks.TraceSideExits)
      Sinks.TraceSideExits->inc(TS.SideExits - TraceFlushed.SideExits);
    if (Sinks.TraceFuelExits)
      Sinks.TraceFuelExits->inc(TS.FuelExits - TraceFlushed.FuelExits);
    if (Sinks.TracesCompiled)
      Sinks.TracesCompiled->inc(TS.TracesCompiled -
                                TraceFlushed.TracesCompiled);
    if (Sinks.TraceInsts)
      Sinks.TraceInsts->inc(TS.OnTraceInsts - TraceFlushed.OnTraceInsts);
    TraceFlushed = TS;
  }
}

RunStats Interpreter::run(uint64_t MaxInstructions) {
  ExecTally Tally;
  RunStats Stats;
  const bool WantTrace = Config.Exec == InterpreterConfig::Engine::Trace;
  if (Config.Exec == InterpreterConfig::Engine::Decoded || WantTrace) {
    if (!Decoded) {
      if (Config.ShareProgramCache) {
        ProgramCache::Entry E = ProgramCache::global().get(M);
        Decoded = std::move(E.Program);
        Bank = std::move(E.Bank);
      } else {
        Decoded = std::make_shared<const DecodedProgram>(M);
      }
      DecodedExec = std::make_unique<DecodedInterpreter>(
          *Decoded, M.NumLoadSites, Timing, Memory, Counters,
          Config.StrideBatchWindow);
    }
    if (WantTrace && !Selector)
      Selector = std::make_unique<TraceSelector>(*Decoded, Timing,
                                                 Config.Trace, Bank.get());
    DecodedExec->attach(Mem, Profiler, EventSink);
    DecodedExec->attachSelfProfiler(SelfProf);
    DecodedExec->attachTraceSelector(WantTrace ? Selector.get() : nullptr);
    Stats = DecodedExec->run(MaxInstructions, Tally);
  } else {
    Stats = runReference(MaxInstructions, Tally);
  }
  flushObs(Stats, Tally);
  return Stats;
}

TraceTierStats Interpreter::traceTier() const {
  return Selector ? Selector->stats() : TraceTierStats();
}

RunStats Interpreter::runReference(uint64_t MaxInstructions,
                                   ExecTally &Tally) {
  RunStats Stats;
  Stats.SiteCounts.assign(M.NumLoadSites, 0);

  std::vector<Frame> Stack;
  {
    Frame Entry;
    Entry.Func = M.EntryFunction;
    Entry.Block = 0;
    Entry.InstIndex = 0;
    Entry.ReturnDst = NoReg;
    Entry.Regs.assign(M.Functions[M.EntryFunction].NumRegs, 0);
    Stack.push_back(std::move(Entry));
  }

  // Event-sink capture buffer (trace capture / InterpreterSource): the
  // reference engine has no stride ring, so it batches sink deliveries
  // here. Empty and untouched when no sink is attached.
  std::vector<AccessEvent> Cap;
  size_t CapN = 0;
  if (EventSink)
    Cap.resize(Config.StrideBatchWindow ? Config.StrideBatchWindow : 1);

  // Loop preamble: the closures and the frame/instruction cursors they
  // capture are materialized once; the loop only reassigns the cursors.
  uint64_t Now = 0;
  Frame *F = nullptr;
  const Instruction *I = nullptr;
  auto Charge = [&](uint64_t Cost, bool Instrumentation) {
    Now += Cost;
    if (Instrumentation)
      Stats.InstrumentationCycles += Cost;
    else
      Stats.BaseCycles += Cost;
  };
  auto Val = [&](const Operand &O) -> int64_t {
    if (O.isImm())
      return O.getImm();
    assert(O.isReg() && "evaluating empty operand");
    return F->Regs[O.getReg()];
  };

  while (!Stack.empty() && Stats.Instructions < MaxInstructions) {
    F = &Stack.back();
    const Function &Fn = M.Functions[F->Func];
    assert(F->Block < Fn.Blocks.size() && "bad block index");
    const BasicBlock &BB = Fn.Blocks[F->Block];
    assert(F->InstIndex < BB.Insts.size() && "fell off a basic block");
    I = &BB.Insts[F->InstIndex];

    ++Stats.Instructions;

    // Qualifying predicate: a false predicate squashes the instruction but
    // still consumes an issue slot.
    if (I->Pred != NoReg && F->Regs[I->Pred] == 0) {
      Charge(Timing.PredicatedOffCost, I->IsInstrumentation);
      ++Tally.PredSquashed;
      ++F->InstIndex;
      continue;
    }

    switch (I->Op) {
    case Opcode::Mov:
      F->Regs[I->Dst] = Val(I->A);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Add:
      F->Regs[I->Dst] = Val(I->A) + Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Sub:
      F->Regs[I->Dst] = Val(I->A) - Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Mul:
      F->Regs[I->Dst] = Val(I->A) * Val(I->B);
      Charge(Timing.MulCost, I->IsInstrumentation);
      break;
    case Opcode::Shl:
      F->Regs[I->Dst] = static_cast<int64_t>(static_cast<uint64_t>(Val(I->A))
                                             << (Val(I->B) & 63));
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Shr:
      F->Regs[I->Dst] = Val(I->A) >> (Val(I->B) & 63);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::And:
      F->Regs[I->Dst] = Val(I->A) & Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Or:
      F->Regs[I->Dst] = Val(I->A) | Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Xor:
      F->Regs[I->Dst] = Val(I->A) ^ Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::CmpEq:
      F->Regs[I->Dst] = Val(I->A) == Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::CmpNe:
      F->Regs[I->Dst] = Val(I->A) != Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::CmpLt:
      F->Regs[I->Dst] = Val(I->A) < Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::CmpLe:
      F->Regs[I->Dst] = Val(I->A) <= Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::CmpGt:
      F->Regs[I->Dst] = Val(I->A) > Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::CmpGe:
      F->Regs[I->Dst] = Val(I->A) >= Val(I->B);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;
    case Opcode::Select:
      F->Regs[I->Dst] = Val(I->A) != 0 ? Val(I->B) : Val(I->C);
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      break;

    case Opcode::Load: {
      uint64_t Addr = static_cast<uint64_t>(Val(I->A) + I->Imm);
      F->Regs[I->Dst] = Memory.read64(Addr);
      Charge(Timing.LoadBaseCost, I->IsInstrumentation);
      uint64_t Latency =
          Mem ? Mem->demandAccess(Addr, Now, I->SiteId)
              : Timing.FlatLoadLatency;
      // The pipeline hides an L1-hit's worth of latency; the rest stalls.
      uint64_t Hidden = Timing.FlatLoadLatency;
      uint64_t Stall = Latency > Hidden ? Latency - Hidden : 0;
      Now += Stall;
      Stats.MemStallCycles += Stall;
      if (!I->IsInstrumentation) {
        ++Stats.LoadRefs;
        if (I->SiteId != NoId)
          ++Stats.SiteCounts[I->SiteId];
      }
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = static_cast<uint64_t>(Val(I->A) + I->Imm);
      Memory.write64(Addr, Val(I->B));
      Charge(Timing.StoreCost, I->IsInstrumentation);
      ++Tally.Stores;
      break;
    }
    case Opcode::Prefetch: {
      uint64_t Addr = static_cast<uint64_t>(Val(I->A) + I->Imm);
      if (Mem)
        Mem->prefetch(Addr, Now, I->SiteId);
      Charge(Timing.PrefetchCost, I->IsInstrumentation);
      ++Tally.Prefetches;
      break;
    }
    case Opcode::SpecLoad: {
      // Speculative, non-blocking load (Itanium ld.s): returns the value
      // for address computation but never stalls the pipeline; it touches
      // the cache like a prefetch.
      uint64_t Addr = static_cast<uint64_t>(Val(I->A) + I->Imm);
      F->Regs[I->Dst] = Memory.read64(Addr);
      if (Mem)
        Mem->prefetch(Addr, Now, I->SiteId);
      Charge(Timing.LoadBaseCost, I->IsInstrumentation);
      ++Tally.SpecLoads;
      break;
    }

    case Opcode::Jmp:
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      ++Tally.Branches;
      F->Block = I->Target0;
      F->InstIndex = 0;
      continue;
    case Opcode::Br:
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      ++Tally.Branches;
      F->Block = Val(I->A) != 0 ? I->Target0 : I->Target1;
      F->InstIndex = 0;
      continue;

    case Opcode::Call: {
      Charge(Timing.CallCost, I->IsInstrumentation);
      Frame Callee;
      Callee.Func = I->Callee;
      Callee.Block = 0;
      Callee.InstIndex = 0;
      Callee.ReturnDst = I->Dst;
      Callee.Regs.assign(M.Functions[I->Callee].NumRegs, 0);
      for (unsigned A = 0; A != I->NumArgs; ++A)
        Callee.Regs[A] = Val(I->Args[A]);
      ++F->InstIndex; // resume past the call on return
      Stack.push_back(std::move(Callee));
      ++Tally.Calls;
      if (Stack.size() > Tally.MaxDepth)
        Tally.MaxDepth = Stack.size();
      continue;
    }
    case Opcode::Ret: {
      Charge(Timing.RetCost, I->IsInstrumentation);
      int64_t RV = I->A.isNone() ? 0 : Val(I->A);
      Reg Dst = F->ReturnDst;
      Stack.pop_back();
      if (Stack.empty()) {
        Stats.ExitValue = RV;
        Stats.Completed = true;
        break;
      }
      if (Dst != NoReg)
        Stack.back().Regs[Dst] = RV;
      continue;
    }
    case Opcode::Halt:
      Charge(Timing.DefaultCost, I->IsInstrumentation);
      Stats.Completed = true;
      Stack.clear();
      continue;

    case Opcode::ProfCounterInc:
      ++Counters[I->Imm];
      Charge(Timing.CounterIncCost, true);
      ++Tally.CounterOps;
      break;
    case Opcode::ProfCounterRead:
      F->Regs[I->Dst] = static_cast<int64_t>(Counters[I->Imm]);
      Charge(Timing.CounterReadCost, true);
      ++Tally.CounterOps;
      break;
    case Opcode::ProfCounterAddTo:
      F->Regs[I->Dst] = Val(I->A) + static_cast<int64_t>(Counters[I->Imm]);
      Charge(Timing.CounterAddToCost, true);
      ++Tally.CounterOps;
      break;
    case Opcode::ProfStride: {
      uint64_t Addr = static_cast<uint64_t>(Val(I->A) + I->Imm);
      uint64_t Cost = 0;
      if (Profiler)
        Cost = Profiler->profile(I->SiteId, Addr, Stats.LoadRefs + 1);
      if (EventSink) {
        Cap[CapN++] = AccessEvent{Addr, Stats.LoadRefs + 1, I->SiteId,
                                  AccessKind::Load};
        if (CapN == Cap.size()) {
          EventSink->onBatch(Cap.data(), CapN);
          CapN = 0;
        }
      }
      Now += Cost;
      Stats.RuntimeCycles += Cost;
      ++Tally.StrideTraps;
      break;
    }
    }

    if (Stack.empty())
      break;
    ++F->InstIndex;
  }

  if (EventSink && CapN != 0)
    EventSink->onBatch(Cap.data(), CapN);

  Stats.Cycles = Now;
  if (Mem)
    Stats.Mem = Mem->stats();
  return Stats;
}

RunStats &RunStats::operator+=(const RunStats &Other) {
  Completed = Completed && Other.Completed;
  Instructions += Other.Instructions;
  Cycles += Other.Cycles;
  BaseCycles += Other.BaseCycles;
  MemStallCycles += Other.MemStallCycles;
  InstrumentationCycles += Other.InstrumentationCycles;
  RuntimeCycles += Other.RuntimeCycles;
  LoadRefs += Other.LoadRefs;
  if (SiteCounts.size() < Other.SiteCounts.size())
    SiteCounts.resize(Other.SiteCounts.size(), 0);
  for (size_t I = 0; I != Other.SiteCounts.size(); ++I)
    SiteCounts[I] += Other.SiteCounts[I];
  Mem += Other.Mem;
  ExitValue = Other.ExitValue;
  return *this;
}
