//===- interp/DecodedProgram.h - Pre-decoded instruction stream -*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat program representation the Decoded execution engine runs: each
/// function's basic blocks are concatenated into one contiguous instruction
/// array, branch targets are resolved to flat instruction indices at decode
/// time, and operand immediates are materialized into per-function constant
/// slots appended to the frame's register window. The hot loop therefore
/// reads every operand with one unconditional indexed load -- no
/// register-vs-immediate branch, no Operand::Kind inspection -- and DInst
/// packs into 40 bytes (1.6 instructions per cache line) by aliasing the
/// branch-target / call fields onto the unused operand slots. Decoding is a
/// one-time pass over the module; the decoded form is immutable and
/// independent of any interpreter state, so one DecodedProgram can back any
/// number of runs over the same module.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_DECODEDPROGRAM_H
#define SPROF_INTERP_DECODEDPROGRAM_H

#include "ir/Module.h"

#include <cstdint>
#include <vector>

namespace sprof {

/// One pre-decoded instruction. A/B/C are frame-slot indices: either a real
/// register (index < DFunction::NumRegs) or a constant slot the frame setup
/// pre-filled with the folded immediate (empty operands decode as the slot
/// holding 0, matching the reference engine's "missing Ret value reads as
/// 0"). Opcodes that do not use B/C reuse those words through the accessors
/// below, which keeps the struct at 40 bytes.
struct DInst {
  Opcode Op = Opcode::Halt;
  bool IsInstrumentation = false;
  uint8_t NumArgs : 4 = 0; ///< Call only
  /// Decode-time dataflow found that this instruction's result is later
  /// dereferenced (used as a Load/SpecLoad base, possibly through a call
  /// argument), with at least one instruction of distance. The engine
  /// issues a host-level prefetch of the produced address -- pure host
  /// latency hiding, no effect on any simulated state.
  uint8_t PrefetchDst : 1 = 0;
  uint8_t DOp = 0; ///< dispatch index: Op, or a FusedOp superinstruction
  uint32_t Dst = NoReg;
  uint32_t Pred = NoReg;
  uint32_t SiteId = NoId;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  int64_t Imm = 0; ///< address offset (memory ops) / counter id (ProfCounter*)

  // Aliases onto the unused operand words. Jmp/Br carry flat Code indices;
  // Call (zero register operands) carries its callee and argument range.
  uint32_t target0() const { return B; }
  uint32_t target1() const { return C; }
  uint32_t callee() const { return A; }
  uint32_t argsBase() const { return B; } ///< first argument in argPool()

  void setTarget0(uint32_t PC) { B = PC; }
  void setTarget1(uint32_t PC) { C = PC; }
  void setCallee(uint32_t Fn) { A = Fn; }
  void setArgsBase(uint32_t Base) { B = Base; }
};

static_assert(sizeof(DInst) <= 40, "DInst grew past one half cache line");

/// Decode-time superinstructions: adjacent unpredicated ALU pairs inside
/// one block fuse into a single dispatch (the second instruction stays in
/// the code array, where the fused handler reads its fields from I + 1).
/// The pair set covers the hot sequences of the synthetic SPECINT loops --
/// xorshift RNG chains (shl/shr/xor/and) and accumulate chains (add) -- and
/// fusing is purely an encoding: counts and cycle accounting still see two
/// instructions. DInst::DOp holds either an Opcode or one of these.
enum class FusedOp : uint8_t {
  MovMov = NumOpcodes,
  AddAdd,
  AddShl,
  AddXor,
  ShlAdd,
  ShlXor,
  ShrXor,
  AndShl,
  XorShl,
  XorShr,
  XorAnd,
  // ALU/Load combinations (address-compute + dereference chains).
  AddLoad,
  AndLoad,
  LoadAdd,
  LoadAnd,
  LoadXor,
  LoadShl,
  LoadLoad,
  // Compare + conditional branch (loop back-edges and guards).
  CmpNeBr,
  CmpLtBr,
  // Decode-time call inlining. A call to a straight-line leaf function is
  // rewritten as CallInlined followed by the callee's body spliced into the
  // caller's stream, with callee registers remapped into a private window
  // of the caller's frame; the callee's Ret becomes RetInlined. No frame is
  // pushed or popped at run time, but both pseudo-ops count, charge, and
  // tally exactly as the real Call/Ret would (including simulated call
  // depth), so accounting stays bit-identical to the reference engine.
  // CallInlined carries: A = window base slot, B = argsBase, C = callee
  // register count. RetInlined carries: A = return-value slot, Dst = the
  // call's result register (possibly NoReg).
  CallInlined,
  RetInlined,
  // Every instruction with a qualifying predicate dispatches here instead
  // of to its base opcode, so the hot dispatch path carries no per-
  // instruction predicate test at all: the Predicated handler evaluates
  // Pred and either takes the squash path or tail-jumps to the Op handler.
  // Assigned as a final decode pass; fusion never pairs predicated
  // instructions, so a Predicated DOp is always a lone base opcode.
  Predicated,
};

/// Total dispatch-table size: base opcodes + fused superinstructions.
constexpr unsigned NumDispatchOps =
    static_cast<unsigned>(FusedOp::Predicated) + 1;

/// Printable name of a dispatch op (base opcode or fused
/// superinstruction), e.g. "Load", "CmpLtBr". "op<N>" for out-of-range
/// values.
const char *dispatchOpName(uint8_t DOp);

/// The full NumDispatchOps-sized name table, indexed by DInst::DOp. The
/// engine self-profiler installs this so folded-stack lines carry op names.
const char *const *dispatchOpNames();

/// Per-function decode metadata. A frame owns NumSlots consecutive entries
/// of the register stack: the first NumRegs are the function's registers
/// (zeroed on entry), the remaining NumSlots - NumRegs are constant slots
/// filled from constPool()[ConstBase...] on entry and never written again.
struct DFunction {
  uint32_t EntryPC = 0; ///< flat index of the entry block's first inst
  uint32_t NumRegs = 0;
  uint32_t NumSlots = 0;
  uint32_t ConstBase = 0;
};

/// The whole module, flattened. Built once; read-only afterwards.
class DecodedProgram {
public:
  explicit DecodedProgram(const Module &M);

  const std::vector<DInst> &code() const { return Code; }
  const std::vector<uint32_t> &argPool() const { return ArgPool; }
  const std::vector<int64_t> &constPool() const { return ConstPool; }
  const std::vector<DFunction> &functions() const { return Functions; }
  uint32_t entryFunction() const { return EntryFunction; }

private:
  std::vector<DInst> Code;
  std::vector<uint32_t> ArgPool;  ///< call-argument slot indices
  std::vector<int64_t> ConstPool; ///< per-function materialized immediates
  std::vector<DFunction> Functions;
  uint32_t EntryFunction = 0;
};

} // namespace sprof

#endif // SPROF_INTERP_DECODEDPROGRAM_H
