//===- interp/TraceInterpreter.cpp - Superblock trace executor ------------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
//
// The executor's accounting contract (tests/test_trace.cpp):
//
//  * Per-op cycle charges, instruction counts, and opcode tallies are NOT
//    maintained live; they are applied in O(1) from the trace's static
//    sums. An iteration commit is two adds and a counter bump (NInsts,
//    the combined cycle total, FullIters); everything else -- the split
//    into Base/InstrCyc, the per-opcode tallies, RT.Iterations -- is
//    reconstructed once per trace ENTRY at trace_exit as
//    FullIters * IterTotal + GuardInfo::Prefix (the exited iteration's
//    partial sums). Live state is limited to what the program itself can
//    observe mid-iteration: registers, memory, per-site reference counts,
//    LoadRefs (ProfStride events embed it), MemStall/RuntimeCyc (memory
//    timing needs Now), counters, and the stride-event ring.
//
//  * SPROF_NOW() at a memory-system call is reconstructed as the committed
//    BaseCyc + InstrCyc plus the op's compile-time CycAt prefix plus the
//    live MemStall + RuntimeCyc -- bit-identical to the Decoded engine
//    charging per op.
//
//  * Fuel and sampling: the per-dispatch NInsts >= NextStop check is
//    hoisted to one conservative per-iteration test (an iteration only
//    starts when it provably cannot hit a stop). When the stop is the
//    sample point, the sample is taken here -- attributed to the trace's
//    "trace:<id>" slot -- and the window re-armed; when fuel (or a
//    still-too-near sample point) remains, the executor returns to the
//    Decoded engine at the head, which reproduces the truncated partial
//    iteration instruction by instruction.
//
//===----------------------------------------------------------------------===//

#include "interp/TraceInterpreter.h"

#include "obs/SelfProfiler.h"

using namespace sprof;

#if defined(__GNUC__) || defined(__clang__)
#define SPROF_TRACE_COMPUTED_GOTO 1
#else
#define SPROF_TRACE_COMPUTED_GOTO 0
#endif

static_assert(NumTraceOps == 81,
              "trace-op set changed: update the trace executor's handlers");

template <bool HasMem>
uint32_t TraceInterpreter::run(const TraceProgram &TP, TraceRuntime &RT,
                               const TraceExecContext &Ctx, TraceExecState &S,
                               ExecTally &Tally) {
  const TInst *TC = TP.code().data();
  const GuardInfo *GI = TP.guards().data();
  const TraceCounts &Iter = TP.iterTotal();
  if (RT.GuardExits.size() < TP.guards().size())
    RT.GuardExits.resize(TP.guards().size(), 0);

  int64_t *Regs = S.Regs;
  uint64_t *SiteCounts = S.SiteCounts;
  uint64_t *Counters = Ctx.Counters;
  const uint32_t *ArgPool = Ctx.ArgPool;
  SimMemory &Memory = *Ctx.Memory;
  MemoryHierarchy *Mem = Ctx.Mem;
  StrideProfiler *Profiler = Ctx.Profiler;
  AccessSink *Sink = Ctx.Sink;
  const TimingModel TM = Ctx.TM;

  uint64_t NInsts = S.NInsts;
  uint64_t LoadRefs = S.LoadRefs;
  // Live committed cycles: Base + Instr combined (SPROF_TNOW only ever
  // needs the sum); the exact split is reconstructed at trace_exit.
  uint64_t Cyc = S.BaseCyc + S.InstrCyc;
  uint64_t MemStall = S.MemStall;
  uint64_t RuntimeCyc = S.RuntimeCyc;
  StrideEvent *Ring = S.Ring;
  uint32_t RingN = S.RingN;
  const uint32_t RingCap = S.RingCap;

  const uint64_t EntryNInsts = NInsts;
  const uint64_t EntryLoadRefs = LoadRefs;
  const uint32_t SampleSlot =
      NumDispatchOps + TP.id() % NumTraceSelfProfSlots;
  RT.Entries += 1;

  uint32_t ExitPC = TP.headPC();
  const TInst *P = TC;

  // Per-entry accounting state: FullIters counts committed iterations,
  // Pfx is the exited iteration's partial static sums (all-zero for a
  // fuel exit at an iteration boundary), and SquashCyc/SquashN carry the
  // dynamic predicated-off deltas (the only data-dependent charges). The
  // per-iteration cycle commit is the precomputed Base+Instr sum.
  static const TraceCounts ZeroCounts{};
  const TraceCounts *Pfx = &ZeroCounts;
  uint64_t FullIters = 0;
  uint64_t SquashCyc = 0;
  uint64_t SquashN = 0;
  const uint64_t IterCyc = Iter.BaseCyc + Iter.InstrCyc;

// The Decoded engine's SPROF_NOW() at op Q: committed cycles + the op's
// compile-time base+instrumentation prefix + live stall/runtime cycles.
#define SPROF_TNOW(Q) (Cyc + (Q)->CycAt + MemStall + RuntimeCyc)

// Op semantics shared by single, Imm, and pair handlers. No charges, no
// counts: those live in the static sums.
#define SPROF_TSTEP_HINT(Q)                                                  \
  do {                                                                       \
    if (__builtin_expect((Q)->PrefetchDst, 0)) {                             \
      uint64_t Hint_ = static_cast<uint64_t>(Regs[(Q)->Dst]);                \
      Memory.prefetchHost(Hint_);                                            \
      if constexpr (HasMem)                                                  \
        Mem->prefetchLanes(Hint_);                                           \
    }                                                                        \
  } while (0)
#define SPROF_TSTEP_Mov(Q) Regs[(Q)->Dst] = Regs[(Q)->A]
#define SPROF_TSTEP_Add(Q)                                                   \
  do {                                                                       \
    Regs[(Q)->Dst] = Regs[(Q)->A] + Regs[(Q)->B];                            \
    SPROF_TSTEP_HINT(Q);                                                     \
  } while (0)
#define SPROF_TSTEP_Shl(Q)                                                   \
  Regs[(Q)->Dst] = static_cast<int64_t>(                                     \
      static_cast<uint64_t>(Regs[(Q)->A]) << (Regs[(Q)->B] & 63))
#define SPROF_TSTEP_Shr(Q) Regs[(Q)->Dst] = Regs[(Q)->A] >> (Regs[(Q)->B] & 63)
#define SPROF_TSTEP_And(Q) Regs[(Q)->Dst] = Regs[(Q)->A] & Regs[(Q)->B]
#define SPROF_TSTEP_Xor(Q) Regs[(Q)->Dst] = Regs[(Q)->A] ^ Regs[(Q)->B]
#define SPROF_TSTEP_Load(Q)                                                  \
  do {                                                                       \
    uint64_t Addr_ = static_cast<uint64_t>(Regs[(Q)->A] + (Q)->Imm);         \
    if constexpr (HasMem)                                                    \
      Mem->prefetchLanes(Addr_);                                             \
    Regs[(Q)->Dst] = Memory.read64(Addr_);                                   \
    SPROF_TSTEP_HINT(Q);                                                     \
    if constexpr (HasMem) {                                                  \
      uint64_t Latency_ =                                                    \
          Mem->demandAccess(Addr_, SPROF_TNOW(Q), (Q)->SiteId);              \
      uint64_t Hidden_ = TM.FlatLoadLatency;                                 \
      MemStall += Latency_ > Hidden_ ? Latency_ - Hidden_ : 0;               \
    }                                                                        \
    if (!(Q)->IsInstr) {                                                     \
      ++LoadRefs;                                                            \
      if ((Q)->SiteId != NoId)                                               \
        ++SiteCounts[(Q)->SiteId];                                           \
    }                                                                        \
  } while (0)

// Guard test shared by the lone Guard handler and the fused compare+guard
// pairs: side-exit when the condition disagrees with the recorded
// direction. Q must point at the Guard TInst (Aux = guard index).
#define SPROF_TGUARD(Q)                                                      \
  do {                                                                       \
    if (__builtin_expect((Regs[(Q)->A] != 0) !=                              \
                             ((Q)->Expect != 0),                             \
                         0)) {                                               \
      P = (Q);                                                               \
      goto guard_exit;                                                       \
    }                                                                        \
  } while (0)

#define SPROF_TPAIR(NAME, OP1, OP2)                                          \
  SPROF_TOP(NAME) {                                                          \
    SPROF_TSTEP_##OP1(P);                                                    \
    SPROF_TSTEP_##OP2((P + 1));                                              \
    SPROF_TNEXT(2);                                                          \
  }
#define SPROF_TTRIPLE(NAME, OP1, OP2, OP3)                                   \
  SPROF_TOP(NAME) {                                                          \
    SPROF_TSTEP_##OP1(P);                                                    \
    SPROF_TSTEP_##OP2((P + 1));                                              \
    SPROF_TSTEP_##OP3((P + 2));                                              \
    SPROF_TNEXT(3);                                                          \
  }
#define SPROF_TQUAD(NAME, OP1, OP2, OP3, OP4)                                \
  SPROF_TOP(NAME) {                                                          \
    SPROF_TSTEP_##OP1(P);                                                    \
    SPROF_TSTEP_##OP2((P + 1));                                              \
    SPROF_TSTEP_##OP3((P + 2));                                              \
    SPROF_TSTEP_##OP4((P + 3));                                              \
    SPROF_TNEXT(4);                                                          \
  }

  goto iter_start;

guard_exit: {
  const GuardInfo &G = GI[P->Aux];
  Pfx = &G.Prefix;
  NInsts += G.Prefix.Insts;
  Cyc += G.Prefix.BaseCyc + G.Prefix.InstrCyc;
  RT.GuardExits[P->Aux] += 1;
  if (G.IsLoopGuard)
    RT.LoopExits += 1;
  else
    RT.SideExits += 1;
  ExitPC = G.ExitPC;
  goto trace_exit;
}

iter_start:
  // Conservative hoisted fuel/sample check: start an iteration only when
  // the Decoded engine provably would not stop inside it (dispatch checks
  // NInsts >= NextStop before counting, so K instructions are stop-free
  // iff NInsts + K <= NextStop). A near sample point is taken here,
  // attributed to this trace's slot, and re-armed; a near fuel limit (or
  // a still-too-near re-armed sample) hands back to the Decoded engine at
  // the head, which reproduces the partial iteration exactly.
  if (__builtin_expect(NInsts + Iter.Insts > S.NextStop, 0)) {
    if (Ctx.SelfProf && S.NextStop < S.MaxInstructions) {
      Ctx.SelfProf->sample(SampleSlot);
      uint64_t Next = NInsts + S.SPWindow;
      S.NextStop = Next > S.MaxInstructions ? S.MaxInstructions : Next;
    }
    if (NInsts + Iter.Insts > S.NextStop) {
      RT.FuelExits += 1;
      ExitPC = TP.headPC();
      goto trace_exit;
    }
  }
  P = TC;

#if SPROF_TRACE_COMPUTED_GOTO

  {
    static const void *TLabels[NumTraceOps] = {
        &&TH_Mov,        &&TH_Add,        &&TH_Sub,       &&TH_Mul,
        &&TH_Shl,        &&TH_Shr,        &&TH_And,       &&TH_Or,
        &&TH_Xor,        &&TH_CmpEq,      &&TH_CmpNe,     &&TH_CmpLt,
        &&TH_CmpLe,      &&TH_CmpGt,      &&TH_CmpGe,     &&TH_Select,
        &&TH_Load,       &&TH_Store,      &&TH_Prefetch,  &&TH_SpecLoad,
        &&TH_CallInlined,                 &&TH_RetInlined,
        &&TH_ProfCounterInc,              &&TH_ProfCounterRead,
        &&TH_ProfCounterAddTo,            &&TH_ProfStride,
        &&TH_MovImm,     &&TH_AddImm,     &&TH_SubImm,    &&TH_MulImm,
        &&TH_ShlImm,     &&TH_ShrImm,     &&TH_AndImm,    &&TH_OrImm,
        &&TH_XorImm,     &&TH_CmpEqImm,   &&TH_CmpNeImm,  &&TH_CmpLtImm,
        &&TH_CmpLeImm,   &&TH_CmpGtImm,   &&TH_CmpGeImm,  &&TH_Guard,
        &&TH_IterEnd,    &&TH_MovMov,     &&TH_AddAdd,    &&TH_AddShl,
        &&TH_AddXor,     &&TH_ShlAdd,     &&TH_ShlXor,    &&TH_ShrXor,
        &&TH_AndShl,     &&TH_XorShl,     &&TH_XorShr,    &&TH_XorAnd,
        &&TH_AddLoad,    &&TH_AndLoad,    &&TH_LoadAdd,   &&TH_LoadAnd,
        &&TH_LoadXor,    &&TH_LoadShl,    &&TH_LoadLoad,  &&TH_CmpNeGuard,
        &&TH_CmpLtGuard, &&TH_ProfStridePred,
        &&TH_MovAddAdd,      &&TH_AddLoadAdd,     &&TH_LoadLoadAdd,
        &&TH_AndShlAddLoad,  &&TH_ShlXorShrXor,   &&TH_ShrXorShlXor,
        &&TH_LoadXorShlXor,  &&TH_AddXorShlAdd,   &&TH_ShlXorAndShl,
        &&TH_AddLoadAddXor,  &&TH_AddLoadAddLoad, &&TH_LoadLoadAddMov,
        &&TH_AddAddIterEnd,  &&TH_MovAddAddIterEnd,
        &&TH_CmpNeGuardLoadXorShlXor,         &&TH_CmpNeGuardShlXorShrXor,
        &&TH_AndShlAddLoadAddXorShlAdd};

#define SPROF_TDISPATCH() goto *TLabels[static_cast<unsigned>(P->Op)]
#define SPROF_TOP(name) TH_##name:
#define SPROF_TNEXT(K)                                                       \
  do {                                                                       \
    P += (K);                                                                \
    SPROF_TDISPATCH();                                                       \
  } while (0)

    SPROF_TDISPATCH();

#else // switch fallback

#define SPROF_TOP(name) case TOp::name:
#define SPROF_TNEXT(K)                                                       \
  do {                                                                       \
    P += (K);                                                                \
    goto next_op;                                                            \
  } while (0)

next_op:
  for (;;) {
    switch (P->Op) {

#endif

    SPROF_TOP(Mov) {
      SPROF_TSTEP_Mov(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Add) {
      SPROF_TSTEP_Add(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Sub) {
      Regs[P->Dst] = Regs[P->A] - Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Mul) {
      Regs[P->Dst] = Regs[P->A] * Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Shl) {
      SPROF_TSTEP_Shl(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Shr) {
      SPROF_TSTEP_Shr(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(And) {
      SPROF_TSTEP_And(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Or) {
      Regs[P->Dst] = Regs[P->A] | Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Xor) {
      SPROF_TSTEP_Xor(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpEq) {
      Regs[P->Dst] = Regs[P->A] == Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpNe) {
      Regs[P->Dst] = Regs[P->A] != Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpLt) {
      Regs[P->Dst] = Regs[P->A] < Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpLe) {
      Regs[P->Dst] = Regs[P->A] <= Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpGt) {
      Regs[P->Dst] = Regs[P->A] > Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpGe) {
      Regs[P->Dst] = Regs[P->A] >= Regs[P->B];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Select) {
      Regs[P->Dst] = Regs[P->A] != 0 ? Regs[P->B] : Regs[P->C];
      SPROF_TNEXT(1);
    }

    SPROF_TOP(Load) {
      SPROF_TSTEP_Load(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Store) {
      uint64_t Addr = static_cast<uint64_t>(Regs[P->A] + P->Imm);
      Memory.write64(Addr, Regs[P->B]);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(Prefetch) {
      uint64_t Addr = static_cast<uint64_t>(Regs[P->A] + P->Imm);
      if constexpr (HasMem)
        Mem->prefetch(Addr, SPROF_TNOW(P), P->SiteId);
      else
        (void)Addr;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(SpecLoad) {
      uint64_t Addr = static_cast<uint64_t>(Regs[P->A] + P->Imm);
      if constexpr (HasMem)
        Mem->prefetchLanes(Addr);
      Regs[P->Dst] = Memory.read64(Addr);
      if constexpr (HasMem)
        Mem->prefetch(Addr, SPROF_TNOW(P), P->SiteId);
      SPROF_TNEXT(1);
    }

    SPROF_TOP(CallInlined) {
      // Expect = 0: the compiler proved only the Imm-mask registers need
      // the zero-init (trace-local liveness); Expect = 1 keeps the
      // generic zero-everything loop (guard inside the call region, or a
      // window wider than the mask).
      int64_t *W = Regs + P->A;
      if (P->Expect) {
        for (uint32_t R = 0; R != P->C; ++R)
          W[R] = 0;
      } else {
        uint64_t M = static_cast<uint64_t>(P->Imm);
        while (M) {
          W[__builtin_ctzll(M)] = 0;
          M &= M - 1;
        }
      }
      const uint32_t *Args = ArgPool + P->B;
      for (uint32_t A = 0; A != P->Aux; ++A)
        W[A] = Regs[Args[A]];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(RetInlined) {
      // Unreached by compiled traces (decomposed to Mov / elided); kept
      // for the switch-fallback build's exhaustiveness.
      if (P->Dst != NoReg)
        Regs[P->Dst] = Regs[P->A];
      SPROF_TNEXT(1);
    }

    SPROF_TOP(ProfCounterInc) {
      ++Counters[P->Imm];
      SPROF_TNEXT(1);
    }
    SPROF_TOP(ProfCounterRead) {
      Regs[P->Dst] = static_cast<int64_t>(Counters[P->Imm]);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(ProfCounterAddTo) {
      Regs[P->Dst] = Regs[P->A] + static_cast<int64_t>(Counters[P->Imm]);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(ProfStride) {
      uint64_t Addr = static_cast<uint64_t>(Regs[P->A] + P->Imm);
      if constexpr (HasMem) {
        uint64_t Cost = 0;
        if (Profiler)
          Cost = Profiler->profile(P->SiteId, Addr, LoadRefs + 1);
        RuntimeCyc += Cost;
        if (Ring) {
          Ring[RingN] = StrideEvent{Addr, LoadRefs + 1, P->SiteId};
          if (++RingN == RingCap) {
            Sink->onBatch(Ring, RingN);
            RingN = 0;
          }
        }
      } else {
        if (Ring) {
          Ring[RingN] = StrideEvent{Addr, LoadRefs + 1, P->SiteId};
          if (++RingN == RingCap) {
            if (Profiler)
              RuntimeCyc += Profiler->profileBatch(Ring, RingN);
            if (Sink)
              Sink->onBatch(Ring, RingN);
            RingN = 0;
          }
        }
      }
      SPROF_TNEXT(1);
    }

    SPROF_TOP(MovImm) {
      Regs[P->Dst] = P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(AddImm) {
      Regs[P->Dst] = Regs[P->A] + P->Imm;
      SPROF_TSTEP_HINT(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(SubImm) {
      Regs[P->Dst] = Regs[P->A] - P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(MulImm) {
      Regs[P->Dst] = Regs[P->A] * P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(ShlImm) {
      Regs[P->Dst] = static_cast<int64_t>(static_cast<uint64_t>(Regs[P->A])
                                          << (P->Imm & 63));
      SPROF_TNEXT(1);
    }
    SPROF_TOP(ShrImm) {
      Regs[P->Dst] = Regs[P->A] >> (P->Imm & 63);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(AndImm) {
      Regs[P->Dst] = Regs[P->A] & P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(OrImm) {
      Regs[P->Dst] = Regs[P->A] | P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(XorImm) {
      Regs[P->Dst] = Regs[P->A] ^ P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpEqImm) {
      Regs[P->Dst] = Regs[P->A] == P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpNeImm) {
      Regs[P->Dst] = Regs[P->A] != P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpLtImm) {
      Regs[P->Dst] = Regs[P->A] < P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpLeImm) {
      Regs[P->Dst] = Regs[P->A] <= P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpGtImm) {
      Regs[P->Dst] = Regs[P->A] > P->Imm;
      SPROF_TNEXT(1);
    }
    SPROF_TOP(CmpGeImm) {
      Regs[P->Dst] = Regs[P->A] >= P->Imm;
      SPROF_TNEXT(1);
    }

    SPROF_TOP(Guard) {
      SPROF_TGUARD(P);
      SPROF_TNEXT(1);
    }
    SPROF_TOP(IterEnd) {
      NInsts += Iter.Insts;
      Cyc += IterCyc;
      ++FullIters;
      goto iter_start;
    }

    SPROF_TPAIR(MovMov, Mov, Mov)
    SPROF_TPAIR(AddAdd, Add, Add)
    SPROF_TPAIR(AddShl, Add, Shl)
    SPROF_TPAIR(AddXor, Add, Xor)
    SPROF_TPAIR(ShlAdd, Shl, Add)
    SPROF_TPAIR(ShlXor, Shl, Xor)
    SPROF_TPAIR(ShrXor, Shr, Xor)
    SPROF_TPAIR(AndShl, And, Shl)
    SPROF_TPAIR(XorShl, Xor, Shl)
    SPROF_TPAIR(XorShr, Xor, Shr)
    SPROF_TPAIR(XorAnd, Xor, And)
    SPROF_TPAIR(AddLoad, Add, Load)
    SPROF_TPAIR(AndLoad, And, Load)
    SPROF_TPAIR(LoadAdd, Load, Add)
    SPROF_TPAIR(LoadAnd, Load, And)
    SPROF_TPAIR(LoadXor, Load, Xor)
    SPROF_TPAIR(LoadShl, Load, Shl)
    SPROF_TPAIR(LoadLoad, Load, Load)
    SPROF_TTRIPLE(MovAddAdd, Mov, Add, Add)
    SPROF_TTRIPLE(AddLoadAdd, Add, Load, Add)
    SPROF_TTRIPLE(LoadLoadAdd, Load, Load, Add)
    SPROF_TQUAD(AndShlAddLoad, And, Shl, Add, Load)
    SPROF_TQUAD(ShlXorShrXor, Shl, Xor, Shr, Xor)
    SPROF_TQUAD(ShrXorShlXor, Shr, Xor, Shl, Xor)
    SPROF_TQUAD(LoadXorShlXor, Load, Xor, Shl, Xor)
    SPROF_TQUAD(AddXorShlAdd, Add, Xor, Shl, Add)
    SPROF_TQUAD(ShlXorAndShl, Shl, Xor, And, Shl)
    SPROF_TQUAD(AddLoadAddXor, Add, Load, Add, Xor)
    SPROF_TQUAD(AddLoadAddLoad, Add, Load, Add, Load)
    SPROF_TQUAD(LoadLoadAddMov, Load, Load, Add, Mov)
    SPROF_TOP(AddAddIterEnd) {
      SPROF_TSTEP_Add(P);
      SPROF_TSTEP_Add((P + 1));
      NInsts += Iter.Insts;
      Cyc += IterCyc;
      ++FullIters;
      goto iter_start;
    }
    SPROF_TOP(MovAddAddIterEnd) {
      SPROF_TSTEP_Mov(P);
      SPROF_TSTEP_Add((P + 1));
      SPROF_TSTEP_Add((P + 2));
      NInsts += Iter.Insts;
      Cyc += IterCyc;
      ++FullIters;
      goto iter_start;
    }
    SPROF_TOP(CmpNeGuardLoadXorShlXor) {
      Regs[P->Dst] = Regs[P->A] != Regs[P->B];
      SPROF_TGUARD((P + 1));
      SPROF_TSTEP_Load((P + 2));
      SPROF_TSTEP_Xor((P + 3));
      SPROF_TSTEP_Shl((P + 4));
      SPROF_TSTEP_Xor((P + 5));
      SPROF_TNEXT(6);
    }
    SPROF_TOP(CmpNeGuardShlXorShrXor) {
      Regs[P->Dst] = Regs[P->A] != Regs[P->B];
      SPROF_TGUARD((P + 1));
      SPROF_TSTEP_Shl((P + 2));
      SPROF_TSTEP_Xor((P + 3));
      SPROF_TSTEP_Shr((P + 4));
      SPROF_TSTEP_Xor((P + 5));
      SPROF_TNEXT(6);
    }
    SPROF_TOP(AndShlAddLoadAddXorShlAdd) {
      SPROF_TSTEP_And(P);
      SPROF_TSTEP_Shl((P + 1));
      SPROF_TSTEP_Add((P + 2));
      SPROF_TSTEP_Load((P + 3));
      SPROF_TSTEP_Add((P + 4));
      SPROF_TSTEP_Xor((P + 5));
      SPROF_TSTEP_Shl((P + 6));
      SPROF_TSTEP_Add((P + 7));
      SPROF_TNEXT(8);
    }
    SPROF_TOP(CmpNeGuard) {
      Regs[P->Dst] = Regs[P->A] != Regs[P->B];
      SPROF_TGUARD((P + 1));
      SPROF_TNEXT(2);
    }
    SPROF_TOP(CmpLtGuard) {
      Regs[P->Dst] = Regs[P->A] < Regs[P->B];
      SPROF_TGUARD((P + 1));
      SPROF_TNEXT(2);
    }
    SPROF_TOP(ProfStridePred) {
      // The static sums assume the trap runs (charge 0, StrideTraps + 1);
      // a false predicate applies the squash's differences live so the
      // exit-time reconstruction nets out to the Decoded engine's
      // accounting: the off-cost lands in the live cycle total (later
      // CycAt-based SPROF_TNOW values then include it, exactly as if
      // charged per op) and in SquashCyc (routed to InstrCyc at exit),
      // and SquashN moves the tally from StrideTraps to PredSquashed.
      if (Regs[P->C] == 0) {
        Cyc += TM.PredicatedOffCost;
        SquashCyc += TM.PredicatedOffCost;
        ++SquashN;
        SPROF_TNEXT(1);
      }
      uint64_t Addr = static_cast<uint64_t>(Regs[P->A] + P->Imm);
      if constexpr (HasMem) {
        uint64_t Cost = 0;
        if (Profiler)
          Cost = Profiler->profile(P->SiteId, Addr, LoadRefs + 1);
        RuntimeCyc += Cost;
        if (Ring) {
          Ring[RingN] = StrideEvent{Addr, LoadRefs + 1, P->SiteId};
          if (++RingN == RingCap) {
            Sink->onBatch(Ring, RingN);
            RingN = 0;
          }
        }
      } else {
        if (Ring) {
          Ring[RingN] = StrideEvent{Addr, LoadRefs + 1, P->SiteId};
          if (++RingN == RingCap) {
            if (Profiler)
              RuntimeCyc += Profiler->profileBatch(Ring, RingN);
            if (Sink)
              Sink->onBatch(Ring, RingN);
            RingN = 0;
          }
        }
      }
      SPROF_TNEXT(1);
    }

#if SPROF_TRACE_COMPUTED_GOTO
  }
#else
    } // switch: every case jumps, so control never falls through
  }   // for
#endif

trace_exit:
  // O(1)-per-entry reconstruction of everything the iteration commits
  // deferred: tallies, the Base/Instr cycle split, and the iteration
  // count. MaxDepth is idempotent while on-trace: inlined calls never
  // push a frame, so the depth the Decoded engine would have tallied per
  // CallInlined is FrameDepth + 1 throughout. A squash's StrideTrap
  // always lands in FullIters * Iter or in Pfx (the pred op precedes the
  // exiting guard), so the SquashN subtraction cannot underflow.
  RT.Iterations += FullIters;
  RT.OnTraceInsts += NInsts - EntryNInsts;
  RT.OnTraceRefs += LoadRefs - EntryLoadRefs;
  Tally.Branches += FullIters * Iter.Branches + Pfx->Branches;
  Tally.Stores += FullIters * Iter.Stores + Pfx->Stores;
  Tally.Prefetches += FullIters * Iter.Prefetches + Pfx->Prefetches;
  Tally.SpecLoads += FullIters * Iter.SpecLoads + Pfx->SpecLoads;
  Tally.Calls += FullIters * Iter.Calls + Pfx->Calls;
  Tally.CounterOps += FullIters * Iter.CounterOps + Pfx->CounterOps;
  Tally.StrideTraps +=
      FullIters * Iter.StrideTraps + Pfx->StrideTraps - SquashN;
  Tally.PredSquashed += SquashN;
  if (((Iter.Calls && FullIters) || Pfx->Calls) &&
      S.FrameDepth + 1 > Tally.MaxDepth)
    Tally.MaxDepth = S.FrameDepth + 1;
  S.NInsts = NInsts;
  S.LoadRefs = LoadRefs;
  S.BaseCyc += FullIters * Iter.BaseCyc + Pfx->BaseCyc;
  S.InstrCyc += FullIters * Iter.InstrCyc + Pfx->InstrCyc + SquashCyc;
  S.MemStall = MemStall;
  S.RuntimeCyc = RuntimeCyc;
  S.RingN = RingN;
  return ExitPC;

#undef SPROF_TNOW
#undef SPROF_TSTEP_HINT
#undef SPROF_TSTEP_Mov
#undef SPROF_TSTEP_Add
#undef SPROF_TSTEP_Shl
#undef SPROF_TSTEP_Shr
#undef SPROF_TSTEP_And
#undef SPROF_TSTEP_Xor
#undef SPROF_TSTEP_Load
#undef SPROF_TGUARD
#undef SPROF_TPAIR
#undef SPROF_TTRIPLE
#undef SPROF_TQUAD
#undef SPROF_TOP
#undef SPROF_TNEXT
#if SPROF_TRACE_COMPUTED_GOTO
#undef SPROF_TDISPATCH
#endif
}

template uint32_t
TraceInterpreter::run<false>(const TraceProgram &, TraceRuntime &,
                             const TraceExecContext &, TraceExecState &,
                             ExecTally &);
template uint32_t
TraceInterpreter::run<true>(const TraceProgram &, TraceRuntime &,
                            const TraceExecContext &, TraceExecState &,
                            ExecTally &);
