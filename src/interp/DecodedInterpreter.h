//===- interp/DecodedInterpreter.h - Fast pre-decoded engine ----*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Decoded execution core: runs a DecodedProgram on a dense-dispatch
/// loop (computed goto on GCC/Clang, a switch elsewhere) over a reusable
/// frame/register pool, so a Call costs a bounds check and a fill instead
/// of a heap allocation. By contract it reproduces the Reference engine's
/// accounting bit for bit: same RunStats, same SiteCounts, same profiler
/// trap sequence, same telemetry tallies. Anything observable that
/// diverges is a bug (tests/test_decoded.cpp is the differential gate).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_DECODEDINTERPRETER_H
#define SPROF_INTERP_DECODEDINTERPRETER_H

#include "interp/DecodedProgram.h"
#include "interp/Interpreter.h"

#include <cstdint>
#include <vector>

namespace sprof {

class EngineSelfProfiler;
class TraceSelector;

/// Executes a DecodedProgram. Owned by an Interpreter, which supplies the
/// memory image, counters, and per-run attachments; the pool vectors
/// persist across run() calls so repeated runs reuse their capacity.
class DecodedInterpreter {
public:
  DecodedInterpreter(const DecodedProgram &DP, uint32_t NumLoadSites,
                     const TimingModel &Timing, SimMemory &Memory,
                     std::vector<uint64_t> &Counters,
                     uint32_t StrideBatchWindow = 256)
      : DP(DP), NumLoadSites(NumLoadSites), Timing(Timing), Memory(Memory),
        Counters(Counters),
        StrideBatchWindow(StrideBatchWindow ? StrideBatchWindow : 1) {}

  /// Per-run attachments (may change between runs of one Interpreter).
  /// \p EventSink, when non-null, receives the ProfStride trap stream in
  /// ring-sized batches (see Interpreter::attachEventSink).
  void attach(MemoryHierarchy *MH, StrideProfiler *SP,
              AccessSink *EventSink = nullptr) {
    Mem = MH;
    Profiler = SP;
    Sink = EventSink;
  }

  /// Attaches (or detaches, with nullptr) the window-sampled self-profiler
  /// that attributes the engine's own host cycles per dispatch op. Purely
  /// host-side: simulated accounting is bit-identical with or without it.
  void attachSelfProfiler(EngineSelfProfiler *SP) { SelfProf = SP; }

  /// Attaches (or detaches, with nullptr) the trace tier's selection
  /// policy. With a selector attached, every taken backward branch
  /// reports its cross-iteration path signature, and installed traces
  /// execute through TraceInterpreter; accounting stays bit-identical by
  /// contract (tests/test_trace.cpp).
  void attachTraceSelector(TraceSelector *TS) { Selector = TS; }

  RunStats run(uint64_t MaxInstructions, ExecTally &Tally);

private:
  /// The dispatch loop, specialized on whether a cache hierarchy is
  /// attached -- the HasMem=false instance folds the latency branch and the
  /// (always-zero) stall arithmetic out of every Load/Prefetch/SpecLoad --
  /// and on whether the trace tier is live -- HasTrace=false branch
  /// handlers carry no path-signature bookkeeping at all.
  template <bool HasMem, bool HasTrace>
  RunStats runImpl(uint64_t MaxInstructions, ExecTally &Tally);

  /// One pooled call frame: where to resume in the caller and which slice
  /// of RegStack holds this frame's registers.
  struct DFrame {
    uint32_t ReturnPC = 0;
    uint32_t ReturnDst = NoReg;
    uint32_t RegBase = 0;
    uint32_t RegLimit = 0; ///< RegBase + callee NumSlots; next frame's base
  };

  const DecodedProgram &DP;
  uint32_t NumLoadSites;
  TimingModel Timing;
  SimMemory &Memory;
  std::vector<uint64_t> &Counters;
  MemoryHierarchy *Mem = nullptr;
  StrideProfiler *Profiler = nullptr;
  AccessSink *Sink = nullptr;
  EngineSelfProfiler *SelfProf = nullptr;
  TraceSelector *Selector = nullptr;
  /// See InterpreterConfig::StrideBatchWindow (normalized to >= 1).
  uint32_t StrideBatchWindow;

  // Frame/register pool: grows to the run's high-water mark once, then
  // every Call reuses the storage.
  std::vector<DFrame> Frames;
  std::vector<int64_t> RegStack;
  /// Stride-event ring for the batched profiling path (runImpl<false>)
  /// and for event-sink capture (both specializations); capacity retained
  /// across runs like the pools above.
  std::vector<StrideEvent> StrideRing;
};

} // namespace sprof

#endif // SPROF_INTERP_DECODEDINTERPRETER_H
