//===- interp/DecodedProgram.cpp - Pre-decoded instruction stream ----------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "interp/DecodedProgram.h"

#include <cassert>
#include <unordered_map>

using namespace sprof;

namespace {

/// Per-function interning of operand immediates into constant slots.
class ConstAllocator {
public:
  explicit ConstAllocator(uint32_t NumRegs) : NumRegs(NumRegs) {}

  uint32_t slotFor(int64_t Imm) {
    auto [It, Inserted] = Slots.try_emplace(
        Imm, NumRegs + static_cast<uint32_t>(Values.size()));
    if (Inserted)
      Values.push_back(Imm);
    return It->second;
  }

  const std::vector<int64_t> &values() const { return Values; }

private:
  uint32_t NumRegs;
  std::unordered_map<int64_t, uint32_t> Slots;
  std::vector<int64_t> Values;
};

uint32_t decodeOperand(const Operand &O, ConstAllocator &Consts) {
  if (O.isReg())
    return O.getReg();
  if (O.isImm())
    return Consts.slotFor(O.getImm());
  // None decodes as the slot holding 0: only Ret reads a possibly-empty
  // operand, and the reference engine treats a missing value as 0.
  return Consts.slotFor(0);
}

constexpr uint8_t NoFuse = 0xFF;

constexpr unsigned Pack(Opcode X, Opcode Y) {
  return (static_cast<unsigned>(X) << 8) | static_cast<unsigned>(Y);
}

/// The superinstruction an adjacent (A, B) pair fuses into, or NoFuse.
/// Every listed opcode is an unpredicated-eligible single-cost ALU op.
/// Call and Ret must never appear in a pair: decode-time inlining splices
/// callee bodies behind CallInlined/RetInlined pseudo-ops (which keep
/// Op == Call / Op == Ret), and the fusion pass relies on this table never
/// pairing across those boundaries.
uint8_t fusedOpFor(Opcode A, Opcode B) {
  switch (Pack(A, B)) {
  case Pack(Opcode::Mov, Opcode::Mov):
    return static_cast<uint8_t>(FusedOp::MovMov);
  case Pack(Opcode::Add, Opcode::Add):
    return static_cast<uint8_t>(FusedOp::AddAdd);
  case Pack(Opcode::Add, Opcode::Shl):
    return static_cast<uint8_t>(FusedOp::AddShl);
  case Pack(Opcode::Add, Opcode::Xor):
    return static_cast<uint8_t>(FusedOp::AddXor);
  case Pack(Opcode::Shl, Opcode::Add):
    return static_cast<uint8_t>(FusedOp::ShlAdd);
  case Pack(Opcode::Shl, Opcode::Xor):
    return static_cast<uint8_t>(FusedOp::ShlXor);
  case Pack(Opcode::Shr, Opcode::Xor):
    return static_cast<uint8_t>(FusedOp::ShrXor);
  case Pack(Opcode::And, Opcode::Shl):
    return static_cast<uint8_t>(FusedOp::AndShl);
  case Pack(Opcode::Xor, Opcode::Shl):
    return static_cast<uint8_t>(FusedOp::XorShl);
  case Pack(Opcode::Xor, Opcode::Shr):
    return static_cast<uint8_t>(FusedOp::XorShr);
  case Pack(Opcode::Xor, Opcode::And):
    return static_cast<uint8_t>(FusedOp::XorAnd);
  case Pack(Opcode::Add, Opcode::Load):
    return static_cast<uint8_t>(FusedOp::AddLoad);
  case Pack(Opcode::And, Opcode::Load):
    return static_cast<uint8_t>(FusedOp::AndLoad);
  case Pack(Opcode::Load, Opcode::Add):
    return static_cast<uint8_t>(FusedOp::LoadAdd);
  case Pack(Opcode::Load, Opcode::And):
    return static_cast<uint8_t>(FusedOp::LoadAnd);
  case Pack(Opcode::Load, Opcode::Xor):
    return static_cast<uint8_t>(FusedOp::LoadXor);
  case Pack(Opcode::Load, Opcode::Shl):
    return static_cast<uint8_t>(FusedOp::LoadShl);
  case Pack(Opcode::Load, Opcode::Load):
    return static_cast<uint8_t>(FusedOp::LoadLoad);
  case Pack(Opcode::CmpNe, Opcode::Br):
    return static_cast<uint8_t>(FusedOp::CmpNeBr);
  case Pack(Opcode::CmpLt, Opcode::Br):
    return static_cast<uint8_t>(FusedOp::CmpLtBr);
  default:
    return NoFuse;
  }
}

} // namespace

DecodedProgram::DecodedProgram(const Module &M)
    : EntryFunction(M.EntryFunction) {
  // Pass 1: lay out the flat code array. Blocks flatten in order, so the
  // flat index of a block is the function's running instruction count.
  size_t TotalInsts = 0;
  for (const Function &Fn : M.Functions)
    for (const BasicBlock &BB : Fn.Blocks)
      TotalInsts += BB.Insts.size();
  Code.reserve(TotalInsts);
  Functions.reserve(M.Functions.size());

  for (const Function &Fn : M.Functions) {
    DFunction DF;
    DF.EntryPC = static_cast<uint32_t>(Code.size());
    DF.ConstBase = static_cast<uint32_t>(ConstPool.size());

    // A call is inlinable when it is unpredicated, its callee is already
    // decoded (helpers precede their callers in module order; recursion and
    // forward calls simply stay real calls), and the callee is a short
    // straight-line leaf: one block's worth of non-control instructions
    // ending in the sole Ret. Returns the callee's decoded length, or -1.
    auto inlinableLen = [&](const Instruction &I) -> int {
      if (I.Op != Opcode::Call || I.Pred != NoReg ||
          I.Callee >= Functions.size())
        return -1;
      const DFunction &CF = Functions[I.Callee];
      uint32_t CEnd = I.Callee + 1 < Functions.size()
                          ? Functions[I.Callee + 1].EntryPC
                          : DF.EntryPC;
      uint32_t Len = CEnd - CF.EntryPC;
      if (Len == 0 || Len > 24 || Code[CEnd - 1].Op != Opcode::Ret)
        return -1;
      for (uint32_t K = CF.EntryPC; K != CEnd; ++K) {
        switch (Code[K].Op) {
        case Opcode::Jmp:
        case Opcode::Br:
        case Opcode::Call: // also rejects nested CallInlined splices
        case Opcode::Halt:
          return -1;
        case Opcode::Ret:
          if (K + 1 != CEnd)
            return -1;
          break;
        default:
          break;
        }
      }
      return static_cast<int>(Len);
    };

    // Pre-scan: assign each inlinable call site a register window after the
    // function's own registers, and size every block with its splices so
    // the flat block start indices below come out right.
    uint32_t InlineRegs = 0;
    std::vector<uint32_t> SiteWindow; // consumed in decode order
    std::vector<uint32_t> BlockPC(Fn.Blocks.size());
    uint32_t PC = DF.EntryPC;
    for (size_t B = 0; B != Fn.Blocks.size(); ++B) {
      BlockPC[B] = PC;
      for (const Instruction &I : Fn.Blocks[B].Insts) {
        int Len = inlinableLen(I);
        if (Len >= 0) {
          SiteWindow.push_back(Fn.NumRegs + InlineRegs);
          InlineRegs += Functions[I.Callee].NumRegs;
          PC += 1 + static_cast<uint32_t>(Len);
        } else {
          ++PC;
        }
      }
    }
    DF.NumRegs = Fn.NumRegs + InlineRegs;
    ConstAllocator Consts(DF.NumRegs);
    size_t SiteIdx = 0;

    for (const BasicBlock &BB : Fn.Blocks) {
      assert(BB.hasTerminator() && "decoding a malformed block");
      for (const Instruction &I : BB.Insts) {
        const OpcodeInfo &Info = opcodeInfo(I.Op);
        DInst D;
        D.Op = I.Op;
        D.DOp = static_cast<uint8_t>(I.Op);
        D.IsInstrumentation = I.IsInstrumentation;
        D.Dst = I.Dst;
        D.Pred = I.Pred;
        D.SiteId = I.SiteId;
        if (Info.NumOperands >= 1 || I.Op == Opcode::Ret)
          D.A = decodeOperand(I.A, Consts);
        if (Info.NumOperands >= 2)
          D.B = decodeOperand(I.B, Consts);
        if (Info.NumOperands >= 3)
          D.C = decodeOperand(I.C, Consts);
        if (Info.UsesImm)
          D.Imm = I.Imm;
        switch (I.Op) {
        case Opcode::Jmp:
          D.setTarget0(BlockPC[I.Target0]);
          break;
        case Opcode::Br:
          D.setTarget0(BlockPC[I.Target0]);
          D.setTarget1(BlockPC[I.Target1]);
          break;
        case Opcode::Call: {
          D.NumArgs = I.NumArgs;
          D.setArgsBase(static_cast<uint32_t>(ArgPool.size()));
          for (unsigned A = 0; A != I.NumArgs; ++A)
            ArgPool.push_back(decodeOperand(I.Args[A], Consts));
          int InlLen = inlinableLen(I);
          if (InlLen < 0) {
            D.setCallee(I.Callee);
            break;
          }
          // Inline the callee: emit the CallInlined pseudo-op, then splice
          // the callee's decoded body with its registers remapped into this
          // site's window and its constants re-interned into this
          // function's pool. The callee's fused DOps are reset to their
          // base opcodes; the fusion pass below re-pairs the spliced
          // stream (deterministically identical within the splice, and
          // free to pair across the old call boundary's ALU neighbours).
          const DFunction &CF = Functions[I.Callee];
          uint32_t WBase = SiteWindow[SiteIdx++];
          D.DOp = static_cast<uint8_t>(FusedOp::CallInlined);
          D.A = WBase;
          D.C = CF.NumRegs;
          Code.push_back(D);
          auto remap = [&](uint32_t Slot) -> uint32_t {
            if (Slot < CF.NumRegs)
              return WBase + Slot;
            return Consts.slotFor(ConstPool[CF.ConstBase +
                                            (Slot - CF.NumRegs)]);
          };
          uint32_t CEnd = CF.EntryPC + static_cast<uint32_t>(InlLen);
          for (uint32_t K = CF.EntryPC; K != CEnd; ++K) {
            DInst CI = Code[K]; // by value: push_back may reallocate
            const OpcodeInfo &CInfo = opcodeInfo(CI.Op);
            if (CI.Dst != NoReg)
              CI.Dst = WBase + CI.Dst;
            if (CI.Pred != NoReg)
              CI.Pred = WBase + CI.Pred;
            if (CInfo.NumOperands >= 1 || CI.Op == Opcode::Ret)
              CI.A = remap(CI.A);
            if (CInfo.NumOperands >= 2)
              CI.B = remap(CI.B);
            if (CInfo.NumOperands >= 3)
              CI.C = remap(CI.C);
            CI.PrefetchDst = 0;
            if (CI.Op == Opcode::Ret) {
              CI.DOp = static_cast<uint8_t>(FusedOp::RetInlined);
              CI.Dst = D.Dst; // the call's result register (maybe NoReg)
            } else {
              CI.DOp = static_cast<uint8_t>(CI.Op);
            }
            Code.push_back(CI);
          }
          continue; // the call and splice are already emitted
        }
        default:
          break;
        }
        Code.push_back(D);
      }
    }

    DF.NumSlots =
        DF.NumRegs + static_cast<uint32_t>(Consts.values().size());
    ConstPool.insert(ConstPool.end(), Consts.values().begin(),
                     Consts.values().end());

    // Fusion pass: greedily pair adjacent eligible instructions. Control
    // only ever enters a block at its head, so the one structural hazard
    // is the second instruction being a block leader. Pairs with mixed
    // base/instrumentation attribution stay unfused so the fused handler
    // can charge both halves to one bucket.
    std::vector<bool> IsLeader(Code.size() - DF.EntryPC, false);
    for (uint32_t BPC : BlockPC)
      IsLeader[BPC - DF.EntryPC] = true;
    for (uint32_t K = DF.EntryPC; K + 1 < Code.size();) {
      DInst &A = Code[K];
      const DInst &B = Code[K + 1];
      if (!IsLeader[K + 1 - DF.EntryPC] && A.Pred == NoReg &&
          B.Pred == NoReg && A.IsInstrumentation == B.IsInstrumentation) {
        uint8_t F = fusedOpFor(A.Op, B.Op);
        if (F != NoFuse) {
          A.DOp = F;
          K += 2;
          continue;
        }
      }
      ++K;
    }

    Functions.push_back(DF);
  }

  // Pointer-prefetch analysis. A register that is ever used as a memory
  // base (directly, or by being passed to a callee that dereferences its
  // parameter) holds an address; any Add or Load that produces such a
  // register is producing an address the program will dereference later --
  // the advancing sweep pointer of a heap walk, the `p = p->next` of a
  // pointer chase, an address handed to a helper call. Flag those producers
  // so the engine can issue a host prefetch the moment the address exists,
  // hiding host-DRAM latency that the lean dispatch loop no longer covers
  // with overhead. Purely a host-side hint: simulated accounting is
  // untouched.
  const size_t NumFns = Functions.size();
  auto fnEnd = [&](size_t F) {
    return F + 1 != NumFns ? Functions[F + 1].EntryPC
                           : static_cast<uint32_t>(Code.size());
  };
  std::vector<std::vector<bool>> BaseRegs(NumFns);
  for (size_t F = 0; F != NumFns; ++F)
    BaseRegs[F].assign(Functions[F].NumRegs, false);
  // Fixpoint over the call graph (callee parameter facts flow into
  // callers; module call graphs here are shallow, so this converges in a
  // couple of sweeps).
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t F = 0; F != NumFns; ++F) {
      auto markBase = [&](uint32_t Slot) {
        if (Slot < Functions[F].NumRegs && !BaseRegs[F][Slot]) {
          BaseRegs[F][Slot] = true;
          Changed = true;
        }
      };
      for (uint32_t PC = Functions[F].EntryPC, E = fnEnd(F); PC != E; ++PC) {
        const DInst &D = Code[PC];
        switch (D.Op) {
        case Opcode::Load:
        case Opcode::Store:
        case Opcode::Prefetch:
        case Opcode::SpecLoad:
          markBase(D.A);
          break;
        case Opcode::Call: {
          if (D.DOp == static_cast<uint8_t>(FusedOp::CallInlined)) {
            // The spliced body's loads mark the window slots directly;
            // propagate window-parameter facts back to the argument regs.
            for (unsigned Arg = 0; Arg != D.NumArgs; ++Arg)
              if (BaseRegs[F][D.A + Arg])
                markBase(ArgPool[D.argsBase() + Arg]);
            break;
          }
          const std::vector<bool> &CalleeBases = BaseRegs[D.callee()];
          for (unsigned Arg = 0; Arg != D.NumArgs; ++Arg)
            if (Arg < CalleeBases.size() && CalleeBases[Arg])
              markBase(ArgPool[D.argsBase() + Arg]);
          break;
        }
        default:
          break;
        }
      }
    }
  }
  // Flag the producers. Only Add and Load results are worth the hint (the
  // address-arithmetic and pointer-chase producers); skip when the very
  // next instruction is the dereference -- there is no latency to hide.
  for (size_t F = 0; F != NumFns; ++F) {
    for (uint32_t PC = Functions[F].EntryPC, E = fnEnd(F); PC != E; ++PC) {
      DInst &D = Code[PC];
      if (D.Op != Opcode::Add && D.Op != Opcode::Load)
        continue;
      if (D.Dst >= Functions[F].NumRegs || !BaseRegs[F][D.Dst])
        continue;
      if (PC + 1 != E &&
          (Code[PC + 1].Op == Opcode::Load ||
           Code[PC + 1].Op == Opcode::SpecLoad) &&
          Code[PC + 1].A == D.Dst)
        continue;
      D.PrefetchDst = 1;
    }
  }

  // Final pass: route every predicated instruction through the Predicated
  // dispatch slot. This must run after fusion (fusion only pairs
  // unpredicated instructions, so no fused DOp is ever overwritten) and
  // leaves Op untouched -- the Predicated handler re-dispatches on it once
  // the predicate is known to be true.
  for (DInst &D : Code)
    if (D.Pred != NoReg)
      D.DOp = static_cast<uint8_t>(FusedOp::Predicated);
}

// -- Dispatch-op names -----------------------------------------------------

const char *const *sprof::dispatchOpNames() {
  static const char *Names[NumDispatchOps] = {};
  static const bool Init = [] {
    for (unsigned I = 0; I != NumOpcodes; ++I)
      Names[I] = opcodeName(static_cast<Opcode>(I));
    auto Set = [](FusedOp F, const char *N) {
      Names[static_cast<unsigned>(F)] = N;
    };
    Set(FusedOp::MovMov, "MovMov");
    Set(FusedOp::AddAdd, "AddAdd");
    Set(FusedOp::AddShl, "AddShl");
    Set(FusedOp::AddXor, "AddXor");
    Set(FusedOp::ShlAdd, "ShlAdd");
    Set(FusedOp::ShlXor, "ShlXor");
    Set(FusedOp::ShrXor, "ShrXor");
    Set(FusedOp::AndShl, "AndShl");
    Set(FusedOp::XorShl, "XorShl");
    Set(FusedOp::XorShr, "XorShr");
    Set(FusedOp::XorAnd, "XorAnd");
    Set(FusedOp::AddLoad, "AddLoad");
    Set(FusedOp::AndLoad, "AndLoad");
    Set(FusedOp::LoadAdd, "LoadAdd");
    Set(FusedOp::LoadAnd, "LoadAnd");
    Set(FusedOp::LoadXor, "LoadXor");
    Set(FusedOp::LoadShl, "LoadShl");
    Set(FusedOp::LoadLoad, "LoadLoad");
    Set(FusedOp::CmpNeBr, "CmpNeBr");
    Set(FusedOp::CmpLtBr, "CmpLtBr");
    Set(FusedOp::CallInlined, "CallInlined");
    Set(FusedOp::RetInlined, "RetInlined");
    Set(FusedOp::Predicated, "Predicated");
    return true;
  }();
  (void)Init;
  return Names;
}

const char *sprof::dispatchOpName(uint8_t DOp) {
  if (DOp < NumDispatchOps)
    if (const char *N = dispatchOpNames()[DOp])
      return N;
  return "op?";
}
