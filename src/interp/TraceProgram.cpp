//===- interp/TraceProgram.cpp - Hot-trace superblock compiler ------------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
//
// The trace compiler re-walks the DecodedProgram from the hot loop head,
// consuming one recorded direction bit per conditional branch, and emits
// the straight-line superblock plus the static accounting sums that make
// side exits and iteration commits O(1). Correctness leans on three decode
// facts (asserted against DecodedProgram.cpp):
//
//  * functions are laid out contiguously in vector order, so the function
//    containing the head is the one with the largest EntryPC <= head and
//    its code ends at the next function's EntryPC;
//  * constant slots are the frame indices in [NumRegs, NumSlots) and are
//    never written after frame setup, so folding them into immediates is
//    safe for the whole run;
//  * decode-time inline windows live inside NumRegs, so the slot >= NumRegs
//    test cannot misclassify an inlined callee's register.
//
// Every abort path returns nullptr; the selector counts aborts toward the
// per-head blacklist so a pathological loop stops paying compile attempts.
//
//===----------------------------------------------------------------------===//

#include "interp/TraceProgram.h"

#include "interp/Interpreter.h"

#include <cassert>

using namespace sprof;

uint64_t TraceProgram::hashTiming(const TimingModel &TM) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(TM.DefaultCost);
  Mix(TM.MulCost);
  Mix(TM.LoadBaseCost);
  Mix(TM.StoreCost);
  Mix(TM.PrefetchCost);
  Mix(TM.CallCost);
  Mix(TM.RetCost);
  Mix(TM.CounterIncCost);
  Mix(TM.CounterReadCost);
  Mix(TM.CounterAddToCost);
  Mix(TM.PredicatedOffCost);
  Mix(TM.FlatLoadLatency);
  return H;
}

namespace {

/// Trace-local re-fusion table: mirrors the Decoded engine's FusedOp pair
/// set (the second TInst trails undispatched, exactly like DInst pairs)
/// plus the compare+guard fusion that replaces CmpNeBr/CmpLtBr on-trace.
/// Returns -1 when the two ops do not fuse.
/// Packs an op run into a switch key for the longest-match tables.
constexpr uint32_t seqKey(TOp A, TOp B, TOp C, TOp D = TOp::Mov) {
  return (static_cast<uint32_t>(A) << 24) | (static_cast<uint32_t>(B) << 16) |
         (static_cast<uint32_t>(C) << 8) | static_cast<uint32_t>(D);
}

/// Four-op superinstructions; the hottest measured dispatch chains.
int quadOf(TOp A, TOp B, TOp C, TOp D) {
  switch (seqKey(A, B, C, D)) {
  case seqKey(TOp::And, TOp::Shl, TOp::Add, TOp::Load):
    return static_cast<int>(TOp::AndShlAddLoad);
  case seqKey(TOp::Shl, TOp::Xor, TOp::Shr, TOp::Xor):
    return static_cast<int>(TOp::ShlXorShrXor);
  case seqKey(TOp::Shr, TOp::Xor, TOp::Shl, TOp::Xor):
    return static_cast<int>(TOp::ShrXorShlXor);
  case seqKey(TOp::Load, TOp::Xor, TOp::Shl, TOp::Xor):
    return static_cast<int>(TOp::LoadXorShlXor);
  case seqKey(TOp::Add, TOp::Xor, TOp::Shl, TOp::Add):
    return static_cast<int>(TOp::AddXorShlAdd);
  case seqKey(TOp::Shl, TOp::Xor, TOp::And, TOp::Shl):
    return static_cast<int>(TOp::ShlXorAndShl);
  case seqKey(TOp::Add, TOp::Load, TOp::Add, TOp::Xor):
    return static_cast<int>(TOp::AddLoadAddXor);
  case seqKey(TOp::Add, TOp::Load, TOp::Add, TOp::Load):
    return static_cast<int>(TOp::AddLoadAddLoad);
  case seqKey(TOp::Load, TOp::Load, TOp::Add, TOp::Mov):
    return static_cast<int>(TOp::LoadLoadAddMov);
  case seqKey(TOp::Mov, TOp::Add, TOp::Add, TOp::IterEnd):
    return static_cast<int>(TOp::MovAddAddIterEnd);
  default:
    return -1;
  }
}

/// Three-op superinstructions, consulted when no quad matches.
int tripleOf(TOp A, TOp B, TOp C) {
  switch (seqKey(A, B, C)) {
  case seqKey(TOp::Mov, TOp::Add, TOp::Add):
    return static_cast<int>(TOp::MovAddAdd);
  case seqKey(TOp::Add, TOp::Load, TOp::Add):
    return static_cast<int>(TOp::AddLoadAdd);
  case seqKey(TOp::Load, TOp::Load, TOp::Add):
    return static_cast<int>(TOp::LoadLoadAdd);
  case seqKey(TOp::Add, TOp::Add, TOp::IterEnd):
    return static_cast<int>(TOp::AddAddIterEnd);
  default:
    return -1;
  }
}


/// Six-op superinstructions: the guard-headed iteration prologues (the
/// compare+guard plus the ALU/Load run that follows when the guard holds;
/// a failing guard still side-exits at the embedded Guard TInst).
int hexOf(const TInst *T) {
  if (T[0].Op != TOp::CmpNe || T[1].Op != TOp::Guard)
    return -1;
  const uint32_t Tail = seqKey(T[2].Op, T[3].Op, T[4].Op, T[5].Op);
  if (Tail == seqKey(TOp::Load, TOp::Xor, TOp::Shl, TOp::Xor))
    return static_cast<int>(TOp::CmpNeGuardLoadXorShlXor);
  if (Tail == seqKey(TOp::Shl, TOp::Xor, TOp::Shr, TOp::Xor))
    return static_cast<int>(TOp::CmpNeGuardShlXorShrXor);
  return -1;
}

/// Eight-op superinstruction: the longest straight ALU/Load run measured
/// hot (the hash-update body of the compute-bound loops).
int octOf(const TInst *T) {
  if (seqKey(T[0].Op, T[1].Op, T[2].Op, T[3].Op) ==
          seqKey(TOp::And, TOp::Shl, TOp::Add, TOp::Load) &&
      seqKey(T[4].Op, T[5].Op, T[6].Op, T[7].Op) ==
          seqKey(TOp::Add, TOp::Xor, TOp::Shl, TOp::Add))
    return static_cast<int>(TOp::AndShlAddLoadAddXorShlAdd);
  return -1;
}

int pairOf(TOp A, TOp B) {
  if (B == TOp::Guard) {
    if (A == TOp::CmpNe)
      return static_cast<int>(TOp::CmpNeGuard);
    if (A == TOp::CmpLt)
      return static_cast<int>(TOp::CmpLtGuard);
    return -1;
  }
  switch (A) {
  case TOp::Mov:
    return B == TOp::Mov ? static_cast<int>(TOp::MovMov) : -1;
  case TOp::Add:
    if (B == TOp::Add)
      return static_cast<int>(TOp::AddAdd);
    if (B == TOp::Shl)
      return static_cast<int>(TOp::AddShl);
    if (B == TOp::Xor)
      return static_cast<int>(TOp::AddXor);
    if (B == TOp::Load)
      return static_cast<int>(TOp::AddLoad);
    return -1;
  case TOp::Shl:
    if (B == TOp::Add)
      return static_cast<int>(TOp::ShlAdd);
    if (B == TOp::Xor)
      return static_cast<int>(TOp::ShlXor);
    return -1;
  case TOp::Shr:
    return B == TOp::Xor ? static_cast<int>(TOp::ShrXor) : -1;
  case TOp::And:
    if (B == TOp::Shl)
      return static_cast<int>(TOp::AndShl);
    if (B == TOp::Load)
      return static_cast<int>(TOp::AndLoad);
    return -1;
  case TOp::Xor:
    if (B == TOp::Shl)
      return static_cast<int>(TOp::XorShl);
    if (B == TOp::Shr)
      return static_cast<int>(TOp::XorShr);
    if (B == TOp::And)
      return static_cast<int>(TOp::XorAnd);
    return -1;
  case TOp::Load:
    if (B == TOp::Add)
      return static_cast<int>(TOp::LoadAdd);
    if (B == TOp::And)
      return static_cast<int>(TOp::LoadAnd);
    if (B == TOp::Xor)
      return static_cast<int>(TOp::LoadXor);
    if (B == TOp::Shl)
      return static_cast<int>(TOp::LoadShl);
    if (B == TOp::Load)
      return static_cast<int>(TOp::LoadLoad);
    return -1;
  default:
    return -1;
  }
}

} // namespace

std::unique_ptr<TraceProgram>
TraceProgram::compile(const DecodedProgram &DP, const TimingModel &TM,
                      uint32_t HeadPC, uint64_t PathSig, uint32_t PathLen,
                      const TraceTierConfig &Config, uint32_t Id) {
  const std::vector<DInst> &Code = DP.code();
  const std::vector<DFunction> &Fns = DP.functions();
  if (HeadPC >= Code.size() || PathLen > 63 || Fns.empty())
    return nullptr;

  // Containing function: largest EntryPC <= HeadPC; code ends where the
  // next function begins (functions are decoded contiguously in order).
  size_t FnIdx = 0;
  for (size_t F = 0; F != Fns.size(); ++F)
    if (Fns[F].EntryPC <= HeadPC)
      FnIdx = F;
  const DFunction &Fn = Fns[FnIdx];
  const uint32_t FnEnd = FnIdx + 1 < Fns.size()
                             ? Fns[FnIdx + 1].EntryPC
                             : static_cast<uint32_t>(Code.size());

  std::vector<TInst> Out;
  std::vector<GuardInfo> Guards;
  TraceCounts Cum;
  uint32_t BitsUsed = 0;
  bool Closed = false;

  // One logical instruction's static accounting: the per-dispatch count
  // plus its cycle charge routed by the reference engine's attribution
  // rule (SPROF_CHARGE). ProfCounter* ops bypass this and charge InstrCyc
  // unconditionally, exactly like their Decoded handlers.
  auto Account = [&Cum](const DInst &D, uint32_t Cost) {
    Cum.Insts += 1;
    if (D.IsInstrumentation)
      Cum.InstrCyc += Cost;
    else
      Cum.BaseCyc += Cost;
  };
  // Base+instrumentation cycles accumulated so far this iteration; the
  // executor adds this to its committed totals (plus live MemStall /
  // RuntimeCyc) to reproduce SPROF_NOW() at each memory-system call.
  auto CycNow = [&Cum]() { return Cum.BaseCyc + Cum.InstrCyc; };

  // Emits one straight-line base op. Returns false for anything that ends
  // the trace's eligibility (real control flow is handled by the caller).
  auto EmitBase = [&](const DInst &D, Opcode Op) -> bool {
    TInst T;
    T.IsInstr = D.IsInstrumentation;
    T.PrefetchDst = D.PrefetchDst;
    T.Dst = D.Dst;
    T.A = D.A;
    T.B = D.B;
    T.C = D.C;
    T.SiteId = D.SiteId;
    T.Imm = D.Imm;
    switch (Op) {
    case Opcode::Mov:
      T.Op = TOp::Mov;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Add:
      T.Op = TOp::Add;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Sub:
      T.Op = TOp::Sub;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Mul:
      T.Op = TOp::Mul;
      Account(D, TM.MulCost);
      break;
    case Opcode::Shl:
      T.Op = TOp::Shl;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Shr:
      T.Op = TOp::Shr;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::And:
      T.Op = TOp::And;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Or:
      T.Op = TOp::Or;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Xor:
      T.Op = TOp::Xor;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::CmpEq:
      T.Op = TOp::CmpEq;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::CmpNe:
      T.Op = TOp::CmpNe;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::CmpLt:
      T.Op = TOp::CmpLt;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::CmpLe:
      T.Op = TOp::CmpLe;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::CmpGt:
      T.Op = TOp::CmpGt;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::CmpGe:
      T.Op = TOp::CmpGe;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Select:
      T.Op = TOp::Select;
      Account(D, TM.DefaultCost);
      break;
    case Opcode::Load:
      // Loads time their cache access after their own base-cost charge.
      T.Op = TOp::Load;
      Account(D, TM.LoadBaseCost);
      T.CycAt = CycNow();
      break;
    case Opcode::Store:
      T.Op = TOp::Store;
      Account(D, TM.StoreCost);
      Cum.Stores += 1;
      break;
    case Opcode::Prefetch:
      // Prefetch/SpecLoad call the memory system before their charge.
      T.Op = TOp::Prefetch;
      T.CycAt = CycNow();
      Account(D, TM.PrefetchCost);
      Cum.Prefetches += 1;
      break;
    case Opcode::SpecLoad:
      T.Op = TOp::SpecLoad;
      T.CycAt = CycNow();
      Account(D, TM.LoadBaseCost);
      Cum.SpecLoads += 1;
      break;
    case Opcode::ProfCounterInc:
      T.Op = TOp::ProfCounterInc;
      Cum.Insts += 1;
      Cum.InstrCyc += TM.CounterIncCost;
      Cum.CounterOps += 1;
      break;
    case Opcode::ProfCounterRead:
      T.Op = TOp::ProfCounterRead;
      Cum.Insts += 1;
      Cum.InstrCyc += TM.CounterReadCost;
      Cum.CounterOps += 1;
      break;
    case Opcode::ProfCounterAddTo:
      T.Op = TOp::ProfCounterAddTo;
      Cum.Insts += 1;
      Cum.InstrCyc += TM.CounterAddToCost;
      Cum.CounterOps += 1;
      break;
    case Opcode::ProfStride:
      // No static charge: the runtime's cost is charged live per event.
      T.Op = TOp::ProfStride;
      Account(D, 0);
      Cum.StrideTraps += 1;
      break;
    default:
      return false; // Jmp/Br/Call/Ret/Halt never reach EmitBase
    }
    Out.push_back(T);
    return true;
  };

  // One conditional branch at decoded PC \p BranchPC: consume the next
  // recorded direction, account the branch, and emit its Guard. The guard
  // taking the recorded direction back to the head closes the loop.
  auto EmitBranch = [&](const DInst &B, uint32_t BranchPC,
                        uint32_t &J) -> bool {
    if (BitsUsed >= PathLen)
      return false; // more branches than the signature recorded
    const unsigned Bit = (PathSig >> (PathLen - 1 - BitsUsed)) & 1;
    ++BitsUsed;
    const uint32_t Taken = Bit ? B.target0() : B.target1();
    const uint32_t Exit = Bit ? B.target1() : B.target0();
    Account(B, TM.DefaultCost);
    Cum.Branches += 1;
    TInst T;
    T.Op = TOp::Guard;
    T.IsInstr = B.IsInstrumentation;
    T.Expect = static_cast<uint8_t>(Bit);
    T.A = B.A; // condition slot (may differ from a fused compare's Dst)
    T.B = Exit;
    T.Aux = static_cast<uint32_t>(Guards.size());
    GuardInfo G;
    G.Prefix = Cum; // includes this branch's own count and charge
    G.ExitPC = Exit;
    if (Taken == HeadPC) {
      if (BitsUsed != PathLen)
        return false; // closed early: signature does not match this path
      G.IsLoopGuard = true;
      Guards.push_back(G);
      Out.push_back(T);
      Out.push_back(TInst{}); // TInst default-constructs as IterEnd
      Closed = true;
      return true;
    }
    if (Taken <= BranchPC)
      return false; // inner back-edge: not a single-loop path
    Guards.push_back(G);
    Out.push_back(T);
    J = Taken;
    return true;
  };

  uint32_t J = HeadPC;
  while (!Closed) {
    if (J < Fn.EntryPC || J >= FnEnd)
      return nullptr;
    if (Out.size() > Config.MaxOps || Cum.Insts > 2ull * Config.MaxOps)
      return nullptr;
    const DInst &D = Code[J];
    const uint8_t DOp = D.DOp;
    if (DOp >= static_cast<uint8_t>(FusedOp::MovMov)) {
      switch (static_cast<FusedOp>(DOp)) {
      case FusedOp::CmpNeBr:
      case FusedOp::CmpLtBr: {
        if (!EmitBase(D, D.Op))
          return nullptr;
        if (!EmitBranch(Code[J + 1], J + 1, J))
          return nullptr;
        break;
      }
      case FusedOp::CallInlined: {
        TInst T;
        T.Op = TOp::CallInlined;
        T.IsInstr = D.IsInstrumentation;
        T.A = D.A;          // inline window base slot
        T.B = D.argsBase(); // first argument index in argPool()
        T.C = D.C;          // callee register count
        T.Aux = D.NumArgs;
        Account(D, TM.CallCost);
        Cum.Calls += 1;
        Out.push_back(T);
        ++J;
        break;
      }
      case FusedOp::RetInlined: {
        TInst T;
        T.Op = TOp::RetInlined;
        T.IsInstr = D.IsInstrumentation;
        T.Dst = D.Dst;
        T.A = D.A;
        Account(D, TM.RetCost);
        Out.push_back(T);
        ++J;
        break;
      }
      case FusedOp::Predicated: {
        // Only the check methods' predicated stride trap is traceable: its
        // two outcomes differ by a register-free, statically-known cost
        // delta (squash charges PredicatedOffCost, the trap charges its
        // runtime cost live), so the static sums assume the trap runs and
        // the executor applies the squash delta dynamically. Any other
        // predicated op would make the static cycle prefixes data-
        // dependent, so it still ends the trace.
        if (D.Op != Opcode::ProfStride || !D.IsInstrumentation)
          return nullptr;
        TInst T;
        T.Op = TOp::ProfStridePred;
        T.IsInstr = true;
        T.A = D.A;
        T.C = D.Pred;
        T.SiteId = D.SiteId;
        T.Imm = D.Imm;
        Account(D, 0);
        Cum.StrideTraps += 1;
        Out.push_back(T);
        ++J;
        break;
      }
      default: {
        // ALU/Load pair: expand both halves (the trace re-fuses later,
        // possibly across the old block boundaries).
        if (!EmitBase(D, D.Op) || !EmitBase(Code[J + 1], Code[J + 1].Op))
          return nullptr;
        J += 2;
        break;
      }
      }
      continue;
    }
    switch (D.Op) {
    case Opcode::Jmp: {
      // Elided from dispatch: charge and tally fold into the static sums.
      Account(D, TM.DefaultCost);
      Cum.Branches += 1;
      const uint32_t T0 = D.target0();
      if (T0 == HeadPC) {
        if (BitsUsed != PathLen)
          return nullptr;
        Out.push_back(TInst{}); // IterEnd
        Closed = true;
      } else if (T0 <= J) {
        return nullptr; // inner back-edge
      } else {
        J = T0;
      }
      break;
    }
    case Opcode::Br:
      if (!EmitBranch(D, J, J))
        return nullptr;
      break;
    case Opcode::Call:
    case Opcode::Ret:
    case Opcode::Halt:
      return nullptr; // frame transitions / program exit end the trace
    default:
      if (!EmitBase(D, D.Op))
        return nullptr;
      ++J;
      break;
    }
  }

  if (Out.size() > Config.MaxOps + 1)
    return nullptr;

  // -- Inline-call specialization -----------------------------------------
  // CallInlined zeroes the whole callee window before copying arguments;
  // on a trace the window registers the region provably writes before
  // reading (or never reads at all) do not need the zero: decode
  // guarantees window registers are never touched outside their callee
  // body, so the skipped init is unobservable -- including by a later side
  // exit's state handoff. The must-zero set is computed per call over the
  // straight-line region up to the matching RetInlined and encoded as a
  // bitmask in the op's otherwise-unused Imm (Expect = 1 keeps the
  // zero-everything loop when the region has a guard -- an exit inside the
  // callee would hand the Decoded engine a window whose off-trace reads
  // this analysis cannot see -- or when the window exceeds 64 registers).
  // RetInlined is decomposed outright: a plain Mov of the return value
  // (free to re-fuse with its neighbours), or nothing when the value is
  // discarded; its charge already lives in the static sums.
  {
    const uint32_t *ArgPool = DP.argPool().data();
    // Register reads of one pre-fusion TInst; returns false for ops the
    // analysis does not model (ends the region conservatively).
    auto ForEachRead = [&](const TInst &T, auto &&Fn) -> bool {
      switch (T.Op) {
      case TOp::Mov:
      case TOp::Load:
      case TOp::Prefetch:
      case TOp::SpecLoad:
      case TOp::ProfStride:
      case TOp::ProfCounterAddTo:
        Fn(T.A);
        return true;
      case TOp::Add:
      case TOp::Sub:
      case TOp::Mul:
      case TOp::Shl:
      case TOp::Shr:
      case TOp::And:
      case TOp::Or:
      case TOp::Xor:
      case TOp::CmpEq:
      case TOp::CmpNe:
      case TOp::CmpLt:
      case TOp::CmpLe:
      case TOp::CmpGt:
      case TOp::CmpGe:
      case TOp::Store:
        Fn(T.A);
        Fn(T.B);
        return true;
      case TOp::Select:
        Fn(T.A);
        Fn(T.B);
        Fn(T.C);
        return true;
      case TOp::ProfStridePred:
        Fn(T.A);
        Fn(T.C);
        return true;
      case TOp::ProfCounterInc:
      case TOp::ProfCounterRead:
        return true;
      case TOp::RetInlined:
        if (T.Dst != NoReg)
          Fn(T.A);
        return true;
      case TOp::CallInlined:
        for (uint32_t A = 0; A != T.Aux; ++A)
          Fn(ArgPool[T.B + A]);
        return true;
      default:
        return false; // Guard / IterEnd end any call region
      }
    };
    auto WritesDst = [](const TInst &T) -> bool {
      switch (T.Op) {
      case TOp::Mov:
      case TOp::Add:
      case TOp::Sub:
      case TOp::Mul:
      case TOp::Shl:
      case TOp::Shr:
      case TOp::And:
      case TOp::Or:
      case TOp::Xor:
      case TOp::CmpEq:
      case TOp::CmpNe:
      case TOp::CmpLt:
      case TOp::CmpLe:
      case TOp::CmpGt:
      case TOp::CmpGe:
      case TOp::Select:
      case TOp::Load:
      case TOp::SpecLoad:
      case TOp::ProfCounterRead:
      case TOp::ProfCounterAddTo:
        return true;
      case TOp::RetInlined:
        return T.Dst != NoReg;
      default:
        return false;
      }
    };

    for (size_t I = 0; I != Out.size(); ++I) {
      TInst &C = Out[I];
      if (C.Op != TOp::CallInlined)
        continue;
      C.Expect = 1; // default: keep the zero-everything loop
      if (C.C > 64)
        continue;
      // An argument sourced from the window being zeroed reads 0 under the
      // generic op (zeroing precedes the copies); keep the generic order.
      bool ArgFromWindow = false;
      for (uint32_t A = 0; A != C.Aux; ++A) {
        const uint32_t Src = ArgPool[C.B + A];
        if (Src >= C.A && Src < C.A + C.C)
          ArgFromWindow = true;
      }
      if (ArgFromWindow)
        continue;
      const uint64_t All = C.C == 64 ? ~0ull : (1ull << C.C) - 1;
      // Argument slots occupy the low window registers and are written by
      // the call itself before the callee runs.
      uint64_t Written = C.Aux >= 64 ? All : ((1ull << C.Aux) - 1);
      uint64_t MustZero = 0;
      int Depth = 1;
      bool Safe = false;
      for (size_t J = I + 1; J != Out.size(); ++J) {
        const TInst &T = Out[J];
        const bool Ok = ForEachRead(T, [&](uint32_t R) {
          if (R >= C.A && R < C.A + C.C) {
            const uint64_t Bit = 1ull << (R - C.A);
            if (!(Written & Bit))
              MustZero |= Bit;
          }
        });
        if (!Ok)
          break;
        if (T.Op == TOp::CallInlined) {
          // The nested call (re)initializes its whole window at this op.
          ++Depth;
          for (uint32_t R = T.A; R != T.A + T.C; ++R)
            if (R >= C.A && R < C.A + C.C)
              Written |= 1ull << (R - C.A);
        } else {
          if (WritesDst(T) && T.Dst >= C.A && T.Dst < C.A + C.C)
            Written |= 1ull << (T.Dst - C.A);
          if (T.Op == TOp::RetInlined && --Depth == 0) {
            Safe = true;
            break;
          }
        }
      }
      if (!Safe)
        continue;
      C.Expect = 0;
      C.Imm = static_cast<int64_t>(MustZero);
    }

    std::vector<TInst> NOut;
    NOut.reserve(Out.size());
    for (const TInst &T : Out) {
      if (T.Op == TOp::RetInlined) {
        if (T.Dst == NoReg)
          continue;
        TInst M;
        M.Op = TOp::Mov;
        M.IsInstr = T.IsInstr;
        M.Dst = T.Dst;
        M.A = T.A;
        NOut.push_back(M);
        continue;
      }
      NOut.push_back(T);
    }
    Out = std::move(NOut);
  }

  // Re-fusion: greedy left-to-right longest match (quad, then triple, then
  // pair), mirroring the decode-time fusion encoding (leader's op rewritten
  // to the fused op; trailers stay in place, undispatched). Role: 0 =
  // single, 1 = leader, 2 = trailer.
  std::vector<uint8_t> Role(Out.size(), 0);
  auto Fuse = [&](size_t I, int Op, size_t Len) {
    Out[I].Op = static_cast<TOp>(Op);
    Role[I] = 1;
    for (size_t K = 1; K != Len; ++K)
      Role[I + K] = 2;
  };
  for (size_t I = 0; I < Out.size();) {
    if (I + 7 < Out.size()) {
      const int O = octOf(&Out[I]);
      if (O >= 0) {
        Fuse(I, O, 8);
        I += 8;
        continue;
      }
    }
    if (I + 5 < Out.size()) {
      const int H = hexOf(&Out[I]);
      if (H >= 0) {
        Fuse(I, H, 6);
        I += 6;
        continue;
      }
    }
    if (I + 3 < Out.size()) {
      const int Q = quadOf(Out[I].Op, Out[I + 1].Op, Out[I + 2].Op,
                           Out[I + 3].Op);
      if (Q >= 0) {
        Fuse(I, Q, 4);
        I += 4;
        continue;
      }
    }
    if (I + 2 < Out.size()) {
      const int T = tripleOf(Out[I].Op, Out[I + 1].Op, Out[I + 2].Op);
      if (T >= 0) {
        Fuse(I, T, 3);
        I += 3;
        continue;
      }
    }
    if (I + 1 < Out.size()) {
      const int P = pairOf(Out[I].Op, Out[I + 1].Op);
      if (P >= 0) {
        Fuse(I, P, 2);
        I += 2;
        continue;
      }
    }
    ++I;
  }

  // Immediate folding for the remaining singles: a constant-slot operand
  // (frame index in [NumRegs, NumSlots), pre-filled from the function's
  // constant pool and never written) becomes an Imm-variant op. ALU and
  // compare ops do not use TInst::Imm, so the field is free to carry the
  // folded value; memory ops keep their offset and are left alone.
  const int64_t *ConstPool = DP.constPool().data();
  auto IsConst = [&Fn](uint32_t Slot) {
    return Slot >= Fn.NumRegs && Slot < Fn.NumSlots;
  };
  auto ConstVal = [&](uint32_t Slot) {
    return ConstPool[Fn.ConstBase + (Slot - Fn.NumRegs)];
  };
  for (size_t I = 0; I != Out.size(); ++I) {
    if (Role[I] != 0)
      continue;
    TInst &T = Out[I];
    if (T.Op == TOp::Mov) {
      if (IsConst(T.A)) {
        T.Op = TOp::MovImm;
        T.Imm = ConstVal(T.A);
      }
      continue;
    }
    if (T.Op >= TOp::Add && T.Op <= TOp::CmpGe && IsConst(T.B)) {
      // Add..CmpGe are contiguous in both enums; shift into the Imm block.
      T.Op = static_cast<TOp>(static_cast<unsigned>(TOp::AddImm) +
                              (static_cast<unsigned>(T.Op) -
                               static_cast<unsigned>(TOp::Add)));
      T.Imm = ConstVal(T.B);
    }
  }

  auto TP = std::make_unique<TraceProgram>();
  TP->Id = Id;
  TP->HeadPC = HeadPC;
  TP->PathSig = PathSig;
  TP->PathLen = PathLen;
  TP->TMHash = hashTiming(TM);
  TP->Code = std::move(Out);
  TP->Guards = std::move(Guards);
  TP->IterTotal = Cum;
  return TP;
}

const char *const *sprof::traceTierSlotNames() {
  static const char *TraceNames[NumTraceSelfProfSlots] = {
      "trace:0",  "trace:1",  "trace:2",  "trace:3",
      "trace:4",  "trace:5",  "trace:6",  "trace:7",
      "trace:8",  "trace:9",  "trace:10", "trace:11",
      "trace:12", "trace:13", "trace:14", "trace:15"};
  static std::vector<const char *> Names = [] {
    std::vector<const char *> N(dispatchOpNames(),
                                dispatchOpNames() + NumDispatchOps);
    N.insert(N.end(), TraceNames, TraceNames + NumTraceSelfProfSlots);
    return N;
  }();
  return Names.data();
}
