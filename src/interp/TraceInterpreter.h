//===- interp/TraceInterpreter.h - Superblock trace executor ----*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a compiled TraceProgram. The Decoded engine calls run() when
/// its dispatch loop reaches an installed trace head; the executor loops
/// whole iterations of the superblock -- no per-op fuel check, count, or
/// cycle charge -- and returns the decoded PC to resume at (the head on a
/// fuel/sample stop, a guard's recorded side-exit target otherwise),
/// having advanced the engine's accounting exactly as the Decoded engine
/// would have for the same committed instruction prefix.
///
/// The tier boundary is a plain state struct: the Decoded engine's
/// register-resident hot locals are packed into TraceExecState on entry
/// and written back on exit. One pack/unpack per trace *entry* (thousands
/// of iterations), so the exchange cost is noise.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_TRACEINTERPRETER_H
#define SPROF_INTERP_TRACEINTERPRETER_H

#include "interp/Interpreter.h"
#include "interp/TraceProgram.h"

#include <cstdint>

namespace sprof {

class EngineSelfProfiler;

/// Long-lived execution context: the Decoded engine's attachments, valid
/// for the whole run (re-packed once per run, not per trace entry).
struct TraceExecContext {
  SimMemory *Memory = nullptr;
  MemoryHierarchy *Mem = nullptr;
  StrideProfiler *Profiler = nullptr;
  AccessSink *Sink = nullptr;
  EngineSelfProfiler *SelfProf = nullptr;
  uint64_t *Counters = nullptr;
  const uint32_t *ArgPool = nullptr;
  TimingModel TM;
};

/// The engine's hot-loop state exchanged across the tier boundary. The
/// four cycle accumulators keep the Now ≡ BaseCyc + InstrCyc + MemStall +
/// RuntimeCyc invariant; Ring/RingN continue the engine's stride-event
/// batch in place so drains straddle the tier boundary bit-identically.
struct TraceExecState {
  int64_t *Regs = nullptr;
  uint64_t *SiteCounts = nullptr;
  StrideEvent *Ring = nullptr;
  uint32_t RingN = 0;
  uint32_t RingCap = 0;
  uint64_t NInsts = 0;
  uint64_t LoadRefs = 0;
  uint64_t BaseCyc = 0;
  uint64_t InstrCyc = 0;
  uint64_t MemStall = 0;
  uint64_t RuntimeCyc = 0;
  /// Fuel/sample stop point (min of fuel limit and next sample point);
  /// run() may re-arm it after taking an on-trace sample.
  uint64_t NextStop = 0;
  uint64_t MaxInstructions = 0;
  uint64_t SPWindow = 1;
  /// Frames.size() at entry (constant on-trace: inlined calls push no
  /// frame); feeds the idempotent MaxDepth tally when the committed
  /// portion contains a CallInlined.
  uint32_t FrameDepth = 1;
};

/// Stateless executor (all state lives in the argument structs, so one
/// instance-free entry point serves every trace of every interpreter).
class TraceInterpreter {
public:
  /// Runs trace iterations until a guard disagrees with the recorded
  /// path, fuel/sampling requires per-instruction dispatch, or the loop
  /// exits; returns the decoded PC to resume at. \p RT accumulates the
  /// trace's host-side runtime counters.
  template <bool HasMem>
  static uint32_t run(const TraceProgram &TP, TraceRuntime &RT,
                      const TraceExecContext &Ctx, TraceExecState &S,
                      ExecTally &Tally);
};

extern template uint32_t
TraceInterpreter::run<false>(const TraceProgram &, TraceRuntime &,
                             const TraceExecContext &, TraceExecState &,
                             ExecTally &);
extern template uint32_t
TraceInterpreter::run<true>(const TraceProgram &, TraceRuntime &,
                            const TraceExecContext &, TraceExecState &,
                            ExecTally &);

} // namespace sprof

#endif // SPROF_INTERP_TRACEINTERPRETER_H
