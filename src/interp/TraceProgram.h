//===- interp/TraceProgram.h - Compiled hot-trace superblocks ---*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace tier's program representation: one hot loop path, compiled
/// into a flat straight-line superblock the TraceInterpreter executes one
/// whole iteration at a time. A trace is selected by the TraceSelector
/// from a cross-iteration path signature (the Ball-Larus-style branch
/// direction word the Decoded engine's trace-monitoring dispatch records
/// between back-edges) and reconstructed statically by re-walking the
/// DecodedProgram from the loop head while consuming the signature bits,
/// so no recording mode or engine state capture is needed.
///
/// Specialization applied at compile time:
///
///   * conditional branches become Guard stubs: a compare against the
///     recorded direction that side-exits back to the Decoded engine at
///     the exact not-taken target, with precomputed prefix sums of every
///     statically-known accounting column (instructions, cycle buckets,
///     opcode tallies) so the handoff is bit-identical to having executed
///     the same prefix instruction by instruction;
///   * unconditional jumps are elided from dispatch entirely (their cycle
///     charge and branch tally fold into the static per-iteration sums);
///   * the per-dispatch fuel/sample check is hoisted to one conservative
///     per-iteration check, and predicate tests are gone (predicated code
///     aborts trace formation);
///   * operands reading constant slots are folded into immediate-operand
///     superblock ops (the decode-time constant pool is per function and
///     never written, so folding is safe across frames);
///   * adjacent ALU/Load ops re-fuse into pair superinstructions across
///     the original basic-block boundaries the Decoded engine's fusion
///     pass could not cross;
///   * decode-time host-prefetch hints (DInst::PrefetchDst) are preserved
///     on the corresponding trace ops.
///
/// Accounting contract: executing N committed iterations plus one partial
/// prefix through a trace yields byte-identical RunStats, profiles, memsys
/// traffic, and telemetry tallies to the Reference engine running the same
/// instructions (tests/test_trace.cpp is the differential gate).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_TRACEPROGRAM_H
#define SPROF_INTERP_TRACEPROGRAM_H

#include "interp/DecodedProgram.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace sprof {

/// Trace-op dispatch set. The straight-line ops mirror their Opcode
/// namesakes minus all per-dispatch bookkeeping (fuel check, instruction
/// count, cycle charge, tally) -- that is statically summed per iteration
/// and per guard prefix. Imm variants carry a folded constant operand in
/// TInst::Imm; pair ops execute the following (undispatched) TInst as
/// their second half, exactly like the Decoded engine's FusedOp encoding.
enum class TOp : uint8_t {
  Mov,
  Add,
  Sub,
  Mul,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Select,
  Load,
  Store,
  Prefetch,
  SpecLoad,
  CallInlined,
  RetInlined,
  ProfCounterInc,
  ProfCounterRead,
  ProfCounterAddTo,
  ProfStride,
  // Constant-slot operand folded into TInst::Imm (B side; Mov folds A).
  MovImm,
  AddImm,
  SubImm,
  MulImm,
  ShlImm,
  ShrImm,
  AndImm,
  OrImm,
  XorImm,
  CmpEqImm,
  CmpNeImm,
  CmpLtImm,
  CmpLeImm,
  CmpGtImm,
  CmpGeImm,
  // Control: Guard side-exits when the condition disagrees with the
  // recorded direction; IterEnd commits the iteration and loops.
  Guard,
  IterEnd,
  // Re-fused pairs (trace-local fusion, may cross old block boundaries).
  MovMov,
  AddAdd,
  AddShl,
  AddXor,
  ShlAdd,
  ShlXor,
  ShrXor,
  AndShl,
  XorShl,
  XorShr,
  XorAnd,
  AddLoad,
  AndLoad,
  LoadAdd,
  LoadAnd,
  LoadXor,
  LoadShl,
  LoadLoad,
  CmpNeGuard,
  CmpLtGuard,
  /// The check methods' predicated stride trap (paper Figure 14: the
  /// trip-count predicate squashes profiling past the threshold). Both
  /// predicate outcomes have statically-known cost, so the trace stays
  /// O(1)-accountable: the static sums assume the trap runs, and the
  /// squashed case applies the off-minus-on delta live (TInst::C holds
  /// the predicate slot).
  ProfStridePred,
  // Longest-match re-fused triples and quads: the hottest 3- and 4-op
  // dispatch chains measured on the compute-bound workloads (hash and
  // scramble kernels pattern-match to the same few ALU/Load runs). Same
  // encoding as the pairs -- trailers stay in place, undispatched.
  MovAddAdd,
  AddLoadAdd,
  LoadLoadAdd,
  AndShlAddLoad,
  ShlXorShrXor,
  ShrXorShlXor,
  LoadXorShlXor,
  AddXorShlAdd,
  ShlXorAndShl,
  AddLoadAddXor,
  AddLoadAddLoad,
  LoadLoadAddMov,
  // Guard-headed and boundary fusions: the iteration's first dispatch
  // (compare+guard plus the ALU/Load run that follows it) and its last
  // (the closing ALU ops plus the iteration commit) collapse into one
  // handler each, and the longest measured straight ALU run gets a
  // single dispatch. The hot hash loops then run in ~6 dispatches per
  // iteration.
  AddAddIterEnd,
  MovAddAddIterEnd,
  CmpNeGuardLoadXorShlXor,
  CmpNeGuardShlXorShrXor,
  AndShlAddLoadAddXorShlAdd,
};

/// Number of trace dispatch ops (one executor handler each).
constexpr unsigned NumTraceOps =
    static_cast<unsigned>(TOp::AndShlAddLoadAddXorShlAdd) + 1;

/// One superblock instruction. Operands are frame-slot indices into the
/// live register window (the trace runs inside the Decoded engine's
/// current frame), except where an Imm variant folded the value.
struct TInst {
  TOp Op = TOp::IterEnd;
  /// Attribution bucket of the original instruction (informational; the
  /// cycle charge itself is folded into the static sums).
  bool IsInstr = false;
  /// Guard: the branch direction that keeps execution on the trace.
  uint8_t Expect = 0;
  /// Decode-time host-prefetch hint carried over from DInst::PrefetchDst.
  uint8_t PrefetchDst = 0;
  uint32_t Dst = NoReg;
  uint32_t A = 0;
  uint32_t B = 0; ///< Guard: decoded side-exit PC
  uint32_t C = 0; ///< CallInlined: callee register count;
                  ///< ProfStridePred: qualifying-predicate slot
  uint32_t SiteId = NoId;
  uint32_t Aux = 0; ///< Guard: guard index; CallInlined: NumArgs
  /// Base+instrumentation cycles accumulated from iteration start to this
  /// op's memory-system call point (Load: after its own base cost;
  /// Prefetch/SpecLoad: before it), so SPROF_NOW() is reproduced exactly
  /// without charging cycles per op.
  uint64_t CycAt = 0;
  int64_t Imm = 0; ///< memory offset / counter id / folded constant
};

/// Statically-known accounting columns of a trace prefix or of one full
/// iteration. Everything here is a pure function of the instruction
/// sequence, so it is summed once at compile time and applied in O(1) at
/// guard side-exits and iteration commits.
struct TraceCounts {
  uint64_t Insts = 0;
  uint64_t BaseCyc = 0;
  uint64_t InstrCyc = 0;
  uint64_t Branches = 0;
  uint64_t Stores = 0;
  uint64_t Prefetches = 0;
  uint64_t SpecLoads = 0;
  uint64_t Calls = 0;
  uint64_t CounterOps = 0;
  uint64_t StrideTraps = 0;
};

/// One guard's side-exit metadata: the accounting prefix up to and
/// including the guard's own branch charge, and where the Decoded engine
/// resumes when the guard fails.
struct GuardInfo {
  TraceCounts Prefix;
  uint32_t ExitPC = 0;
  /// The loop-closing guard: its failure is the loop's normal exit, not a
  /// mispredicted path (reported separately from side exits).
  bool IsLoopGuard = false;
};

/// Trace-selection and compilation knobs (mirrored from
/// InterpreterConfig so the selector has no Interpreter dependency).
struct TraceTierConfig {
  /// Back-edge executions of a loop head before path monitoring starts.
  uint32_t HotThreshold = 64;
  /// Consecutive identical path signatures before the trace compiles.
  uint32_t PathThreshold = 8;
  /// Superblock length cap (emitted trace ops).
  uint32_t MaxOps = 512;
  /// Trace entries before the invalidation ratio is consulted.
  uint32_t InvalidateMinEntries = 64;
  /// Invalidate when committed iterations * 16 < entries * this (i.e. the
  /// average on-trace iterations per entry fell below the ratio / 16).
  uint32_t InvalidateMinAvgItersX16 = 32;
  /// Compile attempts (aborts or invalidations) per head before the head
  /// is blacklisted for the rest of the run.
  uint32_t MaxCompilesPerHead = 4;
};

/// A compiled hot-trace superblock. Immutable after compilation (runtime
/// counters live in the selector), so one trace can be shared across
/// interpreter instances and threads via the program cache.
class TraceProgram {
public:
  uint32_t id() const { return Id; }
  uint32_t headPC() const { return HeadPC; }
  uint64_t pathSig() const { return PathSig; }
  uint32_t pathLen() const { return PathLen; }
  /// Fingerprint of the TimingModel the static cycle sums were baked
  /// against; a cached trace is only adopted under a matching model.
  uint64_t timingHash() const { return TMHash; }

  const std::vector<TInst> &code() const { return Code; }
  const std::vector<GuardInfo> &guards() const { return Guards; }
  const TraceCounts &iterTotal() const { return IterTotal; }

  /// Compiles the superblock for the path that starts at decoded
  /// instruction \p HeadPC and follows the \p PathLen conditional-branch
  /// directions in \p PathSig (most significant of the low PathLen bits
  /// first) back to the head. Returns nullptr when the path cannot be
  /// traced (real call/ret/halt, predicated op, inner back-edge, length
  /// cap, or a signature that does not close the loop).
  static std::unique_ptr<TraceProgram>
  compile(const DecodedProgram &DP, const struct TimingModel &TM,
          uint32_t HeadPC, uint64_t PathSig, uint32_t PathLen,
          const TraceTierConfig &Config, uint32_t Id);

  /// The TimingModel fingerprint compile() bakes in (exposed so adopters
  /// can match without recompiling).
  static uint64_t hashTiming(const struct TimingModel &TM);

private:
  uint32_t Id = 0;
  uint32_t HeadPC = 0;
  uint64_t PathSig = 0;
  uint32_t PathLen = 0;
  uint64_t TMHash = 0;
  std::vector<TInst> Code;
  std::vector<GuardInfo> Guards;
  TraceCounts IterTotal;
};

/// Host-side runtime counters of one installed trace (owned by the
/// selector, not the immutable TraceProgram).
struct TraceRuntime {
  uint64_t Entries = 0;
  uint64_t Iterations = 0;
  uint64_t SideExits = 0;
  uint64_t LoopExits = 0;
  uint64_t FuelExits = 0;
  uint64_t OnTraceInsts = 0;
  uint64_t OnTraceRefs = 0;
  std::vector<uint64_t> GuardExits; ///< indexed by guard index
  bool Invalidated = false;
};

/// Host-side trace-tier accounting surfaced next to (never inside) the
/// bit-identical simulated RunStats: run reports render it as the
/// "trace_tier" section and the bench compare harness derives the
/// side-exit rate from it.
struct TraceTierStats {
  bool Enabled = false;
  uint64_t TracesCompiled = 0;
  uint64_t TracesAdopted = 0; ///< reused from the shared program cache
  uint64_t CompileAborts = 0;
  uint64_t Invalidations = 0;
  uint64_t Entries = 0;
  uint64_t Iterations = 0;
  uint64_t SideExits = 0;
  uint64_t LoopExits = 0;
  uint64_t FuelExits = 0;
  uint64_t OnTraceInsts = 0;
  uint64_t OnTraceRefs = 0;

  /// Per-trace breakdown for the report (id, head, shape, exit mix).
  struct PerTrace {
    uint32_t Id = 0;
    uint32_t HeadPC = 0;
    uint32_t NumOps = 0;
    uint32_t NumGuards = 0;
    uint64_t Entries = 0;
    uint64_t Iterations = 0;
    uint64_t SideExits = 0;
    uint64_t LoopExits = 0;
    uint64_t FuelExits = 0;
    std::vector<uint64_t> GuardExits;
    bool Invalidated = false;
  };
  std::vector<PerTrace> Traces;
};

/// Self-profiler slot-name table for the trace tier: the Decoded engine's
/// dispatch-op names followed by "trace:<n>" frames (traces hash into
/// NumTraceSelfProfSlots slots). Static storage, safe to hand to
/// EngineSelfProfiler::configureSlots.
constexpr unsigned NumTraceSelfProfSlots = 16;
const char *const *traceTierSlotNames();

} // namespace sprof

#endif // SPROF_INTERP_TRACEPROGRAM_H
