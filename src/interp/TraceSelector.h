//===- interp/TraceSelector.h - Hot-trace selection/installation -*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace tier's policy engine. The Decoded engine's trace-monitoring
/// dispatch calls onBackEdge() at every backward branch with the loop
/// head's PC and the Ball-Larus-style path signature accumulated since the
/// previous back-edge (one direction bit per conditional, first branch in
/// the most significant recorded bit -- the cross-iteration extension of
/// path profiling: consecutive identical signatures mean the loop is
/// replaying one acyclic path per iteration). The selector warms a per-head
/// hotness counter, then monitors the signature with a last-value
/// predictor; PathThreshold consecutive identical paths trigger
/// compilation and installation. Installed traces are re-checked with a
/// windowed entries-vs-iterations ratio and invalidated when the path
/// stops paying (hotness flipped); repeated compile attempts or
/// invalidations blacklist the head.
///
/// A TraceBank (owned by the ProgramCache entry of the decoded program)
/// lets selectors in different Interpreter instances -- e.g. parallel
/// ExperimentEngine jobs over one workload -- adopt each other's compiled
/// traces instead of recompiling, keyed by (head, signature, length,
/// timing-model fingerprint).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_TRACESELECTOR_H
#define SPROF_INTERP_TRACESELECTOR_H

#include "interp/Interpreter.h"
#include "interp/TraceProgram.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sprof {

/// Thread-safe shared pool of compiled traces for one decoded program.
/// TraceProgram is immutable, so sharing across threads is safe; runtime
/// counters stay per-selector.
class TraceBank {
public:
  std::shared_ptr<const TraceProgram> find(uint32_t HeadPC, uint64_t PathSig,
                                           uint32_t PathLen, uint64_t TMHash);
  void add(const std::shared_ptr<const TraceProgram> &TP);
  size_t size() const;

private:
  mutable std::mutex Mu;
  std::vector<std::shared_ptr<const TraceProgram>> Entries;
};

/// Per-Interpreter trace selection state (not thread-safe; each engine
/// owns one). See the file comment for the selection policy.
class TraceSelector {
public:
  TraceSelector(const DecodedProgram &DP, const TimingModel &TM,
                const TraceTierConfig &Config, TraceBank *Bank = nullptr);

  /// The engine's one hook: called at every backward branch with the
  /// back-edge target and the path signature since the previous back-edge.
  /// Returns the installed trace to enter (with \p RT pointing at its
  /// runtime counters), or nullptr to continue decoded execution.
  const TraceProgram *onBackEdge(uint32_t HeadPC, uint64_t PathSig,
                                 uint32_t PathLen, TraceRuntime *&RT);

  /// Cumulative tier statistics (selection, per-trace exits) for reports.
  TraceTierStats stats() const;

  const TraceTierConfig &config() const { return Config; }

private:
  void tryInstall(uint32_t HeadPC, uint64_t PathSig, uint32_t PathLen);
  void invalidate(uint32_t HeadPC, size_t SlotIdx);

  /// Last-value path predictor for one hot head. Count == 0 marks an
  /// empty/reset monitor.
  struct Monitor {
    uint64_t Sig = 0;
    uint32_t Len = 0;
    uint32_t Count = 0;
  };
  /// One installed (or formerly installed) trace with its live counters
  /// and the snapshot the windowed invalidation ratio is taken against.
  struct Slot {
    std::shared_ptr<const TraceProgram> TP;
    TraceRuntime RT;
    uint64_t CheckEntries = 0;
    uint64_t CheckIterations = 0;
    bool Adopted = false;
  };

  const DecodedProgram &DP;
  TimingModel TM;
  uint64_t TMHash;
  TraceTierConfig Config;
  TraceBank *Bank;

  // Per-PC policy state, O(1) on the back-edge fast path.
  std::vector<uint32_t> HeadHeat;
  std::vector<int32_t> InstalledIdx; ///< index into Slots, -1 when none
  std::vector<uint8_t> Blacklisted;
  std::vector<uint8_t> Attempts; ///< install attempts (compiles + adopts)

  std::unordered_map<uint32_t, Monitor> Monitors;
  std::vector<Slot> Slots;

  uint64_t Compiled = 0;
  uint64_t Adopted = 0;
  uint64_t Aborts = 0;
  uint64_t Invalidations = 0;
  uint32_t NextId = 0;
};

} // namespace sprof

#endif // SPROF_INTERP_TRACESELECTOR_H
