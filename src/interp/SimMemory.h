//===- interp/SimMemory.h - Sparse simulated memory -------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse 64-bit byte-addressable memory for the interpreter, plus the
/// bump allocator the synthetic workloads use to lay out their data. The
/// bump allocator is the stand-in for the "program maintains its own memory
/// allocation" behaviour (paper Section 1) that creates stride patterns in
/// pointer-chasing code: objects allocated in traversal order produce
/// constant strides, and controlled amounts of out-of-order allocation
/// produce the paper's 94%/29%/48%-style stride mixes.
///
/// Page lookup is the single hottest operation of a simulated run (every
/// Load/Store/SpecLoad pays it), so translation is served by a two-level
/// software TLB in front of the page map: a last-page pointer (hit by the
/// streaming/pointer-chasing access patterns the paper studies) backed by a
/// small direct-mapped translation table. Only mapped pages are cached;
/// page-data pointers stay valid while the memory object is alive because
/// pages are carved from append-only slabs and never removed, so the cache
/// needs invalidation only on copy/move (the page map is cloned or
/// abandoned wholesale).
///
/// Page storage is slab-pooled rather than one heap allocation per page:
/// pages are carved in order from 2 MB slabs that are aligned to their own
/// size and (on Linux) advised MADV_HUGEPAGE. Randomly-indexed multi-MB
/// tables -- the workloads' "unprefetchable" access patterns -- then touch
/// a handful of host huge pages instead of thousands of scattered 4 KB
/// pages, which takes host-dTLB misses out of the simulated-load path for
/// both execution engines.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_SIMMEMORY_H
#define SPROF_INTERP_SIMMEMORY_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace sprof {

/// Sparse paged memory. Reads of unmapped pages return zero without
/// allocating; writes allocate. Copyable so that every experiment run can
/// start from the same initial image.
class SimMemory {
public:
  static constexpr unsigned PageShift = 16;
  static constexpr uint64_t PageBytes = 1ull << PageShift;

  SimMemory() = default;
  SimMemory(const SimMemory &Other) { copyPagesFrom(Other); }
  SimMemory(SimMemory &&Other) noexcept
      : Pages(std::move(Other.Pages)), Slabs(std::move(Other.Slabs)),
        SlabFill(Other.SlabFill) {
    // The moved-from map no longer owns the cached pages; a stale write
    // through Other's cache would corrupt this object's image.
    Other.SlabFill = PagesPerSlab;
    Other.resetTranslationCache();
  }
  SimMemory &operator=(const SimMemory &Other) {
    if (this != &Other) {
      Pages.clear();
      Slabs.clear();
      SlabFill = PagesPerSlab;
      copyPagesFrom(Other);
      resetTranslationCache();
    }
    return *this;
  }
  SimMemory &operator=(SimMemory &&Other) noexcept {
    if (this != &Other) {
      Pages = std::move(Other.Pages);
      Slabs = std::move(Other.Slabs);
      SlabFill = Other.SlabFill;
      Other.SlabFill = PagesPerSlab;
      resetTranslationCache();
      Other.resetTranslationCache();
    }
    return *this;
  }

  int64_t read64(uint64_t Addr) const {
    const uint8_t *P = translate(Addr);
    if (!P)
      return 0;
    int64_t V;
    std::memcpy(&V, P + (Addr & (PageBytes - 1)), sizeof(V));
    return V;
  }

  void write64(uint64_t Addr, int64_t Value) {
    uint8_t *P = translateForWrite(Addr);
    std::memcpy(P + (Addr & (PageBytes - 1)), &Value, sizeof(Value));
  }

  /// Issues a host-CPU prefetch for the backing storage of \p Addr, if it
  /// is mapped. Purely a host-latency hint: no simulated state changes, so
  /// callers can issue it speculatively for values that look like future
  /// load addresses. (Warming the translation cache is also free -- the
  /// cache is semantically invisible.)
  void prefetchHost(uint64_t Addr) const {
    const uint8_t *P = translate(Addr);
#if defined(__GNUC__) || defined(__clang__)
    if (P)
      __builtin_prefetch(P + (Addr & (PageBytes - 1)));
#else
    (void)P;
#endif
  }

  /// Number of mapped pages (for tests).
  size_t numPages() const { return Pages.size(); }

private:
  /// Direct-mapped translation table size; a power of two. 512 entries
  /// cover 32 MB of simulated address space: the largest randomly-indexed
  /// tables the workloads allocate (8 MB, 128 pages) fit with room to
  /// spare, so the table almost never falls through to the page map. The
  /// table itself is 8 KB -- small enough to stay cache-resident.
  static constexpr size_t TlbSize = 512;

  struct TlbEntry {
    uint64_t Base = ~0ull; ///< page index; ~0 is unreachable (addr >> 16)
    uint8_t *Data = nullptr;
  };

  const uint8_t *translate(uint64_t Addr) const {
    uint64_t Base = Addr >> PageShift;
    if (Base == LastBase)
      return LastData;
    const TlbEntry &E = Tlb[Base & (TlbSize - 1)];
    if (E.Base == Base) {
      LastBase = Base;
      LastData = E.Data;
      return E.Data;
    }
    return translateSlow(Addr);
  }

  const uint8_t *translateSlow(uint64_t Addr) const {
    uint64_t Base = Addr >> PageShift;
    auto It = Pages.find(Base);
    if (It == Pages.end())
      return nullptr; // unmapped reads stay uncached until a write maps them
    insertTranslation(Base, It->second);
    return It->second;
  }

  uint8_t *translateForWrite(uint64_t Addr) {
    uint64_t Base = Addr >> PageShift;
    if (Base == LastBase)
      return LastData;
    TlbEntry &E = Tlb[Base & (TlbSize - 1)];
    if (E.Base == Base) {
      LastBase = Base;
      LastData = E.Data;
      return E.Data;
    }
    auto It = Pages.find(Base);
    if (It == Pages.end())
      It = Pages.emplace(Base, allocPage()).first;
    insertTranslation(Base, It->second);
    return It->second;
  }

  /// Hands out the next zeroed page from the slab pool, growing the pool by
  /// one slab when the current one is exhausted. Slabs are aligned to their
  /// own size so the kernel can back them with transparent huge pages, and
  /// are zeroed (and thereby faulted in) up front.
  uint8_t *allocPage() {
    if (SlabFill == PagesPerSlab) {
      auto *Raw = static_cast<uint8_t *>(
          ::operator new(SlabBytes, std::align_val_t(SlabBytes)));
#if defined(__linux__)
      ::madvise(Raw, SlabBytes, MADV_HUGEPAGE);
#endif
      std::memset(Raw, 0, SlabBytes);
      Slabs.emplace_back(Raw);
      SlabFill = 0;
    }
    return Slabs.back().get() + uint64_t(SlabFill++) * PageBytes;
  }

  void copyPagesFrom(const SimMemory &Other) {
    Pages.reserve(Other.Pages.size());
    for (const auto &[Base, Data] : Other.Pages) {
      uint8_t *P = allocPage();
      std::memcpy(P, Data, PageBytes);
      Pages.emplace(Base, P);
    }
  }

  void insertTranslation(uint64_t Base, uint8_t *Data) const {
    TlbEntry &E = Tlb[Base & (TlbSize - 1)];
    E.Base = Base;
    E.Data = Data;
    LastBase = Base;
    LastData = Data;
  }

  void resetTranslationCache() {
    for (TlbEntry &E : Tlb)
      E = TlbEntry();
    LastBase = ~0ull;
    LastData = nullptr;
  }

  static constexpr uint64_t SlabBytes = 2ull << 20; ///< one THP-sized slab
  static constexpr unsigned PagesPerSlab = SlabBytes / PageBytes;

  struct SlabDeleter {
    void operator()(uint8_t *P) const {
      ::operator delete(P, std::align_val_t(SlabBytes));
    }
  };

  std::unordered_map<uint64_t, uint8_t *> Pages;
  std::vector<std::unique_ptr<uint8_t[], SlabDeleter>> Slabs;
  unsigned SlabFill = PagesPerSlab; ///< pages carved from the last slab

  // Translation cache; mutable because reads warm it. Never copied: a
  // copied/moved-into memory starts cold (pointers would alias or dangle).
  mutable TlbEntry Tlb[TlbSize];
  mutable uint64_t LastBase = ~0ull;
  mutable uint8_t *LastData = nullptr;
};

/// Sequential ("program-owned") allocator over SimMemory address space.
/// Does not touch memory; it only hands out addresses.
class BumpAllocator {
public:
  explicit BumpAllocator(uint64_t Base = 0x10000000ull) : Next(Base) {}

  /// Allocates \p Bytes with the given alignment and returns the address.
  uint64_t alloc(uint64_t Bytes, uint64_t Align = 8) {
    Next = (Next + Align - 1) & ~(Align - 1);
    uint64_t Result = Next;
    Next += Bytes;
    return Result;
  }

  /// Wastes \p Bytes of address space, emulating allocation of unrelated
  /// objects between two allocations (this is what breaks perfect strides).
  void skip(uint64_t Bytes) { Next += Bytes; }

  uint64_t next() const { return Next; }

private:
  uint64_t Next;
};

} // namespace sprof

#endif // SPROF_INTERP_SIMMEMORY_H
