//===- interp/SimMemory.h - Sparse simulated memory -------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse 64-bit byte-addressable memory for the interpreter, plus the
/// bump allocator the synthetic workloads use to lay out their data. The
/// bump allocator is the stand-in for the "program maintains its own memory
/// allocation" behaviour (paper Section 1) that creates stride patterns in
/// pointer-chasing code: objects allocated in traversal order produce
/// constant strides, and controlled amounts of out-of-order allocation
/// produce the paper's 94%/29%/48%-style stride mixes.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_SIMMEMORY_H
#define SPROF_INTERP_SIMMEMORY_H

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace sprof {

/// Sparse paged memory. Reads of unmapped pages return zero without
/// allocating; writes allocate. Copyable so that every experiment run can
/// start from the same initial image.
class SimMemory {
public:
  static constexpr uint64_t PageBytes = 1 << 16;

  int64_t read64(uint64_t Addr) const {
    const uint8_t *P = pageFor(Addr);
    if (!P)
      return 0;
    int64_t V;
    std::memcpy(&V, P + (Addr & (PageBytes - 1)), sizeof(V));
    return V;
  }

  void write64(uint64_t Addr, int64_t Value) {
    uint8_t *P = pageForWrite(Addr);
    std::memcpy(P + (Addr & (PageBytes - 1)), &Value, sizeof(Value));
  }

  /// Number of mapped pages (for tests).
  size_t numPages() const { return Pages.size(); }

private:
  const uint8_t *pageFor(uint64_t Addr) const {
    uint64_t Base = Addr / PageBytes;
    auto It = Pages.find(Base);
    return It == Pages.end() ? nullptr : It->second.data();
  }

  uint8_t *pageForWrite(uint64_t Addr) {
    uint64_t Base = Addr / PageBytes;
    auto It = Pages.find(Base);
    if (It == Pages.end())
      It = Pages.emplace(Base, std::vector<uint8_t>(PageBytes, 0)).first;
    return It->second.data();
  }

  std::unordered_map<uint64_t, std::vector<uint8_t>> Pages;
};

/// Sequential ("program-owned") allocator over SimMemory address space.
/// Does not touch memory; it only hands out addresses.
class BumpAllocator {
public:
  explicit BumpAllocator(uint64_t Base = 0x10000000ull) : Next(Base) {}

  /// Allocates \p Bytes with the given alignment and returns the address.
  uint64_t alloc(uint64_t Bytes, uint64_t Align = 8) {
    Next = (Next + Align - 1) & ~(Align - 1);
    uint64_t Result = Next;
    Next += Bytes;
    return Result;
  }

  /// Wastes \p Bytes of address space, emulating allocation of unrelated
  /// objects between two allocations (this is what breaks perfect strides).
  void skip(uint64_t Bytes) { Next += Bytes; }

  uint64_t next() const { return Next; }

private:
  uint64_t Next;
};

} // namespace sprof

#endif // SPROF_INTERP_SIMMEMORY_H
