//===- interp/Interpreter.h - IR interpreter with cycle timing -*- C++ -*-===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a Module against a SimMemory image and charges cycles through a
/// simple in-order timing model backed by the MemoryHierarchy. Cycle costs
/// are split into buckets (base work, memory stalls, instrumentation
/// instructions, profiling-runtime work) so the benches can reproduce the
/// paper's speedup (Figure 16) and profiling-overhead (Figure 20) ratios.
///
/// Three execution engines back run(), selectable via
/// InterpreterConfig::Engine and cycle-accounting-identical by contract
/// (enforced by tests/test_decoded.cpp and tests/test_trace.cpp):
///
///   * Reference walks the Module structures directly -- the simple,
///     obviously-correct loop;
///   * Decoded (the default) runs a pre-decoded flat instruction stream
///     (DecodedProgram) on a threaded-dispatch core with a reusable
///     frame/register pool (DecodedInterpreter); same simulated cycles,
///     several times faster in wall-clock (docs/PERFORMANCE.md);
///   * Trace layers a trace-JIT tier on Decoded: backward branches feed
///     cross-iteration path profiles to a TraceSelector, and hot stable
///     paths are compiled into specialized superblocks (TraceProgram)
///     executed by TraceInterpreter, with guard side-exits handing exact
///     state back to the decoded core.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INTERP_INTERPRETER_H
#define SPROF_INTERP_INTERPRETER_H

#include "interp/SimMemory.h"
#include "interp/TraceProgram.h"
#include "ir/Module.h"
#include "memsys/Cache.h"
#include "profile/StrideProfiler.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace sprof {

class ObsSession;
class Counter;
class Gauge;
class Histogram;
class EngineSelfProfiler;
class DecodedInterpreter;
class TraceSelector;
class TraceBank;

/// Per-opcode-class cycle costs of the in-order pipeline.
struct TimingModel {
  uint32_t DefaultCost = 1;     ///< ALU, moves, compares, branches
  uint32_t MulCost = 3;         ///< integer multiply
  uint32_t LoadBaseCost = 1;    ///< issue slot of a load (stall is extra)
  uint32_t StoreCost = 1;       ///< stores retire through a write buffer
  uint32_t PrefetchCost = 1;    ///< issue slot of a prefetch
  uint32_t CallCost = 2;        ///< call + frame setup
  uint32_t RetCost = 1;
  uint32_t CounterIncCost = 3;  ///< load+increment+store (Figure 14)
  uint32_t CounterReadCost = 1;
  uint32_t CounterAddToCost = 2;
  uint32_t PredicatedOffCost = 1; ///< predicated-off slots still issue
  /// Latency assumed for loads when no MemoryHierarchy is attached.
  uint32_t FlatLoadLatency = 2;
};

/// Engine selection and future execution-core knobs.
struct InterpreterConfig {
  /// Which execution core run() uses. All produce bit-identical RunStats,
  /// profiles, and telemetry; Reference exists as the differential-testing
  /// baseline and for debugging the Decoded core; Trace adds the hot-trace
  /// superblock tier on top of Decoded.
  enum class Engine { Reference, Decoded, Trace };

  Engine Exec = Engine::Decoded;

  /// Trace-tier thresholds and limits (Engine::Trace only).
  TraceTierConfig Trace;

  /// Obtain the decoded program (and, for Engine::Trace, the shared trace
  /// bank) from the process-wide content-keyed ProgramCache, so repeated
  /// runs of structurally identical modules -- Pipeline::speedup
  /// repetitions, baseline/prefetched pairs, parallel ExperimentEngine
  /// jobs -- decode once and share compiled traces. Off decodes privately.
  bool ShareProgramCache = true;

  /// Capacity of the Decoded engine's stride-event ring: ProfStride traps
  /// queue (site, address, global-ref-index) records and drain them in
  /// blocks through StrideProfiler::profileBatch instead of calling into
  /// the runtime per event. Bit-identical to per-event profiling for any
  /// window (tests force tiny windows so drains straddle chunk-phase
  /// flips). Used only when no MemoryHierarchy is attached: with a cache
  /// attached, each trap's simulated cost must land in the running cycle
  /// count *before* the next access is timed, so the engine stays on the
  /// per-event path. 0 behaves as 1.
  uint32_t StrideBatchWindow = 256;
};

/// Outcome and accounting of one program run.
struct RunStats {
  bool Completed = false; ///< reached Halt / entry return
  uint64_t Instructions = 0; ///< executed instructions (all kinds)

  // Cycle buckets; Cycles = Base + MemStall + Instrumentation + Runtime.
  uint64_t Cycles = 0;
  uint64_t BaseCycles = 0;
  uint64_t MemStallCycles = 0;
  uint64_t InstrumentationCycles = 0;
  uint64_t RuntimeCycles = 0;

  /// Dynamic, non-instrumentation load references.
  uint64_t LoadRefs = 0;
  /// Per load-site dynamic execution counts (index = SiteId).
  std::vector<uint64_t> SiteCounts;

  /// Snapshot of the memory-system statistics at end of run.
  MemoryStats Mem;

  /// Return value of the entry function (0 when it Halts).
  int64_t ExitValue = 0;

  /// Accumulates another run into this one for multi-dataset / multi-run
  /// aggregation (suite totals, bench reports). Counts and cycle buckets
  /// sum; SiteCounts widens to the larger vector and sums element-wise;
  /// Completed ANDs; ExitValue keeps the last accumulated run's value.
  RunStats &operator+=(const RunStats &Other);
};

/// Opcode-mix tallies both execution engines maintain during a run and
/// flush into the telemetry session at run exit. Plain register increments
/// on the hot path, whether or not telemetry is attached.
struct ExecTally {
  uint64_t Stores = 0, Prefetches = 0, SpecLoads = 0, Calls = 0;
  uint64_t Branches = 0, PredSquashed = 0, CounterOps = 0;
  uint64_t StrideTraps = 0, MaxDepth = 0;
};

/// Interprets one module over one memory image. Attach a MemoryHierarchy
/// for realistic load timing and a StrideProfiler when running an
/// instrumented module (ProfStride traps into it).
class Interpreter {
public:
  Interpreter(const Module &M, SimMemory Memory,
              const TimingModel &Timing = TimingModel(),
              InterpreterConfig Config = InterpreterConfig());
  ~Interpreter();

  void attachMemory(MemoryHierarchy *MH) { Mem = MH; }
  void attachProfiler(StrideProfiler *SP) { Profiler = SP; }
  /// Mirrors the run's ProfStride trap stream -- the exact event sequence
  /// a StrideProfiler would observe, whether or not one is attached --
  /// into \p Sink in ring-sized batches (trace capture, InterpreterSource).
  /// nullptr detaches. The sink is not finish()ed here: one sink may span
  /// several runs, so the owner finishes it. With no sink attached (the
  /// default) the engines' hot paths are unchanged.
  void attachEventSink(AccessSink *Sink) { EventSink = Sink; }
  /// Telemetry: resolves the interp.* metric sinks once (like
  /// StrideProfiler::attachObs); run() bumps the cached pointers at exit.
  /// nullptr detaches. The interpreter loop itself only maintains local
  /// tallies, so the hot path is unchanged either way.
  void attachObs(ObsSession *Session);

  /// Runs the entry function to completion (or until \p MaxInstructions).
  RunStats run(uint64_t MaxInstructions = 4ull << 30);

  /// Profiling counters (edge/block frequencies) after the run.
  const std::vector<uint64_t> &counters() const { return Counters; }

  const InterpreterConfig &config() const { return Config; }

  /// Trace-tier statistics accumulated by this interpreter's selector
  /// across run() calls; Enabled == false when Engine::Trace never ran.
  TraceTierStats traceTier() const;

private:
  /// Cached telemetry sinks, resolved at attachObs; all null when
  /// detached (or when the session collects no metrics).
  struct ObsSinks {
    Counter *Runs = nullptr, *Instructions = nullptr, *Loads = nullptr,
            *Stores = nullptr, *Prefetches = nullptr, *SpecLoads = nullptr,
            *Calls = nullptr, *Branches = nullptr, *PredSquashed = nullptr,
            *CounterOps = nullptr, *StrideTraps = nullptr, *Cycles = nullptr,
            *MemStallCycles = nullptr, *InstrumentationCycles = nullptr,
            *RuntimeCycles = nullptr;
    // Trace tier (all zero-delta no-ops under Reference/Decoded).
    Counter *TraceEntries = nullptr, *TraceIterations = nullptr,
            *TraceSideExits = nullptr, *TraceFuelExits = nullptr,
            *TracesCompiled = nullptr, *TraceInsts = nullptr;
    Gauge *MaxStackDepth = nullptr;
    Histogram *RunCycles = nullptr;
  };

  /// The structure-walking baseline engine.
  RunStats runReference(uint64_t MaxInstructions, ExecTally &Tally);

  void flushObs(const RunStats &Stats, const ExecTally &Tally);

  const Module &M;
  SimMemory Memory;
  TimingModel Timing;
  InterpreterConfig Config;
  MemoryHierarchy *Mem = nullptr;
  StrideProfiler *Profiler = nullptr;
  AccessSink *EventSink = nullptr;
  /// Resolved from the session at attachObs; forwarded to the Decoded
  /// engine each run (Reference runs ignore it).
  EngineSelfProfiler *SelfProf = nullptr;
  ObsSinks Sinks;
  std::vector<uint64_t> Counters;

  /// Lazily-built decoded form and its execution core (Engine::Decoded
  /// and Engine::Trace); reused across run() calls so repeated runs pay
  /// one decode. Shared (immutable) when the ProgramCache supplied it.
  std::shared_ptr<const DecodedProgram> Decoded;
  std::unique_ptr<DecodedInterpreter> DecodedExec;

  /// Trace-tier state (Engine::Trace): the per-interpreter selection
  /// policy plus the shared cross-interpreter bank of compiled traces
  /// (from the ProgramCache entry; null when decoding privately).
  std::unique_ptr<TraceSelector> Selector;
  std::shared_ptr<TraceBank> Bank;
  /// Scalar trace counters already flushed to telemetry; selector stats
  /// are cumulative, so flushObs emits deltas against this snapshot.
  TraceTierStats TraceFlushed;
};

} // namespace sprof

#endif // SPROF_INTERP_INTERPRETER_H
