//===- interp/TraceSelector.cpp - Hot-trace selection/installation --------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "interp/TraceSelector.h"

#include "interp/Interpreter.h"

using namespace sprof;

std::shared_ptr<const TraceProgram> TraceBank::find(uint32_t HeadPC,
                                                    uint64_t PathSig,
                                                    uint32_t PathLen,
                                                    uint64_t TMHash) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &TP : Entries)
    if (TP->headPC() == HeadPC && TP->pathSig() == PathSig &&
        TP->pathLen() == PathLen && TP->timingHash() == TMHash)
      return TP;
  return nullptr;
}

void TraceBank::add(const std::shared_ptr<const TraceProgram> &TP) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &E : Entries)
    if (E->headPC() == TP->headPC() && E->pathSig() == TP->pathSig() &&
        E->pathLen() == TP->pathLen() && E->timingHash() == TP->timingHash())
      return; // another selector donated the same trace first
  Entries.push_back(TP);
}

size_t TraceBank::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

TraceSelector::TraceSelector(const DecodedProgram &DP, const TimingModel &TM,
                             const TraceTierConfig &Config, TraceBank *Bank)
    : DP(DP), TM(TM), TMHash(TraceProgram::hashTiming(TM)), Config(Config),
      Bank(Bank), HeadHeat(DP.code().size(), 0),
      InstalledIdx(DP.code().size(), -1), Blacklisted(DP.code().size(), 0),
      Attempts(DP.code().size(), 0) {}

const TraceProgram *TraceSelector::onBackEdge(uint32_t HeadPC,
                                              uint64_t PathSig,
                                              uint32_t PathLen,
                                              TraceRuntime *&RT) {
  const int32_t Idx = InstalledIdx[HeadPC];
  if (Idx >= 0) {
    Slot &S = Slots[static_cast<size_t>(Idx)];
    // Windowed invalidation: once enough entries accumulated since the
    // last check, require the average committed iterations per entry to
    // stay above InvalidateMinAvgItersX16/16 -- a trace that mostly
    // side-exits or exits immediately (the hot path flipped) costs more
    // in entry/exit handoff than it saves.
    const uint64_t DE = S.RT.Entries - S.CheckEntries;
    if (DE >= Config.InvalidateMinEntries) {
      const uint64_t DI = S.RT.Iterations - S.CheckIterations;
      if (DI * 16 < DE * Config.InvalidateMinAvgItersX16) {
        invalidate(HeadPC, static_cast<size_t>(Idx));
        return nullptr;
      }
      S.CheckEntries = S.RT.Entries;
      S.CheckIterations = S.RT.Iterations;
    }
    RT = &S.RT;
    return S.TP.get();
  }
  if (Blacklisted[HeadPC])
    return nullptr;
  const uint32_t Heat = HeadHeat[HeadPC];
  if (Heat < Config.HotThreshold) {
    HeadHeat[HeadPC] = Heat + 1;
    return nullptr;
  }
  if (PathLen > 63)
    return nullptr; // more conditionals per iteration than the sig holds
  Monitor &M = Monitors[HeadPC];
  if (M.Count != 0 && M.Sig == PathSig && M.Len == PathLen) {
    if (++M.Count >= Config.PathThreshold)
      tryInstall(HeadPC, PathSig, PathLen);
  } else {
    M.Sig = PathSig;
    M.Len = PathLen;
    M.Count = 1;
  }
  return nullptr;
}

void TraceSelector::tryInstall(uint32_t HeadPC, uint64_t PathSig,
                               uint32_t PathLen) {
  Monitors[HeadPC].Count = 0; // re-earn the path threshold between attempts
  if (Attempts[HeadPC] >= Config.MaxCompilesPerHead) {
    Blacklisted[HeadPC] = 1;
    return;
  }
  ++Attempts[HeadPC];
  std::shared_ptr<const TraceProgram> TP;
  bool FromBank = false;
  if (Bank) {
    TP = Bank->find(HeadPC, PathSig, PathLen, TMHash);
    FromBank = TP != nullptr;
  }
  if (!TP) {
    std::unique_ptr<TraceProgram> Fresh = TraceProgram::compile(
        DP, TM, HeadPC, PathSig, PathLen, Config, NextId);
    if (!Fresh) {
      ++Aborts;
      if (Attempts[HeadPC] >= Config.MaxCompilesPerHead)
        Blacklisted[HeadPC] = 1;
      return;
    }
    ++NextId;
    ++Compiled;
    TP = std::shared_ptr<const TraceProgram>(std::move(Fresh));
    if (Bank)
      Bank->add(TP);
  } else {
    ++Adopted;
  }
  Slot S;
  S.RT.GuardExits.assign(TP->guards().size(), 0);
  S.Adopted = FromBank;
  S.TP = std::move(TP);
  InstalledIdx[HeadPC] = static_cast<int32_t>(Slots.size());
  Slots.push_back(std::move(S));
}

void TraceSelector::invalidate(uint32_t HeadPC, size_t SlotIdx) {
  Slots[SlotIdx].RT.Invalidated = true;
  ++Invalidations;
  InstalledIdx[HeadPC] = -1;
  // Restart selection from cold so the new hot path can re-earn a trace;
  // Attempts is deliberately not reset, so a head that keeps flipping
  // exhausts MaxCompilesPerHead and blacklists.
  HeadHeat[HeadPC] = 0;
  Monitors.erase(HeadPC);
}

TraceTierStats TraceSelector::stats() const {
  TraceTierStats TS;
  TS.Enabled = true;
  TS.TracesCompiled = Compiled;
  TS.TracesAdopted = Adopted;
  TS.CompileAborts = Aborts;
  TS.Invalidations = Invalidations;
  for (const Slot &S : Slots) {
    TS.Entries += S.RT.Entries;
    TS.Iterations += S.RT.Iterations;
    TS.SideExits += S.RT.SideExits;
    TS.LoopExits += S.RT.LoopExits;
    TS.FuelExits += S.RT.FuelExits;
    TS.OnTraceInsts += S.RT.OnTraceInsts;
    TS.OnTraceRefs += S.RT.OnTraceRefs;
    TraceTierStats::PerTrace P;
    P.Id = S.TP->id();
    P.HeadPC = S.TP->headPC();
    P.NumOps = static_cast<uint32_t>(S.TP->code().size());
    P.NumGuards = static_cast<uint32_t>(S.TP->guards().size());
    P.Entries = S.RT.Entries;
    P.Iterations = S.RT.Iterations;
    P.SideExits = S.RT.SideExits;
    P.LoopExits = S.RT.LoopExits;
    P.FuelExits = S.RT.FuelExits;
    P.GuardExits = S.RT.GuardExits;
    // The executor sizes GuardExits lazily on first entry; report a full
    // (zeroed) vector for never-entered traces so consumers can index it
    // by guard position unconditionally.
    if (P.GuardExits.size() < P.NumGuards)
      P.GuardExits.resize(P.NumGuards, 0);
    P.Invalidated = S.RT.Invalidated;
    TS.Traces.push_back(std::move(P));
  }
  return TS;
}
