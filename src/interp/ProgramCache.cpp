//===- interp/ProgramCache.cpp - Shared decoded/trace program cache -------===//
//
// Part of the StrideProf project (see SimMemory.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "interp/ProgramCache.h"

#include <algorithm>

using namespace sprof;

namespace {

/// Two independent FNV-1a streams (different offset bases, both fed every
/// word) give a 128-bit content key; a collision would need both 64-bit
/// streams to collide simultaneously.
struct Hash2 {
  uint64_t H1 = 14695981039346656037ull;
  uint64_t H2 = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;

  void mix(uint64_t V) {
    H1 = (H1 ^ V) * 1099511628211ull;
    H2 = (H2 ^ (V + 0x9e3779b97f4a7c15ull)) * 0x100000001b3ull;
  }
  void mixOperand(const Operand &O) {
    mix(static_cast<uint64_t>(O.K));
    mix(static_cast<uint64_t>(O.V));
  }
};

} // namespace

std::pair<uint64_t, uint64_t> ProgramCache::hashModule(const Module &M) {
  Hash2 H;
  H.mix(M.EntryFunction);
  H.mix(M.NumLoadSites);
  H.mix(M.NumCounters);
  H.mix(M.Functions.size());
  for (const Function &F : M.Functions) {
    H.mix(F.NumParams);
    H.mix(F.NumRegs);
    H.mix(F.Blocks.size());
    for (const BasicBlock &B : F.Blocks) {
      H.mix(B.Insts.size());
      for (const Instruction &I : B.Insts) {
        H.mix(static_cast<uint64_t>(I.Op));
        H.mix(I.Dst);
        H.mixOperand(I.A);
        H.mixOperand(I.B);
        H.mixOperand(I.C);
        H.mix(static_cast<uint64_t>(I.Imm));
        H.mix(I.Pred);
        H.mix(I.Target0);
        H.mix(I.Target1);
        H.mix(I.Callee);
        H.mix(I.NumArgs);
        for (unsigned A = 0; A != I.NumArgs; ++A)
          H.mixOperand(I.Args[A]);
        H.mix(I.SiteId);
        H.mix(I.IsInstrumentation ? 1 : 0);
      }
    }
  }
  return {H.H1, H.H2};
}

ProgramCache &ProgramCache::global() {
  static ProgramCache Cache;
  return Cache;
}

ProgramCache::Entry ProgramCache::get(const Module &M) {
  const auto [H1, H2] = hashModule(M);
  std::lock_guard<std::mutex> Lock(Mu);
  ++UseClock;
  for (Node &N : Nodes)
    if (N.H1 == H1 && N.H2 == H2) {
      N.LastUse = UseClock;
      ++Counts.Hits;
      return N.E;
    }
  ++Counts.Misses;
  Node N;
  N.H1 = H1;
  N.H2 = H2;
  N.LastUse = UseClock;
  N.E.Program = std::make_shared<const DecodedProgram>(M);
  N.E.Bank = std::make_shared<TraceBank>();
  if (Nodes.size() >= MaxEntries) {
    auto Oldest = std::min_element(
        Nodes.begin(), Nodes.end(),
        [](const Node &A, const Node &B) { return A.LastUse < B.LastUse; });
    *Oldest = std::move(N);
    ++Counts.Evictions;
    return Oldest->E;
  }
  Nodes.push_back(std::move(N));
  return Nodes.back().E;
}

ProgramCache::CacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Nodes.clear();
}
