//===- instrument/Instrumentation.h - Integrated profiling passes -*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integrated frequency + stride profiling instrumentation of paper
/// Section 3.2. One entry point instruments a module for one of the
/// profiling methods the paper evaluates:
///
///   * edge-only   -- classic edge-frequency profiling (the overhead
///                    baseline and the "frequency profile" producer).
///   * naive-all   -- edge profiling + strideProf before *every* load.
///   * naive-loop  -- edge profiling + strideProf before every in-loop load.
///   * block-check -- block counters + strideProf guarded by a trip-count
///                    predicate computed from block frequencies (Figure 11).
///   * edge-check  -- edge counters + strideProf guarded by a trip-count
///                    predicate computed from summed edge counters
///                    (Figures 12-14); pre-head frequency r1 is the sum of
///                    all loop-entering edge counters, header frequency r2
///                    the sum of the header's outgoing edge counters, and
///                    the comparison r2/r1 > TT is done without a divide as
///                    r1 < (r2 >> W), W = floor(log2 TT).
///
/// The sample-* variants of the paper use the same instrumentation; only
/// the runtime's SamplingConfig differs (see ProfilingMethod helpers).
///
/// The check methods also apply the two Section-3.2 refinements: loads with
/// loop-invariant addresses are not profiled, and equivalent-load sets
/// (Section 2.1) are reduced to one profiled representative.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_INSTRUMENT_INSTRUMENTATION_H
#define SPROF_INSTRUMENT_INSTRUMENTATION_H

#include "ir/Module.h"

#include <map>
#include <string>
#include <vector>

namespace sprof {

class ObsSession;

/// The profiling configurations evaluated in the paper (Section 4).
enum class ProfilingMethod {
  EdgeOnly,
  NaiveAll,
  NaiveLoop,
  BlockCheck,
  EdgeCheck,
  SampleNaiveAll,
  SampleNaiveLoop,
  SampleEdgeCheck,
};

/// Printable name ("edge-check", "sample-naive-all", ...).
const char *profilingMethodName(ProfilingMethod Method);

/// Inverse of profilingMethodName: parses \p Name into \p Method. Returns
/// false (leaving \p Method untouched) for unknown names. Trace replay
/// uses this to re-run a captured trace under its recorded method.
bool profilingMethodFromName(const std::string &Name,
                             ProfilingMethod &Method);

/// True for the sample-* methods (runtime sampling enabled).
bool methodUsesSampling(ProfilingMethod Method);

/// True when the method also profiles out-loop loads (naive-all family).
bool methodProfilesOutLoop(ProfilingMethod Method);

/// Strips the sampling wrapper: SampleEdgeCheck -> EdgeCheck etc.
ProfilingMethod baseMethod(ProfilingMethod Method);

/// All eight methods in the order the paper's figures list them.
std::vector<ProfilingMethod> allProfilingMethods();

/// The six stride-profiling methods of Figures 16/20/21/22.
std::vector<ProfilingMethod> paperStrideMethods();

/// Instrumentation tunables.
struct InstrumentConfig {
  /// Trip-count threshold TT of the check methods (paper: 128). The shift
  /// W used in place of the division is floor(log2(TT)).
  uint64_t TripCountThreshold = 128;
};

/// What the instrumentation did; the feedback pass needs the counter maps
/// to reconstruct edge frequencies, and benches use ProfiledSites.
struct InstrumentationResult {
  ProfilingMethod Method = ProfilingMethod::EdgeOnly;

  /// Per function: CFG edge (in the *original* module's numbering) to
  /// counter id.
  std::vector<std::map<Edge, uint32_t>> EdgeCounters;

  /// Per function: block index to counter id (block-check method only).
  std::vector<std::map<uint32_t, uint32_t>> BlockCounters;

  /// Per function: counter id of the function-entry counter. Edges alone
  /// cannot reconstruct the frequency of a single-block function, which
  /// the Figure-5 FT filter needs for out-loop loads.
  std::vector<uint32_t> EntryCounters;

  /// Load sites instrumented with a strideProf call.
  std::vector<uint32_t> ProfiledSites;
};

/// Instruments \p M in place for \p Method. \p M must be an un-instrumented
/// module (no profiling pseudo-ops); call on a fresh copy. \p Obs
/// (optional) receives an "instrument" trace span and counter-insertion
/// metrics.
InstrumentationResult instrumentModule(Module &M, ProfilingMethod Method,
                                       const InstrumentConfig &Config = {},
                                       ObsSession *Obs = nullptr);

} // namespace sprof

#endif // SPROF_INSTRUMENT_INSTRUMENTATION_H
