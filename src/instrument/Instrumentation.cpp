//===- instrument/Instrumentation.cpp - Integrated profiling passes --------===//
//
// Part of the StrideProf project (see Instrumentation.h for the project
// reference).
//
//===----------------------------------------------------------------------===//

#include "instrument/Instrumentation.h"

#include "obs/Obs.h"
#include "obs/Trace.h"

#include "analysis/CfgEdit.h"
#include "analysis/ControlEquivalence.h"
#include "analysis/Dominators.h"
#include "analysis/EquivalentLoads.h"
#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace sprof;

const char *sprof::profilingMethodName(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::EdgeOnly:
    return "edge-only";
  case ProfilingMethod::NaiveAll:
    return "naive-all";
  case ProfilingMethod::NaiveLoop:
    return "naive-loop";
  case ProfilingMethod::BlockCheck:
    return "block-check";
  case ProfilingMethod::EdgeCheck:
    return "edge-check";
  case ProfilingMethod::SampleNaiveAll:
    return "sample-naive-all";
  case ProfilingMethod::SampleNaiveLoop:
    return "sample-naive-loop";
  case ProfilingMethod::SampleEdgeCheck:
    return "sample-edge-check";
  }
  assert(false && "unknown profiling method");
  return "<invalid>";
}

bool sprof::methodUsesSampling(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::SampleNaiveAll:
  case ProfilingMethod::SampleNaiveLoop:
  case ProfilingMethod::SampleEdgeCheck:
    return true;
  default:
    return false;
  }
}

bool sprof::methodProfilesOutLoop(ProfilingMethod Method) {
  ProfilingMethod Base = baseMethod(Method);
  return Base == ProfilingMethod::NaiveAll;
}

ProfilingMethod sprof::baseMethod(ProfilingMethod Method) {
  switch (Method) {
  case ProfilingMethod::SampleNaiveAll:
    return ProfilingMethod::NaiveAll;
  case ProfilingMethod::SampleNaiveLoop:
    return ProfilingMethod::NaiveLoop;
  case ProfilingMethod::SampleEdgeCheck:
    return ProfilingMethod::EdgeCheck;
  default:
    return Method;
  }
}

bool sprof::profilingMethodFromName(const std::string &Name,
                                    ProfilingMethod &Method) {
  for (ProfilingMethod M : allProfilingMethods())
    if (Name == profilingMethodName(M)) {
      Method = M;
      return true;
    }
  return false;
}

std::vector<ProfilingMethod> sprof::allProfilingMethods() {
  return {ProfilingMethod::EdgeOnly,        ProfilingMethod::NaiveAll,
          ProfilingMethod::NaiveLoop,       ProfilingMethod::BlockCheck,
          ProfilingMethod::EdgeCheck,       ProfilingMethod::SampleNaiveAll,
          ProfilingMethod::SampleNaiveLoop, ProfilingMethod::SampleEdgeCheck};
}

std::vector<ProfilingMethod> sprof::paperStrideMethods() {
  return {ProfilingMethod::EdgeCheck,       ProfilingMethod::NaiveLoop,
          ProfilingMethod::NaiveAll,        ProfilingMethod::SampleEdgeCheck,
          ProfilingMethod::SampleNaiveLoop, ProfilingMethod::SampleNaiveAll};
}

namespace {

/// Per-function instrumentation worker.
class FunctionInstrumenter {
public:
  FunctionInstrumenter(Module &M, uint32_t FuncIdx, ProfilingMethod Base,
                       const InstrumentConfig &Config,
                       InstrumentationResult &Result)
      : M(M), FuncIdx(FuncIdx), F(M.Functions[FuncIdx]), Base(Base),
        Config(Config), Result(Result) {}

  void run() {
    // All planning happens against the original CFG; mutations that change
    // the CFG (edge splits, preheaders) only append blocks, so captured
    // block indices stay valid.
    DomTree DT = DomTree::forward(F);
    DomTree PDT = DomTree::backward(F);
    LoopInfo LI(F, DT);
    ControlEquivalence CE(F, DT, PDT);

    planProfiledLoads(LI, CE);
    allocatePredicates();
    insertStrideCalls();

    std::vector<Edge> OriginalEdges = F.edges();

    // Capture the loop-entering and header-out edge lists now: edge
    // splitting below redirects successors, after which a rescan would no
    // longer recognize split entering edges.
    std::map<uint32_t, std::vector<Edge>> EnteringOf, HeaderOutOf;
    for (const auto &[LoopIdx, PredReg] : LoopPredicate) {
      (void)PredReg;
      EnteringOf[LoopIdx] = LI.enteringEdges(LoopIdx);
      HeaderOutOf[LoopIdx] = LI.headerOutEdges(LoopIdx);
    }

    if (Base == ProfilingMethod::BlockCheck)
      createPreheaders(LI);

    placeEdgeCounters(OriginalEdges);
    placeEntryCounter();

    if (Base == ProfilingMethod::EdgeCheck)
      insertEdgeTripChecks(EnteringOf, HeaderOutOf);
    else if (Base == ProfilingMethod::BlockCheck)
      insertBlockTripChecks(LI);

    applyBlockInsertions();
  }

private:
  /// A profiled load: where it is and which loop predicate (if any) guards
  /// its strideProf call.
  struct ProfiledLoad {
    uint32_t Block;
    uint32_t InstIndex;
    uint32_t SiteId;
    uint32_t LoopIdx; // ~0u for out-loop loads
  };

  bool isCheckMethod() const {
    return Base == ProfilingMethod::EdgeCheck ||
           Base == ProfilingMethod::BlockCheck;
  }

  void planProfiledLoads(const LoopInfo &LI, const ControlEquivalence &CE) {
    // Which site ids survive equivalent-set reduction (check methods only).
    std::set<uint32_t> Representatives;
    if (isCheckMethod()) {
      for (const EquivalentLoadSet &Set : partitionEquivalentLoads(F, LI, CE))
        Representatives.insert(Set.representative().SiteId);
    }

    for (uint32_t B = 0, N = static_cast<uint32_t>(F.Blocks.size()); B != N;
         ++B) {
      bool InLoop = LI.isInLoop(B);
      uint32_t LoopIdx = InLoop ? LI.innermostLoop(B) : ~0u;
      const BasicBlock &BB = F.Blocks[B];
      for (uint32_t II = 0, IE = static_cast<uint32_t>(BB.Insts.size());
           II != IE; ++II) {
        const Instruction &I = BB.Insts[II];
        if (I.Op != Opcode::Load)
          continue;
        switch (Base) {
        case ProfilingMethod::EdgeOnly:
          continue;
        case ProfilingMethod::NaiveAll:
          break; // profile every load
        case ProfilingMethod::NaiveLoop:
          if (!InLoop)
            continue;
          break;
        case ProfilingMethod::EdgeCheck:
        case ProfilingMethod::BlockCheck:
          if (!InLoop)
            continue;
          // Refinement 1: skip loop-invariant addresses.
          if (LI.isLoopInvariantReg(LoopIdx, I.A.getReg()))
            continue;
          // Refinement 2: profile one representative per equivalent set.
          if (!Representatives.count(I.SiteId))
            continue;
          break;
        default:
          assert(false && "sampled methods must be lowered to their base");
        }
        ProfiledLoads.push_back(
            ProfiledLoad{B, II, I.SiteId,
                         isCheckMethod() ? LoopIdx : ~0u});
        Result.ProfiledSites.push_back(I.SiteId);
      }
    }
  }

  void allocatePredicates() {
    if (!isCheckMethod())
      return;
    for (const ProfiledLoad &PL : ProfiledLoads) {
      if (PL.LoopIdx == ~0u)
        continue;
      if (!LoopPredicate.count(PL.LoopIdx))
        LoopPredicate[PL.LoopIdx] = F.newReg();
    }
  }

  void insertStrideCalls() {
    // Group planned calls per block, then rebuild each block once.
    std::map<uint32_t, std::vector<const ProfiledLoad *>> PerBlock;
    for (const ProfiledLoad &PL : ProfiledLoads)
      PerBlock[PL.Block].push_back(&PL);

    for (auto &[B, Loads] : PerBlock) {
      std::sort(Loads.begin(), Loads.end(),
                [](const ProfiledLoad *A, const ProfiledLoad *B2) {
                  return A->InstIndex < B2->InstIndex;
                });
      BasicBlock &BB = F.Blocks[B];
      std::vector<Instruction> NewInsts;
      NewInsts.reserve(BB.Insts.size() + Loads.size());
      size_t NextLoad = 0;
      for (uint32_t II = 0, IE = static_cast<uint32_t>(BB.Insts.size());
           II != IE; ++II) {
        while (NextLoad < Loads.size() &&
               Loads[NextLoad]->InstIndex == II) {
          const ProfiledLoad &PL = *Loads[NextLoad];
          const Instruction &LoadInst = BB.Insts[II];
          Instruction Prof;
          Prof.Op = Opcode::ProfStride;
          Prof.A = LoadInst.A;
          Prof.Imm = LoadInst.Imm;
          Prof.SiteId = PL.SiteId;
          Prof.IsInstrumentation = true;
          if (PL.LoopIdx != ~0u)
            Prof.Pred = LoopPredicate.at(PL.LoopIdx);
          // A predicated load would need pr1 = pr && load->predicate
          // (Figure 14); our loads are unpredicated before prefetch
          // insertion, which runs on a different module copy.
          assert(LoadInst.Pred == NoReg &&
                 "profiling a predicated load is not supported");
          NewInsts.push_back(Prof);
          ++NextLoad;
        }
        NewInsts.push_back(BB.Insts[II]);
      }
      BB.Insts = std::move(NewInsts);
    }
  }

  void createPreheaders(const LoopInfo &LI) {
    std::set<uint32_t> ProfiledLoops;
    for (const ProfiledLoad &PL : ProfiledLoads)
      if (PL.LoopIdx != ~0u)
        ProfiledLoops.insert(PL.LoopIdx);
    for (uint32_t L : ProfiledLoops) {
      uint32_t Header = LI.loops()[L].Header;
      // Capture the entering edges before creating the preheader: the
      // preheader's own jump must not be redirected onto itself.
      std::vector<Edge> Entering = LI.enteringEdges(L);
      uint32_t P = F.newBlock("preheader." + F.Blocks[Header].Name);
      Instruction J;
      J.Op = Opcode::Jmp;
      J.Target0 = Header;
      F.Blocks[P].Insts.push_back(J);
      for (const Edge &E : Entering)
        F.Blocks[E.From].setSuccessor(E.Slot, P);
      Preheader[L] = P;
    }
  }

  void placeEdgeCounters(const std::vector<Edge> &OriginalEdges) {
    for (const Edge &E : OriginalEdges) {
      uint32_t Counter = M.newCounter();
      Result.EdgeCounters[FuncIdx][E] = Counter;
      EdgeCounter[E] = Counter;

      Instruction Inc;
      Inc.Op = Opcode::ProfCounterInc;
      Inc.Imm = static_cast<int64_t>(Counter);
      Inc.IsInstrumentation = true;

      switch (classifyEdgePlacement(F, E)) {
      case EdgePlacement::SourceEnd:
        EndInserts[E.From].push_back(Inc);
        EdgeCodeBlock[E] = E.From;
        break;
      case EdgePlacement::DestTop: {
        uint32_t Dest = F.Blocks[E.From].successor(E.Slot);
        TopInserts[Dest].push_back(Inc);
        EdgeCodeBlock[E] = Dest;
        break;
      }
      case EdgePlacement::NeedsSplit: {
        uint32_t NewBlock = splitEdge(F, E);
        EndInserts[NewBlock].push_back(Inc);
        EdgeCodeBlock[E] = NewBlock;
        break;
      }
      }
    }
  }

  /// One counter per function counting its invocations.
  void placeEntryCounter() {
    uint32_t Counter = M.newCounter();
    Result.EntryCounters[FuncIdx] = Counter;
    Instruction Inc;
    Inc.Op = Opcode::ProfCounterInc;
    Inc.Imm = static_cast<int64_t>(Counter);
    Inc.IsInstrumentation = true;
    auto &Top = TopInserts[F.entryBlock()];
    Top.insert(Top.begin(), Inc);
  }

  /// Emits the Figure-14 trip-count predicate computation after the counter
  /// increment of every loop-entering edge of each profiled loop.
  void insertEdgeTripChecks(
      const std::map<uint32_t, std::vector<Edge>> &EnteringOf,
      const std::map<uint32_t, std::vector<Edge>> &HeaderOutOf) {
    const unsigned W = shiftForThreshold();
    for (const auto &[LoopIdx, PredReg] : LoopPredicate) {
      const std::vector<Edge> &Entering = EnteringOf.at(LoopIdx);
      const std::vector<Edge> &HeaderOut = HeaderOutOf.at(LoopIdx);
      for (const Edge &E : Entering) {
        std::vector<Instruction> Code;
        Reg R1 = F.newReg();
        Reg R2 = F.newReg();

        // r1 = sum of all entering-edge counters (this one included).
        bool First = true;
        for (const Edge &In : Entering) {
          Instruction I;
          if (First) {
            I.Op = Opcode::ProfCounterRead;
            I.Dst = R1;
          } else {
            I.Op = Opcode::ProfCounterAddTo;
            I.Dst = R1;
            I.A = Operand::reg(R1);
          }
          I.Imm = static_cast<int64_t>(EdgeCounter.at(In));
          I.IsInstrumentation = true;
          Code.push_back(I);
          First = false;
        }

        // r2 = sum of the header's outgoing edge counters.
        First = true;
        for (const Edge &Out : HeaderOut) {
          Instruction I;
          if (First) {
            I.Op = Opcode::ProfCounterRead;
            I.Dst = R2;
          } else {
            I.Op = Opcode::ProfCounterAddTo;
            I.Dst = R2;
            I.A = Operand::reg(R2);
          }
          I.Imm = static_cast<int64_t>(EdgeCounter.at(Out));
          I.IsInstrumentation = true;
          Code.push_back(I);
          First = false;
        }

        // r2 = r2 >> W;  pred = r2 > r1   (i.e. r2/r1 > TT without divide).
        Instruction Sh;
        Sh.Op = Opcode::Shr;
        Sh.Dst = R2;
        Sh.A = Operand::reg(R2);
        Sh.B = Operand::imm(W);
        Sh.IsInstrumentation = true;
        Code.push_back(Sh);

        Instruction Cmp;
        Cmp.Op = Opcode::CmpGt;
        Cmp.Dst = PredReg;
        Cmp.A = Operand::reg(R2);
        Cmp.B = Operand::reg(R1);
        Cmp.IsInstrumentation = true;
        Code.push_back(Cmp);

        // Place after the edge's counter increment.
        uint32_t Block = EdgeCodeBlock.at(E);
        bool AtTop = TopInserts.count(Block) &&
                     !TopInserts[Block].empty() &&
                     isEdgeIncAtTop(Block, EdgeCounter.at(E));
        auto &List = AtTop ? TopInserts[Block] : EndInserts[Block];
        for (const Instruction &I : Code)
          List.push_back(I);
      }
    }
  }

  /// True when edge \p CounterId's increment was placed in TopInserts of
  /// \p Block (DestTop placement).
  bool isEdgeIncAtTop(uint32_t Block, uint32_t CounterId) {
    auto It = TopInserts.find(Block);
    if (It == TopInserts.end())
      return false;
    for (const Instruction &I : It->second)
      if (I.Op == Opcode::ProfCounterInc &&
          I.Imm == static_cast<int64_t>(CounterId))
        return true;
    return false;
  }

  /// Block-check (Figure 11): block counters on the preheader and header of
  /// each profiled loop; predicate computed in the preheader.
  void insertBlockTripChecks(const LoopInfo &LI) {
    const unsigned W = shiftForThreshold();
    for (const auto &[LoopIdx, PredReg] : LoopPredicate) {
      uint32_t Header = LI.loops()[LoopIdx].Header;
      uint32_t P = Preheader.at(LoopIdx);

      uint32_t PreCounter = M.newCounter();
      uint32_t HdrCounter = M.newCounter();
      Result.BlockCounters[FuncIdx][P] = PreCounter;
      Result.BlockCounters[FuncIdx][Header] = HdrCounter;

      Instruction IncP;
      IncP.Op = Opcode::ProfCounterInc;
      IncP.Imm = static_cast<int64_t>(PreCounter);
      IncP.IsInstrumentation = true;
      TopInserts[P].insert(TopInserts[P].begin(), IncP);

      Instruction IncH;
      IncH.Op = Opcode::ProfCounterInc;
      IncH.Imm = static_cast<int64_t>(HdrCounter);
      IncH.IsInstrumentation = true;
      TopInserts[Header].insert(TopInserts[Header].begin(), IncH);

      Reg R1 = F.newReg();
      Reg R2 = F.newReg();
      std::vector<Instruction> Code;

      Instruction Rd1;
      Rd1.Op = Opcode::ProfCounterRead;
      Rd1.Dst = R1;
      Rd1.Imm = static_cast<int64_t>(PreCounter);
      Rd1.IsInstrumentation = true;
      Code.push_back(Rd1);

      Instruction Rd2;
      Rd2.Op = Opcode::ProfCounterRead;
      Rd2.Dst = R2;
      Rd2.Imm = static_cast<int64_t>(HdrCounter);
      Rd2.IsInstrumentation = true;
      Code.push_back(Rd2);

      Instruction Sh;
      Sh.Op = Opcode::Shr;
      Sh.Dst = R2;
      Sh.A = Operand::reg(R2);
      Sh.B = Operand::imm(W);
      Sh.IsInstrumentation = true;
      Code.push_back(Sh);

      Instruction Cmp;
      Cmp.Op = Opcode::CmpGt;
      Cmp.Dst = PredReg;
      Cmp.A = Operand::reg(R2);
      Cmp.B = Operand::reg(R1);
      Cmp.IsInstrumentation = true;
      Code.push_back(Cmp);

      for (const Instruction &I : Code)
        EndInserts[P].push_back(I);
    }
  }

  unsigned shiftForThreshold() const {
    unsigned W = 0;
    while ((1ull << (W + 1)) <= Config.TripCountThreshold)
      ++W;
    return W;
  }

  void applyBlockInsertions() {
    for (uint32_t B = 0, N = static_cast<uint32_t>(F.Blocks.size()); B != N;
         ++B) {
      auto TopIt = TopInserts.find(B);
      auto EndIt = EndInserts.find(B);
      if (TopIt == TopInserts.end() && EndIt == EndInserts.end())
        continue;
      BasicBlock &BB = F.Blocks[B];
      assert(BB.hasTerminator() && "instrumenting unterminated block");
      std::vector<Instruction> NewInsts;
      if (TopIt != TopInserts.end())
        NewInsts.insert(NewInsts.end(), TopIt->second.begin(),
                        TopIt->second.end());
      NewInsts.insert(NewInsts.end(), BB.Insts.begin(),
                      BB.Insts.end() - 1);
      if (EndIt != EndInserts.end())
        NewInsts.insert(NewInsts.end(), EndIt->second.begin(),
                        EndIt->second.end());
      NewInsts.push_back(BB.Insts.back());
      BB.Insts = std::move(NewInsts);
    }
  }

  Module &M;
  uint32_t FuncIdx;
  Function &F;
  ProfilingMethod Base;
  const InstrumentConfig &Config;
  InstrumentationResult &Result;

  std::vector<ProfiledLoad> ProfiledLoads;
  std::map<uint32_t, Reg> LoopPredicate; // loop index -> predicate reg
  std::map<uint32_t, uint32_t> Preheader; // loop index -> preheader block
  std::map<Edge, uint32_t> EdgeCounter;
  std::map<Edge, uint32_t> EdgeCodeBlock; // where the edge's inc landed
  std::map<uint32_t, std::vector<Instruction>> TopInserts;
  std::map<uint32_t, std::vector<Instruction>> EndInserts;
};

} // namespace

InstrumentationResult sprof::instrumentModule(Module &M,
                                              ProfilingMethod Method,
                                              const InstrumentConfig &Config,
                                              ObsSession *Obs) {
  TraceSpan Span(Obs, "instrument", "instrument", /*Level=*/1);
  InstrumentationResult Result;
  Result.Method = Method;
  Result.EdgeCounters.resize(M.Functions.size());
  Result.BlockCounters.resize(M.Functions.size());
  Result.EntryCounters.assign(M.Functions.size(), NoId);

  ProfilingMethod Base = baseMethod(Method);
  for (uint32_t FI = 0, FE = static_cast<uint32_t>(M.Functions.size());
       FI != FE; ++FI) {
    FunctionInstrumenter FIr(M, FI, Base, Config, Result);
    FIr.run();
  }

  if (Obs) {
    uint64_t NumEdge = 0, NumBlock = 0, NumEntry = 0;
    for (const auto &Map : Result.EdgeCounters)
      NumEdge += Map.size();
    for (const auto &Map : Result.BlockCounters)
      NumBlock += Map.size();
    for (uint32_t C : Result.EntryCounters)
      NumEntry += C != NoId;
    Obs->counter("instrument.modules")->inc();
    Obs->counter("instrument.edge_counters")->inc(NumEdge);
    Obs->counter("instrument.block_counters")->inc(NumBlock);
    Obs->counter("instrument.entry_counters")->inc(NumEntry);
    Obs->counter("instrument.profiled_sites")
        ->inc(Result.ProfiledSites.size());
  }
  return Result;
}
