//===- support/Table.h - Fixed-width text tables ----------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny fixed-width table printer. Every bench binary regenerating one of
/// the paper's figures prints its rows/series through this class so all
/// experiment output has a uniform, diffable format.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_SUPPORT_TABLE_H
#define SPROF_SUPPORT_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sprof {

/// Accumulates rows of string cells and prints them with column-aligned,
/// right-justified numeric columns. The first added row is treated as a
/// header and is underlined when printed.
class Table {
public:
  explicit Table(std::string Title) : Title(std::move(Title)) {}

  /// Appends a row; the first row added becomes the header.
  Table &row(std::vector<std::string> Cells);

  /// Convenience formatters used by the bench binaries.
  static std::string fmt(double Value, int Precision = 2);
  static std::string fmtPercent(double Value, int Precision = 1);
  static std::string fmtInt(uint64_t Value);

  /// Renders the table to \p OS.
  void print(std::ostream &OS) const;

private:
  std::string Title;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace sprof

#endif // SPROF_SUPPORT_TABLE_H
