//===- support/Stats.cpp - Small statistics helpers -----------------------===//
//
// Part of the StrideProf project (see Random.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>

using namespace sprof;

double sprof::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double sprof::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double sprof::percent(double Part, double Whole) {
  return Whole == 0.0 ? 0.0 : 100.0 * Part / Whole;
}

double sprof::ratio(double Num, double Den) {
  return Den == 0.0 ? 0.0 : Num / Den;
}
