//===- support/Stats.cpp - Small statistics helpers -----------------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>

using namespace sprof;

double sprof::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double sprof::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    // A non-positive value has no logarithm; release builds used to feed
    // one into std::log and propagate NaN/-inf into a whole summary row.
    // Degrade to the same sentinel the empty case uses instead.
    if (V <= 0.0)
      return 0.0;
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double sprof::percent(double Part, double Whole) {
  return Whole == 0.0 ? 0.0 : 100.0 * Part / Whole;
}

double sprof::ratio(double Num, double Den) {
  return Den == 0.0 ? 0.0 : Num / Den;
}
