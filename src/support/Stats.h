//===- support/Stats.h - Small statistics helpers --------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / geometric-mean / percentage helpers used when summarizing
/// experiment tables the way the paper's figures do.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_SUPPORT_STATS_H
#define SPROF_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace sprof {

/// Arithmetic mean; returns 0 for an empty sequence.
double mean(const std::vector<double> &Values);

/// Geometric mean; returns 0 for an empty sequence or when any value is
/// non-positive (no logarithm exists, so there is no meaningful mean).
double geomean(const std::vector<double> &Values);

/// Returns 100 * Part / Whole, or 0 when Whole is zero.
double percent(double Part, double Whole);

/// Safe ratio: Num / Den, or 0 when Den is zero.
double ratio(double Num, double Den);

} // namespace sprof

#endif // SPROF_SUPPORT_STATS_H
