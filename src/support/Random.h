//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic RNG (SplitMix64 seeded xoshiro256**) used by the
/// synthetic workload generators. We avoid <random> engines so that every
/// platform produces bit-identical workloads and therefore bit-identical
/// profiles and experiment tables.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_SUPPORT_RANDOM_H
#define SPROF_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace sprof {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64 so that a single 64-bit seed fills the full state.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 to expand the seed into four state words.
    for (auto &Word : State) {
      Seed += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be non-zero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be non-zero");
    // Multiply-shift reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) {
    assert(Percent <= 100 && "probability out of range");
    return below(100) < Percent;
  }

  /// Returns a double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace sprof

#endif // SPROF_SUPPORT_RANDOM_H
