//===- support/Table.cpp - Fixed-width text tables -------------------------===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

using namespace sprof;

Table &Table::row(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
  return *this;
}

std::string Table::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::fmtPercent(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Value);
  return Buf;
}

std::string Table::fmtInt(uint64_t Value) {
  return std::to_string(Value);
}

void Table::print(std::ostream &OS) const {
  OS << "== " << Title << " ==\n";
  if (Rows.empty())
    return;

  // Column widths across all rows.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  }

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      if (I != 0)
        OS << "  ";
      // Left-justify the first column (labels), right-justify the rest.
      if (I == 0)
        OS << std::left;
      else
        OS << std::right;
      OS << std::setw(static_cast<int>(Widths[I])) << Row[I];
    }
    OS << '\n';
  };

  PrintRow(Rows.front());
  size_t RuleWidth = 0;
  for (size_t I = 0, E = Widths.size(); I != E; ++I)
    RuleWidth += Widths[I] + (I == 0 ? 0 : 2);
  OS << std::string(RuleWidth, '-') << '\n';
  for (size_t I = 1, E = Rows.size(); I != E; ++I)
    PrintRow(Rows[I]);
  OS.flush();
}
