//===- ir/Opcode.h - IR instruction opcodes ---------------------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes for the StrideProf register-machine IR. The IR is deliberately
/// small: enough to express the pointer-chasing loops the paper studies, the
/// profiling instrumentation of Figures 11-14 (edge counters, trip-count
/// predicates, calls into the stride-profiling runtime), and the prefetching
/// transformations of Figure 3 (including Itanium-style qualifying
/// predicates for the conditional WSST prefetch).
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_OPCODE_H
#define SPROF_IR_OPCODE_H

#include <cstdint>

namespace sprof {

enum class Opcode : uint8_t {
  // Data movement and arithmetic. Operands may be registers or immediates.
  Mov,   // dst = a
  Add,   // dst = a + b
  Sub,   // dst = a - b
  Mul,   // dst = a * b
  Shl,   // dst = a << b
  Shr,   // dst = a >> b (arithmetic)
  And,   // dst = a & b
  Or,    // dst = a | b
  Xor,   // dst = a ^ b
  CmpEq, // dst = (a == b)
  CmpNe, // dst = (a != b)
  CmpLt, // dst = (a < b), signed
  CmpLe, // dst = (a <= b), signed
  CmpGt, // dst = (a > b), signed
  CmpGe, // dst = (a >= b), signed
  Select, // dst = a ? b : c

  // Memory. Addresses are a register plus a signed immediate offset; all
  // accesses are 8 bytes wide (the workloads lay out data accordingly).
  Load,     // dst = mem[a + Imm]; carries a module-unique load site id
  Store,    // mem[a + Imm] = b
  Prefetch, // non-faulting touch of mem[a + Imm]
  SpecLoad, // dst = mem[a + Imm], non-blocking/non-faulting (Itanium ld.s);
            // used by dependent prefetching to chase one pointer ahead

  // Control flow. Every basic block ends in exactly one terminator.
  Jmp,  // goto Target0
  Br,   // if (a != 0) goto Target0 else goto Target1
  Call, // dst = Callee(args...), arguments land in the callee's r0..rN-1
  Ret,  // return a (or nothing)
  Halt, // stop the program (valid only in the entry function)

  // Profiling pseudo-ops, inserted by the instrumentation passes. Counters
  // live in a dedicated array owned by the interpreter, mirroring the
  // counter memory a real instrumented binary would own.
  ProfCounterInc,   // counters[Imm]++
  ProfCounterRead,  // dst = counters[Imm]
  ProfCounterAddTo, // dst = a + counters[Imm]
  ProfStride,       // strideProf(a + Imm) for load site SiteId (Figure 6/9)
};

/// Number of distinct opcodes (for trait tables).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::ProfStride) + 1;

/// Static per-opcode metadata, kept in one dense table so the printer, the
/// verifier, and the pre-decoder all agree on each opcode's shape.
struct OpcodeInfo {
  const char *Name;     ///< printer mnemonic
  uint8_t NumOperands;  ///< generic operands (A/B/C) consumed
  bool Terminator;      ///< must end a basic block
  bool HasDest;         ///< *may* write a destination register
  bool IsMemory;        ///< computes an address from A + Imm
  bool UsesImm;         ///< reads the extra Imm field (offset/counter id)
};

/// Returns the metadata row for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the mnemonic used by the textual printer.
const char *opcodeName(Opcode Op);

/// Returns true for instructions that must terminate a basic block.
bool isTerminator(Opcode Op);

/// Returns true for instructions that write a destination register. Call
/// may or may not (void calls); this reports the *capability*.
bool hasDest(Opcode Op);

/// Returns the number of generic operands (A/B/C) the opcode consumes.
unsigned numOperands(Opcode Op);

} // namespace sprof

#endif // SPROF_IR_OPCODE_H
