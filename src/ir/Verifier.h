//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_VERIFIER_H
#define SPROF_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace sprof {

/// Checks structural invariants of \p M: every block ends in exactly one
/// terminator (and has no interior terminators), register and block indices
/// are in range, call targets and argument counts are valid, load site ids
/// are in range and unique across Load instructions, counter ids are in
/// range, and the entry function exists.
///
/// \returns the list of violations (empty when the module is well-formed).
std::vector<std::string> verifyModule(const Module &M);

/// Convenience wrapper: true when verifyModule reports no violations.
bool isWellFormed(const Module &M);

} // namespace sprof

#endif // SPROF_IR_VERIFIER_H
