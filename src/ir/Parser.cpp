//===- ir/Parser.cpp - Textual IR parser ------------------------------------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

using namespace sprof;

namespace {

/// A tiny cursor over one line of text.
class LineCursor {
public:
  explicit LineCursor(const std::string &Line) : Text(Line) {}

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool consume(const std::string &Token) {
    skipSpace();
    if (Text.compare(Pos, Token.size(), Token) != 0)
      return false;
    Pos += Token.size();
    return true;
  }

  bool peek(char C) {
    skipSpace();
    return Pos < Text.size() && Text[Pos] == C;
  }

  /// Reads an identifier: letters, digits, '_', '.', '-' (block and
  /// function names).
  bool ident(std::string &Out) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.' || C == '-')
        ++Pos;
      else
        break;
    }
    if (Pos == Start)
      return false;
    Out = Text.substr(Start, Pos - Start);
    return true;
  }

  size_t position() const { return Pos; }
  void setPosition(size_t P) { Pos = P; }

  bool integer(int64_t &Out) {
    skipSpace();
    const char *Begin = Text.c_str() + Pos;
    char *End = nullptr;
    long long V = std::strtoll(Begin, &End, 10);
    if (End == Begin)
      return false;
    Out = V;
    Pos += static_cast<size_t>(End - Begin);
    return true;
  }

  /// Strips a trailing "; ..." comment.
  static std::string stripComment(const std::string &Line,
                                  bool *HadInstrMark = nullptr) {
    size_t C = Line.find(';');
    if (HadInstrMark)
      *HadInstrMark = Line.find("; instr") != std::string::npos;
    return C == std::string::npos ? Line : Line.substr(0, C);
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

class ParserImpl {
public:
  explicit ParserImpl(std::istream &IS) : IS(IS) {}

  ParseResult run() {
    ParseResult R;
    if (!parseModuleHeader(R.M)) {
      R.Error = error("expected 'module <name>' header");
      return R;
    }
    while (nextInterestingLine()) {
      if (!startsWith(Current, "func ")) {
        R.Error = error("expected 'func' or end of input");
        return R;
      }
      if (!parseFunction(R.M)) {
        R.Error = Err;
        return R;
      }
    }
    if (!fixupCalls(R.M)) {
      R.Error = Err;
      return R;
    }
    R.Ok = true;
    return R;
  }

private:
  static bool startsWith(const std::string &S, const std::string &P) {
    return S.compare(0, P.size(), P) == 0;
  }

  std::string error(const std::string &Message) {
    return "line " + std::to_string(LineNo) + ": " + Message;
  }

  bool fail(const std::string &Message) {
    Err = error(Message);
    return false;
  }

  /// Reads the next non-empty line into Current. Returns false at EOF.
  bool nextLine() {
    while (std::getline(IS, Current)) {
      ++LineNo;
      return true;
    }
    return false;
  }

  bool nextInterestingLine() {
    while (nextLine()) {
      std::string Stripped = LineCursor::stripComment(Current);
      bool AllSpace = true;
      for (char C : Stripped)
        if (!std::isspace(static_cast<unsigned char>(C)))
          AllSpace = false;
      if (!AllSpace)
        return true;
    }
    return false;
  }

  bool parseModuleHeader(Module &M) {
    if (!nextInterestingLine() || !startsWith(Current, "module"))
      return false;
    // "module <name>  ; sites=N counters=M"
    std::string NoComment = Current;
    size_t Semi = Current.find(';');
    if (Semi != std::string::npos) {
      NoComment = Current.substr(0, Semi);
      // Parse sites/counters from the comment.
      std::string Comment = Current.substr(Semi);
      size_t SP = Comment.find("sites=");
      size_t CP = Comment.find("counters=");
      size_t EP = Comment.find("entry=");
      if (SP != std::string::npos)
        M.NumLoadSites = static_cast<uint32_t>(
            std::strtoul(Comment.c_str() + SP + 6, nullptr, 10));
      if (CP != std::string::npos)
        M.NumCounters = static_cast<uint32_t>(
            std::strtoul(Comment.c_str() + CP + 9, nullptr, 10));
      if (EP != std::string::npos)
        M.EntryFunction = static_cast<uint32_t>(
            std::strtoul(Comment.c_str() + EP + 6, nullptr, 10));
    }
    LineCursor C(NoComment);
    C.consume("module");
    std::string Name;
    if (C.ident(Name))
      M.Name = Name;
    return true;
  }

  bool parseFunction(Module &M) {
    // Current is "func <name>(params=P, regs=R) {"
    LineCursor C(Current);
    C.consume("func");
    std::string Name;
    if (!C.ident(Name))
      return fail("expected function name");
    int64_t Params = 0, Regs = 0;
    if (!C.consume("(") || !C.consume("params=") || !C.integer(Params) ||
        !C.consume(",") || !C.consume("regs=") || !C.integer(Regs) ||
        !C.consume(")") || !C.consume("{"))
      return fail("malformed function header");

    uint32_t FuncIdx = M.newFunction(Name, static_cast<uint32_t>(Params));
    Function &F = M.Functions[FuncIdx];
    F.NumRegs = static_cast<uint32_t>(Regs);

    // Per-function state for branch fixups.
    std::map<std::string, uint32_t> BlockByName;
    struct TargetFixup {
      uint32_t Block;
      uint32_t Inst;
      unsigned Slot;
      std::string Target;
    };
    std::vector<TargetFixup> Fixups;
    uint32_t CurBlock = NoId;

    while (nextInterestingLine()) {
      std::string Stripped = LineCursor::stripComment(Current);
      {
        LineCursor LC(Stripped);
        if (LC.consume("}"))
          break;
      }

      // Block label: "<name>:".
      {
        LineCursor LC(Stripped);
        std::string Label;
        if (LC.ident(Label) && LC.consume(":") && LC.atEnd()) {
          if (BlockByName.count(Label))
            return fail("duplicate block name '" + Label +
                        "' (targets would be ambiguous)");
          CurBlock = F.newBlock(Label);
          BlockByName.emplace(Label, CurBlock);
          continue;
        }
      }

      if (CurBlock == NoId)
        return fail("instruction before first block label");
      Instruction I;
      std::string JmpTarget, BrTarget0, BrTarget1;
      if (!parseInstruction(Stripped, I, JmpTarget, BrTarget0, BrTarget1))
        return false;
      uint32_t InstIdx = static_cast<uint32_t>(F.Blocks[CurBlock].Insts.size());
      if (I.Op == Opcode::Jmp)
        Fixups.push_back({CurBlock, InstIdx, 0, JmpTarget});
      if (I.Op == Opcode::Br) {
        Fixups.push_back({CurBlock, InstIdx, 0, BrTarget0});
        Fixups.push_back({CurBlock, InstIdx, 1, BrTarget1});
      }
      F.Blocks[CurBlock].Insts.push_back(I);
    }

    for (const TargetFixup &FX : Fixups) {
      auto It = BlockByName.find(FX.Target);
      if (It == BlockByName.end())
        return fail("unknown branch target '" + FX.Target + "'");
      Instruction &I = F.Blocks[FX.Block].Insts[FX.Inst];
      if (FX.Slot == 0)
        I.Target0 = It->second;
      else
        I.Target1 = It->second;
    }
    return true;
  }

  /// Parses "rN" or an integer into an operand.
  bool parseOperand(LineCursor &C, Operand &O) {
    if (C.peek('r')) {
      C.consume("r");
      int64_t N;
      if (!C.integer(N))
        return fail("expected register number");
      O = Operand::reg(static_cast<Reg>(N));
      return true;
    }
    int64_t V;
    if (!C.integer(V))
      return fail("expected operand");
    O = Operand::imm(V);
    return true;
  }

  /// Parses "[rA+imm]" (or "[rA-imm]") into I.A / I.Imm.
  bool parseMemRef(LineCursor &C, Instruction &I) {
    if (!C.consume("["))
      return fail("expected '['");
    if (!parseOperand(C, I.A) || !I.A.isReg())
      return fail("memory base must be a register");
    int64_t Off;
    if (!C.integer(Off)) // the printer emits an explicit sign
      return fail("expected memory offset");
    I.Imm = Off;
    if (!C.consume("]"))
      return fail("expected ']'");
    return true;
  }

  bool parseInstruction(const std::string &Stripped, Instruction &I,
                        std::string &JmpTarget, std::string &BrTarget0,
                        std::string &BrTarget1) {
    bool InstrMark = false;
    LineCursor::stripComment(Current, &InstrMark);
    I.IsInstrumentation = InstrMark;

    LineCursor C(Stripped);

    // Optional "(p rN)" qualifying predicate.
    if (C.consume("(p")) {
      Operand P;
      if (!parseOperand(C, P) || !P.isReg() || !C.consume(")"))
        return fail("malformed predicate");
      I.Pred = P.getReg();
    }

    // Optional "rD = " (try and roll back if it is not there).
    {
      size_t Save = C.position();
      int64_t N;
      if (C.consume("r") && C.integer(N) && C.consume("="))
        I.Dst = static_cast<Reg>(N);
      else
        C.setPosition(Save);
    }

    std::string Mnemonic;
    if (!C.ident(Mnemonic))
      return fail("expected mnemonic");
    if (!opcodeByName(Mnemonic, I.Op))
      return fail("unknown mnemonic '" + Mnemonic + "'");

    switch (I.Op) {
    case Opcode::Load:
    case Opcode::SpecLoad:
    case Opcode::Prefetch:
    case Opcode::ProfStride:
      if (!parseMemRef(C, I))
        return false;
      if (C.consume("site:")) {
        int64_t S;
        if (!C.integer(S))
          return fail("expected site id");
        I.SiteId = static_cast<uint32_t>(S);
      }
      return true;
    case Opcode::Store:
      if (!parseMemRef(C, I) || !C.consume(","))
        return fail("malformed store");
      return parseOperand(C, I.B);
    case Opcode::Jmp:
      if (!C.ident(JmpTarget))
        return fail("expected jump target");
      return true;
    case Opcode::Br:
      if (!parseOperand(C, I.A) || !C.consume(","))
        return fail("malformed branch");
      if (!C.ident(BrTarget0) || !C.consume(",") || !C.ident(BrTarget1))
        return fail("expected branch targets");
      return true;
    case Opcode::Call: {
      // The callee may be defined later in the file; record its name in
      // instruction order and resolve in fixupCalls().
      std::string Callee;
      if (!C.ident(Callee) || !C.consume("("))
        return fail("malformed call");
      unsigned NArgs = 0;
      if (!C.peek(')')) {
        while (true) {
          if (NArgs == MaxCallArgs)
            return fail("too many call arguments");
          if (!parseOperand(C, I.Args[NArgs]))
            return false;
          ++NArgs;
          if (!C.consume(","))
            break;
        }
      }
      I.NumArgs = static_cast<uint8_t>(NArgs);
      if (!C.consume(")"))
        return fail("expected ')'");
      CallSites.push_back(Callee);
      return true;
    }
    case Opcode::Ret:
      if (!C.atEnd())
        return parseOperand(C, I.A);
      return true;
    case Opcode::ProfCounterInc:
    case Opcode::ProfCounterRead:
      if (!C.consume("ctr:"))
        return fail("expected counter id");
      return C.integer(I.Imm) ? true : fail("expected counter id");
    case Opcode::ProfCounterAddTo:
      if (!parseOperand(C, I.A) || !C.consume(", ctr:"))
        return fail("malformed prof.addto");
      return C.integer(I.Imm) ? true : fail("expected counter id");
    default: {
      // Generic operand list.
      unsigned N = numOperands(I.Op);
      Operand *Ops[3] = {&I.A, &I.B, &I.C};
      for (unsigned K = 0; K != N; ++K) {
        if (K != 0 && !C.consume(","))
          return fail("expected ','");
        if (!parseOperand(C, *Ops[K]))
          return false;
      }
      return true;
    }
    }
  }

  bool opcodeByName(const std::string &Name, Opcode &Op) {
    for (unsigned K = 0; K != NumOpcodes; ++K) {
      Opcode Candidate = static_cast<Opcode>(K);
      if (Name == opcodeName(Candidate)) {
        Op = Candidate;
        return true;
      }
    }
    return false;
  }

  bool fixupCalls(Module &M) {
    // Resolve call targets by name, in instruction order per function.
    size_t Next = 0;
    for (Function &F : M.Functions)
      for (BasicBlock &BB : F.Blocks)
        for (Instruction &I : BB.Insts) {
          if (I.Op != Opcode::Call)
            continue;
          if (Next >= CallSites.size())
            return fail("internal: call bookkeeping out of sync");
          uint32_t Callee = M.findFunction(CallSites[Next++]);
          if (Callee == NoId)
            return fail("call to unknown function '" +
                        CallSites[Next - 1] + "'");
          I.Callee = Callee;
        }
    return true;
  }

  std::istream &IS;
  std::string Current;
  /// Callee names of Call instructions, in global parse order.
  std::vector<std::string> CallSites;
  unsigned LineNo = 0;
  std::string Err;
};

} // namespace

ParseResult sprof::parseModule(std::istream &IS) {
  return ParserImpl(IS).run();
}

ParseResult sprof::parseModule(const std::string &Text) {
  std::istringstream SS(Text);
  return parseModule(SS);
}
