//===- ir/IRBuilder.cpp - Convenience IR construction ----------------------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

using namespace sprof;

void IRBuilder::setFunction(uint32_t FuncIdx) {
  assert(FuncIdx < M.Functions.size() && "function index out of range");
  CurFunc = FuncIdx;
  CurBlock = NoId;
}

void IRBuilder::setBlock(uint32_t BlockIdx) {
  assert(CurFunc != NoId && "no current function");
  assert(BlockIdx < function().Blocks.size() && "block index out of range");
  CurBlock = BlockIdx;
}

Function &IRBuilder::function() {
  assert(CurFunc != NoId && "no current function");
  return M.Functions[CurFunc];
}

uint32_t IRBuilder::startFunction(std::string Name, uint32_t NumParams) {
  CurFunc = M.newFunction(std::move(Name), NumParams);
  CurBlock = function().newBlock("entry");
  return CurFunc;
}

uint32_t IRBuilder::makeBlock(std::string Name) {
  return function().newBlock(std::move(Name));
}

Instruction &IRBuilder::append(Instruction I) {
  assert(CurBlock != NoId && "no insertion block");
  BasicBlock &BB = function().Blocks[CurBlock];
  assert(!BB.hasTerminator() && "appending past a terminator");
  BB.Insts.push_back(I);
  return BB.Insts.back();
}

Reg IRBuilder::mov(Operand A, Reg Dst) {
  if (Dst == NoReg)
    Dst = newReg();
  Instruction I;
  I.Op = Opcode::Mov;
  I.Dst = Dst;
  I.A = A;
  append(I);
  return Dst;
}

Reg IRBuilder::binop(Opcode Op, Operand A, Operand B, Reg Dst) {
  assert(numOperands(Op) == 2 && hasDest(Op) && "not a binary operation");
  if (Dst == NoReg)
    Dst = newReg();
  Instruction I;
  I.Op = Op;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  append(I);
  return Dst;
}

Reg IRBuilder::select(Operand Cond, Operand IfTrue, Operand IfFalse,
                      Reg Dst) {
  if (Dst == NoReg)
    Dst = newReg();
  Instruction I;
  I.Op = Opcode::Select;
  I.Dst = Dst;
  I.A = Cond;
  I.B = IfTrue;
  I.C = IfFalse;
  append(I);
  return Dst;
}

Reg IRBuilder::load(Reg Addr, int64_t Offset, Reg Dst) {
  if (Dst == NoReg)
    Dst = newReg();
  Instruction I;
  I.Op = Opcode::Load;
  I.Dst = Dst;
  I.A = Operand::reg(Addr);
  I.Imm = Offset;
  I.SiteId = M.newLoadSite();
  LastSiteId = I.SiteId;
  append(I);
  return Dst;
}

void IRBuilder::store(Reg Addr, int64_t Offset, Operand Value) {
  Instruction I;
  I.Op = Opcode::Store;
  I.A = Operand::reg(Addr);
  I.B = Value;
  I.Imm = Offset;
  append(I);
}

void IRBuilder::prefetch(Reg Addr, int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Prefetch;
  I.A = Operand::reg(Addr);
  I.Imm = Offset;
  append(I);
}

void IRBuilder::jmp(uint32_t Target) {
  Instruction I;
  I.Op = Opcode::Jmp;
  I.Target0 = Target;
  append(I);
}

void IRBuilder::br(Operand Cond, uint32_t IfTrue, uint32_t IfFalse) {
  Instruction I;
  I.Op = Opcode::Br;
  I.A = Cond;
  I.Target0 = IfTrue;
  I.Target1 = IfFalse;
  append(I);
}

void IRBuilder::ret(Operand Value) {
  Instruction I;
  I.Op = Opcode::Ret;
  I.A = Value;
  append(I);
}

void IRBuilder::halt() {
  Instruction I;
  I.Op = Opcode::Halt;
  append(I);
}

Reg IRBuilder::call(uint32_t Callee, std::initializer_list<Operand> Args,
                    Reg Dst) {
  assert(Args.size() <= MaxCallArgs && "too many call arguments");
  Instruction I;
  I.Op = Opcode::Call;
  I.Dst = Dst;
  I.Callee = Callee;
  unsigned Idx = 0;
  for (const Operand &A : Args)
    I.Args[Idx++] = A;
  I.NumArgs = static_cast<uint8_t>(Args.size());
  append(I);
  return Dst;
}

void IRBuilder::insert(Instruction I) { append(I); }
