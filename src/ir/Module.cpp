//===- ir/Module.cpp - Top-level IR container and textual printer ----------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <cassert>

using namespace sprof;

uint32_t Module::newFunction(std::string FuncName, uint32_t NumParams) {
  Function F;
  F.Name = std::move(FuncName);
  F.NumParams = NumParams;
  F.NumRegs = NumParams;
  Functions.push_back(std::move(F));
  return static_cast<uint32_t>(Functions.size() - 1);
}

uint32_t Module::findFunction(const std::string &FuncName) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Functions.size()); I != E;
       ++I)
    if (Functions[I].Name == FuncName)
      return I;
  return NoId;
}

std::vector<SiteLocation> Module::locateLoadSites() const {
  std::vector<SiteLocation> Result(NumLoadSites);
  for (uint32_t FI = 0, FE = static_cast<uint32_t>(Functions.size());
       FI != FE; ++FI) {
    const Function &F = Functions[FI];
    for (uint32_t BI = 0, BE = static_cast<uint32_t>(F.Blocks.size());
         BI != BE; ++BI) {
      const BasicBlock &BB = F.Blocks[BI];
      for (uint32_t II = 0, IE = static_cast<uint32_t>(BB.Insts.size());
           II != IE; ++II) {
        const Instruction &I = BB.Insts[II];
        if (I.Op != Opcode::Load || I.SiteId == NoId)
          continue;
        assert(I.SiteId < NumLoadSites && "load site id out of range");
        Result[I.SiteId] = SiteLocation{FI, BI, II};
      }
    }
  }
  return Result;
}

namespace {

void printOperand(const Operand &O, std::ostream &OS) {
  switch (O.K) {
  case Operand::Kind::None:
    OS << "<none>";
    break;
  case Operand::Kind::Register:
    OS << 'r' << O.V;
    break;
  case Operand::Kind::Immediate:
    OS << O.V;
    break;
  }
}

void printInstruction(const Module &M, const Function &F,
                      const Instruction &I, std::ostream &OS) {
  OS << "    ";
  if (I.Pred != NoReg)
    OS << "(p r" << I.Pred << ") ";
  if (hasDest(I.Op) && I.Dst != NoReg)
    OS << 'r' << I.Dst << " = ";
  OS << opcodeName(I.Op);

  switch (I.Op) {
  case Opcode::Load:
  case Opcode::SpecLoad:
  case Opcode::Prefetch:
  case Opcode::ProfStride:
    OS << " [";
    printOperand(I.A, OS);
    OS << (I.Imm >= 0 ? "+" : "") << I.Imm << "]";
    if (I.SiteId != NoId)
      OS << " site:" << I.SiteId;
    break;
  case Opcode::Store:
    OS << " [";
    printOperand(I.A, OS);
    OS << (I.Imm >= 0 ? "+" : "") << I.Imm << "], ";
    printOperand(I.B, OS);
    break;
  case Opcode::Jmp:
    OS << ' ' << F.Blocks[I.Target0].Name;
    break;
  case Opcode::Br:
    OS << ' ';
    printOperand(I.A, OS);
    OS << ", " << F.Blocks[I.Target0].Name << ", "
       << F.Blocks[I.Target1].Name;
    break;
  case Opcode::Call:
    OS << ' '
       << (I.Callee < M.Functions.size() ? M.Functions[I.Callee].Name
                                         : "<bad-callee>")
       << '(';
    for (unsigned A = 0; A != I.NumArgs; ++A) {
      if (A != 0)
        OS << ", ";
      printOperand(I.Args[A], OS);
    }
    OS << ')';
    break;
  case Opcode::Ret:
    if (!I.A.isNone()) {
      OS << ' ';
      printOperand(I.A, OS);
    }
    break;
  case Opcode::ProfCounterInc:
  case Opcode::ProfCounterRead:
    OS << " ctr:" << I.Imm;
    break;
  case Opcode::ProfCounterAddTo:
    OS << ' ';
    printOperand(I.A, OS);
    OS << ", ctr:" << I.Imm;
    break;
  default: {
    // Generic operand list.
    unsigned N = numOperands(I.Op);
    const Operand *Ops[3] = {&I.A, &I.B, &I.C};
    for (unsigned K = 0; K != N; ++K) {
      OS << (K == 0 ? " " : ", ");
      printOperand(*Ops[K], OS);
    }
    break;
  }
  }
  if (I.IsInstrumentation)
    OS << "  ; instr";
  OS << '\n';
}

} // namespace

void sprof::printFunction(const Module &M, const Function &F,
                          std::ostream &OS) {
  OS << "func " << F.Name << "(params=" << F.NumParams
     << ", regs=" << F.NumRegs << ") {\n";
  for (uint32_t B = 0, E = static_cast<uint32_t>(F.Blocks.size()); B != E;
       ++B) {
    const BasicBlock &BB = F.Blocks[B];
    OS << "  " << BB.Name << ":  ; block " << B << '\n';
    for (const Instruction &I : BB.Insts)
      printInstruction(M, F, I, OS);
  }
  OS << "}\n";
}

void Module::print(std::ostream &OS) const {
  OS << "module " << Name << "  ; sites=" << NumLoadSites
     << " counters=" << NumCounters << " entry=" << EntryFunction << '\n';
  for (const Function &F : Functions) {
    printFunction(*this, F, OS);
    OS << '\n';
  }
}
