//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder maintains an insertion point (function + block) and offers one
/// helper per opcode. The workload generators and transformation passes use
/// it so instruction-encoding details stay in one place.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_IRBUILDER_H
#define SPROF_IR_IRBUILDER_H

#include "ir/Module.h"

namespace sprof {

/// Builds instructions at the end of a chosen basic block.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  /// Selects the function to build into.
  void setFunction(uint32_t FuncIdx);

  /// Selects the block (within the current function) to append to.
  void setBlock(uint32_t BlockIdx);

  Module &module() { return M; }
  Function &function();
  uint32_t currentBlock() const { return CurBlock; }
  uint32_t currentFunction() const { return CurFunc; }

  /// Creates a function and makes it current, with a fresh "entry" block.
  uint32_t startFunction(std::string Name, uint32_t NumParams);

  /// Creates a block in the current function (does not change insertion
  /// point).
  uint32_t makeBlock(std::string Name);

  Reg newReg() { return function().newReg(); }

  // Arithmetic / moves. Each returns the destination register.
  Reg mov(Operand A, Reg Dst = NoReg);
  Reg movImm(int64_t V, Reg Dst = NoReg) { return mov(Operand::imm(V), Dst); }
  Reg binop(Opcode Op, Operand A, Operand B, Reg Dst = NoReg);
  Reg add(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Add, A, B, Dst);
  }
  Reg sub(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Sub, A, B, Dst);
  }
  Reg mul(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Mul, A, B, Dst);
  }
  Reg shl(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Shl, A, B, Dst);
  }
  Reg shr(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Shr, A, B, Dst);
  }
  Reg band(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::And, A, B, Dst);
  }
  Reg bor(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Or, A, B, Dst);
  }
  Reg bxor(Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Opcode::Xor, A, B, Dst);
  }
  Reg cmp(Opcode Op, Operand A, Operand B, Reg Dst = NoReg) {
    return binop(Op, A, B, Dst);
  }
  Reg select(Operand Cond, Operand IfTrue, Operand IfFalse, Reg Dst = NoReg);

  /// Emits a load from [Addr + Offset]; assigns a fresh module-unique load
  /// site id and returns the destination register. The site id of the
  /// emitted instruction can be read back via lastSiteId().
  Reg load(Reg Addr, int64_t Offset = 0, Reg Dst = NoReg);

  void store(Reg Addr, int64_t Offset, Operand Value);
  void prefetch(Reg Addr, int64_t Offset = 0);

  // Terminators.
  void jmp(uint32_t Target);
  void br(Operand Cond, uint32_t IfTrue, uint32_t IfFalse);
  void ret(Operand Value = Operand::none());
  void halt();

  /// Emits a call; pass NoReg as Dst for a void call.
  Reg call(uint32_t Callee, std::initializer_list<Operand> Args,
           Reg Dst = NoReg);

  /// Appends an arbitrary pre-built instruction.
  void insert(Instruction I);

  /// Site id assigned to the most recently emitted load.
  uint32_t lastSiteId() const { return LastSiteId; }

private:
  Instruction &append(Instruction I);

  Module &M;
  uint32_t CurFunc = NoId;
  uint32_t CurBlock = NoId;
  uint32_t LastSiteId = NoId;
};

} // namespace sprof

#endif // SPROF_IR_IRBUILDER_H
