//===- ir/Module.h - Top-level IR container ---------------------*- C++ -*-===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_MODULE_H
#define SPROF_IR_MODULE_H

#include "ir/Function.h"

#include <ostream>
#include <string>
#include <vector>

namespace sprof {

/// Location of a load site within a module: which function/block/instruction
/// a given SiteId currently lives at. Recomputed on demand because passes
/// move instructions around.
struct SiteLocation {
  uint32_t Func = NoId;
  uint32_t Block = NoId;
  uint32_t Inst = NoId;

  bool isValid() const { return Func != NoId; }
};

/// A whole program: functions, an entry function, and module-wide id spaces
/// for load sites and profiling counters.
struct Module {
  std::string Name;
  std::vector<Function> Functions;
  uint32_t EntryFunction = 0;

  /// Next unassigned load site id; Load instructions receive ids at build
  /// time so that profiles survive cloning and transformation.
  uint32_t NumLoadSites = 0;

  /// Number of profiling counters allocated by instrumentation passes.
  uint32_t NumCounters = 0;

  /// Appends a new function and returns its index.
  uint32_t newFunction(std::string FuncName, uint32_t NumParams);

  /// Returns the function index for \p FuncName, or NoId.
  uint32_t findFunction(const std::string &FuncName) const;

  /// Allocates a fresh load site id.
  uint32_t newLoadSite() { return NumLoadSites++; }

  /// Allocates a fresh profiling counter id.
  uint32_t newCounter() { return NumCounters++; }

  /// Maps every load SiteId to its current location. The returned vector is
  /// indexed by SiteId; sites without a Load instruction (should not happen
  /// in verified modules) map to an invalid location.
  std::vector<SiteLocation> locateLoadSites() const;

  /// Prints the whole module in textual form.
  void print(std::ostream &OS) const;
};

/// Prints a single function (used by Module::print and tests).
void printFunction(const Module &M, const Function &F, std::ostream &OS);

} // namespace sprof

#endif // SPROF_IR_MODULE_H
