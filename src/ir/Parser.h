//===- ir/Parser.h - Textual IR parser --------------------------*- C++ -*-===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by Module::print back into a Module,
/// so IR can be dumped, edited, and reloaded (round-trip guaranteed by the
/// test suite). Used for debugging pipelines and for storing regression
/// inputs as text.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_PARSER_H
#define SPROF_IR_PARSER_H

#include "ir/Module.h"

#include <iosfwd>
#include <string>

namespace sprof {

/// Result of a parse: either a module or a diagnostic.
struct ParseResult {
  Module M;
  bool Ok = false;
  std::string Error; ///< "line N: message" when !Ok
};

/// Parses a module in the printer's textual format from \p IS.
ParseResult parseModule(std::istream &IS);

/// Convenience overload for in-memory text.
ParseResult parseModule(const std::string &Text);

} // namespace sprof

#endif // SPROF_IR_PARSER_H
