//===- ir/Instruction.h - IR instructions -----------------------*- C++ -*-===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction value type. Instructions are plain structs owned by value
/// inside basic blocks, which keeps modules trivially copyable -- the driver
/// clones a module once per experiment configuration before instrumenting or
/// inserting prefetches into it.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_INSTRUCTION_H
#define SPROF_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cassert>
#include <cstdint>

namespace sprof {

/// Virtual register index, unique within a function.
using Reg = uint32_t;

/// Sentinel meaning "no register".
constexpr Reg NoReg = ~0u;

/// Sentinel meaning "no load site" / "no callee".
constexpr uint32_t NoId = ~0u;

/// An instruction operand: either a virtual register or a 64-bit immediate.
struct Operand {
  enum class Kind : uint8_t { None, Register, Immediate };

  Kind K = Kind::None;
  int64_t V = 0;

  static Operand none() { return Operand(); }
  static Operand reg(Reg R) {
    assert(R != NoReg && "register operand needs a real register");
    Operand O;
    O.K = Kind::Register;
    O.V = static_cast<int64_t>(R);
    return O;
  }
  static Operand imm(int64_t Value) {
    Operand O;
    O.K = Kind::Immediate;
    O.V = Value;
    return O;
  }

  bool isNone() const { return K == Kind::None; }
  bool isReg() const { return K == Kind::Register; }
  bool isImm() const { return K == Kind::Immediate; }

  Reg getReg() const {
    assert(isReg() && "not a register operand");
    return static_cast<Reg>(V);
  }
  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return V;
  }

  bool operator==(const Operand &O) const { return K == O.K && V == O.V; }
};

/// Maximum number of call arguments supported by the IR.
constexpr unsigned MaxCallArgs = 4;

/// A single IR instruction. See Opcode.h for per-opcode semantics.
struct Instruction {
  Opcode Op = Opcode::Halt;

  /// Destination register, or NoReg.
  Reg Dst = NoReg;

  /// Generic operands; how many are meaningful depends on the opcode.
  Operand A, B, C;

  /// Extra immediate: memory offset for Load/Store/Prefetch/ProfStride,
  /// counter id for the ProfCounter* pseudo-ops.
  int64_t Imm = 0;

  /// Qualifying predicate register (Itanium-style): when set, the
  /// instruction executes only if the register holds a non-zero value.
  Reg Pred = NoReg;

  /// Branch targets (block indices within the function).
  uint32_t Target0 = 0;
  uint32_t Target1 = 0;

  /// Callee function index for Call.
  uint32_t Callee = NoId;

  /// Call arguments.
  Operand Args[MaxCallArgs];
  uint8_t NumArgs = 0;

  /// Module-unique load site id for Load / Prefetch / ProfStride.
  uint32_t SiteId = NoId;

  /// True for instructions inserted by a profiling instrumentation pass;
  /// the interpreter charges their cycles to the instrumentation-overhead
  /// bucket so benches can report Figure-20 style overheads.
  bool IsInstrumentation = false;

  bool isTerminator() const { return sprof::isTerminator(Op); }
};

} // namespace sprof

#endif // SPROF_IR_INSTRUCTION_H
