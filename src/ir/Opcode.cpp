//===- ir/Opcode.cpp - IR opcode traits ------------------------------------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace sprof;

const char *sprof::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::CmpEq:
    return "cmp.eq";
  case Opcode::CmpNe:
    return "cmp.ne";
  case Opcode::CmpLt:
    return "cmp.lt";
  case Opcode::CmpLe:
    return "cmp.le";
  case Opcode::CmpGt:
    return "cmp.gt";
  case Opcode::CmpGe:
    return "cmp.ge";
  case Opcode::Select:
    return "select";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Prefetch:
    return "prefetch";
  case Opcode::SpecLoad:
    return "load.s";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Br:
    return "br";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Halt:
    return "halt";
  case Opcode::ProfCounterInc:
    return "prof.inc";
  case Opcode::ProfCounterRead:
    return "prof.read";
  case Opcode::ProfCounterAddTo:
    return "prof.addto";
  case Opcode::ProfStride:
    return "prof.stride";
  }
  assert(false && "unknown opcode");
  return "<invalid>";
}

bool sprof::isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::Ret:
  case Opcode::Halt:
    return true;
  default:
    return false;
  }
}

bool sprof::hasDest(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::Select:
  case Opcode::Load:
  case Opcode::SpecLoad:
  case Opcode::Call:
  case Opcode::ProfCounterRead:
  case Opcode::ProfCounterAddTo:
    return true;
  default:
    return false;
  }
}

unsigned sprof::numOperands(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return 1;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return 2;
  case Opcode::Select:
    return 3;
  case Opcode::Load:
  case Opcode::SpecLoad:
    return 1; // address
  case Opcode::Store:
    return 2; // address, value
  case Opcode::Prefetch:
    return 1; // address
  case Opcode::Jmp:
    return 0;
  case Opcode::Br:
    return 1; // condition
  case Opcode::Call:
    return 0; // arguments are carried separately
  case Opcode::Ret:
    return 1; // optional return value
  case Opcode::Halt:
    return 0;
  case Opcode::ProfCounterInc:
    return 0;
  case Opcode::ProfCounterRead:
    return 0;
  case Opcode::ProfCounterAddTo:
    return 1;
  case Opcode::ProfStride:
    return 1; // address
  }
  assert(false && "unknown opcode");
  return 0;
}
