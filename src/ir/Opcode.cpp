//===- ir/Opcode.cpp - IR opcode traits ------------------------------------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace sprof;

namespace {

// One row per opcode, in enum order. The static_assert below keeps the
// table in sync with the Opcode enum; extend both together.
constexpr OpcodeInfo InfoTable[NumOpcodes] = {
    // Name, NumOperands, Terminator, HasDest, IsMemory, UsesImm
    {"mov", 1, false, true, false, false},
    {"add", 2, false, true, false, false},
    {"sub", 2, false, true, false, false},
    {"mul", 2, false, true, false, false},
    {"shl", 2, false, true, false, false},
    {"shr", 2, false, true, false, false},
    {"and", 2, false, true, false, false},
    {"or", 2, false, true, false, false},
    {"xor", 2, false, true, false, false},
    {"cmp.eq", 2, false, true, false, false},
    {"cmp.ne", 2, false, true, false, false},
    {"cmp.lt", 2, false, true, false, false},
    {"cmp.le", 2, false, true, false, false},
    {"cmp.gt", 2, false, true, false, false},
    {"cmp.ge", 2, false, true, false, false},
    {"select", 3, false, true, false, false},
    {"load", 1, false, true, true, true},
    {"store", 2, false, false, true, true},
    {"prefetch", 1, false, false, true, true},
    {"load.s", 1, false, true, true, true},
    {"jmp", 0, true, false, false, false},
    {"br", 1, true, false, false, false},
    {"call", 0, false, true, false, false},
    {"ret", 1, true, false, false, false},
    {"halt", 0, true, false, false, false},
    {"prof.inc", 0, false, false, false, true},
    {"prof.read", 0, false, true, false, true},
    {"prof.addto", 1, false, true, false, true},
    {"prof.stride", 1, false, false, true, true},
};

static_assert(static_cast<unsigned>(Opcode::ProfStride) == NumOpcodes - 1,
              "InfoTable must have one row per opcode, in enum order");

} // namespace

const OpcodeInfo &sprof::opcodeInfo(Opcode Op) {
  assert(static_cast<unsigned>(Op) < NumOpcodes && "unknown opcode");
  return InfoTable[static_cast<unsigned>(Op)];
}

const char *sprof::opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

bool sprof::isTerminator(Opcode Op) { return opcodeInfo(Op).Terminator; }

bool sprof::hasDest(Opcode Op) { return opcodeInfo(Op).HasDest; }

unsigned sprof::numOperands(Opcode Op) { return opcodeInfo(Op).NumOperands; }
