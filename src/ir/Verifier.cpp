//===- ir/Verifier.cpp - IR well-formedness checks --------------------------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <set>
#include <sstream>

using namespace sprof;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    if (M.Functions.empty())
      addError("module has no functions");
    else if (M.EntryFunction >= M.Functions.size())
      addError("entry function index out of range");
    for (const Function &F : M.Functions)
      verifyFunction(F);
    return std::move(Errors);
  }

private:
  void addError(const std::string &Message) { Errors.push_back(Message); }

  void addError(const Function &F, const BasicBlock &BB,
                const std::string &Message) {
    addError("function " + F.Name + ", block " + BB.Name + ": " + Message);
  }

  void verifyFunction(const Function &F) {
    if (F.Blocks.empty()) {
      addError("function " + F.Name + ": no blocks");
      return;
    }
    if (F.NumParams > F.NumRegs)
      addError("function " + F.Name + ": NumParams exceeds NumRegs");
    for (const BasicBlock &BB : F.Blocks)
      verifyBlock(F, BB);
  }

  void verifyBlock(const Function &F, const BasicBlock &BB) {
    if (!BB.hasTerminator()) {
      addError(F, BB, "missing terminator");
      return;
    }
    for (size_t II = 0, IE = BB.Insts.size(); II != IE; ++II) {
      const Instruction &I = BB.Insts[II];
      if (I.isTerminator() && II + 1 != IE)
        addError(F, BB, std::string("terminator '") + opcodeName(I.Op) +
                            "' in block interior");
      verifyInstruction(F, BB, I);
    }
  }

  void verifyInstruction(const Function &F, const BasicBlock &BB,
                         const Instruction &I) {
    const std::string OpName = opcodeName(I.Op);
    auto CheckReg = [&](Reg R, const char *What) {
      if (R != NoReg && R >= F.NumRegs)
        addError(F, BB, std::string(What) + " register r" +
                            std::to_string(R) + " out of range in '" +
                            OpName + "'");
    };
    auto CheckOperand = [&](const Operand &O, const char *What) {
      if (O.isReg())
        CheckReg(O.getReg(), What);
    };
    auto CheckTarget = [&](uint32_t T) {
      if (T >= F.Blocks.size())
        addError(F, BB, "branch target " + std::to_string(T) +
                            " out of range in '" + OpName + "'");
    };

    CheckReg(I.Pred, "predicate");
    if (hasDest(I.Op) && I.Op != Opcode::Call && I.Dst == NoReg)
      addError(F, BB, "'" + OpName + "' lacks a destination");
    CheckReg(I.Dst, "destination");
    CheckOperand(I.A, "operand A");
    CheckOperand(I.B, "operand B");
    CheckOperand(I.C, "operand C");

    // Operand presence for generic opcodes; Ret's operand is optional.
    if (I.Op != Opcode::Ret) {
      unsigned Needed = numOperands(I.Op);
      const Operand *Ops[3] = {&I.A, &I.B, &I.C};
      for (unsigned K = 0; K != Needed; ++K)
        if (Ops[K]->isNone())
          addError(F, BB, "'" + OpName + "' missing operand " +
                              std::to_string(K));
    }

    switch (I.Op) {
    case Opcode::Load:
    case Opcode::SpecLoad:
    case Opcode::Prefetch:
    case Opcode::Store:
    case Opcode::ProfStride:
      if (!I.A.isReg())
        addError(F, BB, "'" + OpName + "' address must be a register");
      break;
    case Opcode::Jmp:
      CheckTarget(I.Target0);
      break;
    case Opcode::Br:
      CheckTarget(I.Target0);
      CheckTarget(I.Target1);
      break;
    case Opcode::Call: {
      if (I.Callee >= M.Functions.size()) {
        addError(F, BB,
                 "call to out-of-range function " + std::to_string(I.Callee));
        break;
      }
      const Function &Callee = M.Functions[I.Callee];
      if (I.NumArgs != Callee.NumParams)
        addError(F, BB, "call to " + Callee.Name + " passes " +
                            std::to_string(unsigned(I.NumArgs)) +
                            " args, expected " +
                            std::to_string(Callee.NumParams));
      for (unsigned A = 0; A != I.NumArgs; ++A)
        CheckOperand(I.Args[A], "call argument");
      break;
    }
    case Opcode::ProfCounterInc:
    case Opcode::ProfCounterRead:
    case Opcode::ProfCounterAddTo:
      if (I.Imm < 0 || static_cast<uint64_t>(I.Imm) >= M.NumCounters)
        addError(F, BB, "counter id " + std::to_string(I.Imm) +
                            " out of range");
      break;
    default:
      break;
    }

    // Load site bookkeeping: every Load carries a valid, unique site id.
    if (I.Op == Opcode::Load) {
      if (I.SiteId == NoId || I.SiteId >= M.NumLoadSites)
        addError(F, BB, "load with invalid site id");
      else if (!SeenSites.insert(I.SiteId).second)
        addError(F, BB, "duplicate load site id " + std::to_string(I.SiteId));
    }
    if (I.Op == Opcode::ProfStride &&
        (I.SiteId == NoId || I.SiteId >= M.NumLoadSites))
      addError(F, BB, "prof.stride with invalid site id");
  }

  const Module &M;
  std::vector<std::string> Errors;
  std::set<uint32_t> SeenSites;
};

} // namespace

std::vector<std::string> sprof::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}

bool sprof::isWellFormed(const Module &M) { return verifyModule(M).empty(); }
