//===- ir/Function.h - Functions, basic blocks, CFG edges ------*- C++ -*-===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock and Function. Blocks are identified by their index in the
/// owning function's block vector; CFG edges are (block, successor-slot)
/// pairs so that instrumentation can address "the edge from b2 to b3" even
/// when a block branches to the same target through both slots.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_IR_FUNCTION_H
#define SPROF_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <cassert>
#include <string>
#include <vector>

namespace sprof {

/// A basic block: a straight-line instruction sequence ending in exactly one
/// terminator (enforced by the verifier).
struct BasicBlock {
  std::string Name;
  std::vector<Instruction> Insts;

  bool hasTerminator() const {
    return !Insts.empty() && Insts.back().isTerminator();
  }

  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Insts.back();
  }

  Instruction &terminator() {
    assert(hasTerminator() && "block has no terminator");
    return Insts.back();
  }

  /// Returns the successor block indices implied by the terminator.
  /// Jmp has one, Br has two (taken first), Ret/Halt have none.
  std::vector<uint32_t> successors() const;

  /// Number of successor slots (0, 1, or 2).
  unsigned numSuccessors() const;

  /// Returns the successor block index in slot \p Slot.
  uint32_t successor(unsigned Slot) const;

  /// Redirects successor slot \p Slot to \p NewTarget.
  void setSuccessor(unsigned Slot, uint32_t NewTarget);
};

/// A CFG edge, identified by source block and successor slot. Two distinct
/// edges may share source and destination (a Br with both targets equal);
/// the slot keeps them apart, which matters for edge profiling.
struct Edge {
  uint32_t From = 0;
  unsigned Slot = 0;

  bool operator==(const Edge &E) const {
    return From == E.From && Slot == E.Slot;
  }
  bool operator<(const Edge &E) const {
    return From != E.From ? From < E.From : Slot < E.Slot;
  }
};

/// A function: an entry block (index 0 by convention), a set of blocks, and
/// a virtual register file. Arguments arrive in registers 0..NumParams-1.
struct Function {
  std::string Name;
  std::vector<BasicBlock> Blocks;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0;

  uint32_t entryBlock() const { return 0; }

  /// Allocates a fresh virtual register.
  Reg newReg() { return NumRegs++; }

  /// Appends a new (empty) block and returns its index.
  uint32_t newBlock(std::string BlockName);

  /// Returns all CFG edges of the function in a deterministic order.
  std::vector<Edge> edges() const;

  /// Returns the predecessor block indices of \p BlockIdx (deduplicated,
  /// sorted).
  std::vector<uint32_t> predecessors(uint32_t BlockIdx) const;

  /// Returns the destination block of \p E.
  uint32_t edgeDest(const Edge &E) const {
    return Blocks[E.From].successor(E.Slot);
  }
};

} // namespace sprof

#endif // SPROF_IR_FUNCTION_H
