//===- ir/Function.cpp - Functions, basic blocks, CFG edges ----------------===//
//
// Part of the StrideProf project (see Opcode.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <algorithm>

using namespace sprof;

std::vector<uint32_t> BasicBlock::successors() const {
  std::vector<uint32_t> Result;
  for (unsigned I = 0, E = numSuccessors(); I != E; ++I)
    Result.push_back(successor(I));
  return Result;
}

unsigned BasicBlock::numSuccessors() const {
  if (!hasTerminator())
    return 0;
  switch (terminator().Op) {
  case Opcode::Jmp:
    return 1;
  case Opcode::Br:
    return 2;
  default:
    return 0;
  }
}

uint32_t BasicBlock::successor(unsigned Slot) const {
  assert(Slot < numSuccessors() && "successor slot out of range");
  return Slot == 0 ? terminator().Target0 : terminator().Target1;
}

void BasicBlock::setSuccessor(unsigned Slot, uint32_t NewTarget) {
  assert(Slot < numSuccessors() && "successor slot out of range");
  if (Slot == 0)
    terminator().Target0 = NewTarget;
  else
    terminator().Target1 = NewTarget;
}

uint32_t Function::newBlock(std::string BlockName) {
  Blocks.push_back(BasicBlock{std::move(BlockName), {}});
  return static_cast<uint32_t>(Blocks.size() - 1);
}

std::vector<Edge> Function::edges() const {
  std::vector<Edge> Result;
  for (uint32_t B = 0, E = static_cast<uint32_t>(Blocks.size()); B != E; ++B)
    for (unsigned S = 0, N = Blocks[B].numSuccessors(); S != N; ++S)
      Result.push_back(Edge{B, S});
  return Result;
}

std::vector<uint32_t> Function::predecessors(uint32_t BlockIdx) const {
  std::vector<uint32_t> Result;
  for (uint32_t B = 0, E = static_cast<uint32_t>(Blocks.size()); B != E; ++B)
    for (uint32_t Succ : Blocks[B].successors())
      if (Succ == BlockIdx)
        Result.push_back(B);
  std::sort(Result.begin(), Result.end());
  Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
  return Result;
}
