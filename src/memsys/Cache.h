//===- memsys/Cache.h - Set-associative cache hierarchy --------*- C++ -*-===//
//
// Part of the StrideProf project, a reproduction of Youfeng Wu, "Efficient
// Discovery of Regular Stride Patterns in Irregular Programs and Its Use in
// Compiler Prefetching" (PLDI 2002).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timing-aware cache hierarchy standing in for the paper's 733 MHz
/// Itanium memory system: 16KB 4-way L1D, 96KB 6-way unified L2, 2MB 4-way
/// unified L3 (Section 4). Lines carry a *ready time* so that prefetches
/// issued K iterations ahead (Figure 3) overlap with execution: a demand
/// load that arrives before its prefetched line is ready stalls only for
/// the remaining cycles (a "late" prefetch), which is exactly the effect
/// the paper's prefetch-distance heuristic trades against cache pollution.
///
//===----------------------------------------------------------------------===//

#ifndef SPROF_MEMSYS_CACHE_H
#define SPROF_MEMSYS_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sprof {

/// Geometry and latency of one cache level.
struct CacheLevelConfig {
  std::string Name = "L1";
  uint64_t SizeBytes = 16 * 1024;
  unsigned Associativity = 4;
  unsigned LineBytes = 64;
  /// Load-to-use latency when hitting in this level.
  uint32_t HitLatency = 2;
};

/// Whole-hierarchy configuration. Defaults model the paper's Itanium.
struct MemoryConfig {
  std::vector<CacheLevelConfig> Levels = {
      {"L1D", 16 * 1024, 4, 64, 2},
      {"L2", 96 * 1024, 6, 64, 9},
      {"L3", 2 * 1024 * 1024, 4, 64, 24},
  };
  /// Latency of a main-memory access.
  uint32_t MemoryLatency = 160;
  /// When true, the pipeline asks the hierarchy for per-prefetch outcome
  /// attribution and per-site demand-miss statistics (see AttributionData).
  /// Purely additive bookkeeping: neither timing nor MemoryStats changes
  /// whether this is on or off.
  bool EnableAttribution = false;
};

/// Load-site sentinel for accesses that carry no attributable site (the
/// memsys mirror of the IR's NoId; memsys does not depend on the IR).
inline constexpr uint32_t NoSiteId = ~0u;

/// Retirement outcome of every issued prefetch. The four classes partition
/// the issued prefetches exactly: after MemoryHierarchy::finalizeAttribution
/// drains still-resident marked lines,
/// Useful + Late + Early + Redundant == MemoryStats::PrefetchesIssued.
struct PrefetchOutcomeCounts {
  /// Demand access hit a prefetched line whose fill had completed.
  uint64_t Useful = 0;
  /// Demand access arrived while the prefetched fill was still in flight
  /// (partial stall; the prefetch was issued too close to the use).
  uint64_t Late = 0;
  /// Prefetched line was evicted from L1 -- or still resident at run end --
  /// without ever being demanded (cache pollution).
  uint64_t Early = 0;
  /// The line was already in L1 (or in flight to it) when the prefetch was
  /// issued; the prefetch did nothing.
  uint64_t Redundant = 0;

  uint64_t issued() const { return Useful + Late + Early + Redundant; }

  PrefetchOutcomeCounts &operator+=(const PrefetchOutcomeCounts &Other) {
    Useful += Other.Useful;
    Late += Other.Late;
    Early += Other.Early;
    Redundant += Other.Redundant;
    return *this;
  }
};

/// Demand-access statistics attributed to one load site.
struct SiteMissStats {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  /// Missed every cache level (paid the full memory latency).
  uint64_t FullMisses = 0;
  uint64_t StallCycles = 0;

  SiteMissStats &operator+=(const SiteMissStats &Other) {
    Accesses += Other.Accesses;
    L1Misses += Other.L1Misses;
    FullMisses += Other.FullMisses;
    StallCycles += Other.StallCycles;
    return *this;
  }
};

/// Per-site prefetch-outcome and demand-miss attribution. Lives beside
/// MemoryStats (never inside it) so that the pre-existing accounting is
/// bit-identical whether attribution is enabled or not. PerSite and
/// SiteMiss hold NumSites + 1 entries; the final entry collects accesses
/// and prefetches that carried NoSiteId (or an out-of-range site).
struct AttributionData {
  bool Enabled = false;
  /// Set by MemoryHierarchy::finalizeAttribution once still-resident
  /// prefetched lines have been drained into Early.
  bool Finalized = false;
  uint32_t NumSites = 0;
  PrefetchOutcomeCounts Total;
  std::vector<PrefetchOutcomeCounts> PerSite;
  std::vector<SiteMissStats> SiteMiss;

  size_t indexFor(uint32_t SiteId) const {
    return SiteId < NumSites ? SiteId : NumSites;
  }

  void recordUseful(uint32_t SiteId) {
    ++Total.Useful;
    ++PerSite[indexFor(SiteId)].Useful;
  }
  void recordLate(uint32_t SiteId) {
    ++Total.Late;
    ++PerSite[indexFor(SiteId)].Late;
  }
  void recordEarly(uint32_t SiteId) {
    ++Total.Early;
    ++PerSite[indexFor(SiteId)].Early;
  }
  void recordRedundant(uint32_t SiteId) {
    ++Total.Redundant;
    ++PerSite[indexFor(SiteId)].Redundant;
  }
};

/// Per-level and prefetch statistics.
struct MemoryStats {
  struct LevelStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  std::vector<LevelStats> Levels;
  uint64_t DemandAccesses = 0;
  uint64_t PrefetchesIssued = 0;
  /// Prefetches that found the line already cached (useless).
  uint64_t PrefetchesRedundant = 0;
  /// Demand accesses that hit a line whose fill was still in flight.
  uint64_t LatePrefetchHits = 0;
  /// Prefetched lines used by a demand access before eviction (coverage).
  uint64_t PrefetchesUseful = 0;
  /// Prefetched lines evicted from L1 without ever being used (accuracy
  /// complement: cache pollution).
  uint64_t PrefetchesUnused = 0;
  /// Total stall cycles incurred by demand accesses.
  uint64_t StallCycles = 0;

  /// Accumulates another run's memory statistics level-wise; Levels widens
  /// to the deeper hierarchy when the two runs were configured differently.
  MemoryStats &operator+=(const MemoryStats &Other) {
    if (Levels.size() < Other.Levels.size())
      Levels.resize(Other.Levels.size());
    for (size_t I = 0; I != Other.Levels.size(); ++I) {
      Levels[I].Hits += Other.Levels[I].Hits;
      Levels[I].Misses += Other.Levels[I].Misses;
    }
    DemandAccesses += Other.DemandAccesses;
    PrefetchesIssued += Other.PrefetchesIssued;
    PrefetchesRedundant += Other.PrefetchesRedundant;
    LatePrefetchHits += Other.LatePrefetchHits;
    PrefetchesUseful += Other.PrefetchesUseful;
    PrefetchesUnused += Other.PrefetchesUnused;
    StallCycles += Other.StallCycles;
    return *this;
  }
};

/// One set-associative, LRU, timing-aware cache level.
class CacheLevel {
public:
  explicit CacheLevel(const CacheLevelConfig &Config);

  /// Probes for \p LineAddr. On hit, refreshes LRU state and returns the
  /// cycle at which the line is (or was) ready; on miss returns false.
  /// \p WasUnusedPrefetch (optional) reports whether this is the first
  /// demand touch of a prefetched line (and clears the mark).
  /// \p PrefetchSite (optional) receives the site that issued the prefetch
  /// (meaningful only when *WasUnusedPrefetch comes back true).
  bool probe(uint64_t LineAddr, uint64_t &ReadyTime,
             bool *WasUnusedPrefetch = nullptr,
             uint32_t *PrefetchSite = nullptr);

  /// Inserts \p LineAddr with the given ready time, evicting the LRU way.
  /// \p Prefetched marks the line as an as-yet-unused prefetch issued by
  /// load site \p PrefetchSite.
  void fill(uint64_t LineAddr, uint64_t ReadyTime, bool Prefetched = false,
            uint32_t PrefetchSite = NoSiteId);

  /// When set, incremented every time an unused prefetched line is
  /// evicted (pollution accounting).
  void setEvictUnusedCounter(uint64_t *Counter) {
    EvictUnusedCounter = Counter;
  }

  /// When set, unused-prefetch evictions are also credited as Early
  /// outcomes against the issuing site.
  void setAttribution(AttributionData *A) { Attr = A; }

  /// Credits every still-resident unused prefetched line as Early and
  /// clears the marks (so a second drain finds nothing). Called by
  /// MemoryHierarchy::finalizeAttribution at end of run.
  void drainUnusedPrefetches(AttributionData &A);

  const CacheLevelConfig &config() const { return Config; }

private:
  struct Way {
    uint64_t Tag = ~0ull;
    uint64_t ReadyTime = 0;
    uint64_t LastUse = 0;
    uint32_t PrefetchSite = NoSiteId;
    bool Valid = false;
    bool UnusedPrefetch = false;
  };

  uint64_t *EvictUnusedCounter = nullptr;
  AttributionData *Attr = nullptr;

  CacheLevelConfig Config;
  uint64_t NumSets;
  std::vector<Way> Ways; // NumSets * Associativity, set-major
  uint64_t UseClock = 0;
};

/// The full hierarchy. All timing is in CPU cycles; the caller supplies the
/// current cycle on each access.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemoryConfig &Config);

  /// Demand load of \p Addr at cycle \p Now, attributed to load site
  /// \p SiteId when attribution is enabled.
  /// \returns the total load-to-use latency in cycles (>= L1 hit latency).
  uint64_t demandAccess(uint64_t Addr, uint64_t Now,
                        uint32_t SiteId = NoSiteId);

  /// Non-blocking prefetch of \p Addr issued at cycle \p Now by load site
  /// \p SiteId. Fills every level with ready time Now + (latency of the
  /// providing level).
  void prefetch(uint64_t Addr, uint64_t Now, uint32_t SiteId = NoSiteId);

  /// Turns on prefetch-outcome and per-site demand-miss attribution for
  /// sites [0, NumSites). Must be called before any traffic; resets any
  /// previously collected attribution. MemoryStats is unaffected.
  void enableAttribution(uint32_t NumSites);

  /// Classifies still-resident prefetched lines as Early so the outcome
  /// classes exactly partition the issued prefetches. Idempotent; call
  /// once the run's traffic is complete.
  void finalizeAttribution();

  const AttributionData &attribution() const { return Attr; }

  const MemoryStats &stats() const { return Stats; }
  unsigned lineBytes() const { return LineBytes; }

private:
  uint64_t lineAddr(uint64_t Addr) const { return Addr / LineBytes; }

  /// Finds the first level holding the line. Returns the level index and
  /// its ready time, or Levels.size() on full miss.
  size_t findLine(uint64_t Line, uint64_t &ReadyTime);

  MemoryConfig Config;
  std::vector<CacheLevel> Levels;
  unsigned LineBytes;
  MemoryStats Stats;
  AttributionData Attr;
};

} // namespace sprof

#endif // SPROF_MEMSYS_CACHE_H
